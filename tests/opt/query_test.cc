#include "opt/query.h"

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "opt/cardinality.h"
#include "opt/join_order.h"
#include "storage/loader.h"

namespace jsontiles::opt {
namespace {

using exec::Access;
using exec::AggSpec;
using exec::ConstFloat;
using exec::ConstInt;
using exec::ConstString;
using exec::ExprPtr;
using exec::QueryContext;
using exec::RowSet;
using exec::Slot;
using exec::Value;
using exec::ValueType;
using storage::Loader;
using storage::Relation;
using storage::StorageMode;

// A combined relation with three "tables": nations (5 rows), customers
// (100 rows, each in a nation) and orders (1000 rows, each by a customer).
std::vector<std::string> CombinedDocs() {
  std::vector<std::string> docs;
  const char* nation_names[] = {"ALGERIA", "BRAZIL", "CANADA", "DENMARK", "EGYPT"};
  for (int n = 0; n < 5; n++) {
    docs.push_back(R"({"n_key":)" + std::to_string(n) + R"(,"n_name":")" +
                   nation_names[n] + R"("})");
  }
  for (int c = 0; c < 100; c++) {
    docs.push_back(R"({"c_key":)" + std::to_string(c) + R"(,"c_nation":)" +
                   std::to_string(c % 5) + R"(,"c_balance":)" +
                   std::to_string(c * 10.5) + "}");
  }
  for (int o = 0; o < 1000; o++) {
    docs.push_back(R"({"o_key":)" + std::to_string(o) + R"(,"o_cust":)" +
                   std::to_string(o % 100) + R"(,"o_total":)" +
                   std::to_string(100.0 + o % 500) + "}");
  }
  return docs;
}

std::unique_ptr<Relation> LoadCombined(StorageMode mode) {
  tiles::TileConfig config;
  config.tile_size = 128;
  config.partition_size = 4;
  Loader loader(mode, config);
  return loader.Load(CombinedDocs(), "combined").MoveValueOrDie();
}

TEST(JoinOrderTest, SelectiveJoinFirst) {
  JoinGraph graph;
  graph.table_cardinalities = {1000000, 10, 1000};  // big, tiny-filtered, medium
  // big ⋈ tiny is highly selective (the big side has 100000 distinct keys of
  // which the filtered tiny table keeps 10); big ⋈ medium is not.
  graph.edges.push_back({0, 1, 100000, 10});
  graph.edges.push_back({0, 2, 1000, 1000});
  auto result = OptimizeJoinOrder(graph);
  ASSERT_EQ(result.sequence.size(), 3u);
  // The selective join (table 1) must happen before table 2 enters.
  auto pos = [&](int t) {
    return std::find(result.sequence.begin(), result.sequence.end(), t) -
           result.sequence.begin();
  };
  EXPECT_LT(pos(1), pos(2));
}

TEST(JoinOrderTest, DisconnectedGraphStillCompletes) {
  JoinGraph graph;
  graph.table_cardinalities = {100, 200};
  auto result = OptimizeJoinOrder(graph);  // cross product fallback
  EXPECT_EQ(result.sequence.size(), 2u);
}

TEST(JoinOrderTest, SingleTable) {
  JoinGraph graph;
  graph.table_cardinalities = {42};
  EXPECT_EQ(OptimizeJoinOrder(graph).sequence, std::vector<int>({0}));
}

TEST(CardinalityTest, PresenceFromStats) {
  auto rel = LoadCombined(StorageMode::kTiles);
  ExprPtr okey = Access("t", {"o_key"}, ValueType::kInt);
  auto est = EstimateScanCardinality(*rel, {okey}, nullptr, {okey->path}, 256);
  // 1000 of 1105 documents are orders.
  EXPECT_NEAR(est.cardinality, 1000.0, 120.0);
  ExprPtr nkey = Access("t", {"n_key"}, ValueType::kInt);
  auto est2 = EstimateScanCardinality(*rel, {nkey}, nullptr, {nkey->path}, 256);
  EXPECT_LT(est2.cardinality, 50.0);  // nations are rare
}

TEST(CardinalityTest, FilterSelectivitySampled) {
  auto rel = LoadCombined(StorageMode::kJsonb);  // no stats: pure sampling
  ExprPtr total = Access("t", {"o_total"}, ValueType::kFloat);
  ExprPtr filter = exec::Gt(Slot(0), ConstFloat(500.0));
  auto est = EstimateScanCardinality(*rel, {total}, filter, {total->path}, 512);
  // totals are 100..599 uniform; > 500 is ~20% of 1000 orders.
  EXPECT_GT(est.cardinality, 60.0);
  EXPECT_LT(est.cardinality, 450.0);
}

TEST(QueryBlockTest, SingleTableAggregation) {
  for (StorageMode mode : {StorageMode::kJsonText, StorageMode::kJsonb,
                           StorageMode::kSinew, StorageMode::kTiles}) {
    auto rel = LoadCombined(mode);
    QueryContext ctx;
    QueryBlock q;
    q.AddTable(TableRef::Rel("o", rel.get(),
                             exec::IsNotNull(Access("o", {"o_key"}, ValueType::kInt))));
    q.GroupBy({});
    q.Aggregate(AggSpec::CountStar());
    q.Aggregate(AggSpec::Sum(Access("o", {"o_total"}, ValueType::kFloat)));
    RowSet rows = q.Execute(ctx);
    ASSERT_EQ(rows.size(), 1u) << StorageModeName(mode);
    EXPECT_EQ(rows[0][0].int_value(), 1000) << StorageModeName(mode);
    // sum of 100 + o%500 over 0..999 = 100000 + 2*sum(0..499) = 349500...
    // each residue 0..499 occurs exactly twice: sum = 1000*100 + 2*(499*500/2).
    EXPECT_DOUBLE_EQ(rows[0][1].float_value(), 100000.0 + 2 * (499.0 * 500 / 2))
        << StorageModeName(mode);
  }
}

TEST(QueryBlockTest, ThreeWayJoinAllModesAgree) {
  // Materialized comparison rows (arena-backed views die with the context).
  std::vector<std::vector<std::string>> reference;
  bool first = true;
  for (StorageMode mode : {StorageMode::kJsonText, StorageMode::kJsonb,
                           StorageMode::kSinew, StorageMode::kTiles}) {
    auto rel = LoadCombined(mode);
    QueryContext ctx;
    QueryBlock q;
    // Revenue per nation name for orders with total >= 400.
    q.AddTable(TableRef::Rel("n", rel.get()));
    q.AddTable(TableRef::Rel("c", rel.get()));
    q.AddTable(TableRef::Rel(
        "o", rel.get(),
        exec::Ge(Access("o", {"o_total"}, ValueType::kFloat), ConstFloat(400.0))));
    q.AddJoin(Access("c", {"c_nation"}, ValueType::kInt),
              Access("n", {"n_key"}, ValueType::kInt));
    q.AddJoin(Access("o", {"o_cust"}, ValueType::kInt),
              Access("c", {"c_key"}, ValueType::kInt));
    q.GroupBy({Access("n", {"n_name"}, ValueType::kString)});
    q.Aggregate(AggSpec::Sum(Access("o", {"o_total"}, ValueType::kFloat)));
    q.Aggregate(AggSpec::CountStar());
    q.OrderBy(Slot(0));
    RowSet rows = q.Execute(ctx);
    ASSERT_EQ(rows.size(), 5u) << StorageModeName(mode);
    std::vector<std::vector<std::string>> materialized;
    for (const auto& row : rows) {
      materialized.push_back(
          {row[0].ToString(), row[1].ToString(), row[2].ToString()});
    }
    if (first) {
      reference = std::move(materialized);
      first = false;
      continue;
    }
    EXPECT_EQ(materialized, reference) << StorageModeName(mode);
  }
}

TEST(QueryBlockTest, JoinOrderUsesCardinalities) {
  auto rel = LoadCombined(StorageMode::kTiles);
  QueryContext ctx;
  QueryBlock q;
  q.AddTable(TableRef::Rel("o", rel.get()));
  q.AddTable(TableRef::Rel("n", rel.get()));
  q.AddTable(TableRef::Rel("c", rel.get()));
  q.AddJoin(Access("c", {"c_nation"}, ValueType::kInt),
            Access("n", {"n_key"}, ValueType::kInt));
  q.AddJoin(Access("o", {"o_cust"}, ValueType::kInt),
            Access("c", {"c_key"}, ValueType::kInt));
  q.GroupBy({});
  q.Aggregate(AggSpec::CountStar());
  RowSet rows = q.Execute(ctx);
  EXPECT_EQ(rows[0][0].int_value(), 1000);
  // The chosen order should not start with the biggest table (orders).
  ASSERT_EQ(q.chosen_join_order().size(), 3u);
  EXPECT_NE(q.chosen_join_order()[0], "o");
}

TEST(QueryBlockTest, HavingAndResidual) {
  auto rel = LoadCombined(StorageMode::kTiles);
  QueryContext ctx;
  QueryBlock q;
  q.AddTable(TableRef::Rel("c", rel.get()));
  q.AddTable(TableRef::Rel("o", rel.get()));
  // Join with residual: only orders whose total exceeds the customer balance.
  q.AddJoin(Access("o", {"o_cust"}, ValueType::kInt),
            Access("c", {"c_key"}, ValueType::kInt),
            exec::Gt(Access("o", {"o_total"}, ValueType::kFloat),
                     Access("c", {"c_balance"}, ValueType::kFloat)));
  q.GroupBy({Access("c", {"c_key"}, ValueType::kInt)});
  q.Aggregate(AggSpec::CountStar());
  q.Having(exec::Gt(Slot(1), ConstInt(9)));
  RowSet rows = q.Execute(ctx);
  for (const auto& row : rows) {
    EXPECT_GT(row[1].int_value(), 9);
  }
  EXPECT_GT(rows.size(), 0u);
  EXPECT_LT(rows.size(), 100u);
}

TEST(QueryBlockTest, RowsetTableComposition) {
  auto rel = LoadCombined(StorageMode::kTiles);
  QueryContext ctx;
  // Phase 1: total per customer.
  QueryBlock inner;
  inner.AddTable(TableRef::Rel(
      "o", rel.get(),
      exec::IsNotNull(Access("o", {"o_key"}, ValueType::kInt))));
  inner.GroupBy({Access("o", {"o_cust"}, ValueType::kInt)});
  inner.Aggregate(AggSpec::Sum(Access("o", {"o_total"}, ValueType::kFloat)));
  RowSet per_customer = inner.Execute(ctx);
  ASSERT_EQ(per_customer.size(), 100u);

  // Phase 2: join the aggregate back to customers via a rowset table.
  QueryBlock outer;
  outer.AddTable(TableRef::Rel("c", rel.get()));
  outer.AddTable(TableRef::Rows("sub", &per_customer, {"cust", "total"}));
  outer.AddJoin(Access("c", {"c_key"}, ValueType::kInt),
                Access("sub", {"cust"}, ValueType::kInt));
  outer.GroupBy({});
  outer.Aggregate(AggSpec::CountStar());
  outer.Aggregate(AggSpec::Max(Access("sub", {"total"}, ValueType::kFloat)));
  RowSet rows = outer.Execute(ctx);
  EXPECT_EQ(rows[0][0].int_value(), 100);
  EXPECT_GT(rows[0][1].float_value(), 0.0);
}

TEST(QueryBlockTest, SelectProjection) {
  auto rel = LoadCombined(StorageMode::kTiles);
  QueryContext ctx;
  QueryBlock q;
  q.AddTable(TableRef::Rel(
      "n", rel.get(),
      exec::Eq(Access("n", {"n_name"}, ValueType::kString), ConstString("CANADA"))));
  q.Select({Access("n", {"n_key"}, ValueType::kInt)});
  RowSet rows = q.Execute(ctx);
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0][0].int_value(), 2);
  EXPECT_EQ(ScalarResult(rows).int_value(), 2);
}

}  // namespace
}  // namespace jsontiles::opt
