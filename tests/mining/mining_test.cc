#include <algorithm>
#include <map>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "mining/apriori.h"
#include "mining/fpgrowth.h"
#include "util/random.h"

namespace jsontiles::mining {
namespace {

// Canonical form for comparing miner outputs.
std::map<std::vector<Item>, uint32_t> ToMap(const std::vector<Itemset>& sets) {
  std::map<std::vector<Item>, uint32_t> m;
  for (const auto& s : sets) m[s.items] = s.support;
  return m;
}

TEST(MaxItemsetSizeTest, MatchesEquationOne) {
  // n=4: C(4,1)=4, +C(4,2)=6 -> 10, +C(4,3)=4 -> 14, +C(4,4)=1 -> 15.
  EXPECT_EQ(MaxItemsetSize(4, 3), 1);
  EXPECT_EQ(MaxItemsetSize(4, 4), 1);
  EXPECT_EQ(MaxItemsetSize(4, 10), 2);
  EXPECT_EQ(MaxItemsetSize(4, 14), 3);
  EXPECT_EQ(MaxItemsetSize(4, 15), 4);
  EXPECT_EQ(MaxItemsetSize(4, 1000), 4);
  EXPECT_EQ(MaxItemsetSize(0, 100), 0);
  // Always at least one even with a tiny budget.
  EXPECT_EQ(MaxItemsetSize(100, 1), 1);
  // Large n with a small budget stays small; no overflow.
  EXPECT_LE(MaxItemsetSize(10000, 4096), 2);
}

TEST(FpGrowthTest, PaperRunningExample) {
  // Tile #2 of Figure 2: items i,c,t,u_i,r (0..4) in all 4 tuples; g_l (5)
  // in 3 of 4. Threshold 60% of 4 tuples -> min_support 3.
  std::vector<Transaction> txs = {
      {0, 1, 2, 3, 4, 5},
      {0, 1, 2, 3, 4},  // tuple 6 lacks geo lat
      {0, 1, 2, 3, 4, 5},
      {0, 1, 2, 3, 4, 5},
  };
  FpGrowthMiner miner;
  MinerOptions options;
  options.min_support = 3;
  options.budget = 100000;
  auto result = ToMap(miner.Mine(txs, options));
  // The maximal itemsets of the paper: {i,c,t,u_i,r} support 4 and
  // {i,c,t,u_i,r,g_l} support 3.
  EXPECT_EQ(result.at({0, 1, 2, 3, 4}), 4u);
  EXPECT_EQ(result.at({0, 1, 2, 3, 4, 5}), 3u);
  // Every subset is frequent too; spot-check counts.
  EXPECT_EQ(result.at({0}), 4u);
  EXPECT_EQ(result.at({5}), 3u);
  EXPECT_EQ(result.at({2, 5}), 3u);
}

TEST(FpGrowthTest, ThresholdFiltersInfrequent) {
  std::vector<Transaction> txs = {{1, 2}, {1, 2}, {1, 3}, {1}};
  FpGrowthMiner miner;
  MinerOptions options;
  options.min_support = 2;
  auto result = ToMap(miner.Mine(txs, options));
  EXPECT_EQ(result.at({1}), 4u);
  EXPECT_EQ(result.at({2}), 2u);
  EXPECT_EQ(result.at({1, 2}), 2u);
  EXPECT_EQ(result.count({3}), 0u);     // support 1
  EXPECT_EQ(result.count({1, 3}), 0u);
}

TEST(FpGrowthTest, EmptyInputs) {
  FpGrowthMiner miner;
  MinerOptions options;
  options.min_support = 1;
  EXPECT_TRUE(miner.Mine({}, options).empty());
  EXPECT_TRUE(miner.Mine({{}, {}}, options).empty());
  options.min_support = 0;
  EXPECT_TRUE(miner.Mine({{1}}, options).empty());
}

TEST(FpGrowthTest, BudgetLimitsOutput) {
  // 10 items always together: 2^10 - 1 itemsets without a budget.
  std::vector<Transaction> txs(5);
  for (auto& tx : txs) {
    for (Item i = 0; i < 10; i++) tx.push_back(i);
  }
  FpGrowthMiner miner;
  MinerOptions options;
  options.min_support = 5;
  options.budget = 50;  // C(10,1)=10 fits; +C(10,2)=45 -> 55 > 50 -> k=1
  auto result = miner.Mine(txs, options);
  EXPECT_LE(result.size(), 50u);
  for (const auto& s : result) EXPECT_EQ(s.items.size(), 1u);
}

TEST(FpGrowthTest, SupportsAreConsistent) {
  // Support of a superset never exceeds support of a subset.
  Random rng(3);
  std::vector<Transaction> txs;
  for (int i = 0; i < 100; i++) {
    Transaction tx;
    for (Item item = 0; item < 8; item++) {
      if (rng.Chance(0.5)) tx.push_back(item);
    }
    txs.push_back(tx);
  }
  FpGrowthMiner miner;
  MinerOptions options;
  options.min_support = 10;
  options.budget = 1 << 20;
  auto result = miner.Mine(txs, options);
  auto map = ToMap(result);
  for (const auto& s : result) {
    for (size_t drop = 0; drop < s.items.size() && s.items.size() > 1; drop++) {
      std::vector<Item> subset;
      for (size_t i = 0; i < s.items.size(); i++) {
        if (i != drop) subset.push_back(s.items[i]);
      }
      ASSERT_TRUE(map.count(subset)) << "missing subset (downward closure)";
      EXPECT_GE(map.at(subset), s.support);
    }
  }
}

class MinerEquivalenceTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(MinerEquivalenceTest, FpGrowthMatchesApriori) {
  Random rng(GetParam());
  std::vector<Transaction> txs;
  int num_items = 10;
  for (int i = 0; i < 60; i++) {
    Transaction tx;
    for (Item item = 0; item < static_cast<Item>(num_items); item++) {
      // Correlated groups: items 0-3 usually co-occur.
      double p = item < 4 ? 0.7 : 0.25;
      if (rng.Chance(p)) tx.push_back(item);
    }
    txs.push_back(tx);
  }
  FpGrowthMiner fp;
  MinerOptions options;
  options.min_support = 12;
  options.budget = 1 << 30;
  auto fp_result = ToMap(fp.Mine(txs, options));

  AprioriMiner apriori;
  auto ap_result = ToMap(apriori.Mine(txs, 12, num_items));

  EXPECT_EQ(fp_result, ap_result);
}

INSTANTIATE_TEST_SUITE_P(Seeds, MinerEquivalenceTest,
                         ::testing::Values(1, 7, 42, 1234, 99999));

TEST(AprioriTest, MaxSizeBound) {
  std::vector<Transaction> txs(4, {0, 1, 2, 3});
  AprioriMiner miner;
  auto result = miner.Mine(txs, 4, 2);
  for (const auto& s : result) EXPECT_LE(s.items.size(), 2u);
  EXPECT_EQ(result.size(), 4u + 6u);  // C(4,1) + C(4,2)
}

}  // namespace
}  // namespace jsontiles::mining
