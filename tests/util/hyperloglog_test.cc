#include "util/hyperloglog.h"

#include <cmath>
#include <string>

#include <gtest/gtest.h>

namespace jsontiles {
namespace {

TEST(HyperLogLogTest, EmptyEstimatesZero) {
  HyperLogLog hll;
  EXPECT_LT(hll.Estimate(), 1.0);
}

TEST(HyperLogLogTest, SmallCardinalityExact) {
  HyperLogLog hll;
  for (int i = 0; i < 10; i++) hll.AddInt(static_cast<uint64_t>(i));
  double est = hll.Estimate();
  EXPECT_NEAR(est, 10.0, 2.0);
}

TEST(HyperLogLogTest, DuplicatesDoNotInflate) {
  HyperLogLog hll;
  for (int rep = 0; rep < 100; rep++) {
    for (int i = 0; i < 50; i++) hll.AddString("value_" + std::to_string(i));
  }
  EXPECT_NEAR(hll.Estimate(), 50.0, 10.0);
}

class HyperLogLogAccuracyTest : public ::testing::TestWithParam<int> {};

TEST_P(HyperLogLogAccuracyTest, WithinFivePercent) {
  const int n = GetParam();
  HyperLogLog hll(11);
  for (int i = 0; i < n; i++) hll.AddInt(static_cast<uint64_t>(i) * 7919 + 13);
  double est = hll.Estimate();
  double err = std::abs(est - n) / n;
  EXPECT_LT(err, 0.08) << "n=" << n << " est=" << est;
}

INSTANTIATE_TEST_SUITE_P(Cardinalities, HyperLogLogAccuracyTest,
                         ::testing::Values(100, 1000, 10000, 100000, 1000000));

TEST(HyperLogLogTest, MergeMatchesUnion) {
  HyperLogLog a(11), b(11), u(11);
  for (int i = 0; i < 5000; i++) {
    a.AddInt(static_cast<uint64_t>(i));
    u.AddInt(static_cast<uint64_t>(i));
  }
  for (int i = 2500; i < 7500; i++) {
    b.AddInt(static_cast<uint64_t>(i));
    u.AddInt(static_cast<uint64_t>(i));
  }
  a.Merge(b);
  EXPECT_DOUBLE_EQ(a.Estimate(), u.Estimate());
}

}  // namespace
}  // namespace jsontiles
