#include "util/date.h"

#include <string>

#include <gtest/gtest.h>

namespace jsontiles {
namespace {

TEST(DateTest, CivilRoundTrip) {
  for (int64_t days : {int64_t{0}, int64_t{1}, int64_t{-1}, int64_t{18413},
                       int64_t{-719162}, int64_t{2932896}}) {
    int y, m, d;
    CivilFromDays(days, &y, &m, &d);
    EXPECT_EQ(DaysFromCivil(y, m, d), days);
  }
}

TEST(DateTest, EpochIsZero) {
  EXPECT_EQ(DaysFromCivil(1970, 1, 1), 0);
  EXPECT_EQ(MakeTimestamp(1970, 1, 1), 0);
}

TEST(DateTest, ParsePlainDate) {
  Timestamp ts;
  ASSERT_TRUE(ParseTimestamp("2020-06-01", &ts));
  EXPECT_EQ(FormatDate(ts), "2020-06-01");
  EXPECT_EQ(TimestampYear(ts), 2020);
}

TEST(DateTest, ParseDateTime) {
  Timestamp ts;
  ASSERT_TRUE(ParseTimestamp("1998-12-01 13:45:59", &ts));
  EXPECT_EQ(FormatTimestamp(ts), "1998-12-01 13:45:59");
  ASSERT_TRUE(ParseTimestamp("1998-12-01T13:45:59", &ts));
  EXPECT_EQ(FormatTimestamp(ts), "1998-12-01 13:45:59");
}

TEST(DateTest, ParseFractionalSeconds) {
  Timestamp ts;
  ASSERT_TRUE(ParseTimestamp("2021-01-02 03:04:05.123456", &ts));
  EXPECT_EQ(FormatTimestamp(ts), "2021-01-02 03:04:05.123456");
  ASSERT_TRUE(ParseTimestamp("2021-01-02 03:04:05.5", &ts));
  EXPECT_EQ(ts % kMicrosPerSecond, 500000);
}

TEST(DateTest, ParseTimezones) {
  Timestamp utc, offset;
  ASSERT_TRUE(ParseTimestamp("2020-06-01T12:00:00Z", &utc));
  ASSERT_TRUE(ParseTimestamp("2020-06-01T14:00:00+02:00", &offset));
  EXPECT_EQ(utc, offset);
  ASSERT_TRUE(ParseTimestamp("2020-06-01T10:30:00-01:30", &offset));
  EXPECT_EQ(utc, offset);
}

TEST(DateTest, ParseTwitterFormat) {
  Timestamp ts, iso;
  ASSERT_TRUE(ParseTimestamp("Mon Jun 01 12:34:56 +0000 2020", &ts));
  ASSERT_TRUE(ParseTimestamp("2020-06-01T12:34:56Z", &iso));
  EXPECT_EQ(ts, iso);
}

TEST(DateTest, RejectsGarbage) {
  Timestamp ts;
  EXPECT_FALSE(ParseTimestamp("", &ts));
  EXPECT_FALSE(ParseTimestamp("hello world", &ts));
  EXPECT_FALSE(ParseTimestamp("2020-13-01", &ts));     // bad month
  EXPECT_FALSE(ParseTimestamp("2020-02-30", &ts));     // bad day
  EXPECT_FALSE(ParseTimestamp("2020-06-01x", &ts));    // trailing junk
  EXPECT_FALSE(ParseTimestamp("2020-06-01 25:00:00", &ts));  // bad hour
  EXPECT_FALSE(ParseTimestamp("12345", &ts));
  EXPECT_FALSE(ParseTimestamp("2019-12345", &ts));
}

TEST(DateTest, LeapYearHandling) {
  Timestamp ts;
  EXPECT_TRUE(ParseTimestamp("2020-02-29", &ts));
  EXPECT_FALSE(ParseTimestamp("2019-02-29", &ts));
  EXPECT_TRUE(ParseTimestamp("2000-02-29", &ts));
  EXPECT_FALSE(ParseTimestamp("1900-02-29", &ts));  // 100-year rule
}

TEST(DateTest, Arithmetic) {
  Timestamp ts;
  ASSERT_TRUE(ParseTimestamp("1998-12-01", &ts));
  EXPECT_EQ(FormatDate(AddDays(ts, -90)), "1998-09-02");
  EXPECT_EQ(FormatDate(AddMonths(ts, 3)), "1999-03-01");
  EXPECT_EQ(FormatDate(AddYears(ts, 1)), "1999-12-01");
  // Month-end clamping.
  ASSERT_TRUE(ParseTimestamp("2020-01-31", &ts));
  EXPECT_EQ(FormatDate(AddMonths(ts, 1)), "2020-02-29");
}

TEST(DateTest, LooksLikeTimestamp) {
  EXPECT_TRUE(LooksLikeTimestamp("1996-01-02"));
  EXPECT_FALSE(LooksLikeTimestamp("FURNITURE"));
  EXPECT_FALSE(LooksLikeTimestamp("1234567890"));
}

}  // namespace
}  // namespace jsontiles
