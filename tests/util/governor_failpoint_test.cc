#include "util/resource_governor.h"

#include <cstring>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "util/failpoint.h"
#include "util/temp_file.h"

namespace jsontiles {
namespace {

// ---------------------------------------------------------------------------
// MemoryBudget
// ---------------------------------------------------------------------------

TEST(MemoryBudgetTest, UnlimitedAcceptsEverything) {
  MemoryBudget budget;
  EXPECT_TRUE(budget.TryCharge(1ull << 40));
  EXPECT_EQ(budget.used(), 1ull << 40);
  EXPECT_EQ(budget.remaining(), SIZE_MAX);
  budget.Release(1ull << 40);
  EXPECT_EQ(budget.used(), 0u);
}

TEST(MemoryBudgetTest, HardLimitRefusesAndRollsBack) {
  MemoryBudget budget(1000);
  EXPECT_TRUE(budget.TryCharge(600));
  EXPECT_FALSE(budget.TryCharge(500));  // would exceed
  EXPECT_EQ(budget.used(), 600u);       // refusal left usage unchanged
  EXPECT_EQ(budget.remaining(), 400u);
  EXPECT_TRUE(budget.TryCharge(400));
  EXPECT_EQ(budget.remaining(), 0u);
  budget.Release(1000);
  EXPECT_EQ(budget.used(), 0u);
  EXPECT_EQ(budget.peak(), 1000u);
}

TEST(MemoryBudgetTest, HierarchyChargesEveryAncestor) {
  MemoryBudget root(1000);
  MemoryBudget child_a(MemoryBudget::kUnlimited, &root);
  MemoryBudget child_b(MemoryBudget::kUnlimited, &root);
  EXPECT_TRUE(child_a.TryCharge(700));
  EXPECT_EQ(root.used(), 700u);
  // The parent's limit refuses through an unlimited child, and the failed
  // charge must not stick at the child either.
  EXPECT_FALSE(child_b.TryCharge(400));
  EXPECT_EQ(child_b.used(), 0u);
  EXPECT_EQ(root.used(), 700u);
  EXPECT_TRUE(child_b.TryCharge(300));
  child_a.Release(700);
  child_b.Release(300);
  EXPECT_EQ(root.used(), 0u);
}

TEST(MemoryBudgetTest, TighterChildLimitWins) {
  MemoryBudget root(1ull << 30);
  MemoryBudget child(100, &root);
  EXPECT_FALSE(child.TryCharge(101));
  EXPECT_EQ(root.used(), 0u);  // child refusal never reached the parent
  EXPECT_TRUE(child.TryCharge(100));
  EXPECT_EQ(root.used(), 100u);
}

TEST(MemoryBudgetTest, ConcurrentChargesNeverExceedLimit) {
  constexpr size_t kLimit = 10000;
  MemoryBudget budget(kLimit);
  std::vector<std::thread> threads;
  std::atomic<size_t> granted{0};
  for (int t = 0; t < 8; t++) {
    threads.emplace_back([&] {
      for (int i = 0; i < 5000; i++) {
        if (budget.TryCharge(7)) {
          granted.fetch_add(7);
          budget.Release(7);
          granted.fetch_sub(7);
        }
        ASSERT_LE(budget.used(), kLimit);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(budget.used(), 0u);
  EXPECT_LE(budget.peak(), kLimit);
}

TEST(BudgetReservationTest, ReleasesOnDestruction) {
  MemoryBudget budget(1000);
  {
    BudgetReservation res(&budget);
    EXPECT_TRUE(res.Grow(400));
    EXPECT_TRUE(res.Grow(400));
    EXPECT_FALSE(res.Grow(400));
    EXPECT_EQ(res.held(), 800u);
    EXPECT_EQ(budget.used(), 800u);
  }
  EXPECT_EQ(budget.used(), 0u);
}

TEST(BudgetReservationTest, NullBudgetIsUnlimited) {
  BudgetReservation res(nullptr);
  EXPECT_TRUE(res.Grow(1ull << 40));
  EXPECT_EQ(res.held(), 1ull << 40);
}

// ---------------------------------------------------------------------------
// Failpoints
// ---------------------------------------------------------------------------

#if JSONTILES_FAILPOINTS_AVAILABLE

class FailpointTest : public ::testing::Test {
 protected:
  void TearDown() override { failpoint::DisableAll(); }
};

TEST_F(FailpointTest, DisabledNeverFires) {
  EXPECT_FALSE(failpoint::Fires("test.unarmed"));
  EXPECT_TRUE(failpoint::Check("test.unarmed").ok());
}

TEST_F(FailpointTest, AlwaysMode) {
  failpoint::Enable("test.always", failpoint::Spec::Always());
  EXPECT_TRUE(failpoint::Fires("test.always"));
  EXPECT_TRUE(failpoint::Fires("test.always"));
  Status st = failpoint::Check("test.always");
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(failpoint::Hits("test.always"), 3u);
}

TEST_F(FailpointTest, NthModeFiresExactlyOnce) {
  failpoint::Enable("test.nth", failpoint::Spec::Nth(3));
  EXPECT_FALSE(failpoint::Fires("test.nth"));
  EXPECT_FALSE(failpoint::Fires("test.nth"));
  EXPECT_TRUE(failpoint::Fires("test.nth"));
  EXPECT_FALSE(failpoint::Fires("test.nth"));  // only the 3rd hit
}

TEST_F(FailpointTest, EveryKMode) {
  failpoint::Enable("test.everyk", failpoint::Spec::EveryK(2));
  int fired = 0;
  for (int i = 0; i < 10; i++) {
    if (failpoint::Fires("test.everyk")) fired++;
  }
  EXPECT_EQ(fired, 5);
}

TEST_F(FailpointTest, ReenableResetsHitCount) {
  failpoint::Enable("test.reset", failpoint::Spec::Nth(2));
  EXPECT_FALSE(failpoint::Fires("test.reset"));
  failpoint::Enable("test.reset", failpoint::Spec::Nth(2));
  EXPECT_FALSE(failpoint::Fires("test.reset"));
  EXPECT_TRUE(failpoint::Fires("test.reset"));
}

TEST_F(FailpointTest, GovernorChargeFailpoint) {
  MemoryBudget budget;  // unlimited, yet the failpoint still refuses
  failpoint::Enable("governor.charge", failpoint::Spec::Nth(2));
  EXPECT_TRUE(budget.TryCharge(10));
  EXPECT_FALSE(budget.TryCharge(10));
  EXPECT_EQ(budget.used(), 10u);  // refused charge rolled back
  EXPECT_TRUE(budget.TryCharge(10));
}

TEST_F(FailpointTest, TempFileFailpoints) {
  failpoint::Enable("tempfile.create", failpoint::Spec::Always());
  EXPECT_FALSE(TempFile::Create().ok());
  failpoint::Disable("tempfile.create");

  auto file = TempFile::Create();
  ASSERT_TRUE(file.ok());
  TempFile tf = file.MoveValueOrDie();
  failpoint::Enable("tempfile.append", failpoint::Spec::Always());
  EXPECT_FALSE(tf.Append("abc", 3).ok());
  failpoint::Disable("tempfile.append");
  ASSERT_TRUE(tf.Append("abc", 3).ok());

  failpoint::Enable("tempfile.read", failpoint::Spec::Always());
  char buf[3];
  EXPECT_FALSE(tf.ReadAt(0, buf, 3).ok());
  failpoint::Disable("tempfile.read");
  ASSERT_TRUE(tf.ReadAt(0, buf, 3).ok());
  EXPECT_EQ(std::memcmp(buf, "abc", 3), 0);
}

#endif  // JSONTILES_FAILPOINTS_AVAILABLE

// ---------------------------------------------------------------------------
// TempFile
// ---------------------------------------------------------------------------

TEST(TempFileTest, AppendReadRoundTrip) {
  auto file = TempFile::Create();
  ASSERT_TRUE(file.ok()) << file.status().ToString();
  TempFile tf = file.MoveValueOrDie();
  ASSERT_TRUE(tf.valid());
  std::string payload(100000, 'x');
  for (size_t i = 0; i < payload.size(); i++) {
    payload[i] = static_cast<char>(i * 31);
  }
  ASSERT_TRUE(tf.Append(payload.data(), payload.size()).ok());
  ASSERT_TRUE(tf.Append("tail", 4).ok());
  EXPECT_EQ(tf.size(), payload.size() + 4);

  std::string back(payload.size(), 0);
  ASSERT_TRUE(tf.ReadAt(0, back.data(), back.size()).ok());
  EXPECT_EQ(back, payload);
  char tail[4];
  ASSERT_TRUE(tf.ReadAt(payload.size(), tail, 4).ok());
  EXPECT_EQ(std::memcmp(tail, "tail", 4), 0);
}

TEST(TempFileTest, ShortReadIsError) {
  auto file = TempFile::Create();
  ASSERT_TRUE(file.ok());
  TempFile tf = file.MoveValueOrDie();
  ASSERT_TRUE(tf.Append("abc", 3).ok());
  char buf[8];
  EXPECT_FALSE(tf.ReadAt(0, buf, 8).ok());
  EXPECT_FALSE(tf.ReadAt(100, buf, 1).ok());
}

TEST(TempFileTest, MoveTransfersOwnership) {
  auto file = TempFile::Create();
  ASSERT_TRUE(file.ok());
  TempFile a = file.MoveValueOrDie();
  int fd = a.fd();
  TempFile b = std::move(a);
  EXPECT_FALSE(a.valid());
  EXPECT_TRUE(b.valid());
  EXPECT_EQ(b.fd(), fd);
}

TEST(TempFileTest, InvalidDirFails) {
  EXPECT_FALSE(TempFile::Create("/nonexistent/dir/for/sure").ok());
}

}  // namespace
}  // namespace jsontiles
