#include "util/decimal.h"

#include <string>

#include <gtest/gtest.h>

namespace jsontiles {
namespace {

TEST(NumericTest, ParseIntegers) {
  Numeric n;
  ASSERT_TRUE(ParseNumeric("0", &n));
  EXPECT_EQ(n.unscaled, 0);
  EXPECT_EQ(n.scale, 0);
  ASSERT_TRUE(ParseNumeric("12345", &n));
  EXPECT_EQ(n.unscaled, 12345);
  ASSERT_TRUE(ParseNumeric("-7", &n));
  EXPECT_EQ(n.unscaled, -7);
}

TEST(NumericTest, ParseDecimals) {
  Numeric n;
  ASSERT_TRUE(ParseNumeric("19.99", &n));
  EXPECT_EQ(n.unscaled, 1999);
  EXPECT_EQ(n.scale, 2);
  ASSERT_TRUE(ParseNumeric("0.001", &n));
  EXPECT_EQ(n.unscaled, 1);
  EXPECT_EQ(n.scale, 3);
  ASSERT_TRUE(ParseNumeric("-12.50", &n));
  EXPECT_EQ(n.unscaled, -1250);
  EXPECT_EQ(n.scale, 2);
}

TEST(NumericTest, RejectsNonCanonical) {
  Numeric n;
  EXPECT_FALSE(ParseNumeric("", &n));
  EXPECT_FALSE(ParseNumeric("+1", &n));
  EXPECT_FALSE(ParseNumeric("01", &n));     // leading zero
  EXPECT_FALSE(ParseNumeric(".5", &n));     // no integer part
  EXPECT_FALSE(ParseNumeric("1.", &n));     // no fraction digits
  EXPECT_FALSE(ParseNumeric("1e5", &n));    // exponent
  EXPECT_FALSE(ParseNumeric("-0", &n));     // negative zero
  EXPECT_FALSE(ParseNumeric("1 2", &n));
  EXPECT_FALSE(ParseNumeric("abc", &n));
  EXPECT_FALSE(ParseNumeric("12345678901234567890", &n));  // > 18 digits
}

class NumericRoundTripTest : public ::testing::TestWithParam<const char*> {};

TEST_P(NumericRoundTripTest, ToStringReconstructsExactInput) {
  Numeric n;
  ASSERT_TRUE(ParseNumeric(GetParam(), &n));
  EXPECT_EQ(n.ToString(), GetParam());
}

INSTANTIATE_TEST_SUITE_P(Values, NumericRoundTripTest,
                         ::testing::Values("0", "1", "-1", "19.99", "-12.50",
                                           "0.001", "123456789.123456789",
                                           "999999999999999999", "0.000000001"));

TEST(NumericTest, Conversions) {
  Numeric n;
  ASSERT_TRUE(ParseNumeric("19.99", &n));
  EXPECT_DOUBLE_EQ(n.ToDouble(), 19.99);
  EXPECT_EQ(n.ToInt64(), 19);
  ASSERT_TRUE(ParseNumeric("-3.7", &n));
  EXPECT_EQ(n.ToInt64(), -3);
}

TEST(NumericTest, LooksLikeNumeric) {
  EXPECT_TRUE(LooksLikeNumeric("42.00"));
  EXPECT_FALSE(LooksLikeNumeric("42x"));
  EXPECT_FALSE(LooksLikeNumeric("NaN"));
}

}  // namespace
}  // namespace jsontiles
