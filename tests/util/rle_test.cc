#include "util/rle.h"

#include <vector>

#include <gtest/gtest.h>

#include "util/random.h"

namespace jsontiles::rle {
namespace {

void RoundTrip(const std::vector<int64_t>& input) {
  auto encoded = EncodeInt64(input.data(), input.size());
  EXPECT_EQ(encoded.size(), EncodedSizeInt64(input.data(), input.size()));
  std::vector<int64_t> decoded;
  ASSERT_TRUE(DecodeInt64(encoded.data(), encoded.size(), &decoded));
  EXPECT_EQ(decoded, input);
}

TEST(RleTest, Empty) { RoundTrip({}); }

TEST(RleTest, SingleValue) { RoundTrip({42}); }

TEST(RleTest, LongRunCompressesHard) {
  std::vector<int64_t> input(100000, 7);
  auto encoded = EncodeInt64(input.data(), input.size());
  EXPECT_LT(encoded.size(), 8u);
  RoundTrip(input);
}

TEST(RleTest, AlternatingWorstCase) {
  std::vector<int64_t> input;
  for (int i = 0; i < 1000; i++) input.push_back(i % 2);
  EXPECT_EQ(CountRuns(input.data(), input.size()), 1000u);
  RoundTrip(input);
}

TEST(RleTest, NegativesAndDeltas) {
  RoundTrip({-5, -5, -5, 100, 100, INT64_MIN, INT64_MAX, 0, 0});
}

TEST(RleTest, SortedRunsBeatShuffled) {
  Random rng(1);
  std::vector<int64_t> values;
  for (int i = 0; i < 10000; i++) values.push_back(static_cast<int64_t>(i / 100));
  size_t sorted_size = EncodedSizeInt64(values.data(), values.size());
  // Shuffle destroys the runs.
  for (size_t i = values.size(); i > 1; i--) {
    std::swap(values[i - 1], values[rng.Uniform(i)]);
  }
  size_t shuffled_size = EncodedSizeInt64(values.data(), values.size());
  EXPECT_LT(sorted_size * 10, shuffled_size);
  RoundTrip(values);
}

TEST(RleTest, CountRuns) {
  std::vector<int64_t> v = {1, 1, 2, 2, 2, 3};
  EXPECT_EQ(CountRuns(v.data(), v.size()), 3u);
  EXPECT_EQ(CountRuns(v.data(), 0), 0u);
}

TEST(RleTest, DecodeRejectsGarbage) {
  std::vector<int64_t> out;
  // A zero run length is invalid.
  uint8_t bad[] = {0x00, 0x02};
  EXPECT_FALSE(DecodeInt64(bad, sizeof(bad), &out));
}

class RleFuzzTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RleFuzzTest, RandomMixRoundTrips) {
  Random rng(GetParam());
  std::vector<int64_t> input;
  size_t n = 1 + rng.Uniform(5000);
  while (input.size() < n) {
    int64_t v = rng.Range(-1000, 1000);
    size_t run = 1 + rng.Uniform(20);
    for (size_t i = 0; i < run && input.size() < n; i++) input.push_back(v);
  }
  RoundTrip(input);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RleFuzzTest, ::testing::Values(1, 2, 3, 4, 5));

}  // namespace
}  // namespace jsontiles::rle
