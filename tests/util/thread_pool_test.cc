#include "util/thread_pool.h"

#include <array>
#include <atomic>
#include <mutex>
#include <set>
#include <vector>

#include <gtest/gtest.h>

namespace jsontiles {
namespace {

TEST(ThreadPoolStressTest, ParallelForZeroItems) {
  ThreadPool pool(4);
  std::atomic<int> calls{0};
  pool.ParallelFor(0, [&](size_t, size_t) { calls.fetch_add(1); });
  EXPECT_EQ(calls.load(), 0);
}

TEST(ThreadPoolStressTest, ParallelForFewerItemsThanWorkers) {
  ThreadPool pool(8);
  std::atomic<int> calls{0};
  std::array<std::atomic<int>, 3> per_index{};
  pool.ParallelFor(3, [&](size_t i, size_t) {
    per_index[i].fetch_add(1);
    calls.fetch_add(1);
  });
  EXPECT_EQ(calls.load(), 3);
  for (auto& c : per_index) EXPECT_EQ(c.load(), 1);
}

TEST(ThreadPoolStressTest, ParallelForManyMoreItemsThanWorkers) {
  ThreadPool pool(4);
  constexpr size_t kN = 100000;
  std::vector<std::atomic<uint8_t>> hits(kN);
  pool.ParallelFor(kN, [&](size_t i, size_t) { hits[i].fetch_add(1); }, 64);
  for (size_t i = 0; i < kN; i++) {
    ASSERT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPoolStressTest, ParallelForWorkerIdsStayInRange) {
  ThreadPool pool(3);
  std::mutex mu;
  std::set<size_t> seen;
  pool.ParallelFor(1000, [&](size_t, size_t worker) {
    std::lock_guard<std::mutex> lock(mu);
    seen.insert(worker);
  });
  // 3 pool workers + the calling thread (worker id 3).
  for (size_t w : seen) EXPECT_LT(w, 4u);
}

TEST(ThreadPoolStressTest, RepeatedParallelForOnSamePool) {
  ThreadPool pool(4);
  for (int round = 0; round < 50; round++) {
    std::atomic<int64_t> sum{0};
    pool.ParallelFor(257, [&](size_t i, size_t) {
      sum.fetch_add(static_cast<int64_t>(i));
    });
    EXPECT_EQ(sum.load(), 257 * 256 / 2);
  }
}

TEST(ThreadPoolStressTest, SubmitManyTasksThenWaitIdle) {
  ThreadPool pool(4);
  std::atomic<int> done{0};
  for (int i = 0; i < 1000; i++) {
    pool.Submit([&] { done.fetch_add(1); });
  }
  pool.WaitIdle();
  EXPECT_EQ(done.load(), 1000);
}

TEST(ParallelForStatusTest, AllOkVisitsEveryItem) {
  ThreadPool pool(4);
  constexpr size_t kN = 10000;
  std::vector<std::atomic<uint8_t>> hits(kN);
  Status st = pool.ParallelForStatus(
      kN,
      [&](size_t i, size_t) {
        hits[i].fetch_add(1);
        return Status::OK();
      },
      16);
  ASSERT_TRUE(st.ok());
  for (size_t i = 0; i < kN; i++) ASSERT_EQ(hits[i].load(), 1) << i;
}

TEST(ParallelForStatusTest, ZeroItems) {
  ThreadPool pool(2);
  Status st = pool.ParallelForStatus(
      0, [](size_t, size_t) { return Status::Internal("never called"); });
  EXPECT_TRUE(st.ok());
}

TEST(ParallelForStatusTest, FirstErrorIsReturned) {
  ThreadPool pool(4);
  Status st = pool.ParallelForStatus(1000, [&](size_t i, size_t) {
    if (i == 123) return Status::Internal("chunk 123 failed");
    return Status::OK();
  });
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kInternal);
  EXPECT_EQ(st.message(), "chunk 123 failed");
}

TEST(ParallelForStatusTest, ErrorStopsRemainingWork) {
  ThreadPool pool(4);
  std::atomic<size_t> executed{0};
  Status st = pool.ParallelForStatus(
      100000,
      [&](size_t i, size_t) {
        executed.fetch_add(1);
        if (i == 0) return Status::Internal("early failure");
        return Status::OK();
      },
      1);
  ASSERT_FALSE(st.ok());
  // Chunk 0 fails immediately; the early-out check must prevent most of the
  // other 99999 chunks from running. Allow generous in-flight slack.
  EXPECT_LT(executed.load(), 50000u);
}

TEST(ParallelForStatusTest, ReturnsOnlyAfterAllWorkersStop) {
  // The Status overload must not return (letting its stack state die) while
  // helper tasks still touch that state. Destroying the pool right after a
  // failing run is exactly the unwind path; ASan/TSan make violations fatal.
  for (int round = 0; round < 20; round++) {
    ThreadPool pool(4);
    std::atomic<int> calls{0};
    Status st = pool.ParallelForStatus(
        1000,
        [&](size_t i, size_t) {
          calls.fetch_add(1);
          if (i % 97 == 0) return Status::Internal("fail");
          return Status::OK();
        },
        1);
    EXPECT_FALSE(st.ok());
  }
}

}  // namespace
}  // namespace jsontiles
