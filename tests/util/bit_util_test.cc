#include "util/bit_util.h"

#include <gtest/gtest.h>

namespace jsontiles::bit_util {
namespace {

TEST(BitUtilTest, MinBytes) {
  EXPECT_EQ(MinBytes(0), 1);
  EXPECT_EQ(MinBytes(1), 1);
  EXPECT_EQ(MinBytes(255), 1);
  EXPECT_EQ(MinBytes(256), 2);
  EXPECT_EQ(MinBytes(65535), 2);
  EXPECT_EQ(MinBytes(65536), 3);
  EXPECT_EQ(MinBytes(~uint64_t{0}), 8);
}

TEST(BitUtilTest, NextPow2) {
  EXPECT_EQ(NextPow2(0), 1u);
  EXPECT_EQ(NextPow2(1), 1u);
  EXPECT_EQ(NextPow2(2), 2u);
  EXPECT_EQ(NextPow2(3), 4u);
  EXPECT_EQ(NextPow2(1024), 1024u);
  EXPECT_EQ(NextPow2(1025), 2048u);
}

TEST(BitUtilTest, StoreLoadLERoundTrip) {
  uint8_t buf[8];
  for (uint64_t v : {uint64_t{0}, uint64_t{1}, uint64_t{0x1234},
                     uint64_t{0xDEADBEEF}, ~uint64_t{0}}) {
    int n = MinBytes(v);
    StoreLE(buf, v, n);
    EXPECT_EQ(LoadLE(buf, n), v);
  }
}

TEST(BitUtilTest, VarintRoundTrip) {
  uint8_t buf[10];
  for (uint64_t v : {uint64_t{0}, uint64_t{127}, uint64_t{128}, uint64_t{300},
                     uint64_t{1} << 32, ~uint64_t{0}}) {
    int n = EncodeVarint(buf, v);
    EXPECT_EQ(n, VarintSize(v));
    size_t pos = 0;
    EXPECT_EQ(DecodeVarint(buf, &pos), v);
    EXPECT_EQ(pos, static_cast<size_t>(n));
  }
}

TEST(BitUtilTest, ZigZag) {
  for (int64_t v : {int64_t{0}, int64_t{-1}, int64_t{1}, int64_t{-1000},
                    int64_t{1000}, INT64_MIN, INT64_MAX}) {
    EXPECT_EQ(ZigZagDecode(ZigZagEncode(v)), v);
  }
  // Small magnitudes stay small.
  EXPECT_LE(ZigZagEncode(-3), 8u);
}

}  // namespace
}  // namespace jsontiles::bit_util
