#include "util/bloom_filter.h"

#include <string>

#include <gtest/gtest.h>

namespace jsontiles {
namespace {

TEST(BloomFilterTest, NoFalseNegatives) {
  BloomFilter filter(128);
  for (int i = 0; i < 128; i++) {
    filter.InsertString("key_" + std::to_string(i));
  }
  for (int i = 0; i < 128; i++) {
    EXPECT_TRUE(filter.MayContainString("key_" + std::to_string(i)));
  }
}

TEST(BloomFilterTest, LowFalsePositiveRate) {
  BloomFilter filter(256);
  for (int i = 0; i < 256; i++) {
    filter.InsertString("present_" + std::to_string(i));
  }
  int false_positives = 0;
  const int kProbes = 10000;
  for (int i = 0; i < kProbes; i++) {
    if (filter.MayContainString("absent_" + std::to_string(i))) false_positives++;
  }
  // Sized for ~1%; accept up to 3%.
  EXPECT_LT(false_positives, kProbes * 3 / 100);
}

TEST(BloomFilterTest, EmptyFilterRejectsEverything) {
  BloomFilter filter(64);
  EXPECT_FALSE(filter.MayContainString("anything"));
  EXPECT_FALSE(filter.MayContain(0));
}

TEST(BloomFilterTest, TracksInsertCount) {
  BloomFilter filter(16);
  EXPECT_EQ(filter.num_inserted(), 0u);
  filter.InsertString("a");
  filter.InsertString("b");
  EXPECT_EQ(filter.num_inserted(), 2u);
}

}  // namespace
}  // namespace jsontiles
