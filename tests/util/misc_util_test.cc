#include <atomic>
#include <cstring>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "util/arena.h"
#include "util/hash.h"
#include "util/random.h"
#include "util/thread_pool.h"

namespace jsontiles {
namespace {

TEST(ArenaTest, AllocationsAreAlignedAndDisjoint) {
  Arena arena(128);
  std::vector<uint8_t*> ptrs;
  for (int i = 1; i <= 100; i++) {
    uint8_t* p = arena.Allocate(static_cast<size_t>(i));
    EXPECT_EQ(reinterpret_cast<uintptr_t>(p) % 8, 0u);
    std::memset(p, i, static_cast<size_t>(i));
    ptrs.push_back(p);
  }
  // Verify no allocation overwrote another.
  for (int i = 1; i <= 100; i++) {
    for (int j = 0; j < i; j++) {
      EXPECT_EQ(ptrs[static_cast<size_t>(i - 1)][j], i);
    }
  }
}

TEST(ArenaTest, LargeAllocationExceedsBlockSize) {
  Arena arena(64);
  uint8_t* p = arena.Allocate(10000);
  std::memset(p, 0xAB, 10000);
  EXPECT_GE(arena.bytes_reserved(), 10000u);
}

TEST(ArenaTest, AllocateCopyPreservesBytes) {
  Arena arena;
  const char* src = "hello arena";
  uint8_t* p = arena.AllocateCopy(src, 11);
  EXPECT_EQ(std::memcmp(p, src, 11), 0);
}

TEST(ArenaTest, ResetReclaims) {
  Arena arena;
  arena.Allocate(1000);
  arena.Reset();
  EXPECT_EQ(arena.bytes_allocated(), 0u);
  arena.Allocate(8);  // usable after reset
}

TEST(HashTest, DeterministicAndSeedSensitive) {
  EXPECT_EQ(HashString("json"), HashString("json"));
  EXPECT_NE(HashString("json"), HashString("tile"));
  EXPECT_NE(HashString("json", 1), HashString("json", 2));
}

TEST(HashTest, AvalancheOnIntegers) {
  // Consecutive integers should hash far apart.
  std::set<uint64_t> buckets;
  for (uint64_t i = 0; i < 1000; i++) buckets.insert(HashInt(i) >> 56);
  EXPECT_GT(buckets.size(), 200u);  // spread across high bits
}

TEST(RandomTest, Deterministic) {
  Random a(123), b(123);
  for (int i = 0; i < 100; i++) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RandomTest, RangeIsInclusive) {
  Random rng(1);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 1000; i++) {
    int64_t v = rng.Range(3, 5);
    EXPECT_GE(v, 3);
    EXPECT_LE(v, 5);
    saw_lo |= v == 3;
    saw_hi |= v == 5;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(ZipfTest, SkewsTowardSmallValues) {
  Random rng(9);
  ZipfGenerator zipf(1000, 0.99);
  size_t low = 0, total = 20000;
  for (size_t i = 0; i < total; i++) {
    if (zipf.Next(rng) < 10) low++;
  }
  // With theta=0.99 the top-10 of 1000 items draw a large share.
  EXPECT_GT(low, total / 4);
}

TEST(ThreadPoolTest, ParallelForCoversAllIndices) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  pool.ParallelFor(1000, [&](size_t i, size_t) { hits[i].fetch_add(1); }, 16);
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolTest, SubmitAndWaitIdle) {
  ThreadPool pool(2);
  std::atomic<int> count{0};
  for (int i = 0; i < 50; i++) {
    pool.Submit([&count] { count.fetch_add(1); });
  }
  pool.WaitIdle();
  EXPECT_EQ(count.load(), 50);
}

TEST(ThreadPoolTest, SingleThreadPoolStillWorks) {
  ThreadPool pool(1);
  std::atomic<size_t> sum{0};
  pool.ParallelFor(100, [&](size_t i, size_t) { sum.fetch_add(i); });
  EXPECT_EQ(sum.load(), 4950u);
}

}  // namespace
}  // namespace jsontiles
