#include "util/lz4.h"

#include <cstring>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "util/random.h"

namespace jsontiles::lz4 {
namespace {

std::vector<uint8_t> RoundTrip(const std::vector<uint8_t>& input) {
  std::vector<uint8_t> compressed = Compress(input.data(), input.size());
  std::vector<uint8_t> output(input.size());
  EXPECT_TRUE(Decompress(compressed.data(), compressed.size(), output.data(),
                         output.size()));
  return output;
}

TEST(Lz4Test, EmptyInput) {
  std::vector<uint8_t> input;
  EXPECT_EQ(RoundTrip(input), input);
}

TEST(Lz4Test, ShortInput) {
  std::vector<uint8_t> input = {'a', 'b', 'c'};
  EXPECT_EQ(RoundTrip(input), input);
}

TEST(Lz4Test, RepetitiveInputCompressesWell) {
  std::vector<uint8_t> input(100000, 0);
  for (size_t i = 0; i < input.size(); i++) {
    input[i] = static_cast<uint8_t>("abcd"[i % 4]);
  }
  std::vector<uint8_t> compressed = Compress(input.data(), input.size());
  EXPECT_LT(compressed.size(), input.size() / 10);
  std::vector<uint8_t> output(input.size());
  ASSERT_TRUE(Decompress(compressed.data(), compressed.size(), output.data(),
                         output.size()));
  EXPECT_EQ(output, input);
}

TEST(Lz4Test, IncompressibleRandomData) {
  Random rng(7);
  std::vector<uint8_t> input(50000);
  for (auto& b : input) b = static_cast<uint8_t>(rng.Next());
  EXPECT_EQ(RoundTrip(input), input);
  // Worst-case bound holds.
  std::vector<uint8_t> compressed = Compress(input.data(), input.size());
  EXPECT_LE(compressed.size(), MaxCompressedSize(input.size()));
}

TEST(Lz4Test, OverlappingMatchesRle) {
  std::vector<uint8_t> input(4096, 'x');  // offset-1 overlapping match
  std::vector<uint8_t> compressed = Compress(input.data(), input.size());
  EXPECT_LT(compressed.size(), 64u);
  EXPECT_EQ(RoundTrip(input), input);
}

class Lz4SizeSweepTest : public ::testing::TestWithParam<size_t> {};

TEST_P(Lz4SizeSweepTest, RoundTripMixedContent) {
  Random rng(GetParam());
  std::vector<uint8_t> input(GetParam());
  // Mix of runs and noise exercises literal/match boundaries.
  size_t i = 0;
  while (i < input.size()) {
    if (rng.Chance(0.5)) {
      uint8_t c = static_cast<uint8_t>(rng.Next());
      size_t run = 1 + rng.Uniform(40);
      for (size_t j = 0; j < run && i < input.size(); j++) input[i++] = c;
    } else {
      input[i++] = static_cast<uint8_t>(rng.Next());
    }
  }
  EXPECT_EQ(RoundTrip(input), input);
}

INSTANTIATE_TEST_SUITE_P(Sizes, Lz4SizeSweepTest,
                         ::testing::Values(1, 2, 5, 13, 64, 255, 256, 1000,
                                           4096, 65536, 1000000));

TEST(Lz4Test, DecompressRejectsTruncatedInput) {
  std::vector<uint8_t> input(1000, 'z');
  std::vector<uint8_t> compressed = Compress(input.data(), input.size());
  std::vector<uint8_t> output(input.size());
  EXPECT_FALSE(Decompress(compressed.data(), compressed.size() / 2, output.data(),
                          output.size()));
}

TEST(Lz4Test, DecompressRejectsBadOffset) {
  // Token: 0 literals + match of 4 with offset 5 at position 0 (invalid).
  std::vector<uint8_t> bad = {0x00, 0x05, 0x00};
  std::vector<uint8_t> output(16);
  EXPECT_FALSE(Decompress(bad.data(), bad.size(), output.data(), output.size()));
}

TEST(Lz4Test, TextCompresses) {
  std::string text;
  for (int i = 0; i < 500; i++) {
    text += "{\"id\":" + std::to_string(i) + ",\"name\":\"customer\"}";
  }
  std::vector<uint8_t> input(text.begin(), text.end());
  std::vector<uint8_t> compressed = Compress(input.data(), input.size());
  EXPECT_LT(compressed.size(), input.size() / 2);
  EXPECT_EQ(RoundTrip(input), input);
}

}  // namespace
}  // namespace jsontiles::lz4
