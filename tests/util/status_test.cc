#include "util/status.h"

#include <gtest/gtest.h>

namespace jsontiles {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status st;
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(st.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status st = Status::ParseError("unexpected token");
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kParseError);
  EXPECT_EQ(st.message(), "unexpected token");
  EXPECT_EQ(st.ToString(), "ParseError: unexpected token");
}

TEST(StatusTest, FactoryCodes) {
  EXPECT_EQ(Status::InvalidArgument("x").code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::Unsupported("x").code(), StatusCode::kUnsupported);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.ValueOrDie(), 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::NotFound("missing"));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(ResultTest, MoveValue) {
  Result<std::string> r(std::string("hello"));
  std::string s = r.MoveValueOrDie();
  EXPECT_EQ(s, "hello");
}

Status Propagating(bool fail) {
  JSONTILES_RETURN_NOT_OK(fail ? Status::Internal("boom") : Status::OK());
  return Status::OK();
}

TEST(StatusTest, ReturnNotOkMacro) {
  EXPECT_TRUE(Propagating(false).ok());
  EXPECT_EQ(Propagating(true).code(), StatusCode::kInternal);
}

}  // namespace
}  // namespace jsontiles
