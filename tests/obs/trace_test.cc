#include "obs/trace.h"

#include <thread>

#include <gtest/gtest.h>

#include "obs/plan_profile.h"

namespace jsontiles::obs {
namespace {

TEST(TraceSpanTest, DisabledCollectorRecordsNothing) {
  TraceCollector collector;
  { TraceSpan span("noop", collector); }
  EXPECT_TRUE(collector.Snapshot().empty());
}

TEST(TraceSpanTest, NestedSpansRecordInnerFirst) {
  TraceCollector collector;
  collector.set_enabled(true);
  {
    TraceSpan outer("outer", collector);
    { TraceSpan inner("inner", collector); }
  }
  auto events = collector.Snapshot();
  ASSERT_EQ(events.size(), 2u);
  // Destruction order: inner closes (and records) before outer.
  EXPECT_EQ(events[0].name, "inner");
  EXPECT_EQ(events[1].name, "outer");
  // The outer span contains the inner one.
  EXPECT_LE(events[1].ts_micros, events[0].ts_micros);
  EXPECT_GE(events[1].ts_micros + events[1].dur_micros,
            events[0].ts_micros + events[0].dur_micros);
}

TEST(TraceSpanTest, EnabledAtEntryWins) {
  // A span started while disabled must not record, even if tracing turns on
  // before it closes.
  TraceCollector collector;
  {
    TraceSpan span("late", collector);
    collector.set_enabled(true);
  }
  EXPECT_TRUE(collector.Snapshot().empty());
}

TEST(TraceCollectorTest, ThreadsGetDistinctIds) {
  TraceCollector collector;
  collector.set_enabled(true);
  { TraceSpan span("main", collector); }
  std::thread worker([&] { TraceSpan span("worker", collector); });
  worker.join();
  auto events = collector.Snapshot();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_NE(events[0].tid, events[1].tid);
}

TEST(TraceCollectorTest, ClearDropsEvents) {
  TraceCollector collector;
  collector.set_enabled(true);
  { TraceSpan span("gone", collector); }
  collector.Clear();
  EXPECT_TRUE(collector.Snapshot().empty());
}

TEST(TraceCollectorTest, ChromeJsonShape) {
  TraceCollector collector;
  collector.set_enabled(true);
  { TraceSpan span("phase \"one\"", collector); }
  std::string json = collector.ToChromeTraceJson();
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"displayTimeUnit\":\"ms\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("phase \\\"one\\\""), std::string::npos);  // escaped
}

TEST(ScopedTimerTest, RecordsIntoHistogramAndOutput) {
  MetricsRegistry registry;
  Histogram* hist = registry.GetHistogram("t", {1e9});
  double secs = -1;
  { ScopedTimer timer(hist, &secs); }
  EXPECT_GE(secs, 0);
  EXPECT_EQ(hist->GetSnapshot().count, 1);
}

TEST(PlanProfileTest, FormatTreeIndentsChildren) {
  PlanProfile profile;
  OperatorStats scan;
  scan.name = "Scan";
  scan.detail = "events";
  scan.rows_in = 100;
  scan.rows_out = 40;
  int scan_id = profile.Add(scan);
  OperatorStats filter;
  filter.name = "Filter";
  filter.rows_in = 40;
  filter.rows_out = 7;
  filter.children.push_back(scan_id);
  int filter_id = profile.Add(filter);
  profile.SetRoot(filter_id);

  std::string text = profile.FormatTree();
  size_t filter_pos = text.find("Filter");
  size_t scan_pos = text.find("Scan");
  ASSERT_NE(filter_pos, std::string::npos);
  ASSERT_NE(scan_pos, std::string::npos);
  EXPECT_LT(filter_pos, scan_pos);  // root first
  EXPECT_NE(text.find("rows in=40"), std::string::npos);
  EXPECT_NE(text.find("rows out=7"), std::string::npos);
  EXPECT_NE(text.find("events"), std::string::npos);
}

TEST(PlanProfileTest, ChainLinksLinearPipeline) {
  PlanProfile profile;
  OperatorStats a;
  a.name = "A";
  profile.SetRoot(profile.Add(a));
  OperatorStats b;
  b.name = "B";
  profile.Chain(profile.Add(b));
  EXPECT_EQ(profile.op(profile.root()).name, "B");
  ASSERT_EQ(profile.op(profile.root()).children.size(), 1u);
  EXPECT_EQ(profile.op(profile.op(profile.root()).children[0]).name, "A");
}

TEST(PlanProfileTest, ProfilerIsNoOpOnNullProfile) {
  OperatorProfiler profiler(nullptr, "Ghost");
  EXPECT_FALSE(profiler.active());
  profiler.set_rows_in(1);  // must not crash
  profiler.set_rows_out(2);
}

TEST(PlanProfileTest, ProfilerAppendsOnDestruction) {
  PlanProfile profile;
  {
    OperatorProfiler profiler(&profile, "Agg", "2 keys");
    profiler.set_rows_in(10);
    profiler.set_rows_out(3);
    profiler.AddCounter("groups", 3);
    EXPECT_EQ(profile.size(), 0u);  // nothing until the scope closes
  }
  ASSERT_EQ(profile.size(), 1u);
  const OperatorStats& stats = profile.op(profile.last_id());
  EXPECT_EQ(stats.name, "Agg");
  EXPECT_EQ(stats.rows_in, 10);
  EXPECT_EQ(stats.rows_out, 3);
  EXPECT_GE(stats.wall_nanos, 0);
  ASSERT_EQ(stats.counters.size(), 1u);
  EXPECT_EQ(stats.counters[0].first, "groups");
}

}  // namespace
}  // namespace jsontiles::obs
