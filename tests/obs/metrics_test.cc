#include "obs/metrics.h"

#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace jsontiles::obs {
namespace {

TEST(CounterTest, ConcurrentIncrementsSumExactly) {
  MetricsRegistry registry;
  Counter* counter = registry.GetCounter("test.concurrent");
  constexpr int kThreads = 8;
  constexpr int kPerThread = 100000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; t++) {
    threads.emplace_back([counter] {
      for (int i = 0; i < kPerThread; i++) counter->Increment();
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(counter->Value(), int64_t{kThreads} * kPerThread);
}

TEST(CounterTest, AddAndReset) {
  MetricsRegistry registry;
  Counter* counter = registry.GetCounter("test.add");
  counter->Add(7);
  counter->Add(35);
  EXPECT_EQ(counter->Value(), 42);
  counter->Reset();
  EXPECT_EQ(counter->Value(), 0);
}

TEST(CounterTest, SameNameReturnsSameCounter) {
  MetricsRegistry registry;
  EXPECT_EQ(registry.GetCounter("x"), registry.GetCounter("x"));
  EXPECT_NE(registry.GetCounter("x"), registry.GetCounter("y"));
}

TEST(GaugeTest, SetOverwrites) {
  MetricsRegistry registry;
  Gauge* gauge = registry.GetGauge("test.gauge");
  gauge->Set(1.5);
  gauge->Set(-3.25);
  EXPECT_DOUBLE_EQ(gauge->Value(), -3.25);
}

TEST(HistogramTest, BucketBoundaries) {
  MetricsRegistry registry;
  // Buckets: (-inf,1], (1,10], (10,100], (100,+inf)
  Histogram* hist = registry.GetHistogram("test.hist", {1, 10, 100});
  hist->Record(0.5);   // bucket 0
  hist->Record(1.0);   // bucket 0 (le semantics: value <= bound)
  hist->Record(1.001); // bucket 1
  hist->Record(10.0);  // bucket 1
  hist->Record(99.9);  // bucket 2
  hist->Record(1e6);   // overflow bucket
  Histogram::Snapshot snap = hist->GetSnapshot();
  ASSERT_EQ(snap.bounds.size(), 3u);
  ASSERT_EQ(snap.buckets.size(), 4u);
  EXPECT_EQ(snap.buckets[0], 2);
  EXPECT_EQ(snap.buckets[1], 2);
  EXPECT_EQ(snap.buckets[2], 1);
  EXPECT_EQ(snap.buckets[3], 1);
  EXPECT_EQ(snap.count, 6);
  EXPECT_NEAR(snap.sum, 0.5 + 1.0 + 1.001 + 10.0 + 99.9 + 1e6, 1e-6);
}

TEST(HistogramTest, ConcurrentRecordsCountExactly) {
  MetricsRegistry registry;
  Histogram* hist = registry.GetHistogram("test.hist.mt", {10, 1000});
  constexpr int kThreads = 4;
  constexpr int kPerThread = 50000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; t++) {
    threads.emplace_back([hist] {
      for (int i = 0; i < kPerThread; i++) hist->Record(i % 2000);
    });
  }
  for (auto& t : threads) t.join();
  Histogram::Snapshot snap = hist->GetSnapshot();
  EXPECT_EQ(snap.count, int64_t{kThreads} * kPerThread);
  int64_t bucket_total = 0;
  for (int64_t b : snap.buckets) bucket_total += b;
  EXPECT_EQ(bucket_total, snap.count);
}

TEST(HistogramTest, ResetClearsEverything) {
  MetricsRegistry registry;
  Histogram* hist = registry.GetHistogram("test.hist.reset", {5});
  hist->Record(3);
  hist->Record(7);
  hist->Reset();
  Histogram::Snapshot snap = hist->GetSnapshot();
  EXPECT_EQ(snap.count, 0);
  EXPECT_DOUBLE_EQ(snap.sum, 0.0);
  for (int64_t b : snap.buckets) EXPECT_EQ(b, 0);
}

TEST(MetricsRegistryTest, ResetAllZerosEveryMetric) {
  MetricsRegistry registry;
  registry.GetCounter("a")->Add(5);
  registry.GetGauge("b")->Set(9);
  registry.GetHistogram("c")->Record(1);
  registry.ResetAll();
  EXPECT_EQ(registry.GetCounter("a")->Value(), 0);
  EXPECT_EQ(registry.GetHistogram("c")->GetSnapshot().count, 0);
}

TEST(MetricsRegistryTest, ToTextListsMetrics) {
  MetricsRegistry registry;
  registry.GetCounter("requests.total")->Add(3);
  registry.GetHistogram("latency", {1, 2})->Record(1.5);
  std::string text = registry.ToText();
  EXPECT_NE(text.find("requests.total 3"), std::string::npos);
  EXPECT_NE(text.find("latency.count"), std::string::npos);
}

TEST(MetricsRegistryTest, ToJsonIsWellFormedEnoughToRoundTrip) {
  MetricsRegistry registry;
  registry.GetCounter("c.one")->Add(1);
  registry.GetGauge("g\"quoted")->Set(2.5);
  registry.GetHistogram("h.lat", {10})->Record(4);
  std::string json = registry.ToJson();
  // Structural sanity: balanced braces, sections present, name escaped.
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"gauges\""), std::string::npos);
  EXPECT_NE(json.find("\"histograms\""), std::string::npos);
  EXPECT_NE(json.find("g\\\"quoted"), std::string::npos);
}

TEST(MetricsRegistryTest, DefaultIsSingleton) {
  EXPECT_EQ(&MetricsRegistry::Default(), &MetricsRegistry::Default());
}

}  // namespace
}  // namespace jsontiles::obs
