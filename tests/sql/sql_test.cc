#include "sql/sql_parser.h"

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "sql/sql_lexer.h"
#include "storage/loader.h"

namespace jsontiles::sql {
namespace {

using storage::Loader;
using storage::Relation;
using storage::StorageMode;

TEST(SqlLexerTest, BasicTokens) {
  auto tokens = TokenizeSql(
      "SELECT t->>'a'::BigInt, 'str''x', 1.5 FROM tbl WHERE x <> 3");
  ASSERT_TRUE(tokens.ok());
  const auto& v = tokens.ValueOrDie();
  EXPECT_EQ(v[0].type, TokenType::kKeyword);
  EXPECT_EQ(v[0].text, "SELECT");
  EXPECT_EQ(v[1].type, TokenType::kIdentifier);
  EXPECT_EQ(v[1].text, "t");
  EXPECT_EQ(v[2].type, TokenType::kArrowText);
  EXPECT_EQ(v[3].type, TokenType::kString);
  EXPECT_EQ(v[3].text, "a");
  EXPECT_EQ(v[4].type, TokenType::kCast);
  EXPECT_EQ(v[5].text, "bigint");  // identifiers lower-cased
  EXPECT_EQ(v[7].text, "str'x");   // '' unescaped
  EXPECT_EQ(v[9].type, TokenType::kFloat);
  EXPECT_EQ(v.back().type, TokenType::kEnd);
}

TEST(SqlLexerTest, Operators) {
  auto tokens = TokenizeSql("a -> b ->> c :: <= >= != < > = + - * / %");
  ASSERT_TRUE(tokens.ok());
  std::vector<TokenType> types;
  for (const auto& t : tokens.ValueOrDie()) types.push_back(t.type);
  EXPECT_EQ(types[1], TokenType::kArrow);
  EXPECT_EQ(types[3], TokenType::kArrowText);
  EXPECT_EQ(types[5], TokenType::kCast);
  // != normalizes to <>
  bool found_ne = false;
  for (const auto& t : tokens.ValueOrDie()) {
    if (t.type == TokenType::kOperator && t.text == "<>") found_ne = true;
  }
  EXPECT_TRUE(found_ne);
}

TEST(SqlLexerTest, Rejects) {
  EXPECT_FALSE(TokenizeSql("'unterminated").ok());
  EXPECT_FALSE(TokenizeSql("\"unterminated").ok());
  EXPECT_FALSE(TokenizeSql("a ! b").ok());
  EXPECT_FALSE(TokenizeSql("a @ b").ok());
}

class SqlExecFixture : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    std::vector<std::string> docs;
    for (int i = 0; i < 1000; i++) {
      docs.push_back(
          R"({"id":)" + std::to_string(i) + R"(,"name":"user)" +
          std::to_string(i % 10) + R"(","score":)" + std::to_string(i % 100) +
          R"(,"price":)" + std::to_string(i % 50) + ".5" +
          R"(,"day":"2024-01-)" + (i % 28 + 1 < 10 ? "0" : "") +
          std::to_string(i % 28 + 1) + R"(","tags":[{"t":"a)" +
          std::to_string(i % 4) + R"("}]})");
    }
    for (int g = 0; g < 10; g++) {
      docs.push_back(R"({"gid":)" + std::to_string(g) + R"(,"gname":"group)" +
                     std::to_string(g) + R"("})");
    }
    Loader loader(StorageMode::kTiles, {});
    relation_ = loader.Load(docs, "events").MoveValueOrDie().release();
  }
  static void TearDownTestSuite() {
    delete relation_;
    relation_ = nullptr;
  }

  static Result<SqlResult> Run(const std::string& statement) {
    SqlCatalog catalog;
    catalog.tables["events"] = relation_;
    exec::QueryContext ctx;
    return ExecuteSql(statement, catalog, ctx);
  }

  static Relation* relation_;
};
Relation* SqlExecFixture::relation_ = nullptr;

TEST_F(SqlExecFixture, SimpleProjectionAndFilter) {
  auto r = Run(
      "SELECT e->>'id'::BigInt, e->>'name' FROM events e "
      "WHERE e->>'score'::BigInt >= 98 ORDER BY 1 LIMIT 5");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  const auto& res = r.ValueOrDie();
  ASSERT_EQ(res.rows.size(), 5u);
  EXPECT_EQ(res.rows[0][0].int_value(), 98);
  EXPECT_EQ(res.rows[0][1].string_value(), "user8");
  EXPECT_EQ(res.rows[1][0].int_value(), 99);
  EXPECT_EQ(res.column_names[0], "id");
}

TEST_F(SqlExecFixture, AggregationWithGroupByHaving) {
  auto r = Run(
      "SELECT e->>'name' AS who, COUNT(*) AS n, AVG(e->>'score'::BigInt) "
      "FROM events e WHERE e->>'id'::BigInt IS NOT NULL "
      "GROUP BY e->>'name' HAVING COUNT(*) > 50 ORDER BY who");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  const auto& res = r.ValueOrDie();
  ASSERT_EQ(res.rows.size(), 10u);  // 10 user groups with 100 each
  EXPECT_EQ(res.rows[0][0].string_value(), "user0");
  EXPECT_EQ(res.rows[0][1].int_value(), 100);
  EXPECT_EQ(res.column_names[1], "n");
}

TEST_F(SqlExecFixture, ArithmeticInAggregates) {
  auto r = Run(
      "SELECT SUM(e->>'price'::Float * (1 + e->>'score'::BigInt)) "
      "FROM events e WHERE e->>'score'::BigInt < 2");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  // Rows with score 0 or 1: ids with i%100 in {0,1}: 20 rows.
  EXPECT_FALSE(r.ValueOrDie().rows[0][0].is_null());
}

TEST_F(SqlExecFixture, PostAggregateArithmetic) {
  auto r = Run(
      "SELECT 100 * SUM(e->>'score'::BigInt) / COUNT(*) FROM events e "
      "WHERE e->>'id'::BigInt IS NOT NULL");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_NEAR(r.ValueOrDie().rows[0][0].AsDouble(), 100 * 49.5, 1.0);
}

TEST_F(SqlExecFixture, DateLiteralsAndExtract) {
  auto r = Run(
      "SELECT COUNT(*) FROM events e "
      "WHERE e->>'day'::Date >= DATE '2024-01-20'");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_GT(r.ValueOrDie().rows[0][0].int_value(), 200);
  auto r2 = Run(
      "SELECT EXTRACT(YEAR FROM e->>'day'), COUNT(*) FROM events e "
      "WHERE e->>'day' IS NOT NULL GROUP BY EXTRACT(YEAR FROM e->>'day')");
  ASSERT_TRUE(r2.ok()) << r2.status().ToString();
  ASSERT_EQ(r2.ValueOrDie().rows.size(), 1u);
  EXPECT_EQ(r2.ValueOrDie().rows[0][0].int_value(), 2024);
}

TEST_F(SqlExecFixture, LikeInBetweenCase) {
  auto r = Run(
      "SELECT SUM(CASE WHEN e->>'name' LIKE 'user1%' THEN 1 ELSE 0 END), "
      "COUNT(*) FROM events e WHERE e->>'score'::BigInt BETWEEN 0 AND 9 "
      "AND e->>'name' IN ('user0','user1','user2')");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  const auto& row = r.ValueOrDie().rows[0];
  EXPECT_GT(row[1].int_value(), 0);
  EXPECT_LE(row[0].int_value(), row[1].int_value());
}

TEST_F(SqlExecFixture, SelfJoinWithPushdown) {
  // Join event documents to "group" documents in the same combined relation.
  auto r = Run(
      "SELECT g->>'gname', COUNT(*) FROM events e, events g "
      "WHERE e->>'id'::BigInt % 100 = g->>'gid'::BigInt "
      "AND g->>'gname' IS NOT NULL AND e->>'id'::BigInt IS NOT NULL "
      "GROUP BY g->>'gname' ORDER BY 1");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  const auto& res = r.ValueOrDie();
  ASSERT_EQ(res.rows.size(), 10u);
  EXPECT_EQ(res.rows[0][0].string_value(), "group0");
  EXPECT_EQ(res.rows[0][1].int_value(), 10);  // ids 0,100,...,900
}

TEST_F(SqlExecFixture, ContainsPredicate) {
  auto r = Run(
      "SELECT COUNT(*) FROM events e WHERE CONTAINS(e->'tags', 't', 'a1')");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r.ValueOrDie().rows[0][0].int_value(), 250);
}

TEST_F(SqlExecFixture, SubstringAndOrderByAlias) {
  auto r = Run(
      "SELECT SUBSTRING(e->>'name' FROM 5 FOR 1) AS suffix, COUNT(*) AS n "
      "FROM events e WHERE e->>'name' IS NOT NULL "
      "GROUP BY SUBSTRING(e->>'name' FROM 5 FOR 1) ORDER BY n DESC, suffix");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r.ValueOrDie().rows.size(), 10u);
}

TEST_F(SqlExecFixture, ErrorMessages) {
  EXPECT_FALSE(Run("SELECT").ok());
  EXPECT_FALSE(Run("SELECT 1").ok());                      // no FROM
  EXPECT_FALSE(Run("SELECT 1 FROM missing m").ok());       // unknown table
  EXPECT_FALSE(Run("SELECT x->>'a' FROM events e").ok());  // unknown alias
  EXPECT_FALSE(Run("SELECT e->>'a' FROM events e GROUP BY e->>'b'").ok());
  EXPECT_FALSE(
      Run("SELECT COUNT(*) FROM events e WHERE SUM(e->>'id'::Int) > 1").ok());
  EXPECT_FALSE(Run("SELECT 1 FROM events e ORDER BY 9").ok());
  EXPECT_FALSE(Run("SELECT 1 FROM events e LIMIT x").ok());
  EXPECT_FALSE(Run("SELECT e->>'a'::NoSuchType FROM events e").ok());
}

TEST_F(SqlExecFixture, FormatResult) {
  auto r = Run("SELECT e->>'id'::BigInt AS id FROM events e ORDER BY 1 LIMIT 3");
  ASSERT_TRUE(r.ok());
  std::string text = FormatSqlResult(r.ValueOrDie());
  EXPECT_NE(text.find("id"), std::string::npos);
  EXPECT_NE(text.find("0"), std::string::npos);
}

TEST_F(SqlExecFixture, SqlMatchesBuilderApi) {
  // The SQL path and the C++ QueryBlock path must agree.
  auto r = Run(
      "SELECT e->>'name', SUM(e->>'score'::BigInt) FROM events e "
      "WHERE e->>'id'::BigInt IS NOT NULL GROUP BY e->>'name' ORDER BY 1");
  ASSERT_TRUE(r.ok());
  exec::QueryContext ctx;
  opt::QueryBlock q;
  q.AddTable(opt::TableRef::Rel(
      "e", relation_,
      exec::IsNotNull(exec::Access("e", {"id"}, exec::ValueType::kInt))));
  q.GroupBy({exec::Access("e", {"name"}, exec::ValueType::kString)});
  q.Aggregate(exec::AggSpec::Sum(
      exec::Access("e", {"score"}, exec::ValueType::kInt)));
  q.OrderBy(exec::Slot(0));
  auto rows = q.Execute(ctx);
  ASSERT_EQ(rows.size(), r.ValueOrDie().rows.size());
  for (size_t i = 0; i < rows.size(); i++) {
    EXPECT_EQ(rows[i][0].string_value(), r.ValueOrDie().rows[i][0].string_value());
    EXPECT_EQ(rows[i][1].int_value(), r.ValueOrDie().rows[i][1].int_value());
  }
}

}  // namespace
}  // namespace jsontiles::sql
