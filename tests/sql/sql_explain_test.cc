#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "sql/sql_parser.h"
#include "storage/loader.h"

namespace jsontiles::sql {
namespace {

using storage::Loader;
using storage::Relation;
using storage::StorageMode;

class SqlExplainFixture : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    std::vector<std::string> orders;
    for (int i = 0; i < 500; i++) {
      orders.push_back(R"({"oid":)" + std::to_string(i) + R"(,"cid":)" +
                       std::to_string(i % 20) + R"(,"total":)" +
                       std::to_string(i % 97) + "}");
    }
    std::vector<std::string> customers;
    for (int c = 0; c < 20; c++) {
      customers.push_back(R"({"cid":)" + std::to_string(c) + R"(,"name":"c)" +
                          std::to_string(c) + R"("})");
    }
    Loader loader(StorageMode::kTiles, {});
    orders_ = loader.Load(orders, "orders").MoveValueOrDie().release();
    customers_ = loader.Load(customers, "customers").MoveValueOrDie().release();
  }
  static void TearDownTestSuite() {
    delete orders_;
    delete customers_;
    orders_ = nullptr;
    customers_ = nullptr;
  }

  static SqlCatalog Catalog() {
    SqlCatalog catalog;
    catalog.tables["orders"] = orders_;
    catalog.tables["customers"] = customers_;
    return catalog;
  }

  // The plan rows reference the context's arenas, so the context must outlive
  // the result — unlike plain queries whose strings point into the relation.
  static std::string PlanText(const SqlResult& result) {
    std::string text;
    for (const auto& row : result.rows) {
      text += std::string(row[0].string_value());
      text += "\n";
    }
    return text;
  }

  static Relation* orders_;
  static Relation* customers_;
};
Relation* SqlExplainFixture::orders_ = nullptr;
Relation* SqlExplainFixture::customers_ = nullptr;

TEST_F(SqlExplainFixture, SingleTablePlanShowsOperatorsAndRows) {
  exec::QueryContext ctx;
  auto r = ExecuteSql(
      "EXPLAIN ANALYZE SELECT o->>'oid'::BigInt FROM orders o "
      "WHERE o->>'total'::BigInt < 10 ORDER BY 1 LIMIT 5",
      Catalog(), ctx);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  const auto& res = r.ValueOrDie();
  ASSERT_EQ(res.column_names.size(), 1u);
  EXPECT_EQ(res.column_names[0], "QUERY PLAN");
  ASSERT_NE(res.profile, nullptr);
  EXPECT_GT(res.rows.size(), 3u);

  std::string plan = PlanText(res);
  EXPECT_NE(plan.find("Limit"), std::string::npos);
  EXPECT_NE(plan.find("Sort"), std::string::npos);
  EXPECT_NE(plan.find("Scan"), std::string::npos);
  EXPECT_NE(plan.find("rows out=5"), std::string::npos);  // the limit
  EXPECT_NE(plan.find(" ms"), std::string::npos);         // timings present
  EXPECT_NE(plan.find("Execution time:"), std::string::npos);
  EXPECT_NE(plan.find("Tiles scanned:"), std::string::npos);
}

TEST_F(SqlExplainFixture, JoinAggregatePlanNestsScansUnderJoin) {
  exec::QueryContext ctx;
  auto r = ExecuteSql(
      "EXPLAIN ANALYZE SELECT c->>'name', COUNT(*) "
      "FROM orders o, customers c "
      "WHERE o->>'cid'::BigInt = c->>'cid'::BigInt "
      "GROUP BY c->>'name'",
      Catalog(), ctx);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  const auto& res = r.ValueOrDie();
  std::string plan = PlanText(res);
  EXPECT_NE(plan.find("HashJoin"), std::string::npos);
  EXPECT_NE(plan.find("Aggregate"), std::string::npos);
  // Both scans appear as (indented) children.
  EXPECT_NE(plan.find("-> "), std::string::npos);
  size_t first_scan = plan.find("Scan");
  ASSERT_NE(first_scan, std::string::npos);
  EXPECT_NE(plan.find("Scan", first_scan + 1), std::string::npos);

  // The join produced 500 rows (every order matches one customer).
  EXPECT_NE(plan.find("rows out=500"), std::string::npos);
}

TEST_F(SqlExplainFixture, ExecutesUnderneathAndCountsRows) {
  // The same query without EXPLAIN must produce the rows the plan reports.
  exec::QueryContext plain_ctx;
  auto plain = ExecuteSql(
      "SELECT o->>'oid'::BigInt FROM orders o WHERE o->>'total'::BigInt = 0",
      Catalog(), plain_ctx);
  ASSERT_TRUE(plain.ok());
  size_t expected = plain.ValueOrDie().rows.size();

  exec::QueryContext ctx;
  auto r = ExecuteSql(
      "EXPLAIN ANALYZE SELECT o->>'oid'::BigInt FROM orders o "
      "WHERE o->>'total'::BigInt = 0",
      Catalog(), ctx);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  std::string plan = PlanText(r.ValueOrDie());
  EXPECT_NE(plan.find("rows out=" + std::to_string(expected)),
            std::string::npos);
}

TEST_F(SqlExplainFixture, PlainExplainShowsEstimatesWithoutExecuting) {
  exec::QueryContext ctx;
  auto r = ExecuteSql(
      "EXPLAIN SELECT o->>'oid'::BigInt FROM orders o "
      "WHERE o->>'total'::BigInt < 10",
      Catalog(), ctx);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  const auto& res = r.ValueOrDie();
  ASSERT_EQ(res.column_names.size(), 1u);
  EXPECT_EQ(res.column_names[0], "QUERY PLAN");
  EXPECT_EQ(res.profile, nullptr);  // nothing executed, nothing profiled
  EXPECT_EQ(ctx.tiles_scanned, 0u);

  std::string plan = PlanText(res);
  EXPECT_NE(plan.find("Join order: o"), std::string::npos);
  EXPECT_NE(plan.find("scan o"), std::string::npos);
  EXPECT_NE(plan.find("estimated rows="), std::string::npos);
}

TEST_F(SqlExplainFixture, PlainExplainJoinShowsOrderAndCost) {
  exec::QueryContext ctx;
  auto r = ExecuteSql(
      "EXPLAIN SELECT c->>'name', COUNT(*) "
      "FROM orders o, customers c "
      "WHERE o->>'cid'::BigInt = c->>'cid'::BigInt "
      "GROUP BY c->>'name'",
      Catalog(), ctx);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  std::string plan = PlanText(r.ValueOrDie());
  EXPECT_NE(plan.find("Join order: "), std::string::npos);
  EXPECT_NE(plan.find(" -> "), std::string::npos);  // two tables ordered
  EXPECT_NE(plan.find("scan o"), std::string::npos);
  EXPECT_NE(plan.find("scan c"), std::string::npos);
  EXPECT_NE(plan.find("Estimated cost (C_out):"), std::string::npos);
  EXPECT_EQ(ctx.tiles_scanned, 0u);  // planned, never executed
}

TEST_F(SqlExplainFixture, PlainExplainStillValidates) {
  exec::QueryContext ctx;
  auto r = ExecuteSql("EXPLAIN SELECT x->>'oid' FROM orders o", Catalog(), ctx);
  EXPECT_FALSE(r.ok());  // unknown alias surfaces at bind time
}

TEST_F(SqlExplainFixture, ProfileRestoredAfterStatement) {
  exec::QueryContext ctx;
  ASSERT_EQ(ctx.profile, nullptr);
  auto r = ExecuteSql("EXPLAIN ANALYZE SELECT COUNT(*) FROM orders o",
                      Catalog(), ctx);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(ctx.profile, nullptr);  // not left dangling on the context
  // A following plain query is unaffected.
  auto plain = ExecuteSql("SELECT COUNT(*) FROM orders o", Catalog(), ctx);
  ASSERT_TRUE(plain.ok());
  EXPECT_EQ(plain.ValueOrDie().rows[0][0].int_value(), 500);
  EXPECT_EQ(plain.ValueOrDie().profile, nullptr);
}

}  // namespace
}  // namespace jsontiles::sql
