// End-to-end validation of the SQL front-end against the hand-built plans:
// several TPC-H queries expressed in SQL must return exactly what the C++
// QueryBlock formulations return.

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "sql/sql_parser.h"
#include "storage/loader.h"
#include "workload/tpch.h"
#include "workload/tpch_queries.h"

namespace jsontiles::sql {
namespace {

using storage::Loader;
using storage::Relation;
using storage::StorageMode;

class SqlTpchFixture : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    workload::TpchOptions options;
    options.scale_factor = 0.003;
    auto data = workload::GenerateTpch(options);
    tiles::TileConfig config;
    config.tile_size = 512;
    Loader loader(StorageMode::kTiles, config);
    relation_ = loader.Load(data.combined, "tpch").MoveValueOrDie().release();
  }
  static void TearDownTestSuite() {
    delete relation_;
    relation_ = nullptr;
  }

  static Result<SqlResult> Run(const std::string& statement) {
    SqlCatalog catalog;
    catalog.tables["tpch"] = relation_;
    exec::QueryContext ctx;
    return ExecuteSql(statement, catalog, ctx);
  }

  static std::vector<std::vector<std::string>> Materialize(
      const exec::RowSet& rows) {
    std::vector<std::vector<std::string>> out;
    for (const auto& row : rows) {
      std::vector<std::string> r;
      for (const auto& v : row) {
        if (v.type == exec::ValueType::kFloat) {
          char buf[40];
          std::snprintf(buf, sizeof(buf), "%.6g", v.float_value());
          r.emplace_back(buf);
        } else {
          r.push_back(v.ToString());
        }
      }
      out.push_back(std::move(r));
    }
    return out;
  }

  static Relation* relation_;
};
Relation* SqlTpchFixture::relation_ = nullptr;

TEST_F(SqlTpchFixture, Q1InSqlMatchesBuilder) {
  auto sql_result = Run(
      "SELECT l->>'l_returnflag', l->>'l_linestatus', "
      "SUM(l->>'l_quantity'::BigInt), SUM(l->>'l_extendedprice'::Float), "
      "SUM(l->>'l_extendedprice'::Float * (1 - l->>'l_discount'::Float)), "
      "SUM(l->>'l_extendedprice'::Float * (1 - l->>'l_discount'::Float) * "
      "(1 + l->>'l_tax'::Float)), "
      "AVG(l->>'l_quantity'::BigInt), AVG(l->>'l_extendedprice'::Float), "
      "AVG(l->>'l_discount'::Float), COUNT(*) "
      "FROM tpch l "
      "WHERE l->>'l_shipdate'::Date <= DATE '1998-09-02' "
      "AND l->>'l_orderkey'::BigInt IS NOT NULL "
      "GROUP BY l->>'l_returnflag', l->>'l_linestatus' "
      "ORDER BY 1, 2");
  ASSERT_TRUE(sql_result.ok()) << sql_result.status().ToString();

  exec::QueryContext ctx;
  auto builder_rows = workload::RunTpchQuery(1, *relation_, ctx);
  EXPECT_EQ(Materialize(sql_result.ValueOrDie().rows), Materialize(builder_rows));
}

TEST_F(SqlTpchFixture, Q6InSqlMatchesBuilder) {
  auto sql_result = Run(
      "SELECT SUM(l->>'l_extendedprice'::Float * l->>'l_discount'::Float) "
      "FROM tpch l "
      "WHERE l->>'l_shipdate'::Date >= DATE '1994-01-01' "
      "AND l->>'l_shipdate'::Date < DATE '1995-01-01' "
      "AND l->>'l_discount'::Float BETWEEN 0.05 AND 0.07 "
      "AND l->>'l_quantity'::BigInt < 24 "
      "AND l->>'l_orderkey'::BigInt IS NOT NULL");
  ASSERT_TRUE(sql_result.ok()) << sql_result.status().ToString();
  exec::QueryContext ctx;
  auto builder_rows = workload::RunTpchQuery(6, *relation_, ctx);
  EXPECT_EQ(Materialize(sql_result.ValueOrDie().rows), Materialize(builder_rows));
}

TEST_F(SqlTpchFixture, Q3InSqlMatchesBuilder) {
  auto sql_result = Run(
      "SELECT l->>'l_orderkey'::BigInt, o->>'o_orderdate'::Date, "
      "o->>'o_shippriority'::BigInt, "
      "SUM(l->>'l_extendedprice'::Float * (1 - l->>'l_discount'::Float)) AS rev "
      "FROM tpch c, tpch o, tpch l "
      "WHERE c->>'c_mktsegment' = 'BUILDING' "
      "AND c->>'c_custkey'::BigInt = o->>'o_custkey'::BigInt "
      "AND l->>'l_orderkey'::BigInt = o->>'o_orderkey'::BigInt "
      "AND o->>'o_orderdate'::Date < DATE '1995-03-15' "
      "AND l->>'l_shipdate'::Date > DATE '1995-03-15' "
      "AND c->>'c_custkey'::BigInt IS NOT NULL "
      "GROUP BY l->>'l_orderkey'::BigInt, o->>'o_orderdate'::Date, "
      "o->>'o_shippriority'::BigInt "
      "ORDER BY rev DESC, 2 LIMIT 10");
  ASSERT_TRUE(sql_result.ok()) << sql_result.status().ToString();
  exec::QueryContext ctx;
  auto builder_rows = workload::RunTpchQuery(3, *relation_, ctx);
  auto a = Materialize(sql_result.ValueOrDie().rows);
  auto b = Materialize(builder_rows);
  // The builder's Q3 groups in a slightly different key order; compare the
  // order-defining columns.
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); i++) {
    EXPECT_EQ(a[i][0], b[i][0]);  // orderkey
    EXPECT_EQ(a[i][3], b[i][3]);  // revenue
  }
}

TEST_F(SqlTpchFixture, Q12InSqlMatchesBuilder) {
  auto sql_result = Run(
      "SELECT l->>'l_shipmode', "
      "SUM(CASE WHEN o->>'o_orderpriority' IN ('1-URGENT','2-HIGH') "
      "THEN 1 ELSE 0 END), "
      "SUM(CASE WHEN o->>'o_orderpriority' IN ('1-URGENT','2-HIGH') "
      "THEN 0 ELSE 1 END) "
      "FROM tpch o, tpch l "
      "WHERE o->>'o_orderkey'::BigInt = l->>'l_orderkey'::BigInt "
      "AND l->>'l_shipmode' IN ('MAIL','SHIP') "
      "AND l->>'l_commitdate'::Date < l->>'l_receiptdate'::Date "
      "AND l->>'l_shipdate'::Date < l->>'l_commitdate'::Date "
      "AND l->>'l_receiptdate'::Date >= DATE '1994-01-01' "
      "AND l->>'l_receiptdate'::Date < DATE '1995-01-01' "
      "AND o->>'o_orderkey'::BigInt IS NOT NULL "
      "GROUP BY l->>'l_shipmode' ORDER BY 1");
  ASSERT_TRUE(sql_result.ok()) << sql_result.status().ToString();
  exec::QueryContext ctx;
  auto builder_rows = workload::RunTpchQuery(12, *relation_, ctx);
  EXPECT_EQ(Materialize(sql_result.ValueOrDie().rows), Materialize(builder_rows));
}

TEST_F(SqlTpchFixture, Q14InSqlMatchesBuilder) {
  auto sql_result = Run(
      "SELECT 100 * SUM(CASE WHEN p->>'p_type' LIKE 'PROMO%' "
      "THEN l->>'l_extendedprice'::Float * (1 - l->>'l_discount'::Float) "
      "ELSE 0 END) / "
      "SUM(l->>'l_extendedprice'::Float * (1 - l->>'l_discount'::Float)) "
      "FROM tpch l, tpch p "
      "WHERE l->>'l_partkey'::BigInt = p->>'p_partkey'::BigInt "
      "AND l->>'l_shipdate'::Date >= DATE '1995-09-01' "
      "AND l->>'l_shipdate'::Date < DATE '1995-10-01' "
      "AND p->>'p_partkey'::BigInt IS NOT NULL");
  ASSERT_TRUE(sql_result.ok()) << sql_result.status().ToString();
  exec::QueryContext ctx;
  auto builder_rows = workload::RunTpchQuery(14, *relation_, ctx);
  EXPECT_NEAR(sql_result.ValueOrDie().rows[0][0].AsDouble(),
              builder_rows[0][0].AsDouble(), 1e-6);
}

}  // namespace
}  // namespace jsontiles::sql
