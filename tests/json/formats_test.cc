// Tests for the BSON and CBOR baseline codecs (§6.9 comparison substrates).

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "json/bson.h"
#include "json/cbor.h"
#include "json/dom.h"
#include "util/random.h"

namespace jsontiles::json {
namespace {

// Compare DOM values; BSON/CBOR round trips preserve member order.
bool DomEqual(const JsonValue& a, const JsonValue& b) {
  if (a.type() != b.type()) {
    // NumericString encodes as plain string in both baselines.
    bool a_str = a.type() == JsonType::kString || a.type() == JsonType::kNumericString;
    bool b_str = b.type() == JsonType::kString || b.type() == JsonType::kNumericString;
    if (!(a_str && b_str)) return false;
  }
  switch (a.type()) {
    case JsonType::kNull: return true;
    case JsonType::kBool: return a.bool_value() == b.bool_value();
    case JsonType::kInt: return a.int_value() == b.int_value();
    case JsonType::kFloat: return a.double_value() == b.double_value();
    case JsonType::kString:
    case JsonType::kNumericString: return a.string_value() == b.string_value();
    case JsonType::kArray: {
      if (a.elements().size() != b.elements().size()) return false;
      for (size_t i = 0; i < a.elements().size(); i++) {
        if (!DomEqual(a.elements()[i], b.elements()[i])) return false;
      }
      return true;
    }
    case JsonType::kObject: {
      if (a.members().size() != b.members().size()) return false;
      for (size_t i = 0; i < a.members().size(); i++) {
        if (a.members()[i].first != b.members()[i].first) return false;
        if (!DomEqual(a.members()[i].second, b.members()[i].second)) return false;
      }
      return true;
    }
  }
  return false;
}

const char* kSampleDoc = R"({
  "id": 123456,
  "name": "json tiles",
  "score": -3.75,
  "active": true,
  "missing": null,
  "nested": {"a": 1, "b": [1, 2.5, "three", {"deep": true}]},
  "tags": ["x", "y"]
})";

TEST(BsonTest, RoundTrip) {
  JsonValue doc = ParseJson(kSampleDoc).ValueOrDie();
  std::vector<uint8_t> bytes;
  ASSERT_TRUE(bson::Encode(doc, &bytes).ok());
  auto back = bson::Decode(bytes.data(), bytes.size());
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_TRUE(DomEqual(doc, back.ValueOrDie()));
}

TEST(BsonTest, RootArray) {
  JsonValue doc = ParseJson("[1,\"two\",[3]]").ValueOrDie();
  std::vector<uint8_t> bytes;
  ASSERT_TRUE(bson::Encode(doc, &bytes).ok());
  // Arrays decode as documents with index keys; decode as object view.
  auto back = bson::Decode(bytes.data(), bytes.size());
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back.ValueOrDie().Find("0")->int_value(), 1);
  EXPECT_EQ(back.ValueOrDie().Find("1")->string_value(), "two");
}

TEST(BsonTest, ScalarRootRejected) {
  std::vector<uint8_t> bytes;
  EXPECT_FALSE(bson::Encode(JsonValue::Int(1), &bytes).ok());
}

TEST(BsonTest, FindFieldLinearScan) {
  JsonValue doc = ParseJson(kSampleDoc).ValueOrDie();
  std::vector<uint8_t> bytes;
  ASSERT_TRUE(bson::Encode(doc, &bytes).ok());
  uint8_t type;
  const uint8_t* payload;
  size_t payload_size;
  ASSERT_TRUE(bson::FindField(bytes.data(), bytes.size(), "score", &type,
                              &payload, &payload_size));
  auto v = bson::DecodeElement(type, payload, payload_size);
  ASSERT_TRUE(v.ok());
  EXPECT_DOUBLE_EQ(v.ValueOrDie().double_value(), -3.75);
  EXPECT_FALSE(bson::FindField(bytes.data(), bytes.size(), "nope", &type,
                               &payload, &payload_size));
}

TEST(BsonTest, NestedFieldViaChainedFind) {
  JsonValue doc = ParseJson(kSampleDoc).ValueOrDie();
  std::vector<uint8_t> bytes;
  ASSERT_TRUE(bson::Encode(doc, &bytes).ok());
  uint8_t type;
  const uint8_t* payload;
  size_t payload_size;
  ASSERT_TRUE(bson::FindField(bytes.data(), bytes.size(), "nested", &type,
                              &payload, &payload_size));
  ASSERT_EQ(type, 0x03);
  ASSERT_TRUE(bson::FindField(payload, payload_size, "a", &type, &payload,
                              &payload_size));
  auto v = bson::DecodeElement(type, payload, payload_size);
  EXPECT_EQ(v.ValueOrDie().int_value(), 1);
}

TEST(BsonTest, DecodeRejectsTruncated) {
  JsonValue doc = ParseJson(kSampleDoc).ValueOrDie();
  std::vector<uint8_t> bytes;
  ASSERT_TRUE(bson::Encode(doc, &bytes).ok());
  EXPECT_FALSE(bson::Decode(bytes.data(), 3).ok());
}

TEST(CborTest, RoundTrip) {
  JsonValue doc = ParseJson(kSampleDoc).ValueOrDie();
  std::vector<uint8_t> bytes;
  ASSERT_TRUE(cbor::Encode(doc, &bytes).ok());
  auto back = cbor::Decode(bytes.data(), bytes.size());
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_TRUE(DomEqual(doc, back.ValueOrDie()));
}

TEST(CborTest, ScalarRoots) {
  for (const char* text : {"null", "true", "false", "0", "23", "24", "-1",
                           "-25", "1000000", "3.5", "0.1", "\"str\""}) {
    JsonValue doc = ParseJson(text).ValueOrDie();
    std::vector<uint8_t> bytes;
    ASSERT_TRUE(cbor::Encode(doc, &bytes).ok());
    auto back = cbor::Decode(bytes.data(), bytes.size());
    ASSERT_TRUE(back.ok()) << text;
    EXPECT_TRUE(DomEqual(doc, back.ValueOrDie())) << text;
  }
}

TEST(CborTest, CompactIntegerHeads) {
  std::vector<uint8_t> bytes;
  ASSERT_TRUE(cbor::Encode(JsonValue::Int(5), &bytes).ok());
  EXPECT_EQ(bytes.size(), 1u);
  ASSERT_TRUE(cbor::Encode(JsonValue::Int(500), &bytes).ok());
  EXPECT_EQ(bytes.size(), 3u);
}

TEST(CborTest, FindMapKeySequentialScan) {
  JsonValue doc = ParseJson(kSampleDoc).ValueOrDie();
  std::vector<uint8_t> bytes;
  ASSERT_TRUE(cbor::Encode(doc, &bytes).ok());
  size_t pos;
  ASSERT_TRUE(cbor::FindMapKey(bytes.data(), bytes.size(), "tags", &pos));
  auto v = cbor::DecodeValueAt(bytes.data(), bytes.size(), pos);
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v.ValueOrDie().elements().size(), 2u);
  EXPECT_FALSE(cbor::FindMapKey(bytes.data(), bytes.size(), "nope", &pos));
}

TEST(CborTest, DecodeRejectsTruncated) {
  JsonValue doc = ParseJson(kSampleDoc).ValueOrDie();
  std::vector<uint8_t> bytes;
  ASSERT_TRUE(cbor::Encode(doc, &bytes).ok());
  EXPECT_FALSE(cbor::Decode(bytes.data(), bytes.size() - 2).ok());
}

class FormatsPropertyTest : public ::testing::TestWithParam<uint64_t> {};

JsonValue RandomObjectDoc(Random& rng, int depth);

JsonValue RandomAny(Random& rng, int depth) {
  if (depth >= 3 || rng.Chance(0.5)) {
    switch (rng.Uniform(5)) {
      case 0: return JsonValue::Null();
      case 1: return JsonValue::Bool(rng.Chance(0.5));
      case 2: return JsonValue::Int(rng.Range(-1000000000, 1000000000));
      case 3: return JsonValue::Float(rng.NextDouble() * 1e6 - 5e5);
      default: return JsonValue::String(rng.NextString(0, 25));
    }
  }
  if (rng.Chance(0.5)) return RandomObjectDoc(rng, depth);
  JsonValue arr = JsonValue::Array();
  int n = static_cast<int>(rng.Uniform(6));
  for (int i = 0; i < n; i++) arr.Append(RandomAny(rng, depth + 1));
  return arr;
}

JsonValue RandomObjectDoc(Random& rng, int depth) {
  JsonValue obj = JsonValue::Object();
  int n = static_cast<int>(rng.Uniform(7));
  for (int i = 0; i < n; i++) {
    std::string key = "k" + std::to_string(i) + rng.NextString(0, 6);
    obj.Add(std::move(key), RandomAny(rng, depth + 1));
  }
  return obj;
}

TEST_P(FormatsPropertyTest, BothFormatsRoundTripRandomDocs) {
  Random rng(GetParam());
  for (int iter = 0; iter < 30; iter++) {
    JsonValue doc = RandomObjectDoc(rng, 0);
    std::vector<uint8_t> b, c;
    ASSERT_TRUE(bson::Encode(doc, &b).ok());
    ASSERT_TRUE(cbor::Encode(doc, &c).ok());
    auto bd = bson::Decode(b.data(), b.size());
    auto cd = cbor::Decode(c.data(), c.size());
    ASSERT_TRUE(bd.ok());
    ASSERT_TRUE(cd.ok());
    EXPECT_TRUE(DomEqual(doc, bd.ValueOrDie())) << WriteJson(doc);
    EXPECT_TRUE(DomEqual(doc, cd.ValueOrDie())) << WriteJson(doc);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FormatsPropertyTest,
                         ::testing::Values(11, 22, 33, 44));

}  // namespace
}  // namespace jsontiles::json
