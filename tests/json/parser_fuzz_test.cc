// Failure injection: the parser/JSONB pipeline must reject or cleanly handle
// arbitrarily mutated inputs — never crash, never produce a buffer the
// accessors misread.

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "json/dom.h"
#include "json/jsonb.h"
#include "util/random.h"

namespace jsontiles::json {
namespace {

const char* kSeeds[] = {
    R"({"id":1,"user":{"name":"ada","tags":[1,2.5,"x",null,true]},"p":"19.99"})",
    R"([[[1,2],[3,4]],{"k":"v"},[],{}])",
    R"({"a":"é😀\n\t","b":-123456789012345,"c":1e-7})",
};

// Walk every value reachable from a JSONB root; returns the number of scalars
// visited. Exercises Size/Count/iteration invariants on valid buffers.
size_t WalkAll(JsonbValue v, int depth = 0) {
  if (depth > 64) return 0;
  switch (v.type()) {
    case JsonType::kObject: {
      size_t total = 0;
      size_t count = v.Count();
      for (size_t i = 0; i < count; i++) {
        EXPECT_FALSE(v.MemberKey(i).empty() && count > 1 && false);
        total += WalkAll(v.MemberValue(i), depth + 1);
      }
      return total;
    }
    case JsonType::kArray: {
      size_t total = 0;
      size_t count = v.Count();
      for (size_t i = 0; i < count; i++) {
        total += WalkAll(v.ArrayElement(i), depth + 1);
      }
      return total;
    }
    default:
      return 1;
  }
}

class MutationFuzzTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(MutationFuzzTest, MutatedTextNeverCrashes) {
  Random rng(GetParam());
  JsonbBuilder builder;
  std::vector<uint8_t> buf;
  for (int iter = 0; iter < 300; iter++) {
    std::string text = kSeeds[rng.Uniform(3)];
    int mutations = 1 + static_cast<int>(rng.Uniform(6));
    for (int m = 0; m < mutations; m++) {
      switch (rng.Uniform(4)) {
        case 0:  // flip a byte
          if (!text.empty()) {
            text[rng.Uniform(text.size())] =
                static_cast<char>(rng.Uniform(256));
          }
          break;
        case 1:  // delete a byte
          if (!text.empty()) text.erase(rng.Uniform(text.size()), 1);
          break;
        case 2:  // insert a structural byte
          text.insert(text.begin() + static_cast<long>(rng.Uniform(text.size() + 1)),
                      "{}[],:\"0"[rng.Uniform(8)]);
          break;
        default:  // truncate
          text.resize(rng.Uniform(text.size() + 1));
      }
    }
    Status st = builder.Transform(text, &buf);
    if (st.ok()) {
      // Accepted inputs must produce a self-consistent buffer.
      JsonbValue root(buf.data());
      EXPECT_EQ(root.Size(), buf.size());
      WalkAll(root);
      std::string round = root.ToJsonText();
      auto reparsed = ParseJson(round);
      EXPECT_TRUE(reparsed.ok()) << "serialized form must re-parse: " << round;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MutationFuzzTest,
                         ::testing::Values(101, 202, 303, 404));

TEST(ParserRobustnessTest, PathologicalInputs) {
  // Long key, long string, many siblings, big ints, tiny floats.
  std::string long_key(60000, 'k');
  EXPECT_TRUE(JsonbFromText("{\"" + long_key + "\":1}").ok());
  std::string key_too_long(70000, 'k');
  EXPECT_FALSE(JsonbFromText("{\"" + key_too_long + "\":1}").ok());

  std::string many = "[";
  for (int i = 0; i < 50000; i++) {
    if (i) many += ",";
    many += std::to_string(i);
  }
  many += "]";
  auto r = JsonbFromText(many);
  ASSERT_TRUE(r.ok());
  JsonbValue root(r.ValueOrDie().data());
  EXPECT_EQ(root.Count(), 50000u);
  EXPECT_EQ(root.ArrayElement(49999).GetInt(), 49999);

  EXPECT_TRUE(JsonbFromText("1e308").ok());
  EXPECT_TRUE(JsonbFromText("-1e-308").ok());
  EXPECT_TRUE(JsonbFromText("18446744073709551615").ok());  // > int64 -> float
}

TEST(ParserRobustnessTest, NestingBombRejected) {
  std::string bomb;
  for (int i = 0; i < 100000; i++) bomb += "[";
  EXPECT_FALSE(JsonbFromText(bomb).ok());  // malformed AND deep: must not crash
  std::string deep(500, '[');
  deep += "1";
  deep += std::string(500, ']');
  EXPECT_FALSE(JsonbFromText(deep).ok());  // depth guard
}

}  // namespace
}  // namespace jsontiles::json
