#include "json/dom.h"

#include <string>

#include <gtest/gtest.h>

namespace jsontiles::json {
namespace {

TEST(DomParseTest, Scalars) {
  EXPECT_EQ(ParseJson("null").ValueOrDie().type(), JsonType::kNull);
  EXPECT_TRUE(ParseJson("true").ValueOrDie().bool_value());
  EXPECT_FALSE(ParseJson("false").ValueOrDie().bool_value());
  EXPECT_EQ(ParseJson("42").ValueOrDie().int_value(), 42);
  EXPECT_EQ(ParseJson("-7").ValueOrDie().int_value(), -7);
  EXPECT_DOUBLE_EQ(ParseJson("3.25").ValueOrDie().double_value(), 3.25);
  EXPECT_DOUBLE_EQ(ParseJson("1e3").ValueOrDie().double_value(), 1000.0);
  EXPECT_EQ(ParseJson("\"hi\"").ValueOrDie().string_value(), "hi");
}

TEST(DomParseTest, IntOverflowBecomesDouble) {
  JsonValue v = ParseJson("99999999999999999999").ValueOrDie();
  EXPECT_EQ(v.type(), JsonType::kFloat);
  EXPECT_DOUBLE_EQ(v.double_value(), 1e20);
}

TEST(DomParseTest, NestedStructure) {
  auto r = ParseJson(R"({"id":1,"user":{"name":"ada"},"tags":[1,2,3]})");
  ASSERT_TRUE(r.ok());
  const JsonValue& v = r.ValueOrDie();
  EXPECT_EQ(v.Find("id")->int_value(), 1);
  EXPECT_EQ(v.Find("user")->Find("name")->string_value(), "ada");
  EXPECT_EQ(v.Find("tags")->elements().size(), 3u);
  EXPECT_EQ(v.Find("tags")->elements()[2].int_value(), 3);
  EXPECT_EQ(v.Find("missing"), nullptr);
}

TEST(DomParseTest, EscapeSequences) {
  auto v = ParseJson(R"("a\"b\\c\/d\b\f\n\r\t")").ValueOrDie();
  EXPECT_EQ(v.string_value(), "a\"b\\c/d\b\f\n\r\t");
}

TEST(DomParseTest, UnicodeEscapes) {
  EXPECT_EQ(ParseJson(R"("A")").ValueOrDie().string_value(), "A");
  EXPECT_EQ(ParseJson(R"("é")").ValueOrDie().string_value(), "\xc3\xa9");
  EXPECT_EQ(ParseJson(R"("€")").ValueOrDie().string_value(),
            "\xe2\x82\xac");  // euro sign
  // Surrogate pair: U+1F600.
  EXPECT_EQ(ParseJson(R"("😀")").ValueOrDie().string_value(),
            "\xf0\x9f\x98\x80");
}

TEST(DomParseTest, WhitespaceTolerated) {
  auto r = ParseJson(" \n\t{ \"a\" : [ 1 , 2 ] } \r\n");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.ValueOrDie().Find("a")->elements().size(), 2u);
}

class DomRejectTest : public ::testing::TestWithParam<const char*> {};

TEST_P(DomRejectTest, MalformedInputRejected) {
  EXPECT_FALSE(ParseJson(GetParam()).ok()) << GetParam();
}

INSTANTIATE_TEST_SUITE_P(
    Cases, DomRejectTest,
    ::testing::Values("", "{", "}", "[1,", "[1,]", "{\"a\":}", "{\"a\"1}",
                      "{a:1}", "tru", "nul", "01", "1.", ".5", "1e",
                      "\"abc", "\"\\x\"", "\"\\u12g4\"", "[1]2", "{}{}",
                      "'single'", "[1 2]", "\"tab\tliteral\""));

TEST(DomWriteTest, RoundTripPreservesOrder) {
  std::string text = R"({"z":1,"a":[true,null,"x"],"m":{"k":-2.5}})";
  JsonValue v = ParseJson(text).ValueOrDie();
  EXPECT_EQ(WriteJson(v), text);
}

TEST(DomWriteTest, EscapesOnOutput) {
  JsonValue v = JsonValue::String("line\nbreak\"quote\x01");
  EXPECT_EQ(WriteJson(v), "\"line\\nbreak\\\"quote\\u0001\"");
}

TEST(DomWriteTest, DoubleShortestForm) {
  EXPECT_EQ(WriteJson(JsonValue::Float(0.1)), "0.1");
  EXPECT_EQ(WriteJson(JsonValue::Float(1e100)), "1e+100");
}

TEST(DomParseTest, DeepNestingGuard) {
  std::string deep(1000, '[');
  deep += std::string(1000, ']');
  EXPECT_FALSE(ParseJson(deep).ok());
}

}  // namespace
}  // namespace jsontiles::json
