#include "json/jsonb.h"

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "json/dom.h"
#include "util/random.h"

namespace jsontiles::json {
namespace {

std::vector<uint8_t> Build(std::string_view text) {
  auto r = JsonbFromText(text);
  EXPECT_TRUE(r.ok()) << r.status().ToString() << " for " << text;
  return r.MoveValueOrDie();
}

TEST(JsonbTest, Scalars) {
  {
    auto buf = Build("null");
    EXPECT_EQ(JsonbValue(buf.data()).type(), JsonType::kNull);
    EXPECT_EQ(buf.size(), 1u);
  }
  {
    auto buf = Build("true");
    EXPECT_TRUE(JsonbValue(buf.data()).GetBool());
  }
  {
    auto buf = Build("7");
    JsonbValue v(buf.data());
    EXPECT_EQ(v.type(), JsonType::kInt);
    EXPECT_EQ(v.GetInt(), 7);
    EXPECT_EQ(buf.size(), 1u);  // small int fits in header
  }
  {
    auto buf = Build("-123456789");
    EXPECT_EQ(JsonbValue(buf.data()).GetInt(), -123456789);
  }
  {
    auto buf = Build("2.5");
    JsonbValue v(buf.data());
    EXPECT_EQ(v.type(), JsonType::kFloat);
    EXPECT_DOUBLE_EQ(v.GetDouble(), 2.5);
    EXPECT_EQ(buf.size(), 3u);  // 2.5 is lossless as half-float
  }
  {
    auto buf = Build("0.1");
    EXPECT_DOUBLE_EQ(JsonbValue(buf.data()).GetDouble(), 0.1);
    EXPECT_EQ(buf.size(), 9u);  // needs full double
  }
  {
    auto buf = Build("\"hello\"");
    EXPECT_EQ(JsonbValue(buf.data()).GetString(), "hello");
  }
}

TEST(JsonbTest, IntegerSizeOptimization) {
  EXPECT_EQ(Build("15").size(), 1u);
  EXPECT_EQ(Build("16").size(), 2u);
  EXPECT_EQ(Build("255").size(), 2u);
  EXPECT_EQ(Build("256").size(), 3u);
  EXPECT_EQ(Build("-1").size(), 2u);
  EXPECT_EQ(Build("9223372036854775807").size(), 9u);
}

TEST(JsonbTest, FloatPrecisionLevels) {
  EXPECT_EQ(Build("1.5").size(), 3u);        // half
  EXPECT_EQ(Build("100000.0").size(), 5u);   // single (exceeds half range)
  EXPECT_EQ(Build("3.141592653589793").size(), 9u);  // double
  // Precision is preserved through all levels.
  auto buf = Build("100000.0");
  EXPECT_DOUBLE_EQ(JsonbValue(buf.data()).GetDouble(), 100000.0);
}

TEST(JsonbTest, NumericStringDetection) {
  auto buf = Build(R"({"price":"19.99","label":"x19"})");
  JsonbValue root(buf.data());
  auto price = root.FindKey("price");
  ASSERT_TRUE(price.has_value());
  EXPECT_EQ(price->type(), JsonType::kNumericString);
  EXPECT_EQ(price->GetNumeric().ToString(), "19.99");
  EXPECT_DOUBLE_EQ(price->GetDouble(), 19.99);
  auto label = root.FindKey("label");
  EXPECT_EQ(label->type(), JsonType::kString);
}

TEST(JsonbTest, NumericStringRoundTripSafety) {
  for (const char* s : {"\"19.99\"", "\"0.001\"", "\"-12.50\"", "\"0\""}) {
    auto buf = Build(s);
    EXPECT_EQ(JsonbValue(buf.data()).ToJsonText(), s);
  }
}

TEST(JsonbTest, ObjectLookup) {
  auto buf = Build(R"({"id":1,"create":"x","text":"a","user":{"id":5}})");
  JsonbValue root(buf.data());
  EXPECT_EQ(root.Count(), 4u);
  EXPECT_EQ(root.FindKey("id")->GetInt(), 1);
  EXPECT_EQ(root.FindKey("text")->GetString(), "a");
  EXPECT_EQ(root.FindKey("user")->FindKey("id")->GetInt(), 5);
  EXPECT_FALSE(root.FindKey("missing").has_value());
  EXPECT_FALSE(root.FindKey("").has_value());
}

TEST(JsonbTest, KeysAreSorted) {
  auto buf = Build(R"({"z":1,"a":2,"m":3})");
  JsonbValue root(buf.data());
  EXPECT_EQ(root.MemberKey(0), "a");
  EXPECT_EQ(root.MemberKey(1), "m");
  EXPECT_EQ(root.MemberKey(2), "z");
  EXPECT_EQ(root.MemberValue(0).GetInt(), 2);
}

TEST(JsonbTest, DuplicateKeysKeepLast) {
  auto buf = Build(R"({"a":1,"a":2,"a":3})");
  JsonbValue root(buf.data());
  EXPECT_EQ(root.Count(), 1u);
  EXPECT_EQ(root.FindKey("a")->GetInt(), 3);
}

TEST(JsonbTest, ArrayAccess) {
  auto buf = Build("[10,20,[30,40],{\"k\":50}]");
  JsonbValue root(buf.data());
  EXPECT_EQ(root.Count(), 4u);
  EXPECT_EQ(root.ArrayElement(0).GetInt(), 10);
  EXPECT_EQ(root.ArrayElement(1).GetInt(), 20);
  EXPECT_EQ(root.ArrayElement(2).ArrayElement(1).GetInt(), 40);
  EXPECT_EQ(root.ArrayElement(3).FindKey("k")->GetInt(), 50);
}

TEST(JsonbTest, EmptyContainers) {
  auto obj = Build("{}");
  EXPECT_EQ(JsonbValue(obj.data()).Count(), 0u);
  EXPECT_EQ(JsonbValue(obj.data()).Size(), obj.size());
  auto arr = Build("[]");
  EXPECT_EQ(JsonbValue(arr.data()).Count(), 0u);
  EXPECT_EQ(JsonbValue(arr.data()).ToJsonText(), "[]");
}

TEST(JsonbTest, NestedValueIsSelfContainedSlice) {
  auto buf = Build(R"({"outer":{"inner":[1,2,3]}})");
  JsonbValue root(buf.data());
  JsonbValue outer = *root.FindKey("outer");
  // Copy out the nested value bytes; the slice must be a valid document.
  std::vector<uint8_t> slice(outer.data(), outer.data() + outer.Size());
  JsonbValue copy(slice.data());
  EXPECT_EQ(copy.FindKey("inner")->Count(), 3u);
  EXPECT_EQ(copy.ToJsonText(), R"({"inner":[1,2,3]})");
}

TEST(JsonbTest, SizeMatchesBufferForAllTypes) {
  for (const char* text :
       {"null", "true", "123", "-9999999", "3.5", "\"short\"",
        "\"a string that is longer than fifteen characters\"", "\"42.42\"",
        "{}", "[]", R"({"a":1})", "[1,2,3]",
        R"({"nested":{"deep":{"deeper":[1,[2,[3]]]}}})"}) {
    auto buf = Build(text);
    EXPECT_EQ(JsonbValue(buf.data()).Size(), buf.size()) << text;
  }
}

TEST(JsonbTest, WideObjectUsesLargerOffsets) {
  // Build an object whose slot area exceeds 255 bytes.
  std::string text = "{";
  for (int i = 0; i < 50; i++) {
    if (i) text += ",";
    text += "\"key_number_" + std::to_string(i) + "\":\"value_string_" +
            std::to_string(i) + "\"";
  }
  text += "}";
  auto buf = Build(text);
  JsonbValue root(buf.data());
  EXPECT_EQ(root.Count(), 50u);
  for (int i = 0; i < 50; i++) {
    auto v = root.FindKey("key_number_" + std::to_string(i));
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(v->GetString(), "value_string_" + std::to_string(i));
  }
}

TEST(JsonbTest, EscapedStringsDecoded) {
  auto buf = Build(R"({"key":"va\nl"})");
  JsonbValue root(buf.data());
  EXPECT_EQ(root.FindKey("key")->GetString(), "va\nl");
}

TEST(JsonbTest, ToJsonTextNormalizesButPreservesValues) {
  auto buf = Build(R"({ "b" : 1 , "a" : [ true , null ] })");
  EXPECT_EQ(JsonbValue(buf.data()).ToJsonText(), R"({"a":[true,null],"b":1})");
}

TEST(JsonbTest, RejectsMalformed) {
  EXPECT_FALSE(JsonbFromText("{\"a\":}").ok());
  EXPECT_FALSE(JsonbFromText("[1,,2]").ok());
  EXPECT_FALSE(JsonbFromText("").ok());
}

// Property: text -> JSONB -> text -> DOM equals text -> DOM (semantic
// round-trip through the binary format).
class JsonbRoundTripTest : public ::testing::TestWithParam<uint64_t> {};

JsonValue RandomDoc(Random& rng, int depth) {
  double roll = rng.NextDouble();
  if (depth >= 4 || roll < 0.45) {
    switch (rng.Uniform(6)) {
      case 0: return JsonValue::Null();
      case 1: return JsonValue::Bool(rng.Chance(0.5));
      case 2: return JsonValue::Int(rng.Range(-1000000, 1000000));
      case 3: return JsonValue::Float(rng.NextDouble() * 1000);
      case 4: return JsonValue::String(rng.NextString(0, 30));
      default:
        return JsonValue::String(std::to_string(rng.Range(0, 999)) + "." +
                                 std::to_string(rng.Range(10, 99)));
    }
  }
  if (roll < 0.75) {
    JsonValue obj = JsonValue::Object();
    int n = static_cast<int>(rng.Uniform(8));
    for (int i = 0; i < n; i++) {
      std::string key = rng.NextString(1, 10);
      if (obj.Find(key) != nullptr) continue;  // JSONB dedupes; keep unique
      obj.Add(std::move(key), RandomDoc(rng, depth + 1));
    }
    return obj;
  }
  JsonValue arr = JsonValue::Array();
  int n = static_cast<int>(rng.Uniform(8));
  for (int i = 0; i < n; i++) arr.Append(RandomDoc(rng, depth + 1));
  return arr;
}

// Compare two DOM values modulo object key order (JSONB sorts keys).
bool SemanticallyEqual(const JsonValue& a, const JsonValue& b) {
  // Numeric strings serialize back to identical strings, so compare as text.
  if (a.type() != b.type()) return false;
  switch (a.type()) {
    case JsonType::kNull: return true;
    case JsonType::kBool: return a.bool_value() == b.bool_value();
    case JsonType::kInt: return a.int_value() == b.int_value();
    case JsonType::kFloat: return a.double_value() == b.double_value();
    case JsonType::kString:
    case JsonType::kNumericString:
      return a.string_value() == b.string_value();
    case JsonType::kArray: {
      if (a.elements().size() != b.elements().size()) return false;
      for (size_t i = 0; i < a.elements().size(); i++) {
        if (!SemanticallyEqual(a.elements()[i], b.elements()[i])) return false;
      }
      return true;
    }
    case JsonType::kObject: {
      if (a.members().size() != b.members().size()) return false;
      for (const auto& [k, v] : a.members()) {
        const JsonValue* other = b.Find(k);
        if (other == nullptr || !SemanticallyEqual(v, *other)) return false;
      }
      return true;
    }
  }
  return false;
}

TEST_P(JsonbRoundTripTest, RandomDocumentsSurviveRoundTrip) {
  Random rng(GetParam());
  for (int iter = 0; iter < 50; iter++) {
    JsonValue doc = RandomDoc(rng, 0);
    std::string text = WriteJson(doc);
    auto jsonb = JsonbFromText(text);
    ASSERT_TRUE(jsonb.ok()) << text;
    std::string back = JsonbValue(jsonb.ValueOrDie().data()).ToJsonText();
    auto reparsed = ParseJson(back);
    ASSERT_TRUE(reparsed.ok()) << back;
    EXPECT_TRUE(SemanticallyEqual(doc, reparsed.ValueOrDie()))
        << "original: " << text << "\nround-trip: " << back;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, JsonbRoundTripTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

TEST(JsonbTest, BuilderIsReusable) {
  JsonbBuilder builder;
  std::vector<uint8_t> buf;
  ASSERT_TRUE(builder.Transform(R"({"a":1})", &buf).ok());
  EXPECT_EQ(JsonbValue(buf.data()).FindKey("a")->GetInt(), 1);
  ASSERT_TRUE(builder.Transform(R"({"b":"two"})", &buf).ok());
  EXPECT_EQ(JsonbValue(buf.data()).FindKey("b")->GetString(), "two");
  EXPECT_FALSE(builder.Transform("oops", &buf).ok());
  ASSERT_TRUE(builder.Transform("[3]", &buf).ok());
  EXPECT_EQ(JsonbValue(buf.data()).ArrayElement(0).GetInt(), 3);
}

TEST(JsonbTest, ManyEscapedStringsSurviveDecodeBufferGrowth) {
  // Regression: pass 1 hands out string_views into the unescape buffer; the
  // buffer must not relocate its strings as more escaped strings arrive
  // (SSO bytes move with the std::string object). Many short escaped strings
  // force repeated growth on a fresh builder.
  JsonbBuilder builder;
  std::string doc = "{";
  for (int i = 0; i < 64; i++) {
    if (i > 0) doc += ",";
    doc += "\"k\\u00e4" + std::to_string(i) + "\":\"v\\u00fc" +
           std::to_string(i) + "\"";
  }
  doc += "}";
  std::vector<uint8_t> buf;
  ASSERT_TRUE(builder.Transform(doc, &buf).ok());
  JsonbValue value(buf.data());
  for (int i = 0; i < 64; i++) {
    auto member = value.FindKey("k\xc3\xa4" + std::to_string(i));
    ASSERT_TRUE(member.has_value()) << i;
    EXPECT_EQ(member->GetString(), "v\xc3\xbc" + std::to_string(i)) << i;
  }
}

TEST(JsonbTest, DetectionCanBeDisabled) {
  JsonbBuilder::Options options;
  options.detect_numeric_strings = false;
  JsonbBuilder builder(options);
  std::vector<uint8_t> buf;
  ASSERT_TRUE(builder.Transform(R"("19.99")", &buf).ok());
  EXPECT_EQ(JsonbValue(buf.data()).type(), JsonType::kString);
}

}  // namespace
}  // namespace jsontiles::json
