// Corrupt-binary robustness: decoders fed truncated or bit-flipped buffers
// must return a Status (or a structurally valid value), never crash or read
// out of bounds. Run under ASan (the CI sanitizer job) these sweeps are an
// out-of-bounds detector for every binary format the engine accepts.

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "json/bson.h"
#include "json/cbor.h"
#include "json/dom.h"
#include "json/jsonb.h"
#include "util/random.h"

namespace jsontiles::json {
namespace {

const char* const kCorpus[] = {
    "null",
    "true",
    "[]",
    "{}",
    "0",
    "-9223372036854775807",
    "3.14159265358979",
    "\"short\"",
    "\"a long string that does not fit the immediate length encoding form\"",
    "\"19.99\"",  // NumericString detection
    "[1,2.5,\"x\",null,true,[],{}]",
    R"({"a":1,"b":"two","c":[1,2,3],"d":{"e":{"f":null}},"g":1.25})",
    R"({"id":12345,"name":"user-7","tags":["a","b","c"],"price":"42.50",
        "nested":{"deep":[{"k":1},{"k":2}],"flag":false}})",
    R"([[[[[[[["deep nesting"]]]]]]]])",
};

std::vector<std::vector<uint8_t>> JsonbCorpus() {
  std::vector<std::vector<uint8_t>> docs;
  for (const char* text : kCorpus) {
    auto r = JsonbFromText(text);
    EXPECT_TRUE(r.ok()) << text;
    if (r.ok()) docs.push_back(r.MoveValueOrDie());
  }
  return docs;
}

// ---------------------------------------------------------------------------
// JSONB
// ---------------------------------------------------------------------------

TEST(JsonbCorruptTest, ValidDocumentsValidate) {
  for (const auto& doc : JsonbCorpus()) {
    EXPECT_TRUE(ValidateJsonb(doc.data(), doc.size()).ok());
  }
}

TEST(JsonbCorruptTest, EveryStrictPrefixFailsValidation) {
  for (const auto& doc : JsonbCorpus()) {
    for (size_t len = 0; len < doc.size(); len++) {
      EXPECT_FALSE(ValidateJsonb(doc.data(), len).ok())
          << "prefix of length " << len << " of a " << doc.size()
          << "-byte document validated";
    }
  }
}

TEST(JsonbCorruptTest, SingleBitFlipsNeverCrash) {
  for (const auto& doc : JsonbCorpus()) {
    std::vector<uint8_t> mutated = doc;
    for (size_t pos = 0; pos < doc.size(); pos++) {
      for (int bit = 0; bit < 8; bit++) {
        mutated[pos] = doc[pos] ^ static_cast<uint8_t>(1 << bit);
        // Either validation rejects the mutation, or the mutated bytes are a
        // well-formed document — in which case every accessor must work.
        if (ValidateJsonb(mutated.data(), mutated.size()).ok()) {
          JsonbValue value(mutated.data());
          EXPECT_EQ(value.Size(), mutated.size());
          std::string text;
          value.ToJsonText(&text);
          EXPECT_FALSE(text.empty());
        }
        mutated[pos] = doc[pos];
      }
    }
  }
}

TEST(JsonbCorruptTest, RandomMultiByteCorruptionNeverCrashes) {
  Random rng(2026);
  for (const auto& doc : JsonbCorpus()) {
    for (int round = 0; round < 200; round++) {
      std::vector<uint8_t> mutated = doc;
      const size_t flips = 1 + rng.Uniform(4);
      for (size_t f = 0; f < flips; f++) {
        mutated[rng.Uniform(mutated.size())] =
            static_cast<uint8_t>(rng.Uniform(256));
      }
      if (ValidateJsonb(mutated.data(), mutated.size()).ok()) {
        std::string text;
        JsonbValue(mutated.data()).ToJsonText(&text);
      }
    }
  }
}

TEST(JsonbCorruptTest, RandomGarbageNeverValidatesAsLargerThanBuffer) {
  Random rng(7);
  for (int round = 0; round < 2000; round++) {
    std::vector<uint8_t> garbage(1 + rng.Uniform(64));
    for (auto& b : garbage) b = static_cast<uint8_t>(rng.Uniform(256));
    // Must terminate and never claim bytes beyond the buffer.
    Status st = ValidateJsonb(garbage.data(), garbage.size());
    if (st.ok()) {
      EXPECT_EQ(JsonbValue(garbage.data()).Size(), garbage.size());
    }
  }
}

// ---------------------------------------------------------------------------
// BSON / CBOR baselines
// ---------------------------------------------------------------------------

std::vector<std::vector<uint8_t>> BuildEncoded(
    Status (*encode)(const JsonValue&, std::vector<uint8_t>*),
    bool containers_only) {
  std::vector<std::vector<uint8_t>> out;
  for (const char* text : kCorpus) {
    auto dom = ParseJson(text);
    EXPECT_TRUE(dom.ok()) << text;
    if (!dom.ok()) continue;
    const JsonValue& root = dom.ValueOrDie();
    if (containers_only && root.type() != JsonType::kObject &&
        root.type() != JsonType::kArray) {
      continue;
    }
    std::vector<uint8_t> bytes;
    Status st = encode(root, &bytes);
    EXPECT_TRUE(st.ok()) << text << ": " << st.ToString();
    if (st.ok()) out.push_back(std::move(bytes));
  }
  return out;
}

void SweepDecoder(const std::vector<std::vector<uint8_t>>& corpus,
                  Result<JsonValue> (*decode)(const uint8_t*, size_t)) {
  // Every strict prefix: Status or value, never a crash/over-read.
  for (const auto& doc : corpus) {
    for (size_t len = 0; len <= doc.size(); len++) {
      auto r = decode(doc.data(), len);
      if (len == doc.size()) {
        EXPECT_TRUE(r.ok());
      }
    }
  }
  // Every single-bit flip.
  for (const auto& doc : corpus) {
    std::vector<uint8_t> mutated = doc;
    for (size_t pos = 0; pos < doc.size(); pos++) {
      for (int bit = 0; bit < 8; bit++) {
        mutated[pos] = doc[pos] ^ static_cast<uint8_t>(1 << bit);
        (void)decode(mutated.data(), mutated.size());
        mutated[pos] = doc[pos];
      }
    }
  }
  // Random garbage of assorted sizes.
  Random rng(99);
  for (int round = 0; round < 2000; round++) {
    std::vector<uint8_t> garbage(1 + rng.Uniform(64));
    for (auto& b : garbage) b = static_cast<uint8_t>(rng.Uniform(256));
    (void)decode(garbage.data(), garbage.size());
  }
}

TEST(BsonCorruptTest, PrefixesFlipsAndGarbageNeverCrash) {
  // BSON roots are documents; scalars in the corpus are skipped.
  auto corpus = BuildEncoded(&bson::Encode, /*containers_only=*/true);
  ASSERT_FALSE(corpus.empty());
  SweepDecoder(corpus, &bson::Decode);
}

TEST(CborCorruptTest, PrefixesFlipsAndGarbageNeverCrash) {
  auto corpus = BuildEncoded(&cbor::Encode, /*containers_only=*/false);
  ASSERT_FALSE(corpus.empty());
  SweepDecoder(corpus, &cbor::Decode);
}

}  // namespace
}  // namespace jsontiles::json
