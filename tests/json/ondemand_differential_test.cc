// Parser differential: the on-demand path (structural index + lazy walker +
// fallback) must be observationally identical to the streaming parser — same
// accept/reject decision and byte-identical JSONB on accept — over the
// workload corpora, a library of adversarial edge documents, and a mutation
// fuzz corpus. The CI parser-differential leg runs this suite under
// ASan/UBSan; the simd-off leg runs it against the scalar stage-1 tier.

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "json/jsonb.h"
#include "json/ondemand.h"
#include "json/structural_index.h"
#include "storage/loader.h"
#include "storage/serialize.h"
#include "util/failpoint.h"
#include "util/random.h"
#include "workload/simdjson_corpus.h"
#include "workload/tpch.h"
#include "workload/twitter.h"
#include "workload/yelp.h"

namespace jsontiles::json {
namespace {

// One shared checker: statuses must agree in outcome and code (fallback
// re-parses with the streaming parser, so an indexed-path acceptance of a
// document the baseline rejects shows up here as ok() disagreement), and
// accepted documents must serialize to identical bytes.
void ExpectParity(std::string_view doc) {
  JsonbBuilder baseline;
  OndemandTransformer ondemand;
  std::vector<uint8_t> expected, actual;
  const Status baseline_st = baseline.Transform(doc, &expected);
  const Status ondemand_st = ondemand.Transform(doc, &actual);
  ASSERT_EQ(baseline_st.ok(), ondemand_st.ok())
      << "doc: " << doc << "\nbaseline: " << baseline_st.ToString()
      << "\nondemand: " << ondemand_st.ToString();
  ASSERT_EQ(baseline_st.code(), ondemand_st.code()) << "doc: " << doc;
  if (baseline_st.ok()) {
    ASSERT_EQ(expected, actual) << "doc: " << doc;
  }
}

TEST(OndemandDifferentialTest, WorkloadCorpora) {
  workload::TpchOptions tpch;
  tpch.scale_factor = 0.002;
  for (const auto& doc : workload::GenerateTpch(tpch).combined) {
    ExpectParity(doc);
  }
  workload::YelpOptions yelp;
  yelp.num_business = 40;
  for (const auto& doc : workload::GenerateYelp(yelp)) ExpectParity(doc);
  workload::TwitterOptions twitter;
  twitter.num_tweets = 1500;
  twitter.changing_schema = true;
  for (const auto& doc : workload::GenerateTwitter(twitter)) ExpectParity(doc);
  for (const auto& file : workload::GenerateSimdJsonCorpus()) {
    ExpectParity(file.json);
  }
}

TEST(OndemandDifferentialTest, EdgeDocuments) {
  const char* docs[] = {
      // Accepted shapes the walker must serialize identically.
      R"({})",
      R"([])",
      R"({"a":{}})",
      R"([[],[[]],{}])",
      R"({"b":2,"a":1,"b":3})",            // duplicate keys: last wins
      R"({"dup":1,"dup":2,"Dup":3,"dup":4})",  // case-sensitive dedup
      R"({"b":{"x":1,"x":2},"a":[{"k":1,"k":2}],"b":0})",  // nested dups
      R"({"":null})",                      // empty key
      R"({"":1,"":2})",                    // duplicate empty keys
      R"({"a":"19.99","b":"-0.001"})",     // numeric strings (§5.2)
      R"(["\u0041\u00e9\u6c34\ud83d\ude00"])",  // BMP + surrogate pair
      R"("\ud800")",                       // lone surrogate: lexer accepts
      R"("\udc00\ud800")",                 // lone surrogates, reversed order
      R"("\ud83d\ud83d\ude00")",           // lone high + real surrogate pair
      R"("\u0022\u005c\u002f")",           // escapes decoding to " \ / --
                                           // decoded bytes must not be
                                           // re-lexed as structure
      R"(["\u0041","\u0000z"])",         // overlong ASCII escape, escaped NUL
      R"("a\/b\\c\"d\b\f\n\r\t")",
      "\"caf\xc3\xa9 \xf0\x9f\x98\x80\"",  // raw UTF-8
      "\"\xff\xfe\x80\"",                  // invalid UTF-8: not validated
      R"( [ 1 , 2 ] )",
      "\t{\n\"a\"\r:\t1\n}\r",
      R"(0)", R"(-0)", R"(15)", R"(16)", R"(-1)",
      R"(9223372036854775807)", R"(-9223372036854775808)",
      R"(18446744073709551615)",           // int64 overflow -> float
      R"(1e308)", R"(1e309)", R"(-1e400)", // double overflow -> HUGE_VAL
      R"(1e-7)", R"(0.5)", R"(3.14159)", R"(2.5e+3)", R"(1E2)",
      R"(123456.789)",
      R"(true)", R"(false)", R"(null)",
      R"("")",
      // Rejected shapes: both paths must say no.
      "",
      "   ",
      R"({)",
      R"(})",
      R"(])",
      R"(,)",
      R"(:)",
      R"({,})",
      R"({"a"})",
      R"({"a":})",
      R"({"a":1,})",
      R"({"a" 1})",
      R"({1:2})",
      R"([1,])",
      R"([,1])",
      R"([1 2])",
      R"([1,,2])",
      R"(nul)",
      R"(nullx)",
      R"(truefalse)",
      R"(12x)",
      R"(1.2.3)",
      R"(01)",
      R"(1.)",
      R"(.5)",
      R"(+1)",
      R"(-)",
      R"(1e)",
      R"(1e+)",
      R"("abc)",
      "\"ab\nc\"",                          // unescaped control character
      "\"ab\x01\"",
      R"("\x41")",                          // invalid escape
      R"("\u12")",                          // truncated \u
      R"("\u12g4")",
      "\"abc\\",                            // dangling backslash
      R"(\n)",                              // escape outside a string
      R"(1 2)",
      R"({} {})",
      R"([1] extra)",
  };
  for (const char* doc : docs) ExpectParity(doc);
}

TEST(OndemandDifferentialTest, NestingDepths) {
  for (int depth : {1, 8, 255, 256, 257, 300, 500}) {
    std::string open, close;
    for (int i = 0; i < depth; i++) {
      open += '[';
      close += ']';
    }
    ExpectParity(open + "1" + close);
    ExpectParity(open);  // truncated
  }
}

TEST(OndemandDifferentialTest, LongStringsAndKeys) {
  ExpectParity("\"" + std::string(70000, 'x') + "\"");
  // Keys above the u16 limit are rejected by both paths.
  ExpectParity("{\"" + std::string(60000, 'k') + "\":1}");
  ExpectParity("{\"" + std::string(70000, 'k') + "\":1}");
  // Escape-heavy string (exercises the word-at-a-time validator).
  std::string heavy = "\"";
  for (int i = 0; i < 4000; i++) heavy += "ab\\\"c\\u00e9";
  heavy += "\"";
  ExpectParity(heavy);
}

class OndemandMutationFuzzTest : public ::testing::TestWithParam<uint64_t> {};

// Mirrors parser_fuzz_test.cc's mutation engine, plus seeds aimed at the
// direct emitter's hard cases: deep nesting, documents sitting right at the
// kMaxNesting cap (one inserted bracket tips them over), duplicate keys at
// several levels (the object close-time sort/dedup), and strings of lone
// surrogates and overlong escapes (escape decoding and clean-range slicing);
// every mutated document goes through the differential checker.
TEST_P(OndemandMutationFuzzTest, MutatedTextStaysIdentical) {
  const std::string deep = "[[[[[[[[{\"a\":[1,2,{\"b\":null}]}]]]]]]]]";
  const std::string depth_cap =
      std::string(255, '[') + "0" + std::string(255, ']');
  const std::string seeds[] = {
      R"({"id":1,"user":{"name":"ada","tags":[1,2.5,"x",null,true]},"p":"19.99"})",
      R"([[[1,2],[3,4]],{"k":"v"},[],{}])",
      R"({"a":"é😀\n\t","b":-123456789012345,"c":1e-7})",
      deep,
      depth_cap,
      R"({"k":1,"k":"two","a":{"k":null,"k":[1,1]},"k":3,"b":0,"a":9})",
      R"(["\ud800","\udfff","\u0000z","\u0041\u0022","é\ud83d"])",
  };
  constexpr size_t kNumSeeds = sizeof(seeds) / sizeof(seeds[0]);
  Random rng(GetParam());
  for (int iter = 0; iter < 300; iter++) {
    std::string text = seeds[rng.Uniform(kNumSeeds)];
    int mutations = 1 + static_cast<int>(rng.Uniform(6));
    for (int m = 0; m < mutations && !text.empty(); m++) {
      switch (rng.Uniform(4)) {
        case 0:  // flip a byte
          text[rng.Uniform(text.size())] ^=
              static_cast<char>(1u << rng.Uniform(8));
          break;
        case 1:  // delete a byte
          text.erase(rng.Uniform(text.size()), 1);
          break;
        case 2: {  // insert a structural byte
          const char structural[] = "{}[],:\"0\\u";
          text.insert(text.begin() + rng.Uniform(text.size() + 1),
                      structural[rng.Uniform(sizeof(structural) - 1)]);
          break;
        }
        case 3:  // truncate
          text.resize(rng.Uniform(text.size() + 1));
          break;
      }
    }
    ExpectParity(text);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, OndemandMutationFuzzTest,
                         ::testing::Values(101, 202, 303, 404, 505));

#if JSONTILES_FAILPOINTS_AVAILABLE
TEST(OndemandDifferentialTest, ForcedFallbackStaysIdentical) {
  failpoint::DisableAll();
  failpoint::Enable("ondemand.force_fallback", failpoint::Spec::Always());
  OndemandTransformer ondemand;
  JsonbBuilder baseline;
  std::vector<uint8_t> expected, actual;
  const char* doc = R"({"a":[1,"two",3.5],"b":{"c":null}})";
  ASSERT_TRUE(baseline.Transform(doc, &expected).ok());
  ASSERT_TRUE(ondemand.Transform(doc, &actual).ok());
  EXPECT_EQ(expected, actual);
  EXPECT_EQ(ondemand.docs_fallback(), 1u);
  EXPECT_EQ(ondemand.docs_ondemand(), 0u);
  failpoint::DisableAll();
  ASSERT_TRUE(ondemand.Transform(doc, &actual).ok());
  EXPECT_EQ(expected, actual);
  EXPECT_EQ(ondemand.docs_ondemand(), 1u);
}
#endif  // JSONTILES_FAILPOINTS_AVAILABLE

TEST(OndemandDifferentialTest, StatsCountBothPaths) {
  OndemandTransformer ondemand;
  std::vector<uint8_t> buf;
  ASSERT_TRUE(ondemand.Transform(R"({"a":1})", &buf).ok());
  EXPECT_FALSE(ondemand.Transform(R"({"a":)", &buf).ok());
  EXPECT_EQ(ondemand.docs_ondemand(), 1u);
  EXPECT_EQ(ondemand.docs_fallback(), 1u);
}

// Whole-relation identity: loading with LoadOptions::ondemand must produce a
// relation whose serialized bytes — tiles, columns, stats, side relations —
// match the baseline load exactly, in every storage mode.
TEST(OndemandDifferentialTest, LoadedRelationsAreByteIdentical) {
  workload::TwitterOptions twitter;
  twitter.num_tweets = 3000;
  const auto docs = workload::GenerateTwitter(twitter);

  for (auto mode : {storage::StorageMode::kJsonb, storage::StorageMode::kSinew,
                    storage::StorageMode::kTiles}) {
    tiles::TileConfig config;
    config.tile_size = 256;
    config.partition_size = 4;
    storage::LoadOptions baseline_opts;
    baseline_opts.num_threads = 2;
    baseline_opts.extract_arrays = true;
    storage::LoadOptions ondemand_opts = baseline_opts;
    ondemand_opts.ondemand = true;

    auto expected = storage::Loader(mode, config, baseline_opts)
                        .Load(docs, "twitter")
                        .MoveValueOrDie();
    auto actual = storage::Loader(mode, config, ondemand_opts)
                      .Load(docs, "twitter")
                      .MoveValueOrDie();

    std::vector<uint8_t> expected_bytes, actual_bytes;
    ASSERT_TRUE(storage::SerializeRelation(*expected, &expected_bytes).ok());
    ASSERT_TRUE(storage::SerializeRelation(*actual, &actual_bytes).ok());
    EXPECT_EQ(expected_bytes, actual_bytes)
        << "mode " << static_cast<int>(mode);
  }
}

}  // namespace
}  // namespace jsontiles::json
