// Stage-1 structural index: hand-computed positions, escape and boundary
// behavior, and bit-identity between the scalar reference and whichever
// vector tier the machine runs (the differential tests in
// ondemand_differential_test.cc then hold the full pipeline to the streaming
// parser).

#include <cstring>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "exec/simd.h"
#include "json/structural_index.h"
#include "util/random.h"
#include "workload/simdjson_corpus.h"
#include "workload/tpch.h"

namespace jsontiles::json {
namespace {

// Restores the exec::simd kill switch on scope exit.
struct SimdGuard {
  bool prev = exec::simd::Enabled();
  ~SimdGuard() { exec::simd::SetEnabled(prev); }
};

// The valid prefix of the positions buffer.
std::vector<uint32_t> Slice(const StructuralIndex& index) {
  return std::vector<uint32_t>(index.positions.begin(),
                               index.positions.begin() +
                                   static_cast<long>(index.count));
}

std::vector<uint32_t> Positions(std::string_view input) {
  StructuralIndex index;
  Status st = BuildStructuralIndex(input, &index);
  EXPECT_TRUE(st.ok()) << st.ToString();
  return Slice(index);
}

TEST(StructuralIndexTest, HandComputedPositions) {
  EXPECT_EQ(Positions(R"({"a":1})"),
            (std::vector<uint32_t>{0, 1, 3, 4, 5, 6}));
  // `n` starts a scalar run; the later literal characters are not indexed.
  EXPECT_EQ(Positions("[null, 12]"), (std::vector<uint32_t>{0, 1, 5, 7, 9}));
  // A scalar after whitespace is a fresh run start.
  EXPECT_EQ(Positions("1 2"), (std::vector<uint32_t>{0, 2}));
  // Only the delimiter quotes of a string are indexed.
  EXPECT_EQ(Positions(R"("hello world {",)"),
            (std::vector<uint32_t>{0, 14, 15}));
  EXPECT_EQ(Positions(""), std::vector<uint32_t>{});
  EXPECT_EQ(Positions("   \t\n"), std::vector<uint32_t>{});
}

TEST(StructuralIndexTest, StructureInsideStringsIsNotIndexed) {
  EXPECT_EQ(Positions(R"("{[:,]}")"), (std::vector<uint32_t>{0, 7}));
  EXPECT_EQ(Positions(R"(["a,b", "c:d"])"),
            (std::vector<uint32_t>{0, 1, 5, 6, 8, 12, 13}));
}

TEST(StructuralIndexTest, EscapedQuotesDoNotToggleStrings) {
  // "a\"b" — the escaped quote stays inside the string.
  EXPECT_EQ(Positions("\"a\\\"b\""), (std::vector<uint32_t>{0, 5}));
  // "\\" — even backslash run, the final quote is real.
  EXPECT_EQ(Positions("\"\\\\\""), (std::vector<uint32_t>{0, 3}));
  // "\\\"" — odd run escapes the quote.
  EXPECT_EQ(Positions("\"\\\\\\\"\""), (std::vector<uint32_t>{0, 5}));
}

TEST(StructuralIndexTest, UnterminatedStringFails) {
  StructuralIndex index;
  EXPECT_FALSE(BuildStructuralIndex("\"abc", &index).ok());
  EXPECT_FALSE(BuildStructuralIndex("{\"a\": \"", &index).ok());
  // Trailing escaped quote keeps the string open.
  EXPECT_FALSE(BuildStructuralIndex("\"abc\\\"", &index).ok());
}

TEST(StructuralIndexTest, Utf8PassesThroughAsScalar) {
  // Multi-byte sequences (and even invalid bytes) classify as one scalar run.
  const std::string doc = "[\"caf\xc3\xa9\", \xf0\x9f\x98\x80]";
  EXPECT_EQ(Positions(doc),
            (std::vector<uint32_t>{0, 1, 7, 8, 10, 14}));
}

TEST(StructuralIndexTest, ReusedIndexIsCleared) {
  StructuralIndex index;
  ASSERT_TRUE(BuildStructuralIndex(R"({"a":1})", &index).ok());
  ASSERT_EQ(index.count, 6u);
  // The buffer is grow-only; only `count` resets between documents.
  ASSERT_TRUE(BuildStructuralIndex("7", &index).ok());
  EXPECT_EQ(Slice(index), std::vector<uint32_t>{0});
}

// --- Tier identity ---------------------------------------------------------
// The scalar loop defines the semantics; the vector tiers must agree bit for
// bit on every input, including ones crafted to straddle 64-byte blocks.

StructuralIndex ScalarScan(std::string_view input, Status* st) {
  SimdGuard guard;
  exec::simd::SetEnabled(false);
  EXPECT_STREQ(StructuralIndexIsa(), "scalar");
  StructuralIndex index;
  *st = BuildStructuralIndex(input, &index);
  return index;
}

StructuralIndex VectorScan(std::string_view input, Status* st) {
  SimdGuard guard;
  exec::simd::SetEnabled(true);
  StructuralIndex index;
  *st = BuildStructuralIndex(input, &index);
  return index;
}

void ExpectTierIdentity(std::string_view input) {
  Status scalar_st, vector_st;
  auto scalar = ScalarScan(input, &scalar_st);
  auto vector = VectorScan(input, &vector_st);
  EXPECT_EQ(scalar_st.ok(), vector_st.ok()) << input;
  EXPECT_EQ(Slice(scalar), Slice(vector)) << input;
  EXPECT_EQ(scalar.clean_strings, vector.clean_strings) << input;
  // The problem bitmap must agree on every word the walker may probe.
  const size_t words = (input.size() + 63) / 64;
  for (size_t w = 0; w < words; w++) {
    EXPECT_EQ(scalar.problems[w], vector.problems[w]) << input << " word " << w;
  }
}

TEST(StructuralIndexTest, CleanStringsFlag) {
  StructuralIndex index;
  // No escapes, no control bytes inside strings: clean.
  ASSERT_TRUE(BuildStructuralIndex(R"({"a": "hello", "b": [1, "x"]})", &index)
                  .ok());
  EXPECT_TRUE(index.clean_strings);
  // Raw UTF-8 inside strings is still clean (bytes >= 0x80).
  ASSERT_TRUE(BuildStructuralIndex("\"caf\xc3\xa9\"", &index).ok());
  EXPECT_TRUE(index.clean_strings);
  // A backslash inside a string (value or key) clears the flag.
  ASSERT_TRUE(BuildStructuralIndex(R"("a\"b")", &index).ok());
  EXPECT_FALSE(index.clean_strings);
  ASSERT_TRUE(
      BuildStructuralIndex("{\"k\\u00e9\": 1}", &index).ok());
  EXPECT_FALSE(index.clean_strings);
  // A raw control byte inside a string clears it too (the walker must keep
  // validating so the document is rejected like the streaming parser does).
  ASSERT_TRUE(BuildStructuralIndex("\"a\tb\"", &index).ok());
  EXPECT_FALSE(index.clean_strings);
  // Control bytes and backslashes outside strings don't affect the flag; the
  // backslash surfaces as an indexed scalar the walker rejects.
  ASSERT_TRUE(BuildStructuralIndex("[1,\t2]", &index).ok());
  EXPECT_TRUE(index.clean_strings);
}

TEST(StructuralIndexTierTest, BlockBoundaryStrings) {
  // Escapes, quotes and backslash runs placed around the 64-byte block seam
  // (and the 16/32-byte lane seams inside it).
  for (size_t pad : {0u, 1u, 14u, 15u, 16u, 30u, 31u, 32u, 33u, 47u, 48u,
                     61u, 62u, 63u, 64u, 65u, 127u, 128u, 129u}) {
    const std::string fill(pad, 'a');
    ExpectTierIdentity("\"" + fill + "\\\"tail\"");
    ExpectTierIdentity("\"" + fill + "\\\\\"");
    ExpectTierIdentity("[\"" + fill + "\", " + fill + "]");
    ExpectTierIdentity(fill + "\"unterminated");
    ExpectTierIdentity("\"" + std::string(pad, '\\') + "x\"");
  }
}

// The avx2 nibble-LUT classifier folds bytes with | 0x20 before the table
// compare, which shadows ':' with 0x1A and ',' with 0x0C; the kernel must
// strip those (they are control bytes, scalar chars to the reference
// classifier) both inside and outside strings.
TEST(StructuralIndexTierTest, LutShadowBytesClassifyAsScalars) {
  for (const char shadow : {'\x1a', '\x0c'}) {
    const std::string s(1, shadow);
    ExpectTierIdentity(s);
    ExpectTierIdentity("[1" + s + "2]");
    ExpectTierIdentity("\"a" + s + "b\"");  // in-string: a problem bit, not
                                            // a structural position
    ExpectTierIdentity("{\"k\"" + s + ":1}");
    ExpectTierIdentity(std::string(63, ' ') + s + "7");  // block seam
  }
}

TEST(StructuralIndexTierTest, RandomBytes) {
  Random rng(20260808);
  const char alphabet[] = "{}[],:\"\\ \t\n\x1a\x0c0123456789aeu\xc3\xa9";
  for (int iter = 0; iter < 2000; iter++) {
    const size_t len = rng.Uniform(200);
    std::string input;
    input.reserve(len);
    for (size_t i = 0; i < len; i++) {
      input.push_back(alphabet[rng.Uniform(sizeof(alphabet) - 1)]);
    }
    ExpectTierIdentity(input);
  }
}

TEST(StructuralIndexTierTest, WorkloadDocuments) {
  workload::TpchOptions tpch;
  tpch.scale_factor = 0.001;
  for (const auto& doc : workload::GenerateTpch(tpch).combined) {
    ExpectTierIdentity(doc);
  }
  for (const auto& file : workload::GenerateSimdJsonCorpus()) {
    ExpectTierIdentity(file.json);
  }
}

// --- Scratch reuse across shrinking documents ------------------------------
// `positions` and `problems` are grow-only buffers: a scan over a short
// document rewrites only their valid prefix and leaves earlier entries from a
// longer document in place. None of that remnant state may ever be observable
// — stale positions past `count`, stale problem bits inside the new
// document's word range (which would make the walker treat a clean lexeme as
// dirty, or worse), or a stale clean_strings verdict. Exercised on every tier
// because the scalar loop and the vector kernels reset the prefix
// differently.
void ExpectNoStaleStateAcrossShrinkingDocs() {
  // Escape-heavy opener: sets problem bits in every word it touches and
  // leaves a long positions prefix behind.
  std::string big = "[";
  for (int i = 0; i < 200; i++) big += "\"a\\n\\t\\u0041x\",";
  big += "\"\\\\\"]";
  // Strictly shrinking continuations: dirty, clean, tiny.
  const std::string docs[] = {
      big,
      R"({"k": "clean words only", "n": [1, 2.5, true, null]})",
      "\"a\\\"b\"",  // small dirty: one escape, bits must be exactly here
      R"({"a":1})",  // small clean: all valid problem words must be zero
      "7",
  };
  StructuralIndex reused;
  for (const std::string& doc : docs) {
    StructuralIndex fresh;
    ASSERT_TRUE(BuildStructuralIndex(doc, &reused).ok()) << doc;
    ASSERT_TRUE(BuildStructuralIndex(doc, &fresh).ok()) << doc;
    EXPECT_EQ(Slice(reused), Slice(fresh)) << doc;
    EXPECT_EQ(reused.clean_strings, fresh.clean_strings) << doc;
    const size_t words = (doc.size() + 63) / 64;
    ASSERT_GE(reused.problems.size(), words);
    for (size_t w = 0; w < words; w++) {
      EXPECT_EQ(reused.problems[w], fresh.problems[w]) << doc << " word " << w;
    }
  }
}

TEST(StructuralIndexTierTest, ShrinkingDocumentsCarryNoStaleState) {
  {
    SimdGuard guard;
    exec::simd::SetEnabled(false);
    ASSERT_STREQ(StructuralIndexIsa(), "scalar");
    ExpectNoStaleStateAcrossShrinkingDocs();
  }
  {
    SimdGuard guard;
    exec::simd::SetEnabled(true);  // avx2 or vec128 where compiled in
    ExpectNoStaleStateAcrossShrinkingDocs();
  }
}

TEST(StructuralIndexTierTest, IsaReportsKillSwitch) {
  SimdGuard guard;
  exec::simd::SetEnabled(false);
  EXPECT_STREQ(StructuralIndexIsa(), "scalar");
  exec::simd::SetEnabled(true);
  if (exec::simd::CompiledIn()) {
    EXPECT_STRNE(StructuralIndexIsa(), "scalar");
  } else {
    EXPECT_STREQ(StructuralIndexIsa(), "scalar");
  }
}

}  // namespace
}  // namespace jsontiles::json
