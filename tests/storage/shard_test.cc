#include "storage/shard.h"

#include <map>
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "storage/loader.h"
#include "tiles/keypath.h"
#include "util/random.h"

namespace jsontiles::storage {
namespace {

std::string Path(std::initializer_list<const char*> keys) {
  std::string encoded;
  for (const char* k : keys) tiles::AppendKeySegment(&encoded, k);
  return encoded;
}

std::vector<std::string> KeyedDocs(size_t n) {
  Random rng(11);
  std::vector<std::string> docs;
  for (size_t i = 0; i < n; i++) {
    docs.push_back(R"({"k":)" + std::to_string(i % 40) + R"(,"v":)" +
                   std::to_string(i) + R"(,"s":")" + rng.NextString(2, 10) +
                   R"("})");
  }
  return docs;
}

ShardOptions HashOn(size_t count, std::vector<std::string> keys) {
  ShardOptions o;
  o.shard_count = count;
  o.routing = ShardRouting::kHashKey;
  o.routing_keys = std::move(keys);
  return o;
}

TEST(ShardTest, RoundRobinBalances) {
  auto docs = KeyedDocs(101);
  ShardOptions options;
  options.shard_count = 4;
  auto sharded = ShardedRelation::Load(docs, "t", StorageMode::kTiles, {}, {},
                                       options)
                     .MoveValueOrDie();
  ASSERT_EQ(sharded->shard_count(), 4u);
  EXPECT_EQ(sharded->num_rows(), 101u);
  // Document i lands on shard i % 4 — the first shard gets the remainder.
  EXPECT_EQ(sharded->shard(0).num_rows(), 26u);
  EXPECT_EQ(sharded->shard(1).num_rows(), 25u);
  EXPECT_EQ(sharded->shard(2).num_rows(), 25u);
  EXPECT_EQ(sharded->shard(3).num_rows(), 25u);
  EXPECT_EQ(sharded->routing_kind(), RoutingValueKind::kNone);
  EXPECT_TRUE(sharded->routing_path().empty());
}

TEST(ShardTest, HashRoutingGroupsEqualKeys) {
  auto docs = KeyedDocs(400);
  auto sharded = ShardedRelation::Load(docs, "t", StorageMode::kJsonb, {}, {},
                                       HashOn(8, {"k"}))
                     .MoveValueOrDie();
  EXPECT_EQ(sharded->routing_kind(), RoutingValueKind::kIntOnly);
  EXPECT_EQ(sharded->routing_path(), Path({"k"}));
  // Every distinct key value appears in exactly one shard.
  std::map<int64_t, std::set<size_t>> shards_of_key;
  for (size_t s = 0; s < sharded->shard_count(); s++) {
    const Relation& shard = sharded->shard(s);
    for (size_t r = 0; r < shard.num_rows(); r++) {
      shards_of_key[shard.Jsonb(r).FindKey("k")->GetInt()].insert(s);
    }
  }
  EXPECT_EQ(shards_of_key.size(), 40u);
  for (const auto& [key, shards] : shards_of_key) {
    EXPECT_EQ(shards.size(), 1u) << "key " << key << " straddles shards";
    EXPECT_EQ(*shards.begin(),
              ShardKeyHashInt(key) % sharded->shard_count());
  }
}

TEST(ShardTest, IntegralFloatRoutesLikeInt) {
  std::vector<std::string> docs = {R"({"k":5,"v":1})", R"({"k":5.0,"v":2})",
                                   R"({"k":7,"v":3})"};
  auto sharded = ShardedRelation::Load(docs, "t", StorageMode::kJsonb, {}, {},
                                       HashOn(4, {"k"}))
                     .MoveValueOrDie();
  size_t five_shard = ShardKeyHashInt(5) % 4;
  size_t seven_shard = ShardKeyHashInt(7) % 4;
  const Relation& shard = sharded->shard(five_shard);
  // Both the int 5 and the float 5.0 land on hash(5)'s shard; the k=7 doc
  // joins them only if its hash collides at 4 shards.
  ASSERT_EQ(shard.num_rows(), five_shard == seven_shard ? 3u : 2u);
  std::set<int64_t> vs;
  for (size_t r = 0; r < shard.num_rows(); r++) {
    vs.insert(shard.Jsonb(r).FindKey("v")->GetInt());
  }
  EXPECT_TRUE(vs.count(1) == 1 && vs.count(2) == 1);
  EXPECT_EQ(sharded->routing_kind(), RoutingValueKind::kIntOnly);
}

TEST(ShardTest, StringRouting) {
  std::vector<std::string> docs;
  for (int i = 0; i < 60; i++) {
    docs.push_back(R"({"city":"c)" + std::to_string(i % 7) + R"(","v":)" +
                   std::to_string(i) + "}");
  }
  auto sharded = ShardedRelation::Load(docs, "t", StorageMode::kJsonb, {}, {},
                                       HashOn(4, {"city"}))
                     .MoveValueOrDie();
  EXPECT_EQ(sharded->routing_kind(), RoutingValueKind::kStringOnly);
  for (int c = 0; c < 7; c++) {
    std::string city = "c" + std::to_string(c);
    size_t home = ShardKeyHashString(city) % 4;
    for (size_t s = 0; s < 4; s++) {
      const Relation& shard = sharded->shard(s);
      for (size_t r = 0; r < shard.num_rows(); r++) {
        auto v = shard.Jsonb(r).FindKey("city");
        if (v.has_value() && v->GetString() == city) {
          EXPECT_EQ(s, home);
        }
      }
    }
  }
}

TEST(ShardTest, MixedRoutingValuesDisablePruningKind) {
  std::vector<std::string> docs = {R"({"k":1})", R"({"k":"one"})",
                                   R"({"k":2})"};
  auto sharded = ShardedRelation::Load(docs, "t", StorageMode::kJsonb, {}, {},
                                       HashOn(2, {"k"}))
                     .MoveValueOrDie();
  EXPECT_EQ(sharded->routing_kind(), RoutingValueKind::kMixed);
}

TEST(ShardTest, MissingRoutingValueFallsBackByPosition) {
  std::vector<std::string> docs = {R"({"other":1})", R"({"k":null})",
                                   R"({"other":2})", R"({"other":3})"};
  auto sharded = ShardedRelation::Load(docs, "t", StorageMode::kJsonb, {}, {},
                                       HashOn(2, {"k"}))
                     .MoveValueOrDie();
  EXPECT_EQ(sharded->num_rows(), 4u);
  // Position fallback: docs 0..3 -> shard i % 2.
  EXPECT_EQ(sharded->shard(0).num_rows(), 2u);
  EXPECT_EQ(sharded->shard(1).num_rows(), 2u);
}

TEST(ShardTest, RowIdBases) {
  EXPECT_EQ(ShardedRelation::RowIdBase(0), 0);
  EXPECT_EQ(ShardedRelation::RowIdBase(1), int64_t{1} << 40);
  EXPECT_EQ(ShardedRelation::RowIdBase(3), int64_t{3} << 40);
}

TEST(ShardTest, InvalidOptionsRejected) {
  auto docs = KeyedDocs(4);
  {
    ShardOptions o;
    o.shard_count = 0;
    EXPECT_FALSE(
        ShardedRelation::Load(docs, "t", StorageMode::kJsonb, {}, {}, o).ok());
  }
  {
    ShardOptions o;
    o.shard_count = 1 << 20;
    EXPECT_FALSE(
        ShardedRelation::Load(docs, "t", StorageMode::kJsonb, {}, {}, o).ok());
  }
  {
    ShardOptions o;
    o.shard_count = 2;
    o.routing = ShardRouting::kHashKey;  // no routing_keys
    EXPECT_FALSE(
        ShardedRelation::Load(docs, "t", StorageMode::kJsonb, {}, {}, o).ok());
  }
}

TEST(ShardTest, MoreShardsThanDocs) {
  auto docs = KeyedDocs(3);
  ShardOptions options;
  options.shard_count = 8;
  auto sharded = ShardedRelation::Load(docs, "t", StorageMode::kTiles, {}, {},
                                       options)
                     .MoveValueOrDie();
  EXPECT_EQ(sharded->shard_count(), 8u);
  EXPECT_EQ(sharded->num_rows(), 3u);
  size_t non_empty = 0;
  for (size_t s = 0; s < 8; s++) {
    if (sharded->shard(s).num_rows() > 0) non_empty++;
  }
  EXPECT_EQ(non_empty, 3u);
}

TEST(ShardTest, EmptyInput) {
  ShardOptions options;
  options.shard_count = 2;
  auto sharded = ShardedRelation::Load({}, "t", StorageMode::kTiles, {}, {},
                                       options)
                     .MoveValueOrDie();
  EXPECT_EQ(sharded->num_rows(), 0u);
  EXPECT_EQ(sharded->shard_count(), 2u);
}

TEST(ShardStatsTest, BloomUnionCoversAllTilePaths) {
  // First half has "a", second half has "b": shard 0 (round-robin over a
  // striped stream) sees both, but a shard loaded from "a"-docs only must
  // report b as absent.
  std::vector<std::string> a_docs, b_docs;
  for (int i = 0; i < 100; i++) {
    a_docs.push_back(R"({"a":)" + std::to_string(i) + "}");
    b_docs.push_back(R"({"b":)" + std::to_string(i) + "}");
  }
  tiles::TileConfig config;
  config.tile_size = 32;
  Loader loader(StorageMode::kTiles, config);
  auto rel = loader.Load(a_docs, "a").MoveValueOrDie();
  ShardStats stats = ComputeShardStats(*rel);
  ASSERT_TRUE(stats.has_path_stats);
  EXPECT_TRUE(stats.MayContainPath(Path({"a"})));
  EXPECT_FALSE(stats.MayContainPath(Path({"b"})));
}

TEST(ShardStatsTest, ZoneMapsWidenAcrossTiles) {
  std::vector<std::string> docs;
  for (int i = 0; i < 200; i++) {
    docs.push_back(R"({"v":)" + std::to_string(100 + i) + "}");
  }
  tiles::TileConfig config;
  config.tile_size = 64;
  Loader loader(StorageMode::kTiles, config);
  auto rel = loader.Load(docs, "z").MoveValueOrDie();
  ShardStats stats = ComputeShardStats(*rel);
  const ShardZoneEntry* zone = stats.FindZone(Path({"v"}));
  ASSERT_NE(zone, nullptr);
  EXPECT_TRUE(zone->valid);
  EXPECT_TRUE(zone->any_values);
  EXPECT_EQ(zone->min_i, 100);
  EXPECT_EQ(zone->max_i, 299);
}

TEST(ShardStatsTest, NonTiledModesHaveNoStats) {
  Loader loader(StorageMode::kJsonb, {});
  auto rel = loader.Load(KeyedDocs(10), "j").MoveValueOrDie();
  ShardStats stats = ComputeShardStats(*rel);
  EXPECT_FALSE(stats.has_path_stats);
  // No stats: everything may be present (no unsound pruning).
  EXPECT_TRUE(stats.MayContainPath(Path({"anything"})));
}

TEST(ShardTest, SidePartsCarryGlobalRowIdBases) {
  std::vector<std::string> docs;
  for (int i = 0; i < 600; i++) {
    docs.push_back(R"({"id":)" + std::to_string(i) +
                   R"(,"tags":[{"t":"x"},{"t":"y"}]})");
  }
  LoadOptions load_options;
  load_options.extract_arrays = true;
  load_options.array_min_avg_elements = 1.0;
  load_options.array_min_presence = 0.3;
  ShardOptions options;
  options.shard_count = 3;
  auto sharded = ShardedRelation::Load(docs, "t", StorageMode::kTiles, {},
                                       load_options, options)
                     .MoveValueOrDie();
  std::string tags_path = Path({"tags"});
  ASSERT_TRUE(sharded->HasSideRelation(tags_path));
  auto parts = sharded->SideParts(tags_path);
  ASSERT_EQ(parts.size(), 3u);
  for (size_t p = 0; p < parts.size(); p++) {
    EXPECT_EQ(parts[p].rowid_base, ShardedRelation::RowIdBase(p));
    // The side relation's _rowid values are already global (offset by the
    // shard's base at load time).
    const Relation& side = *parts[p].relation;
    ASSERT_GT(side.num_rows(), 0u);
    int64_t rowid = side.Jsonb(0).FindKey("_rowid")->GetInt();
    if (p > 0) {
      EXPECT_GE(rowid, ShardedRelation::RowIdBase(p));
    }
    EXPECT_LT(rowid, ShardedRelation::RowIdBase(p + 1));
  }
}

TEST(ShardTest, ParallelLoadMatchesSerial) {
  auto docs = KeyedDocs(500);
  tiles::TileConfig config;
  config.tile_size = 64;
  LoadOptions serial, parallel;
  serial.num_threads = 1;
  parallel.num_threads = 4;
  ShardOptions options;
  options.shard_count = 4;
  auto a = ShardedRelation::Load(docs, "t", StorageMode::kTiles, config,
                                 serial, options)
               .MoveValueOrDie();
  auto b = ShardedRelation::Load(docs, "t", StorageMode::kTiles, config,
                                 parallel, options)
               .MoveValueOrDie();
  ASSERT_EQ(a->shard_count(), b->shard_count());
  for (size_t s = 0; s < a->shard_count(); s++) {
    ASSERT_EQ(a->shard(s).num_rows(), b->shard(s).num_rows());
    for (size_t r = 0; r < a->shard(s).num_rows(); r += 37) {
      EXPECT_EQ(a->shard(s).Jsonb(r).ToJsonText(),
                b->shard(s).Jsonb(r).ToJsonText());
    }
    EXPECT_EQ(a->shard(s).tiles().size(), b->shard(s).tiles().size());
  }
}

}  // namespace
}  // namespace jsontiles::storage
