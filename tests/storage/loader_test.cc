#include "storage/loader.h"

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "storage/relation.h"
#include "tiles/keypath.h"
#include "util/failpoint.h"
#include "util/random.h"

namespace jsontiles::storage {
namespace {

std::string Path(std::initializer_list<const char*> keys) {
  std::string encoded;
  for (const char* k : keys) tiles::AppendKeySegment(&encoded, k);
  return encoded;
}

std::vector<std::string> SimpleDocs(size_t n) {
  std::vector<std::string> docs;
  for (size_t i = 0; i < n; i++) {
    docs.push_back(R"({"id":)" + std::to_string(i) + R"(,"name":"user)" +
                   std::to_string(i % 17) + R"(","score":)" +
                   std::to_string(i % 100) + "}");
  }
  return docs;
}

TEST(LoaderTest, JsonTextMode) {
  Loader loader(StorageMode::kJsonText, {});
  auto rel = loader.Load(SimpleDocs(10), "t").MoveValueOrDie();
  EXPECT_EQ(rel->mode(), StorageMode::kJsonText);
  EXPECT_EQ(rel->num_rows(), 10u);
  EXPECT_EQ(rel->JsonText(3), R"({"id":3,"name":"user3","score":3})");
  EXPECT_TRUE(rel->tiles().empty());
}

TEST(LoaderTest, JsonbMode) {
  Loader loader(StorageMode::kJsonb, {});
  auto rel = loader.Load(SimpleDocs(10), "t").MoveValueOrDie();
  EXPECT_EQ(rel->num_rows(), 10u);
  EXPECT_EQ(rel->Jsonb(7).FindKey("id")->GetInt(), 7);
  EXPECT_TRUE(rel->tiles().empty());
}

TEST(LoaderTest, TilesModeBuildsTilesAndStats) {
  tiles::TileConfig config;
  config.tile_size = 64;
  config.partition_size = 4;
  Loader loader(StorageMode::kTiles, config);
  LoadBreakdown breakdown;
  auto rel = loader.Load(SimpleDocs(300), "t", &breakdown).MoveValueOrDie();
  EXPECT_EQ(rel->num_rows(), 300u);
  // ceil(300/64) tiles.
  EXPECT_EQ(rel->tiles().size(), 5u);
  EXPECT_EQ(rel->tiles()[4].row_begin, 256u);
  EXPECT_EQ(rel->tiles()[4].row_count, 44u);
  // Homogeneous docs: id extracted in every tile.
  for (const auto& tile : rel->tiles()) {
    EXPECT_NE(tile.FindColumn(Path({"id"})), nullptr);
  }
  // TileForRow maps correctly.
  EXPECT_EQ(rel->TileForRow(0), &rel->tiles()[0]);
  EXPECT_EQ(rel->TileForRow(299), &rel->tiles()[4]);
  // Stats aggregated.
  EXPECT_TRUE(rel->has_stats());
  EXPECT_EQ(rel->stats().total_tuples(), 300u);
  std::string id_key = tiles::MakeDictKey(Path({"id"}),
                                          static_cast<uint8_t>(json::JsonType::kInt));
  EXPECT_EQ(rel->stats().EstimateKeyCardinality(id_key), 300u);
  auto distinct = rel->stats().EstimateDistinct(id_key);
  ASSERT_TRUE(distinct.has_value());
  EXPECT_NEAR(*distinct, 300.0, 30.0);
  // Breakdown sanity.
  EXPECT_EQ(breakdown.tuples, 300u);
  EXPECT_GT(breakdown.total_wall_secs, 0.0);
  EXPECT_GT(breakdown.jsonb_secs, 0.0);
}

TEST(LoaderTest, SinewModeGlobalTile) {
  tiles::TileConfig config;
  config.tile_size = 64;
  Loader loader(StorageMode::kSinew, config);
  auto rel = loader.Load(SimpleDocs(300), "t").MoveValueOrDie();
  ASSERT_EQ(rel->tiles().size(), 1u);  // one global extraction
  EXPECT_EQ(rel->tiles()[0].row_count, 300u);
  EXPECT_NE(rel->tiles()[0].FindColumn(Path({"id"})), nullptr);
  EXPECT_FALSE(rel->has_stats());
  EXPECT_EQ(rel->TileForRow(250), &rel->tiles()[0]);
}

TEST(LoaderTest, SinewGlobalThresholdMissesLocalPatterns) {
  // Figure 2 scenario: a key in 40% of the table (clustered in the second
  // half) is below Sinew's global 60% cut but extracted by tiles locally.
  std::vector<std::string> docs;
  for (int i = 0; i < 120; i++) docs.push_back(R"({"id":1,"text":"a"})");
  for (int i = 0; i < 80; i++) {
    docs.push_back(R"({"id":2,"text":"b","geo":{"lat":1.5}})");
  }
  tiles::TileConfig config;
  config.tile_size = 50;
  config.partition_size = 4;
  Loader sinew_loader(StorageMode::kSinew, config);
  auto sinew = sinew_loader.Load(docs, "t").MoveValueOrDie();
  EXPECT_EQ(sinew->tiles()[0].FindColumn(Path({"geo", "lat"})), nullptr);

  Loader tiles_loader(StorageMode::kTiles, config);
  auto tiled = tiles_loader.Load(docs, "t").MoveValueOrDie();
  bool extracted_somewhere = false;
  for (const auto& tile : tiled->tiles()) {
    if (tile.FindColumn(Path({"geo", "lat"})) != nullptr) extracted_somewhere = true;
  }
  EXPECT_TRUE(extracted_somewhere);
}

TEST(LoaderTest, ParallelLoadIsDeterministic) {
  tiles::TileConfig config;
  config.tile_size = 32;
  config.partition_size = 4;
  auto docs = SimpleDocs(500);
  Loader serial(StorageMode::kTiles, config, LoadOptions{.num_threads = 1});
  Loader parallel(StorageMode::kTiles, config, LoadOptions{.num_threads = 4});
  auto a = serial.Load(docs, "t").MoveValueOrDie();
  auto b = parallel.Load(docs, "t").MoveValueOrDie();
  ASSERT_EQ(a->num_rows(), b->num_rows());
  ASSERT_EQ(a->tiles().size(), b->tiles().size());
  for (size_t r = 0; r < a->num_rows(); r++) {
    EXPECT_EQ(a->Jsonb(r).ToJsonText(), b->Jsonb(r).ToJsonText());
  }
}

TEST(LoaderTest, MalformedDocumentFailsLoad) {
  Loader loader(StorageMode::kTiles, {});
  std::vector<std::string> docs = {R"({"ok":1})", "{broken"};
  auto result = loader.Load(docs, "t");
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kParseError);
}

TEST(LoaderTest, MaxErrorsSkipsMalformedDocs) {
  auto docs = SimpleDocs(100);
  docs[10] = "{broken";
  docs[55] = "not json at all";
  LoadOptions options;
  options.max_errors = 5;
  Loader loader(StorageMode::kTiles, {}, options);
  LoadBreakdown breakdown;
  auto rel = loader.Load(docs, "t", &breakdown).MoveValueOrDie();
  EXPECT_EQ(rel->num_rows(), 98u);
  EXPECT_EQ(breakdown.skipped_docs, 2u);
  EXPECT_EQ(breakdown.tuples, 98u);
  // Every surviving row is a well-formed document.
  for (size_t r = 0; r < rel->num_rows(); r++) {
    EXPECT_TRUE(rel->Jsonb(r).FindKey("id").has_value());
  }
}

TEST(LoaderTest, MaxErrorsBudgetIsGlobalAcrossPartitions) {
  // 4 partitions (tile_size 32 * partition_size 1 = 32 docs each), one bad
  // doc in each: a budget of 2 must fail the load even though no single
  // partition exceeds it.
  tiles::TileConfig config;
  config.tile_size = 32;
  config.partition_size = 1;
  auto docs = SimpleDocs(128);
  for (size_t p = 0; p < 4; p++) docs[p * 32 + 5] = "{bad";
  LoadOptions options;
  options.max_errors = 2;
  options.num_threads = 4;
  Loader strict(StorageMode::kTiles, config, options);
  EXPECT_FALSE(strict.Load(docs, "t").ok());

  options.max_errors = 4;
  Loader lenient(StorageMode::kTiles, config, options);
  LoadBreakdown breakdown;
  auto rel = lenient.Load(docs, "t", &breakdown).MoveValueOrDie();
  EXPECT_EQ(rel->num_rows(), 124u);
  EXPECT_EQ(breakdown.skipped_docs, 4u);
}

TEST(LoaderTest, MaxErrorsZeroKeepsFailFast) {
  auto docs = SimpleDocs(10);
  docs[3] = "{broken";
  Loader loader(StorageMode::kTiles, {}, LoadOptions{});
  EXPECT_FALSE(loader.Load(docs, "t").ok());
}

TEST(LoaderTest, DegradedLoadStillQueriesCleanly) {
  tiles::TileConfig config;
  config.tile_size = 16;
  config.partition_size = 2;
  auto docs = SimpleDocs(200);
  for (size_t i = 0; i < 200; i += 37) docs[i] = "corrupt!";
  LoadOptions options;
  options.max_errors = 100;
  options.num_threads = 4;
  Loader loader(StorageMode::kTiles, config, options);
  LoadBreakdown breakdown;
  auto rel = loader.Load(docs, "t", &breakdown).MoveValueOrDie();
  EXPECT_EQ(breakdown.skipped_docs, 6u);  // ceil(200/37)
  EXPECT_EQ(rel->num_rows(), 194u);
  ASSERT_FALSE(rel->tiles().empty());
  // Tiles cover exactly the surviving rows.
  size_t covered = 0;
  for (const auto& tile : rel->tiles()) covered += tile.row_count;
  EXPECT_EQ(covered, 194u);
}

#if JSONTILES_FAILPOINTS_AVAILABLE

TEST(LoaderTest, PartitionFailpointSurfacesStatus) {
  struct Cleanup {
    ~Cleanup() { failpoint::DisableAll(); }
  } cleanup;
  tiles::TileConfig config;
  config.tile_size = 32;
  config.partition_size = 1;
  auto docs = SimpleDocs(128);  // 4 partitions

  failpoint::Enable("loader.partition", failpoint::Spec::Nth(3));
  LoadOptions options;
  options.num_threads = 4;
  Loader loader(StorageMode::kTiles, config, options);
  auto result = loader.Load(docs, "t");
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInternal);

  // The same loader succeeds once the fault is gone.
  failpoint::DisableAll();
  EXPECT_TRUE(loader.Load(docs, "t").ok());
}

#endif  // JSONTILES_FAILPOINTS_AVAILABLE

TEST(LoaderTest, ArrayExtractionBuildsSideRelation) {
  std::vector<std::string> docs;
  Random rng(4);
  for (int i = 0; i < 200; i++) {
    std::string tags = "[";
    int n = static_cast<int>(rng.Uniform(6));
    for (int t = 0; t < n; t++) {
      if (t) tags += ",";
      tags += R"({"text":"tag)" + std::to_string(rng.Uniform(20)) + R"("})";
    }
    tags += "]";
    docs.push_back(R"({"id":)" + std::to_string(i) + R"(,"hashtags":)" + tags + "}");
  }
  tiles::TileConfig config;
  config.tile_size = 64;
  LoadOptions options;
  options.extract_arrays = true;
  options.array_min_avg_elements = 1.5;
  Loader loader(StorageMode::kTiles, config, options);
  auto rel = loader.Load(docs, "tweets").MoveValueOrDie();
  ASSERT_EQ(rel->side_relations().size(), 1u);
  const Relation* side = rel->FindSideRelation(Path({"hashtags"}));
  ASSERT_NE(side, nullptr);
  EXPECT_GT(side->num_rows(), 100u);
  // Side docs carry the parent row id and the element fields.
  auto doc = side->Jsonb(0);
  EXPECT_TRUE(doc.FindKey("_rowid").has_value());
  EXPECT_TRUE(doc.FindKey("text").has_value());
  // The side relation extracted its own columns.
  ASSERT_FALSE(side->tiles().empty());
  EXPECT_NE(side->tiles()[0].FindColumn(Path({"text"})), nullptr);
}

TEST(RelationTest, UpdateRowRewritesDocAndTile) {
  tiles::TileConfig config;
  config.tile_size = 32;
  Loader loader(StorageMode::kTiles, config);
  auto rel = loader.Load(SimpleDocs(64), "t").MoveValueOrDie();
  ASSERT_TRUE(rel->UpdateRow(5, R"({"id":999,"name":"upd","score":1})").ok());
  EXPECT_EQ(rel->Jsonb(5).FindKey("id")->GetInt(), 999);
  const tiles::Tile* tile = rel->TileForRow(5);
  const auto* col = tile->FindColumn(Path({"id"}));
  ASSERT_NE(col, nullptr);
  EXPECT_EQ(col->column.GetInt(5), 999);
  EXPECT_FALSE(rel->UpdateRow(1000, "{}").ok());
}

TEST(RelationTest, MassOutlierUpdatesTriggerRecompute) {
  tiles::TileConfig config;
  config.tile_size = 16;
  config.partition_size = 1;
  // 50% threshold: when the recompute fires (at the 9th outlier of 16), the
  // new document type is already frequent enough to extract.
  config.extraction_threshold = 0.5;
  Loader loader(StorageMode::kTiles, config);
  auto rel = loader.Load(SimpleDocs(16), "t").MoveValueOrDie();
  // Overwrite most rows with a new document type.
  for (size_t r = 0; r < 12; r++) {
    ASSERT_TRUE(
        rel->UpdateRow(r, R"({"kind":"new","v":)" + std::to_string(r) + "}").ok());
  }
  // The recompute should have kicked in: the tile now extracts the new keys.
  const tiles::Tile* tile = rel->TileForRow(0);
  EXPECT_NE(tile->FindColumn(Path({"kind"})), nullptr);
}

}  // namespace
}  // namespace jsontiles::storage
