// Fault injection for the sharded storage paths: shard.shard_load (one
// shard's load fails mid-way), shard.manifest_write (the save fails after
// the shard files are on disk) and shard.open. A failed SaveSharded must
// leave no partial manifest and no stray shard files; failing Statuses must
// name the shard that failed.

#include <cstdio>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "storage/shard.h"
#include "util/failpoint.h"

#if JSONTILES_FAILPOINTS_AVAILABLE

namespace jsontiles::storage {
namespace {

std::vector<std::string> Docs(size_t n) {
  std::vector<std::string> docs;
  for (size_t i = 0; i < n; i++) {
    docs.push_back(R"({"k":)" + std::to_string(i % 10) + R"(,"v":)" +
                   std::to_string(i) + "}");
  }
  return docs;
}

bool Exists(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return false;
  std::fclose(f);
  return true;
}

class ShardFailpointTest : public ::testing::Test {
 protected:
  void TearDown() override { failpoint::DisableAll(); }
};

TEST_F(ShardFailpointTest, ShardLoadFailureNamesTheShard) {
  failpoint::Enable("shard.shard_load", failpoint::Spec::Nth(3));
  LoadOptions load_options;
  load_options.num_threads = 4;
  ShardOptions shard_options;
  shard_options.shard_count = 4;
  auto result = ShardedRelation::Load(Docs(200), "faulty", StorageMode::kTiles,
                                      {}, load_options, shard_options);
  ASSERT_FALSE(result.ok());
  // The annotation names a shard index and the relation.
  EXPECT_NE(result.status().message().find("shard "), std::string::npos)
      << result.status().ToString();
  EXPECT_NE(result.status().message().find("'faulty'"), std::string::npos)
      << result.status().ToString();
  EXPECT_GE(failpoint::Hits("shard.shard_load"), 3u);
}

TEST_F(ShardFailpointTest, SerialShardLoadFailureAlsoClean) {
  failpoint::Enable("shard.shard_load", failpoint::Spec::Nth(2));
  ShardOptions shard_options;
  shard_options.shard_count = 3;
  auto result = ShardedRelation::Load(Docs(100), "faulty", StorageMode::kJsonb,
                                      {}, {}, shard_options);
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().message().find("shard 1"), std::string::npos)
      << result.status().ToString();
}

TEST_F(ShardFailpointTest, ManifestWriteFailureLeavesNoFiles) {
  ShardOptions shard_options;
  shard_options.shard_count = 3;
  auto sharded = ShardedRelation::Load(Docs(120), "atomic", StorageMode::kTiles,
                                       {}, {}, shard_options)
                     .MoveValueOrDie();
  std::string dir = ::testing::TempDir();
  failpoint::Enable("shard.manifest_write", failpoint::Spec::Always());
  Status st = SaveSharded(*sharded, dir);
  ASSERT_FALSE(st.ok());
  // No partial manifest and no stray shard files: the failed save cleaned
  // up everything it had written.
  EXPECT_FALSE(Exists(ShardManifestPath(dir, "atomic")));
  for (int s = 0; s < 3; s++) {
    EXPECT_FALSE(Exists(dir + "/atomic.shard-" + std::to_string(s) + ".jtrl"))
        << "shard file " << s << " left behind";
  }
  // After disabling the failpoint the same save succeeds and reopens.
  failpoint::DisableAll();
  ASSERT_TRUE(SaveSharded(*sharded, dir).ok());
  auto reopened = OpenSharded(ShardManifestPath(dir, "atomic"));
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  EXPECT_EQ(reopened.ValueOrDie()->num_rows(), 120u);
  for (int s = 0; s < 3; s++) {
    std::remove((dir + "/atomic.shard-" + std::to_string(s) + ".jtrl").c_str());
  }
  std::remove(ShardManifestPath(dir, "atomic").c_str());
}

TEST_F(ShardFailpointTest, OpenFailpointFailsCleanly) {
  ShardOptions shard_options;
  shard_options.shard_count = 2;
  auto sharded = ShardedRelation::Load(Docs(60), "op", StorageMode::kTiles, {},
                                       {}, shard_options)
                     .MoveValueOrDie();
  std::string dir = ::testing::TempDir();
  ASSERT_TRUE(SaveSharded(*sharded, dir).ok());
  failpoint::Enable("shard.open", failpoint::Spec::Always());
  EXPECT_FALSE(OpenSharded(ShardManifestPath(dir, "op")).ok());
  failpoint::DisableAll();
  EXPECT_TRUE(OpenSharded(ShardManifestPath(dir, "op")).ok());
  for (int s = 0; s < 2; s++) {
    std::remove((dir + "/op.shard-" + std::to_string(s) + ".jtrl").c_str());
  }
  std::remove(ShardManifestPath(dir, "op").c_str());
}

}  // namespace
}  // namespace jsontiles::storage

#endif  // JSONTILES_FAILPOINTS_AVAILABLE
