// LoadBreakdown aggregation under concurrent shard loads: per-phase CPU
// seconds sum across shards while total_wall_secs stays wall-clock, and the
// degraded-mode error budget (LoadOptions::max_errors) is a single global
// cap shared by all concurrently-loading shards — exercised at 4 shards x 4
// threads so the CI TSan job would catch a racy counter.

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "storage/loader.h"
#include "storage/shard.h"

namespace jsontiles::storage {
namespace {

/// `n` documents with `bad` malformed ones spread through the stream at
/// stride+1 spacing, so round-robin sharding lands them on rotating shards.
std::vector<std::string> DocsWithErrors(size_t n, size_t bad) {
  std::vector<std::string> docs(n);
  for (size_t i = 0; i < n; i++) {
    docs[i] = R"({"id":)" + std::to_string(i) + R"(,"v":)" +
              std::to_string(i % 50) + "}";
  }
  size_t stride = bad == 0 ? n : n / bad;
  for (size_t i = 0; i < bad; i++) {
    docs[i * (stride + 1) % n] = "{broken json " + std::to_string(i);
  }
  return docs;
}

TEST(ShardBreakdownTest, PhaseSecondsSumAcrossConcurrentShards) {
  auto docs = DocsWithErrors(2000, 0);
  tiles::TileConfig config;
  config.tile_size = 64;
  LoadOptions load_options;
  load_options.num_threads = 4;
  ShardOptions shard_options;
  shard_options.shard_count = 4;
  LoadBreakdown breakdown;
  auto sharded = ShardedRelation::Load(docs, "t", StorageMode::kTiles, config,
                                       load_options, shard_options, &breakdown)
                     .MoveValueOrDie();
  EXPECT_EQ(sharded->num_rows(), 2000u);
  EXPECT_EQ(breakdown.tuples, 2000u);
  EXPECT_EQ(breakdown.skipped_docs, 0u);
  // Phase seconds are CPU sums over all 4 shard loads; the wall clock covers
  // the concurrent span. All phases ran.
  EXPECT_GT(breakdown.jsonb_secs, 0.0);
  EXPECT_GT(breakdown.extract_secs, 0.0);
  EXPECT_GT(breakdown.total_wall_secs, 0.0);
}

TEST(ShardBreakdownTest, GlobalErrorCapExactBudgetSucceeds) {
  const size_t kErrors = 8;
  auto docs = DocsWithErrors(800, kErrors);
  LoadOptions load_options;
  load_options.num_threads = 4;
  load_options.max_errors = kErrors;
  ShardOptions shard_options;
  shard_options.shard_count = 4;
  LoadBreakdown breakdown;
  auto sharded =
      ShardedRelation::Load(docs, "t", StorageMode::kTiles, {}, load_options,
                            shard_options, &breakdown)
          .MoveValueOrDie();
  EXPECT_EQ(sharded->num_rows(), 800u - kErrors);
  // skipped_docs is global: the sum over all shards, exactly the bad count.
  EXPECT_EQ(breakdown.skipped_docs, kErrors);
}

TEST(ShardBreakdownTest, GlobalErrorCapOneUnderBudgetFails) {
  const size_t kErrors = 8;
  auto docs = DocsWithErrors(800, kErrors);
  LoadOptions load_options;
  load_options.num_threads = 4;
  load_options.max_errors = kErrors - 1;  // one malformed doc over budget
  ShardOptions shard_options;
  shard_options.shard_count = 4;
  auto result = ShardedRelation::Load(docs, "t", StorageMode::kTiles, {},
                                      load_options, shard_options);
  EXPECT_FALSE(result.ok());
}

TEST(ShardBreakdownTest, CapIsGlobalNotPerShard) {
  // 4 bad docs all land in shard 0 (indices divisible by 4, round-robin over
  // 4 shards). A per-shard budget of 3 would wrongly pass the other shards;
  // the global cap must fail the load.
  std::vector<std::string> docs;
  for (size_t i = 0; i < 400; i++) {
    if (i % 4 == 0 && i < 16) {
      docs.push_back("{bad");
    } else {
      docs.push_back(R"({"id":)" + std::to_string(i) + "}");
    }
  }
  LoadOptions load_options;
  load_options.num_threads = 4;
  load_options.max_errors = 3;
  ShardOptions shard_options;
  shard_options.shard_count = 4;
  EXPECT_FALSE(ShardedRelation::Load(docs, "t", StorageMode::kTiles, {},
                                     load_options, shard_options)
                   .ok());
  // With budget 4 the same load succeeds and reports all skips.
  load_options.max_errors = 4;
  LoadBreakdown breakdown;
  auto sharded = ShardedRelation::Load(docs, "t", StorageMode::kTiles, {},
                                       load_options, shard_options, &breakdown)
                     .MoveValueOrDie();
  EXPECT_EQ(breakdown.skipped_docs, 4u);
  EXPECT_EQ(sharded->num_rows(), 396u);
}

TEST(ShardBreakdownTest, SerialAndConcurrentLoadsAgreeOnCounts) {
  const size_t kErrors = 6;
  auto docs = DocsWithErrors(600, kErrors);
  for (size_t threads : {size_t{1}, size_t{4}}) {
    LoadOptions load_options;
    load_options.num_threads = threads;
    load_options.max_errors = 100;
    ShardOptions shard_options;
    shard_options.shard_count = 4;
    LoadBreakdown breakdown;
    auto sharded =
        ShardedRelation::Load(docs, "t", StorageMode::kTiles, {}, load_options,
                              shard_options, &breakdown)
            .MoveValueOrDie();
    EXPECT_EQ(breakdown.skipped_docs, kErrors) << "threads=" << threads;
    EXPECT_EQ(breakdown.tuples, 600u - kErrors) << "threads=" << threads;
    EXPECT_EQ(sharded->num_rows(), 600u - kErrors) << "threads=" << threads;
  }
}

}  // namespace
}  // namespace jsontiles::storage
