// Corrupt-manifest corpus: OpenSharded must return a clean Status — never
// crash, never read out of bounds (the CI ASan job runs this) — for every
// truncation prefix of the manifest, for single-bit flips, and for shard
// files that are missing, truncated or oversized.

#include <cstdio>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "storage/shard.h"
#include "util/random.h"

namespace jsontiles::storage {
namespace {

class ShardManifestTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // ctest runs each case as its own process, concurrently, against the
    // same TempDir — the relation (and so the file) name must be unique per
    // test or the corpus files race.
    name_ = std::string("corpus_") +
            ::testing::UnitTest::GetInstance()->current_test_info()->name();
    std::vector<std::string> docs;
    for (int i = 0; i < 90; i++) {
      docs.push_back(R"({"k":)" + std::to_string(i % 9) + R"(,"v":)" +
                     std::to_string(i) + "}");
    }
    ShardOptions options;
    options.shard_count = 3;
    options.routing = ShardRouting::kHashKey;
    options.routing_keys = {"k"};
    tiles::TileConfig config;
    config.tile_size = 16;
    auto sharded = ShardedRelation::Load(docs, name_, StorageMode::kTiles,
                                         config, {}, options)
                       .MoveValueOrDie();
    dir_ = ::testing::TempDir();
    ASSERT_TRUE(SaveSharded(*sharded, dir_).ok());
    manifest_path_ = ShardManifestPath(dir_, name_);
    manifest_ = ReadAll(manifest_path_);
    ASSERT_FALSE(manifest_.empty());
  }

  void TearDown() override {
    std::remove(manifest_path_.c_str());
    for (int s = 0; s < 3; s++) std::remove(ShardPath(s).c_str());
  }

  std::string ShardPath(int s) const {
    return dir_ + "/" + name_ + ".shard-" + std::to_string(s) + ".jtrl";
  }

  static std::vector<uint8_t> ReadAll(const std::string& path) {
    std::vector<uint8_t> bytes;
    std::FILE* f = std::fopen(path.c_str(), "rb");
    if (f == nullptr) return bytes;
    std::fseek(f, 0, SEEK_END);
    bytes.resize(static_cast<size_t>(std::ftell(f)));
    std::fseek(f, 0, SEEK_SET);
    if (std::fread(bytes.data(), 1, bytes.size(), f) != bytes.size()) {
      bytes.clear();
    }
    std::fclose(f);
    return bytes;
  }

  static void WriteAll(const std::string& path,
                       const std::vector<uint8_t>& bytes) {
    std::FILE* f = std::fopen(path.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    ASSERT_EQ(std::fwrite(bytes.data(), 1, bytes.size(), f), bytes.size());
    std::fclose(f);
  }

  void SaveShardOriginal(int s) {
    if (original_shards_[s].empty()) original_shards_[s] = ReadAll(ShardPath(s));
  }

  std::string name_;
  std::string dir_;
  std::string manifest_path_;
  std::vector<uint8_t> manifest_;
  std::vector<uint8_t> original_shards_[3];
};

TEST_F(ShardManifestTest, IntactManifestOpens) {
  auto opened = OpenSharded(manifest_path_);
  ASSERT_TRUE(opened.ok()) << opened.status().ToString();
  EXPECT_EQ(opened.ValueOrDie()->num_rows(), 90u);
  EXPECT_EQ(opened.ValueOrDie()->shard_count(), 3u);
  EXPECT_EQ(opened.ValueOrDie()->routing_kind(), RoutingValueKind::kIntOnly);
}

TEST_F(ShardManifestTest, EveryTruncationPrefixFailsCleanly) {
  for (size_t cut = 0; cut < manifest_.size(); cut++) {
    std::vector<uint8_t> truncated(manifest_.begin(),
                                   manifest_.begin() + cut);
    WriteAll(manifest_path_, truncated);
    auto result = OpenSharded(manifest_path_);
    EXPECT_FALSE(result.ok()) << "prefix of " << cut << " bytes parsed";
  }
}

TEST_F(ShardManifestTest, SingleBitFlipsNeverCrash) {
  // Every bit of the manifest, flipped one at a time. Most flips must fail
  // (structure, counts, magic); flips inside name bytes may legally parse —
  // they then reference missing shard files and fail there, or reopen under
  // a garbled display name. Either way: a clean Status or a valid object.
  for (size_t byte = 0; byte < manifest_.size(); byte++) {
    for (int bit = 0; bit < 8; bit++) {
      auto flipped = manifest_;
      flipped[byte] ^= static_cast<uint8_t>(1 << bit);
      WriteAll(manifest_path_, flipped);
      auto result = OpenSharded(manifest_path_);
      if (result.ok()) {
        EXPECT_EQ(result.ValueOrDie()->num_rows(), 90u);
      }
    }
  }
}

TEST_F(ShardManifestTest, BadMagicAndVersionRejected) {
  {
    auto bad = manifest_;
    bad[0] = 'X';
    WriteAll(manifest_path_, bad);
    auto result = OpenSharded(manifest_path_);
    ASSERT_FALSE(result.ok());
  }
  {
    auto bad = manifest_;
    bad[4] = 99;  // version byte follows the 4-byte magic
    WriteAll(manifest_path_, bad);
    EXPECT_FALSE(OpenSharded(manifest_path_).ok());
  }
}

TEST_F(ShardManifestTest, TrailingGarbageRejected) {
  auto bad = manifest_;
  bad.push_back(0x7F);
  WriteAll(manifest_path_, bad);
  EXPECT_FALSE(OpenSharded(manifest_path_).ok());
}

TEST_F(ShardManifestTest, MissingShardFileNamedInError) {
  SaveShardOriginal(1);
  std::remove(ShardPath(1).c_str());
  auto result = OpenSharded(manifest_path_);
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().message().find("shard 1"), std::string::npos)
      << result.status().ToString();
}

TEST_F(ShardManifestTest, TruncatedShardFileFails) {
  SaveShardOriginal(2);
  auto bytes = original_shards_[2];
  ASSERT_GT(bytes.size(), 10u);
  for (size_t cut : {size_t{0}, bytes.size() / 2, bytes.size() - 1}) {
    std::vector<uint8_t> truncated(bytes.begin(), bytes.begin() + cut);
    WriteAll(ShardPath(2), truncated);
    auto result = OpenSharded(manifest_path_);
    ASSERT_FALSE(result.ok());
    EXPECT_NE(result.status().message().find("shard 2"), std::string::npos);
  }
}

TEST_F(ShardManifestTest, OversizedShardFileFails) {
  SaveShardOriginal(0);
  auto bytes = original_shards_[0];
  bytes.push_back(0);
  WriteAll(ShardPath(0), bytes);
  auto result = OpenSharded(manifest_path_);
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().message().find("shard 0"), std::string::npos);
}

TEST_F(ShardManifestTest, ShardBitFlipsNeverCrash) {
  SaveShardOriginal(0);
  Random rng(23);
  for (int i = 0; i < 150; i++) {
    auto bytes = original_shards_[0];
    bytes[rng.Uniform(bytes.size())] ^=
        static_cast<uint8_t>(1 + rng.Uniform(255));
    WriteAll(ShardPath(0), bytes);
    auto result = OpenSharded(manifest_path_);
    // Flips in document payload bytes are data, not structure: success is
    // legal. Structural flips must fail cleanly. Never a crash.
    (void)result;
  }
}

TEST_F(ShardManifestTest, NonexistentManifest) {
  EXPECT_FALSE(OpenSharded("/nonexistent/dir/x.jtsm").ok());
}

}  // namespace
}  // namespace jsontiles::storage
