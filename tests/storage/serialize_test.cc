#include "storage/serialize.h"

#include <cstdio>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "opt/query.h"
#include "storage/loader.h"
#include "util/random.h"
#include "workload/twitter.h"

namespace jsontiles::storage {
namespace {

using exec::Access;
using exec::QueryContext;
using exec::ValueType;
using opt::QueryBlock;
using opt::TableRef;

std::vector<std::string> MixedDocs(size_t n) {
  Random rng(17);
  std::vector<std::string> docs;
  for (size_t i = 0; i < n; i++) {
    if (i % 3 == 0) {
      docs.push_back(R"({"a":)" + std::to_string(i) + R"(,"s":")" +
                     rng.NextString(3, 20) + R"(","d":"2021-0)" +
                     std::to_string(i % 9 + 1) + R"(-15","p":")" +
                     std::to_string(i % 90 + 10) + R"(.50"})");
    } else {
      docs.push_back(R"({"b":)" + std::to_string(i) + R"(,"f":)" +
                     std::to_string(0.5 + static_cast<double>(i)) +
                     R"(,"flag":)" + (i % 2 ? "true" : "false") + "}");
    }
  }
  return docs;
}

std::string RunProbeQuery(const Relation& rel) {
  QueryContext ctx;
  QueryBlock q;
  q.AddTable(TableRef::Rel(
      "t", &rel, exec::IsNotNull(Access("t", {"a"}, ValueType::kInt))));
  q.GroupBy({});
  q.Aggregate(exec::AggSpec::Sum(Access("t", {"a"}, ValueType::kInt)));
  q.Aggregate(exec::AggSpec::Min(Access("t", {"d"}, ValueType::kTimestamp)));
  q.Aggregate(exec::AggSpec::Sum(Access("t", {"p"}, ValueType::kFloat)));
  q.Aggregate(exec::AggSpec::CountStar());
  auto rows = q.Execute(ctx);
  std::string out;
  for (const auto& v : rows[0]) out += v.ToString() + "|";
  out += std::to_string(ctx.tiles_skipped);
  return out;
}

TEST(SerializeTest, RoundTripPreservesEverything) {
  tiles::TileConfig config;
  config.tile_size = 128;
  Loader loader(StorageMode::kTiles, config);
  auto rel = loader.Load(MixedDocs(1000), "mixed").MoveValueOrDie();

  std::vector<uint8_t> bytes;
  ASSERT_TRUE(SerializeRelation(*rel, &bytes).ok());
  auto back = DeserializeRelation(bytes.data(), bytes.size());
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  const Relation& restored = *back.ValueOrDie();

  EXPECT_EQ(restored.name(), "mixed");
  EXPECT_EQ(restored.mode(), StorageMode::kTiles);
  EXPECT_EQ(restored.num_rows(), rel->num_rows());
  EXPECT_EQ(restored.tiles().size(), rel->tiles().size());
  EXPECT_EQ(restored.config().tile_size, 128u);
  // Documents byte-identical.
  for (size_t row = 0; row < rel->num_rows(); row += 97) {
    EXPECT_EQ(rel->Jsonb(row).ToJsonText(), restored.Jsonb(row).ToJsonText());
  }
  // Columns, headers and flags identical per tile.
  for (size_t t = 0; t < rel->tiles().size(); t++) {
    const auto& a = rel->tiles()[t];
    const auto& b = restored.tiles()[t];
    ASSERT_EQ(a.columns.size(), b.columns.size());
    for (size_t c = 0; c < a.columns.size(); c++) {
      EXPECT_EQ(a.columns[c].path, b.columns[c].path);
      EXPECT_EQ(a.columns[c].storage_type, b.columns[c].storage_type);
      EXPECT_EQ(a.columns[c].is_timestamp, b.columns[c].is_timestamp);
      EXPECT_EQ(a.columns[c].column.null_count(), b.columns[c].column.null_count());
    }
  }
  // Statistics survive.
  EXPECT_EQ(restored.stats().total_tuples(), rel->stats().total_tuples());
  // Queries agree — including tile-skipping behavior (bloom filters).
  EXPECT_EQ(RunProbeQuery(*rel), RunProbeQuery(restored));
}

TEST(SerializeTest, AllStorageModes) {
  for (StorageMode mode : {StorageMode::kJsonText, StorageMode::kJsonb,
                           StorageMode::kSinew, StorageMode::kTiles}) {
    Loader loader(mode, {});
    auto rel = loader.Load(MixedDocs(200), "m").MoveValueOrDie();
    std::vector<uint8_t> bytes;
    ASSERT_TRUE(SerializeRelation(*rel, &bytes).ok());
    auto back = DeserializeRelation(bytes.data(), bytes.size());
    ASSERT_TRUE(back.ok()) << StorageModeName(mode);
    EXPECT_EQ(back.ValueOrDie()->num_rows(), 200u);
    if (mode == StorageMode::kJsonText) {
      EXPECT_EQ(back.ValueOrDie()->JsonText(7), rel->JsonText(7));
    }
  }
}

TEST(SerializeTest, SideRelationsIncluded) {
  workload::TwitterOptions options;
  options.num_tweets = 1500;
  auto docs = workload::GenerateTwitter(options);
  LoadOptions load_options;
  load_options.extract_arrays = true;
  load_options.array_min_avg_elements = 1.0;
  load_options.array_min_presence = 0.3;
  Loader loader(StorageMode::kTiles, {}, load_options);
  auto rel = loader.Load(docs, "tw").MoveValueOrDie();
  ASSERT_FALSE(rel->side_relations().empty());

  std::vector<uint8_t> bytes;
  ASSERT_TRUE(SerializeRelation(*rel, &bytes).ok());
  auto back = DeserializeRelation(bytes.data(), bytes.size());
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(back.ValueOrDie()->side_relations().size(),
            rel->side_relations().size());
  // The side query path still works on the restored relation.
  QueryContext ctx1, ctx2;
  auto a = workload::RunTwitterQuery(4, *rel, ctx1, true);
  auto b = workload::RunTwitterQuery(4, *back.ValueOrDie(), ctx2, true);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); i++) {
    EXPECT_EQ(a[i][1].int_value(), b[i][1].int_value());
  }
}

TEST(SerializeTest, FileRoundTrip) {
  Loader loader(StorageMode::kTiles, {});
  auto rel = loader.Load(MixedDocs(300), "f").MoveValueOrDie();
  std::string path = ::testing::TempDir() + "/jsontiles_serialize_test.bin";
  ASSERT_TRUE(SaveRelation(*rel, path).ok());
  auto back = LoadRelation(path);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(back.ValueOrDie()->num_rows(), 300u);
  std::remove(path.c_str());
}

TEST(SerializeTest, CorruptionRejected) {
  Loader loader(StorageMode::kTiles, {});
  auto rel = loader.Load(MixedDocs(100), "c").MoveValueOrDie();
  std::vector<uint8_t> bytes;
  ASSERT_TRUE(SerializeRelation(*rel, &bytes).ok());
  // Bad magic.
  {
    auto bad = bytes;
    bad[0] = 'X';
    EXPECT_FALSE(DeserializeRelation(bad.data(), bad.size()).ok());
  }
  // Truncations at many points must fail cleanly, never crash.
  for (size_t cut : {size_t{5}, bytes.size() / 4, bytes.size() / 2,
                     bytes.size() - 3}) {
    EXPECT_FALSE(DeserializeRelation(bytes.data(), cut).ok());
  }
  // Trailing garbage.
  {
    auto bad = bytes;
    bad.push_back(0xFF);
    EXPECT_FALSE(DeserializeRelation(bad.data(), bad.size()).ok());
  }
  // Random byte flips: either a clean error or a successful parse (flips in
  // document payload bytes are data, not structure) — never a crash.
  Random rng(5);
  for (int i = 0; i < 200; i++) {
    auto bad = bytes;
    bad[rng.Uniform(bad.size())] ^= static_cast<uint8_t>(1 + rng.Uniform(255));
    auto result = DeserializeRelation(bad.data(), bad.size());
    (void)result;
  }
  EXPECT_FALSE(LoadRelation("/nonexistent/path.bin").ok());
}

}  // namespace
}  // namespace jsontiles::storage
