// LoadOptions::ondemand through the loader and sharded loads: the on-demand
// parse path must leave every observable loader behavior unchanged — the
// loaded rows, the LoadBreakdown (skipped_docs in particular, under
// degraded-mode max_errors), the fail-fast contract, and the global skip cap
// across shards.

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "storage/loader.h"
#include "storage/relation.h"
#include "storage/serialize.h"
#include "storage/shard.h"
#include "util/failpoint.h"

namespace jsontiles::storage {
namespace {

// Docs with malformed records sprinkled at known positions (every 7th),
// including shapes that fail at different stages of the on-demand path:
// stage-1 (unterminated string), stage-2 (grammar), and plain truncation.
std::vector<std::string> MixedDocs(size_t n, size_t* bad_count) {
  std::vector<std::string> docs;
  *bad_count = 0;
  for (size_t i = 0; i < n; i++) {
    if (i % 7 == 3) {
      const char* bad[] = {R"({"id": )", R"({"id" 1})", "{\"s\": \"oops",
                           R"([1,,2])"};
      docs.push_back(bad[i % 4]);
      (*bad_count)++;
    } else {
      docs.push_back(R"({"id":)" + std::to_string(i) + R"(,"name":"user)" +
                     std::to_string(i % 13) + R"("})");
    }
  }
  return docs;
}

TEST(LoaderOndemandTest, SkippedDocsParityInDegradedMode) {
  size_t bad_count = 0;
  const auto docs = MixedDocs(200, &bad_count);
  ASSERT_GT(bad_count, 0u);

  for (size_t num_threads : {1u, 4u}) {
    LoadOptions base;
    base.num_threads = num_threads;
    base.max_errors = 1000;  // skip them all
    LoadBreakdown baseline_bd, ondemand_bd;

    auto baseline = Loader(StorageMode::kJsonb, {}, base)
                        .Load(docs, "t", &baseline_bd)
                        .MoveValueOrDie();
    LoadOptions od = base;
    od.ondemand = true;
    auto ondemand = Loader(StorageMode::kJsonb, {}, od)
                        .Load(docs, "t", &ondemand_bd)
                        .MoveValueOrDie();

    EXPECT_EQ(baseline_bd.skipped_docs, bad_count);
    EXPECT_EQ(ondemand_bd.skipped_docs, bad_count);
    EXPECT_EQ(baseline_bd.tuples, ondemand_bd.tuples);
    ASSERT_EQ(baseline->num_rows(), ondemand->num_rows());
    std::vector<uint8_t> a, b;
    ASSERT_TRUE(SerializeRelation(*baseline, &a).ok());
    ASSERT_TRUE(SerializeRelation(*ondemand, &b).ok());
    EXPECT_EQ(a, b) << "threads=" << num_threads;
  }
}

TEST(LoaderOndemandTest, FailFastParityWithoutMaxErrors) {
  size_t bad_count = 0;
  const auto docs = MixedDocs(50, &bad_count);
  LoadOptions od;
  od.ondemand = true;
  auto baseline = Loader(StorageMode::kJsonb, {}, {}).Load(docs, "t");
  auto ondemand = Loader(StorageMode::kJsonb, {}, od).Load(docs, "t");
  ASSERT_FALSE(baseline.ok());
  ASSERT_FALSE(ondemand.ok());
  EXPECT_EQ(baseline.status().code(), ondemand.status().code());
}

TEST(LoaderOndemandTest, MaxErrorsCapParity) {
  size_t bad_count = 0;
  const auto docs = MixedDocs(100, &bad_count);
  ASSERT_GT(bad_count, 2u);
  for (bool ondemand : {false, true}) {
    LoadOptions opts;
    opts.ondemand = ondemand;
    opts.max_errors = bad_count - 1;  // one too few: the load must fail
    EXPECT_FALSE(Loader(StorageMode::kJsonb, {}, opts).Load(docs, "t").ok())
        << "ondemand=" << ondemand;
    opts.max_errors = bad_count;  // exactly enough
    LoadBreakdown bd;
    auto rel = Loader(StorageMode::kJsonb, {}, opts).Load(docs, "t", &bd);
    ASSERT_TRUE(rel.ok()) << "ondemand=" << ondemand;
    EXPECT_EQ(bd.skipped_docs, bad_count);
  }
}

TEST(LoaderOndemandTest, ShardedSkipParityAndGlobalCap) {
  size_t bad_count = 0;
  const auto docs = MixedDocs(300, &bad_count);
  ShardOptions shard_options;
  shard_options.shard_count = 4;
  shard_options.routing = ShardRouting::kHashKey;
  shard_options.routing_keys = {"id"};

  LoadOptions base;
  base.num_threads = 4;
  base.max_errors = 1000;
  LoadBreakdown baseline_bd, ondemand_bd;
  auto baseline = ShardedRelation::Load(docs, "t", StorageMode::kJsonb, {},
                                        base, shard_options, &baseline_bd)
                      .MoveValueOrDie();
  LoadOptions od = base;
  od.ondemand = true;
  auto ondemand = ShardedRelation::Load(docs, "t", StorageMode::kJsonb, {}, od,
                                        shard_options, &ondemand_bd)
                      .MoveValueOrDie();

  // Same skips, same rows, same per-shard routing (identical JSONB implies
  // identical routing values).
  EXPECT_EQ(baseline_bd.skipped_docs, bad_count);
  EXPECT_EQ(ondemand_bd.skipped_docs, bad_count);
  EXPECT_EQ(baseline->num_rows(), ondemand->num_rows());
  ASSERT_EQ(baseline->shard_count(), ondemand->shard_count());
  for (size_t s = 0; s < baseline->shard_count(); s++) {
    std::vector<uint8_t> a, b;
    ASSERT_TRUE(SerializeRelation(baseline->shard(s), &a).ok());
    ASSERT_TRUE(SerializeRelation(ondemand->shard(s), &b).ok());
    EXPECT_EQ(a, b) << "shard " << s;
  }

  // The max_errors cap stays global across shards on the on-demand path.
  od.max_errors = bad_count - 1;
  EXPECT_FALSE(ShardedRelation::Load(docs, "t", StorageMode::kJsonb, {}, od,
                                     shard_options)
                   .ok());
}

#if JSONTILES_FAILPOINTS_AVAILABLE
TEST(LoaderOndemandTest, ForcedFallbackLoadsIdentically) {
  failpoint::DisableAll();
  size_t bad_count = 0;
  const auto docs = MixedDocs(60, &bad_count);
  LoadOptions od;
  od.ondemand = true;
  od.max_errors = 1000;
  LoadBreakdown normal_bd, forced_bd;
  auto normal = Loader(StorageMode::kJsonb, {}, od)
                    .Load(docs, "t", &normal_bd)
                    .MoveValueOrDie();
  failpoint::Enable("ondemand.force_fallback", failpoint::Spec::EveryK(2));
  auto forced = Loader(StorageMode::kJsonb, {}, od)
                    .Load(docs, "t", &forced_bd)
                    .MoveValueOrDie();
  failpoint::DisableAll();
  EXPECT_EQ(normal_bd.skipped_docs, forced_bd.skipped_docs);
  std::vector<uint8_t> a, b;
  ASSERT_TRUE(SerializeRelation(*normal, &a).ok());
  ASSERT_TRUE(SerializeRelation(*forced, &b).ok());
  EXPECT_EQ(a, b);
}
#endif  // JSONTILES_FAILPOINTS_AVAILABLE

}  // namespace
}  // namespace jsontiles::storage
