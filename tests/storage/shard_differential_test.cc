// Differential shard/single harness (DESIGN.md §10): every query result over
// a ShardedRelation must be BIT-identical to the same documents loaded
// unsharded — across shard counts, thread counts and storage modes, for the
// Figure-14 workloads (TPC-H and Yelp), through SaveSharded/OpenSharded
// round-trips, and under a spill-inducing memory limit. Canonicalization is
// Value::ToString per cell, which renders floats exactly (shortest
// round-trip), so two equal strings mean equal bits.

#include <cstdio>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "sql/sql_parser.h"
#include "storage/loader.h"
#include "storage/shard.h"
#include "workload/tpch.h"
#include "workload/tpch_queries.h"
#include "workload/yelp.h"

namespace jsontiles::storage {
namespace {

using exec::ExecOptions;
using exec::QueryContext;
using exec::RowSet;

std::string Canonical(const RowSet& rows) {
  std::string out;
  for (const auto& row : rows) {
    for (const auto& v : row) {
      out += v.is_null() ? "∅" : v.ToString();
      out += "|";
    }
    out += "\n";
  }
  return out;
}

const workload::TpchData& Tpch() {
  static const workload::TpchData data = [] {
    workload::TpchOptions options;
    options.scale_factor = 0.004;
    return workload::GenerateTpch(options);
  }();
  return data;
}

const std::vector<std::string>& Yelp() {
  static const std::vector<std::string> docs = [] {
    workload::YelpOptions options;
    options.num_business = 50;
    return workload::GenerateYelp(options);
  }();
  return docs;
}

tiles::TileConfig SmallTiles() {
  tiles::TileConfig config;
  config.tile_size = 128;
  return config;
}

/// Unsharded baseline answers, computed once per (workload, mode).
std::string TpchBaseline(StorageMode mode, int query) {
  Loader loader(mode, SmallTiles());
  static std::map<StorageMode, std::unique_ptr<Relation>> cache;
  auto& rel = cache[mode];
  if (rel == nullptr) rel = loader.Load(Tpch().combined, "tpch").MoveValueOrDie();
  QueryContext ctx;
  return Canonical(workload::RunTpchQuery(query, *rel, ctx));
}

std::string YelpBaseline(StorageMode mode, int query) {
  Loader loader(mode, SmallTiles());
  static std::map<StorageMode, std::unique_ptr<Relation>> cache;
  auto& rel = cache[mode];
  if (rel == nullptr) rel = loader.Load(Yelp(), "yelp").MoveValueOrDie();
  QueryContext ctx;
  return Canonical(workload::RunYelpQuery(query, *rel, ctx));
}

constexpr size_t kShardCounts[] = {1, 2, 3, 8};
constexpr size_t kThreadCounts[] = {1, 4};

// The full Fig-14 sweep on the paper's primary mode: every TPC-H query and
// every Yelp query, every shard/thread combination, results bit-identical.
TEST(ShardDifferentialTest, TilesFig14Workload) {
  for (size_t shards : kShardCounts) {
    for (size_t threads : kThreadCounts) {
      LoadOptions load_options;
      load_options.num_threads = threads;
      ShardOptions shard_options;
      shard_options.shard_count = shards;
      auto tpch = ShardedRelation::Load(Tpch().combined, "tpch",
                                        StorageMode::kTiles, SmallTiles(),
                                        load_options, shard_options)
                      .MoveValueOrDie();
      auto yelp = ShardedRelation::Load(Yelp(), "yelp", StorageMode::kTiles,
                                        SmallTiles(), load_options,
                                        shard_options)
                      .MoveValueOrDie();
      ExecOptions exec_options;
      exec_options.num_threads = threads;
      for (int q = 1; q <= 22; q++) {
        QueryContext ctx(exec_options);
        EXPECT_EQ(Canonical(workload::RunTpchQuery(q, *tpch, ctx)),
                  TpchBaseline(StorageMode::kTiles, q))
            << "TPC-H Q" << q << " shards=" << shards
            << " threads=" << threads;
      }
      for (int q = 1; q <= 5; q++) {
        QueryContext ctx(exec_options);
        EXPECT_EQ(Canonical(workload::RunYelpQuery(q, *yelp, ctx)),
                  YelpBaseline(StorageMode::kTiles, q))
            << "Yelp Y" << q << " shards=" << shards
            << " threads=" << threads;
      }
    }
  }
}

// All storage modes, a representative query subset (scan-heavy, join-heavy,
// aggregation-heavy, float-summing) — same sweep, same guarantee.
TEST(ShardDifferentialTest, AllStorageModes) {
  const int tpch_queries[] = {1, 3, 6, 12, 14, 18};
  for (StorageMode mode : {StorageMode::kJsonText, StorageMode::kJsonb,
                           StorageMode::kSinew, StorageMode::kTiles}) {
    for (size_t shards : kShardCounts) {
      for (size_t threads : kThreadCounts) {
        LoadOptions load_options;
        load_options.num_threads = threads;
        ShardOptions shard_options;
        shard_options.shard_count = shards;
        auto sharded = ShardedRelation::Load(Tpch().combined, "tpch", mode,
                                             SmallTiles(), load_options,
                                             shard_options)
                           .MoveValueOrDie();
        ExecOptions exec_options;
        exec_options.num_threads = threads;
        for (int q : tpch_queries) {
          QueryContext ctx(exec_options);
          EXPECT_EQ(Canonical(workload::RunTpchQuery(q, *sharded, ctx)),
                    TpchBaseline(mode, q))
              << StorageModeName(mode) << " Q" << q << " shards=" << shards
              << " threads=" << threads;
        }
      }
    }
  }
}

// Hash routing (the pruning-enabled layout) must not change any answer.
TEST(ShardDifferentialTest, HashRoutingSameAnswers) {
  LoadOptions load_options;
  load_options.num_threads = 4;
  ShardOptions shard_options;
  shard_options.shard_count = 8;
  shard_options.routing = ShardRouting::kHashKey;
  shard_options.routing_keys = {"l_orderkey"};
  auto sharded = ShardedRelation::Load(Tpch().combined, "tpch",
                                       StorageMode::kTiles, SmallTiles(),
                                       load_options, shard_options)
                     .MoveValueOrDie();
  ExecOptions exec_options;
  exec_options.num_threads = 4;
  for (int q : {1, 3, 6, 12, 18}) {
    QueryContext ctx(exec_options);
    EXPECT_EQ(Canonical(workload::RunTpchQuery(q, *sharded, ctx)),
              TpchBaseline(StorageMode::kTiles, q))
        << "Q" << q;
  }
}

// SaveSharded -> OpenSharded: the reopened relation answers identically
// (shard statistics are recomputed, not persisted).
TEST(ShardDifferentialTest, PersistenceRoundTrip) {
  LoadOptions load_options;
  load_options.num_threads = 4;
  ShardOptions shard_options;
  shard_options.shard_count = 3;
  auto sharded = ShardedRelation::Load(Tpch().combined, "tpch",
                                       StorageMode::kTiles, SmallTiles(),
                                       load_options, shard_options)
                     .MoveValueOrDie();
  std::string dir = ::testing::TempDir();
  ASSERT_TRUE(SaveSharded(*sharded, dir).ok());
  auto reopened = OpenSharded(ShardManifestPath(dir, "tpch")).MoveValueOrDie();
  EXPECT_EQ(reopened->shard_count(), 3u);
  EXPECT_EQ(reopened->num_rows(), sharded->num_rows());
  for (int q : {1, 3, 6, 14, 18}) {
    QueryContext ctx;
    EXPECT_EQ(Canonical(workload::RunTpchQuery(q, *reopened, ctx)),
              TpchBaseline(StorageMode::kTiles, q))
        << "Q" << q;
  }
  // Cleanup.
  for (size_t s = 0; s < 3; s++) {
    std::remove((dir + "/tpch.shard-" + std::to_string(s) + ".jtrl").c_str());
  }
  std::remove(ShardManifestPath(dir, "tpch").c_str());
}

// A spill-inducing memory limit composes with sharded scans: still
// bit-identical (the memory governor from the spill PR).
TEST(ShardDifferentialTest, SpillingKeepsBitIdentity) {
  LoadOptions load_options;
  load_options.num_threads = 4;
  ShardOptions shard_options;
  shard_options.shard_count = 4;
  auto sharded = ShardedRelation::Load(Tpch().combined, "tpch",
                                       StorageMode::kTiles, SmallTiles(),
                                       load_options, shard_options)
                     .MoveValueOrDie();
  ExecOptions exec_options;
  exec_options.mem_limit_bytes = 1 << 18;  // 256 KiB: forces operator spills
  for (int q : {1, 3, 18}) {
    QueryContext ctx(exec_options);
    EXPECT_EQ(Canonical(workload::RunTpchQuery(q, *sharded, ctx)),
              TpchBaseline(StorageMode::kTiles, q))
        << "Q" << q;
  }
}

// EXPLAIN ANALYZE row counts match between a sharded and a plain catalog
// table (per-operator rows in/out are the same; only timings may differ).
// Tile skipping is disabled for the comparison: scans emit at tile
// granularity, and the 3-shard round-robin layout draws different tile
// boundaries than the single relation, so skip-dependent intermediate
// counts are legitimately layout-dependent (final results stay identical —
// every other test in this file proves that with skipping on).
TEST(ShardDifferentialTest, ExplainAnalyzeRowCountsMatch) {
  Loader loader(StorageMode::kTiles, SmallTiles());
  auto plain = loader.Load(Tpch().combined, "tpch").MoveValueOrDie();
  ShardOptions shard_options;
  shard_options.shard_count = 3;
  auto sharded = ShardedRelation::Load(Tpch().combined, "tpch",
                                       StorageMode::kTiles, SmallTiles(), {},
                                       shard_options)
                     .MoveValueOrDie();

  const char* statements[] = {
      "EXPLAIN ANALYZE SELECT l->>'l_returnflag', "
      "SUM(l->>'l_quantity'::BigInt), COUNT(*) FROM tpch l "
      "WHERE l->>'l_orderkey'::BigInt IS NOT NULL "
      "GROUP BY l->>'l_returnflag' ORDER BY 1",
      "EXPLAIN ANALYZE SELECT COUNT(*) FROM tpch o, tpch c "
      "WHERE o->>'o_custkey'::BigInt = c->>'c_custkey'::BigInt"};

  auto row_counts = [](const sql::SqlResult& result) {
    // Keep only the "rows in=…"/"rows out=…" fragments of the plan text.
    std::string counts;
    for (const auto& row : result.rows) {
      std::string line(row[0].s);
      size_t pos = 0;
      while ((pos = line.find("rows ", pos)) != std::string::npos) {
        size_t end = line.find_first_of(",)", pos);
        counts += line.substr(pos, end - pos) + ";";
        pos = end == std::string::npos ? line.size() : end;
      }
    }
    return counts;
  };

  for (const char* statement : statements) {
    sql::SqlCatalog plain_catalog;
    plain_catalog.tables["tpch"] = plain.get();
    sql::SqlCatalog sharded_catalog;
    sharded_catalog.sharded_tables["tpch"] = sharded.get();
    ExecOptions no_skip;
    no_skip.enable_tile_skipping = false;
    QueryContext ctx1(no_skip), ctx2(no_skip);
    auto a = sql::ExecuteSql(statement, plain_catalog, ctx1);
    auto b = sql::ExecuteSql(statement, sharded_catalog, ctx2);
    ASSERT_TRUE(a.ok()) << a.status().ToString();
    ASSERT_TRUE(b.ok()) << b.status().ToString();
    EXPECT_EQ(row_counts(a.ValueOrDie()), row_counts(b.ValueOrDie()))
        << statement;
  }
}

}  // namespace
}  // namespace jsontiles::storage
