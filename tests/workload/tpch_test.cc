// Integration tests: TPC-H generation and all 22 queries across storage
// modes. The central property — the one the paper's methodology rests on —
// is that every storage strategy returns identical results.

#include "workload/tpch.h"

#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "storage/loader.h"
#include "workload/tpch_queries.h"

namespace jsontiles::workload {
namespace {

using exec::QueryContext;
using exec::RowSet;
using storage::Loader;
using storage::Relation;
using storage::StorageMode;

class TpchFixture : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    TpchOptions options;
    options.scale_factor = 0.005;  // ~7500 orders, ~30000 lineitems
    data_ = new TpchData(GenerateTpch(options));
    tiles::TileConfig config;
    config.tile_size = 512;
    config.partition_size = 8;
    for (StorageMode mode : {StorageMode::kJsonb, StorageMode::kSinew,
                             StorageMode::kTiles}) {
      Loader loader(mode, config);
      relations_[static_cast<int>(mode)] =
          loader.Load(data_->combined, "tpch").MoveValueOrDie().release();
    }
  }
  static void TearDownTestSuite() {
    delete data_;
    for (auto*& rel : relations_) {
      delete rel;
      rel = nullptr;
    }
  }

  static const Relation& Rel(StorageMode mode) {
    return *relations_[static_cast<int>(mode)];
  }

  static TpchData* data_;
  static Relation* relations_[4];
};

TpchData* TpchFixture::data_ = nullptr;
Relation* TpchFixture::relations_[4] = {nullptr, nullptr, nullptr, nullptr};

TEST_F(TpchFixture, GeneratorShapes) {
  EXPECT_EQ(data_->num_region, 5u);
  EXPECT_EQ(data_->num_nation, 25u);
  EXPECT_GT(data_->num_lineitem, data_->num_orders);
  EXPECT_EQ(data_->combined.size(),
            data_->num_region + data_->num_nation + data_->num_supplier +
                data_->num_customer + data_->num_part + data_->num_partsupp +
                data_->num_orders + data_->num_lineitem);
  EXPECT_EQ(data_->lineitem_only.size(), data_->num_lineitem);
}

// Materialize rows for comparison. Floating-point aggregates are rounded to
// 8 significant digits: different storage modes sum in different (tile /
// join) orders, so the low bits legitimately differ.
std::vector<std::vector<std::string>> Materialize(const RowSet& rows) {
  std::vector<std::vector<std::string>> out;
  for (const auto& row : rows) {
    std::vector<std::string> r;
    for (const auto& v : row) {
      if (v.type == exec::ValueType::kFloat) {
        char buf[40];
        std::snprintf(buf, sizeof(buf), "%.6g", v.float_value());
        r.emplace_back(buf);
      } else {
        r.push_back(v.ToString());
      }
    }
    out.push_back(std::move(r));
  }
  return out;
}

class TpchQueryTest : public TpchFixture,
                      public ::testing::WithParamInterface<int> {};

TEST_P(TpchQueryTest, AllModesAgree) {
  const int number = GetParam();
  std::vector<std::vector<std::string>> reference;
  bool first = true;
  for (StorageMode mode : {StorageMode::kJsonb, StorageMode::kSinew,
                           StorageMode::kTiles}) {
    QueryContext ctx;
    RowSet rows = RunTpchQuery(number, Rel(mode), ctx);
    auto materialized = Materialize(rows);
    if (first) {
      reference = std::move(materialized);
      first = false;
      continue;
    }
    EXPECT_EQ(materialized, reference)
        << "Q" << number << " mismatch on " << StorageModeName(mode);
  }
  // Basic sanity: the benchmark queries should not be trivially empty.
  // (Q2's triple filter and Q21's triple correlation can legitimately come
  // up empty at this tiny test scale.)
  bool may_be_empty = number == 2 || number == 7 || number == 11 ||
                      number == 18 || number == 21;
  if (!may_be_empty) {
    EXPECT_FALSE(reference.empty()) << "Q" << number;
  }
}

INSTANTIATE_TEST_SUITE_P(AllQueries, TpchQueryTest,
                         ::testing::Range(1, 23),
                         [](const ::testing::TestParamInfo<int>& info) {
                           return "Q" + std::to_string(info.param);
                         });

TEST_F(TpchFixture, Q1AggregatesAreConsistent) {
  QueryContext ctx;
  RowSet rows = RunTpchQuery(1, Rel(StorageMode::kTiles), ctx);
  // Flags: A/F, N/F, N/O, R/F -> usually 4 groups.
  EXPECT_GE(rows.size(), 3u);
  for (const auto& row : rows) {
    // avg_qty = sum_qty / count.
    double sum_qty = row[2].AsDouble();
    double count = row[9].AsDouble();
    double avg_qty = row[6].AsDouble();
    EXPECT_NEAR(avg_qty, sum_qty / count, 1e-9);
    // Charge >= discounted price >= base price * (1 - max discount).
    EXPECT_GE(row[5].AsDouble(), row[4].AsDouble());
  }
}

TEST_F(TpchFixture, ShuffledDataSameResults) {
  TpchOptions options;
  options.scale_factor = 0.005;
  options.shuffle = true;
  TpchData shuffled = GenerateTpch(options);
  tiles::TileConfig config;
  config.tile_size = 512;
  config.partition_size = 8;
  Loader loader(StorageMode::kTiles, config);
  auto rel = loader.Load(shuffled.combined, "tpch_shuffled").MoveValueOrDie();

  for (int q : {1, 3, 6, 12}) {
    QueryContext ctx1, ctx2;
    auto a = Materialize(RunTpchQuery(q, Rel(StorageMode::kTiles), ctx1));
    auto b = Materialize(RunTpchQuery(q, *rel, ctx2));
    EXPECT_EQ(a, b) << "Q" << q << " differs between sorted and shuffled input";
  }
}

TEST_F(TpchFixture, TileSkippingFiresOnCombinedData) {
  QueryContext ctx;
  RunTpchQuery(6, Rel(StorageMode::kTiles), ctx);
  // Q6 touches only lineitem; order/customer/part tiles should be skipped.
  EXPECT_GT(ctx.tiles_skipped, 0u);
}

}  // namespace
}  // namespace jsontiles::workload
