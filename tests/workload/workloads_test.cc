// Integration tests for the Yelp / Twitter / HackerNews / corpus workloads.

#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "json/jsonb.h"
#include "storage/loader.h"
#include "workload/hackernews.h"
#include "workload/simdjson_corpus.h"
#include "workload/twitter.h"
#include "workload/yelp.h"

namespace jsontiles::workload {
namespace {

using exec::QueryContext;
using exec::RowSet;
using storage::LoadOptions;
using storage::Loader;
using storage::Relation;
using storage::StorageMode;

std::vector<std::vector<std::string>> Materialize(const RowSet& rows) {
  std::vector<std::vector<std::string>> out;
  for (const auto& row : rows) {
    std::vector<std::string> r;
    for (const auto& v : row) {
      if (v.type == exec::ValueType::kFloat) {
        char buf[40];
        std::snprintf(buf, sizeof(buf), "%.6g", v.float_value());
        r.emplace_back(buf);
      } else {
        r.push_back(v.ToString());
      }
    }
    out.push_back(std::move(r));
  }
  return out;
}

TEST(YelpWorkloadTest, AllDocumentsParseAndQueriesAgree) {
  YelpOptions options;
  options.num_business = 60;
  auto docs = GenerateYelp(options);
  EXPECT_GT(docs.size(), 60u * 50);
  for (const auto& d : docs) {
    ASSERT_TRUE(json::JsonbFromText(d).ok()) << d;
  }
  tiles::TileConfig config;
  config.tile_size = 256;
  std::vector<std::vector<std::vector<std::string>>> results;
  for (StorageMode mode : {StorageMode::kJsonb, StorageMode::kSinew,
                           StorageMode::kTiles}) {
    Loader loader(mode, config);
    auto rel = loader.Load(docs, "yelp").MoveValueOrDie();
    std::vector<std::vector<std::string>> per_mode;
    for (int q = 1; q <= 5; q++) {
      QueryContext ctx;
      RowSet rows = RunYelpQuery(q, *rel, ctx);
      EXPECT_FALSE(rows.empty()) << "Y" << q;
      for (auto& r : Materialize(rows)) per_mode.push_back(std::move(r));
      per_mode.push_back({"--- end of Y" + std::to_string(q)});
    }
    results.push_back(std::move(per_mode));
  }
  EXPECT_EQ(results[0], results[1]);
  EXPECT_EQ(results[0], results[2]);
}

TEST(TwitterWorkloadTest, QueriesAgreeAcrossModesAndStarVariant) {
  TwitterOptions options;
  options.num_tweets = 4000;
  auto docs = GenerateTwitter(options);
  for (const auto& d : docs) {
    ASSERT_TRUE(json::JsonbFromText(d).ok()) << d;
  }
  tiles::TileConfig config;
  config.tile_size = 512;

  // Plain modes.
  std::vector<std::vector<std::vector<std::string>>> results;
  for (StorageMode mode : {StorageMode::kJsonb, StorageMode::kTiles}) {
    Loader loader(mode, config);
    auto rel = loader.Load(docs, "twitter").MoveValueOrDie();
    std::vector<std::vector<std::string>> per_mode;
    for (int q = 1; q <= 5; q++) {
      QueryContext ctx;
      RowSet rows = RunTwitterQuery(q, *rel, ctx);
      EXPECT_FALSE(rows.empty()) << "T" << q;
      for (auto& r : Materialize(rows)) per_mode.push_back(std::move(r));
    }
    results.push_back(std::move(per_mode));
  }
  EXPECT_EQ(results[0], results[1]);

  // Tiles-*: array extraction changes the plan for T3/T4, not the answer.
  LoadOptions star_options;
  star_options.extract_arrays = true;
  star_options.array_min_avg_elements = 1.0;
  star_options.array_min_presence = 0.3;
  Loader star_loader(StorageMode::kTiles, config, star_options);
  auto star_rel = star_loader.Load(docs, "twitter").MoveValueOrDie();
  EXPECT_FALSE(star_rel->side_relations().empty());
  std::vector<std::vector<std::string>> star_results;
  for (int q = 1; q <= 5; q++) {
    QueryContext ctx;
    RowSet rows = RunTwitterQuery(q, *star_rel, ctx, /*use_array_extraction=*/true);
    for (auto& r : Materialize(rows)) star_results.push_back(std::move(r));
  }
  EXPECT_EQ(star_results, results[0]);
}

TEST(TwitterWorkloadTest, ChangingSchemaVariant) {
  TwitterOptions options;
  options.num_tweets = 3000;
  options.changing_schema = true;
  auto docs = GenerateTwitter(options);
  // Early tweets lack retweet_count; late ones have it.
  size_t with_rt = 0;
  for (const auto& d : docs) {
    if (d.find("retweet_count") != std::string::npos) with_rt++;
  }
  EXPECT_GT(with_rt, docs.size() / 4);
  EXPECT_LT(with_rt, docs.size());

  tiles::TileConfig config;
  config.tile_size = 256;
  Loader loader(StorageMode::kTiles, config);
  auto rel = loader.Load(docs, "changing").MoveValueOrDie();
  for (int q : {1, 2, 5}) {
    QueryContext ctx;
    EXPECT_FALSE(RunTwitterQuery(q, *rel, ctx).empty()) << "T" << q;
  }
}

TEST(HackerNewsWorkloadTest, GeneratesAndExtractionImprovesWithReordering) {
  HackerNewsOptions options;
  options.num_items = 4096;
  auto docs = GenerateHackerNews(options);
  ASSERT_EQ(docs.size(), 4096u);
  for (const auto& d : docs) {
    ASSERT_TRUE(json::JsonbFromText(d).ok()) << d;
  }
  tiles::TileConfig with, without;
  with.tile_size = without.tile_size = 256;
  with.partition_size = 8;
  without.partition_size = 8;
  without.enable_reordering = false;
  auto count_columns = [&](const tiles::TileConfig& config) {
    Loader loader(StorageMode::kTiles, config);
    auto rel = loader.Load(docs, "hn").MoveValueOrDie();
    size_t columns = 0;
    for (const auto& tile : rel->tiles()) columns += tile.columns.size();
    return columns;
  };
  size_t with_reorder = count_columns(with);
  size_t without_reorder = count_columns(without);
  // Round-robin types: reordering must unlock strictly more extraction.
  EXPECT_GT(with_reorder, without_reorder);
}

TEST(SimdJsonCorpusTest, AllFilesAreValidJson) {
  auto files = GenerateSimdJsonCorpus();
  ASSERT_EQ(files.size(), 8u);
  for (const auto& f : files) {
    auto jsonb = json::JsonbFromText(f.json);
    ASSERT_TRUE(jsonb.ok()) << f.name;
    EXPECT_GT(f.json.size(), 100000u) << f.name;  // meaningfully sized
  }
}

}  // namespace
}  // namespace jsontiles::workload
