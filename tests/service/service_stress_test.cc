// Cancellation/race stress: seeded client threads hammer the service with
// real queries while a chaos thread cancels groups, exhausts quotas, and
// tears groups down mid-flight. Pass criteria: no deadlock (the test
// finishes), no budget leak (the global MemoryBudget and the spill-disk
// governor return to zero), and every query ends in a clean, expected
// Status. Run under TSan in CI (the dedicated service-stress leg).

#include <atomic>
#include <chrono>
#include <iterator>
#include <memory>
#include <mutex>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "service/query_service.h"
#include "storage/loader.h"
#include "workload/tpch.h"
#include "workload/tpch_queries.h"

namespace jsontiles::service {
namespace {

using exec::QueryContext;

const storage::Relation& StressRelation() {
  static std::unique_ptr<storage::Relation> rel = [] {
    workload::TpchOptions options;
    options.scale_factor = 0.002;
    auto data = workload::GenerateTpch(options);
    tiles::TileConfig tiles;
    tiles.tile_size = 128;
    storage::Loader loader(storage::StorageMode::kTiles, tiles);
    return loader.Load(data.combined, "tpch").MoveValueOrDie();
  }();
  return *rel;
}

bool CleanStatus(const Status& st) {
  switch (st.code()) {
    case StatusCode::kOk:
    case StatusCode::kCancelled:          // chaos cancel / drop / runaway
    case StatusCode::kResourceExhausted:  // queue, quota, spill-disk refusal
    case StatusCode::kNotFound:           // group dropped before admission
      return true;
    default:
      return false;
  }
}

TEST(ServiceStressTest, ChaosCancellationNoDeadlockNoLeak) {
  StressRelation();  // materialize before the clock starts

  ServiceConfig config;
  config.total_mem_bytes = 16 << 20;
  config.spill_disk_bytes = 8 << 20;  // small enough to refuse under load
  config.monitor_period_ms = 2;
  QueryService service(config);

  const std::vector<std::string> group_names = {"alpha", "beta"};
  auto make_group = [&](const std::string& name) {
    ResourceGroupConfig group;
    group.concurrency = 2;
    group.max_queue = 8;
    group.queue_timeout_ms = 30000;
    group.mem_quota_bytes = 1 << 20;  // tight: quota-induced spill under load
    group.runaway_wall_ms = 2000;
    return service.CreateGroup(name, group);
  };
  for (const auto& name : group_names) ASSERT_TRUE(make_group(name).ok());

  constexpr size_t kClients = 4;
  constexpr int kQueriesPerClient = 24;
  const int stress_queries[] = {1, 3, 6, 18};  // scan, join, filter, big join

  std::atomic<bool> chaos_stop{false};
  std::atomic<int> completed{0};
  std::vector<std::string> dirty;
  std::mutex dirty_mu;

  std::vector<std::thread> clients;
  for (size_t c = 0; c < kClients; c++) {
    clients.emplace_back([&, c] {
      std::mt19937 rng(1234 + static_cast<unsigned>(c));  // seeded: replayable
      for (int i = 0; i < kQueriesPerClient; i++) {
        const std::string& group = group_names[rng() % group_names.size()];
        const int q = stress_queries[rng() % std::size(stress_queries)];
        Status st = service.Submit(group, {}, [&](QueryContext& ctx) {
          workload::RunTpchQuery(q, StressRelation(), ctx);
          return Status::OK();
        });
        if (!CleanStatus(st)) {
          std::lock_guard<std::mutex> lock(dirty_mu);
          dirty.push_back("client " + std::to_string(c) + " Q" +
                          std::to_string(q) + ": " + st.ToString());
        }
        completed++;
      }
    });
  }

  std::thread chaos([&] {
    std::mt19937 rng(99);  // seeded: the interleaving pressure is replayable
    while (!chaos_stop.load()) {
      const std::string& group = group_names[rng() % group_names.size()];
      switch (rng() % 3) {
        case 0:
          service.CancelGroup(group,
                              Status::Cancelled("chaos: administrative kill"));
          break;
        case 1: {
          // Tear the group down mid-flight and recreate it, so clients see
          // NotFound or Cancelled but never a crash or a leak.
          if (service.DropGroup(group).ok()) {
            ASSERT_TRUE(make_group(group).ok());
          }
          break;
        }
        case 2: {
          // Exhaust the group quota for a moment: concurrent admissions and
          // operator charges must degrade (spill / clamp / reject), not leak.
          auto admitted = service.Admit(group, {});
          if (admitted.ok()) {
            Admission a = admitted.MoveValueOrDie();
            QueryContext ctx(a.options());
            a.Attach(&ctx);
            if (ctx.budget()->TryCharge(1 << 20)) {
              std::this_thread::sleep_for(std::chrono::milliseconds(2));
              ctx.budget()->Release(1 << 20);
            }
            a.Release();
          }
          break;
        }
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(3));
    }
  });

  for (auto& c : clients) c.join();
  chaos_stop = true;
  chaos.join();

  EXPECT_EQ(completed.load(), static_cast<int>(kClients * kQueriesPerClient));
  for (const auto& d : dirty) ADD_FAILURE() << d;

  // No budget leak: every charge, reserve, and spill block was returned.
  EXPECT_EQ(service.global_budget()->used(), 0u) << "memory budget leak";
  EXPECT_EQ(service.disk_budget()->used(), 0u) << "spill-disk budget leak";
  for (const auto& name : group_names) {
    auto snap = service.Snapshot(name);
    if (!snap.ok()) continue;  // dropped in the last chaos action
    EXPECT_EQ(snap.ValueOrDie().running, 0u);
    EXPECT_EQ(snap.ValueOrDie().queued, 0u);
    EXPECT_EQ(snap.ValueOrDie().mem_used_bytes, 0u);
  }
}

// Destroying the service while queries are in flight: the destructor cancels
// and drains cleanly (regression guard for the shutdown path).
TEST(ServiceStressTest, ShutdownWhileQueriesInFlight) {
  std::vector<std::thread> clients;
  std::vector<Status> results(3);
  {
    QueryService service;
    ResourceGroupConfig group;
    group.concurrency = 2;
    ASSERT_TRUE(service.CreateGroup("g", group).ok());
    std::atomic<int> started{0};
    for (size_t i = 0; i < results.size(); i++) {
      clients.emplace_back([&, i] {
        results[i] = service.Submit("g", {}, [&](QueryContext& ctx) {
          started++;
          while (!ctx.cancelled()) {
            std::this_thread::sleep_for(std::chrono::milliseconds(1));
          }
          return Status::OK();
        });
      });
    }
    // Concurrency 2: wait until the third client is actually in the queue —
    // not just until two started — or a slow thread could reach Admit after
    // shutdown began and get NotFound instead of the queued-abort Cancelled.
    while (started.load() < 2 ||
           service.Snapshot("g").ValueOrDie().queued < 1) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    // ~QueryService cancels the running pair, aborts the waiter, drains.
  }
  for (auto& c : clients) c.join();
  for (const auto& st : results) {
    EXPECT_EQ(st.code(), StatusCode::kCancelled) << st.ToString();
  }
}

}  // namespace
}  // namespace jsontiles::service
