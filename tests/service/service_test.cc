// Multi-tenant query service: admission control, resource-group quotas,
// runaway cancellation, the mem_limit/quota clamp, and the SQL session layer
// (SET RESOURCE GROUP / SHOW RESOURCE GROUPS, queue-wait EXPLAIN footer).

#include <atomic>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "obs/metrics.h"
#include "service/query_service.h"
#include "sql/sql_session.h"
#include "storage/loader.h"

namespace jsontiles::service {
namespace {

using exec::ExecOptions;
using exec::QueryContext;

void SleepMs(uint64_t ms) {
  std::this_thread::sleep_for(std::chrono::milliseconds(ms));
}

/// Busy-wait inside a query until the service cancels it (or a deadline
/// trips the test). Models a long-running query with cooperative
/// cancellation checkpoints.
Status RunUntilCancelled(QueryContext& ctx, uint64_t deadline_ms = 5000) {
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(deadline_ms);
  while (!ctx.cancelled()) {
    if (std::chrono::steady_clock::now() > deadline) {
      return Status::Internal("query was never cancelled");
    }
    SleepMs(1);
  }
  return Status::OK();
}

TEST(QueryServiceTest, GroupCatalog) {
  QueryService service;
  EXPECT_FALSE(service.HasGroup("etl"));
  ASSERT_TRUE(service.CreateGroup("etl", {}).ok());
  ASSERT_TRUE(service.CreateGroup("adhoc", {}).ok());
  EXPECT_TRUE(service.HasGroup("etl"));
  auto st = service.CreateGroup("etl", {});
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(service.GroupNames().size(), 2u);
  EXPECT_TRUE(service.DropGroup("etl").ok());
  EXPECT_FALSE(service.HasGroup("etl"));
  EXPECT_EQ(service.DropGroup("etl").code(), StatusCode::kNotFound);
  EXPECT_EQ(service.CreateGroup("", {}).code(), StatusCode::kInvalidArgument);
  ResourceGroupConfig zero;
  zero.concurrency = 0;
  EXPECT_EQ(service.CreateGroup("z", zero).code(),
            StatusCode::kInvalidArgument);
}

TEST(QueryServiceTest, AdmissionWiresBudgetsIntoOptions) {
  ServiceConfig config;
  config.total_mem_bytes = 1 << 24;
  config.spill_disk_bytes = 1 << 26;
  QueryService service(config);
  ResourceGroupConfig group;
  group.mem_quota_bytes = 1 << 20;
  ASSERT_TRUE(service.CreateGroup("etl", group).ok());

  auto admitted = service.Admit("etl", {});
  ASSERT_TRUE(admitted.ok()) << admitted.status().ToString();
  Admission admission = admitted.MoveValueOrDie();
  EXPECT_NE(admission.options().budget_parent, nullptr);
  EXPECT_EQ(admission.options().spill_disk, service.disk_budget());
  // The group quota chains to the global budget, so a query charge shows up
  // at every level and vanishes on release.
  QueryContext ctx(admission.options());
  admission.Attach(&ctx);
  EXPECT_EQ(ctx.resource_group, "etl");
  ASSERT_TRUE(ctx.budget()->TryCharge(1000));
  EXPECT_EQ(service.global_budget()->used(), 1000u);
  ctx.budget()->Release(1000);
  EXPECT_EQ(service.global_budget()->used(), 0u);
  admission.Release();

  EXPECT_EQ(service.Admit("nope", {}).status().code(), StatusCode::kNotFound);
}

TEST(QueryServiceTest, QueueFullRejectsAndTimeoutExpires) {
  QueryService service;
  ResourceGroupConfig group;
  group.concurrency = 1;
  group.max_queue = 1;
  group.queue_timeout_ms = 50;
  ASSERT_TRUE(service.CreateGroup("g", group).ok());

  auto first = service.Admit("g", {});
  ASSERT_TRUE(first.ok());

  // Fill the one queue seat with a waiter that will time out.
  std::atomic<int> timed_out{0};
  std::thread waiter([&] {
    auto r = service.Admit("g", {});
    EXPECT_EQ(r.status().code(), StatusCode::kResourceExhausted);
    timed_out++;
  });
  while (true) {
    auto snap = service.Snapshot("g").ValueOrDie();
    if (snap.queued == 1) break;
    SleepMs(1);
  }
  // Queue full: the next request is rejected immediately, not enqueued.
  auto overflow = service.Admit("g", {});
  EXPECT_EQ(overflow.status().code(), StatusCode::kResourceExhausted);
  waiter.join();
  EXPECT_EQ(timed_out.load(), 1);
  auto snap = service.Snapshot("g").ValueOrDie();
  EXPECT_EQ(snap.rejected, 1u);
  EXPECT_EQ(snap.timed_out, 1u);
  EXPECT_EQ(snap.queued, 0u);
  EXPECT_EQ(snap.running, 1u);
}

TEST(QueryServiceTest, SlotHandsOffToWaiterInFifoOrder) {
  QueryService service;
  ResourceGroupConfig group;
  group.concurrency = 1;
  group.max_queue = 8;
  ASSERT_TRUE(service.CreateGroup("g", group).ok());

  auto first = service.Admit("g", {});
  ASSERT_TRUE(first.ok());
  Admission held = first.MoveValueOrDie();

  std::atomic<int> done{0};
  std::thread waiter([&] {
    Status st = service.Submit("g", {}, [](QueryContext&) {
      return Status::OK();
    });
    EXPECT_TRUE(st.ok()) << st.ToString();
    done++;
  });
  while (service.Snapshot("g").ValueOrDie().queued != 1) SleepMs(1);
  EXPECT_EQ(done.load(), 0);  // blocked: the slot is ours
  held.Release();
  waiter.join();
  EXPECT_EQ(done.load(), 1);
  auto snap = service.Snapshot("g").ValueOrDie();
  EXPECT_EQ(snap.admitted, 2u);
  EXPECT_EQ(snap.running, 0u);
  // The waiter's admission recorded a real queue wait, surfaced for the
  // EXPLAIN ANALYZE footer.
}

// Satellite regression: a per-query mem_limit larger than the group's
// remaining quota must be clamped at admission (with a metric), never
// over-admitted.
TEST(QueryServiceTest, MemLimitClampedToGroupQuota) {
  QueryService service;
  ResourceGroupConfig group;
  group.mem_quota_bytes = 1 << 20;  // 1 MiB quota
  ASSERT_TRUE(service.CreateGroup("g", group).ok());

  const int64_t clamps_before =
      obs::GroupCounter("g", "mem_limit_clamped")->Value();
  const int64_t defaults_before =
      obs::GroupCounter("g", "mem_limit_defaulted")->Value();

  ExecOptions options;
  options.mem_limit_bytes = 16 << 20;  // asks for 16x the quota
  auto admitted = service.Admit("g", options);
  ASSERT_TRUE(admitted.ok());
  Admission a = admitted.MoveValueOrDie();
  EXPECT_TRUE(a.clamped());
  EXPECT_LE(a.options().mem_limit_bytes, size_t{1} << 20);
  EXPECT_GT(a.options().mem_limit_bytes, 0u);

  // An unlimited request under a limited quota is lowered to the headroom
  // too — the sum of admitted limits must stay within the group — but it is
  // a routine defaulting, not a caller over-ask, so it must not pollute the
  // over-admission `clamped` metric.
  ExecOptions unlimited;
  auto admitted2 = service.Admit("g", unlimited);
  ASSERT_TRUE(admitted2.ok());
  EXPECT_FALSE(admitted2.ValueOrDie().clamped());
  EXPECT_GT(admitted2.ValueOrDie().options().mem_limit_bytes, 0u);
  EXPECT_LE(admitted2.ValueOrDie().options().mem_limit_bytes,
            size_t{1} << 20);

  // A modest request passes through untouched.
  ExecOptions small;
  small.mem_limit_bytes = 1 << 16;
  auto admitted3 = service.Admit("g", small);
  ASSERT_TRUE(admitted3.ok());
  EXPECT_FALSE(admitted3.ValueOrDie().clamped());
  EXPECT_EQ(admitted3.ValueOrDie().options().mem_limit_bytes,
            size_t{1} << 16);

  EXPECT_EQ(service.Snapshot("g").ValueOrDie().clamped, 1u);
  EXPECT_EQ(service.Snapshot("g").ValueOrDie().defaulted, 1u);
  EXPECT_EQ(obs::GroupCounter("g", "mem_limit_clamped")->Value(),
            clamps_before + 1);
  EXPECT_EQ(obs::GroupCounter("g", "mem_limit_defaulted")->Value(),
            defaults_before + 1);
}

// Regression: a waiter that ReleaseQuery has just granted (popped from the
// queue, slot transferred) is in neither `queue` nor `active` until it
// reacquires the service mutex. DropGroup's drain used to watch only
// `active`, so a drop landing in that window erased the group — condition
// variable and all — out from under the granted waiter (use-after-free,
// caught by ASan). The drain must also wait for the slot and the waiter to
// come home. Hammer the window: release the held slot and drop the group
// concurrently, many times.
TEST(QueryServiceTest, DropGroupRacesWithSlotHandoff) {
  QueryService service;
  for (int iter = 0; iter < 200; ++iter) {
    const std::string name = "race" + std::to_string(iter);
    ResourceGroupConfig cfg;
    cfg.concurrency = 1;
    cfg.max_queue = 4;
    cfg.queue_timeout_ms = 5000;
    ASSERT_TRUE(service.CreateGroup(name, cfg).ok());

    auto holder = service.Admit(name, {});
    ASSERT_TRUE(holder.ok());
    Admission slot = holder.MoveValueOrDie();

    std::thread waiter([&service, &name] {
      auto admitted = service.Admit(name, {});
      if (admitted.ok()) {
        // Granted before the drop landed: give the slot straight back.
        admitted.ValueOrDie().Release();
      } else {
        EXPECT_EQ(admitted.status().code(), StatusCode::kCancelled)
            << admitted.status().ToString();
      }
    });
    // The slot is occupied, so the waiter always queues; wait until it has.
    while (service.Snapshot(name).ValueOrDie().queued == 0) {
      std::this_thread::yield();
    }

    std::thread dropper([&service, &name] { (void)service.DropGroup(name); });
    slot.Release();  // grants the waiter's slot while the drop races in
    dropper.join();
    waiter.join();
    EXPECT_FALSE(service.HasGroup(name));
  }
}

TEST(QueryServiceTest, AdmissionReserveRefusedWhenQuotaFull) {
  QueryService service;
  ResourceGroupConfig group;
  group.concurrency = 4;
  group.mem_quota_bytes = 1 << 20;
  group.admission_reserve_bytes = 600 << 10;  // two reserves exceed the quota
  ASSERT_TRUE(service.CreateGroup("g", group).ok());

  auto first = service.Admit("g", {});
  ASSERT_TRUE(first.ok());
  auto second = service.Admit("g", {});
  EXPECT_EQ(second.status().code(), StatusCode::kResourceExhausted);
  // Releasing the first returns its reserve; admission succeeds again.
  first.ValueOrDie().Release();
  EXPECT_EQ(service.global_budget()->used(), 0u);
  auto third = service.Admit("g", {});
  EXPECT_TRUE(third.ok()) << third.status().ToString();
}

TEST(QueryServiceTest, DropGroupCancelsRunningAndAbortsWaiters) {
  QueryService service;
  ResourceGroupConfig group;
  group.concurrency = 1;
  group.max_queue = 4;
  ASSERT_TRUE(service.CreateGroup("g", group).ok());

  std::atomic<int> cancelled{0}, aborted{0};
  std::thread runner([&] {
    Status st = service.Submit(
        "g", {}, [](QueryContext& ctx) { return RunUntilCancelled(ctx); });
    EXPECT_EQ(st.code(), StatusCode::kCancelled) << st.ToString();
    cancelled++;
  });
  while (service.Snapshot("g").ValueOrDie().running != 1) SleepMs(1);
  std::thread waiter([&] {
    auto r = service.Admit("g", {});
    EXPECT_EQ(r.status().code(), StatusCode::kCancelled);
    aborted++;
  });
  while (service.Snapshot("g").ValueOrDie().queued != 1) SleepMs(1);

  ASSERT_TRUE(service.DropGroup("g").ok());
  runner.join();
  waiter.join();
  EXPECT_EQ(cancelled.load(), 1);
  EXPECT_EQ(aborted.load(), 1);
  EXPECT_FALSE(service.HasGroup("g"));
  EXPECT_EQ(service.global_budget()->used(), 0u);
  // The name is reusable immediately.
  EXPECT_TRUE(service.CreateGroup("g", {}).ok());
}

TEST(QueryServiceTest, RunawayWallClockCancelled) {
  ServiceConfig config;
  config.monitor_period_ms = 2;
  QueryService service(config);
  ResourceGroupConfig group;
  group.runaway_wall_ms = 20;
  ASSERT_TRUE(service.CreateGroup("g", group).ok());

  Status st = service.Submit(
      "g", {}, [](QueryContext& ctx) { return RunUntilCancelled(ctx); });
  EXPECT_EQ(st.code(), StatusCode::kCancelled) << st.ToString();
  EXPECT_NE(st.message().find("runaway"), std::string::npos);
  EXPECT_EQ(service.Snapshot("g").ValueOrDie().cancelled, 1u);
}

TEST(QueryServiceTest, RunawayMemoryWatermarkCancelsLargestConsumer) {
  ServiceConfig config;
  config.monitor_period_ms = 2;
  QueryService service(config);
  ResourceGroupConfig group;
  group.concurrency = 2;
  group.mem_quota_bytes = 1 << 20;
  group.runaway_mem_fraction = 0.5;
  ASSERT_TRUE(service.CreateGroup("g", group).ok());

  // Query A stays tiny; query B blows past the watermark. B must die first
  // (largest consumer); A may survive or — if the group is still above the
  // watermark on the next tick before B returns its memory — be shed too.
  std::atomic<bool> big_charged{false};
  Status small_st, big_st;
  std::thread small([&] {
    small_st = service.Submit("g", {}, [&](QueryContext& ctx) {
      EXPECT_TRUE(ctx.budget()->TryCharge(1024));
      // Stay resident until the big query has charged, so the monitor has
      // two candidates to choose between when the watermark trips.
      while (!big_charged.load()) SleepMs(1);
      ctx.budget()->Release(1024);
      return Status::OK();
    });
  });
  std::thread big([&] {
    big_st = service.Submit("g", {}, [&](QueryContext& ctx) {
      EXPECT_TRUE(ctx.budget()->TryCharge(768 << 10));
      big_charged = true;
      Status st = RunUntilCancelled(ctx);
      ctx.budget()->Release(768 << 10);
      return st;
    });
  });
  big.join();
  small.join();
  EXPECT_EQ(big_st.code(), StatusCode::kCancelled) << big_st.ToString();
  EXPECT_NE(big_st.message().find("watermark"), std::string::npos);
  EXPECT_TRUE(small_st.ok() || small_st.code() == StatusCode::kCancelled)
      << small_st.ToString();
  EXPECT_EQ(service.global_budget()->used(), 0u);
}

// --- SQL session layer ---------------------------------------------------

const storage::Relation& TinyRelation() {
  static std::unique_ptr<storage::Relation> rel = [] {
    std::vector<std::string> docs;
    for (int i = 0; i < 64; i++) {
      docs.push_back("{\"k\":" + std::to_string(i) + ",\"grp\":" +
                     std::to_string(i % 4) + "}");
    }
    storage::Loader loader(storage::StorageMode::kTiles, {});
    return loader.Load(docs, "t").MoveValueOrDie();
  }();
  return *rel;
}

TEST(SqlSessionTest, SetAndShowResourceGroups) {
  QueryService service;
  ASSERT_TRUE(service.CreateGroup("adhoc", {}).ok());
  ASSERT_TRUE(service.CreateGroup("etl", {}).ok());
  sql::SqlCatalog catalog;
  catalog.tables["t"] = &TinyRelation();
  sql::SqlSession session(&catalog, &service);

  // Defaults to the first group alphabetically.
  EXPECT_EQ(session.resource_group(), "adhoc");
  auto set = session.Execute("SET RESOURCE GROUP etl");
  ASSERT_TRUE(set.ok()) << set.status().ToString();
  EXPECT_EQ(session.resource_group(), "etl");
  EXPECT_EQ(session.Execute("set resource group etl;").status().code(),
            StatusCode::kOk);
  EXPECT_EQ(session.Execute("SET RESOURCE GROUP missing").status().code(),
            StatusCode::kNotFound);
  EXPECT_EQ(session.Execute("SET search_path TO x").status().code(),
            StatusCode::kUnsupported);

  auto query = session.Execute(
      "SELECT COUNT(*) FROM t d WHERE d->>'k'::BigInt < 10");
  ASSERT_TRUE(query.ok()) << query.status().ToString();
  ASSERT_EQ(query.ValueOrDie().rows.size(), 1u);
  EXPECT_EQ(query.ValueOrDie().rows[0][0].i, 10);

  auto show = session.Execute("SHOW RESOURCE GROUPS");
  ASSERT_TRUE(show.ok()) << show.status().ToString();
  const sql::SqlResult& groups = show.ValueOrDie();
  ASSERT_EQ(groups.rows.size(), 2u);
  EXPECT_EQ(groups.column_names.front(), "group");
  EXPECT_EQ(std::string(groups.rows[0][0].s), "adhoc");
  EXPECT_EQ(std::string(groups.rows[1][0].s), "etl");
  EXPECT_EQ(groups.rows[1][6].i, 1);  // etl admitted the COUNT(*) above
}

TEST(SqlSessionTest, ExplainAnalyzeReportsGroupAndQueueWait) {
  QueryService service;
  ASSERT_TRUE(service.CreateGroup("adhoc", {}).ok());
  sql::SqlCatalog catalog;
  catalog.tables["t"] = &TinyRelation();
  sql::SqlSession session(&catalog, &service);

  auto result = session.Execute(
      "EXPLAIN ANALYZE SELECT SUM(d->>'k'::BigInt) FROM t d");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  std::string plan;
  for (const auto& row : result.ValueOrDie().rows) {
    plan += std::string(row[0].s) + "\n";
  }
  EXPECT_NE(plan.find("Resource group: adhoc, queue wait:"),
            std::string::npos)
      << plan;
}

TEST(SqlSessionTest, UngovernedSessionExecutesDirectly) {
  sql::SqlCatalog catalog;
  catalog.tables["t"] = &TinyRelation();
  sql::SqlSession session(&catalog, nullptr);
  auto result = session.Execute("SELECT COUNT(*) FROM t d");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.ValueOrDie().rows[0][0].i, 64);
  EXPECT_EQ(session.Execute("SET RESOURCE GROUP g").status().code(),
            StatusCode::kUnsupported);
}

TEST(SqlSessionTest, ResultsSurviveUntilNextExecute) {
  QueryService service;
  ASSERT_TRUE(service.CreateGroup("g", {}).ok());
  sql::SqlCatalog catalog;
  catalog.tables["t"] = &TinyRelation();
  sql::SqlSession session(&catalog, &service);
  auto result = session.Execute(
      "SELECT d->>'k'::BigInt AS k FROM t d ORDER BY 1 LIMIT 3");
  ASSERT_TRUE(result.ok());
  // The admission slot is already back (no query running), yet the rows are
  // still valid: the session keeps the context alive.
  EXPECT_EQ(service.Snapshot("g").ValueOrDie().running, 0u);
  const exec::RowSet& rows = result.ValueOrDie().rows;
  ASSERT_EQ(rows.size(), 3u);
  EXPECT_EQ(rows[2][0].i, 2);
}

}  // namespace
}  // namespace jsontiles::service
