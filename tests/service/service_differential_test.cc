// Concurrency differential harness: every query executed through the
// multi-tenant service — N client threads contending for {2,4,8} concurrency
// slots, under tight and loose group memory quotas — must return results
// BIT-identical to the same query run alone, directly, with no service. The
// tight quota forces the spill path through the group-budget hierarchy
// (quota-induced spill), so identity covers the in-memory and the spilling
// execution of every Fig-14 workload query (TPC-H 1-22 + Yelp 1-5).
// Canonicalization is Value::ToString per cell — equal strings mean equal
// bits (mirrors tests/storage/shard_differential_test.cc).

#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "obs/metrics.h"
#include "service/query_service.h"
#include "storage/loader.h"
#include "workload/tpch.h"
#include "workload/tpch_queries.h"
#include "workload/yelp.h"

namespace jsontiles::service {
namespace {

using exec::ExecOptions;
using exec::QueryContext;
using exec::RowSet;

std::string Canonical(const RowSet& rows) {
  std::string out;
  for (const auto& row : rows) {
    for (const auto& v : row) {
      out += v.is_null() ? "∅" : v.ToString();
      out += "|";
    }
    out += "\n";
  }
  return out;
}

const workload::TpchData& Tpch() {
  static const workload::TpchData data = [] {
    workload::TpchOptions options;
    options.scale_factor = 0.004;
    return workload::GenerateTpch(options);
  }();
  return data;
}

const std::vector<std::string>& Yelp() {
  static const std::vector<std::string> docs = [] {
    workload::YelpOptions options;
    options.num_business = 50;
    return workload::GenerateYelp(options);
  }();
  return docs;
}

tiles::TileConfig SmallTiles() {
  tiles::TileConfig config;
  config.tile_size = 128;
  return config;
}

const storage::Relation& TpchRelation() {
  static std::unique_ptr<storage::Relation> rel = [] {
    storage::Loader loader(storage::StorageMode::kTiles, SmallTiles());
    return loader.Load(Tpch().combined, "tpch").MoveValueOrDie();
  }();
  return *rel;
}

const storage::Relation& YelpRelation() {
  static std::unique_ptr<storage::Relation> rel = [] {
    storage::Loader loader(storage::StorageMode::kTiles, SmallTiles());
    return loader.Load(Yelp(), "yelp").MoveValueOrDie();
  }();
  return *rel;
}

/// One work item of the sweep: workload + query number.
struct WorkItem {
  bool yelp;
  int query;
};

std::vector<WorkItem> Fig14Items() {
  std::vector<WorkItem> items;
  for (int q = 1; q <= 22; q++) items.push_back({false, q});
  for (int q = 1; q <= 5; q++) items.push_back({true, q});
  return items;
}

RowSet RunItem(const WorkItem& item, QueryContext& ctx) {
  return item.yelp ? workload::RunYelpQuery(item.query, YelpRelation(), ctx)
                   : workload::RunTpchQuery(item.query, TpchRelation(), ctx);
}

/// Single-query direct baseline (no service, no quota), cached per item.
const std::string& Baseline(const WorkItem& item) {
  static std::map<std::pair<bool, int>, std::string> cache;
  static std::mutex mu;
  std::lock_guard<std::mutex> lock(mu);
  auto& entry = cache[{item.yelp, item.query}];
  if (entry.empty()) {
    QueryContext ctx;
    entry = Canonical(RunItem(item, ctx));
  }
  return entry;
}

constexpr size_t kClientThreads = 4;
constexpr size_t kSlotCounts[] = {2, 4, 8};
// 256 KiB forces operator spill on the heavy queries; the spill is induced
// by the *group* quota through the budget hierarchy, not by a per-query
// limit — per-query limits stay unlimited and get clamped at admission.
constexpr size_t kTightQuota = size_t{1} << 18;

TEST(ServiceDifferentialTest, ConcurrentExecutionIsBitIdentical) {
  const std::vector<WorkItem> items = Fig14Items();
  for (size_t slots : kSlotCounts) {
    for (bool tight : {false, true}) {
      ServiceConfig service_config;
      service_config.spill_disk_bytes = uint64_t{1} << 30;
      QueryService service(service_config);
      ResourceGroupConfig group;
      group.concurrency = slots;
      group.max_queue = 64;
      group.queue_timeout_ms = 120000;
      group.mem_quota_bytes = tight ? kTightQuota : 0;
      ASSERT_TRUE(service.CreateGroup("diff", group).ok());

      std::vector<std::string> errors;
      std::mutex errors_mu;
      std::vector<std::thread> clients;
      for (size_t t = 0; t < kClientThreads; t++) {
        clients.emplace_back([&, t] {
          // Thread t owns every (kClientThreads)-th item; together the
          // clients cover the whole Fig-14 sweep, concurrently.
          for (size_t i = t; i < items.size(); i += kClientThreads) {
            const WorkItem& item = items[i];
            std::string got;
            Status st = service.Submit("diff", {}, [&](QueryContext& ctx) {
              // Canonicalize INSIDE the query: rows reference the
              // context's arenas, which die with the submission.
              got = Canonical(RunItem(item, ctx));
              return Status::OK();
            });
            std::string label = (item.yelp ? "Yelp Y" : "TPC-H Q") +
                                std::to_string(item.query) + " slots=" +
                                std::to_string(slots) +
                                (tight ? " tight" : " loose");
            if (!st.ok()) {
              std::lock_guard<std::mutex> lock(errors_mu);
              errors.push_back(label + ": " + st.ToString());
            } else if (got != Baseline(item)) {
              std::lock_guard<std::mutex> lock(errors_mu);
              errors.push_back(label + ": result differs from baseline");
            }
          }
        });
      }
      for (auto& c : clients) c.join();
      for (const auto& e : errors) ADD_FAILURE() << e;

      auto snap = service.Snapshot("diff").ValueOrDie();
      EXPECT_EQ(snap.admitted, items.size());
      EXPECT_EQ(snap.running, 0u);
      EXPECT_EQ(service.global_budget()->used(), 0u)
          << "budget leak: slots=" << slots << " tight=" << tight;
      EXPECT_EQ(service.disk_budget()->used(), 0u)
          << "spill-disk leak: slots=" << slots << " tight=" << tight;
      if (tight) {
        // The tight quota must actually have exercised the spill path —
        // otherwise this sweep proves less than it claims. Q18's join and
        // Q1's wide aggregate do not fit in 256 KiB.
        EXPECT_GT(obs::GroupCounter("diff", "spilled_bytes")->Value(), 0);
      }
    }
  }
}

// Tighter still: the per-query limit interacts with the group quota (clamp)
// and the answers stay identical when every admission is clamped.
TEST(ServiceDifferentialTest, ClampedAdmissionsStayBitIdentical) {
  QueryService service;
  ResourceGroupConfig group;
  group.concurrency = 2;
  group.mem_quota_bytes = kTightQuota;
  ASSERT_TRUE(service.CreateGroup("clamp", group).ok());

  for (int q : {1, 3, 18}) {
    WorkItem item{false, q};
    ExecOptions options;
    options.mem_limit_bytes = 64 << 20;  // far above the quota: clamped
    std::string got;
    Status st = service.Submit("clamp", options, [&](QueryContext& ctx) {
      got = Canonical(RunItem(item, ctx));
      return Status::OK();
    });
    ASSERT_TRUE(st.ok()) << "Q" << q << ": " << st.ToString();
    EXPECT_EQ(got, Baseline(item)) << "Q" << q;
  }
  EXPECT_EQ(service.Snapshot("clamp").ValueOrDie().clamped, 3u);
  EXPECT_EQ(service.global_budget()->used(), 0u);
}

}  // namespace
}  // namespace jsontiles::service
