// Failpoints of the admission layer: service.admit, service.quota_charge,
// and service.spill_reserve. Each injected fault must fail ONLY the affected
// query — with a clean Status — while the group and the service keep
// admitting and answering every other query.

#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "service/query_service.h"
#include "storage/loader.h"
#include "util/failpoint.h"
#include "workload/tpch.h"
#include "workload/tpch_queries.h"

namespace jsontiles::service {
namespace {

using exec::QueryContext;

#if JSONTILES_FAILPOINTS_AVAILABLE

class ServiceFailpointTest : public ::testing::Test {
 protected:
  void TearDown() override { failpoint::DisableAll(); }
};

const storage::Relation& SpillyRelation() {
  static std::unique_ptr<storage::Relation> rel = [] {
    workload::TpchOptions options;
    options.scale_factor = 0.002;
    auto data = workload::GenerateTpch(options);
    tiles::TileConfig tiles;
    tiles.tile_size = 128;
    storage::Loader loader(storage::StorageMode::kTiles, tiles);
    return loader.Load(data.combined, "tpch").MoveValueOrDie();
  }();
  return *rel;
}

Status RunQ18(QueryService& service) {
  return service.Submit("g", {}, [](QueryContext& ctx) {
    workload::RunTpchQuery(18, SpillyRelation(), ctx);
    return Status::OK();
  });
}

TEST_F(ServiceFailpointTest, AdmitFaultFailsOnlyThatQuery) {
  QueryService service;
  ASSERT_TRUE(service.CreateGroup("g", {}).ok());

  failpoint::Enable("service.admit", failpoint::Spec::Nth(1));
  Status first = RunQ18(service);
  EXPECT_EQ(first.code(), StatusCode::kInternal);
  EXPECT_NE(first.message().find("service.admit"), std::string::npos);
  // The very next query sails through the same group.
  EXPECT_TRUE(RunQ18(service).ok());
  auto snap = service.Snapshot("g").ValueOrDie();
  EXPECT_EQ(snap.rejected, 1u);
  EXPECT_EQ(snap.admitted, 1u);
  EXPECT_EQ(service.global_budget()->used(), 0u);
}

TEST_F(ServiceFailpointTest, QuotaChargeFaultFailsOnlyThatQuery) {
  QueryService service;
  ResourceGroupConfig group;
  group.mem_quota_bytes = 16 << 20;
  group.admission_reserve_bytes = 1 << 20;
  ASSERT_TRUE(service.CreateGroup("g", group).ok());

  failpoint::Enable("service.quota_charge", failpoint::Spec::Nth(1));
  Status first = RunQ18(service);
  EXPECT_EQ(first.code(), StatusCode::kResourceExhausted);
  EXPECT_NE(first.message().find("reserve"), std::string::npos);
  EXPECT_TRUE(RunQ18(service).ok());
  auto snap = service.Snapshot("g").ValueOrDie();
  EXPECT_EQ(snap.rejected, 1u);
  EXPECT_EQ(snap.admitted, 1u);
  // A refused reserve must not leave a partial charge on the quota.
  EXPECT_EQ(snap.mem_used_bytes, 0u);
  EXPECT_EQ(service.global_budget()->used(), 0u);
}

TEST_F(ServiceFailpointTest, SpillReserveFaultFailsOnlyTheSpillingQuery) {
  QueryService service;
  ResourceGroupConfig group;
  group.mem_quota_bytes = 1 << 18;  // 256 KiB: Q18 must spill
  ASSERT_TRUE(service.CreateGroup("g", group).ok());

  // Fault the first temp-disk reservation: exactly one spill block is
  // refused, which fails the spilling query with ResourceExhausted.
  failpoint::Enable("service.spill_reserve", failpoint::Spec::Nth(1));
  Status first = RunQ18(service);
  EXPECT_EQ(first.code(), StatusCode::kResourceExhausted) << first.ToString();
  EXPECT_NE(first.message().find("spill-disk"), std::string::npos)
      << first.ToString();
  EXPECT_GE(service.disk_budget()->refused(), 1u);
  // All reservations the failed query did make were returned.
  EXPECT_EQ(service.disk_budget()->used(), 0u);
  // The same query succeeds afterwards — the governor still works.
  EXPECT_TRUE(RunQ18(service).ok());
  EXPECT_EQ(service.disk_budget()->used(), 0u);
  EXPECT_EQ(service.global_budget()->used(), 0u);
}

#else

TEST(ServiceFailpointTest, SkippedWithoutFailpoints) { GTEST_SKIP(); }

#endif  // JSONTILES_FAILPOINTS_AVAILABLE

}  // namespace
}  // namespace jsontiles::service
