#include "exec/spill.h"

#include <algorithm>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "exec/operators.h"
#include "exec/scan.h"
#include "obs/plan_profile.h"
#include "sql/sql_parser.h"
#include "storage/loader.h"
#include "util/failpoint.h"

namespace jsontiles::exec {
namespace {

using storage::Loader;
using storage::Relation;
using storage::StorageMode;

// ---------------------------------------------------------------------------
// SpillFile round-trips
// ---------------------------------------------------------------------------

Row MakeMixedRow(int64_t i, std::string_view str) {
  Row row;
  row.push_back(Value::Null());
  row.push_back(Value::Bool(i % 2 == 0));
  row.push_back(Value::Int(i * 1000003));
  row.push_back(Value::Float(static_cast<double>(i) * 0.125));
  row.push_back(Value::String(str));
  row.push_back(Value::Ts(i * 86400));
  row.push_back(Value::Num(Numeric{i * 100 + 7, 2}));
  return row;
}

void ExpectRowsEqual(const Row& a, const Row& b) {
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); i++) {
    EXPECT_EQ(a[i].type, b[i].type) << "col " << i;
    EXPECT_EQ(a[i].scale, b[i].scale) << "col " << i;
    if (a[i].type == ValueType::kString) {
      EXPECT_EQ(a[i].s, b[i].s) << "col " << i;
    } else if (a[i].type != ValueType::kNull) {
      EXPECT_EQ(a[i].i, b[i].i) << "col " << i;
    }
  }
}

TEST(SpillFileTest, RoundTripAllValueTypes) {
  SpillStats stats;
  SpillFile file({}, &stats);
  std::vector<std::string> strings;
  // Pre-build string storage (Values view it).
  for (int i = 0; i < 200; i++) {
    strings.push_back("value-" + std::to_string(i) +
                      std::string(static_cast<size_t>(i % 50), 'x'));
  }
  std::vector<Row> expected;
  for (int i = 0; i < 200; i++) {
    expected.push_back(MakeMixedRow(i, strings[static_cast<size_t>(i)]));
    ASSERT_TRUE(file.Add(static_cast<uint64_t>(i) * 0x9E3779B97F4A7C15ull,
                         expected.back())
                    .ok());
  }
  ASSERT_TRUE(file.Finish().ok());
  EXPECT_EQ(file.rows(), 200u);
  EXPECT_GT(file.raw_bytes(), 0u);

  Arena arena;
  RowSet back;
  ASSERT_TRUE(file.ReadAll(&arena, &back).ok());
  ASSERT_EQ(back.size(), expected.size());
  for (size_t i = 0; i < back.size(); i++) {
    ExpectRowsEqual(expected[i], back[i]);
  }
}

TEST(SpillFileTest, ForEachPreservesOrderAndHashes) {
  SpillFile file({}, nullptr);
  for (int i = 0; i < 50; i++) {
    Row row;
    row.push_back(Value::Int(i));
    ASSERT_TRUE(file.Add(static_cast<uint64_t>(i) * 31 + 5, row).ok());
  }
  ASSERT_TRUE(file.Finish().ok());
  int64_t next = 0;
  Arena arena;
  ASSERT_TRUE(file.ForEach(&arena, [&](uint64_t h, Row&& row) -> Status {
                    EXPECT_EQ(h, static_cast<uint64_t>(next) * 31 + 5);
                    EXPECT_EQ(row[0].int_value(), next);
                    next++;
                    return Status::OK();
                  })
                  .ok());
  EXPECT_EQ(next, 50);
}

TEST(SpillFileTest, MultiBlockCompressedRun) {
  // ~200 bytes per row x 5000 rows: several 64 KiB blocks, all compressed.
  SpillStats stats;
  SpillFile file({}, &stats);
  std::string payload(180, 'a');  // compressible
  for (int i = 0; i < 5000; i++) {
    Row row;
    row.push_back(Value::Int(i));
    row.push_back(Value::String(payload));
    ASSERT_TRUE(file.Add(static_cast<uint64_t>(i), row).ok());
  }
  ASSERT_TRUE(file.Finish().ok());
  EXPECT_GT(file.raw_bytes(), 5000u * 180u);
  // Compression must beat the raw serialization on this corpus.
  EXPECT_LT(stats.spilled_bytes, file.raw_bytes());
  EXPECT_EQ(stats.partitions, 1u);

  Arena arena;
  RowSet back;
  ASSERT_TRUE(file.ReadAll(&arena, &back).ok());
  ASSERT_EQ(back.size(), 5000u);
  EXPECT_EQ(back[4999][0].int_value(), 4999);
  EXPECT_EQ(back[4999][1].string_value(), payload);
}

TEST(SpillFileTest, EmptyFileNeverTouchesDisk) {
  SpillStats stats;
  SpillFile file({}, &stats);
  ASSERT_TRUE(file.Finish().ok());
  EXPECT_EQ(file.rows(), 0u);
  EXPECT_EQ(stats.partitions, 0u);
  EXPECT_EQ(stats.spilled_bytes, 0u);
  RowSet back;
  Arena arena;
  ASSERT_TRUE(file.ReadAll(&arena, &back).ok());
  EXPECT_TRUE(back.empty());
}

TEST(SpillPartitionOfTest, UsesDistinctBitsPerDepth) {
  // Depth d reads bits [61-3d, 64-3d); flipping those bits must change the
  // partition at depth d and nowhere else.
  const uint64_t h = 0x0123456789ABCDEFull;
  for (size_t d = 0; d < 4; d++) {
    const int shift = 61 - 3 * static_cast<int>(d);
    uint64_t flipped = h ^ (7ull << shift);
    EXPECT_NE(SpillPartitionOf(h, d), SpillPartitionOf(flipped, d));
    for (size_t other = 0; other < 4; other++) {
      if (other == d) continue;
      EXPECT_EQ(SpillPartitionOf(h, other), SpillPartitionOf(flipped, other));
    }
  }
}

// ---------------------------------------------------------------------------
// Differential sweep: spilled execution must be bit-identical to in-memory
// ---------------------------------------------------------------------------

class SpillSqlFixture : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    // 20000 rows: above the operators' parallel threshold (16384), so the
    // multi-threaded sweep runs exercise the worker paths, and large enough
    // that grouped aggregation state breaches the 64 KiB / 1 MiB limits.
    std::vector<std::string> facts;
    for (int i = 0; i < 20000; i++) {
      facts.push_back(R"({"k":)" + std::to_string(i % 2000) + R"(,"v":)" +
                      std::to_string(i) + R"(,"f":)" +
                      std::to_string(i % 37) + ".25" + R"(,"s":"tag)" +
                      std::to_string(i % 97) + R"("})");
    }
    std::vector<std::string> dims;
    for (int k = 0; k < 2000; k++) {
      dims.push_back(R"({"k":)" + std::to_string(k) + R"(,"label":"label-)" +
                     std::to_string(k) + R"("})");
    }
    Loader loader(StorageMode::kTiles, {});
    facts_ = loader.Load(facts, "facts").MoveValueOrDie().release();
    dims_ = loader.Load(dims, "dims").MoveValueOrDie().release();
  }
  static void TearDownTestSuite() {
    delete facts_;
    delete dims_;
    facts_ = nullptr;
    dims_ = nullptr;
  }

  static sql::SqlCatalog Catalog() {
    sql::SqlCatalog catalog;
    catalog.tables["facts"] = facts_;
    catalog.tables["dims"] = dims_;
    return catalog;
  }

  // Run `statement` and canonicalize the result into a sorted multiset of
  // formatted rows (operator output order legitimately differs once
  // partitions are processed one at a time).
  static std::vector<std::string> RunSorted(const std::string& statement,
                                            size_t mem_limit,
                                            size_t num_threads) {
    ExecOptions options;
    options.mem_limit_bytes = mem_limit;
    options.num_threads = num_threads;
    QueryContext ctx(options);
    auto r = sql::ExecuteSql(statement, Catalog(), ctx);
    EXPECT_TRUE(r.ok()) << r.status().ToString() << " (mem_limit=" << mem_limit
                        << ", threads=" << num_threads << ")";
    std::vector<std::string> rows;
    if (!r.ok()) return rows;
    for (const auto& row : r.ValueOrDie().rows) {
      std::string s;
      for (const auto& v : row) {
        s += v.ToString();
        s += "|";
      }
      rows.push_back(std::move(s));
    }
    std::sort(rows.begin(), rows.end());
    return rows;
  }

  static std::string PlanText(size_t mem_limit, const std::string& statement) {
    ExecOptions options;
    options.mem_limit_bytes = mem_limit;
    QueryContext ctx(options);
    auto r = sql::ExecuteSql(statement, Catalog(), ctx);
    EXPECT_TRUE(r.ok()) << r.status().ToString();
    std::string text;
    if (!r.ok()) return text;
    for (const auto& row : r.ValueOrDie().rows) {
      text += std::string(row[0].string_value());
      text += "\n";
    }
    return text;
  }

  static Relation* facts_;
  static Relation* dims_;
};
Relation* SpillSqlFixture::facts_ = nullptr;
Relation* SpillSqlFixture::dims_ = nullptr;

const char* const kJoinAggQuery =
    "SELECT d->>'label', COUNT(*), SUM(f->>'v'::BigInt), "
    "AVG(f->>'f'::Float) "
    "FROM facts f, dims d WHERE f->>'k'::BigInt = d->>'k'::BigInt "
    "GROUP BY d->>'label'";

const char* const kJoinQuery =
    "SELECT f->>'v'::BigInt, f->>'s', d->>'label' "
    "FROM facts f, dims d WHERE f->>'k'::BigInt = d->>'k'::BigInt";

// 20000 (s, v) groups with string keys: the group table far exceeds the small
// limits, and the spilled rows exercise the string-rescue path. All float
// values are exact quarters, so every aggregate is order-independent and the
// sweep can demand exact equality.
const char* const kAggQuery =
    "SELECT f->>'s', f->>'v'::BigInt, COUNT(*), SUM(f->>'v'::BigInt), "
    "MIN(f->>'f'::Float), MAX(f->>'v'::BigInt) "
    "FROM facts f GROUP BY f->>'s', f->>'v'::BigInt";

TEST_F(SpillSqlFixture, DifferentialMemLimitSweep) {
  const size_t kLimits[] = {64 * 1024, 1024 * 1024, 16 * 1024 * 1024, 0};
  for (const char* query : {kJoinAggQuery, kJoinQuery, kAggQuery}) {
    auto baseline = RunSorted(query, /*mem_limit=*/0, /*num_threads=*/1);
    ASSERT_FALSE(baseline.empty()) << query;
    for (size_t limit : kLimits) {
      for (size_t threads : {size_t{1}, size_t{4}}) {
        auto rows = RunSorted(query, limit, threads);
        ASSERT_EQ(rows.size(), baseline.size())
            << query << " limit=" << limit << " threads=" << threads;
        EXPECT_EQ(rows, baseline)
            << query << " limit=" << limit << " threads=" << threads;
      }
    }
  }
}

TEST_F(SpillSqlFixture, ExplainAnalyzeReportsSpillCounters) {
  std::string constrained = PlanText(
      64 * 1024, std::string("EXPLAIN ANALYZE ") + kJoinAggQuery);
  EXPECT_NE(constrained.find("spilled_bytes="), std::string::npos)
      << constrained;
  EXPECT_NE(constrained.find("spill_partitions="), std::string::npos)
      << constrained;

  std::string unconstrained =
      PlanText(0, std::string("EXPLAIN ANALYZE ") + kJoinAggQuery);
  EXPECT_EQ(unconstrained.find("spilled_bytes="), std::string::npos)
      << unconstrained;
}

// ---------------------------------------------------------------------------
// Skew: identical keys cannot be split — the depth cap must force the
// partition in memory instead of recursing forever.
// ---------------------------------------------------------------------------

TEST(SpillSkewTest, DepthCapForcesInMemoryJoin) {
  ExecOptions options;
  options.mem_limit_bytes = 32 * 1024;
  QueryContext ctx(options);
  obs::PlanProfile profile;
  ctx.profile = &profile;

  RowSet build, probe;
  for (int i = 0; i < 1500; i++) {
    Row row;
    row.push_back(Value::Int(7));  // one key for every row
    row.push_back(Value::Int(i));
    build.push_back(std::move(row));
  }
  for (int i = 0; i < 20; i++) {
    Row row;
    row.push_back(Value::Int(7));
    row.push_back(Value::Int(1000000 + i));
    probe.push_back(std::move(row));
  }
  std::vector<ExprPtr> build_keys{Slot(0)};
  std::vector<ExprPtr> probe_keys{Slot(0)};
  RowSet out = HashJoinExec(build, probe, build_keys, probe_keys,
                            JoinType::kInner, nullptr, ctx);
  ASSERT_TRUE(ctx.ConsumeStatus().ok());
  EXPECT_EQ(out.size(), 1500u * 20u);

  bool saw_forced = false;
  for (int id = 0; id < static_cast<int>(profile.size()); id++) {
    for (const auto& [name, value] : profile.op(id).counters) {
      if (name == "spill_forced_inmem" && value > 0) saw_forced = true;
    }
  }
  EXPECT_TRUE(saw_forced);
}

// ---------------------------------------------------------------------------
// Fault injection: injected spill failures must surface as a clean Status at
// the SQL boundary — no crash, no partial result.
// ---------------------------------------------------------------------------

#if JSONTILES_FAILPOINTS_AVAILABLE

class SpillFaultTest : public SpillSqlFixture {
 protected:
  void TearDown() override { failpoint::DisableAll(); }

  static Status RunStatus(const std::string& statement, size_t mem_limit) {
    ExecOptions options;
    options.mem_limit_bytes = mem_limit;
    options.num_threads = 4;
    QueryContext ctx(options);
    auto r = sql::ExecuteSql(statement, Catalog(), ctx);
    return r.status();
  }
};

TEST_F(SpillFaultTest, SpillWriteFailureSurfacesCleanly) {
  failpoint::Enable("spill.write", failpoint::Spec::Nth(3));
  Status st = RunStatus(kJoinAggQuery, 64 * 1024);
  EXPECT_FALSE(st.ok());
  // With the failpoint cleared the identical statement succeeds again.
  failpoint::DisableAll();
  EXPECT_TRUE(RunStatus(kJoinAggQuery, 64 * 1024).ok());
}

TEST_F(SpillFaultTest, SpillReadFailureSurfacesCleanly) {
  failpoint::Enable("spill.read", failpoint::Spec::Nth(2));
  Status st = RunStatus(kJoinAggQuery, 64 * 1024);
  EXPECT_FALSE(st.ok());
}

TEST_F(SpillFaultTest, TempFileCreateFailureSurfacesCleanly) {
  failpoint::Enable("tempfile.create", failpoint::Spec::Always());
  Status st = RunStatus(kJoinAggQuery, 64 * 1024);
  EXPECT_FALSE(st.ok());
}

TEST_F(SpillFaultTest, ProbeWorkerFailureSurfacesCleanly) {
  failpoint::Enable("exec.join.probe.worker", failpoint::Spec::Nth(2));
  Status st = RunStatus(kJoinQuery, 0);
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kInternal);
}

TEST_F(SpillFaultTest, AggWorkerFailureSurfacesCleanly) {
  failpoint::Enable("exec.agg.worker", failpoint::Spec::Nth(1));
  Status st = RunStatus(kAggQuery, 0);
  EXPECT_FALSE(st.ok());
}

TEST_F(SpillFaultTest, ScanChunkFailureSurfacesCleanly) {
  failpoint::Enable("exec.scan.chunk", failpoint::Spec::Nth(2));
  Status st = RunStatus(kAggQuery, 0);
  EXPECT_FALSE(st.ok());
}

TEST_F(SpillFaultTest, ContextIsReusableAfterInjectedFailure) {
  ExecOptions options;
  options.mem_limit_bytes = 64 * 1024;
  QueryContext ctx(options);
  failpoint::Enable("spill.write", failpoint::Spec::Nth(1));
  auto failed = sql::ExecuteSql(kAggQuery, Catalog(), ctx);
  EXPECT_FALSE(failed.ok());
  failpoint::DisableAll();
  // ConsumeStatus at the boundary must have reset the cancelled flag.
  auto ok = sql::ExecuteSql(kAggQuery, Catalog(), ctx);
  EXPECT_TRUE(ok.ok()) << ok.status().ToString();
}

#endif  // JSONTILES_FAILPOINTS_AVAILABLE

}  // namespace
}  // namespace jsontiles::exec
