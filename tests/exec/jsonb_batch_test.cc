// Differential tests of the batched binary-JSON accessor
// (exec::ExtractJsonbPathBatch) against the scalar fallback it replaces
// (exec::EvalAccessOnJsonb). Every lane must be bit-identical for every
// requested type over documents with missing keys, mixed value types,
// nested paths, array indices, containers and numeric strings — including
// sparse lane sets and more docs than one vector width.

#include <cstring>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "exec/scan.h"
#include "exec/vector_batch.h"
#include "json/jsonb.h"
#include "tiles/keypath.h"
#include "util/arena.h"

namespace jsontiles::exec {
namespace {

std::vector<uint8_t> Build(std::string_view text) {
  auto r = json::JsonbFromText(text);
  EXPECT_TRUE(r.ok()) << r.status().ToString() << " for " << text;
  return r.MoveValueOrDie();
}

bool BitIdentical(const Value& a, const Value& b) {
  if (a.type != b.type) return false;
  switch (a.type) {
    case ValueType::kNull:
      return true;
    case ValueType::kFloat: {
      uint64_t x, y;
      std::memcpy(&x, &a.d, sizeof(x));
      std::memcpy(&y, &b.d, sizeof(y));
      return x == y;
    }
    case ValueType::kString:
      return a.s == b.s;
    case ValueType::kNumeric:
      return a.i == b.i && a.scale == b.scale;
    default:
      return a.i == b.i;
  }
}

// Documents chosen so that each tested path hits, across the set: exact-type
// matches, cross-type casts, numeric strings, containers, explicit nulls and
// missing keys.
const char* kDocs[] = {
    R"({"a": 1, "b": {"c": 2.5, "d": "hello"}, "arr": [10, 20, {"x": true}], "s": "42"})",
    R"({"a": "not-an-int", "b": {"c": "2.75"}, "arr": []})",
    R"({"a": null, "b": 7})",
    R"({"other": 1})",
    R"({"a": true, "b": {"c": false, "d": 3}, "arr": [1.5]})",
    R"({"a": 9223372036854775807, "b": {"c": -1}, "s": "xyz"})",
    R"({"a": {"nested": "obj"}, "b": {"c": [1, 2]}, "arr": [[7]]})",
    R"({"a": 3.25, "s": "1998-09-02", "b": {"d": false}})",
};

class JsonbBatchTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // Cycle the corpus past one vector width so batching is exercised with
    // every alignment.
    const size_t kTotal = 1000;
    for (size_t i = 0; i < kTotal && i < kVectorSize; i++) {
      storage_.push_back(Build(kDocs[i % (sizeof(kDocs) / sizeof(kDocs[0]))]));
      docs_.push_back(storage_.back().data());
    }
  }

  std::string Path(std::initializer_list<tiles::PathSegment> segs) {
    return tiles::EncodePath(std::vector<tiles::PathSegment>(segs));
  }

  // Run the batched accessor over `lanes` and compare every lane against the
  // scalar fallback.
  void CheckPath(const std::string& encoded, ValueType requested,
                 const std::vector<uint16_t>& lanes) {
    const std::vector<json::PathStep> steps = tiles::DecodePathSteps(encoded);
    Arena arena;
    ColumnVector vec;
    vec.Reset(requested);
    ExtractJsonbPathBatch(docs_.data(), lanes.data(), lanes.size(),
                          steps.data(), steps.size(), requested, &arena, &vec);
    for (uint16_t r : lanes) {
      Value expected = EvalAccessOnJsonb(json::JsonbValue(docs_[r]), encoded,
                                         requested, &arena, false);
      Value actual = vec.GetValue(r);
      ASSERT_TRUE(BitIdentical(expected, actual))
          << "path=" << tiles::PathToDisplayString(encoded)
          << " requested=" << ValueTypeName(requested) << " lane " << r
          << ": scalar=" << expected.ToString()
          << " batched=" << actual.ToString();
    }
  }

  std::vector<std::vector<uint8_t>> storage_;
  std::vector<const uint8_t*> docs_;
};

const ValueType kRequestedTypes[] = {ValueType::kInt,    ValueType::kFloat,
                                     ValueType::kString, ValueType::kBool,
                                     ValueType::kTimestamp,
                                     ValueType::kNumeric};

TEST_F(JsonbBatchTest, DenseLanesMatchScalarAccessor) {
  std::vector<uint16_t> all(docs_.size());
  for (size_t i = 0; i < all.size(); i++) all[i] = static_cast<uint16_t>(i);
  using PS = tiles::PathSegment;
  const std::string paths[] = {
      Path({PS::Key("a")}),
      Path({PS::Key("b"), PS::Key("c")}),
      Path({PS::Key("b"), PS::Key("d")}),
      Path({PS::Key("s")}),
      Path({PS::Key("arr"), PS::Index(0)}),
      Path({PS::Key("arr"), PS::Index(2), PS::Key("x")}),
      Path({PS::Key("missing")}),
      Path({PS::Key("b"), PS::Key("missing"), PS::Key("deeper")}),
  };
  for (const std::string& p : paths) {
    for (ValueType t : kRequestedTypes) CheckPath(p, t, all);
  }
}

TEST_F(JsonbBatchTest, SparseLanesOnlyTouchSelectedDocs) {
  // Every third lane, plus first and last: untouched lanes must be ignorable
  // (the scan only reads lanes it asked for).
  std::vector<uint16_t> sparse;
  for (size_t i = 0; i < docs_.size(); i += 3) {
    sparse.push_back(static_cast<uint16_t>(i));
  }
  sparse.push_back(static_cast<uint16_t>(docs_.size() - 1));
  using PS = tiles::PathSegment;
  CheckPath(Path({PS::Key("a")}), ValueType::kInt, sparse);
  CheckPath(Path({PS::Key("b"), PS::Key("c")}), ValueType::kFloat, sparse);
  CheckPath(Path({PS::Key("s")}), ValueType::kString, sparse);
}

TEST_F(JsonbBatchTest, EmptyLaneSetIsANoOp) {
  using PS = tiles::PathSegment;
  const std::string p = Path({PS::Key("a")});
  const std::vector<json::PathStep> steps = tiles::DecodePathSteps(p);
  Arena arena;
  ColumnVector vec;
  vec.Reset(ValueType::kInt);
  std::vector<uint16_t> none;
  ExtractJsonbPathBatch(docs_.data(), none.data(), 0, steps.data(),
                        steps.size(), ValueType::kInt, &arena, &vec);
}

TEST_F(JsonbBatchTest, EmptyPathYieldsWholeDocumentSemantics) {
  // A zero-step path resolves to the root: scalar roots convert, container
  // roots follow the scalar accessor's container rules.
  std::vector<uint16_t> all(docs_.size());
  for (size_t i = 0; i < all.size(); i++) all[i] = static_cast<uint16_t>(i);
  for (ValueType t : kRequestedTypes) CheckPath(std::string(), t, all);
}

TEST_F(JsonbBatchTest, LookupStepsMatchesLookupPath) {
  using PS = tiles::PathSegment;
  const std::string paths[] = {
      Path({PS::Key("a")}),
      Path({PS::Key("b"), PS::Key("c")}),
      Path({PS::Key("arr"), PS::Index(2), PS::Key("x")}),
      Path({PS::Key("arr"), PS::Index(9)}),
      Path({PS::Key("nope")}),
  };
  for (const std::string& p : paths) {
    const std::vector<json::PathStep> steps = tiles::DecodePathSteps(p);
    for (const uint8_t* doc : docs_) {
      auto via_path = tiles::LookupPath(json::JsonbValue(doc), p);
      auto via_steps =
          json::LookupSteps(json::JsonbValue(doc), steps.data(), steps.size());
      ASSERT_EQ(via_path.has_value(), via_steps.has_value())
          << tiles::PathToDisplayString(p);
      if (via_path.has_value()) {
        ASSERT_EQ(via_path->data(), via_steps->data())
            << tiles::PathToDisplayString(p);
      }
    }
  }
}

}  // namespace
}  // namespace jsontiles::exec
