// Differential fuzzing of the vectorized expression engine against the
// scalar interpreter (the reference implementation).
//
// Random typed expression trees are compiled and run batch-at-a-time over
// random rows — with nulls, zeros (division / modulo by zero), empty
// strings, unparsable casts and boundary-ish values — and every produced
// value must be bit-identical to EvalExpr on the same row. Trees the
// compiler rejects fall back to the interpreter by design and are not
// counted; the test requires at least 100k compiled (tree, row) agreements.

#include <cstring>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "exec/expr_compile.h"
#include "exec/expression.h"
#include "exec/simd.h"
#include "exec/vector_batch.h"
#include "util/arena.h"
#include "util/random.h"

namespace jsontiles::exec {
namespace {

// Slot layout shared by every generated tree.
const std::vector<ValueType> kSlotTypes = {
    ValueType::kInt,  ValueType::kFloat,     ValueType::kString,
    ValueType::kBool, ValueType::kTimestamp, ValueType::kNumeric,
};
constexpr int kIntSlot = 0, kFloatSlot = 1, kStringSlot = 2, kBoolSlot = 3,
              kTsSlot = 4, kNumericSlot = 5;

// Stable string storage: slot values and constants view into this pool.
// Includes empty strings, LIKE metacharacters, parsable and unparsable
// numbers/timestamps/bools.
const std::vector<std::string>& StringPool() {
  static const std::vector<std::string> pool = {
      "",        "a",       "abc",    "abcabc", "zzz",
      "%",       "_",       "a%b",    "42",     "-7",
      "3.25",    "1e3",     "not-a-number",     "true",
      "f",       "1998-09-02",        "2003-11-30 23:59:59",
      "banana",  "bananarama",        "ana",
  };
  return pool;
}

const std::vector<std::string>& PatternPool() {
  static const std::vector<std::string> pool = {
      "",     "%",    "a%",   "%a",  "%ana%", "abc", "a_c",
      "%a%b", "a%c",  "__",   "%%",  "ban%",  "%ma",
  };
  return pool;
}

// Bounded magnitudes keep every arithmetic chain (depth <= 5) far away from
// signed-integer / float-to-int overflow, which would be UB in both engines.
const double kFloatPool[] = {0.0,  1.0,   -1.0,  0.25, -0.25, 3.5,
                             42.0, -99.5, 100.0, 7.75, -0.5,  2.0};

Value RandomSlotValue(ValueType type, Random& rng) {
  if (rng.Chance(0.2)) return Value::Null();
  switch (type) {
    case ValueType::kInt:
      // Mostly tiny (collisions with IN lists, zero divisors), some larger.
      return Value::Int(rng.Chance(0.8) ? rng.Range(-4, 4)
                                        : rng.Range(-100, 100));
    case ValueType::kFloat:
      return Value::Float(kFloatPool[rng.Uniform(12)]);
    case ValueType::kString: {
      const auto& pool = StringPool();
      return Value::String(pool[rng.Uniform(pool.size())]);
    }
    case ValueType::kBool:
      return Value::Bool(rng.Chance(0.5));
    case ValueType::kTimestamp:
      // 1970..~2033, microseconds.
      return Value::Ts(rng.Range(0, 2000000000) * kMicrosPerSecond);
    case ValueType::kNumeric:
      return Value::Num(
          Numeric{rng.Range(-10000, 10000), static_cast<uint8_t>(rng.Uniform(5))});
    default:
      return Value::Null();
  }
}

// Typed recursive generators. Depth counts down to leaves.
class TreeGen {
 public:
  explicit TreeGen(Random& rng) : rng_(rng) {}

  ExprPtr GenAny(int depth) {
    switch (rng_.Uniform(3)) {
      case 0: return GenNum(depth);
      case 1: return GenStr(depth);
      default: return GenBool(depth);
    }
  }

  ExprPtr GenNum(int depth) {
    if (depth <= 0 || rng_.Chance(0.25)) {
      switch (rng_.Uniform(7)) {
        case 0: return ConstInt(rng_.Range(-100, 100));
        case 1: return ConstFloat(kFloatPool[rng_.Uniform(12)]);
        case 2: return ConstNull();
        case 3: return Slot(kIntSlot);
        case 4: return Slot(kFloatSlot);
        case 5: return Slot(kNumericSlot);
        default: return Slot(kTsSlot);
      }
    }
    // Children are generated into locals: argument evaluation order is
    // unspecified in C++, and the trees must be identical on every compiler
    // for the fixed seed to mean anything.
    switch (rng_.Uniform(9)) {
      case 0: {
        ExprPtr l = GenNum(depth - 1);
        return Add(std::move(l), GenNum(depth - 1));
      }
      case 1: {
        ExprPtr l = GenNum(depth - 1);
        return Sub(std::move(l), GenNum(depth - 1));
      }
      case 2: {
        ExprPtr l = GenNum(depth - 1);
        return Mul(std::move(l), GenNum(depth - 1));
      }
      case 3: {
        ExprPtr l = GenNum(depth - 1);
        return Div(std::move(l), GenNum(depth - 1));
      }
      case 4: {
        ExprPtr l = GenNum(depth - 1);
        return Mod(std::move(l), GenNum(depth - 1));
      }
      case 5: return Neg(GenNum(depth - 1));
      case 6: return GenCase(depth, [&] { return GenNum(depth - 1); });
      case 7: {
        ExprPtr arg = GenAny(depth - 1);
        return CastTo(std::move(arg), rng_.Chance(0.5) ? ValueType::kInt
                                                       : ValueType::kFloat);
      }
      default:
        return Year(rng_.Chance(0.5) ? Slot(kTsSlot) : GenStr(depth - 1));
    }
  }

  ExprPtr GenStr(int depth) {
    if (depth <= 0 || rng_.Chance(0.4)) {
      switch (rng_.Uniform(3)) {
        case 0: {
          const auto& pool = StringPool();
          return ConstString(pool[rng_.Uniform(pool.size())]);
        }
        case 1: return ConstNull();
        default: return Slot(kStringSlot);
      }
    }
    switch (rng_.Uniform(3)) {
      case 0: {
        // Starts straddling the string (0 and negatives included), lengths 0+.
        ExprPtr str = GenStr(depth - 1);
        const int start = static_cast<int>(rng_.Range(-2, 6));
        const int len = static_cast<int>(rng_.Range(0, 5));
        return Substring(std::move(str), start, len);
      }
      case 1: return CastTo(GenAny(depth - 1), ValueType::kString);
      default: return GenCase(depth, [&] { return GenStr(depth - 1); });
    }
  }

  ExprPtr GenBool(int depth) {
    if (depth <= 0 || rng_.Chance(0.2)) {
      switch (rng_.Uniform(3)) {
        case 0: return ConstBool(rng_.Chance(0.5));
        case 1: return ConstNull();
        default: return Slot(kBoolSlot);
      }
    }
    switch (rng_.Uniform(11)) {
      case 0: {
        ExprPtr l = GenNum(depth - 1);
        return Cmp(std::move(l), GenNum(depth - 1));
      }
      case 1: {
        ExprPtr l = GenStr(depth - 1);
        return Cmp(std::move(l), GenStr(depth - 1));
      }
      case 2: {
        ExprPtr l = GenBool(depth - 1);
        return And(std::move(l), GenBool(depth - 1));
      }
      case 3: {
        ExprPtr l = GenBool(depth - 1);
        return Or(std::move(l), GenBool(depth - 1));
      }
      case 4: return Not(GenBool(depth - 1));
      case 5: {
        const bool is_null = rng_.Chance(0.5);
        ExprPtr arg = GenAny(depth - 1);
        return is_null ? IsNull(std::move(arg)) : IsNotNull(std::move(arg));
      }
      case 6: {
        const auto& pats = PatternPool();
        ExprPtr str = GenStr(depth - 1);
        const std::string& pat = pats[rng_.Uniform(pats.size())];
        return Like(std::move(str), pat, rng_.Chance(0.3));
      }
      case 7: {
        std::vector<int64_t> ints;
        for (int i = 0; i < 4; i++) ints.push_back(rng_.Range(-4, 4));
        return InListInt(GenNum(depth - 1), std::move(ints));
      }
      case 8: {
        const auto& pool = StringPool();
        std::vector<std::string> strings;
        for (int i = 0; i < 3; i++) strings.push_back(pool[rng_.Uniform(pool.size())]);
        return InList(GenStr(depth - 1), std::move(strings));
      }
      case 9: {
        ExprPtr e = GenNum(depth - 1);
        ExprPtr lo = GenNum(depth - 1);
        return Between(std::move(e), std::move(lo), GenNum(depth - 1));
      }
      default: return GenCase(depth, [&] { return GenBool(depth - 1); });
    }
  }

 private:
  template <typename ArmFn>
  ExprPtr GenCase(int depth, ArmFn arm) {
    std::vector<ExprPtr> operands;
    const int arms = static_cast<int>(rng_.Range(1, 2));
    for (int i = 0; i < arms; i++) {
      operands.push_back(GenBool(depth - 1));
      operands.push_back(arm());
    }
    if (rng_.Chance(0.7)) operands.push_back(arm());  // ELSE
    return Case(std::move(operands));
  }

  ExprPtr Cmp(ExprPtr l, ExprPtr r) {
    switch (rng_.Uniform(6)) {
      case 0: return Eq(std::move(l), std::move(r));
      case 1: return Ne(std::move(l), std::move(r));
      case 2: return Lt(std::move(l), std::move(r));
      case 3: return Le(std::move(l), std::move(r));
      case 4: return Gt(std::move(l), std::move(r));
      default: return Ge(std::move(l), std::move(r));
    }
  }

  Random& rng_;
};

bool BitIdentical(const Value& a, const Value& b) {
  if (a.type != b.type) return false;
  switch (a.type) {
    case ValueType::kNull:
      return true;
    case ValueType::kFloat: {
      uint64_t x, y;
      std::memcpy(&x, &a.d, sizeof(x));
      std::memcpy(&y, &b.d, sizeof(y));
      return x == y;
    }
    case ValueType::kString:
      return a.s == b.s;
    case ValueType::kNumeric:
      return a.i == b.i && a.scale == b.scale;
    default:
      return a.i == b.i;
  }
}

std::string Describe(const Value& v) {
  return std::string(ValueTypeName(v.type)) + ":" + v.ToString();
}

TEST(VectorizedFuzzTest, CompiledMatchesInterpreterOn100kEvals) {
  Random rng(20260805);
  TreeGen gen(rng);
  Arena arena;

  const size_t kRows = 128;
  const size_t kTargetEvals = 100000;
  const size_t kMaxTrees = 60000;

  size_t compiled_evals = 0;
  size_t compiled_trees = 0;
  size_t total_trees = 0;
  SelectionVector sel;
  std::vector<ColumnVector> slot_vecs(kSlotTypes.size());

  while (compiled_evals < kTargetEvals && total_trees < kMaxTrees) {
    total_trees++;
    ExprPtr tree = gen.GenAny(static_cast<int>(rng.Range(1, 5)));

    CompiledExpr program;
    if (!CompiledExpr::Compile(*tree, kSlotTypes, &program)) {
      continue;  // interpreter-only by design; not counted
    }
    compiled_trees++;

    // Fresh random rows for this tree.
    std::vector<std::vector<Value>> rows(kRows);
    for (size_t r = 0; r < kRows; r++) {
      rows[r].reserve(kSlotTypes.size());
      for (ValueType t : kSlotTypes) rows[r].push_back(RandomSlotValue(t, rng));
    }
    for (size_t s = 0; s < kSlotTypes.size(); s++) {
      slot_vecs[s].Reset(kSlotTypes[s]);
      for (size_t r = 0; r < kRows; r++) slot_vecs[s].SetValue(r, rows[r][s]);
    }
    sel.SetAll(kRows);

    const ColumnVector& result = program.Run(slot_vecs.data(), sel, &arena);
    for (size_t r = 0; r < kRows; r++) {
      Value expected = EvalExpr(*tree, rows[r].data(), &arena);
      Value actual = result.GetValue(r);
      ASSERT_TRUE(BitIdentical(expected, actual))
          << "tree #" << total_trees << " row " << r << ": interpreter="
          << Describe(expected) << " vectorized=" << Describe(actual);
      compiled_evals++;
    }
  }

  EXPECT_GE(compiled_evals, kTargetEvals)
      << "only " << compiled_trees << " of " << total_trees
      << " generated trees compiled";
}

// The SIMD tier and the scalar-fallback tier of the kernels must be
// interchangeable: the same compiled program over the same dense batch (the
// only shape the SIMD paths engage on) produces bit-identical result vectors
// with simd::SetEnabled(true) and (false), and both match the interpreter —
// nulls, division by zero, failed casts and NaN orderings included.
TEST(VectorizedFuzzTest, SimdAndScalarTiersAreBitIdentical) {
  Random rng(31337);
  TreeGen gen(rng);
  Arena arena;

  const size_t kRows = 128;
  const size_t kTargetEvals = 100000;
  const size_t kMaxTrees = 60000;

  size_t compiled_evals = 0;
  size_t total_trees = 0;
  SelectionVector sel;
  std::vector<ColumnVector> slot_vecs(kSlotTypes.size());
  std::vector<Value> simd_vals(kRows);

  while (compiled_evals < kTargetEvals && total_trees < kMaxTrees) {
    total_trees++;
    ExprPtr tree = gen.GenAny(static_cast<int>(rng.Range(1, 5)));

    CompiledExpr program;
    if (!CompiledExpr::Compile(*tree, kSlotTypes, &program)) continue;

    std::vector<std::vector<Value>> rows(kRows);
    for (size_t r = 0; r < kRows; r++) {
      rows[r].reserve(kSlotTypes.size());
      for (ValueType t : kSlotTypes) rows[r].push_back(RandomSlotValue(t, rng));
    }
    for (size_t s = 0; s < kSlotTypes.size(); s++) {
      slot_vecs[s].Reset(kSlotTypes[s]);
      for (size_t r = 0; r < kRows; r++) slot_vecs[s].SetValue(r, rows[r][s]);
    }

    // Run #1 with SIMD; snapshot (Run reuses its result vector), then run #2
    // on the scalar tier.
    sel.SetAll(kRows);
    simd::SetEnabled(true);
    const ColumnVector& simd_result = program.Run(slot_vecs.data(), sel, &arena);
    for (size_t r = 0; r < kRows; r++) simd_vals[r] = simd_result.GetValue(r);

    sel.SetAll(kRows);
    simd::SetEnabled(false);
    const ColumnVector& scalar_result =
        program.Run(slot_vecs.data(), sel, &arena);
    simd::SetEnabled(true);

    for (size_t r = 0; r < kRows; r++) {
      Value scalar_val = scalar_result.GetValue(r);
      ASSERT_TRUE(BitIdentical(simd_vals[r], scalar_val))
          << "tree #" << total_trees << " row " << r
          << ": simd=" << Describe(simd_vals[r])
          << " scalar-tier=" << Describe(scalar_val);
      Value expected = EvalExpr(*tree, rows[r].data(), &arena);
      ASSERT_TRUE(BitIdentical(expected, simd_vals[r]))
          << "tree #" << total_trees << " row " << r << ": interpreter="
          << Describe(expected) << " simd=" << Describe(simd_vals[r]);
      compiled_evals++;
    }
  }

  EXPECT_GE(compiled_evals, kTargetEvals);
}

// The selection vector must be respected: lanes outside the selection are
// never read (their register contents are unspecified), and every selected
// lane still matches the interpreter.
TEST(VectorizedFuzzTest, SparseSelectionMatchesInterpreter) {
  Random rng(7);
  TreeGen gen(rng);
  Arena arena;
  const size_t kRows = 512;

  size_t checked = 0;
  SelectionVector sel;
  std::vector<ColumnVector> slot_vecs(kSlotTypes.size());
  for (int t = 0; t < 400; t++) {
    ExprPtr tree = gen.GenAny(3);
    CompiledExpr program;
    if (!CompiledExpr::Compile(*tree, kSlotTypes, &program)) continue;

    std::vector<std::vector<Value>> rows(kRows);
    for (size_t r = 0; r < kRows; r++) {
      for (ValueType type : kSlotTypes) {
        rows[r].push_back(RandomSlotValue(type, rng));
      }
    }
    for (size_t s = 0; s < kSlotTypes.size(); s++) {
      slot_vecs[s].Reset(kSlotTypes[s]);
      for (size_t r = 0; r < kRows; r++) slot_vecs[s].SetValue(r, rows[r][s]);
    }
    // Keep roughly every third lane.
    sel.count = 0;
    for (size_t r = 0; r < kRows; r++) {
      if (rng.Chance(0.3)) sel.idx[sel.count++] = static_cast<uint16_t>(r);
    }

    const ColumnVector& result = program.Run(slot_vecs.data(), sel, &arena);
    for (size_t k = 0; k < sel.count; k++) {
      const size_t r = sel.idx[k];
      Value expected = EvalExpr(*tree, rows[r].data(), &arena);
      ASSERT_TRUE(BitIdentical(expected, result.GetValue(r)))
          << "tree #" << t << " lane " << r;
      checked++;
    }
  }
  EXPECT_GT(checked, 10000u);
}

}  // namespace
}  // namespace jsontiles::exec
