// Shard-level pruning in ScanExec (routing-key equality, shard bloom
// filters, shard zone maps — checked before any tile-level work), the
// shards_scanned/shards_pruned observability counters, SQL over sharded
// catalog tables, and global-rowid joins against sharded array side
// relations.

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "exec/scan.h"
#include "opt/query.h"
#include "sql/sql_parser.h"
#include "storage/loader.h"
#include "storage/shard.h"
#include "tiles/keypath.h"

namespace jsontiles::exec {
namespace {

using opt::QueryBlock;
using opt::TableRef;
using storage::LoadOptions;
using storage::Loader;
using storage::Relation;
using storage::ShardedRelation;
using storage::ShardOptions;
using storage::ShardRouting;
using storage::StorageMode;

std::string Path(std::initializer_list<const char*> keys) {
  std::string encoded;
  for (const char* k : keys) tiles::AppendKeySegment(&encoded, k);
  return encoded;
}

std::string Canonical(const RowSet& rows) {
  std::string out;
  for (const auto& row : rows) {
    for (const auto& v : row) out += (v.is_null() ? "∅" : v.ToString()) + "|";
    out += "\n";
  }
  return out;
}

/// 800 docs, hash-routed on integer "k" (80 distinct values) over 8 shards.
std::unique_ptr<ShardedRelation> HashSharded() {
  std::vector<std::string> docs;
  for (int i = 0; i < 800; i++) {
    docs.push_back(R"({"k":)" + std::to_string(i % 80) + R"(,"v":)" +
                   std::to_string(i) + "}");
  }
  ShardOptions options;
  options.shard_count = 8;
  options.routing = ShardRouting::kHashKey;
  options.routing_keys = {"k"};
  tiles::TileConfig config;
  config.tile_size = 32;
  return ShardedRelation::Load(docs, "hashed", StorageMode::kTiles, config, {},
                               options)
      .MoveValueOrDie();
}

TEST(ShardScanTest, RoutingKeyEqualityPrunesToOneShard) {
  auto sharded = HashSharded();
  sql::SqlCatalog catalog;
  catalog.sharded_tables["hashed"] = sharded.get();
  QueryContext ctx;
  auto result = sql::ExecuteSql(
      "SELECT t->>'v'::BigInt FROM hashed t WHERE t->>'k'::BigInt = 42 "
      "ORDER BY 1",
      catalog, ctx);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  // k=42 appears in rows 42, 122, ..., 762: ten rows.
  EXPECT_EQ(result.ValueOrDie().rows.size(), 10u);
  EXPECT_EQ(result.ValueOrDie().rows[0][0].int_value(), 42);
  // All equal keys live in one shard; the other 7 are pruned unscanned.
  EXPECT_EQ(ctx.shards_scanned, 1u);
  EXPECT_EQ(ctx.shards_pruned, 7u);
}

TEST(ShardScanTest, RoutingPruneDisabledWithTileSkippingOff) {
  auto sharded = HashSharded();
  sql::SqlCatalog catalog;
  catalog.sharded_tables["hashed"] = sharded.get();
  ExecOptions options;
  options.enable_tile_skipping = false;
  QueryContext ctx(options);
  auto result = sql::ExecuteSql(
      "SELECT t->>'v'::BigInt FROM hashed t WHERE t->>'k'::BigInt = 42 "
      "ORDER BY 1",
      catalog, ctx);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.ValueOrDie().rows.size(), 10u);
  EXPECT_EQ(ctx.shards_pruned, 0u);
  EXPECT_EQ(ctx.shards_scanned, 8u);
}

TEST(ShardScanTest, StringRoutingEqualityPrunes) {
  std::vector<std::string> docs;
  for (int i = 0; i < 400; i++) {
    docs.push_back(R"({"city":"c)" + std::to_string(i % 20) + R"(","v":)" +
                   std::to_string(i) + "}");
  }
  ShardOptions options;
  options.shard_count = 8;
  options.routing = ShardRouting::kHashKey;
  options.routing_keys = {"city"};
  auto sharded = ShardedRelation::Load(docs, "cities", StorageMode::kTiles, {},
                                       {}, options)
                     .MoveValueOrDie();
  sql::SqlCatalog catalog;
  catalog.sharded_tables["cities"] = sharded.get();
  QueryContext ctx;
  auto result = sql::ExecuteSql(
      "SELECT COUNT(*) FROM cities t WHERE t->>'city' = 'c7'", catalog, ctx);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result.ValueOrDie().rows[0][0].int_value(), 20);
  EXPECT_EQ(ctx.shards_scanned, 1u);
  EXPECT_EQ(ctx.shards_pruned, 7u);
}

TEST(ShardScanTest, BloomPrunesShardsWithoutThePath) {
  // Route on a type marker: "a"-docs and "b"-docs land on (at most) two home
  // shards. A scan requiring a_key can only touch shards holding "a" docs —
  // the rest are pruned by the shard bloom filter.
  std::vector<std::string> docs;
  for (int i = 0; i < 300; i++) {
    if (i % 2 == 0) {
      docs.push_back(R"({"t":"a","a_key":)" + std::to_string(i) + "}");
    } else {
      docs.push_back(R"({"t":"b","b_key":)" + std::to_string(i) + "}");
    }
  }
  ShardOptions options;
  options.shard_count = 8;
  options.routing = ShardRouting::kHashKey;
  options.routing_keys = {"t"};
  tiles::TileConfig config;
  config.tile_size = 32;
  auto sharded = ShardedRelation::Load(docs, "marked", StorageMode::kTiles,
                                       config, {}, options)
                     .MoveValueOrDie();
  size_t shards_with_a = 0;
  for (size_t s = 0; s < sharded->shard_count(); s++) {
    if (sharded->shard_stats(s).MayContainPath(Path({"a_key"}))) {
      shards_with_a++;
    }
  }
  ASSERT_GE(shards_with_a, 1u);
  ASSERT_LE(shards_with_a, 2u);  // only hash("a") % 8 can hold a_key docs

  sql::SqlCatalog catalog;
  catalog.sharded_tables["marked"] = sharded.get();
  QueryContext ctx;
  auto result = sql::ExecuteSql(
      "SELECT COUNT(*) FROM marked m WHERE m->>'a_key'::BigInt IS NOT NULL",
      catalog, ctx);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result.ValueOrDie().rows[0][0].int_value(), 150);
  EXPECT_EQ(ctx.shards_scanned, shards_with_a);
  EXPECT_EQ(ctx.shards_pruned, 8u - shards_with_a);
}

TEST(ShardScanTest, ZoneMapsPruneDisjointValueRanges) {
  // Each region's values occupy a disjoint range; routing on the region
  // string gives shards whose zone maps cover only their regions' ranges. A
  // range predicate selecting one region's values prunes the others.
  std::vector<std::string> docs;
  for (int r = 0; r < 8; r++) {
    for (int j = 0; j < 40; j++) {
      docs.push_back(R"({"region":"r)" + std::to_string(r) + R"(","v":)" +
                     std::to_string(r * 1000 + j) + "}");
    }
  }
  ShardOptions options;
  options.shard_count = 8;
  options.routing = ShardRouting::kHashKey;
  options.routing_keys = {"region"};
  tiles::TileConfig config;
  config.tile_size = 32;
  auto sharded = ShardedRelation::Load(docs, "regions", StorageMode::kTiles,
                                       config, {}, options)
                     .MoveValueOrDie();
  sql::SqlCatalog catalog;
  catalog.sharded_tables["regions"] = sharded.get();
  QueryContext ctx;
  auto result = sql::ExecuteSql(
      "SELECT COUNT(*) FROM regions t WHERE t->>'v'::BigInt < 40", catalog,
      ctx);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  // Only region r0's docs satisfy v < 40.
  EXPECT_EQ(result.ValueOrDie().rows[0][0].int_value(), 40);
  // Shards without region r0 have min(v) >= 1000: zone-pruned.
  EXPECT_GE(ctx.shards_pruned, 1u);
  EXPECT_EQ(ctx.shards_scanned + ctx.shards_pruned, 8u);
  EXPECT_LE(ctx.shards_scanned, 7u);
}

TEST(ShardScanTest, PruningNeverChangesAnswers) {
  auto sharded = HashSharded();
  // Compare every equality probe against the same scan with skipping off.
  for (int key = 0; key < 80; key += 13) {
    std::string statement =
        "SELECT t->>'v'::BigInt FROM hashed t WHERE t->>'k'::BigInt = " +
        std::to_string(key) + " ORDER BY 1";
    sql::SqlCatalog catalog;
    catalog.sharded_tables["hashed"] = sharded.get();
    QueryContext pruned_ctx;
    ExecOptions no_skip;
    no_skip.enable_tile_skipping = false;
    QueryContext full_ctx(no_skip);
    auto a = sql::ExecuteSql(statement, catalog, pruned_ctx);
    auto b = sql::ExecuteSql(statement, catalog, full_ctx);
    ASSERT_TRUE(a.ok() && b.ok());
    EXPECT_EQ(Canonical(a.ValueOrDie().rows), Canonical(b.ValueOrDie().rows))
        << statement;
  }
}

TEST(ShardScanTest, ExplainAnalyzeReportsShardCounters) {
  auto sharded = HashSharded();
  sql::SqlCatalog catalog;
  catalog.sharded_tables["hashed"] = sharded.get();
  QueryContext ctx;
  auto result = sql::ExecuteSql(
      "EXPLAIN ANALYZE SELECT COUNT(*) FROM hashed t "
      "WHERE t->>'k'::BigInt = 3",
      catalog, ctx);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  std::string plan;
  for (const auto& row : result.ValueOrDie().rows) {
    plan += std::string(row[0].s) + "\n";
  }
  EXPECT_NE(plan.find("Shards scanned: 1, pruned: 7"), std::string::npos)
      << plan;
}

TEST(ShardScanTest, GlobalRowIdsAreUniqueAcrossShards) {
  auto sharded = HashSharded();
  QueryBlock q;
  q.AddTable(TableRef::Sharded("t", sharded.get()));
  q.GroupBy({exec::RowId("t")});
  q.Aggregate(AggSpec::CountStar());
  QueryContext ctx;
  auto rows = q.Execute(ctx);
  // One group per document: no two rows across shards share a rowid.
  EXPECT_EQ(rows.size(), 800u);
  for (const auto& row : rows) {
    EXPECT_EQ(row[1].int_value(), 1) << "duplicate rowid " << row[0].i;
  }
}

TEST(ShardScanTest, SideRelationJoinMatchesUnsharded) {
  std::vector<std::string> docs;
  for (int i = 0; i < 600; i++) {
    std::string tags = i % 3 == 0 ? R"([{"t":"hot"},{"t":"new"}])"
                                  : R"([{"t":"cold"},{"t":"old"}])";
    docs.push_back(R"({"id":)" + std::to_string(i) + R"(,"grp":)" +
                   std::to_string(i % 5) + R"(,"tags":)" + tags + "}");
  }
  LoadOptions load_options;
  load_options.extract_arrays = true;
  load_options.array_min_avg_elements = 1.0;
  load_options.array_min_presence = 0.3;
  std::string tags_path = Path({"tags"});

  auto run = [&](const Relation* base_rel, const Relation* side_rel,
                 const ShardedRelation* sharded) {
    QueryContext ctx;
    // Stage 1: parent rowids of docs with a "hot" tag.
    QueryBlock sb;
    if (sharded != nullptr) {
      sb.AddTable(TableRef::ShardedSide(
          "e", sharded, tags_path,
          exec::Eq(exec::Access("e", {"t"}, ValueType::kString),
                   exec::ConstString("hot"))));
    } else {
      sb.AddTable(TableRef::Rel(
          "e", side_rel,
          exec::Eq(exec::Access("e", {"t"}, ValueType::kString),
                   exec::ConstString("hot"))));
    }
    sb.GroupBy({exec::Access("e", {"_rowid"}, ValueType::kInt)});
    sb.Aggregate(AggSpec::CountStar());
    RowSet matches = sb.Execute(ctx);
    // Stage 2: join back to the base on the global rowid, group by grp.
    QueryBlock q;
    q.AddTable(TableRef::Rows("m", &matches, {"rowid", "hits"}));
    if (sharded != nullptr) {
      q.AddTable(TableRef::Sharded("t", sharded));
    } else {
      q.AddTable(TableRef::Rel("t", base_rel));
    }
    q.AddJoin(exec::Access("m", {"rowid"}, ValueType::kInt), exec::RowId("t"));
    q.GroupBy({exec::Access("t", {"grp"}, ValueType::kInt)});
    q.Aggregate(AggSpec::CountStar());
    q.OrderBy(Slot(0));
    return Canonical(q.Execute(ctx));
  };

  Loader loader(StorageMode::kTiles, {}, load_options);
  auto plain = loader.Load(docs, "base").MoveValueOrDie();
  const Relation* side = plain->FindSideRelation(tags_path);
  ASSERT_NE(side, nullptr);
  std::string expected = run(plain.get(), side, nullptr);
  ASSERT_FALSE(expected.empty());

  for (size_t shards : {size_t{2}, size_t{3}}) {
    ShardOptions shard_options;
    shard_options.shard_count = shards;
    auto sharded = ShardedRelation::Load(docs, "base", StorageMode::kTiles, {},
                                         load_options, shard_options)
                       .MoveValueOrDie();
    ASSERT_TRUE(sharded->HasSideRelation(tags_path));
    EXPECT_EQ(run(nullptr, nullptr, sharded.get()), expected)
        << "shards=" << shards;
  }
}

}  // namespace
}  // namespace jsontiles::exec
