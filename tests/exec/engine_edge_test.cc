// Edge cases and failure injection across the engine: empty relations,
// degenerate plans, adversarial documents, huge values, cross-mode agreement
// on pathological data.

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "exec/operators.h"
#include "opt/query.h"
#include "storage/loader.h"
#include "util/random.h"

namespace jsontiles::exec {
namespace {

using opt::QueryBlock;
using opt::TableRef;
using storage::Loader;
using storage::Relation;
using storage::StorageMode;

std::unique_ptr<Relation> Load(const std::vector<std::string>& docs,
                               StorageMode mode = StorageMode::kTiles,
                               tiles::TileConfig config = {}) {
  Loader loader(mode, config);
  return loader.Load(docs, "t").MoveValueOrDie();
}

TEST(EngineEdgeTest, EmptyRelation) {
  auto rel = Load({});
  QueryContext ctx;
  QueryBlock q;
  q.AddTable(TableRef::Rel("t", rel.get()));
  q.GroupBy({});
  q.Aggregate(AggSpec::CountStar());
  auto rows = q.Execute(ctx);
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0][0].int_value(), 0);
}

TEST(EngineEdgeTest, SingleDocumentRelation) {
  auto rel = Load({R"({"a":1})"});
  QueryContext ctx;
  QueryBlock q;
  q.AddTable(TableRef::Rel("t", rel.get()));
  q.Select({Access("t", {"a"}, ValueType::kInt)});
  auto rows = q.Execute(ctx);
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0][0].int_value(), 1);
}

TEST(EngineEdgeTest, LimitZeroAndLimitBeyondSize) {
  auto rel = Load({R"({"a":1})", R"({"a":2})"});
  QueryContext ctx;
  QueryBlock q;
  q.AddTable(TableRef::Rel("t", rel.get()));
  q.Select({Access("t", {"a"}, ValueType::kInt)});
  q.Limit(0);
  EXPECT_TRUE(q.Execute(ctx).empty());
  QueryBlock q2;
  q2.AddTable(TableRef::Rel("t", rel.get()));
  q2.Select({Access("t", {"a"}, ValueType::kInt)});
  q2.Limit(100);
  EXPECT_EQ(q2.Execute(ctx).size(), 2u);
}

TEST(EngineEdgeTest, CrossJoinWithoutEdges) {
  auto rel = Load({R"({"a":1})", R"({"a":2})", R"({"b":"x"})"});
  QueryContext ctx;
  QueryBlock q;
  q.AddTable(TableRef::Rel("l", rel.get(),
                           IsNotNull(Access("l", {"a"}, ValueType::kInt))));
  q.AddTable(TableRef::Rel("r", rel.get(),
                           IsNotNull(Access("r", {"b"}, ValueType::kString))));
  q.GroupBy({});
  q.Aggregate(AggSpec::CountStar());
  auto rows = q.Execute(ctx);
  EXPECT_EQ(rows[0][0].int_value(), 2);  // 2 x 1 cross product
}

TEST(EngineEdgeTest, DeeplyNestedAccess) {
  std::string doc = R"({"a":{"b":{"c":{"d":{"e":{"f":42}}}}}})";
  auto rel = Load(std::vector<std::string>(10, doc));
  QueryContext ctx;
  QueryBlock q;
  q.AddTable(TableRef::Rel("t", rel.get()));
  q.GroupBy({});
  q.Aggregate(AggSpec::Sum(
      Access("t", {"a", "b", "c", "d", "e", "f"}, ValueType::kInt)));
  auto rows = q.Execute(ctx);
  EXPECT_EQ(rows[0][0].int_value(), 420);
}

TEST(EngineEdgeTest, UnicodeKeysAndValues) {
  std::vector<std::string> docs(20, "{\"n\\u00e4me\":\"J\\u00fcrgen\",\"x\":1}");
  auto rel = Load(docs);
  QueryContext ctx;
  QueryBlock q;
  q.AddTable(TableRef::Rel("t", rel.get()));
  q.GroupBy({Access("t", {"n\xc3\xa4me"}, ValueType::kString)});
  q.Aggregate(AggSpec::CountStar());
  auto rows = q.Execute(ctx);
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0][0].string_value(), "J\xc3\xbcrgen");
  EXPECT_EQ(rows[0][1].int_value(), 20);
}

TEST(EngineEdgeTest, VeryLongStringsSurvive) {
  std::string big(100000, 'x');
  std::vector<std::string> docs(5, R"({"id":1,"blob":")" + big + R"("})");
  for (StorageMode mode : {StorageMode::kJsonb, StorageMode::kTiles}) {
    auto rel = Load(docs, mode);
    QueryContext ctx;
    QueryBlock q;
    q.AddTable(TableRef::Rel("t", rel.get()));
    q.Select({Access("t", {"blob"}, ValueType::kString)});
    auto rows = q.Execute(ctx);
    ASSERT_EQ(rows.size(), 5u);
    EXPECT_EQ(rows[0][0].string_value().size(), big.size());
  }
}

TEST(EngineEdgeTest, HeterogeneousTypeSoup) {
  // The same key carries six different types; every mode must agree.
  std::vector<std::string> docs = {
      R"({"v":1})",          R"({"v":2.5})",      R"({"v":"three"})",
      R"({"v":true})",       R"({"v":null})",     R"({"v":[1,2]})",
      R"({"v":{"w":7}})",    R"({"v":"19.99"})",  R"({"v":4})",
      R"({"v":5})"};
  std::vector<std::string> expectations;
  for (StorageMode mode : {StorageMode::kJsonText, StorageMode::kJsonb,
                           StorageMode::kSinew, StorageMode::kTiles}) {
    auto rel = Load(docs, mode);
    QueryContext ctx;
    QueryBlock q;
    q.AddTable(TableRef::Rel("t", rel.get()));
    q.GroupBy({});
    q.Aggregate(AggSpec::Sum(Access("t", {"v"}, ValueType::kFloat)));
    q.Aggregate(AggSpec::Count(Access("t", {"v"}, ValueType::kString)));
    auto rows = q.Execute(ctx);
    // Sum over castable-to-float values: 1 + 2.5 + 19.99 + 4 + 5 (+bool?).
    std::string sum = rows[0][0].ToString();
    std::string count = rows[0][1].ToString();
    expectations.push_back(sum + "/" + count);
  }
  for (size_t i = 1; i < expectations.size(); i++) {
    EXPECT_EQ(expectations[i], expectations[0]);
  }
}

TEST(EngineEdgeTest, TinyTilesManyPartitions) {
  tiles::TileConfig config;
  config.tile_size = 4;
  config.partition_size = 2;
  std::vector<std::string> docs;
  for (int i = 0; i < 103; i++) {  // deliberately not a multiple of 8
    docs.push_back(R"({"i":)" + std::to_string(i) + "}");
  }
  auto rel = Load(docs, StorageMode::kTiles, config);
  EXPECT_EQ(rel->tiles().size(), 26u);
  QueryContext ctx;
  QueryBlock q;
  q.AddTable(TableRef::Rel("t", rel.get()));
  q.GroupBy({});
  q.Aggregate(AggSpec::Sum(Access("t", {"i"}, ValueType::kInt)));
  EXPECT_EQ(q.Execute(ctx)[0][0].int_value(), 103 * 102 / 2);
}

TEST(EngineEdgeTest, AllNullColumnAggregates) {
  std::vector<std::string> docs(50, R"({"present":1})");
  auto rel = Load(docs);
  QueryContext ctx;
  QueryBlock q;
  q.AddTable(TableRef::Rel("t", rel.get()));
  q.GroupBy({});
  q.Aggregate(AggSpec::Sum(Access("t", {"absent"}, ValueType::kInt)));
  q.Aggregate(AggSpec::Min(Access("t", {"absent"}, ValueType::kInt)));
  q.Aggregate(AggSpec::Count(Access("t", {"absent"}, ValueType::kInt)));
  auto rows = q.Execute(ctx);
  EXPECT_TRUE(rows[0][0].is_null());
  EXPECT_TRUE(rows[0][1].is_null());
  EXPECT_EQ(rows[0][2].int_value(), 0);
}

TEST(EngineEdgeTest, DuplicateJoinKeysExplode) {
  // 10 x 10 duplicate keys -> 100 join results; checks multimap behavior.
  std::vector<std::string> docs;
  for (int i = 0; i < 10; i++) docs.push_back(R"({"l":7})");
  for (int i = 0; i < 10; i++) docs.push_back(R"({"r":7})");
  auto rel = Load(docs);
  QueryContext ctx;
  QueryBlock q;
  q.AddTable(TableRef::Rel("a", rel.get(),
                           IsNotNull(Access("a", {"l"}, ValueType::kInt))));
  q.AddTable(TableRef::Rel("b", rel.get(),
                           IsNotNull(Access("b", {"r"}, ValueType::kInt))));
  q.AddJoin(Access("a", {"l"}, ValueType::kInt),
            Access("b", {"r"}, ValueType::kInt));
  q.GroupBy({});
  q.Aggregate(AggSpec::CountStar());
  EXPECT_EQ(q.Execute(ctx)[0][0].int_value(), 100);
}

TEST(EngineEdgeTest, ParallelAggregationMatchesSerial) {
  Random rng(11);
  std::vector<std::string> docs;
  for (int i = 0; i < 40000; i++) {
    docs.push_back(R"({"g":)" + std::to_string(rng.Uniform(13)) + R"(,"v":)" +
                   std::to_string(rng.Uniform(1000)) + "}");
  }
  auto rel = Load(docs);
  auto run = [&](size_t threads) {
    ExecOptions options;
    options.num_threads = threads;
    QueryContext ctx(options);
    QueryBlock q;
    q.AddTable(TableRef::Rel("t", rel.get()));
    q.GroupBy({Access("t", {"g"}, ValueType::kInt)});
    q.Aggregate(AggSpec::Sum(Access("t", {"v"}, ValueType::kInt)));
    q.Aggregate(AggSpec::CountStar());
    q.OrderBy(Slot(0));
    RowSet rows = q.Execute(ctx);
    std::vector<std::string> out;
    for (const auto& r : rows) {
      out.push_back(r[0].ToString() + "," + r[1].ToString() + "," + r[2].ToString());
    }
    return out;
  };
  EXPECT_EQ(run(1), run(4));
}

}  // namespace
}  // namespace jsontiles::exec
