#include "exec/expression.h"

#include <gtest/gtest.h>

#include "exec/scan.h"

namespace jsontiles::exec {
namespace {

Value Eval(const ExprPtr& e) {
  Arena arena;
  return EvalExpr(*e, nullptr, &arena);
}

TEST(ExprTest, Constants) {
  EXPECT_EQ(Eval(ConstInt(42)).int_value(), 42);
  EXPECT_DOUBLE_EQ(Eval(ConstFloat(2.5)).float_value(), 2.5);
  EXPECT_EQ(Eval(ConstString("hi")).string_value(), "hi");
  EXPECT_TRUE(Eval(ConstNull()).is_null());
  EXPECT_EQ(Eval(ConstDate("1998-12-01")).type, ValueType::kTimestamp);
}

TEST(ExprTest, Arithmetic) {
  EXPECT_EQ(Eval(Add(ConstInt(2), ConstInt(3))).int_value(), 5);
  EXPECT_EQ(Eval(Mul(ConstInt(4), ConstInt(5))).int_value(), 20);
  EXPECT_DOUBLE_EQ(Eval(Div(ConstInt(7), ConstInt(2))).float_value(), 3.5);
  EXPECT_DOUBLE_EQ(Eval(Add(ConstFloat(1.5), ConstInt(1))).float_value(), 2.5);
  EXPECT_EQ(Eval(Mod(ConstInt(7), ConstInt(3))).int_value(), 1);
  EXPECT_TRUE(Eval(Div(ConstInt(1), ConstInt(0))).is_null());
  EXPECT_TRUE(Eval(Add(ConstInt(1), ConstNull())).is_null());
  EXPECT_EQ(Eval(Neg(ConstInt(5))).int_value(), -5);
}

TEST(ExprTest, Comparisons) {
  EXPECT_TRUE(Eval(Lt(ConstInt(1), ConstInt(2))).bool_value());
  EXPECT_TRUE(Eval(Ge(ConstFloat(2.0), ConstInt(2))).bool_value());
  EXPECT_TRUE(Eval(Eq(ConstString("a"), ConstString("a"))).bool_value());
  EXPECT_FALSE(Eval(Eq(ConstString("a"), ConstString("b"))).bool_value());
  EXPECT_TRUE(Eval(Lt(ConstDate("1998-01-01"), ConstDate("1999-01-01"))).bool_value());
  EXPECT_TRUE(Eval(Eq(ConstInt(1), ConstNull())).is_null());
  // Incomparable types yield null, not an error.
  EXPECT_TRUE(Eval(Eq(ConstString("1"), ConstInt(1))).is_null());
}

TEST(ExprTest, ThreeValuedLogic) {
  ExprPtr t = ConstBool(true), f = ConstBool(false), n = ConstNull();
  EXPECT_FALSE(Eval(And(t, f)).bool_value());
  EXPECT_TRUE(Eval(And(t, t)).bool_value());
  EXPECT_TRUE(Eval(And(n, n)).is_null());
  EXPECT_FALSE(Eval(And(n, f)).bool_value());  // null AND false = false
  EXPECT_TRUE(Eval(Or(n, t)).bool_value());    // null OR true = true
  EXPECT_TRUE(Eval(Or(n, f)).is_null());
  EXPECT_TRUE(Eval(Not(n)).is_null());
  EXPECT_FALSE(Eval(Not(t)).bool_value());
  EXPECT_TRUE(Eval(IsNull(n)).bool_value());
  EXPECT_TRUE(Eval(IsNotNull(t)).bool_value());
}

TEST(ExprTest, LikePatterns) {
  EXPECT_TRUE(LikeMatch("PROMO BRUSHED", "PROMO%"));
  EXPECT_FALSE(LikeMatch("SMALL PROMO", "PROMO%"));
  EXPECT_TRUE(LikeMatch("LARGE BRASS", "%BRASS"));
  EXPECT_TRUE(LikeMatch("the green thing", "%green%"));
  EXPECT_FALSE(LikeMatch("the red thing", "%green%"));
  EXPECT_TRUE(LikeMatch("special packages requests", "%special%requests%"));
  EXPECT_TRUE(LikeMatch("abc", "a_c"));
  EXPECT_FALSE(LikeMatch("abbc", "a_c"));
  EXPECT_TRUE(LikeMatch("", "%"));
  EXPECT_FALSE(LikeMatch("", "_"));
  EXPECT_TRUE(LikeMatch("x", "%%x%"));
  EXPECT_TRUE(Eval(Like(ConstString("forest green"), "forest%")).bool_value());
  EXPECT_FALSE(
      Eval(Like(ConstString("forest green"), "forest%", /*negated=*/true))
          .bool_value());
}

TEST(ExprTest, InAndBetween) {
  EXPECT_TRUE(
      Eval(InList(ConstString("b"), {"a", "b", "c"})).bool_value());
  EXPECT_FALSE(Eval(InList(ConstString("z"), {"a", "b"})).bool_value());
  EXPECT_TRUE(Eval(InListInt(ConstInt(31), {9, 19, 31})).bool_value());
  EXPECT_TRUE(
      Eval(Between(ConstInt(5), ConstInt(1), ConstInt(10))).bool_value());
  EXPECT_FALSE(
      Eval(Between(ConstInt(11), ConstInt(1), ConstInt(10))).bool_value());
}

TEST(ExprTest, CaseExpression) {
  // CASE WHEN false THEN 1 WHEN true THEN 2 ELSE 3 END
  EXPECT_EQ(Eval(Case({ConstBool(false), ConstInt(1), ConstBool(true),
                       ConstInt(2), ConstInt(3)}))
                .int_value(),
            2);
  EXPECT_EQ(Eval(Case({ConstBool(false), ConstInt(1), ConstInt(3)})).int_value(), 3);
  EXPECT_TRUE(Eval(Case({ConstBool(false), ConstInt(1)})).is_null());
}

TEST(ExprTest, SubstringAndYear) {
  EXPECT_EQ(Eval(Substring(ConstString("13-345-987"), 1, 2)).string_value(), "13");
  EXPECT_EQ(Eval(Substring(ConstString("ab"), 1, 5)).string_value(), "ab");
  EXPECT_EQ(Eval(Substring(ConstString("abc"), 9, 2)).string_value(), "");
  EXPECT_EQ(Eval(Year(ConstDate("1995-03-04"))).int_value(), 1995);
  EXPECT_EQ(Eval(Year(ConstString("1997-06-07"))).int_value(), 1997);
  EXPECT_TRUE(Eval(Year(ConstString("nope"))).is_null());
}

TEST(ExprTest, SlotRefs) {
  Arena arena;
  Row row = {Value::Int(10), Value::String("xy")};
  EXPECT_EQ(EvalExpr(*Add(Slot(0), ConstInt(1)), row.data(), &arena).int_value(), 11);
  EXPECT_EQ(EvalExpr(*Slot(1), row.data(), &arena).string_value(), "xy");
}

TEST(ExprTest, CastValueMatrix) {
  Arena arena;
  EXPECT_EQ(CastValue(Value::String("123"), ValueType::kInt, &arena).int_value(), 123);
  EXPECT_TRUE(CastValue(Value::String("12x"), ValueType::kInt, &arena).is_null());
  EXPECT_DOUBLE_EQ(
      CastValue(Value::String("1.5"), ValueType::kFloat, &arena).float_value(), 1.5);
  EXPECT_EQ(CastValue(Value::Int(5), ValueType::kString, &arena).string_value(), "5");
  EXPECT_EQ(CastValue(Value::Float(2.5), ValueType::kInt, &arena).int_value(), 2);
  EXPECT_EQ(CastValue(Value::String("2020-06-01"), ValueType::kTimestamp, &arena).type,
            ValueType::kTimestamp);
  Numeric n{1999, 2};
  EXPECT_EQ(CastValue(Value::Num(n), ValueType::kString, &arena).string_value(),
            "19.99");
  EXPECT_DOUBLE_EQ(CastValue(Value::Num(n), ValueType::kFloat, &arena).float_value(),
                   19.99);
  EXPECT_TRUE(CastValue(Value::Null(), ValueType::kInt, &arena).is_null());
}

TEST(ExprTest, CollectAndRewriteAccesses) {
  ExprPtr a1 = Access("t", {"l_orderkey"}, ValueType::kInt);
  ExprPtr a2 = Access("t", {"l_price"}, ValueType::kFloat);
  ExprPtr filter = And(Gt(a2, ConstFloat(10.0)), Eq(a1, ConstInt(5)));
  std::vector<ExprPtr> accesses;
  CollectAccesses(filter, &accesses);
  ASSERT_EQ(accesses.size(), 2u);
  // Duplicate accesses collapse.
  ExprPtr dup = Access("t", {"l_price"}, ValueType::kFloat);
  CollectAccesses(dup, &accesses);
  EXPECT_EQ(accesses.size(), 2u);

  ExprPtr rewritten = RewriteAccessesToSlots(filter, [&](const Expr& access) {
    for (size_t i = 0; i < accesses.size(); i++) {
      if (accesses[i]->path == access.path) return static_cast<int>(i);
    }
    return -1;
  });
  Arena arena;
  // Collection order is tree order: a2 (l_price) first, then a1 (l_orderkey).
  Row row = {Value::Float(20.0), Value::Int(5)};
  EXPECT_TRUE(EvalExpr(*rewritten, row.data(), &arena).bool_value());
  Row row2 = {Value::Float(5.0), Value::Int(5)};
  EXPECT_FALSE(EvalExpr(*rewritten, row2.data(), &arena).bool_value());
}

TEST(ExprTest, NullRejectingPaths) {
  ExprPtr a1 = Access("t", {"a"}, ValueType::kInt);
  ExprPtr a2 = Access("t", {"b"}, ValueType::kString);
  ExprPtr a3 = Access("u", {"c"}, ValueType::kInt);
  ExprPtr filter = And(Gt(a1, ConstInt(1)),
                       And(Like(a2, "x%"), Eq(a3, ConstInt(1))));
  std::vector<std::string> paths;
  CollectNullRejectingPaths(filter, "t", &paths);
  EXPECT_EQ(paths.size(), 2u);  // a and b of table t; c belongs to u
  paths.clear();
  // OR branches are not null-rejecting.
  CollectNullRejectingPaths(Or(Gt(a1, ConstInt(1)), ConstBool(true)), "t", &paths);
  EXPECT_TRUE(paths.empty());
  // IS NULL is not null-rejecting; IS NOT NULL is.
  paths.clear();
  CollectNullRejectingPaths(IsNull(a1), "t", &paths);
  EXPECT_TRUE(paths.empty());
  CollectNullRejectingPaths(IsNotNull(a1), "t", &paths);
  EXPECT_EQ(paths.size(), 1u);
}

}  // namespace
}  // namespace jsontiles::exec
