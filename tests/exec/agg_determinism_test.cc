// ExactFloatSum (exec/float_sum.h) underpins the sharded/unsharded
// bit-identity guarantee: SUM/AVG must not depend on the order rows are
// merged. These tests permute adversarial inputs (catastrophic cancellation,
// 1e16-magnitude spreads, half-ulp rounding edges), split them into
// arbitrary Merge partitions, and check the aggregate layer end to end.

#include <algorithm>
#include <cmath>
#include <limits>
#include <random>
#include <vector>

#include <gtest/gtest.h>

#include "exec/float_sum.h"
#include "exec/operators.h"
#include "exec/scan.h"

namespace jsontiles::exec {
namespace {

double SumOf(const std::vector<double>& xs) {
  ExactFloatSum sum;
  for (double x : xs) sum.Add(x);
  return sum.Round();
}

TEST(ExactFloatSumTest, EmptyAndSingle) {
  ExactFloatSum sum;
  EXPECT_TRUE(sum.empty());
  EXPECT_EQ(sum.Round(), 0.0);
  sum.Add(3.25);
  EXPECT_FALSE(sum.empty());
  EXPECT_EQ(sum.Round(), 3.25);
}

TEST(ExactFloatSumTest, CancellationIsExact) {
  // 1e16 + 1 - 1e16 loses the 1 under naive double addition order (1e16 + 1
  // rounds to 1e16); the exact sum keeps it in a partial.
  EXPECT_EQ(SumOf({1e16, 1.0, -1e16}), 1.0);
  EXPECT_EQ(SumOf({1.0, 1e16, -1e16}), 1.0);
  EXPECT_EQ(SumOf({-1e16, 1e16, 1.0}), 1.0);
}

TEST(ExactFloatSumTest, OrderIndependentOnAdversarialInputs) {
  std::vector<double> base = {1e16,    -1e16, 1.0,     1e-3,  -1e-3,
                              3.14159, 2e15,  -2e15,   1e100, -1e100,
                              7.0,     0.1,   0.2,     0.3,   -0.6,
                              1e-300,  5e7,   -2.5e-9, 42.0,  -41.875};
  const double expected = SumOf(base);
  std::mt19937 rng(7);
  for (int trial = 0; trial < 500; trial++) {
    std::shuffle(base.begin(), base.end(), rng);
    ASSERT_EQ(SumOf(base), expected) << "trial " << trial;
  }
}

TEST(ExactFloatSumTest, MergeEqualsSequential) {
  std::vector<double> values;
  std::mt19937 rng(11);
  std::uniform_real_distribution<double> mag(-30, 30);
  for (int i = 0; i < 400; i++) {
    values.push_back(std::ldexp(static_cast<double>(rng()) / 1e9 - 2.0,
                                static_cast<int>(mag(rng))));
  }
  const double expected = SumOf(values);
  // Any partition into per-worker partial sums merges to the same bits.
  for (size_t parts : {size_t{2}, size_t{3}, size_t{7}, size_t{64}}) {
    std::vector<ExactFloatSum> partials(parts);
    for (size_t i = 0; i < values.size(); i++) {
      partials[i % parts].Add(values[i]);
    }
    ExactFloatSum total;
    for (const auto& p : partials) total.Merge(p);
    EXPECT_EQ(total.Round(), expected) << parts << " partitions";
  }
}

TEST(ExactFloatSumTest, HalfUlpRounding) {
  // The fsum correction case: the discarded tail must nudge the top partial
  // when the naive rounding of the top two went the wrong way. Compare
  // against long double accumulation on inputs small enough for it to be
  // exact.
  std::vector<double> values;
  for (int i = 0; i < 1000; i++) {
    values.push_back(std::ldexp(1.0, -(i % 60)));
  }
  long double reference = 0.0L;
  for (double v : values) reference += static_cast<long double>(v);
  EXPECT_EQ(SumOf(values), static_cast<double>(reference));
}

TEST(ExactFloatSumTest, NonFiniteSticky) {
  const double inf = std::numeric_limits<double>::infinity();
  EXPECT_EQ(SumOf({1.0, inf, 2.0}), inf);
  EXPECT_EQ(SumOf({-inf, 5.0}), -inf);
  EXPECT_TRUE(std::isnan(SumOf({inf, -inf})));
  EXPECT_TRUE(std::isnan(SumOf({1.0, std::nan(""), 2.0})));
  // Commutative across merges too.
  ExactFloatSum a, b;
  a.Add(inf);
  b.Add(-inf);
  a.Merge(b);
  EXPECT_TRUE(std::isnan(a.Round()));
}

TEST(ExactFloatSumTest, NegativeZeroAndZeroRuns) {
  EXPECT_EQ(SumOf({0.0, -0.0, 0.0}), 0.0);
  EXPECT_EQ(SumOf({-1.5, 1.5}), 0.0);
}

// The aggregate layer: SUM/AVG over the same multiset of rows in different
// orders produce identical bits (this is what sharded scans rely on — their
// chunk order differs from the unsharded document order).
TEST(AggDeterminismTest, SumAndAvgAreOrderIndependent) {
  std::vector<double> values = {1e15, 0.1, -1e15, 0.2, 3.7,
                                -0.3, 9e14, 0.4,  -9e14};
  auto run = [&](const std::vector<double>& vs) {
    RowSet input;
    for (double v : vs) input.push_back({Value::Float(v)});
    QueryContext ctx;
    std::vector<AggSpec> aggs = {AggSpec::Sum(Slot(0)), AggSpec::Avg(Slot(0))};
    RowSet out = AggregateExec(input, {}, aggs, ctx);
    return std::make_pair(out[0][0].d, out[0][1].d);
  };
  auto expected = run(values);
  std::mt19937 rng(3);
  for (int trial = 0; trial < 50; trial++) {
    std::shuffle(values.begin(), values.end(), rng);
    auto got = run(values);
    EXPECT_EQ(got.first, expected.first);
    EXPECT_EQ(got.second, expected.second);
  }
}

// Mixed int/float sums: ints accumulate exactly in a separate integer
// accumulator and fold into the float total at the end — no matter where the
// first float appears in the stream.
TEST(AggDeterminismTest, MixedIntFloatSumIsOrderIndependent) {
  auto run = [](const std::vector<Value>& vs) {
    RowSet input;
    for (const Value& v : vs) input.push_back({v});
    QueryContext ctx;
    std::vector<AggSpec> aggs = {AggSpec::Sum(Slot(0))};
    return AggregateExec(input, {}, aggs, ctx)[0][0];
  };
  std::vector<Value> values = {Value::Int(1), Value::Float(0.5),
                               Value::Int((int64_t{1} << 53) + 1),
                               Value::Float(-0.5), Value::Int(-7)};
  Value expected = run(values);
  ASSERT_EQ(expected.type, ValueType::kFloat);
  std::mt19937 rng(5);
  for (int trial = 0; trial < 100; trial++) {
    std::shuffle(values.begin(), values.end(), rng);
    Value got = run(values);
    ASSERT_EQ(got.type, ValueType::kFloat);
    EXPECT_EQ(got.d, expected.d) << "trial " << trial;
  }
}

// Pure-int sums stay integers with exact 64-bit arithmetic.
TEST(AggDeterminismTest, PureIntSumStaysInt) {
  RowSet input;
  for (int i = 1; i <= 100; i++) input.push_back({Value::Int(i)});
  QueryContext ctx;
  std::vector<AggSpec> aggs = {AggSpec::Sum(Slot(0)),
                               AggSpec::Avg(Slot(0))};
  RowSet out = AggregateExec(input, {}, aggs, ctx);
  EXPECT_EQ(out[0][0].type, ValueType::kInt);
  EXPECT_EQ(out[0][0].i, 5050);
  EXPECT_EQ(out[0][1].type, ValueType::kFloat);
  EXPECT_EQ(out[0][1].d, 50.5);
}

// MIN/MAX ties are broken deterministically (e.g. -0.0 vs 0.0 compare
// equal): whichever order the rows arrive, the same representative wins.
TEST(AggDeterminismTest, MinMaxTiesAreDeterministic) {
  auto run = [](const std::vector<Value>& vs) {
    RowSet input;
    for (const Value& v : vs) input.push_back({v});
    QueryContext ctx;
    std::vector<AggSpec> aggs = {AggSpec::Min(Slot(0)), AggSpec::Max(Slot(0))};
    RowSet out = AggregateExec(input, {}, aggs, ctx);
    return std::make_pair(std::signbit(out[0][0].d), std::signbit(out[0][1].d));
  };
  std::vector<Value> values = {Value::Float(0.0), Value::Float(-0.0),
                               Value::Float(0.0), Value::Float(-0.0)};
  auto expected = run(values);
  std::mt19937 rng(9);
  for (int trial = 0; trial < 30; trial++) {
    std::shuffle(values.begin(), values.end(), rng);
    EXPECT_EQ(run(values), expected);
  }
}

}  // namespace
}  // namespace jsontiles::exec
