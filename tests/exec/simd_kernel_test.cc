// Differential tests of the SIMD kernel layer (exec/simd.h) against its
// scalar reference tier: every kernel is run once with SIMD enabled and once
// disabled over the same buffers and must produce bit-identical output,
// including null bytes. Sizes are deliberately not multiples of the vector
// width so the scalar tails execute too. Semantics quirks the kernels must
// preserve (interpreter comparison through double, NaN ordering, division
// by zero, integer wraparound, hash constants) get dedicated cases.

#include <cmath>
#include <cstdint>
#include <cstring>
#include <limits>
#include <random>
#include <vector>

#include <gtest/gtest.h>

#include "exec/simd.h"
#include "util/hash.h"

namespace jsontiles::exec {
namespace {

// Odd on purpose: exercises both full vectors and the scalar tail.
constexpr size_t kN = 1031;

class SimdKernelTest : public ::testing::Test {
 protected:
  void SetUp() override {
    std::mt19937_64 rng(20260805);
    a_.resize(kN);
    b_.resize(kN);
    fa_.resize(kN);
    fb_.resize(kN);
    an_.resize(kN);
    bn_.resize(kN);
    for (size_t i = 0; i < kN; i++) {
      a_[i] = static_cast<int64_t>(rng());
      b_[i] = i % 5 == 0 ? a_[i] : static_cast<int64_t>(rng());
      fa_[i] = i % 7 == 0 ? std::nan("")
                          : static_cast<double>(static_cast<int64_t>(rng())) / 3.0;
      fb_[i] = i % 11 == 0 ? 0.0
                           : static_cast<double>(static_cast<int64_t>(rng())) / 5.0;
      an_[i] = rng() % 3 == 0;
      bn_[i] = rng() % 3 == 0;
    }
  }

  void TearDown() override { simd::SetEnabled(true); }

  std::vector<int64_t> a_, b_;
  std::vector<double> fa_, fb_;
  std::vector<uint8_t> an_, bn_;
};

const BinOp kCompareOps[] = {BinOp::kEq, BinOp::kNe, BinOp::kLt,
                             BinOp::kLe, BinOp::kGt, BinOp::kGe};

TEST_F(SimdKernelTest, CompareKernelsMatchScalarReference) {
  std::vector<int64_t> simd_out(kN), ref_out(kN);
  std::vector<uint8_t> simd_null(kN), ref_null(kN);
  auto check = [&](const char* what, BinOp op) {
    for (size_t i = 0; i < kN; i++) {
      ASSERT_EQ(simd_out[i], ref_out[i])
          << what << " op=" << static_cast<int>(op) << " lane " << i;
      ASSERT_EQ(simd_null[i], ref_null[i])
          << what << " nulls, op=" << static_cast<int>(op) << " lane " << i;
    }
  };
  for (BinOp op : kCompareOps) {
    simd::SetEnabled(true);
    simd::CompareI64ViaDouble(op, a_.data(), b_.data(), an_.data(), bn_.data(),
                              simd_out.data(), simd_null.data(), kN);
    simd::SetEnabled(false);
    simd::CompareI64ViaDouble(op, a_.data(), b_.data(), an_.data(), bn_.data(),
                              ref_out.data(), ref_null.data(), kN);
    check("i64/i64", op);

    simd::SetEnabled(true);
    simd::CompareF64(op, fa_.data(), fb_.data(), an_.data(), bn_.data(),
                     simd_out.data(), simd_null.data(), kN);
    simd::SetEnabled(false);
    simd::CompareF64(op, fa_.data(), fb_.data(), an_.data(), bn_.data(),
                     ref_out.data(), ref_null.data(), kN);
    check("f64/f64", op);

    simd::SetEnabled(true);
    simd::CompareI64F64(op, a_.data(), fb_.data(), an_.data(), bn_.data(),
                        simd_out.data(), simd_null.data(), kN);
    simd::SetEnabled(false);
    simd::CompareI64F64(op, a_.data(), fb_.data(), an_.data(), bn_.data(),
                        ref_out.data(), ref_null.data(), kN);
    check("i64/f64", op);

    simd::SetEnabled(true);
    simd::CompareF64I64(op, fa_.data(), b_.data(), an_.data(), bn_.data(),
                        simd_out.data(), simd_null.data(), kN);
    simd::SetEnabled(false);
    simd::CompareF64I64(op, fa_.data(), b_.data(), an_.data(), bn_.data(),
                        ref_out.data(), ref_null.data(), kN);
    check("f64/i64", op);

    simd::SetEnabled(true);
    simd::CompareI64Raw(op, a_.data(), b_.data(), an_.data(), bn_.data(),
                        simd_out.data(), simd_null.data(), kN);
    simd::SetEnabled(false);
    simd::CompareI64Raw(op, a_.data(), b_.data(), an_.data(), bn_.data(),
                        ref_out.data(), ref_null.data(), kN);
    check("raw i64", op);
  }
}

// The interpreter computes cmp = (x < y) ? -1 : (x > y) ? 1 : 0 and derives
// every operator from cmp; with a NaN operand both orderings are false, so
// cmp = 0 and NaN behaves "equal to" anything. The SIMD kernels must keep
// this quirk exactly.
TEST_F(SimdKernelTest, NanComparesAsEqual) {
  const double nan = std::nan("");
  double x[4] = {nan, 1.0, nan, 2.0};
  double y[4] = {5.0, nan, nan, 2.0};
  uint8_t no_nulls[4] = {0, 0, 0, 0};
  int64_t out[4];
  uint8_t onull[4];
  simd::SetEnabled(true);
  simd::CompareF64(BinOp::kEq, x, y, no_nulls, no_nulls, out, onull, 4);
  EXPECT_EQ(out[0], 1);
  EXPECT_EQ(out[1], 1);
  EXPECT_EQ(out[2], 1);
  EXPECT_EQ(out[3], 1);
  simd::CompareF64(BinOp::kLt, x, y, no_nulls, no_nulls, out, onull, 4);
  EXPECT_EQ(out[0], 0);
  EXPECT_EQ(out[1], 0);
  EXPECT_EQ(out[2], 0);
  simd::CompareF64(BinOp::kLe, x, y, no_nulls, no_nulls, out, onull, 4);
  EXPECT_EQ(out[0], 1);
  simd::CompareF64(BinOp::kNe, x, y, no_nulls, no_nulls, out, onull, 4);
  EXPECT_EQ(out[0], 0);
}

TEST_F(SimdKernelTest, ArithKernelsMatchScalarReference) {
  const BinOp ops[] = {BinOp::kAdd, BinOp::kSub, BinOp::kMul};
  std::vector<int64_t> simd_i(kN), ref_i(kN);
  std::vector<double> simd_d(kN), ref_d(kN);
  std::vector<uint8_t> simd_null(kN), ref_null(kN);
  for (BinOp op : ops) {
    simd::SetEnabled(true);
    simd::ArithI64(op, a_.data(), b_.data(), an_.data(), bn_.data(),
                   simd_i.data(), simd_null.data(), kN);
    simd::SetEnabled(false);
    simd::ArithI64(op, a_.data(), b_.data(), an_.data(), bn_.data(),
                   ref_i.data(), ref_null.data(), kN);
    for (size_t i = 0; i < kN; i++) {
      ASSERT_EQ(simd_null[i], ref_null[i]) << "int op " << static_cast<int>(op);
      if (!ref_null[i]) {
        ASSERT_EQ(simd_i[i], ref_i[i])
            << "int op " << static_cast<int>(op) << " lane " << i;
      }
    }
  }
  const BinOp fops[] = {BinOp::kAdd, BinOp::kSub, BinOp::kMul, BinOp::kDiv};
  for (BinOp op : fops) {
    simd::SetEnabled(true);
    simd::ArithF64(op, fa_.data(), fb_.data(), an_.data(), bn_.data(),
                   simd_d.data(), simd_null.data(), kN);
    simd::SetEnabled(false);
    simd::ArithF64(op, fa_.data(), fb_.data(), an_.data(), bn_.data(),
                   ref_d.data(), ref_null.data(), kN);
    for (size_t i = 0; i < kN; i++) {
      ASSERT_EQ(simd_null[i], ref_null[i])
          << "float op " << static_cast<int>(op) << " lane " << i;
      if (ref_null[i]) continue;
      uint64_t sx, rx;
      std::memcpy(&sx, &simd_d[i], sizeof(sx));
      std::memcpy(&rx, &ref_d[i], sizeof(rx));
      ASSERT_EQ(sx, rx) << "float op " << static_cast<int>(op) << " lane " << i;
    }
  }
}

TEST_F(SimdKernelTest, DivisionByZeroYieldsNull) {
  double x[3] = {1.0, -2.0, 0.0};
  double y[3] = {0.0, 4.0, 0.0};
  uint8_t no_nulls[3] = {0, 0, 0};
  double out[3];
  uint8_t onull[3];
  simd::SetEnabled(true);
  simd::ArithF64(BinOp::kDiv, x, y, no_nulls, no_nulls, out, onull, 3);
  EXPECT_EQ(onull[0], 1);
  EXPECT_EQ(onull[1], 0);
  EXPECT_EQ(out[1], -0.5);
  EXPECT_EQ(onull[2], 1);
}

TEST_F(SimdKernelTest, IntToDoubleConversionIsExactEverywhere) {
  // Extremes where a wrong rounding mode or a float detour would show.
  const int64_t ext[] = {std::numeric_limits<int64_t>::min(),
                         std::numeric_limits<int64_t>::max(),
                         (int64_t{1} << 53) + 1,
                         -(int64_t{1} << 53) - 1,
                         0,
                         -1,
                         4503599627370497LL,
                         std::numeric_limits<int64_t>::max() - 1};
  double out[8];
  simd::SetEnabled(true);
  simd::I64ToF64(ext, out, 8);
  for (int i = 0; i < 8; i++) {
    EXPECT_EQ(out[i], static_cast<double>(ext[i])) << "lane " << i;
  }
  std::vector<double> simd_d(kN), ref_d(kN);
  simd::I64ToF64(a_.data(), simd_d.data(), kN);
  simd::SetEnabled(false);
  simd::I64ToF64(a_.data(), ref_d.data(), kN);
  for (size_t i = 0; i < kN; i++) {
    uint64_t sx, rx;
    std::memcpy(&sx, &simd_d[i], sizeof(sx));
    std::memcpy(&rx, &ref_d[i], sizeof(rx));
    ASSERT_EQ(sx, rx) << "lane " << i;
  }
}

TEST_F(SimdKernelTest, ThreeValuedLogicMatchesScalarReference) {
  std::mt19937_64 rng(7);
  std::vector<int64_t> p(kN), q(kN);
  for (size_t i = 0; i < kN; i++) {
    p[i] = rng() % 2;
    q[i] = rng() % 2;
  }
  std::vector<int64_t> simd_out(kN), ref_out(kN);
  std::vector<uint8_t> simd_null(kN), ref_null(kN);

  simd::SetEnabled(true);
  simd::And3VL(p.data(), q.data(), an_.data(), bn_.data(), simd_out.data(),
               simd_null.data(), kN);
  simd::SetEnabled(false);
  simd::And3VL(p.data(), q.data(), an_.data(), bn_.data(), ref_out.data(),
               ref_null.data(), kN);
  for (size_t i = 0; i < kN; i++) {
    ASSERT_EQ(simd_null[i], ref_null[i]) << "AND lane " << i;
    if (!ref_null[i]) {
      ASSERT_EQ(simd_out[i], ref_out[i]) << "AND lane " << i;
    }
  }

  simd::SetEnabled(true);
  simd::Or3VL(p.data(), q.data(), an_.data(), bn_.data(), simd_out.data(),
              simd_null.data(), kN);
  simd::SetEnabled(false);
  simd::Or3VL(p.data(), q.data(), an_.data(), bn_.data(), ref_out.data(),
              ref_null.data(), kN);
  for (size_t i = 0; i < kN; i++) {
    ASSERT_EQ(simd_null[i], ref_null[i]) << "OR lane " << i;
    if (!ref_null[i]) {
      ASSERT_EQ(simd_out[i], ref_out[i]) << "OR lane " << i;
    }
  }
}

// SQL 3VL truth-table spot checks: null AND false = false, null OR true =
// true, null AND true = null, null OR false = null.
TEST_F(SimdKernelTest, ThreeValuedLogicTruthTable) {
  int64_t vals[4] = {0, 1, 0, 1};   // other operand: F, T, F, T
  int64_t nvals[4] = {0, 0, 0, 0};  // payload of the null operand (garbage)
  uint8_t null_side[4] = {1, 1, 1, 1};
  uint8_t no_nulls[4] = {0, 0, 0, 0};
  int64_t out[4];
  uint8_t onull[4];
  simd::SetEnabled(true);
  simd::And3VL(nvals, vals, null_side, no_nulls, out, onull, 4);
  EXPECT_EQ(onull[0], 0);  // null AND false = false
  EXPECT_EQ(out[0], 0);
  EXPECT_EQ(onull[1], 1);  // null AND true = null
  simd::Or3VL(nvals, vals, null_side, no_nulls, out, onull, 4);
  EXPECT_EQ(onull[1], 0);  // null OR true = true
  EXPECT_EQ(out[1], 1);
  EXPECT_EQ(onull[0], 1);  // null OR false = null
}

TEST_F(SimdKernelTest, HashBatchMatchesValueHashConstants) {
  std::vector<uint64_t> h(kN);
  const uint64_t null_hash = 0x9E3779B97F4A7C15ULL;  // Value::Null().Hash()
  simd::SetEnabled(true);
  simd::HashI64Batch(a_.data(), an_.data(), null_hash, h.data(), kN);
  for (size_t i = 0; i < kN; i++) {
    const uint64_t ref =
        an_[i] ? null_hash : HashInt(static_cast<uint64_t>(a_[i]));
    ASSERT_EQ(h[i], ref) << "lane " << i;
  }
  std::vector<uint64_t> acc(kN, 0x2545F4914F6CDD1DULL);
  std::vector<uint64_t> ref_acc(acc);
  simd::HashCombineBatch(acc.data(), h.data(), kN);
  for (size_t i = 0; i < kN; i++) {
    ASSERT_EQ(acc[i], HashCombine(ref_acc[i], h[i])) << "lane " << i;
  }
  // Scalar tier agrees too.
  std::vector<uint64_t> h2(kN);
  simd::SetEnabled(false);
  simd::HashI64Batch(a_.data(), an_.data(), null_hash, h2.data(), kN);
  EXPECT_EQ(h, h2);
}

TEST_F(SimdKernelTest, BoolPassBytesAndCompactMatchReference) {
  std::mt19937_64 rng(99);
  std::vector<int64_t> vals(kN);
  for (size_t i = 0; i < kN; i++) vals[i] = rng() % 2;
  std::vector<uint8_t> pass(kN);
  simd::SetEnabled(true);
  simd::BoolPassBytes(vals.data(), an_.data(), pass.data(), kN);
  std::vector<uint16_t> idx(kN);
  const size_t count = simd::CompactPassIndices(pass.data(), kN, idx.data());
  size_t ref_count = 0;
  for (size_t i = 0; i < kN; i++) {
    const bool expect_pass = an_[i] == 0 && vals[i] != 0;
    ASSERT_EQ(pass[i] != 0, expect_pass) << "lane " << i;
    if (expect_pass) {
      ASSERT_EQ(idx[ref_count], i) << "compact position " << ref_count;
      ref_count++;
    }
  }
  EXPECT_EQ(count, ref_count);
}

TEST_F(SimdKernelTest, OrBytesMatchesReference) {
  std::vector<uint8_t> simd_out(kN), ref_out(kN);
  simd::SetEnabled(true);
  simd::OrBytes(an_.data(), bn_.data(), simd_out.data(), kN);
  simd::SetEnabled(false);
  simd::OrBytes(an_.data(), bn_.data(), ref_out.data(), kN);
  EXPECT_EQ(simd_out, ref_out);
  for (size_t i = 0; i < kN; i++) {
    ASSERT_EQ(ref_out[i] != 0, an_[i] != 0 || bn_[i] != 0) << "lane " << i;
  }
}

// Tiny sizes: every kernel must handle n smaller than one vector (pure-tail
// execution) without touching memory past the buffers.
TEST_F(SimdKernelTest, TinyBatchesRunTailOnly) {
  for (size_t n : {size_t{0}, size_t{1}, size_t{3}}) {
    std::vector<int64_t> x(n ? n : 1, 7), y(n ? n : 1, 9), out(n ? n : 1);
    std::vector<uint8_t> nn(n ? n : 1, 0), onull(n ? n : 1);
    simd::SetEnabled(true);
    simd::CompareI64ViaDouble(BinOp::kLt, x.data(), y.data(), nn.data(),
                              nn.data(), out.data(), onull.data(), n);
    for (size_t i = 0; i < n; i++) {
      EXPECT_EQ(out[i], 1);
      EXPECT_EQ(onull[i], 0);
    }
    std::vector<uint64_t> h(n ? n : 1);
    simd::HashI64Batch(x.data(), nn.data(), 0, h.data(), n);
    for (size_t i = 0; i < n; i++) {
      EXPECT_EQ(h[i], HashInt(uint64_t{7}));
    }
  }
}

TEST_F(SimdKernelTest, EnableToggleAndIsaAreCoherent) {
  simd::SetEnabled(true);
  EXPECT_TRUE(simd::Enabled());
  simd::SetEnabled(false);
  EXPECT_FALSE(simd::Enabled());
  EXPECT_FALSE(simd::UseSimd());
  simd::SetEnabled(true);
  EXPECT_EQ(simd::UseSimd(), simd::CompiledIn());
  EXPECT_NE(simd::ActiveIsa(), nullptr);
}

}  // namespace
}  // namespace jsontiles::exec
