#include "exec/scan.h"

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "exec/operators.h"
#include "storage/loader.h"

namespace jsontiles::exec {
namespace {

using storage::Loader;
using storage::Relation;
using storage::StorageMode;

std::vector<std::string> MixedDocs() {
  // Two document types: "orders" (o_id, o_total, o_date) and "items"
  // (i_id, i_price), interleaved in blocks.
  std::vector<std::string> docs;
  for (int i = 0; i < 200; i++) {
    int day = i % 28 + 1;
    std::string day_str = (day < 10 ? "0" : "") + std::to_string(day);
    docs.push_back(R"({"o_id":)" + std::to_string(i) + R"(,"o_total":)" +
                   std::to_string(100.5 + i) + R"(,"o_date":"2020-01-)" +
                   day_str + R"("})");
  }
  for (int i = 0; i < 200; i++) {
    docs.push_back(R"({"i_id":)" + std::to_string(i) + R"(,"i_price":)" +
                   std::to_string(i % 50) + "}");
  }
  return docs;
}

std::unique_ptr<Relation> LoadMode(StorageMode mode,
                                   const std::vector<std::string>& docs) {
  tiles::TileConfig config;
  config.tile_size = 64;
  config.partition_size = 4;
  Loader loader(mode, config);
  return loader.Load(docs, "t").MoveValueOrDie();
}

ScanSpec MakeSpec(const Relation* rel) {
  ScanSpec spec;
  spec.relation = rel;
  spec.table_alias = "t";
  return spec;
}

TEST(ScanTest, AllStorageModesAgree) {
  auto docs = MixedDocs();
  ExprPtr id = Access("t", {"o_id"}, ValueType::kInt);
  ExprPtr total = Access("t", {"o_total"}, ValueType::kFloat);
  ExprPtr filter_tpl = Gt(Slot(1), ConstFloat(250.0));

  RowSet reference;
  bool first = true;
  for (StorageMode mode : {StorageMode::kJsonText, StorageMode::kJsonb,
                           StorageMode::kSinew, StorageMode::kTiles}) {
    auto rel = LoadMode(mode, docs);
    QueryContext ctx;
    ScanSpec spec = MakeSpec(rel.get());
    spec.accesses = {id, total};
    spec.filter = filter_tpl;
    spec.null_rejecting_paths = {id->path, total->path};
    RowSet rows = ScanExec(spec, ctx);
    // 200 orders with totals 100.5..299.5; > 250 leaves 150..199 -> 50 rows.
    ASSERT_EQ(rows.size(), 50u) << StorageModeName(mode);
    if (first) {
      reference = rows;
      first = false;
      continue;
    }
    ASSERT_EQ(rows.size(), reference.size());
    for (size_t r = 0; r < rows.size(); r++) {
      EXPECT_EQ(rows[r][0].int_value(), reference[r][0].int_value());
      EXPECT_DOUBLE_EQ(rows[r][1].float_value(), reference[r][1].float_value());
    }
  }
}

TEST(ScanTest, TileSkippingSkipsForeignTiles) {
  auto docs = MixedDocs();
  auto rel = LoadMode(StorageMode::kTiles, docs);
  ExprPtr id = Access("t", {"i_id"}, ValueType::kInt);
  QueryContext ctx;
  ScanSpec spec = MakeSpec(rel.get());
  spec.accesses = {id};
  spec.filter = IsNotNull(Slot(0));
  spec.null_rejecting_paths = {id->path};
  RowSet rows = ScanExec(spec, ctx);
  EXPECT_EQ(rows.size(), 200u);
  EXPECT_GT(ctx.tiles_skipped, 0u);  // order-only tiles were skipped

  // Without skipping, same result but all tiles visited.
  ExecOptions options;
  options.enable_tile_skipping = false;
  QueryContext ctx2(options);
  RowSet rows2 = ScanExec(spec, ctx2);
  EXPECT_EQ(rows2.size(), 200u);
  EXPECT_EQ(ctx2.tiles_skipped, 0u);
}

TEST(ScanTest, SkippingRespectsNullSemantics) {
  // COUNT(*) with no null-rejecting paths must see every row even when the
  // accessed key is absent from many tiles (§4.8: aggregates count nulls).
  auto docs = MixedDocs();
  auto rel = LoadMode(StorageMode::kTiles, docs);
  ExprPtr price = Access("t", {"i_price"}, ValueType::kInt);
  QueryContext ctx;
  ScanSpec spec = MakeSpec(rel.get());
  spec.accesses = {price};
  // No filter, no null-rejecting paths: a COUNT(*) over everything.
  RowSet rows = ScanExec(spec, ctx);
  EXPECT_EQ(rows.size(), 400u);
  size_t nulls = 0;
  for (const auto& row : rows) nulls += row[0].is_null();
  EXPECT_EQ(nulls, 200u);
}

TEST(ScanTest, DateColumnServesTimestampRequests) {
  auto docs = MixedDocs();
  auto rel = LoadMode(StorageMode::kTiles, docs);
  // Cast to Timestamp: served from the extracted Timestamp column.
  ExprPtr date_ts = Access("t", {"o_date"}, ValueType::kTimestamp);
  QueryContext ctx;
  ScanSpec spec = MakeSpec(rel.get());
  spec.accesses = {date_ts};
  spec.filter = Ge(Slot(0), ConstDate("2020-01-15"));
  spec.null_rejecting_paths = {date_ts->path};
  RowSet rows = ScanExec(spec, ctx);
  EXPECT_GT(rows.size(), 0u);
  for (const auto& row : rows) {
    EXPECT_EQ(row[0].type, ValueType::kTimestamp);
  }

  // §4.9: cast to Text must reproduce the original string exactly (goes to
  // the binary JSON, not the Timestamp column).
  ExprPtr date_text = Access("t", {"o_date"}, ValueType::kString);
  ScanSpec spec2 = MakeSpec(rel.get());
  spec2.accesses = {date_text};
  spec2.filter = Eq(Slot(0), ConstString("2020-01-07"));
  spec2.null_rejecting_paths = {date_text->path};
  QueryContext ctx2;
  RowSet rows2 = ScanExec(spec2, ctx2);
  EXPECT_GT(rows2.size(), 0u);
  for (const auto& row : rows2) {
    EXPECT_EQ(row[0].string_value(), "2020-01-07");
  }
}

TEST(ScanTest, TypeOutlierFallsBackToBinary) {
  // Mostly-int key with a few float outliers: the column extracts ints; the
  // floats must still be readable through the fallback.
  std::vector<std::string> docs;
  for (int i = 0; i < 60; i++) docs.push_back(R"({"v":)" + std::to_string(i) + "}");
  for (int i = 0; i < 4; i++) docs.push_back(R"({"v":0.5})");
  auto rel = LoadMode(StorageMode::kTiles, docs);
  ExprPtr v = Access("t", {"v"}, ValueType::kFloat);
  QueryContext ctx;
  ScanSpec spec = MakeSpec(rel.get());
  spec.accesses = {v};
  RowSet rows = ScanExec(spec, ctx);
  ASSERT_EQ(rows.size(), 64u);
  double sum = 0;
  for (const auto& row : rows) {
    ASSERT_FALSE(row[0].is_null());
    sum += row[0].float_value();
  }
  EXPECT_DOUBLE_EQ(sum, 59.0 * 60 / 2 + 4 * 0.5);
}

TEST(ScanTest, ParallelScanIsDeterministic) {
  auto docs = MixedDocs();
  auto rel = LoadMode(StorageMode::kTiles, docs);
  ExprPtr id = Access("t", {"o_id"}, ValueType::kInt);
  ScanSpec spec = MakeSpec(rel.get());
  spec.accesses = {id};
  spec.filter = IsNotNull(Slot(0));
  spec.null_rejecting_paths = {id->path};

  QueryContext serial;
  RowSet a = ScanExec(spec, serial);
  ExecOptions options;
  options.num_threads = 4;
  QueryContext parallel(options);
  RowSet b = ScanExec(spec, parallel);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); i++) {
    EXPECT_EQ(a[i][0].int_value(), b[i][0].int_value());
  }
}

TEST(OperatorsTest, AggregateSumCountAvgMinMax) {
  RowSet in;
  for (int i = 1; i <= 10; i++) {
    in.push_back({Value::Int(i % 2), Value::Int(i)});
  }
  in.push_back({Value::Int(0), Value::Null()});  // null value ignored by SUM
  QueryContext ctx;
  RowSet out = AggregateExec(
      in, {Slot(0)},
      {AggSpec::CountStar(), AggSpec::Count(Slot(1)), AggSpec::Sum(Slot(1)),
       AggSpec::Avg(Slot(1)), AggSpec::Min(Slot(1)), AggSpec::Max(Slot(1))},
      ctx);
  ASSERT_EQ(out.size(), 2u);
  for (const auto& row : out) {
    if (row[0].int_value() == 0) {
      EXPECT_EQ(row[1].int_value(), 6);   // count(*)
      EXPECT_EQ(row[2].int_value(), 5);   // count(v)
      EXPECT_EQ(row[3].int_value(), 30);  // 2+4+6+8+10
      EXPECT_DOUBLE_EQ(row[4].float_value(), 6.0);
      EXPECT_EQ(row[5].int_value(), 2);
      EXPECT_EQ(row[6].int_value(), 10);
    } else {
      EXPECT_EQ(row[2].int_value(), 5);
      EXPECT_EQ(row[3].int_value(), 25);  // 1+3+5+7+9
    }
  }
}

TEST(OperatorsTest, GlobalAggregateOfEmptyInput) {
  QueryContext ctx;
  RowSet out = AggregateExec({}, {}, {AggSpec::CountStar(), AggSpec::Sum(Slot(0))},
                             ctx);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0][0].int_value(), 0);
  EXPECT_TRUE(out[0][1].is_null());
}

TEST(OperatorsTest, CountDistinct) {
  RowSet in;
  for (int i = 0; i < 100; i++) in.push_back({Value::Int(i % 7)});
  QueryContext ctx;
  RowSet out = AggregateExec(in, {}, {AggSpec::CountDistinct(Slot(0))}, ctx);
  EXPECT_EQ(out[0][0].int_value(), 7);
}

TEST(OperatorsTest, HashJoinTypes) {
  RowSet build = {{Value::Int(1), Value::String("a")},
                  {Value::Int(2), Value::String("b")},
                  {Value::Int(2), Value::String("c")}};
  RowSet probe = {{Value::Int(1)}, {Value::Int(2)}, {Value::Int(3)},
                  {Value::Null()}};
  QueryContext ctx;
  // Inner: 1 match for key 1, 2 matches for key 2.
  RowSet inner = HashJoinExec(build, probe, {Slot(0)}, {Slot(0)},
                              JoinType::kInner, nullptr, ctx);
  EXPECT_EQ(inner.size(), 3u);
  // Left: unmatched probe rows (3 and null) kept with null build columns.
  RowSet left = HashJoinExec(build, probe, {Slot(0)}, {Slot(0)},
                             JoinType::kLeft, nullptr, ctx);
  EXPECT_EQ(left.size(), 5u);
  size_t null_pads = 0;
  for (const auto& row : left) null_pads += row[2].is_null();
  EXPECT_EQ(null_pads, 2u);
  // Semi: probe rows with a match.
  RowSet semi = HashJoinExec(build, probe, {Slot(0)}, {Slot(0)},
                             JoinType::kSemi, nullptr, ctx);
  EXPECT_EQ(semi.size(), 2u);
  // Anti: probe rows without a match (null key never matches -> kept).
  RowSet anti = HashJoinExec(build, probe, {Slot(0)}, {Slot(0)},
                             JoinType::kAnti, nullptr, ctx);
  EXPECT_EQ(anti.size(), 2u);
}

TEST(OperatorsTest, JoinResidualPredicate) {
  RowSet build = {{Value::Int(1), Value::Int(10)}, {Value::Int(1), Value::Int(20)}};
  RowSet probe = {{Value::Int(1), Value::Int(15)}};
  QueryContext ctx;
  // Combined row = [probe(2), build(2)]; keep matches where build.v > probe.v.
  ExprPtr residual = Gt(Slot(3), Slot(1));
  RowSet out = HashJoinExec(build, probe, {Slot(0)}, {Slot(0)},
                            JoinType::kInner, residual, ctx);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0][3].int_value(), 20);
}

TEST(OperatorsTest, SortAndLimit) {
  RowSet in = {{Value::Int(3), Value::String("c")},
               {Value::Int(1), Value::String("b")},
               {Value::Int(1), Value::String("a")},
               {Value::Int(2), Value::String("d")}};
  QueryContext ctx;
  RowSet sorted = SortExec(in, {{Slot(0), false}, {Slot(1), true}}, ctx);
  EXPECT_EQ(sorted[0][1].string_value(), "b");  // 1 desc-by-string: b before a
  EXPECT_EQ(sorted[1][1].string_value(), "a");
  EXPECT_EQ(sorted[3][0].int_value(), 3);
  RowSet limited = LimitExec(std::move(sorted), 2);
  EXPECT_EQ(limited.size(), 2u);
}

TEST(OperatorsTest, FilterAndProject) {
  RowSet in = {{Value::Int(1)}, {Value::Int(5)}, {Value::Null()}};
  QueryContext ctx;
  RowSet filtered = FilterExec(in, Gt(Slot(0), ConstInt(2)), ctx);
  ASSERT_EQ(filtered.size(), 1u);  // null comparison rejects the null row
  RowSet projected = ProjectExec(filtered, {Mul(Slot(0), ConstInt(3))}, ctx);
  EXPECT_EQ(projected[0][0].int_value(), 15);
}

}  // namespace
}  // namespace jsontiles::exec
