// Zone-map tile skipping (min/max per extracted column; §4.8 extension).

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "opt/query.h"
#include "storage/loader.h"

namespace jsontiles::exec {
namespace {

using opt::QueryBlock;
using opt::TableRef;
using storage::Loader;
using storage::Relation;
using storage::StorageMode;

// Values 0..4095 in insertion order: each 256-row tile covers a disjoint
// [256k, 256k+255] range — perfect zone-map conditions.
std::unique_ptr<Relation> OrderedInts() {
  std::vector<std::string> docs;
  for (int i = 0; i < 4096; i++) {
    docs.push_back(R"({"v":)" + std::to_string(i) + R"(,"d":"2020-)" +
                   (i / 342 + 1 < 10 ? "0" : "") + std::to_string(i / 342 + 1) +
                   R"(-15","f":)" + std::to_string(i) + ".25}");
  }
  tiles::TileConfig config;
  config.tile_size = 256;
  config.partition_size = 1;  // keep insertion order
  Loader loader(StorageMode::kTiles, config);
  return loader.Load(docs, "t").MoveValueOrDie();
}

size_t CountMatching(const Relation& rel, ExprPtr filter, size_t* skipped,
                     size_t* scanned) {
  QueryContext ctx;
  QueryBlock q;
  q.AddTable(TableRef::Rel("t", &rel, std::move(filter)));
  q.GroupBy({});
  q.Aggregate(AggSpec::CountStar());
  auto rows = q.Execute(ctx);
  *skipped = ctx.tiles_skipped;
  *scanned = ctx.tiles_scanned;
  return static_cast<size_t>(rows[0][0].int_value());
}

TEST(ZoneMapTest, RangePredicateSkipsTiles) {
  auto rel = OrderedInts();
  ASSERT_EQ(rel->tiles().size(), 16u);
  size_t skipped, scanned;
  // v >= 3840: only the last tile qualifies.
  size_t n = CountMatching(
      *rel, Ge(Access("t", {"v"}, ValueType::kInt), ConstInt(3840)), &skipped,
      &scanned);
  EXPECT_EQ(n, 256u);
  EXPECT_GE(skipped, 14u);

  // v < 256: only the first tile.
  n = CountMatching(*rel, Lt(Access("t", {"v"}, ValueType::kInt), ConstInt(256)),
                    &skipped, &scanned);
  EXPECT_EQ(n, 256u);
  EXPECT_GE(skipped, 14u);

  // Equality point lookup.
  n = CountMatching(*rel, Eq(Access("t", {"v"}, ValueType::kInt), ConstInt(1000)),
                    &skipped, &scanned);
  EXPECT_EQ(n, 1u);
  EXPECT_GE(skipped, 14u);

  // Out-of-domain equality skips everything.
  n = CountMatching(*rel, Eq(Access("t", {"v"}, ValueType::kInt), ConstInt(-5)),
                    &skipped, &scanned);
  EXPECT_EQ(n, 0u);
  EXPECT_EQ(skipped, 16u);
}

TEST(ZoneMapTest, FloatAndTimestampColumns) {
  auto rel = OrderedInts();
  size_t skipped, scanned;
  size_t n = CountMatching(
      *rel, Gt(Access("t", {"f"}, ValueType::kFloat), ConstFloat(4000.0)),
      &skipped, &scanned);
  EXPECT_EQ(n, 96u);  // 4000.25..4095.25 all exceed 4000
  EXPECT_GE(skipped, 14u);

  // Timestamp column via date extraction: months 01..12.
  n = CountMatching(*rel,
                    Ge(Access("t", {"d"}, ValueType::kTimestamp),
                       ConstDate("2020-12-01")),
                    &skipped, &scanned);
  EXPECT_EQ(n, 4096u - 342u * 11u);
  EXPECT_GT(skipped, 0u);
}

TEST(ZoneMapTest, FloatColumnIntCastDoesNotSkip) {
  // trunc() is not order-preserving for negatives; the scan must not use the
  // zone map, and results must stay correct.
  std::vector<std::string> docs;
  for (int i = 0; i < 512; i++) {
    docs.push_back(R"({"x":-0.5})");
  }
  tiles::TileConfig config;
  config.tile_size = 256;
  Loader loader(StorageMode::kTiles, config);
  auto rel = loader.Load(docs, "t").MoveValueOrDie();
  size_t skipped, scanned;
  // x::Int = trunc(-0.5) = 0, so `x::Int >= 0` matches every row even though
  // the raw float max is -0.5 < 0.
  size_t n = CountMatching(
      *rel, Ge(Access("t", {"x"}, ValueType::kInt), ConstInt(0)), &skipped,
      &scanned);
  EXPECT_EQ(n, 512u);
  EXPECT_EQ(skipped, 0u);
}

TEST(ZoneMapTest, TypeOutliersDisableZoneMap) {
  // Int column with float outliers: outlier values live in the binary JSON
  // and can lie outside the column's min/max — no skipping allowed.
  std::vector<std::string> docs;
  for (int i = 0; i < 250; i++) docs.push_back(R"({"v":1})");
  for (int i = 0; i < 6; i++) docs.push_back(R"({"v":99.5})");
  tiles::TileConfig config;
  config.tile_size = 256;
  Loader loader(StorageMode::kTiles, config);
  auto rel = loader.Load(docs, "t").MoveValueOrDie();
  size_t skipped, scanned;
  size_t n = CountMatching(
      *rel, Gt(Access("t", {"v"}, ValueType::kFloat), ConstFloat(50.0)),
      &skipped, &scanned);
  EXPECT_EQ(n, 6u);  // the outliers must be found
  EXPECT_EQ(skipped, 0u);
}

TEST(ZoneMapTest, UpdatesWidenTheMap) {
  auto rel = OrderedInts();
  // Tile 0 originally covers [0, 255]; update a row to 1e6.
  ASSERT_TRUE(rel->UpdateRow(3, R"({"v":1000000,"d":"2020-01-15","f":3.25})").ok());
  size_t skipped, scanned;
  size_t n = CountMatching(
      *rel, Ge(Access("t", {"v"}, ValueType::kInt), ConstInt(999999)), &skipped,
      &scanned);
  EXPECT_EQ(n, 1u);  // the updated row is found despite the old zone map
}

TEST(ZoneMapTest, DisabledWithSkippingOption) {
  auto rel = OrderedInts();
  ExecOptions options;
  options.enable_tile_skipping = false;
  QueryContext ctx(options);
  QueryBlock q;
  q.AddTable(TableRef::Rel(
      "t", rel.get(), Ge(Access("t", {"v"}, ValueType::kInt), ConstInt(4000))));
  q.GroupBy({});
  q.Aggregate(AggSpec::CountStar());
  auto rows = q.Execute(ctx);
  EXPECT_EQ(rows[0][0].int_value(), 96);
  EXPECT_EQ(ctx.tiles_skipped, 0u);
}

}  // namespace
}  // namespace jsontiles::exec
