// Distributed/local differential harness (DESIGN.md §13): every query result
// executed on a worker cluster must be BIT-identical to the same documents
// loaded unsharded in-process — across worker counts, shard counts and thread
// counts, for the Figure-14 workloads (TPC-H and Yelp). Every cluster runs
// against a SaveSharded/OpenSharded round-trip by construction (workers open
// shards from the JTSM manifest), so the sweep also exercises manifest
// persistence. Canonicalization is Value::ToString per cell, which renders
// floats exactly (shortest round-trip), so two equal strings mean equal bits.

#include <sys/stat.h>
#include <unistd.h>

#include <cstdio>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include <gtest/gtest.h>

#include "dist/cluster.h"
#include "dist/wire.h"
#include "sql/sql_parser.h"
#include "storage/loader.h"
#include "storage/shard.h"
#include "workload/tpch.h"
#include "workload/tpch_queries.h"
#include "workload/yelp.h"

#ifndef JSONTILES_WORKERD_PATH
#error "dist tests require the JSONTILES_WORKERD_PATH compile definition"
#endif

namespace jsontiles::dist {
namespace {

using exec::ExecOptions;
using exec::QueryContext;
using exec::RowSet;
using storage::LoadOptions;
using storage::Relation;
using storage::ShardedRelation;
using storage::ShardOptions;
using storage::StorageMode;

std::string Canonical(const RowSet& rows) {
  std::string out;
  for (const auto& row : rows) {
    for (const auto& v : row) {
      out += v.is_null() ? "∅" : v.ToString();
      out += "|";
    }
    out += "\n";
  }
  return out;
}

const workload::TpchData& Tpch() {
  static const workload::TpchData data = [] {
    workload::TpchOptions options;
    options.scale_factor = 0.004;
    return workload::GenerateTpch(options);
  }();
  return data;
}

const std::vector<std::string>& Yelp() {
  static const std::vector<std::string> docs = [] {
    workload::YelpOptions options;
    options.num_business = 50;
    return workload::GenerateYelp(options);
  }();
  return docs;
}

tiles::TileConfig SmallTiles() {
  tiles::TileConfig config;
  config.tile_size = 128;
  return config;
}

/// Unsharded in-process baseline answers, computed once per query.
std::string TpchBaseline(int query) {
  static std::unique_ptr<Relation> rel;
  static std::map<int, std::string> cache;
  auto it = cache.find(query);
  if (it != cache.end()) return it->second;
  if (rel == nullptr) {
    storage::Loader loader(StorageMode::kTiles, SmallTiles());
    rel = loader.Load(Tpch().combined, "tpch").MoveValueOrDie();
  }
  QueryContext ctx;
  return cache[query] = Canonical(workload::RunTpchQuery(query, *rel, ctx));
}

std::string YelpBaseline(int query) {
  static std::unique_ptr<Relation> rel;
  static std::map<int, std::string> cache;
  auto it = cache.find(query);
  if (it != cache.end()) return it->second;
  if (rel == nullptr) {
    storage::Loader loader(StorageMode::kTiles, SmallTiles());
    rel = loader.Load(Yelp(), "yelp").MoveValueOrDie();
  }
  QueryContext ctx;
  return cache[query] = Canonical(workload::RunYelpQuery(query, *rel, ctx));
}

/// A saved + reopened sharded workload, plus cleanup of its files.
struct SavedWorkload {
  std::string manifest_path;
  std::unique_ptr<ShardedRelation> sharded;
  std::string dir;
  std::string name;
  size_t shards = 0;

  SavedWorkload() = default;
  SavedWorkload(SavedWorkload&& other) noexcept { *this = std::move(other); }
  SavedWorkload& operator=(SavedWorkload&& other) noexcept {
    manifest_path = std::move(other.manifest_path);
    sharded = std::move(other.sharded);
    dir = std::move(other.dir);
    name = std::move(other.name);
    shards = other.shards;
    other.manifest_path.clear();
    other.shards = 0;
    return *this;
  }

  ~SavedWorkload() {
    for (size_t s = 0; s < shards; s++) {
      std::remove(
          (dir + "/" + name + ".shard-" + std::to_string(s) + ".jtrl")
              .c_str());
    }
    if (!manifest_path.empty()) std::remove(manifest_path.c_str());
    if (!dir.empty()) ::rmdir(dir.c_str());
  }
};

/// Per-process workload directory: ctest runs each TEST as its own process,
/// in parallel with the failpoint and chaos suites — every dist test that
/// saves a workload needs its own directory or they clobber each other's
/// manifests.
std::string PrivateDir() {
  std::string dir =
      ::testing::TempDir() + "distdiff_" + std::to_string(::getpid());
  ::mkdir(dir.c_str(), 0755);
  return dir;
}

SavedWorkload SaveAndOpen(const std::vector<std::string>& docs,
                          const std::string& name, size_t shards) {
  LoadOptions load_options;
  load_options.num_threads = 4;
  ShardOptions shard_options;
  shard_options.shard_count = shards;
  auto loaded = ShardedRelation::Load(docs, name, StorageMode::kTiles,
                                      SmallTiles(), load_options,
                                      shard_options)
                    .MoveValueOrDie();
  SavedWorkload out;
  out.dir = PrivateDir();
  out.name = name;
  out.shards = shards;
  JSONTILES_CHECK(storage::SaveSharded(*loaded, out.dir).ok());
  out.manifest_path = storage::ShardManifestPath(out.dir, name);
  out.sharded = storage::OpenSharded(out.manifest_path).MoveValueOrDie();
  return out;
}

std::unique_ptr<Cluster> StartCluster(const SavedWorkload& w, size_t workers,
                                      size_t worker_threads) {
  ClusterOptions options;
  options.num_workers = workers;
  options.worker_threads = worker_threads;
  options.workerd_path = JSONTILES_WORKERD_PATH;
  auto cluster = Cluster::Start(w.manifest_path, w.sharded.get(), options);
  if (!cluster.ok()) {
    ADD_FAILURE() << "Cluster::Start: " << cluster.status().ToString();
  }
  return cluster.MoveValueOrDie();
}

constexpr size_t kShardCounts[] = {1, 2, 3, 8};
constexpr size_t kWorkerCounts[] = {1, 2, 4};
constexpr size_t kThreadCounts[] = {1, 4};

// The full sweep: every TPC-H and Yelp query, every worker × shard × thread
// combination, results bit-identical to the unsharded in-process baseline.
// Thread count applies on both sides: the coordinator's ExecOptions (local
// operators above the exchange) and the workers' fragment contexts.
TEST(DistDifferentialTest, WorkersShardsThreadsFig14) {
  for (size_t shards : kShardCounts) {
    SavedWorkload tpch = SaveAndOpen(Tpch().combined, "tpch", shards);
    SavedWorkload yelp = SaveAndOpen(Yelp(), "yelp", shards);
    for (size_t workers : kWorkerCounts) {
      for (size_t threads : kThreadCounts) {
        auto tpch_cluster = StartCluster(tpch, workers, threads);
        auto yelp_cluster = StartCluster(yelp, workers, threads);
        ExecOptions exec_options;
        exec_options.num_threads = threads;
        for (int q = 1; q <= 22; q++) {
          QueryContext ctx(exec_options);
          ctx.dist = tpch_cluster.get();
          EXPECT_EQ(Canonical(workload::RunTpchQuery(q, *tpch.sharded, ctx)),
                    TpchBaseline(q))
              << "TPC-H Q" << q << " workers=" << workers
              << " shards=" << shards << " threads=" << threads;
        }
        for (int q = 1; q <= 5; q++) {
          QueryContext ctx(exec_options);
          ctx.dist = yelp_cluster.get();
          EXPECT_EQ(Canonical(workload::RunYelpQuery(q, *yelp.sharded, ctx)),
                    YelpBaseline(q))
              << "Yelp Y" << q << " workers=" << workers
              << " shards=" << shards << " threads=" << threads;
        }
      }
    }
  }
}

// The LPT shard assignment is deterministic and covers every shard exactly
// once; more workers than shards leaves the extras idle but harmless.
TEST(DistDifferentialTest, ShardAssignmentCoversAllShards) {
  SavedWorkload tpch = SaveAndOpen(Tpch().combined, "tpch", 3);
  for (size_t workers : kWorkerCounts) {
    auto cluster = StartCluster(tpch, workers, 1);
    EXPECT_EQ(cluster->shard_count(), 3u);
    ASSERT_EQ(cluster->shard_owner().size(), 3u);
    for (size_t owner : cluster->shard_owner()) {
      EXPECT_LT(owner, cluster->num_workers());
    }
    // Deterministic: a second cluster assigns identically.
    auto again = StartCluster(tpch, workers, 1);
    EXPECT_EQ(cluster->shard_owner(), again->shard_owner());
  }
}

// The manifest (v2) carries per-shard row counts and byte sizes, so the
// coordinator plans the assignment without touching any shard file.
TEST(DistDifferentialTest, ManifestCarriesShardStats) {
  SavedWorkload tpch = SaveAndOpen(Tpch().combined, "tpch", 3);
  auto cluster = StartCluster(tpch, 2, 1);
  const storage::ShardManifestInfo& manifest = cluster->manifest();
  EXPECT_GE(manifest.version, 2u);
  ASSERT_EQ(manifest.num_rows.size(), 3u);
  ASSERT_EQ(manifest.file_sizes.size(), 3u);
  uint64_t total_rows = 0;
  for (size_t s = 0; s < 3; s++) {
    EXPECT_GT(manifest.num_rows[s], 0u) << "shard " << s;
    EXPECT_GT(manifest.file_sizes[s], 0u) << "shard " << s;
    total_rows += manifest.num_rows[s];
  }
  EXPECT_EQ(total_rows, tpch.sharded->num_rows());
}

// A version-1 manifest (no per-shard side inventories) still opens and still
// drives a cluster: OpenSharded is backward-compatible, and the coordinator
// plans its shard assignment from the per-shard row counts v1 already carried.
TEST(DistDifferentialTest, V1ManifestBackwardCompatible) {
  SavedWorkload tpch = SaveAndOpen(Tpch().combined, "tpch", 2);
  auto parsed = storage::ReadShardManifest(tpch.manifest_path);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const storage::ShardManifestInfo& info = parsed.ValueOrDie();
  ASSERT_GE(info.version, 2u);

  // Re-encode as version 1: identical layout up to the shard entries, which
  // drop the trailing side-inventory lists. WireWriter shares the manifest
  // writer's conventions (LEB128 varints, little-endian f64, varint-length
  // strings), so the bytes match what a v1 writer would have produced.
  std::vector<uint8_t> v1;
  WireWriter w(&v1);
  for (char c : std::string_view("JTSM")) w.U8(static_cast<uint8_t>(c));
  w.Varint(1);
  w.Str(info.name);
  w.U8(static_cast<uint8_t>(info.mode));
  w.U8(static_cast<uint8_t>(info.shard_options.routing));
  w.Str(info.routing_path);
  w.U8(static_cast<uint8_t>(info.routing_kind));
  w.Varint(info.config.tile_size);
  w.Varint(info.config.partition_size);
  w.F64(info.config.extraction_threshold);
  w.U8(info.config.enable_date_extraction ? 1 : 0);
  w.U8(info.config.enable_reordering ? 1 : 0);
  w.Varint(info.shard_count());
  for (size_t s = 0; s < info.shard_count(); s++) {
    w.Str(info.filenames[s]);
    w.Varint(info.num_rows[s]);
    w.Varint(info.file_sizes[s]);
  }
  {
    std::FILE* f = std::fopen(tpch.manifest_path.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    ASSERT_EQ(std::fwrite(v1.data(), 1, v1.size(), f), v1.size());
    std::fclose(f);
  }

  auto reparsed = storage::ReadShardManifest(tpch.manifest_path);
  ASSERT_TRUE(reparsed.ok()) << reparsed.status().ToString();
  EXPECT_EQ(reparsed.ValueOrDie().version, 1u);
  for (const auto& shard_sides : reparsed.ValueOrDie().sides) {
    EXPECT_TRUE(shard_sides.empty());
  }

  auto reopened = storage::OpenSharded(tpch.manifest_path);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  ASSERT_EQ(reopened.ValueOrDie()->shard_count(), 2u);
  tpch.sharded = reopened.MoveValueOrDie();

  auto cluster = StartCluster(tpch, 2, 1);
  for (int q : {1, 6, 13}) {
    QueryContext ctx;
    ctx.dist = cluster.get();
    EXPECT_EQ(Canonical(workload::RunTpchQuery(q, *tpch.sharded, ctx)),
              TpchBaseline(q))
        << "TPC-H Q" << q << " over a v1 manifest";
  }
}

// SQL front-end integration: a catalog with `dist` set routes sharded scans
// through the cluster, the aggregation push-down engages for eligible
// queries, and EXPLAIN ANALYZE shows the exchange with per-worker counters.
TEST(DistDifferentialTest, SqlCatalogAndExplainAnalyze) {
  SavedWorkload tpch = SaveAndOpen(Tpch().combined, "tpch", 3);
  auto cluster = StartCluster(tpch, 2, 1);

  sql::SqlCatalog local_catalog;
  local_catalog.sharded_tables["tpch"] = tpch.sharded.get();
  sql::SqlCatalog dist_catalog = local_catalog;
  dist_catalog.dist = cluster.get();

  const char* statements[] = {
      // Aggregate push-down shape: partials merge in the coordinator.
      "SELECT l->>'l_returnflag', SUM(l->>'l_quantity'::BigInt), "
      "SUM(l->>'l_extendedprice'::Float), COUNT(*) FROM tpch l "
      "GROUP BY l->>'l_returnflag' ORDER BY 1",
      // Scan shape with a filter: row batches stream back.
      "SELECT l->>'l_orderkey'::BigInt, l->>'l_shipdate' FROM tpch l "
      "WHERE l->>'l_quantity'::BigInt > 45 ORDER BY 1, 2 LIMIT 20",
      // Join: distributed scans feed the local join above the exchange.
      "SELECT COUNT(*) FROM tpch o, tpch c "
      "WHERE o->>'o_custkey'::BigInt = c->>'c_custkey'::BigInt"};
  for (const char* statement : statements) {
    QueryContext ctx1, ctx2;
    auto local = sql::ExecuteSql(statement, local_catalog, ctx1);
    auto dist = sql::ExecuteSql(statement, dist_catalog, ctx2);
    ASSERT_TRUE(local.ok()) << local.status().ToString();
    ASSERT_TRUE(dist.ok()) << dist.status().ToString();
    EXPECT_EQ(Canonical(local.ValueOrDie().rows),
              Canonical(dist.ValueOrDie().rows))
        << statement;
  }

  QueryContext ctx;
  auto explained = sql::ExecuteSql(
      "EXPLAIN ANALYZE SELECT l->>'l_returnflag', COUNT(*) FROM tpch l "
      "GROUP BY l->>'l_returnflag' ORDER BY 1",
      dist_catalog, ctx);
  ASSERT_TRUE(explained.ok()) << explained.status().ToString();
  std::string plan;
  for (const auto& row : explained.ValueOrDie().rows) {
    plan += std::string(row[0].s) + "\n";
  }
  EXPECT_NE(plan.find("ExchangeAggregate"), std::string::npos) << plan;
  EXPECT_NE(plan.find("workers="), std::string::npos) << plan;
  EXPECT_NE(plan.find("w0_rows="), std::string::npos) << plan;
  EXPECT_NE(plan.find("w1_rows="), std::string::npos) << plan;
}

// Shard pruning happens in the coordinator with the same statistics the
// local scan uses: a selective range predicate on a hash-routed layout must
// report pruned shards and still answer identically.
TEST(DistDifferentialTest, CoordinatorShardPruning) {
  LoadOptions load_options;
  load_options.num_threads = 4;
  ShardOptions shard_options;
  shard_options.shard_count = 8;
  shard_options.routing = storage::ShardRouting::kHashKey;
  shard_options.routing_keys = {"l_orderkey"};
  auto loaded = ShardedRelation::Load(Tpch().combined, "tpch",
                                      StorageMode::kTiles, SmallTiles(),
                                      load_options, shard_options)
                    .MoveValueOrDie();
  SavedWorkload w;
  w.dir = PrivateDir();
  w.name = "tpch";
  w.shards = 8;
  ASSERT_TRUE(storage::SaveSharded(*loaded, w.dir).ok());
  w.manifest_path = storage::ShardManifestPath(w.dir, "tpch");
  w.sharded = storage::OpenSharded(w.manifest_path).MoveValueOrDie();

  auto cluster = StartCluster(w, 2, 1);
  sql::SqlCatalog catalog;
  catalog.sharded_tables["tpch"] = w.sharded.get();
  catalog.dist = cluster.get();
  // Point lookup on the routing key: at most one shard survives pruning.
  QueryContext ctx;
  auto result = sql::ExecuteSql(
      "SELECT COUNT(*) FROM tpch l WHERE l->>'l_orderkey'::BigInt = 1",
      catalog, ctx);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_GT(ctx.shards_pruned, 0u);
  EXPECT_LE(ctx.shards_scanned, 1u);

  // Same count locally.
  sql::SqlCatalog local_catalog;
  local_catalog.sharded_tables["tpch"] = w.sharded.get();
  QueryContext local_ctx;
  auto local = sql::ExecuteSql(
      "SELECT COUNT(*) FROM tpch l WHERE l->>'l_orderkey'::BigInt = 1",
      local_catalog, local_ctx);
  ASSERT_TRUE(local.ok());
  EXPECT_EQ(Canonical(local.ValueOrDie().rows),
            Canonical(result.ValueOrDie().rows));
}

}  // namespace
}  // namespace jsontiles::dist
