// Wire-format tests (DESIGN.md §13): every message codec round-trips
// losslessly, and the frame decoder survives a corpus of corrupted inputs —
// every truncation prefix and systematic bit flips of real encoded streams —
// without crashing (the CI sanitizer leg runs this under ASan) and without
// ever accepting a damaged frame as valid.

#include "dist/wire.h"

#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "exec/agg_state.h"
#include "exec/expression.h"
#include "util/arena.h"

namespace jsontiles::dist {
namespace {

using exec::AggSpec;
using exec::ExprPtr;
using exec::Row;
using exec::RowSet;
using exec::Value;

// ---------------------------------------------------------------------------
// Frame layer
// ---------------------------------------------------------------------------

std::vector<uint8_t> Payload(size_t n, uint8_t seed) {
  std::vector<uint8_t> p(n);
  for (size_t i = 0; i < n; i++) p[i] = static_cast<uint8_t>(seed + i * 7);
  return p;
}

TEST(DistWireTest, FrameRoundTripRaw) {
  // Near-random bytes do not compress: stored raw (comp_size == 0).
  std::vector<uint8_t> payload = Payload(300, 13);
  std::vector<uint8_t> stream;
  AppendFrame(FrameType::kRowBatch, payload, &stream);

  size_t consumed = 0;
  FrameType type;
  std::vector<uint8_t> decoded;
  ASSERT_TRUE(DecodeFrame(stream.data(), stream.size(), &consumed, &type,
                          &decoded)
                  .ok());
  EXPECT_EQ(consumed, stream.size());
  EXPECT_EQ(type, FrameType::kRowBatch);
  EXPECT_EQ(decoded, payload);
}

TEST(DistWireTest, FrameRoundTripCompressed) {
  // Highly repetitive payload: LZ4 engages (comp_size < raw_size on the
  // wire), decode restores the original bytes.
  std::vector<uint8_t> payload(64 * 1024, 0x42);
  std::vector<uint8_t> stream;
  AppendFrame(FrameType::kAggResult, payload, &stream);
  EXPECT_LT(stream.size(), payload.size() / 2);

  size_t consumed = 0;
  FrameType type;
  std::vector<uint8_t> decoded;
  ASSERT_TRUE(DecodeFrame(stream.data(), stream.size(), &consumed, &type,
                          &decoded)
                  .ok());
  EXPECT_EQ(type, FrameType::kAggResult);
  EXPECT_EQ(decoded, payload);
}

TEST(DistWireTest, FrameRoundTripEmpty) {
  std::vector<uint8_t> stream;
  AppendFrame(FrameType::kShutdown, {}, &stream);
  size_t consumed = 0;
  FrameType type;
  std::vector<uint8_t> decoded;
  ASSERT_TRUE(DecodeFrame(stream.data(), stream.size(), &consumed, &type,
                          &decoded)
                  .ok());
  EXPECT_EQ(type, FrameType::kShutdown);
  EXPECT_TRUE(decoded.empty());
}

TEST(DistWireTest, BackToBackFrames) {
  std::vector<uint8_t> stream;
  AppendFrame(FrameType::kHello, Payload(10, 1), &stream);
  AppendFrame(FrameType::kError, Payload(20, 2), &stream);
  size_t consumed = 0;
  FrameType type;
  std::vector<uint8_t> decoded;
  ASSERT_TRUE(DecodeFrame(stream.data(), stream.size(), &consumed, &type,
                          &decoded)
                  .ok());
  EXPECT_EQ(type, FrameType::kHello);
  ASSERT_TRUE(DecodeFrame(stream.data() + consumed, stream.size() - consumed,
                          &consumed, &type, &decoded)
                  .ok());
  EXPECT_EQ(type, FrameType::kError);
  EXPECT_EQ(decoded, Payload(20, 2));
}

// ---------------------------------------------------------------------------
// Message codecs
// ---------------------------------------------------------------------------

TEST(DistWireTest, HelloOpenOpenOkRoundTrip) {
  std::vector<uint8_t> buf;
  EncodeHello(HelloMsg{kWireVersion, 4242}, &buf);
  HelloMsg hello;
  ASSERT_TRUE(DecodeHello(buf, &hello).ok());
  EXPECT_EQ(hello.version, kWireVersion);
  EXPECT_EQ(hello.pid, 4242);

  buf.clear();
  OpenMsg open;
  open.manifest_path = "/tmp/x.jtsm";
  open.shards = {0, 2, 5};
  open.num_threads = 4;
  EncodeOpen(open, &buf);
  OpenMsg open2;
  ASSERT_TRUE(DecodeOpen(buf, &open2).ok());
  EXPECT_EQ(open2.manifest_path, open.manifest_path);
  EXPECT_EQ(open2.shards, open.shards);
  EXPECT_EQ(open2.num_threads, 4u);

  buf.clear();
  OpenOkMsg ok;
  ok.shard_rows = {100, 250, 3};
  EncodeOpenOk(ok, &buf);
  OpenOkMsg ok2;
  ASSERT_TRUE(DecodeOpenOk(buf, &ok2).ok());
  EXPECT_EQ(ok2.shard_rows, ok.shard_rows);

  // Descending shard list: rejected (the protocol requires ascending).
  buf.clear();
  open.shards = {5, 2};
  EncodeOpen(open, &buf);
  EXPECT_FALSE(DecodeOpen(buf, &open2).ok());
}

std::vector<Value> SampleValues() {
  return {Value::Null(),
          Value::Bool(true),
          Value::Bool(false),
          Value::Int(0),
          Value::Int(-1),
          Value::Int(INT64_MAX),
          Value::Int(INT64_MIN),
          Value::Float(0.0),
          Value::Float(-0.0),
          Value::Float(2.5),
          Value::Float(-1.0 / 3.0),
          Value::String(""),
          Value::String("a"),
          Value::String("shipped via wire ✓")};
}

TEST(DistWireTest, ValueRoundTrip) {
  Arena arena;
  for (const Value& v : SampleValues()) {
    std::vector<uint8_t> buf;
    WireWriter w(&buf);
    EncodeValue(v, &w);
    WireReader r(buf.data(), buf.size());
    Value out;
    ASSERT_TRUE(DecodeValue(&r, &arena, &out));
    EXPECT_TRUE(r.AtEnd());
    EXPECT_EQ(out.is_null(), v.is_null());
    if (!v.is_null()) {
      EXPECT_EQ(out.ToString(), v.ToString());
    }
  }
}

std::vector<ExprPtr> SampleExprs() {
  using namespace jsontiles::exec;  // NOLINT
  std::vector<ExprPtr> exprs;
  exprs.push_back(ConstInt(7));
  exprs.push_back(ConstFloat(3.25));
  exprs.push_back(ConstString("text"));
  exprs.push_back(ConstNull());
  exprs.push_back(Slot(3));
  exprs.push_back(Access("l", {"a", "b"}, ValueType::kInt));
  exprs.push_back(Gt(Access("l", {"qty"}, ValueType::kInt), ConstInt(45)));
  exprs.push_back(And(IsNotNull(Slot(0)), Not(IsNull(Slot(1)))));
  exprs.push_back(Like(Access("l", {"c"}, ValueType::kString), "%x_y%"));
  exprs.push_back(Like(Access("l", {"c"}, ValueType::kString), "a%", true));
  exprs.push_back(InList(Slot(0), {"alpha", "beta", "gamma"}));
  exprs.push_back(InListInt(Slot(1), {1, 2, 3, 5, 8}));
  exprs.push_back(Between(Slot(0), ConstInt(1), ConstInt(9)));
  exprs.push_back(Case({Gt(Slot(0), ConstInt(0)), ConstInt(1), ConstInt(0)}));
  exprs.push_back(Substring(Slot(0), 2, 3));
  exprs.push_back(Year(Access("l", {"d"}, ValueType::kTimestamp)));
  exprs.push_back(CastTo(Slot(2), ValueType::kFloat));
  exprs.push_back(ArrayContains("b", {"categories"}, "name", "Bars"));
  exprs.push_back(Add(Mul(Slot(0), ConstInt(2)), Neg(Slot(1))));
  return exprs;
}

TEST(DistWireTest, ExprRoundTrip) {
  for (const ExprPtr& e : SampleExprs()) {
    std::vector<uint8_t> buf;
    WireWriter w(&buf);
    EncodeExpr(*e, &w);
    WireReader r(buf.data(), buf.size());
    ExprPtr out;
    ASSERT_TRUE(DecodeExpr(&r, 0, &out).ok());
    EXPECT_TRUE(r.AtEnd());
    ASSERT_NE(out, nullptr);
    EXPECT_TRUE(exec::ExprEquals(*e, *out));
  }
  // NOT IN and IN must not be conflated (negated travels on the wire).
  auto in = exec::InList(exec::Slot(0), {"x"});
  std::vector<uint8_t> buf;
  WireWriter w(&buf);
  EncodeExpr(*in, &w);
  WireReader r(buf.data(), buf.size());
  ExprPtr out;
  ASSERT_TRUE(DecodeExpr(&r, 0, &out).ok());
  EXPECT_TRUE(exec::ExprEquals(*in, *out));
}

TEST(DistWireTest, FragmentRoundTrip) {
  using namespace jsontiles::exec;  // NOLINT
  FragmentMsg msg;
  msg.fragment_id = 3;
  msg.shard_index = 3;
  msg.enable_tile_skipping = false;
  msg.enable_vectorized = true;
  msg.accesses = {Access("l", {"a"}, ValueType::kInt),
                  Access("l", {"b"}, ValueType::kString)};
  msg.filter = Gt(Access("l", {"a"}, ValueType::kInt), ConstInt(10));
  msg.null_rejecting_paths = {"a", "b"};
  RangePredicate rp;
  rp.path = "a";
  rp.access_type = ValueType::kInt;
  rp.op = BinOp::kGt;
  rp.constant = Value::Int(10);
  msg.range_predicates.push_back(rp);
  RangePredicate rp2;
  rp2.path = "b";
  rp2.access_type = ValueType::kString;
  rp2.op = BinOp::kLe;
  rp2.constant = Value::String("zzz");
  msg.range_predicates.push_back(rp2);
  msg.group_by = {Slot(1)};
  msg.aggs = {AggSpec::CountStar(), AggSpec::Sum(Slot(0)),
              AggSpec::CountDistinct(Slot(1))};

  std::vector<uint8_t> buf;
  EncodeFragment(msg, &buf);
  FragmentMsg out;
  ASSERT_TRUE(DecodeFragment(buf, &out).ok());
  EXPECT_EQ(out.fragment_id, 3u);
  EXPECT_EQ(out.shard_index, 3u);
  EXPECT_FALSE(out.is_side);
  EXPECT_FALSE(out.enable_tile_skipping);
  EXPECT_TRUE(out.enable_vectorized);
  ASSERT_EQ(out.accesses.size(), 2u);
  EXPECT_TRUE(ExprEquals(*msg.accesses[1], *out.accesses[1]));
  ASSERT_NE(out.filter, nullptr);
  EXPECT_TRUE(ExprEquals(*msg.filter, *out.filter));
  EXPECT_EQ(out.null_rejecting_paths, msg.null_rejecting_paths);
  ASSERT_EQ(out.range_predicates.size(), 2u);
  EXPECT_EQ(out.range_predicates[0].path, "a");
  EXPECT_EQ(out.range_predicates[0].op, BinOp::kGt);
  EXPECT_EQ(out.range_predicates[1].constant.ToString(), "zzz");
  ASSERT_EQ(out.group_by.size(), 1u);
  ASSERT_EQ(out.aggs.size(), 3u);
  EXPECT_EQ(out.aggs[1].kind, AggSpec::Kind::kSum);
  ASSERT_NE(out.aggs[1].arg, nullptr);
  EXPECT_TRUE(ExprEquals(*msg.aggs[1].arg, *out.aggs[1].arg));

  // Side-relation fragment.
  FragmentMsg side;
  side.fragment_id = 0;
  side.shard_index = 1;
  side.is_side = true;
  side.side_path = "categories";
  side.accesses = {Access("s", {"name"}, ValueType::kString)};
  buf.clear();
  EncodeFragment(side, &buf);
  FragmentMsg side_out;
  ASSERT_TRUE(DecodeFragment(buf, &side_out).ok());
  EXPECT_TRUE(side_out.is_side);
  EXPECT_EQ(side_out.side_path, "categories");
}

TEST(DistWireTest, RowBatchRoundTrip) {
  RowSet rows;
  rows.push_back(Row{Value::Int(1), Value::String("one"), Value::Null()});
  rows.push_back(Row{Value::Int(2), Value::String(""), Value::Float(0.5)});
  rows.push_back(Row{});  // zero-width row survives too
  rows.push_back(Row{Value::Bool(false)});

  std::vector<uint8_t> buf;
  EncodeRowBatch(9, /*epoch=*/3, rows, 0, rows.size(), &buf);
  Arena arena;
  uint32_t fragment_id = 0;
  uint32_t epoch = 0;
  RowSet out;
  ASSERT_TRUE(DecodeRowBatch(buf, &arena, &fragment_id, &epoch, &out).ok());
  EXPECT_EQ(fragment_id, 9u);
  EXPECT_EQ(epoch, 3u);
  ASSERT_EQ(out.size(), rows.size());
  for (size_t i = 0; i < rows.size(); i++) {
    ASSERT_EQ(out[i].size(), rows[i].size()) << "row " << i;
    for (size_t j = 0; j < rows[i].size(); j++) {
      EXPECT_EQ(out[i][j].is_null(), rows[i][j].is_null());
      if (!rows[i][j].is_null()) {
        EXPECT_EQ(out[i][j].ToString(), rows[i][j].ToString());
      }
    }
  }

  // Sub-range encoding: rows [1, 3).
  buf.clear();
  EncodeRowBatch(9, /*epoch=*/1, rows, 1, 3, &buf);
  out.clear();
  ASSERT_TRUE(DecodeRowBatch(buf, &arena, &fragment_id, &epoch, &out).ok());
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(epoch, 1u);
  EXPECT_EQ(out[0][0].ToString(), "2");
}

TEST(DistWireTest, AggPartialRoundTrip) {
  using namespace jsontiles::exec;  // NOLINT
  // Build a real group table the way a worker does: accumulate rows.
  RowSet rows;
  rows.push_back(Row{Value::String("a"), Value::Int(1), Value::Float(1.5)});
  rows.push_back(Row{Value::String("a"), Value::Int(2), Value::Float(-0.25)});
  rows.push_back(Row{Value::String("b"), Value::Int(5), Value::Null()});
  std::vector<ExprPtr> group_by = {Slot(0)};
  std::vector<AggSpec> aggs = {AggSpec::CountStar(), AggSpec::Sum(Slot(1)),
                               AggSpec::Sum(Slot(2)), AggSpec::Min(Slot(1)),
                               AggSpec::CountDistinct(Slot(1))};
  Arena arena;
  AggGroupMap groups;
  AccumulateRows(rows, group_by, aggs, &arena, &groups);

  std::vector<uint8_t> buf;
  EncodeAggPartial(7, /*epoch=*/2, groups, aggs, &buf);
  Arena decode_arena;
  AggPartial partial;
  ASSERT_TRUE(DecodeAggPartial(buf, aggs.size(), &decode_arena, &partial).ok());
  EXPECT_EQ(partial.fragment_id, 7u);
  EXPECT_EQ(partial.epoch, 2u);
  ASSERT_EQ(partial.groups.size(), 2u);

  // Merging the decoded partial into an empty table and finalizing gives the
  // same result as finalizing the original — the distributed merge contract.
  AggGroupMap merged;
  for (auto& [hash, group] : partial.groups) {
    MergeGroup(&merged, hash, std::move(group), aggs);
  }
  RowSet a, b;
  FinalizeGroups(groups, aggs, &a);
  FinalizeGroups(merged, aggs, &b);
  auto canon = [](RowSet rows) {
    std::vector<std::string> lines;
    for (const auto& row : rows) {
      std::string line;
      for (const auto& v : row) line += (v.is_null() ? "∅" : v.ToString()) + "|";
      lines.push_back(line);
    }
    std::sort(lines.begin(), lines.end());
    return lines;
  };
  EXPECT_EQ(canon(a), canon(b));
}

TEST(DistWireTest, FragmentDoneAndStatusRoundTrip) {
  std::vector<uint8_t> buf;
  FragmentDoneMsg done;
  done.fragment_id = 2;
  done.epoch = 4;
  done.rows_out = 12345;
  done.tiles_scanned = 10;
  done.tiles_skipped = 7;
  done.wall_nanos = 999;
  EncodeFragmentDone(done, &buf);
  FragmentDoneMsg done2;
  ASSERT_TRUE(DecodeFragmentDone(buf, &done2).ok());
  EXPECT_EQ(done2.fragment_id, 2u);
  EXPECT_EQ(done2.epoch, 4u);
  EXPECT_EQ(done2.rows_out, 12345u);
  EXPECT_EQ(done2.tiles_scanned, 10u);
  EXPECT_EQ(done2.tiles_skipped, 7u);
  EXPECT_EQ(done2.wall_nanos, 999u);

  buf.clear();
  EncodeStatus(Status::NotFound("shard 3 missing"), &buf);
  Status decoded;
  ASSERT_TRUE(DecodeStatus(buf, &decoded).ok());
  EXPECT_EQ(decoded.code(), StatusCode::kNotFound);
  EXPECT_NE(decoded.ToString().find("shard 3 missing"), std::string::npos);
}

// Regression: every StatusCode — including kCancelled and kResourceExhausted,
// which workers report from admission/spill paths — must survive the wire.
// The decoder once bounded codes at kInternal, turning a clean per-query
// cancellation into a malformed-frame protocol failure at the coordinator.
TEST(DistWireTest, AllStatusCodesRoundTrip) {
  for (uint8_t code = 1; code <= static_cast<uint8_t>(kMaxStatusCode);
       ++code) {
    const Status original(static_cast<StatusCode>(code), "msg");
    std::vector<uint8_t> buf;
    EncodeStatus(original, &buf);
    Status decoded;
    ASSERT_TRUE(DecodeStatus(buf, &decoded).ok())
        << "code " << static_cast<int>(code) << " rejected by DecodeStatus";
    EXPECT_EQ(decoded.code(), original.code());

    FragmentErrorMsg msg;
    msg.fragment_id = 1;
    msg.epoch = 1;
    msg.error = original;
    buf.clear();
    EncodeFragmentError(msg, &buf);
    FragmentErrorMsg out;
    ASSERT_TRUE(DecodeFragmentError(buf, &out).ok())
        << "code " << static_cast<int>(code)
        << " rejected by DecodeFragmentError";
    EXPECT_EQ(out.error.code(), original.code());
  }

  // One past the last valid code is still rejected.
  std::vector<uint8_t> buf;
  EncodeStatus(Status(static_cast<StatusCode>(
                          static_cast<uint8_t>(kMaxStatusCode) + 1),
                      "bad"),
               &buf);
  Status decoded;
  EXPECT_FALSE(DecodeStatus(buf, &decoded).ok());
}

TEST(DistWireTest, FragmentErrorRoundTrip) {
  std::vector<uint8_t> buf;
  FragmentErrorMsg msg;
  msg.fragment_id = 5;
  msg.epoch = 2;
  msg.error = Status::InvalidArgument("bad access path");
  EncodeFragmentError(msg, &buf);
  FragmentErrorMsg out;
  ASSERT_TRUE(DecodeFragmentError(buf, &out).ok());
  EXPECT_EQ(out.fragment_id, 5u);
  EXPECT_EQ(out.epoch, 2u);
  EXPECT_EQ(out.error.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(out.error.message().find("bad access path"), std::string::npos);

  // Truncated payload is rejected, not misread.
  std::vector<uint8_t> cut(buf.begin(), buf.begin() + buf.size() / 2);
  EXPECT_FALSE(DecodeFragmentError(cut, &out).ok());
}

// ---------------------------------------------------------------------------
// Corrupt-frame corpus
// ---------------------------------------------------------------------------

/// A realistic stream: hello, open, fragment, row batch, agg partial, done,
/// error — every codec's bytes appear in frame payloads.
std::vector<uint8_t> RealStream() {
  using namespace jsontiles::exec;  // NOLINT
  std::vector<uint8_t> stream, buf;

  EncodeHello(HelloMsg{kWireVersion, 77}, &buf);
  AppendFrame(FrameType::kHello, buf, &stream);

  buf.clear();
  OpenMsg open;
  open.manifest_path = "/tmp/tpch.jtsm";
  open.shards = {0, 1, 2};
  EncodeOpen(open, &buf);
  AppendFrame(FrameType::kOpen, buf, &stream);

  buf.clear();
  FragmentMsg frag;
  frag.fragment_id = 1;
  frag.shard_index = 1;
  frag.accesses = {Access("l", {"k"}, ValueType::kInt)};
  frag.filter = Gt(Access("l", {"k"}, ValueType::kInt), ConstInt(3));
  frag.group_by = {Slot(0)};
  frag.aggs = {AggSpec::CountStar()};
  EncodeFragment(frag, &buf);
  AppendFrame(FrameType::kAggFragment, buf, &stream);

  buf.clear();
  RowSet rows;
  rows.push_back(Row{Value::Int(4), Value::String("wire")});
  rows.push_back(Row{Value::Null(), Value::Float(1.25)});
  EncodeRowBatch(1, /*epoch=*/1, rows, 0, rows.size(), &buf);
  AppendFrame(FrameType::kRowBatch, buf, &stream);

  buf.clear();
  Arena arena;
  AggGroupMap groups;
  AccumulateRows(rows, {Slot(0)}, {AggSpec::CountStar()}, &arena, &groups);
  EncodeAggPartial(1, /*epoch=*/1, groups, {AggSpec::CountStar()}, &buf);
  AppendFrame(FrameType::kAggResult, buf, &stream);

  buf.clear();
  FragmentDoneMsg done;
  done.fragment_id = 1;
  done.epoch = 1;
  done.rows_out = 2;
  done.tiles_scanned = 1;
  done.tiles_skipped = 0;
  done.wall_nanos = 5;
  EncodeFragmentDone(done, &buf);
  AppendFrame(FrameType::kFragmentDone, buf, &stream);

  buf.clear();
  FragmentErrorMsg ferr;
  ferr.fragment_id = 1;
  ferr.epoch = 1;
  ferr.error = Status::NotFound("tile 9 missing");
  EncodeFragmentError(ferr, &buf);
  AppendFrame(FrameType::kFragmentError, buf, &stream);

  buf.clear();
  EncodeStatus(Status::Internal("boom"), &buf);
  AppendFrame(FrameType::kError, buf, &stream);
  return stream;
}

/// Decode frames (and their payloads, per type) until error or exhaustion.
/// Must never crash — ASan is the assertion.
void DrainStream(const uint8_t* data, size_t size) {
  size_t off = 0;
  int guard = 0;
  while (off < size && guard++ < 1000) {
    size_t consumed = 0;
    FrameType type;
    std::vector<uint8_t> payload;
    if (!DecodeFrame(data + off, size - off, &consumed, &type, &payload)
             .ok()) {
      return;
    }
    // Feed the payload to its message decoder too (corruption may leave the
    // frame checksum... only if the flip hit a part the checksum does not
    // cover — which cannot happen — so this mostly runs on intact frames
    // ahead of the damaged one; still worth exercising).
    Arena arena;
    switch (type) {
      case FrameType::kHello: {
        HelloMsg m;
        (void)DecodeHello(payload, &m);
        break;
      }
      case FrameType::kOpen: {
        OpenMsg m;
        (void)DecodeOpen(payload, &m);
        break;
      }
      case FrameType::kOpenOk: {
        OpenOkMsg m;
        (void)DecodeOpenOk(payload, &m);
        break;
      }
      case FrameType::kScanFragment:
      case FrameType::kAggFragment: {
        FragmentMsg m;
        (void)DecodeFragment(payload, &m);
        break;
      }
      case FrameType::kRowBatch: {
        uint32_t id;
        uint32_t epoch;
        RowSet rows;
        (void)DecodeRowBatch(payload, &arena, &id, &epoch, &rows);
        break;
      }
      case FrameType::kAggResult: {
        AggPartial m;
        (void)DecodeAggPartial(payload, 1, &arena, &m);
        break;
      }
      case FrameType::kFragmentDone: {
        FragmentDoneMsg m;
        (void)DecodeFragmentDone(payload, &m);
        break;
      }
      case FrameType::kFragmentError: {
        FragmentErrorMsg m;
        (void)DecodeFragmentError(payload, &m);
        break;
      }
      case FrameType::kError: {
        Status st;
        (void)DecodeStatus(payload, &st);
        break;
      }
      default:
        break;
    }
    off += consumed;
  }
}

// Every truncation prefix of the stream: the decoder must reject the cut
// frame (or stop cleanly at a frame boundary) and never read past the end.
TEST(DistWireTest, CorpusTruncations) {
  const std::vector<uint8_t> stream = RealStream();
  for (size_t n = 0; n < stream.size(); n++) {
    DrainStream(stream.data(), n);
  }
}

// Bit flips: every bit of the first frames and a stride over the rest. A
// flipped frame must be caught (checksum/bounds) — and whatever happens, no
// crash, no over-read, no unbounded allocation.
TEST(DistWireTest, CorpusBitFlips) {
  const std::vector<uint8_t> stream = RealStream();
  std::vector<uint8_t> mutated = stream;
  for (size_t byte = 0; byte < stream.size(); byte++) {
    // All 8 bits for the first 256 bytes (headers + small frames), one bit
    // per byte beyond that to bound the corpus.
    const int bits = byte < 256 ? 8 : 1;
    for (int bit = 0; bit < bits; bit++) {
      mutated[byte] ^= static_cast<uint8_t>(1u << bit);
      DrainStream(mutated.data(), mutated.size());
      mutated[byte] ^= static_cast<uint8_t>(1u << bit);
    }
  }
  EXPECT_EQ(mutated, stream);
}

// A flipped payload bit must never decode as a valid frame (checksum).
TEST(DistWireTest, PayloadCorruptionDetected) {
  std::vector<uint8_t> payload = Payload(100, 5);
  std::vector<uint8_t> stream;
  AppendFrame(FrameType::kRowBatch, payload, &stream);
  // Flip one payload byte (header is 17 bytes).
  for (size_t pos : {size_t{17}, stream.size() - 1}) {
    std::vector<uint8_t> bad = stream;
    bad[pos] ^= 0x10;
    size_t consumed = 0;
    FrameType type;
    std::vector<uint8_t> decoded;
    EXPECT_FALSE(
        DecodeFrame(bad.data(), bad.size(), &consumed, &type, &decoded).ok())
        << "flip at " << pos;
  }
}

// Corrupt length fields are rejected before any allocation: a raw_size far
// beyond the cap must fail cleanly even though the buffer is tiny.
TEST(DistWireTest, AbsurdLengthRejected) {
  std::vector<uint8_t> stream;
  AppendFrame(FrameType::kHello, Payload(8, 3), &stream);
  // raw_size lives at bytes [1, 5).
  std::vector<uint8_t> bad = stream;
  bad[1] = 0xFF;
  bad[2] = 0xFF;
  bad[3] = 0xFF;
  bad[4] = 0x7F;
  size_t consumed = 0;
  FrameType type;
  std::vector<uint8_t> decoded;
  EXPECT_FALSE(
      DecodeFrame(bad.data(), bad.size(), &consumed, &type, &decoded).ok());
}

// ---------------------------------------------------------------------------
// Socket deadlines
// ---------------------------------------------------------------------------

/// A quiet peer is bounded by the idle deadline: no bytes at all must fail
/// in ~idle_timeout_ms, not hang on the (much larger) frame budget.
TEST(DistWireTest, ReadFrameIdleTimeout) {
  int fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  const auto t0 = std::chrono::steady_clock::now();
  FrameType type;
  std::vector<uint8_t> payload;
  Status st = ReadFrame(fds[0], /*idle_timeout_ms=*/100,
                        /*frame_timeout_ms=*/60000, &type, &payload, nullptr);
  const auto elapsed = std::chrono::steady_clock::now() - t0;
  EXPECT_FALSE(st.ok());
  EXPECT_NE(st.message().find("idle"), std::string::npos) << st.ToString();
  EXPECT_LT(elapsed, std::chrono::seconds(10));
  ::close(fds[0]);
  ::close(fds[1]);
}

/// Regression: a peer that opens a frame header and then stalls must be cut
/// off by the frame deadline — it must NOT get to ride the idle budget once
/// the first byte has arrived.
TEST(DistWireTest, ReadFrameStalledPeerTimesOutOnFrameDeadline) {
  int fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  // 5 bytes of a 17-byte frame header, then silence.
  std::vector<uint8_t> stream;
  AppendFrame(FrameType::kRowBatch, Payload(64, 9), &stream);
  ASSERT_EQ(::write(fds[1], stream.data(), 5), 5);

  const auto t0 = std::chrono::steady_clock::now();
  FrameType type;
  std::vector<uint8_t> payload;
  // Generous idle budget, tight frame budget: the stall must hit the frame
  // deadline, so the whole call returns in ~200ms, not ~60s.
  Status st = ReadFrame(fds[0], /*idle_timeout_ms=*/60000,
                        /*frame_timeout_ms=*/200, &type, &payload, nullptr);
  const auto elapsed = std::chrono::steady_clock::now() - t0;
  EXPECT_FALSE(st.ok());
  EXPECT_NE(st.message().find("recv"), std::string::npos) << st.ToString();
  EXPECT_LT(elapsed, std::chrono::seconds(30));
  ::close(fds[0]);
  ::close(fds[1]);
}

/// A slow-but-progressing peer inside the frame budget still succeeds: the
/// frame deadline bounds the whole frame, not each byte.
TEST(DistWireTest, ReadFrameSlowPeerWithinBudgetSucceeds) {
  int fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  std::vector<uint8_t> stream;
  const std::vector<uint8_t> payload_in = Payload(64, 7);
  AppendFrame(FrameType::kHello, payload_in, &stream);

  std::thread writer([&] {
    const size_t half = stream.size() / 2;
    (void)!::write(fds[1], stream.data(), half);
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    (void)!::write(fds[1], stream.data() + half, stream.size() - half);
  });
  FrameType type;
  std::vector<uint8_t> payload;
  Status st = ReadFrame(fds[0], /*idle_timeout_ms=*/10000,
                        /*frame_timeout_ms=*/10000, &type, &payload, nullptr);
  writer.join();
  ASSERT_TRUE(st.ok()) << st.ToString();
  EXPECT_EQ(type, FrameType::kHello);
  EXPECT_EQ(payload, payload_in);
  ::close(fds[0]);
  ::close(fds[1]);
}

TEST(DistWireTest, UnknownFrameTypeRejected) {
  std::vector<uint8_t> stream;
  AppendFrame(FrameType::kHello, Payload(8, 3), &stream);
  std::vector<uint8_t> bad = stream;
  bad[0] = 0;  // below the valid range
  size_t consumed = 0;
  FrameType type;
  std::vector<uint8_t> decoded;
  EXPECT_FALSE(
      DecodeFrame(bad.data(), bad.size(), &consumed, &type, &decoded).ok());
  bad[0] = kMaxFrameType + 1;
  EXPECT_FALSE(
      DecodeFrame(bad.data(), bad.size(), &consumed, &type, &decoded).ok());
}

}  // namespace
}  // namespace jsontiles::dist
