// Chaos harness for the distributed runtime (DESIGN.md §14): arm every
// initial worker with a seeded crash at a random result-frame boundary
// (dist.worker_crash_frame=nth:N — the worker SIGKILLs itself mid-stream, so
// the coordinator sees EOF with partial output staged), then run the
// Figure-14 workloads and require every answer to stay BIT-identical to the
// unsharded in-process baseline. The point of the sweep is that recovery is
// not best-effort: fragment re-dispatch after a crash at an arbitrary frame
// boundary must discard the dead worker's partial output atomically and
// produce exactly the bytes a crash-free run produces, across worker counts,
// shard counts and seeds — with the recovery observable (fragments_retried,
// workers_respawned) and zero worker processes leaked.

#include "util/failpoint.h"

#if JSONTILES_FAILPOINTS_AVAILABLE

#include <sys/stat.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <map>
#include <memory>
#include <random>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "dist/cluster.h"
#include "storage/loader.h"
#include "storage/shard.h"
#include "util/logging.h"
#include "workload/tpch.h"
#include "workload/tpch_queries.h"
#include "workload/yelp.h"

#ifndef JSONTILES_WORKERD_PATH
#error "dist tests require the JSONTILES_WORKERD_PATH compile definition"
#endif

namespace jsontiles::dist {
namespace {

using exec::ExecOptions;
using exec::QueryContext;
using exec::RowSet;
using storage::LoadOptions;
using storage::Relation;
using storage::ShardedRelation;
using storage::ShardOptions;
using storage::StorageMode;

std::string Canonical(const RowSet& rows) {
  std::string out;
  for (const auto& row : rows) {
    for (const auto& v : row) {
      out += v.is_null() ? "∅" : v.ToString();
      out += "|";
    }
    out += "\n";
  }
  return out;
}

const workload::TpchData& Tpch() {
  static const workload::TpchData data = [] {
    workload::TpchOptions options;
    options.scale_factor = 0.004;
    return workload::GenerateTpch(options);
  }();
  return data;
}

const std::vector<std::string>& Yelp() {
  static const std::vector<std::string> docs = [] {
    workload::YelpOptions options;
    options.num_business = 50;
    return workload::GenerateYelp(options);
  }();
  return docs;
}

tiles::TileConfig SmallTiles() {
  tiles::TileConfig config;
  config.tile_size = 128;
  return config;
}

// The chaos query mix: aggregate push-down shapes (partials + merge) and
// scan/join shapes (row-batch streams) — both commit paths must survive a
// crash at any frame boundary.
constexpr int kTpchQueries[] = {1, 3, 6, 12, 13};
constexpr int kYelpQueries[] = {1, 2, 3};

std::string TpchBaseline(int query) {
  static std::unique_ptr<Relation> rel;
  static std::map<int, std::string> cache;
  auto it = cache.find(query);
  if (it != cache.end()) return it->second;
  if (rel == nullptr) {
    storage::Loader loader(StorageMode::kTiles, SmallTiles());
    rel = loader.Load(Tpch().combined, "tpch").MoveValueOrDie();
  }
  QueryContext ctx;
  return cache[query] = Canonical(workload::RunTpchQuery(query, *rel, ctx));
}

std::string YelpBaseline(int query) {
  static std::unique_ptr<Relation> rel;
  static std::map<int, std::string> cache;
  auto it = cache.find(query);
  if (it != cache.end()) return it->second;
  if (rel == nullptr) {
    storage::Loader loader(StorageMode::kTiles, SmallTiles());
    rel = loader.Load(Yelp(), "yelp").MoveValueOrDie();
  }
  QueryContext ctx;
  return cache[query] = Canonical(workload::RunYelpQuery(query, *rel, ctx));
}

/// A saved + reopened sharded workload, plus cleanup of its files.
struct SavedWorkload {
  std::string manifest_path;
  std::unique_ptr<ShardedRelation> sharded;
  std::string dir;
  std::string name;
  size_t shards = 0;

  ~SavedWorkload() {
    for (size_t s = 0; s < shards; s++) {
      std::remove(
          (dir + "/" + name + ".shard-" + std::to_string(s) + ".jtrl")
              .c_str());
    }
    if (!manifest_path.empty()) std::remove(manifest_path.c_str());
    ::rmdir(dir.c_str());  // succeeds once the last workload is gone
  }
};

std::unique_ptr<SavedWorkload> SaveAndOpen(const std::vector<std::string>& docs,
                                           const std::string& name,
                                           size_t shards) {
  LoadOptions load_options;
  load_options.num_threads = 4;
  ShardOptions shard_options;
  shard_options.shard_count = shards;
  auto loaded = ShardedRelation::Load(docs, name, StorageMode::kTiles,
                                      SmallTiles(), load_options,
                                      shard_options)
                    .MoveValueOrDie();
  auto out = std::make_unique<SavedWorkload>();
  // Per-process directory: ctest runs the chaos tests in parallel with the
  // other dist suites, which save workloads under the same names.
  out->dir = ::testing::TempDir() + "chaos_" + std::to_string(::getpid());
  ::mkdir(out->dir.c_str(), 0755);
  out->name = name;
  out->shards = shards;
  JSONTILES_CHECK(storage::SaveSharded(*loaded, out->dir).ok());
  out->manifest_path = storage::ShardManifestPath(out->dir, name);
  out->sharded = storage::OpenSharded(out->manifest_path).MoveValueOrDie();
  return out;
}

/// Start a cluster whose initial workers each carry a seeded crash point:
/// worker i SIGKILLs itself while writing its `crash_frame[i]`-th result
/// frame. Respawned workers are healthy (respawn_failpoints stays empty).
std::unique_ptr<Cluster> StartChaosCluster(const SavedWorkload& w,
                                           size_t workers,
                                           const std::vector<int>& crash_frame) {
  ClusterOptions options;
  options.num_workers = workers;
  options.workerd_path = JSONTILES_WORKERD_PATH;
  options.per_worker_failpoints.resize(workers);
  for (size_t i = 0; i < workers; i++) {
    options.per_worker_failpoints[i].push_back(
        "dist.worker_crash_frame=nth:" + std::to_string(crash_frame[i]));
  }
  auto cluster = Cluster::Start(w.manifest_path, w.sharded.get(), options);
  if (!cluster.ok()) {
    ADD_FAILURE() << "Cluster::Start: " << cluster.status().ToString();
  }
  return cluster.MoveValueOrDie();
}

/// Small backoffs: chaos sweeps measure correctness, not patience.
ExecOptions FastRetry() {
  ExecOptions options;
  options.dist_retry.respawn_backoff_ms = 1;
  options.dist_retry.respawn_backoff_cap_ms = 10;
  return options;
}

void ExpectNoChildren(const char* where) {
  errno = 0;
  EXPECT_EQ(::waitpid(-1, nullptr, WNOHANG), -1) << where;
  EXPECT_EQ(errno, ECHILD) << where;
}

constexpr size_t kShardCounts[] = {3, 8};
constexpr size_t kWorkerCounts[] = {2, 4};
constexpr uint32_t kSeeds[] = {7, 42};

// The sweep: (shards × workers × seeds), every initial worker armed to die
// at a seeded frame boundary, every query bit-identical to the unsharded
// baseline, at least one fragment retried per cluster, no leaked processes.
TEST(DistChaosTest, SeededCrashSweepStaysBitIdentical) {
  for (size_t shards : kShardCounts) {
    auto tpch = SaveAndOpen(Tpch().combined, "tpch", shards);
    auto yelp = SaveAndOpen(Yelp(), "yelp", shards);
    for (size_t workers : kWorkerCounts) {
      for (uint32_t seed : kSeeds) {
        // Frame boundaries 1..5: early enough that every worker that serves
        // at least one fragment is guaranteed to hit its crash point within
        // the query mix (every fragment writes at least one result frame).
        std::mt19937 rng(seed);
        std::uniform_int_distribution<int> frame(1, 5);
        std::vector<int> crash_frame(workers);
        for (size_t i = 0; i < workers; i++) crash_frame[i] = frame(rng);

        const std::string label = "shards=" + std::to_string(shards) +
                                  " workers=" + std::to_string(workers) +
                                  " seed=" + std::to_string(seed);
        auto tpch_cluster = StartChaosCluster(*tpch, workers, crash_frame);
        for (int q : kTpchQueries) {
          QueryContext ctx(FastRetry());
          ctx.dist = tpch_cluster.get();
          EXPECT_EQ(Canonical(workload::RunTpchQuery(q, *tpch->sharded, ctx)),
                    TpchBaseline(q))
              << "TPC-H Q" << q << " " << label;
          Status st = ctx.ConsumeStatus();
          EXPECT_TRUE(st.ok()) << "TPC-H Q" << q << " " << label << ": "
                               << st.ToString();
        }
        // Every worker that served a fragment crashed exactly once and was
        // replaced; the recovery must be visible in the cluster metrics.
        EXPECT_GE(tpch_cluster->fragments_retried(), 1u) << label;
        EXPECT_GE(tpch_cluster->workers_respawned(), 1u) << label;
        EXPECT_EQ(tpch_cluster->alive_workers(), workers) << label;
        tpch_cluster.reset();

        auto yelp_cluster = StartChaosCluster(*yelp, workers, crash_frame);
        for (int q : kYelpQueries) {
          QueryContext ctx(FastRetry());
          ctx.dist = yelp_cluster.get();
          EXPECT_EQ(Canonical(workload::RunYelpQuery(q, *yelp->sharded, ctx)),
                    YelpBaseline(q))
              << "Yelp Y" << q << " " << label;
          Status st = ctx.ConsumeStatus();
          EXPECT_TRUE(st.ok()) << "Yelp Y" << q << " " << label << ": "
                               << st.ToString();
        }
        EXPECT_GE(yelp_cluster->fragments_retried(), 1u) << label;
        yelp_cluster.reset();

        // Both clusters torn down: every worker ever spawned (initial,
        // crashed, respawned) must be reaped — zero zombies, zero leaks.
        ExpectNoChildren(label.c_str());
      }
    }
  }
}

// Chaos under concurrent fragment streams: more workers than shards leaves
// idle workers whose crash points never fire — recovery must not wait on
// them, and the armed workers' deaths still recover cleanly.
TEST(DistChaosTest, IdleArmedWorkersDoNotStall) {
  auto tpch = SaveAndOpen(Tpch().combined, "tpch", 3);
  // 6 workers, 3 shards: at least 3 workers never receive a fragment.
  auto cluster = StartChaosCluster(*tpch, 6, {1, 1, 1, 1, 1, 1});
  QueryContext ctx(FastRetry());
  ctx.dist = cluster.get();
  EXPECT_EQ(Canonical(workload::RunTpchQuery(6, *tpch->sharded, ctx)),
            TpchBaseline(6));
  Status st = ctx.ConsumeStatus();
  EXPECT_TRUE(st.ok()) << st.ToString();
  EXPECT_GE(cluster->fragments_retried(), 1u);
  cluster.reset();
  ExpectNoChildren("idle-armed teardown");
}

}  // namespace
}  // namespace jsontiles::dist

#endif  // JSONTILES_FAILPOINTS_AVAILABLE
