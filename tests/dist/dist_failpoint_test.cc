// Failure injection for the distributed runtime (DESIGN.md §13, §14): every
// remote failure mode must surface as recovery or as a clean Status on the
// coordinator — never a hang, never a crash, never a wrong answer.
// Coordinator-side failpoints (dist.connect, dist.frame_write) are enabled
// in-process; worker-side ones (dist.worker_exec, dist.worker_crash,
// dist.worker_hang, dist.worker_stale_frame, dist.worker_ignore_shutdown)
// are forwarded on the workerd command line because failpoints are
// per-process.
//
// The failure model under test (the §14 decision matrix): a transport fault
// — worker death, EPIPE, a hung worker past the idle-liveness deadline —
// triggers recovery (kill, respawn with backoff, re-dispatch by epoch), and
// the query still returns bit-identical results; a worker that *reports* a
// deterministic failure (kFragmentError) fails only that query; exhausted
// retry budgets fail the query cleanly without poisoning later ones; and a
// cluster only refuses queries once every worker slot is permanently dead.

#include "util/failpoint.h"

#if JSONTILES_FAILPOINTS_AVAILABLE

#include <sys/stat.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "dist/cluster.h"
#include "storage/shard.h"
#include "util/logging.h"
#include "workload/tpch.h"
#include "workload/tpch_queries.h"

#ifndef JSONTILES_WORKERD_PATH
#error "dist tests require the JSONTILES_WORKERD_PATH compile definition"
#endif

namespace jsontiles::dist {
namespace {

using exec::ExecOptions;
using exec::QueryContext;
using exec::RowSet;

std::vector<std::string> Canon(const RowSet& rows) {
  std::vector<std::string> lines;
  for (const auto& row : rows) {
    std::string line;
    for (const auto& v : row) line += (v.is_null() ? "∅" : v.ToString()) + "|";
    lines.push_back(line);
  }
  std::sort(lines.begin(), lines.end());
  return lines;
}

class DistFailpointTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    workload::TpchOptions options;
    options.scale_factor = 0.002;
    docs_ = new std::vector<std::string>(
        workload::GenerateTpch(options).combined);
    storage::LoadOptions load_options;
    load_options.num_threads = 2;
    storage::ShardOptions shard_options;
    shard_options.shard_count = 3;
    auto loaded = storage::ShardedRelation::Load(
                      *docs_, "tpch", storage::StorageMode::kTiles, {},
                      load_options, shard_options)
                      .MoveValueOrDie();
    // Per-process directory: ctest runs each TEST_F as its own process in
    // parallel, and every one of them saves this workload.
    dir_ = new std::string(::testing::TempDir() + "fp_" +
                           std::to_string(::getpid()));
    JSONTILES_CHECK(::mkdir(dir_->c_str(), 0755) == 0);
    JSONTILES_CHECK(storage::SaveSharded(*loaded, *dir_).ok());
    manifest_path_ =
        new std::string(storage::ShardManifestPath(*dir_, "tpch"));
    sharded_ = storage::OpenSharded(*manifest_path_).MoveValueOrDie().release();

    // Local (undistributed) Q6: the identity baseline for recovery tests.
    QueryContext ctx;
    q6_baseline_ = new std::vector<std::string>(
        Canon(workload::RunTpchQuery(6, *sharded_, ctx)));
    JSONTILES_CHECK(ctx.ConsumeStatus().ok());
  }

  static void TearDownTestSuite() {
    delete q6_baseline_;
    delete sharded_;
    for (size_t s = 0; s < 3; s++) {
      std::remove(
          (*dir_ + "/tpch.shard-" + std::to_string(s) + ".jtrl").c_str());
    }
    std::remove(manifest_path_->c_str());
    ::rmdir(dir_->c_str());
    delete manifest_path_;
    delete dir_;
    delete docs_;
  }

  void TearDown() override { failpoint::DisableAll(); }

  static ClusterOptions Options() {
    ClusterOptions options;
    options.num_workers = 2;
    options.workerd_path = JSONTILES_WORKERD_PATH;
    return options;
  }

  /// Fast recovery budgets so tests spend milliseconds, not seconds, in
  /// backoff.
  static ExecOptions FastRetry() {
    ExecOptions options;
    options.dist_retry.respawn_backoff_ms = 1;
    options.dist_retry.respawn_backoff_cap_ms = 10;
    return options;
  }

  /// Run TPC-H Q6 (single-table filtered aggregate — exercises the agg
  /// push-down) and return the context's failure status (OK on success).
  /// On success `rows_out` (optional) receives the canonicalized result.
  static Status RunQ6(Cluster* cluster, ExecOptions exec_options = {},
                      std::vector<std::string>* rows_out = nullptr) {
    QueryContext ctx(exec_options);
    ctx.dist = cluster;
    RowSet rows = workload::RunTpchQuery(6, *sharded_, ctx);
    Status st = ctx.ConsumeStatus();
    if (st.ok() && rows_out != nullptr) *rows_out = Canon(rows);
    return st;
  }

  /// Assert this process has no children at all — every worker ever spawned
  /// has been reaped (no zombies) and none is still running.
  static void ExpectNoChildren() {
    int wstatus = 0;
    errno = 0;
    pid_t r = ::waitpid(-1, &wstatus, WNOHANG);
    EXPECT_EQ(r, -1);
    EXPECT_EQ(errno, ECHILD);
  }

  static std::vector<std::string>* docs_;
  static std::string* dir_;
  static std::string* manifest_path_;
  static storage::ShardedRelation* sharded_;
  static std::vector<std::string>* q6_baseline_;
};

std::vector<std::string>* DistFailpointTest::docs_ = nullptr;
std::string* DistFailpointTest::dir_ = nullptr;
std::string* DistFailpointTest::manifest_path_ = nullptr;
storage::ShardedRelation* DistFailpointTest::sharded_ = nullptr;
std::vector<std::string>* DistFailpointTest::q6_baseline_ = nullptr;

// Every connect attempt fails: Start must give up at connect_timeout_ms with
// a clean Status (and reap the spawned workers — no orphans, no hang).
TEST_F(DistFailpointTest, ConnectTimeoutFailsCleanly) {
  failpoint::Enable("dist.connect", failpoint::Spec::Always());
  ClusterOptions options = Options();
  options.connect_timeout_ms = 300;
  auto cluster = Cluster::Start(*manifest_path_, sharded_, options);
  ASSERT_FALSE(cluster.ok());
  EXPECT_NE(cluster.status().ToString().find("connect"), std::string::npos)
      << cluster.status().ToString();
  // A failed Start leaves no children behind either.
  ExpectNoChildren();
}

// A frame write failure during the Start handshake (kOpen) surfaces cleanly.
TEST_F(DistFailpointTest, HandshakeWriteFailureFailsCleanly) {
  failpoint::Enable("dist.frame_write", failpoint::Spec::Always());
  auto cluster = Cluster::Start(*manifest_path_, sharded_, Options());
  ASSERT_FALSE(cluster.ok());
}

// The tentpole: a worker that crashes mid-query is respawned and its
// fragments re-dispatched — the query SUCCEEDS, bit-identical to local
// execution, with the recovery observable in the metrics.
TEST_F(DistFailpointTest, WorkerCrashRecovers) {
  ClusterOptions options = Options();
  // Every (initial) worker dies at its first fragment; respawned workers
  // are healthy.
  options.worker_failpoints = {"dist.worker_crash=nth:1"};
  auto cluster =
      Cluster::Start(*manifest_path_, sharded_, options).MoveValueOrDie();

  std::vector<std::string> rows;
  Status st = RunQ6(cluster.get(), FastRetry(), &rows);
  ASSERT_TRUE(st.ok()) << st.ToString();
  EXPECT_EQ(rows, *q6_baseline_);
  EXPECT_GE(cluster->fragments_retried(), 1u);
  EXPECT_GE(cluster->workers_respawned(), 1u);
  EXPECT_GT(cluster->recovery_nanos(), 0u);
  EXPECT_EQ(cluster->alive_workers(), 2u);

  // The respawned workers are healthy: the next query runs clean.
  EXPECT_TRUE(RunQ6(cluster.get()).ok());
}

// A crash at a result-frame boundary: the dead worker's partial output is
// staged, never committed, and the re-dispatch result is bit-identical.
TEST_F(DistFailpointTest, CrashAtFrameBoundaryDiscardsPartialOutput) {
  ClusterOptions options = Options();
  options.worker_failpoints = {"dist.worker_crash_frame=nth:2"};
  auto cluster =
      Cluster::Start(*manifest_path_, sharded_, options).MoveValueOrDie();

  std::vector<std::string> rows;
  Status st = RunQ6(cluster.get(), FastRetry(), &rows);
  ASSERT_TRUE(st.ok()) << st.ToString();
  EXPECT_EQ(rows, *q6_baseline_);
  EXPECT_GE(cluster->fragments_retried(), 1u);
  EXPECT_GE(cluster->workers_respawned(), 1u);
}

// A transient coordinator-side write failure (EPIPE-class) is a transport
// fault: the worker is recycled and the query still succeeds.
TEST_F(DistFailpointTest, TransientWriteFailureRecovers) {
  auto cluster = Cluster::Start(*manifest_path_, sharded_, Options())
                     .MoveValueOrDie();
  ASSERT_TRUE(RunQ6(cluster.get()).ok());

  failpoint::Enable("dist.frame_write", failpoint::Spec::Nth(1));
  std::vector<std::string> rows;
  Status st = RunQ6(cluster.get(), FastRetry(), &rows);
  ASSERT_TRUE(st.ok()) << st.ToString();
  EXPECT_EQ(rows, *q6_baseline_);
  EXPECT_GE(cluster->fragments_retried(), 1u);
  EXPECT_GE(cluster->workers_respawned(), 1u);
}

// A worker that hangs mid-fragment trips the idle-liveness deadline: it is
// killed and recovered like a death — a stuck worker cannot stall a query
// forever.
TEST_F(DistFailpointTest, HungWorkerRecovered) {
  ClusterOptions options = Options();
  options.worker_failpoints = {"dist.worker_hang=nth:1"};
  options.recv_timeout_ms = 500;
  auto cluster =
      Cluster::Start(*manifest_path_, sharded_, options).MoveValueOrDie();

  std::vector<std::string> rows;
  Status st = RunQ6(cluster.get(), FastRetry(), &rows);
  ASSERT_TRUE(st.ok()) << st.ToString();
  EXPECT_EQ(rows, *q6_baseline_);
  EXPECT_GE(cluster->workers_respawned(), 1u);
}

// A worker that emits result frames tagged with a superseded epoch: the
// coordinator rejects them (dist.frames_rejected_stale) and the results
// stay bit-identical.
TEST_F(DistFailpointTest, StaleEpochFramesRejected) {
  ClusterOptions options = Options();
  options.worker_failpoints = {"dist.worker_stale_frame=always"};
  auto cluster =
      Cluster::Start(*manifest_path_, sharded_, options).MoveValueOrDie();

  std::vector<std::string> rows;
  Status st = RunQ6(cluster.get(), {}, &rows);
  ASSERT_TRUE(st.ok()) << st.ToString();
  EXPECT_EQ(rows, *q6_baseline_);
  EXPECT_GE(cluster->frames_rejected_stale(), 1u);
  EXPECT_EQ(cluster->fragments_retried(), 0u);
}

// Retry-budget exhaustion fails the query cleanly — and does NOT poison the
// cluster: once the doomed initial workers are replaced, later queries
// succeed.
TEST_F(DistFailpointTest, RetryExhaustionFailsCleanlyWithoutPoisoning) {
  ClusterOptions options = Options();
  options.worker_failpoints = {"dist.worker_crash=always"};
  auto cluster =
      Cluster::Start(*manifest_path_, sharded_, options).MoveValueOrDie();

  // Zero fragment retries: the first crash exhausts the budget.
  ExecOptions no_retries = FastRetry();
  no_retries.dist_retry.max_fragment_retries = 0;
  Status st = RunQ6(cluster.get(), no_retries);
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.ToString().find("retry budget exhausted"), std::string::npos)
      << st.ToString();

  // The failure replaced the crashed worker with a healthy respawn, so the
  // cluster is NOT poisoned: the same query now runs to completion (any
  // still-armed worker crashes once and is recovered under the default
  // budget).
  std::vector<std::string> rows;
  Status again = RunQ6(cluster.get(), FastRetry(), &rows);
  ASSERT_TRUE(again.ok()) << again.ToString();
  EXPECT_EQ(rows, *q6_baseline_);
}

// When workers keep dying — initial AND respawned — budgets run out, the
// query fails cleanly, and once every slot is permanently dead later
// queries fail fast with a clean capacity error (no hang, no crash).
TEST_F(DistFailpointTest, PersistentCrashesExhaustRespawnBudget) {
  ClusterOptions options = Options();
  options.worker_failpoints = {"dist.worker_crash=always"};
  options.respawn_failpoints = {"dist.worker_crash=always"};
  auto cluster =
      Cluster::Start(*manifest_path_, sharded_, options).MoveValueOrDie();

  ExecOptions tight = FastRetry();
  tight.dist_retry.max_fragment_retries = 1;
  tight.dist_retry.max_worker_respawns = 1;

  bool saw_fast_fail = false;
  for (int i = 0; i < 6; i++) {
    Status st = RunQ6(cluster.get(), tight);
    ASSERT_FALSE(st.ok()) << "query " << i << " unexpectedly succeeded";
    if (st.ToString().find("no usable workers") != std::string::npos) {
      saw_fast_fail = true;
      break;
    }
  }
  EXPECT_TRUE(saw_fast_fail);
  EXPECT_EQ(cluster->alive_workers(), 0u);
  // Teardown of the fully-dead cluster reaps everything.
  cluster.reset();
  ExpectNoChildren();
}

// A persistent coordinator-side write failure burns through every respawn
// handshake too: capacity is genuinely gone and later queries fail fast —
// but with a clean capacity error, not blanket poisoning.
TEST_F(DistFailpointTest, PersistentWriteFailureExhaustsWorkers) {
  auto cluster = Cluster::Start(*manifest_path_, sharded_, Options())
                     .MoveValueOrDie();
  ASSERT_TRUE(RunQ6(cluster.get()).ok());

  failpoint::Enable("dist.frame_write", failpoint::Spec::Always());
  ExecOptions tight = FastRetry();
  tight.dist_retry.max_worker_respawns = 1;
  Status st = RunQ6(cluster.get(), tight);
  EXPECT_FALSE(st.ok());

  failpoint::DisableAll();
  Status again = RunQ6(cluster.get());
  ASSERT_FALSE(again.ok());
  EXPECT_NE(again.ToString().find("no usable workers"), std::string::npos)
      << again.ToString();
}

// A worker that reports a deterministic fragment failure (kFragmentError)
// fails only that query: no retry (re-running a deterministic failure is
// futile), the stream stays aligned, and the cluster remains usable.
TEST_F(DistFailpointTest, WorkerExecErrorKeepsClusterUsable) {
  ClusterOptions options = Options();
  options.worker_failpoints = {"dist.worker_exec=nth:1"};
  auto cluster =
      Cluster::Start(*manifest_path_, sharded_, options).MoveValueOrDie();

  Status st = RunQ6(cluster.get());
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.ToString().find("dist.worker_exec"), std::string::npos)
      << st.ToString();
  // Deterministic failure: reported, not retried, workers not recycled.
  EXPECT_EQ(cluster->fragments_retried(), 0u);
  EXPECT_EQ(cluster->workers_respawned(), 0u);

  // nth:1 fired once per worker; the cluster must still answer.
  EXPECT_TRUE(RunQ6(cluster.get()).ok());
}

// Workers that ignore the Shutdown frame are SIGKILLed and reaped by the
// destructor: a hostile worker cannot turn teardown into a hang or leave
// zombies behind.
TEST_F(DistFailpointTest, NoZombiesAfterTeardown) {
  {
    ClusterOptions options = Options();
    options.worker_failpoints = {"dist.worker_ignore_shutdown=always"};
    auto cluster =
        Cluster::Start(*manifest_path_, sharded_, options).MoveValueOrDie();
    ASSERT_TRUE(RunQ6(cluster.get()).ok());
  }
  ExpectNoChildren();
}

// Worker failpoint arguments are validated at spawn time on the worker side;
// a malformed spec makes workerd exit(2) and Start fail cleanly.
TEST_F(DistFailpointTest, MalformedWorkerFailpointRejected) {
  ClusterOptions options = Options();
  options.connect_timeout_ms = 2000;
  options.worker_failpoints = {"dist.worker_exec=sometimes"};
  auto cluster = Cluster::Start(*manifest_path_, sharded_, options);
  EXPECT_FALSE(cluster.ok());
}

}  // namespace
}  // namespace jsontiles::dist

#endif  // JSONTILES_FAILPOINTS_AVAILABLE
