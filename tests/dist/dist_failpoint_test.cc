// Failure injection for the distributed runtime (DESIGN.md §13): every
// remote failure mode must surface as a clean Status on the coordinator —
// never a hang, never a crash. Coordinator-side failpoints (dist.connect,
// dist.frame_write) are enabled in-process; worker-side ones
// (dist.worker_exec, dist.worker_crash) are forwarded on the workerd command
// line because failpoints are per-process.
//
// The failure model under test: a worker that *reports* an error (kError
// frame) keeps the connection frame-aligned, so only that query fails and
// the cluster remains usable; a worker that dies (EOF) or times out poisons
// the cluster and every later query fails fast.

#include "util/failpoint.h"

#if JSONTILES_FAILPOINTS_AVAILABLE

#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "dist/cluster.h"
#include "storage/shard.h"
#include "workload/tpch.h"
#include "workload/tpch_queries.h"

#ifndef JSONTILES_WORKERD_PATH
#error "dist tests require the JSONTILES_WORKERD_PATH compile definition"
#endif

namespace jsontiles::dist {
namespace {

using exec::QueryContext;

class DistFailpointTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    workload::TpchOptions options;
    options.scale_factor = 0.002;
    docs_ = new std::vector<std::string>(
        workload::GenerateTpch(options).combined);
    storage::LoadOptions load_options;
    load_options.num_threads = 2;
    storage::ShardOptions shard_options;
    shard_options.shard_count = 3;
    auto loaded = storage::ShardedRelation::Load(
                      *docs_, "tpch", storage::StorageMode::kTiles, {},
                      load_options, shard_options)
                      .MoveValueOrDie();
    dir_ = new std::string(::testing::TempDir());
    JSONTILES_CHECK(storage::SaveSharded(*loaded, *dir_).ok());
    manifest_path_ =
        new std::string(storage::ShardManifestPath(*dir_, "tpch"));
    sharded_ = storage::OpenSharded(*manifest_path_).MoveValueOrDie().release();
  }

  static void TearDownTestSuite() {
    delete sharded_;
    for (size_t s = 0; s < 3; s++) {
      std::remove(
          (*dir_ + "/tpch.shard-" + std::to_string(s) + ".jtrl").c_str());
    }
    std::remove(manifest_path_->c_str());
    delete manifest_path_;
    delete dir_;
    delete docs_;
  }

  void TearDown() override { failpoint::DisableAll(); }

  static ClusterOptions Options() {
    ClusterOptions options;
    options.num_workers = 2;
    options.workerd_path = JSONTILES_WORKERD_PATH;
    return options;
  }

  /// Run TPC-H Q6 (single-table filtered aggregate — exercises the agg
  /// push-down) and return the context's failure status (OK on success).
  static Status RunQ6(Cluster* cluster) {
    QueryContext ctx;
    ctx.dist = cluster;
    workload::RunTpchQuery(6, *sharded_, ctx);
    return ctx.ConsumeStatus();
  }

  static std::vector<std::string>* docs_;
  static std::string* dir_;
  static std::string* manifest_path_;
  static storage::ShardedRelation* sharded_;
};

std::vector<std::string>* DistFailpointTest::docs_ = nullptr;
std::string* DistFailpointTest::dir_ = nullptr;
std::string* DistFailpointTest::manifest_path_ = nullptr;
storage::ShardedRelation* DistFailpointTest::sharded_ = nullptr;

// Every connect attempt fails: Start must give up at connect_timeout_ms with
// a clean Status (and reap the spawned workers — no orphans, no hang).
TEST_F(DistFailpointTest, ConnectTimeoutFailsCleanly) {
  failpoint::Enable("dist.connect", failpoint::Spec::Always());
  ClusterOptions options = Options();
  options.connect_timeout_ms = 300;
  auto cluster = Cluster::Start(*manifest_path_, sharded_, options);
  ASSERT_FALSE(cluster.ok());
  EXPECT_NE(cluster.status().ToString().find("connect"), std::string::npos)
      << cluster.status().ToString();
}

// A frame write failure during the Start handshake (kOpen) surfaces cleanly.
TEST_F(DistFailpointTest, HandshakeWriteFailureFailsCleanly) {
  failpoint::Enable("dist.frame_write", failpoint::Spec::Always());
  auto cluster = Cluster::Start(*manifest_path_, sharded_, Options());
  ASSERT_FALSE(cluster.ok());
}

// A frame write failure mid-query fails that query and poisons the cluster:
// the coordinator can no longer know what the worker received.
TEST_F(DistFailpointTest, QueryWriteFailurePoisons) {
  auto cluster = Cluster::Start(*manifest_path_, sharded_, Options())
                     .MoveValueOrDie();
  ASSERT_TRUE(RunQ6(cluster.get()).ok());

  failpoint::Enable("dist.frame_write", failpoint::Spec::Always());
  Status st = RunQ6(cluster.get());
  EXPECT_FALSE(st.ok());

  failpoint::DisableAll();
  Status again = RunQ6(cluster.get());
  EXPECT_FALSE(again.ok());
  EXPECT_NE(again.ToString().find("poisoned"), std::string::npos)
      << again.ToString();
}

// A worker that reports a fragment error (kError frame) fails only that
// query: the stream stays aligned and the cluster remains usable.
TEST_F(DistFailpointTest, WorkerExecErrorKeepsClusterUsable) {
  ClusterOptions options = Options();
  options.worker_failpoints = {"dist.worker_exec=nth:1"};
  auto cluster =
      Cluster::Start(*manifest_path_, sharded_, options).MoveValueOrDie();

  Status st = RunQ6(cluster.get());
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.ToString().find("dist.worker_exec"), std::string::npos)
      << st.ToString();

  // nth:1 fired once; the cluster must still answer.
  EXPECT_TRUE(RunQ6(cluster.get()).ok());
}

// A worker that dies mid-fragment (simulated crash) surfaces "exited
// unexpectedly" promptly — never a hang — and poisons the cluster.
TEST_F(DistFailpointTest, WorkerCrashFailsCleanly) {
  ClusterOptions options = Options();
  options.worker_failpoints = {"dist.worker_crash=always"};
  auto cluster =
      Cluster::Start(*manifest_path_, sharded_, options).MoveValueOrDie();

  Status st = RunQ6(cluster.get());
  ASSERT_FALSE(st.ok());
  // Depending on timing the death surfaces as EOF while collecting results
  // ("exited unexpectedly") or as EPIPE while still dispatching fragments
  // ("sending fragment to"); both are clean and both poison the cluster.
  const bool clean_death =
      st.ToString().find("exited unexpectedly") != std::string::npos ||
      st.ToString().find("sending fragment to") != std::string::npos;
  EXPECT_TRUE(clean_death) << st.ToString();

  Status again = RunQ6(cluster.get());
  EXPECT_FALSE(again.ok());
  EXPECT_NE(again.ToString().find("poisoned"), std::string::npos)
      << again.ToString();
}

// Worker failpoint arguments are validated at spawn time on the worker side;
// a malformed spec makes workerd exit(2) and Start fail cleanly.
TEST_F(DistFailpointTest, MalformedWorkerFailpointRejected) {
  ClusterOptions options = Options();
  options.connect_timeout_ms = 2000;
  options.worker_failpoints = {"dist.worker_exec=sometimes"};
  auto cluster = Cluster::Start(*manifest_path_, sharded_, options);
  EXPECT_FALSE(cluster.ok());
}

}  // namespace
}  // namespace jsontiles::dist

#endif  // JSONTILES_FAILPOINTS_AVAILABLE
