#include "tiles/tile_builder.h"

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "json/jsonb.h"
#include "tiles/keypath.h"

namespace jsontiles::tiles {
namespace {

using json::JsonbValue;
using json::JsonType;

// Keep the buffers alive alongside the views.
struct Docs {
  std::vector<std::vector<uint8_t>> buffers;
  std::vector<JsonbValue> views;

  void Add(std::string_view text) {
    buffers.push_back(json::JsonbFromText(text).MoveValueOrDie());
  }
  const std::vector<JsonbValue>& Views() {
    views.clear();
    for (const auto& b : buffers) views.emplace_back(b.data());
    return views;
  }
};

std::string Path(std::initializer_list<const char*> keys) {
  std::string encoded;
  for (const char* k : keys) AppendKeySegment(&encoded, k);
  return encoded;
}

// Tile #2 of the paper's Figure 2 (real date strings substituted).
Docs Figure2Tile2() {
  Docs docs;
  docs.Add(R"({"id":5,"create":"2010-01-01","text":"b","user":{"id":7},"replies":3,"geo":{"lat":1.9}})");
  docs.Add(R"({"id":6,"create":"2011-01-01","text":"c","user":{"id":1},"replies":2,"geo":null})");
  docs.Add(R"({"id":7,"create":"2012-01-01","text":"d","user":{"id":3},"replies":0,"geo":{"lat":2.7}})");
  docs.Add(R"({"id":8,"create":"2013-01-01","text":"x","user":{"id":3},"replies":1,"geo":{"lat":3.5}})");
  return docs;
}

TEST(TileBuilderTest, PaperRunningExample) {
  Docs docs = Figure2Tile2();
  TileConfig config;
  config.extraction_threshold = 0.6;
  TileBuilder builder(config);
  Tile tile = builder.Build(docs.Views(), 4);

  EXPECT_EQ(tile.row_begin, 4u);
  EXPECT_EQ(tile.row_count, 4u);

  // The paper extracts {id, create, text, user.id, replies, geo.lat}.
  ASSERT_NE(tile.FindColumn(Path({"id"})), nullptr);
  ASSERT_NE(tile.FindColumn(Path({"create"})), nullptr);
  ASSERT_NE(tile.FindColumn(Path({"text"})), nullptr);
  ASSERT_NE(tile.FindColumn(Path({"user", "id"})), nullptr);
  ASSERT_NE(tile.FindColumn(Path({"replies"})), nullptr);
  ASSERT_NE(tile.FindColumn(Path({"geo", "lat"})), nullptr);
  EXPECT_EQ(tile.columns.size(), 6u);

  const ExtractedColumn* id = tile.FindColumn(Path({"id"}));
  EXPECT_EQ(id->storage_type, ColumnType::kInt64);
  EXPECT_FALSE(id->nullable);
  EXPECT_EQ(id->column.GetInt(0), 5);
  EXPECT_EQ(id->column.GetInt(3), 8);

  // geo.lat appears in 3 of 4 tuples (75% >= 60%): extracted with one null.
  const ExtractedColumn* lat = tile.FindColumn(Path({"geo", "lat"}));
  EXPECT_EQ(lat->storage_type, ColumnType::kFloat64);
  EXPECT_TRUE(lat->nullable);
  EXPECT_FALSE(lat->column.IsNull(0));
  EXPECT_TRUE(lat->column.IsNull(1));  // tweet 6 has geo: null
  EXPECT_DOUBLE_EQ(lat->column.GetFloat(2), 2.7);

  // §4.9: the create column holds dates and is extracted as Timestamp.
  const ExtractedColumn* create = tile.FindColumn(Path({"create"}));
  EXPECT_TRUE(create->is_timestamp);
  EXPECT_EQ(create->storage_type, ColumnType::kTimestamp);
  EXPECT_EQ(FormatDate(create->column.GetTimestamp(0)), "2010-01-01");
}

TEST(TileBuilderTest, BelowThresholdPathsStayBinary) {
  Docs docs;
  for (int i = 0; i < 10; i++) {
    if (i < 3) {
      docs.Add(R"({"common":1,"rare":true})");
    } else {
      docs.Add(R"({"common":1})");
    }
  }
  TileConfig config;
  config.extraction_threshold = 0.6;
  TileBuilder builder(config);
  Tile tile = builder.Build(docs.Views(), 0);
  EXPECT_NE(tile.FindColumn(Path({"common"})), nullptr);
  EXPECT_EQ(tile.FindColumn(Path({"rare"})), nullptr);
  // §4.4/§4.8: the non-extracted path is in the bloom filter, so the tile
  // cannot be skipped; an unseen path can.
  EXPECT_TRUE(tile.MayContainPath(Path({"rare"})));
  EXPECT_FALSE(tile.MayContainPath(Path({"never_seen_anywhere"})));
}

TEST(TileBuilderTest, MixedTypesChooseMostCommon) {
  Docs docs;
  for (int i = 0; i < 6; i++) docs.Add(R"({"v":)" + std::to_string(i) + "}");
  for (int i = 0; i < 4; i++) docs.Add(R"({"v":1.5})");
  TileConfig config;
  config.extraction_threshold = 0.5;
  TileBuilder builder(config);
  Tile tile = builder.Build(docs.Views(), 0);
  const ExtractedColumn* v = tile.FindColumn(Path({"v"}));
  ASSERT_NE(v, nullptr);
  // Integers are more common (6 of 10 >= 50%); floats stay in binary JSON.
  EXPECT_EQ(v->source_type, JsonType::kInt);
  EXPECT_TRUE(v->has_type_outliers);
  EXPECT_TRUE(v->nullable);
  EXPECT_FALSE(v->column.IsNull(0));
  EXPECT_TRUE(v->column.IsNull(7));
}

TEST(TileBuilderTest, NullTypedKeysAreNeverColumns) {
  Docs docs;
  for (int i = 0; i < 8; i++) docs.Add(R"({"gone":null,"id":1})");
  TileBuilder builder(TileConfig{});
  Tile tile = builder.Build(docs.Views(), 0);
  EXPECT_EQ(tile.FindColumn(Path({"gone"})), nullptr);
  EXPECT_NE(tile.FindColumn(Path({"id"})), nullptr);
}

TEST(TileBuilderTest, NumericStringsBecomeNumericColumns) {
  Docs docs;
  for (int i = 0; i < 8; i++) {
    docs.Add(R"({"price":")" + std::to_string(i) + R"(.99"})");
  }
  TileBuilder builder(TileConfig{});
  Tile tile = builder.Build(docs.Views(), 0);
  const ExtractedColumn* price = tile.FindColumn(Path({"price"}));
  ASSERT_NE(price, nullptr);
  EXPECT_EQ(price->storage_type, ColumnType::kNumeric);
  EXPECT_EQ(price->column.GetNumeric(3).ToString(), "3.99");
}

TEST(TileBuilderTest, DateDetectionRespectsConfig) {
  Docs docs;
  for (int i = 0; i < 8; i++) docs.Add(R"({"d":"2020-06-01"})");
  TileConfig config;
  config.enable_date_extraction = false;
  TileBuilder builder(config);
  Tile tile = builder.Build(docs.Views(), 0);
  EXPECT_EQ(tile.FindColumn(Path({"d"}))->storage_type, ColumnType::kString);
}

TEST(TileBuilderTest, MostlyDatesWithOutlierStillTimestamp) {
  Docs docs;
  for (int i = 0; i < 39; i++) docs.Add(R"({"d":"2020-06-01"})");
  docs.Add(R"({"d":"not a date"})");  // 97.5% parse rate >= 95%
  TileBuilder builder(TileConfig{});
  Tile tile = builder.Build(docs.Views(), 0);
  const ExtractedColumn* d = tile.FindColumn(Path({"d"}));
  ASSERT_NE(d, nullptr);
  EXPECT_TRUE(d->is_timestamp);
  EXPECT_TRUE(d->column.IsNull(39));  // outlier answered from binary JSON
}

TEST(TileBuilderTest, StatisticsCoverAllSeenPaths) {
  Docs docs = Figure2Tile2();
  TileBuilder builder(TileConfig{});
  Tile tile = builder.Build(docs.Views(), 0);
  // id/create/text/user.id/replies in all 4; geo.lat in 3.
  bool found_lat = false;
  for (const auto& [key, count] : tile.stats.path_frequencies) {
    if (DictKeyPath(key) == Path({"geo", "lat"})) {
      EXPECT_EQ(count, 3u);
      found_lat = true;
    }
    if (DictKeyPath(key) == Path({"id"})) {
      EXPECT_EQ(count, 4u);
    }
  }
  EXPECT_TRUE(found_lat);
  // One sketch per extracted column.
  EXPECT_EQ(tile.stats.column_sketches.size(), tile.columns.size());
  // user.id has 3 distinct values {7,1,3}.
  for (size_t i = 0; i < tile.columns.size(); i++) {
    if (tile.columns[i].path == Path({"user", "id"})) {
      EXPECT_NEAR(tile.stats.column_sketches[i].Estimate(), 3.0, 0.5);
    }
  }
}

TEST(TileBuilderTest, EmptyInput) {
  TileBuilder builder(TileConfig{});
  Tile tile = builder.Build({}, 0);
  EXPECT_EQ(tile.row_count, 0u);
  EXPECT_TRUE(tile.columns.empty());
}

TEST(TileBuilderTest, UpdateRowInPlace) {
  Docs docs = Figure2Tile2();
  TileConfig config;
  TileBuilder builder(config);
  Tile tile = builder.Build(docs.Views(), 0);

  // Replace row 0 with a document that still matches the schema.
  auto updated = json::JsonbFromText(
                     R"({"id":50,"create":"2020-06-01","text":"upd","user":{"id":9},"replies":7,"geo":{"lat":9.9}})")
                     .MoveValueOrDie();
  bool outlier = UpdateTileRow(&tile, 0, JsonbValue(updated.data()), config);
  EXPECT_FALSE(outlier);
  EXPECT_EQ(tile.FindColumn(Path({"id"}))->column.GetInt(0), 50);
  EXPECT_EQ(tile.FindColumn(Path({"text"}))->column.GetString(0), "upd");
  EXPECT_DOUBLE_EQ(tile.FindColumn(Path({"geo", "lat"}))->column.GetFloat(0), 9.9);

  // Replace row 1 with a document sharing nothing: outlier, nulls, and the
  // new path lands in the bloom filter.
  auto alien = json::JsonbFromText(R"({"completely":"different"})").MoveValueOrDie();
  outlier = UpdateTileRow(&tile, 1, JsonbValue(alien.data()), config);
  EXPECT_TRUE(outlier);
  EXPECT_TRUE(tile.FindColumn(Path({"id"}))->column.IsNull(1));
  EXPECT_TRUE(tile.MayContainPath(Path({"completely"})));
  EXPECT_EQ(tile.outlier_count, 1u);
  EXPECT_FALSE(tile.NeedsRecompute());
  // Three of four rows outliers -> recompute advised.
  UpdateTileRow(&tile, 2, JsonbValue(alien.data()), config);
  UpdateTileRow(&tile, 3, JsonbValue(alien.data()), config);
  EXPECT_TRUE(tile.NeedsRecompute());
}

}  // namespace
}  // namespace jsontiles::tiles
