#include "tiles/reorder.h"

#include <algorithm>
#include <numeric>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "json/jsonb.h"
#include "tiles/array_extract.h"
#include "tiles/keypath.h"
#include "tiles/tile_builder.h"
#include "util/random.h"

namespace jsontiles::tiles {
namespace {

using json::JsonbValue;

struct Docs {
  std::vector<std::vector<uint8_t>> buffers;
  std::vector<JsonbValue> views;

  void Add(std::string_view text) {
    buffers.push_back(json::JsonbFromText(text).MoveValueOrDie());
  }
  const std::vector<JsonbValue>& Views() {
    views.clear();
    for (const auto& b : buffers) views.emplace_back(b.data());
    return views;
  }
};

// HackerNews-style documents of Figure 3: several distinct types.
std::string MakeNewsItem(Random& rng, int type) {
  int64_t id = static_cast<int64_t>(rng.Next() % 100000);
  switch (type) {
    case 0:
      return R"({"id":)" + std::to_string(id) +
             R"(,"type":"story","score":3,"desc":2,"title":"t","url":"u"})";
    case 1:
      return R"({"id":)" + std::to_string(id) +
             R"(,"type":"poll","score":5,"desc":2,"title":"t"})";
    case 2:
      return R"({"id":)" + std::to_string(id) +
             R"(,"type":"pollop","score":6,"poll":2,"title":"t"})";
    default:
      return R"({"id":)" + std::to_string(id) +
             R"(,"type":"comment","parent":4,"text":"c"})";
  }
}

TEST(ReorderTest, PermutationIsBijection) {
  Random rng(5);
  Docs docs;
  for (int i = 0; i < 256; i++) {
    docs.Add(MakeNewsItem(rng, static_cast<int>(rng.Uniform(4))));
  }
  TileConfig config;
  config.tile_size = 32;
  config.partition_size = 8;
  DocumentItems items;
  items.Collect(docs.Views(), config);
  ReorderResult result = ReorderPartition(items, config);
  ASSERT_EQ(result.permutation.size(), 256u);
  std::vector<uint32_t> sorted = result.permutation;
  std::sort(sorted.begin(), sorted.end());
  for (uint32_t i = 0; i < 256; i++) EXPECT_EQ(sorted[i], i);
}

TEST(ReorderTest, ClustersMixedDocumentTypes) {
  // Round-robin type interleaving: without reordering no tile reaches the
  // threshold for the type-specific keys (url/poll/parent).
  Random rng(9);
  Docs docs;
  for (int i = 0; i < 256; i++) docs.Add(MakeNewsItem(rng, i % 4));
  TileConfig config;
  config.tile_size = 64;
  config.partition_size = 4;
  config.extraction_threshold = 0.6;
  TileBuilder builder(config);

  DocumentItems items;
  items.Collect(docs.Views(), config);

  auto count_extracted_type_columns = [&](const std::vector<uint32_t>& perm) {
    size_t extracted = 0;
    for (size_t t = 0; t < 4; t++) {
      std::vector<uint32_t> indices(perm.begin() + static_cast<long>(t * 64),
                                    perm.begin() + static_cast<long>((t + 1) * 64));
      std::vector<JsonbValue> tile_docs;
      for (uint32_t i : indices) tile_docs.push_back(docs.Views()[i]);
      DocumentItems tile_items = items.Project(indices);
      Tile tile = builder.BuildFromItems(tile_docs, tile_items, t * 64);
      std::string url_path, poll_path, parent_path;
      AppendKeySegment(&url_path, "url");
      AppendKeySegment(&poll_path, "poll");
      AppendKeySegment(&parent_path, "parent");
      if (tile.FindColumn(url_path) != nullptr) extracted++;
      if (tile.FindColumn(poll_path) != nullptr) extracted++;
      if (tile.FindColumn(parent_path) != nullptr) extracted++;
    }
    return extracted;
  };

  std::vector<uint32_t> identity(256);
  std::iota(identity.begin(), identity.end(), 0);
  size_t before = count_extracted_type_columns(identity);
  EXPECT_EQ(before, 0u);  // interleaving kills extraction

  ReorderResult result = ReorderPartition(items, config);
  EXPECT_GT(result.surviving_itemsets, 0u);
  EXPECT_GT(result.moved_tuples, 0u);
  size_t after = count_extracted_type_columns(result.permutation);
  EXPECT_GE(after, 3u);  // each type now dominates some tile
}

TEST(ReorderTest, HomogeneousDataIsStable) {
  Docs docs;
  for (int i = 0; i < 128; i++) {
    docs.Add(R"({"id":)" + std::to_string(i) + R"(,"v":"x"})");
  }
  TileConfig config;
  config.tile_size = 32;
  config.partition_size = 4;
  DocumentItems items;
  items.Collect(docs.Views(), config);
  ReorderResult result = ReorderPartition(items, config);
  // All tuples match the same single itemset; nothing needs to move between
  // tiles (order inside the single cluster is preserved by construction).
  EXPECT_EQ(result.moved_tuples, 0u);
  for (uint32_t i = 0; i < 128; i++) EXPECT_EQ(result.permutation[i], i);
}

TEST(ReorderTest, DisabledByPartitionSizeOne) {
  Random rng(1);
  Docs docs;
  for (int i = 0; i < 64; i++) docs.Add(MakeNewsItem(rng, i % 4));
  TileConfig config;
  config.tile_size = 16;
  config.partition_size = 1;
  DocumentItems items;
  items.Collect(docs.Views(), config);
  ReorderResult result = ReorderPartition(items, config);
  EXPECT_EQ(result.moved_tuples, 0u);
}

TEST(ReorderTest, EmptyInput) {
  TileConfig config;
  DocumentItems items;
  ReorderResult result = ReorderPartition(items, config);
  EXPECT_TRUE(result.permutation.empty());
}

TEST(ArrayExtractTest, DetectAndExplode) {
  Docs docs;
  docs.Add(R"({"id":1,"hashtags":[{"text":"a"},{"text":"b"},{"text":"c"}],"geo":{"lat":1.0}})");
  docs.Add(R"({"id":2,"hashtags":[{"text":"d"}],"geo":{"lat":2.0}})");
  docs.Add(R"({"id":3,"hashtags":[],"geo":{"lat":3.0}})");
  TileConfig config;
  auto detected = DetectHighCardinalityArrays(docs.Views(), config, 1.2, 0.5);
  ASSERT_EQ(detected.size(), 1u);
  EXPECT_EQ(PathToDisplayString(detected[0].path), "hashtags");
  EXPECT_NEAR(detected[0].avg_elements, 4.0 / 3.0, 1e-9);

  std::vector<std::vector<uint8_t>> side;
  for (size_t i = 0; i < docs.Views().size(); i++) {
    ExplodeArray(docs.Views()[i], detected[0].path, static_cast<int64_t>(i), &side);
  }
  ASSERT_EQ(side.size(), 4u);
  JsonbValue first(side[0].data());
  EXPECT_EQ(first.FindKey("text")->GetString(), "a");
  EXPECT_EQ(first.FindKey(kParentRowIdKey)->GetInt(), 0);
  JsonbValue last(side[3].data());
  EXPECT_EQ(last.FindKey("text")->GetString(), "d");
  EXPECT_EQ(last.FindKey(kParentRowIdKey)->GetInt(), 1);
}

TEST(ArrayExtractTest, ScalarElementsWrapped) {
  Docs docs;
  docs.Add(R"({"tags":["x","y"]})");
  TileConfig config;
  std::string path;
  AppendKeySegment(&path, "tags");
  std::vector<std::vector<uint8_t>> side;
  ExplodeArray(docs.Views()[0], path, 7, &side);
  ASSERT_EQ(side.size(), 2u);
  JsonbValue v(side[0].data());
  EXPECT_EQ(v.FindKey(kScalarValueKey)->GetString(), "x");
  EXPECT_EQ(v.FindKey(kParentRowIdKey)->GetInt(), 7);
}

TEST(StatsTest, RelationAggregation) {
  RelationStats stats;
  TileStats tile1;
  tile1.path_frequencies = {{"a", 100}, {"b", 50}};
  HyperLogLog h1;
  for (int i = 0; i < 100; i++) h1.AddInt(static_cast<uint64_t>(i));
  tile1.column_sketches.push_back(h1);
  stats.MergeTile(0, tile1, {"a"});
  stats.AddTuples(100);

  TileStats tile2;
  tile2.path_frequencies = {{"a", 80}, {"c", 10}};
  HyperLogLog h2;
  for (int i = 50; i < 150; i++) h2.AddInt(static_cast<uint64_t>(i));
  tile2.column_sketches.push_back(h2);
  stats.MergeTile(1, tile2, {"a"});
  stats.AddTuples(100);

  EXPECT_EQ(stats.EstimateKeyCardinality("a"), 180u);
  EXPECT_EQ(stats.EstimateKeyCardinality("b"), 50u);
  // Missing key: the smallest retrieved counter (c=10), not the table count.
  EXPECT_EQ(stats.EstimateKeyCardinality("zz"), 10u);
  auto distinct = stats.EstimateDistinct("a");
  ASSERT_TRUE(distinct.has_value());
  EXPECT_NEAR(*distinct, 150.0, 15.0);  // union of [0,100) and [50,150)
  EXPECT_FALSE(stats.EstimateDistinct("b").has_value());
}

TEST(StatsTest, CounterReplacementKeepsFrequent) {
  RelationStats stats;
  // Fill all 256 slots at tile 0.
  TileStats fill;
  for (int i = 0; i < 256; i++) {
    fill.path_frequencies.emplace_back("key" + std::to_string(i),
                                       static_cast<uint32_t>(1000 + i));
  }
  stats.MergeTile(0, fill, {});
  EXPECT_EQ(stats.num_counters(), RelationStats::kMaxFrequencyCounters);
  // A new key from a later tile replaces a slot.
  TileStats later;
  later.path_frequencies = {{"newkey", 5000}};
  stats.MergeTile(1, later, {});
  EXPECT_EQ(stats.EstimateKeyCardinality("newkey"), 5000u);
}

}  // namespace
}  // namespace jsontiles::tiles
