#include "tiles/column.h"

#include <string>

#include <gtest/gtest.h>

namespace jsontiles::tiles {
namespace {

TEST(ColumnTest, IntAppendAndGet) {
  Column col(ColumnType::kInt64);
  col.AppendInt(5);
  col.AppendNull();
  col.AppendInt(-7);
  ASSERT_EQ(col.size(), 3u);
  EXPECT_EQ(col.GetInt(0), 5);
  EXPECT_TRUE(col.IsNull(1));
  EXPECT_FALSE(col.IsNull(2));
  EXPECT_EQ(col.GetInt(2), -7);
  EXPECT_EQ(col.null_count(), 1u);
}

TEST(ColumnTest, FloatColumn) {
  Column col(ColumnType::kFloat64);
  col.AppendFloat(1.5);
  col.AppendNull();
  EXPECT_DOUBLE_EQ(col.GetFloat(0), 1.5);
  EXPECT_TRUE(col.IsNull(1));
}

TEST(ColumnTest, BoolColumn) {
  Column col(ColumnType::kBool);
  col.AppendBool(true);
  col.AppendBool(false);
  EXPECT_TRUE(col.GetBool(0));
  EXPECT_FALSE(col.GetBool(1));
}

TEST(ColumnTest, StringColumnSharedHeap) {
  Column col(ColumnType::kString);
  col.AppendString("hello");
  col.AppendString("");
  col.AppendNull();
  col.AppendString("world");
  EXPECT_EQ(col.GetString(0), "hello");
  EXPECT_EQ(col.GetString(1), "");
  EXPECT_TRUE(col.IsNull(2));
  EXPECT_EQ(col.GetString(3), "world");
}

TEST(ColumnTest, NumericColumnKeepsScale) {
  Column col(ColumnType::kNumeric);
  col.AppendNumeric(Numeric{1999, 2});
  col.AppendNumeric(Numeric{-5, 1});
  EXPECT_EQ(col.GetNumeric(0).ToString(), "19.99");
  EXPECT_EQ(col.GetNumeric(1).ToString(), "-0.5");
}

TEST(ColumnTest, TimestampColumn) {
  Column col(ColumnType::kTimestamp);
  Timestamp ts = MakeTimestamp(2020, 6, 1, 12, 0, 0);
  col.AppendTimestamp(ts);
  EXPECT_EQ(col.GetTimestamp(0), ts);
}

TEST(ColumnTest, InPlaceUpdates) {
  Column col(ColumnType::kInt64);
  col.AppendInt(1);
  col.AppendNull();
  col.SetInt(1, 42);  // null -> value
  EXPECT_FALSE(col.IsNull(1));
  EXPECT_EQ(col.GetInt(1), 42);
  EXPECT_EQ(col.null_count(), 0u);
  col.SetNull(0);  // value -> null
  EXPECT_TRUE(col.IsNull(0));
  EXPECT_EQ(col.null_count(), 1u);
  col.SetNull(0);  // idempotent
  EXPECT_EQ(col.null_count(), 1u);
}

TEST(ColumnTest, StringUpdateAppendsToHeap) {
  Column col(ColumnType::kString);
  col.AppendString("aaa");
  col.AppendString("bbb");
  col.SetString(0, "a-much-longer-replacement");
  EXPECT_EQ(col.GetString(0), "a-much-longer-replacement");
  EXPECT_EQ(col.GetString(1), "bbb");  // untouched
}

TEST(ColumnTest, MemoryAccounting) {
  Column col(ColumnType::kString);
  size_t empty = col.MemoryBytes();
  for (int i = 0; i < 100; i++) col.AppendString("0123456789");
  EXPECT_GT(col.MemoryBytes(), empty + 1000);
}

}  // namespace
}  // namespace jsontiles::tiles
