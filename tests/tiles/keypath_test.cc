#include "tiles/keypath.h"

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "json/jsonb.h"

namespace jsontiles::tiles {
namespace {

using json::JsonbFromText;
using json::JsonbValue;
using json::JsonType;

TEST(KeyPathTest, EncodeDecodeRoundTrip) {
  std::vector<PathSegment> segments = {
      PathSegment::Key("user"), PathSegment::Key("geo"),
      PathSegment::Index(3), PathSegment::Key("lat")};
  std::string encoded = EncodePath(segments);
  EXPECT_EQ(DecodePath(encoded), segments);
}

TEST(KeyPathTest, KeysMayContainAnyBytes) {
  std::vector<PathSegment> segments = {PathSegment::Key("we.ird[0]key"),
                                       PathSegment::Key("")};
  EXPECT_EQ(DecodePath(EncodePath(segments)), segments);
}

TEST(KeyPathTest, DisplayString) {
  std::string p = EncodePath({PathSegment::Key("geo"), PathSegment::Key("lat")});
  EXPECT_EQ(PathToDisplayString(p), "geo.lat");
  std::string q = EncodePath({PathSegment::Key("tags"), PathSegment::Index(0),
                              PathSegment::Key("text")});
  EXPECT_EQ(PathToDisplayString(q), "tags[0].text");
}

TEST(KeyPathTest, Depth) {
  EXPECT_EQ(PathDepth(EncodePath({PathSegment::Key("a")})), 1);
  EXPECT_EQ(PathDepth(EncodePath({PathSegment::Key("a"), PathSegment::Index(2),
                                  PathSegment::Key("b")})),
            3);
  EXPECT_EQ(PathDepth(""), 0);
}

TEST(KeyPathTest, LookupPath) {
  auto buf = JsonbFromText(R"({"user":{"geo":{"lat":1.5}},"tags":[{"t":"x"}]})")
                 .MoveValueOrDie();
  JsonbValue root(buf.data());
  auto lat = LookupPath(root, EncodePath({PathSegment::Key("user"),
                                          PathSegment::Key("geo"),
                                          PathSegment::Key("lat")}));
  ASSERT_TRUE(lat.has_value());
  EXPECT_DOUBLE_EQ(lat->GetDouble(), 1.5);
  auto t = LookupPath(root, EncodePath({PathSegment::Key("tags"),
                                        PathSegment::Index(0),
                                        PathSegment::Key("t")}));
  ASSERT_TRUE(t.has_value());
  EXPECT_EQ(t->GetString(), "x");
  // Missing key, index out of range, traversal through scalar.
  EXPECT_FALSE(LookupPath(root, EncodePath({PathSegment::Key("nope")})));
  EXPECT_FALSE(LookupPath(root, EncodePath({PathSegment::Key("tags"),
                                            PathSegment::Index(5)})));
  EXPECT_FALSE(LookupPath(root, EncodePath({PathSegment::Key("user"),
                                            PathSegment::Key("geo"),
                                            PathSegment::Key("lat"),
                                            PathSegment::Key("deeper")})));
}

TEST(KeyPathTest, CollectScalarLeaves) {
  auto buf =
      JsonbFromText(R"({"id":5,"user":{"id":1,"name":"a"},"flag":true,"x":null})")
          .MoveValueOrDie();
  TileConfig config;
  std::vector<CollectedPath> paths;
  CollectKeyPaths(JsonbValue(buf.data()), config, &paths);
  ASSERT_EQ(paths.size(), 5u);
  // JSONB sorts keys: flag, id, user.id, user.name, x.
  EXPECT_EQ(PathToDisplayString(paths[0].path), "flag");
  EXPECT_EQ(paths[0].type, JsonType::kBool);
  EXPECT_EQ(PathToDisplayString(paths[1].path), "id");
  EXPECT_EQ(paths[1].type, JsonType::kInt);
  EXPECT_EQ(PathToDisplayString(paths[2].path), "user.id");
  EXPECT_EQ(PathToDisplayString(paths[3].path), "user.name");
  EXPECT_EQ(paths[3].type, JsonType::kString);
  EXPECT_EQ(PathToDisplayString(paths[4].path), "x");
  EXPECT_EQ(paths[4].type, JsonType::kNull);
}

TEST(KeyPathTest, ArrayLeadingElementsOnly) {
  auto buf = JsonbFromText(R"({"a":[1,2,3,4,5,6,7,8]})").MoveValueOrDie();
  TileConfig config;
  config.max_array_elements = 3;
  std::vector<CollectedPath> paths;
  CollectKeyPaths(JsonbValue(buf.data()), config, &paths);
  EXPECT_EQ(paths.size(), 3u);
  EXPECT_EQ(PathToDisplayString(paths[0].path), "a[0]");
  EXPECT_EQ(PathToDisplayString(paths[2].path), "a[2]");
}

TEST(KeyPathTest, DepthLimit) {
  auto buf = JsonbFromText(R"({"a":{"b":{"c":{"d":1}}}})").MoveValueOrDie();
  TileConfig config;
  config.max_path_depth = 2;
  std::vector<CollectedPath> paths;
  CollectKeyPaths(JsonbValue(buf.data()), config, &paths);
  EXPECT_TRUE(paths.empty());  // the only leaf is at depth 4
  config.max_path_depth = 8;
  paths.clear();
  CollectKeyPaths(JsonbValue(buf.data()), config, &paths);
  ASSERT_EQ(paths.size(), 1u);
  EXPECT_EQ(PathToDisplayString(paths[0].path), "a.b.c.d");
}

TEST(KeyPathTest, EmptyContainersYieldNoLeaves) {
  auto buf = JsonbFromText(R"({"a":{},"b":[]})").MoveValueOrDie();
  TileConfig config;
  std::vector<CollectedPath> paths;
  CollectKeyPaths(JsonbValue(buf.data()), config, &paths);
  EXPECT_TRUE(paths.empty());
}

TEST(KeyPathTest, NumericStringLeafType) {
  auto buf = JsonbFromText(R"({"price":"19.99"})").MoveValueOrDie();
  TileConfig config;
  std::vector<CollectedPath> paths;
  CollectKeyPaths(JsonbValue(buf.data()), config, &paths);
  ASSERT_EQ(paths.size(), 1u);
  EXPECT_EQ(paths[0].type, JsonType::kNumericString);
}

}  // namespace
}  // namespace jsontiles::tiles
