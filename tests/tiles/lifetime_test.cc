// Lifetime regression tests for string_view-into-scratch-buffer patterns
// (the JsonbBuilder unescape-buffer bug family). These tests are most
// valuable under the sanitizer build: before the fixes they read freed
// storage, which ASan reports even when the test assertions happen to pass.

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "json/jsonb.h"
#include "tiles/column.h"
#include "tiles/keypath.h"

namespace jsontiles::tiles {
namespace {

// Copying a string value from one row of a column into another passes
// GetString's view — which points into the column's own heap — back into
// SetString/AppendString. The heap append must not read the view after a
// reallocation frees its storage.
TEST(LifetimeTest, ColumnSelfCopySurvivesHeapReallocation) {
  Column col(ColumnType::kString);
  // Large enough that copying it repeatedly forces many reallocations.
  const std::string big(1000, 'x');
  col.AppendString(big);
  for (int i = 0; i < 64; i++) {
    col.AppendString(col.GetString(col.size() - 1));
  }
  for (size_t r = 0; r < col.size(); r++) {
    ASSERT_EQ(col.GetString(r), big) << "row " << r;
  }
}

TEST(LifetimeTest, ColumnSelfSetStringSurvivesHeapReallocation) {
  Column col(ColumnType::kString);
  col.AppendString("seed-value-long-enough-to-matter");
  col.AppendString("other");
  for (int i = 0; i < 200; i++) {
    // §4.7 in-place update where the new value aliases the old one.
    col.SetString(1, col.GetString(0));
    ASSERT_EQ(col.GetString(1), "seed-value-long-enough-to-matter");
  }
  ASSERT_EQ(col.GetString(0), "seed-value-long-enough-to-matter");
}

// DecodePathSteps hands out key views into the encoded path; the documented
// contract is that they stay valid exactly as long as that storage. Cache
// steps against stable storage and use them after every transient involved
// in building the path is gone.
TEST(LifetimeTest, DecodedPathStepsViewStablePathStorage) {
  std::string stable_path;
  {
    // Build the encoded path from transients that die with this scope.
    std::string key1 = "user";
    std::string key2 = "geo";
    std::vector<PathSegment> segs = {PathSegment::Key(key1),
                                     PathSegment::Key(key2),
                                     PathSegment::Index(1)};
    stable_path = EncodePath(segs);
  }
  std::vector<json::PathStep> steps = DecodePathSteps(stable_path);
  ASSERT_EQ(steps.size(), 3u);
  EXPECT_EQ(steps[0].key, "user");
  EXPECT_EQ(steps[1].key, "geo");
  EXPECT_TRUE(steps[2].is_index);

  auto doc = json::JsonbFromText(R"({"user": {"geo": [10, 20]}})");
  ASSERT_TRUE(doc.ok());
  std::vector<uint8_t> buf = doc.MoveValueOrDie();
  auto v = json::LookupSteps(json::JsonbValue(buf.data()), steps.data(),
                             steps.size());
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(v->GetInt(), 20);
}

// ForEachPathPrefix / WalkLeaves hand out views into a shared prefix buffer
// that are only valid during the callback; consumers must copy. This pins
// the copying consumers' behavior (bloom insert in Tile::AddSeenPath relies
// on the same rule).
TEST(LifetimeTest, CollectedPathsOwnTheirBytes) {
  auto doc = json::JsonbFromText(R"({"a": {"b": 1, "c": [2, 3]}, "d": "x"})");
  ASSERT_TRUE(doc.ok());
  std::vector<uint8_t> buf = doc.MoveValueOrDie();
  std::vector<CollectedPath> paths;
  CollectKeyPaths(json::JsonbValue(buf.data()), TileConfig{}, &paths);
  ASSERT_FALSE(paths.empty());
  // The collected strings must be self-contained copies: round-trip each
  // through the decoder after the walker's prefix buffer is long gone.
  for (const auto& p : paths) {
    EXPECT_FALSE(PathToDisplayString(p.path).empty());
  }
}

}  // namespace
}  // namespace jsontiles::tiles
