// Coverage for path prefixes, access cast routes and storage accounting.

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "exec/operators.h"
#include "opt/query.h"
#include "storage/loader.h"
#include "tiles/keypath.h"

namespace jsontiles::tiles {
namespace {

using exec::Access;
using exec::QueryContext;
using exec::ValueType;
using opt::QueryBlock;
using opt::TableRef;
using storage::Loader;
using storage::StorageMode;

TEST(PathPrefixTest, EnumeratesAllPrefixes) {
  std::string path = EncodePath({PathSegment::Key("entities"),
                                 PathSegment::Key("hashtags"),
                                 PathSegment::Index(0),
                                 PathSegment::Key("text")});
  std::vector<std::string> prefixes;
  ForEachPathPrefix(path, [&](std::string_view p) {
    prefixes.push_back(PathToDisplayString(p));
  });
  ASSERT_EQ(prefixes.size(), 4u);
  EXPECT_EQ(prefixes[0], "entities");
  EXPECT_EQ(prefixes[1], "entities.hashtags");
  EXPECT_EQ(prefixes[2], "entities.hashtags[0]");
  EXPECT_EQ(prefixes[3], "entities.hashtags[0].text");
}

TEST(PathPrefixTest, TileAnswersIntermediateLevels) {
  std::vector<std::string> docs(64, R"({"a":{"b":{"c":1}}})");
  Loader loader(StorageMode::kTiles, {});
  auto rel = loader.Load(docs, "t").MoveValueOrDie();
  const Tile& tile = rel->tiles()[0];
  std::string a = EncodePath({PathSegment::Key("a")});
  std::string ab = EncodePath({PathSegment::Key("a"), PathSegment::Key("b")});
  std::string abc = EncodePath({PathSegment::Key("a"), PathSegment::Key("b"),
                                PathSegment::Key("c")});
  EXPECT_TRUE(tile.MayContainPath(a));
  EXPECT_TRUE(tile.MayContainPath(ab));
  EXPECT_TRUE(tile.MayContainPath(abc));
  EXPECT_FALSE(tile.MayContainPath(EncodePath({PathSegment::Key("zzz")})));
}

// Cast routes (§4.3/§4.5): the requested type differs from the stored column
// type — values must still be served (from the column with a cheap cast).
TEST(CastRouteTest, NumericColumnServesOtherNumericRequests) {
  std::vector<std::string> docs;
  for (int i = 0; i < 64; i++) {
    docs.push_back(R"({"i":)" + std::to_string(i) + R"(,"f":)" +
                   std::to_string(i) + ".5}");
  }
  Loader loader(StorageMode::kTiles, {});
  auto rel = loader.Load(docs, "t").MoveValueOrDie();
  QueryContext ctx;
  QueryBlock q;
  q.AddTable(TableRef::Rel("t", rel.get()));
  q.GroupBy({});
  // Int column requested as Float; Float column requested as Int (trunc);
  // Int column requested as Text.
  q.Aggregate(exec::AggSpec::Sum(Access("t", {"i"}, ValueType::kFloat)));
  q.Aggregate(exec::AggSpec::Sum(Access("t", {"f"}, ValueType::kInt)));
  q.Aggregate(exec::AggSpec::Max(Access("t", {"i"}, ValueType::kString)));
  auto rows = q.Execute(ctx);
  EXPECT_DOUBLE_EQ(rows[0][0].float_value(), 63.0 * 64 / 2);
  EXPECT_EQ(rows[0][1].int_value(), 63 * 64 / 2);
  EXPECT_EQ(rows[0][2].string_value(), "9");  // lexicographic max of "0".."63"
}

TEST(CastRouteTest, StringColumnServesTypedRequests) {
  std::vector<std::string> docs(64, R"({"n":"123","d":"2020-06-01"})");
  tiles::TileConfig config;
  config.enable_date_extraction = false;  // force the string column route
  Loader loader(StorageMode::kTiles, config);
  auto rel = loader.Load(docs, "t").MoveValueOrDie();
  QueryContext ctx;
  QueryBlock q;
  q.AddTable(TableRef::Rel("t", rel.get()));
  q.GroupBy({});
  q.Aggregate(exec::AggSpec::Sum(Access("t", {"n"}, ValueType::kInt)));
  q.Aggregate(exec::AggSpec::Min(Access("t", {"d"}, ValueType::kTimestamp)));
  auto rows = q.Execute(ctx);
  EXPECT_EQ(rows[0][0].int_value(), 123 * 64);
  EXPECT_EQ(rows[0][1].type, ValueType::kTimestamp);
  EXPECT_EQ(FormatDate(rows[0][1].ts_value()), "2020-06-01");
}

TEST(StorageAccountingTest, SizesAreTracked) {
  std::vector<std::string> docs(128, R"({"k":"0123456789","n":123456})");
  Loader loader(StorageMode::kTiles, {});
  auto rel = loader.Load(docs, "t").MoveValueOrDie();
  EXPECT_GT(rel->DocumentBytes(), 128u * 10);
  EXPECT_GT(rel->TileBytes(), 128u * 10);
  EXPECT_EQ(rel->DocSize(0), json::JsonbValue(rel->Jsonb(0).data()).Size());
}

TEST(PlannerOptionTest, DeclaredOrderWhenOptimizerOff) {
  std::vector<std::string> docs;
  for (int i = 0; i < 100; i++) docs.push_back(R"({"a":)" + std::to_string(i) + "}");
  for (int i = 0; i < 5; i++) docs.push_back(R"({"b":)" + std::to_string(i) + "}");
  Loader loader(StorageMode::kTiles, {});
  auto rel = loader.Load(docs, "t").MoveValueOrDie();
  QueryContext ctx;
  QueryBlock q;
  q.AddTable(TableRef::Rel("big", rel.get(),
                           exec::IsNotNull(Access("big", {"a"}, ValueType::kInt))));
  q.AddTable(TableRef::Rel("small", rel.get(),
                           exec::IsNotNull(Access("small", {"b"}, ValueType::kInt))));
  q.AddJoin(exec::Mod(Access("big", {"a"}, ValueType::kInt), exec::ConstInt(5)),
            Access("small", {"b"}, ValueType::kInt));
  q.GroupBy({});
  q.Aggregate(exec::AggSpec::CountStar());
  opt::PlannerOptions off;
  off.optimize_join_order = false;
  auto rows = q.Execute(ctx, off);
  EXPECT_EQ(rows[0][0].int_value(), 100);
  EXPECT_EQ(q.chosen_join_order()[0], "big");  // declaration order preserved
  auto rows2 = q.Execute(ctx);  // optimizer on: same result
  EXPECT_EQ(rows2[0][0].int_value(), 100);
}

TEST(SinewTest, OutlierFallbackOnGlobalTile) {
  // Sinew extracts the int majority; float outliers served from JSONB.
  std::vector<std::string> docs;
  for (int i = 0; i < 90; i++) docs.push_back(R"({"v":)" + std::to_string(i) + "}");
  for (int i = 0; i < 10; i++) docs.push_back(R"({"v":0.25})");
  Loader loader(StorageMode::kSinew, {});
  auto rel = loader.Load(docs, "t").MoveValueOrDie();
  QueryContext ctx;
  QueryBlock q;
  q.AddTable(TableRef::Rel("t", rel.get()));
  q.GroupBy({});
  q.Aggregate(exec::AggSpec::Sum(Access("t", {"v"}, ValueType::kFloat)));
  auto rows = q.Execute(ctx);
  EXPECT_DOUBLE_EQ(rows[0][0].float_value(), 89.0 * 90 / 2 + 2.5);
}

}  // namespace
}  // namespace jsontiles::tiles
