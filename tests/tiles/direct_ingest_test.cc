// Direct tile ingest differential: the scalar directory the emitter collects
// inline during direct emission must equal the reference directory derived
// from the finished JSONB (BuildIngestFromJsonb — itself locked to
// tiles::ForEachKeyPath here), and DocumentItems::CollectFromIngest must
// intern exactly what DocumentItems::Collect does. Together with the loader's
// byte-identity test in ondemand_differential_test.cc this pins every layer
// of the direct-ingest path to the navigating baseline.

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "json/jsonb.h"
#include "json/ondemand.h"
#include "tiles/keypath.h"
#include "tiles/tile_builder.h"
#include "workload/twitter.h"
#include "workload/yelp.h"

namespace jsontiles::tiles {
namespace {

json::OndemandIngestConfig IngestConfigFor(const TileConfig& config) {
  return json::OndemandIngestConfig{config.max_path_depth,
                                    config.max_array_elements};
}

// (path, type) pairs of a directory, with offsets sanity-checked against the
// document bytes.
std::vector<CollectedPath> DirectoryPaths(const json::OndemandIngest& dir,
                                          const std::vector<uint8_t>& doc) {
  std::vector<CollectedPath> out;
  for (const auto& leaf : dir.leaves) {
    EXPECT_LE(leaf.path_off + leaf.path_len, dir.paths.size());
    EXPECT_LT(leaf.value_off, doc.size());
    json::JsonbValue value(doc.data() + leaf.value_off);
    EXPECT_EQ(static_cast<uint8_t>(value.type()), leaf.type);
    out.push_back(CollectedPath{
        dir.paths.substr(leaf.path_off, leaf.path_len),
        static_cast<json::JsonType>(leaf.type)});
  }
  return out;
}

// Emit `text` with inline collection and check the directory against both the
// JSONB-derived reference and ForEachKeyPath over the emitted document.
void ExpectDirectoryParity(std::string_view text, const TileConfig& config) {
  json::OndemandTransformer ondemand;
  std::vector<uint8_t> doc;
  json::OndemandIngest inline_dir;
  ASSERT_TRUE(
      ondemand.Transform(text, &doc, IngestConfigFor(config), &inline_dir).ok())
      << text;
  ASSERT_EQ(ondemand.docs_ondemand(), 1u) << text;  // direct path, no fallback

  json::OndemandIngest derived_dir;
  json::BuildIngestFromJsonb(json::JsonbValue(doc.data()),
                             IngestConfigFor(config), &derived_dir);
  const auto inline_paths = DirectoryPaths(inline_dir, doc);
  const auto derived_paths = DirectoryPaths(derived_dir, doc);
  EXPECT_EQ(inline_paths, derived_paths) << text;
  // Offsets too — both routes must point at the same value bytes.
  ASSERT_EQ(inline_dir.leaves.size(), derived_dir.leaves.size()) << text;
  for (size_t i = 0; i < inline_dir.leaves.size(); i++) {
    EXPECT_EQ(inline_dir.leaves[i].value_off, derived_dir.leaves[i].value_off)
        << text << " leaf " << i;
  }

  // And the reference itself must match the tile layer's walker.
  std::vector<CollectedPath> walker_paths;
  ForEachKeyPath(json::JsonbValue(doc.data()), config,
                 [&](std::string_view path, json::JsonType type) {
                   walker_paths.push_back(
                       CollectedPath{std::string(path), type});
                 });
  EXPECT_EQ(inline_paths, walker_paths) << text;
}

TEST(DirectIngestTest, HandWrittenDocuments) {
  TileConfig config;
  const char* docs[] = {
      R"({"a":1,"b":"x","c":null,"d":true,"e":2.5,"f":"19.99"})",
      R"({})",
      R"([])",
      R"(7)",           // root scalar: one leaf with an empty path
      R"("s")",
      R"(null)",
      // Duplicate keys: dropped members' leaves must vanish with them.
      R"({"b":2,"a":1,"b":3})",
      R"({"k":{"x":1},"k":{"y":2}})",
      R"({"z":1,"y":{"d":1,"c":[1,2]},"x":0})",  // out-of-order keys
      // Arrays past the element cap and nesting past the depth cap.
      R"([1,2,3,4,5,6,7])",
      R"({"deep":{"deep":{"deep":{"deep":{"deep":{"deep":{"deep":{"deep":{"deep":1}}}}}}}}})",
      R"({"mixed":[{"a":1},[2,3],"s",null,9,10]})",
      // Escaped keys and values.
      "{\"k\\u0041\":\"v\\n\",\"k\\u0042\":[true,false]}",
  };
  for (const char* doc : docs) ExpectDirectoryParity(doc, config);
}

TEST(DirectIngestTest, TightCapsChangeCollection) {
  TileConfig config;
  config.max_path_depth = 2;
  config.max_array_elements = 1;
  const char* docs[] = {
      R"({"a":{"b":{"c":1}},"d":[1,2,3],"e":2})",
      R"([[1,2],[3,4],{"k":{"deep":1}}])",
  };
  for (const char* doc : docs) ExpectDirectoryParity(doc, config);
}

TEST(DirectIngestTest, WorkloadCorpora) {
  TileConfig config;
  workload::TwitterOptions twitter;
  twitter.num_tweets = 500;
  twitter.changing_schema = true;
  for (const auto& doc : workload::GenerateTwitter(twitter)) {
    ExpectDirectoryParity(doc, config);
  }
  workload::YelpOptions yelp;
  yelp.num_business = 30;
  for (const auto& doc : workload::GenerateYelp(yelp)) {
    ExpectDirectoryParity(doc, config);
  }
}

// The pool variant must append exactly what the per-document variant
// produces: one Doc entry per accepted document, leaves and paths
// concatenated, path offsets relative to the document's paths_begin — and a
// rejected document must leave the pool untouched.
TEST(DirectIngestTest, PoolAppendsMatchPerDocumentDirectories) {
  TileConfig config;
  json::OndemandTransformer per_doc;
  json::OndemandTransformer pooled;
  json::OndemandIngestPool pool;
  const char* texts[] = {
      R"({"a":1,"b":[true,"x"],"c":{"d":null}})",
      "this is not json",  // rejected: no pool entry
      R"([{"k":1},{"k":2},7])",
      R"("root scalar")",
  };
  std::vector<json::OndemandIngest> expected;
  size_t accepted = 0;
  for (const char* text : texts) {
    std::vector<uint8_t> buf_a, buf_b;
    json::OndemandIngest dir;
    const bool ok_a =
        per_doc.Transform(text, &buf_a, IngestConfigFor(config), &dir).ok();
    const bool ok_b =
        pooled.Transform(text, &buf_b, IngestConfigFor(config), &pool).ok();
    ASSERT_EQ(ok_a, ok_b) << text;
    if (!ok_a) continue;
    EXPECT_EQ(buf_a, buf_b) << text;
    expected.push_back(std::move(dir));
    accepted++;
    ASSERT_EQ(pool.docs.size(), accepted) << text;
  }
  ASSERT_EQ(pool.docs.size(), expected.size());
  for (size_t d = 0; d < expected.size(); d++) {
    const auto& doc = pool.docs[d];
    ASSERT_EQ(doc.leaf_end - doc.leaf_begin, expected[d].leaves.size());
    for (size_t i = 0; i < expected[d].leaves.size(); i++) {
      const auto& got = pool.leaves[doc.leaf_begin + i];
      const auto& want = expected[d].leaves[i];
      EXPECT_EQ(got.value_off, want.value_off);
      EXPECT_EQ(got.type, want.type);
      EXPECT_EQ(pool.paths.substr(doc.paths_begin + got.path_off, got.path_len),
                expected[d].paths.substr(want.path_off, want.path_len));
    }
  }
}

// CollectFromIngest must reproduce Collect exactly: same dictionary, same
// item ids (first-encounter order), same transactions and frequencies —
// mining and reordering downstream depend on all four.
TEST(DirectIngestTest, CollectFromIngestMatchesCollect) {
  TileConfig config;
  workload::TwitterOptions twitter;
  twitter.num_tweets = 400;
  const auto texts = workload::GenerateTwitter(twitter);

  json::OndemandTransformer ondemand;
  std::vector<std::vector<uint8_t>> docs;
  json::OndemandIngestPool pool;
  for (const auto& text : texts) {
    std::vector<uint8_t> buf;
    ASSERT_TRUE(
        ondemand.Transform(text, &buf, IngestConfigFor(config), &pool).ok());
    docs.push_back(std::move(buf));
  }
  std::vector<json::JsonbValue> views;
  views.reserve(docs.size());
  for (const auto& b : docs) views.emplace_back(b.data());

  DocumentItems baseline;
  baseline.Collect(views, config);
  DocumentItems direct;
  direct.CollectFromIngest(pool);

  EXPECT_EQ(direct.dict, baseline.dict);
  EXPECT_EQ(direct.transactions, baseline.transactions);
  EXPECT_EQ(direct.item_counts, baseline.item_counts);
  ASSERT_EQ(direct.ids.size(), baseline.ids.size());
  for (const auto& [key, id] : baseline.ids) {
    auto it = direct.ids.find(key);
    ASSERT_NE(it, direct.ids.end()) << key;
    EXPECT_EQ(it->second, id) << key;
  }
}

}  // namespace
}  // namespace jsontiles::tiles
