# Empty compiler generated dependencies file for bench_loading_fig16_17.
# This may be replaced when dependencies are built.
