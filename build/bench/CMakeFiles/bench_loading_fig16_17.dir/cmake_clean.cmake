file(REMOVE_RECURSE
  "CMakeFiles/bench_loading_fig16_17.dir/bench_loading_fig16_17.cc.o"
  "CMakeFiles/bench_loading_fig16_17.dir/bench_loading_fig16_17.cc.o.d"
  "bench_loading_fig16_17"
  "bench_loading_fig16_17.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_loading_fig16_17.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
