file(REMOVE_RECURSE
  "CMakeFiles/bench_micro_fig15.dir/bench_micro_fig15.cc.o"
  "CMakeFiles/bench_micro_fig15.dir/bench_micro_fig15.cc.o.d"
  "bench_micro_fig15"
  "bench_micro_fig15.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_micro_fig15.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
