# Empty dependencies file for bench_micro_fig15.
# This may be replaced when dependencies are built.
