file(REMOVE_RECURSE
  "CMakeFiles/bench_tpch_table1.dir/bench_tpch_table1.cc.o"
  "CMakeFiles/bench_tpch_table1.dir/bench_tpch_table1.cc.o.d"
  "bench_tpch_table1"
  "bench_tpch_table1.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tpch_table1.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
