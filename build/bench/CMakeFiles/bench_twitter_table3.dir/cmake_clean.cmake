file(REMOVE_RECURSE
  "CMakeFiles/bench_twitter_table3.dir/bench_twitter_table3.cc.o"
  "CMakeFiles/bench_twitter_table3.dir/bench_twitter_table3.cc.o.d"
  "bench_twitter_table3"
  "bench_twitter_table3.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_twitter_table3.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
