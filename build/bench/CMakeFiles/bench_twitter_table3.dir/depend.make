# Empty dependencies file for bench_twitter_table3.
# This may be replaced when dependencies are built.
