file(REMOVE_RECURSE
  "CMakeFiles/bench_shuffled_fig9.dir/bench_shuffled_fig9.cc.o"
  "CMakeFiles/bench_shuffled_fig9.dir/bench_shuffled_fig9.cc.o.d"
  "bench_shuffled_fig9"
  "bench_shuffled_fig9.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_shuffled_fig9.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
