# Empty dependencies file for bench_yelp_table2.
# This may be replaced when dependencies are built.
