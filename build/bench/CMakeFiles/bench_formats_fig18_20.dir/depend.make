# Empty dependencies file for bench_formats_fig18_20.
# This may be replaced when dependencies are built.
