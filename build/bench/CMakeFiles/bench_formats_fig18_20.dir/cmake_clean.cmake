file(REMOVE_RECURSE
  "CMakeFiles/bench_formats_fig18_20.dir/bench_formats_fig18_20.cc.o"
  "CMakeFiles/bench_formats_fig18_20.dir/bench_formats_fig18_20.cc.o.d"
  "bench_formats_fig18_20"
  "bench_formats_fig18_20.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_formats_fig18_20.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
