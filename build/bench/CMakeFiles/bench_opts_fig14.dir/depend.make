# Empty dependencies file for bench_opts_fig14.
# This may be replaced when dependencies are built.
