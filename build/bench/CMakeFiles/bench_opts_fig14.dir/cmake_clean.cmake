file(REMOVE_RECURSE
  "CMakeFiles/bench_opts_fig14.dir/bench_opts_fig14.cc.o"
  "CMakeFiles/bench_opts_fig14.dir/bench_opts_fig14.cc.o.d"
  "bench_opts_fig14"
  "bench_opts_fig14.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_opts_fig14.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
