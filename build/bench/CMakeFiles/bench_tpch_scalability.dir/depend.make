# Empty dependencies file for bench_tpch_scalability.
# This may be replaced when dependencies are built.
