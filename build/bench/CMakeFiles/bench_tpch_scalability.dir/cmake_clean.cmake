file(REMOVE_RECURSE
  "CMakeFiles/bench_tpch_scalability.dir/bench_tpch_scalability.cc.o"
  "CMakeFiles/bench_tpch_scalability.dir/bench_tpch_scalability.cc.o.d"
  "bench_tpch_scalability"
  "bench_tpch_scalability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tpch_scalability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
