file(REMOVE_RECURSE
  "CMakeFiles/bench_storage_table6.dir/bench_storage_table6.cc.o"
  "CMakeFiles/bench_storage_table6.dir/bench_storage_table6.cc.o.d"
  "bench_storage_table6"
  "bench_storage_table6.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_storage_table6.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
