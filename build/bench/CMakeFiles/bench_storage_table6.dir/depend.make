# Empty dependencies file for bench_storage_table6.
# This may be replaced when dependencies are built.
