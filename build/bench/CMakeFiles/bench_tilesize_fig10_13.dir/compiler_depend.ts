# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for bench_tilesize_fig10_13.
