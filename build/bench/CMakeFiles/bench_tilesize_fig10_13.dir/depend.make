# Empty dependencies file for bench_tilesize_fig10_13.
# This may be replaced when dependencies are built.
