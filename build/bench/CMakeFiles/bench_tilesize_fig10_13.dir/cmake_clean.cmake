file(REMOVE_RECURSE
  "CMakeFiles/bench_tilesize_fig10_13.dir/bench_tilesize_fig10_13.cc.o"
  "CMakeFiles/bench_tilesize_fig10_13.dir/bench_tilesize_fig10_13.cc.o.d"
  "bench_tilesize_fig10_13"
  "bench_tilesize_fig10_13.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tilesize_fig10_13.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
