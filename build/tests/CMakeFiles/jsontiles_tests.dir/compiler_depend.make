# Empty compiler generated dependencies file for jsontiles_tests.
# This may be replaced when dependencies are built.
