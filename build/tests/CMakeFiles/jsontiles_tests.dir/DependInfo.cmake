
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/exec/engine_edge_test.cc" "tests/CMakeFiles/jsontiles_tests.dir/exec/engine_edge_test.cc.o" "gcc" "tests/CMakeFiles/jsontiles_tests.dir/exec/engine_edge_test.cc.o.d"
  "/root/repo/tests/exec/expression_test.cc" "tests/CMakeFiles/jsontiles_tests.dir/exec/expression_test.cc.o" "gcc" "tests/CMakeFiles/jsontiles_tests.dir/exec/expression_test.cc.o.d"
  "/root/repo/tests/exec/scan_test.cc" "tests/CMakeFiles/jsontiles_tests.dir/exec/scan_test.cc.o" "gcc" "tests/CMakeFiles/jsontiles_tests.dir/exec/scan_test.cc.o.d"
  "/root/repo/tests/exec/zonemap_test.cc" "tests/CMakeFiles/jsontiles_tests.dir/exec/zonemap_test.cc.o" "gcc" "tests/CMakeFiles/jsontiles_tests.dir/exec/zonemap_test.cc.o.d"
  "/root/repo/tests/json/dom_test.cc" "tests/CMakeFiles/jsontiles_tests.dir/json/dom_test.cc.o" "gcc" "tests/CMakeFiles/jsontiles_tests.dir/json/dom_test.cc.o.d"
  "/root/repo/tests/json/formats_test.cc" "tests/CMakeFiles/jsontiles_tests.dir/json/formats_test.cc.o" "gcc" "tests/CMakeFiles/jsontiles_tests.dir/json/formats_test.cc.o.d"
  "/root/repo/tests/json/jsonb_test.cc" "tests/CMakeFiles/jsontiles_tests.dir/json/jsonb_test.cc.o" "gcc" "tests/CMakeFiles/jsontiles_tests.dir/json/jsonb_test.cc.o.d"
  "/root/repo/tests/json/parser_fuzz_test.cc" "tests/CMakeFiles/jsontiles_tests.dir/json/parser_fuzz_test.cc.o" "gcc" "tests/CMakeFiles/jsontiles_tests.dir/json/parser_fuzz_test.cc.o.d"
  "/root/repo/tests/mining/mining_test.cc" "tests/CMakeFiles/jsontiles_tests.dir/mining/mining_test.cc.o" "gcc" "tests/CMakeFiles/jsontiles_tests.dir/mining/mining_test.cc.o.d"
  "/root/repo/tests/opt/query_test.cc" "tests/CMakeFiles/jsontiles_tests.dir/opt/query_test.cc.o" "gcc" "tests/CMakeFiles/jsontiles_tests.dir/opt/query_test.cc.o.d"
  "/root/repo/tests/sql/sql_test.cc" "tests/CMakeFiles/jsontiles_tests.dir/sql/sql_test.cc.o" "gcc" "tests/CMakeFiles/jsontiles_tests.dir/sql/sql_test.cc.o.d"
  "/root/repo/tests/sql/sql_tpch_test.cc" "tests/CMakeFiles/jsontiles_tests.dir/sql/sql_tpch_test.cc.o" "gcc" "tests/CMakeFiles/jsontiles_tests.dir/sql/sql_tpch_test.cc.o.d"
  "/root/repo/tests/storage/loader_test.cc" "tests/CMakeFiles/jsontiles_tests.dir/storage/loader_test.cc.o" "gcc" "tests/CMakeFiles/jsontiles_tests.dir/storage/loader_test.cc.o.d"
  "/root/repo/tests/storage/serialize_test.cc" "tests/CMakeFiles/jsontiles_tests.dir/storage/serialize_test.cc.o" "gcc" "tests/CMakeFiles/jsontiles_tests.dir/storage/serialize_test.cc.o.d"
  "/root/repo/tests/tiles/column_test.cc" "tests/CMakeFiles/jsontiles_tests.dir/tiles/column_test.cc.o" "gcc" "tests/CMakeFiles/jsontiles_tests.dir/tiles/column_test.cc.o.d"
  "/root/repo/tests/tiles/keypath_test.cc" "tests/CMakeFiles/jsontiles_tests.dir/tiles/keypath_test.cc.o" "gcc" "tests/CMakeFiles/jsontiles_tests.dir/tiles/keypath_test.cc.o.d"
  "/root/repo/tests/tiles/prefix_and_routes_test.cc" "tests/CMakeFiles/jsontiles_tests.dir/tiles/prefix_and_routes_test.cc.o" "gcc" "tests/CMakeFiles/jsontiles_tests.dir/tiles/prefix_and_routes_test.cc.o.d"
  "/root/repo/tests/tiles/reorder_test.cc" "tests/CMakeFiles/jsontiles_tests.dir/tiles/reorder_test.cc.o" "gcc" "tests/CMakeFiles/jsontiles_tests.dir/tiles/reorder_test.cc.o.d"
  "/root/repo/tests/tiles/tile_builder_test.cc" "tests/CMakeFiles/jsontiles_tests.dir/tiles/tile_builder_test.cc.o" "gcc" "tests/CMakeFiles/jsontiles_tests.dir/tiles/tile_builder_test.cc.o.d"
  "/root/repo/tests/util/bit_util_test.cc" "tests/CMakeFiles/jsontiles_tests.dir/util/bit_util_test.cc.o" "gcc" "tests/CMakeFiles/jsontiles_tests.dir/util/bit_util_test.cc.o.d"
  "/root/repo/tests/util/bloom_filter_test.cc" "tests/CMakeFiles/jsontiles_tests.dir/util/bloom_filter_test.cc.o" "gcc" "tests/CMakeFiles/jsontiles_tests.dir/util/bloom_filter_test.cc.o.d"
  "/root/repo/tests/util/date_test.cc" "tests/CMakeFiles/jsontiles_tests.dir/util/date_test.cc.o" "gcc" "tests/CMakeFiles/jsontiles_tests.dir/util/date_test.cc.o.d"
  "/root/repo/tests/util/decimal_test.cc" "tests/CMakeFiles/jsontiles_tests.dir/util/decimal_test.cc.o" "gcc" "tests/CMakeFiles/jsontiles_tests.dir/util/decimal_test.cc.o.d"
  "/root/repo/tests/util/hyperloglog_test.cc" "tests/CMakeFiles/jsontiles_tests.dir/util/hyperloglog_test.cc.o" "gcc" "tests/CMakeFiles/jsontiles_tests.dir/util/hyperloglog_test.cc.o.d"
  "/root/repo/tests/util/lz4_test.cc" "tests/CMakeFiles/jsontiles_tests.dir/util/lz4_test.cc.o" "gcc" "tests/CMakeFiles/jsontiles_tests.dir/util/lz4_test.cc.o.d"
  "/root/repo/tests/util/misc_util_test.cc" "tests/CMakeFiles/jsontiles_tests.dir/util/misc_util_test.cc.o" "gcc" "tests/CMakeFiles/jsontiles_tests.dir/util/misc_util_test.cc.o.d"
  "/root/repo/tests/util/rle_test.cc" "tests/CMakeFiles/jsontiles_tests.dir/util/rle_test.cc.o" "gcc" "tests/CMakeFiles/jsontiles_tests.dir/util/rle_test.cc.o.d"
  "/root/repo/tests/util/status_test.cc" "tests/CMakeFiles/jsontiles_tests.dir/util/status_test.cc.o" "gcc" "tests/CMakeFiles/jsontiles_tests.dir/util/status_test.cc.o.d"
  "/root/repo/tests/workload/tpch_test.cc" "tests/CMakeFiles/jsontiles_tests.dir/workload/tpch_test.cc.o" "gcc" "tests/CMakeFiles/jsontiles_tests.dir/workload/tpch_test.cc.o.d"
  "/root/repo/tests/workload/workloads_test.cc" "tests/CMakeFiles/jsontiles_tests.dir/workload/workloads_test.cc.o" "gcc" "tests/CMakeFiles/jsontiles_tests.dir/workload/workloads_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/jsontiles.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
