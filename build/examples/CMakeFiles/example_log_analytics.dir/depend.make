# Empty dependencies file for example_log_analytics.
# This may be replaced when dependencies are built.
