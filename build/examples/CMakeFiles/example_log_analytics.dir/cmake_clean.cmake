file(REMOVE_RECURSE
  "CMakeFiles/example_log_analytics.dir/log_analytics.cpp.o"
  "CMakeFiles/example_log_analytics.dir/log_analytics.cpp.o.d"
  "example_log_analytics"
  "example_log_analytics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_log_analytics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
