file(REMOVE_RECURSE
  "CMakeFiles/example_sql_queries.dir/sql_queries.cpp.o"
  "CMakeFiles/example_sql_queries.dir/sql_queries.cpp.o.d"
  "example_sql_queries"
  "example_sql_queries.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_sql_queries.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
