# Empty compiler generated dependencies file for example_sql_queries.
# This may be replaced when dependencies are built.
