# Empty compiler generated dependencies file for example_twitter_analytics.
# This may be replaced when dependencies are built.
