file(REMOVE_RECURSE
  "CMakeFiles/example_twitter_analytics.dir/twitter_analytics.cpp.o"
  "CMakeFiles/example_twitter_analytics.dir/twitter_analytics.cpp.o.d"
  "example_twitter_analytics"
  "example_twitter_analytics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_twitter_analytics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
