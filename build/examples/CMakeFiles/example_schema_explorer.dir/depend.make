# Empty dependencies file for example_schema_explorer.
# This may be replaced when dependencies are built.
