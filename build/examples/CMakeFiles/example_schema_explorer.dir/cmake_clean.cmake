file(REMOVE_RECURSE
  "CMakeFiles/example_schema_explorer.dir/schema_explorer.cpp.o"
  "CMakeFiles/example_schema_explorer.dir/schema_explorer.cpp.o.d"
  "example_schema_explorer"
  "example_schema_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_schema_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
