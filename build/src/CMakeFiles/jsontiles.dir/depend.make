# Empty dependencies file for jsontiles.
# This may be replaced when dependencies are built.
