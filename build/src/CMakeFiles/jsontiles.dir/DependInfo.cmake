
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/exec/expression.cc" "src/CMakeFiles/jsontiles.dir/exec/expression.cc.o" "gcc" "src/CMakeFiles/jsontiles.dir/exec/expression.cc.o.d"
  "/root/repo/src/exec/operators.cc" "src/CMakeFiles/jsontiles.dir/exec/operators.cc.o" "gcc" "src/CMakeFiles/jsontiles.dir/exec/operators.cc.o.d"
  "/root/repo/src/exec/scan.cc" "src/CMakeFiles/jsontiles.dir/exec/scan.cc.o" "gcc" "src/CMakeFiles/jsontiles.dir/exec/scan.cc.o.d"
  "/root/repo/src/exec/value.cc" "src/CMakeFiles/jsontiles.dir/exec/value.cc.o" "gcc" "src/CMakeFiles/jsontiles.dir/exec/value.cc.o.d"
  "/root/repo/src/json/bson.cc" "src/CMakeFiles/jsontiles.dir/json/bson.cc.o" "gcc" "src/CMakeFiles/jsontiles.dir/json/bson.cc.o.d"
  "/root/repo/src/json/cbor.cc" "src/CMakeFiles/jsontiles.dir/json/cbor.cc.o" "gcc" "src/CMakeFiles/jsontiles.dir/json/cbor.cc.o.d"
  "/root/repo/src/json/dom.cc" "src/CMakeFiles/jsontiles.dir/json/dom.cc.o" "gcc" "src/CMakeFiles/jsontiles.dir/json/dom.cc.o.d"
  "/root/repo/src/json/jsonb.cc" "src/CMakeFiles/jsontiles.dir/json/jsonb.cc.o" "gcc" "src/CMakeFiles/jsontiles.dir/json/jsonb.cc.o.d"
  "/root/repo/src/json/lexer.cc" "src/CMakeFiles/jsontiles.dir/json/lexer.cc.o" "gcc" "src/CMakeFiles/jsontiles.dir/json/lexer.cc.o.d"
  "/root/repo/src/mining/apriori.cc" "src/CMakeFiles/jsontiles.dir/mining/apriori.cc.o" "gcc" "src/CMakeFiles/jsontiles.dir/mining/apriori.cc.o.d"
  "/root/repo/src/mining/fpgrowth.cc" "src/CMakeFiles/jsontiles.dir/mining/fpgrowth.cc.o" "gcc" "src/CMakeFiles/jsontiles.dir/mining/fpgrowth.cc.o.d"
  "/root/repo/src/opt/cardinality.cc" "src/CMakeFiles/jsontiles.dir/opt/cardinality.cc.o" "gcc" "src/CMakeFiles/jsontiles.dir/opt/cardinality.cc.o.d"
  "/root/repo/src/opt/join_order.cc" "src/CMakeFiles/jsontiles.dir/opt/join_order.cc.o" "gcc" "src/CMakeFiles/jsontiles.dir/opt/join_order.cc.o.d"
  "/root/repo/src/opt/query.cc" "src/CMakeFiles/jsontiles.dir/opt/query.cc.o" "gcc" "src/CMakeFiles/jsontiles.dir/opt/query.cc.o.d"
  "/root/repo/src/sql/sql_lexer.cc" "src/CMakeFiles/jsontiles.dir/sql/sql_lexer.cc.o" "gcc" "src/CMakeFiles/jsontiles.dir/sql/sql_lexer.cc.o.d"
  "/root/repo/src/sql/sql_parser.cc" "src/CMakeFiles/jsontiles.dir/sql/sql_parser.cc.o" "gcc" "src/CMakeFiles/jsontiles.dir/sql/sql_parser.cc.o.d"
  "/root/repo/src/storage/loader.cc" "src/CMakeFiles/jsontiles.dir/storage/loader.cc.o" "gcc" "src/CMakeFiles/jsontiles.dir/storage/loader.cc.o.d"
  "/root/repo/src/storage/relation.cc" "src/CMakeFiles/jsontiles.dir/storage/relation.cc.o" "gcc" "src/CMakeFiles/jsontiles.dir/storage/relation.cc.o.d"
  "/root/repo/src/storage/serialize.cc" "src/CMakeFiles/jsontiles.dir/storage/serialize.cc.o" "gcc" "src/CMakeFiles/jsontiles.dir/storage/serialize.cc.o.d"
  "/root/repo/src/tiles/array_extract.cc" "src/CMakeFiles/jsontiles.dir/tiles/array_extract.cc.o" "gcc" "src/CMakeFiles/jsontiles.dir/tiles/array_extract.cc.o.d"
  "/root/repo/src/tiles/column.cc" "src/CMakeFiles/jsontiles.dir/tiles/column.cc.o" "gcc" "src/CMakeFiles/jsontiles.dir/tiles/column.cc.o.d"
  "/root/repo/src/tiles/keypath.cc" "src/CMakeFiles/jsontiles.dir/tiles/keypath.cc.o" "gcc" "src/CMakeFiles/jsontiles.dir/tiles/keypath.cc.o.d"
  "/root/repo/src/tiles/reorder.cc" "src/CMakeFiles/jsontiles.dir/tiles/reorder.cc.o" "gcc" "src/CMakeFiles/jsontiles.dir/tiles/reorder.cc.o.d"
  "/root/repo/src/tiles/stats.cc" "src/CMakeFiles/jsontiles.dir/tiles/stats.cc.o" "gcc" "src/CMakeFiles/jsontiles.dir/tiles/stats.cc.o.d"
  "/root/repo/src/tiles/tile.cc" "src/CMakeFiles/jsontiles.dir/tiles/tile.cc.o" "gcc" "src/CMakeFiles/jsontiles.dir/tiles/tile.cc.o.d"
  "/root/repo/src/tiles/tile_builder.cc" "src/CMakeFiles/jsontiles.dir/tiles/tile_builder.cc.o" "gcc" "src/CMakeFiles/jsontiles.dir/tiles/tile_builder.cc.o.d"
  "/root/repo/src/util/arena.cc" "src/CMakeFiles/jsontiles.dir/util/arena.cc.o" "gcc" "src/CMakeFiles/jsontiles.dir/util/arena.cc.o.d"
  "/root/repo/src/util/bloom_filter.cc" "src/CMakeFiles/jsontiles.dir/util/bloom_filter.cc.o" "gcc" "src/CMakeFiles/jsontiles.dir/util/bloom_filter.cc.o.d"
  "/root/repo/src/util/date.cc" "src/CMakeFiles/jsontiles.dir/util/date.cc.o" "gcc" "src/CMakeFiles/jsontiles.dir/util/date.cc.o.d"
  "/root/repo/src/util/decimal.cc" "src/CMakeFiles/jsontiles.dir/util/decimal.cc.o" "gcc" "src/CMakeFiles/jsontiles.dir/util/decimal.cc.o.d"
  "/root/repo/src/util/hyperloglog.cc" "src/CMakeFiles/jsontiles.dir/util/hyperloglog.cc.o" "gcc" "src/CMakeFiles/jsontiles.dir/util/hyperloglog.cc.o.d"
  "/root/repo/src/util/lz4.cc" "src/CMakeFiles/jsontiles.dir/util/lz4.cc.o" "gcc" "src/CMakeFiles/jsontiles.dir/util/lz4.cc.o.d"
  "/root/repo/src/util/perf_counters.cc" "src/CMakeFiles/jsontiles.dir/util/perf_counters.cc.o" "gcc" "src/CMakeFiles/jsontiles.dir/util/perf_counters.cc.o.d"
  "/root/repo/src/util/rle.cc" "src/CMakeFiles/jsontiles.dir/util/rle.cc.o" "gcc" "src/CMakeFiles/jsontiles.dir/util/rle.cc.o.d"
  "/root/repo/src/util/thread_pool.cc" "src/CMakeFiles/jsontiles.dir/util/thread_pool.cc.o" "gcc" "src/CMakeFiles/jsontiles.dir/util/thread_pool.cc.o.d"
  "/root/repo/src/workload/hackernews.cc" "src/CMakeFiles/jsontiles.dir/workload/hackernews.cc.o" "gcc" "src/CMakeFiles/jsontiles.dir/workload/hackernews.cc.o.d"
  "/root/repo/src/workload/simdjson_corpus.cc" "src/CMakeFiles/jsontiles.dir/workload/simdjson_corpus.cc.o" "gcc" "src/CMakeFiles/jsontiles.dir/workload/simdjson_corpus.cc.o.d"
  "/root/repo/src/workload/tpch.cc" "src/CMakeFiles/jsontiles.dir/workload/tpch.cc.o" "gcc" "src/CMakeFiles/jsontiles.dir/workload/tpch.cc.o.d"
  "/root/repo/src/workload/tpch_queries.cc" "src/CMakeFiles/jsontiles.dir/workload/tpch_queries.cc.o" "gcc" "src/CMakeFiles/jsontiles.dir/workload/tpch_queries.cc.o.d"
  "/root/repo/src/workload/twitter.cc" "src/CMakeFiles/jsontiles.dir/workload/twitter.cc.o" "gcc" "src/CMakeFiles/jsontiles.dir/workload/twitter.cc.o.d"
  "/root/repo/src/workload/yelp.cc" "src/CMakeFiles/jsontiles.dir/workload/yelp.cc.o" "gcc" "src/CMakeFiles/jsontiles.dir/workload/yelp.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
