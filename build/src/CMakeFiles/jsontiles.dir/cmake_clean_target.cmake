file(REMOVE_RECURSE
  "libjsontiles.a"
)
