// Reproduces paper Figure 8: thread scalability of the internal competitors
// on TPC-H Q1 (scan + aggregation) and Q18 (join + high-cardinality
// aggregation), reported in queries/sec.
//
// Note: the paper's testbed has 16 cores / 32 threads; this container may
// expose a single core, in which case the curves flatten (EXPERIMENTS.md).

#include <benchmark/benchmark.h>

#include <thread>

#include "bench_common.h"
#include "workload/tpch.h"
#include "workload/tpch_queries.h"

namespace {

using namespace jsontiles;         // NOLINT
using namespace jsontiles::bench;  // NOLINT

}  // namespace

int main(int argc, char** argv) {
  BenchObs obs(&argc, argv);
  benchmark::Initialize(&argc, argv);

  workload::TpchOptions options;
  options.scale_factor = TpchScaleFactor();
  workload::TpchData data = workload::GenerateTpch(options);

  tiles::TileConfig config;
  storage::LoadOptions load_options;
  load_options.num_threads = std::thread::hardware_concurrency();
  auto relations = LoadAllModes(data.combined, "tpch", config, load_options);

  unsigned hw = std::max(1u, std::thread::hardware_concurrency());
  std::vector<size_t> thread_counts;
  for (size_t t = 1; t <= hw; t *= 2) thread_counts.push_back(t);
  if (thread_counts.back() != hw) thread_counts.push_back(hw);

  for (int query : {1, 18}) {
    TablePrinter fig("Figure 8: Q" + std::to_string(query) +
                     " scalability [queries/sec] (hardware threads: " +
                     std::to_string(hw) + ")");
    std::vector<std::string> header = {"Mode"};
    for (size_t t : thread_counts) header.push_back(std::to_string(t) + "T");
    fig.SetHeader(header);
    for (auto mode : AllModes()) {
      std::vector<std::string> row = {storage::StorageModeName(mode)};
      for (size_t threads : thread_counts) {
        exec::ExecOptions exec_options;
        exec_options.num_threads = threads;
        double secs = TimeBest(
            [&] {
              exec::QueryContext ctx(exec_options);
              benchmark::DoNotOptimize(
                  workload::RunTpchQuery(query, *relations.at(mode), ctx));
            },
            mode == storage::StorageMode::kJsonText ? 1 : 2);
        row.push_back(Fmt(1.0 / secs, "%.2f"));
      }
      fig.AddRow(std::move(row));
    }
    fig.Print();
  }
  return 0;
}
