// Reproduces paper Figures 10-13: tile-size and partition-size sensitivity.
//   Fig 10: shuffled TPC-H geo-mean query time vs tile size (2^8..2^16) for
//           partition sizes 1/4/8/16
//   Fig 11: shuffled TPC-H loading time vs tile size
//   Fig 12: Yelp geo-mean vs tile size
//   Fig 13: Twitter geo-mean vs tile size
// (The paper sweeps to 2^18; the default laptop scale stops at 2^16 — set
// JSONTILES_SF / JSONTILES_TWEETS higher to extend the sweep meaningfully.)

#include <benchmark/benchmark.h>

#include <functional>

#include "bench_common.h"
#include "workload/tpch.h"
#include "workload/tpch_queries.h"
#include "workload/twitter.h"
#include "workload/yelp.h"

namespace {

using namespace jsontiles;         // NOLINT
using namespace jsontiles::bench;  // NOLINT

using QueryFn = std::function<double(const storage::Relation&)>;

void Sweep(const char* title, const std::vector<std::string>& docs,
           const QueryFn& geo_mean_fn, bool print_load_time) {
  std::vector<size_t> tile_sizes;
  for (size_t s = 256; s <= 65536; s *= 4) tile_sizes.push_back(s);
  std::vector<size_t> partitions = {1, 4, 8, 16};

  TablePrinter fig(std::string(title) + " — geo-mean query time [s]");
  std::vector<std::string> header = {"Tile size"};
  for (size_t p : partitions) header.push_back("part=" + std::to_string(p));
  fig.SetHeader(header);
  TablePrinter load_fig(std::string(title) + " — loading time [s]");
  load_fig.SetHeader(header);

  for (size_t tile_size : tile_sizes) {
    std::vector<std::string> row = {std::to_string(tile_size)};
    std::vector<std::string> load_row = {std::to_string(tile_size)};
    for (size_t partition : partitions) {
      tiles::TileConfig config;
      config.tile_size = tile_size;
      config.partition_size = partition;
      storage::LoadOptions load_options;
      load_options.num_threads = BenchThreads();
      storage::Loader loader(storage::StorageMode::kTiles, config, load_options);
      storage::LoadBreakdown breakdown;
      auto rel = loader.Load(docs, "sweep", &breakdown).MoveValueOrDie();
      row.push_back(Fmt(geo_mean_fn(*rel)));
      load_row.push_back(Fmt(breakdown.total_wall_secs, "%.2f"));
    }
    fig.AddRow(std::move(row));
    load_fig.AddRow(std::move(load_row));
  }
  fig.Print();
  if (print_load_time) load_fig.Print();
}

}  // namespace

int main(int argc, char** argv) {
  BenchObs obs(&argc, argv);
  benchmark::Initialize(&argc, argv);
  exec::ExecOptions exec_options;
  exec_options.num_threads = BenchThreads();

  {
    workload::TpchOptions options;
    options.scale_factor = TpchScaleFactor();
    options.shuffle = true;
    workload::TpchData data = workload::GenerateTpch(options);
    // The geo-mean uses a representative query subset to keep the sweep fast.
    std::vector<int> queries = {1, 3, 6, 12, 14, 18};
    Sweep("Figures 10/11: shuffled TPC-H", data.combined,
          [&](const storage::Relation& rel) {
            std::vector<double> times;
            for (int q : queries) {
              times.push_back(TimeBest([&] {
                exec::QueryContext ctx(exec_options);
                benchmark::DoNotOptimize(workload::RunTpchQuery(q, rel, ctx));
              }, 2));
            }
            return GeoMean(times);
          },
          /*print_load_time=*/true);
  }
  {
    workload::YelpOptions options;
    options.num_business = YelpBusinesses();
    auto docs = workload::GenerateYelp(options);
    Sweep("Figure 12: Yelp", docs,
          [&](const storage::Relation& rel) {
            std::vector<double> times;
            for (int q = 1; q <= 5; q++) {
              times.push_back(TimeBest([&] {
                exec::QueryContext ctx(exec_options);
                benchmark::DoNotOptimize(workload::RunYelpQuery(q, rel, ctx));
              }, 2));
            }
            return GeoMean(times);
          },
          /*print_load_time=*/false);
  }
  {
    workload::TwitterOptions options;
    options.num_tweets = TwitterTweets();
    auto docs = workload::GenerateTwitter(options);
    Sweep("Figure 13: Twitter", docs,
          [&](const storage::Relation& rel) {
            std::vector<double> times;
            for (int q = 1; q <= 5; q++) {
              times.push_back(TimeBest([&] {
                exec::QueryContext ctx(exec_options);
                benchmark::DoNotOptimize(workload::RunTwitterQuery(q, rel, ctx));
              }, 2));
            }
            return GeoMean(times);
          },
          /*print_load_time=*/false);
  }
  return 0;
}
