// Spill-to-disk perf smoke: runs a join, a join+aggregate, and a
// high-cardinality aggregation once unconstrained and once under a scratch
// memory cap (--mem-limit, default 1 MiB), asserts the constrained results
// are identical to the in-memory ones, and reports wall times plus the
// spilled_bytes / spill_partitions counters from the per-query PlanProfile
// (so the check also works under JSONTILES_OBS=OFF).
//
//   --spill-json <path>   write the summary as JSON (CI uploads it)
//
// Exits non-zero when a constrained run diverges from its in-memory baseline
// or fails to spill — this binary doubles as the CI spill-correctness gate.

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench_common.h"
#include "sql/sql_parser.h"

namespace {

using namespace jsontiles;         // NOLINT
using namespace jsontiles::bench;  // NOLINT

constexpr size_t kFacts = 200000;
constexpr size_t kDims = 20000;

// All float values are exact quarters: sums are order-independent, so the
// in-memory and spilled results must match bit for bit.
std::vector<std::string> FactDocs() {
  std::vector<std::string> docs;
  docs.reserve(kFacts);
  for (size_t i = 0; i < kFacts; i++) {
    docs.push_back("{\"k\":" + std::to_string(i % kDims) +
                   ",\"v\":" + std::to_string(i) +
                   ",\"f\":" + std::to_string(i % 37) + ".25" +
                   ",\"s\":\"tag" + std::to_string(i % 9973) + "\"}");
  }
  return docs;
}

std::vector<std::string> DimDocs() {
  std::vector<std::string> docs;
  docs.reserve(kDims);
  for (size_t i = 0; i < kDims; i++) {
    docs.push_back("{\"k\":" + std::to_string(i) + ",\"label\":\"label-" +
                   std::to_string(i % 61) + "\"}");
  }
  return docs;
}

struct QuerySpec {
  const char* name;
  const char* statement;
};

const QuerySpec kQueries[] = {
    {"join",
     "SELECT f->>'v'::BigInt, f->>'s', d->>'label' "
     "FROM facts f, dims d WHERE f->>'k'::BigInt = d->>'k'::BigInt"},
    {"join_agg",
     "SELECT d->>'label', COUNT(*), SUM(f->>'v'::BigInt), "
     "AVG(f->>'f'::Float) "
     "FROM facts f, dims d WHERE f->>'k'::BigInt = d->>'k'::BigInt "
     "GROUP BY d->>'label'"},
    // 200000 string-keyed groups: the group table far exceeds any sane
    // scratch cap, so this run exercises the string-rescue path heavily.
    {"agg",
     "SELECT f->>'s', f->>'v'::BigInt, COUNT(*), SUM(f->>'v'::BigInt), "
     "MIN(f->>'f'::Float), MAX(f->>'v'::BigInt) "
     "FROM facts f GROUP BY f->>'s', f->>'v'::BigInt"},
};

struct RunResult {
  double secs = 0;
  size_t rows = 0;
  int64_t spilled_bytes = 0;
  int64_t spill_partitions = 0;
  std::vector<std::string> sorted_rows;
};

RunResult RunQuery(const char* statement, const sql::SqlCatalog& catalog,
                   size_t mem_limit, int repetitions) {
  RunResult out;
  out.secs = 1e300;
  for (int rep = 0; rep < repetitions; rep++) {
    exec::ExecOptions options;
    options.num_threads = BenchThreads();
    options.mem_limit_bytes = mem_limit;
    exec::QueryContext ctx(options);
    obs::PlanProfile profile;
    ctx.profile = &profile;
    sql::SqlResult result;
    double secs = TimeOnce([&] {
      auto r = sql::ExecuteSql(statement, catalog, ctx);
      if (!r.ok()) {
        std::fprintf(stderr, "query failed: %s\n", r.status().ToString().c_str());
        std::exit(1);
      }
      result = r.MoveValueOrDie();
    });
    out.secs = std::min(out.secs, secs);
    if (rep + 1 < repetitions) continue;
    out.rows = result.rows.size();
    out.sorted_rows.reserve(result.rows.size());
    for (const auto& row : result.rows) {
      std::string line;
      for (const auto& v : row) {
        line += v.ToString();
        line += '|';
      }
      out.sorted_rows.push_back(std::move(line));
    }
    std::sort(out.sorted_rows.begin(), out.sorted_rows.end());
    for (int id = 0; id < static_cast<int>(profile.size()); id++) {
      for (const auto& [name, value] : profile.op(id).counters) {
        if (name == "spilled_bytes") out.spilled_bytes += value;
        if (name == "spill_partitions") out.spill_partitions += value;
      }
    }
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  BenchObs obs(&argc, argv);
  std::string json_path;
  for (int i = 1; i < argc; i++) {
    std::string_view arg = argv[i];
    if (arg == "--spill-json" || arg.rfind("--spill-json=", 0) == 0) {
      size_t eq = arg.find('=');
      if (eq != std::string_view::npos) {
        json_path = std::string(arg.substr(eq + 1));
      } else if (i + 1 < argc) {
        json_path = argv[++i];
      } else {
        std::fprintf(stderr, "missing path after --spill-json\n");
        return 2;
      }
    }
  }
  // Fail before the run, not after (same contract as --metrics-json).
  if (!json_path.empty()) {
    std::FILE* f = std::fopen(json_path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
      return 2;
    }
    std::fclose(f);
  }
  const size_t mem_limit =
      obs.mem_limit_bytes() != 0 ? obs.mem_limit_bytes() : 1024 * 1024;

  auto facts = FactDocs();
  auto dims = DimDocs();
  storage::LoadOptions load_options;
  load_options.num_threads = BenchThreads();
  storage::Loader loader(storage::StorageMode::kTiles, {}, load_options);
  auto facts_rel = loader.Load(facts, "facts").MoveValueOrDie();
  auto dims_rel = loader.Load(dims, "dims").MoveValueOrDie();
  sql::SqlCatalog catalog;
  catalog.tables["facts"] = facts_rel.get();
  catalog.tables["dims"] = dims_rel.get();
  std::printf("facts=%zu dims=%zu mem_limit=%zu bytes threads=%zu\n", kFacts,
              kDims, mem_limit, BenchThreads());

  TablePrinter table("Spill-to-disk: in-memory vs constrained [s]");
  table.SetHeader({"Query", "rows", "in-mem", "spilled", "slowdown",
                   "spilled_bytes", "partitions"});
  std::string json = "{\n  \"mem_limit_bytes\": " + std::to_string(mem_limit) +
                     ",\n  \"threads\": " + std::to_string(BenchThreads()) +
                     ",\n  \"queries\": [\n";
  bool ok = true;
  bool first = true;
  for (const auto& q : kQueries) {
    RunResult inmem = RunQuery(q.statement, catalog, 0, 2);
    RunResult spilled = RunQuery(q.statement, catalog, mem_limit, 2);

    if (inmem.spilled_bytes != 0) {
      std::fprintf(stderr, "FAIL %s: unconstrained run spilled %lld bytes\n",
                   q.name, static_cast<long long>(inmem.spilled_bytes));
      ok = false;
    }
    if (spilled.spilled_bytes == 0) {
      std::fprintf(stderr,
                   "FAIL %s: constrained run (limit %zu) did not spill\n",
                   q.name, mem_limit);
      ok = false;
    }
    if (spilled.sorted_rows != inmem.sorted_rows) {
      std::fprintf(stderr,
                   "FAIL %s: spilled result differs from in-memory baseline "
                   "(%zu vs %zu rows)\n",
                   q.name, spilled.rows, inmem.rows);
      ok = false;
    }

    table.AddRow({q.name, std::to_string(inmem.rows), Fmt(inmem.secs),
                  Fmt(spilled.secs), Fmt(spilled.secs / inmem.secs, "%.2fx"),
                  std::to_string(spilled.spilled_bytes),
                  std::to_string(spilled.spill_partitions)});
    if (!first) json += ",\n";
    first = false;
    json += "    {\"name\": \"" + std::string(q.name) +
            "\", \"rows\": " + std::to_string(inmem.rows) +
            ", \"inmem_secs\": " + Fmt(inmem.secs, "%.6f") +
            ", \"spill_secs\": " + Fmt(spilled.secs, "%.6f") +
            ", \"spilled_bytes\": " + std::to_string(spilled.spilled_bytes) +
            ", \"spill_partitions\": " +
            std::to_string(spilled.spill_partitions) +
            ", \"identical\": " +
            (spilled.sorted_rows == inmem.sorted_rows ? "true" : "false") +
            "}";
  }
  json += "\n  ],\n  \"ok\": " + std::string(ok ? "true" : "false") + "\n}\n";
  table.Print();

  if (!json_path.empty()) {
    std::FILE* f = std::fopen(json_path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
      return 2;
    }
    std::fwrite(json.data(), 1, json.size(), f);
    std::fclose(f);
    std::printf("spill summary written to %s\n", json_path.c_str());
  }
  std::printf("spill correctness: %s\n", ok ? "PASS" : "FAIL");
  return ok ? 0 : 1;
}
