// Reproduces paper Table 3 (Twitter query times, including Tiles-* with
// high-cardinality array extraction) and Table 4 (geo-mean on the standard
// vs the "Changing" schema-evolution data set).

#include <benchmark/benchmark.h>

#include "bench_common.h"
#include "workload/twitter.h"

namespace {

using namespace jsontiles;         // NOLINT
using namespace jsontiles::bench;  // NOLINT

struct Loaded {
  std::map<storage::StorageMode, std::unique_ptr<storage::Relation>> modes;
  std::unique_ptr<storage::Relation> tiles_star;
};

Loaded LoadTwitter(const std::vector<std::string>& docs) {
  Loaded out;
  tiles::TileConfig config;
  storage::LoadOptions load_options;
  load_options.num_threads = BenchThreads();
  out.modes = LoadAllModes(docs, "twitter", config, load_options);
  storage::LoadOptions star_options = load_options;
  star_options.extract_arrays = true;
  star_options.array_min_avg_elements = 1.0;
  star_options.array_min_presence = 0.3;
  storage::Loader star_loader(storage::StorageMode::kTiles, config, star_options);
  out.tiles_star = star_loader.Load(docs, "twitter").MoveValueOrDie();
  return out;
}

std::map<std::string, std::vector<double>> RunAll(const Loaded& loaded,
                                                  TablePrinter* table) {
  std::map<std::string, std::vector<double>> per_mode;
  exec::ExecOptions exec_options;
  exec_options.num_threads = BenchThreads();
  for (int q = 1; q <= 5; q++) {
    std::vector<std::string> row = {workload::TwitterQueryName(q)};
    for (auto mode : AllModes()) {
      double secs = TimeBest(
          [&] {
            exec::QueryContext ctx(exec_options);
            benchmark::DoNotOptimize(
                workload::RunTwitterQuery(q, *loaded.modes.at(mode), ctx));
          },
          mode == storage::StorageMode::kJsonText ? 1 : 3);
      per_mode[storage::StorageModeName(mode)].push_back(secs);
      row.push_back(Fmt(secs));
    }
    double star_secs = TimeBest(
        [&] {
          exec::QueryContext ctx(exec_options);
          benchmark::DoNotOptimize(workload::RunTwitterQuery(
              q, *loaded.tiles_star, ctx, /*use_array_extraction=*/true));
        },
        3);
    per_mode["Tiles-*"].push_back(star_secs);
    row.push_back(Fmt(star_secs));
    if (table != nullptr) table->AddRow(std::move(row));
  }
  return per_mode;
}

}  // namespace

int main(int argc, char** argv) {
  BenchObs obs(&argc, argv);
  benchmark::Initialize(&argc, argv);

  workload::TwitterOptions options;
  options.num_tweets = TwitterTweets();
  auto docs = workload::GenerateTwitter(options);
  std::printf("Twitter stream records: %zu\n", docs.size());
  Loaded loaded = LoadTwitter(docs);

  TablePrinter table("Table 3: Twitter query execution times [s]");
  table.SetHeader({"Query", "JSON", "JSONB", "Sinew", "Tiles", "Tiles-*"});
  auto standard = RunAll(loaded, &table);
  table.Print();

  // Table 4: geo-means on the standard and the changing-schema stream.
  workload::TwitterOptions changing = options;
  changing.changing_schema = true;
  auto changing_docs = workload::GenerateTwitter(changing);
  Loaded changing_loaded = LoadTwitter(changing_docs);
  auto changed = RunAll(changing_loaded, nullptr);

  TablePrinter table4("Table 4: Twitter geo-mean [s], standard vs changing schema");
  table4.SetHeader({"Dataset", "JSON", "JSONB", "Sinew", "Tiles", "Tiles-*"});
  auto row_for = [&](const char* label,
                     std::map<std::string, std::vector<double>>& data) {
    std::vector<std::string> row = {label};
    for (const char* mode : {"JSON", "JSONB", "Sinew", "Tiles", "Tiles-*"}) {
      row.push_back(Fmt(GeoMean(data[mode])));
    }
    return row;
  };
  table4.AddRow(row_for("Twitter", standard));
  table4.AddRow(row_for("Changing", changed));
  table4.Print();
  return 0;
}
