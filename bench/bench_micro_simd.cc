// Micro benchmark of the SIMD kernel tier against the scalar-fallback tier
// of the vectorized engine: the compare / arithmetic / selection kernels at
// the RunInstr level, batched key hashing for the join build, and the
// batched binary-JSON path accessor against its per-document predecessor.
// Both tiers run through the same entry points (exec/simd.h dispatches), so
// the deltas measure exactly what JSONTILES_SIMD buys. Flags (consumed
// before google-benchmark):
//   --simd-json <path>  write per-kernel ns/lane and speedups as JSON

#include <benchmark/benchmark.h>

#include <random>

#include "bench_common.h"
#include "exec/scan.h"
#include "exec/simd.h"
#include "exec/vector_batch.h"
#include "json/jsonb.h"
#include "tiles/keypath.h"
#include "util/hash.h"

namespace {

using namespace jsontiles;         // NOLINT
using namespace jsontiles::bench;  // NOLINT

constexpr size_t kLanes = exec::kVectorSize;
constexpr size_t kBatches = 4000;  // lanes measured per run = kLanes * kBatches

struct KernelRow {
  std::string name;
  double scalar_ns = 0;  // ns per lane, SIMD disabled
  double simd_ns = 0;    // ns per lane, SIMD enabled
  double speedup() const { return simd_ns > 0 ? scalar_ns / simd_ns : 0; }
};

/// Best-of-5 ns/lane of `fn` run kBatches times per measurement.
template <typename Fn>
double NsPerLane(Fn&& fn) {
  const double secs = TimeBest(
      [&] {
        for (size_t i = 0; i < kBatches; i++) fn();
      },
      5);
  return secs / static_cast<double>(kBatches * kLanes) * 1e9;
}

template <typename Fn>
KernelRow Measure(std::string name, Fn&& fn) {
  KernelRow row;
  row.name = std::move(name);
  exec::simd::SetEnabled(true);
  row.simd_ns = NsPerLane(fn);
  exec::simd::SetEnabled(false);
  row.scalar_ns = NsPerLane(fn);
  exec::simd::SetEnabled(true);
  return row;
}

}  // namespace

int main(int argc, char** argv) {
  BenchObs obs(&argc, argv);
  std::string simd_json_path;
  {
    int out = 1;
    for (int i = 1; i < argc; i++) {
      std::string_view arg = argv[i];
      if (arg == "--simd-json" || arg.rfind("--simd-json=", 0) == 0) {
        size_t eq = arg.find('=');
        if (eq != std::string_view::npos) {
          simd_json_path = std::string(arg.substr(eq + 1));
        } else if (i + 1 < argc) {
          simd_json_path = argv[++i];
        } else {
          std::fprintf(stderr, "missing path after --simd-json\n");
          return 2;
        }
        continue;
      }
      argv[out++] = argv[i];
    }
    argc = out;
    argv[argc] = nullptr;
  }
  benchmark::Initialize(&argc, argv);

  std::printf("simd: compiled_in=%s active_isa=%s\n",
              exec::simd::CompiledIn() ? "yes" : "no", exec::simd::ActiveIsa());

  // Shared inputs: full batches with ~10% nulls, like a permissive filter.
  std::mt19937_64 rng(20260805);
  std::vector<int64_t> a(kLanes), b(kLanes);
  std::vector<double> fa(kLanes), fb(kLanes);
  std::vector<uint8_t> an(kLanes), bn(kLanes);
  for (size_t i = 0; i < kLanes; i++) {
    a[i] = static_cast<int64_t>(rng() % 100000);
    b[i] = static_cast<int64_t>(rng() % 100000);
    fa[i] = static_cast<double>(a[i]) * 0.25;
    fb[i] = static_cast<double>(b[i]) * 0.5;
    an[i] = rng() % 10 == 0;
    bn[i] = rng() % 10 == 0;
  }
  std::vector<int64_t> out_i(kLanes);
  std::vector<double> out_d(kLanes);
  std::vector<uint8_t> out_n(kLanes);
  std::vector<uint64_t> hashes(kLanes), acc(kLanes);

  std::vector<KernelRow> rows;

  rows.push_back(Measure("compare i64<i64", [&] {
    exec::simd::CompareI64ViaDouble(exec::BinOp::kLt, a.data(), b.data(),
                                    an.data(), bn.data(), out_i.data(),
                                    out_n.data(), kLanes);
    benchmark::DoNotOptimize(out_i.data());
  }));
  rows.push_back(Measure("compare f64<=f64", [&] {
    exec::simd::CompareF64(exec::BinOp::kLe, fa.data(), fb.data(), an.data(),
                           bn.data(), out_i.data(), out_n.data(), kLanes);
    benchmark::DoNotOptimize(out_i.data());
  }));
  rows.push_back(Measure("arith i64*i64", [&] {
    exec::simd::ArithI64(exec::BinOp::kMul, a.data(), b.data(), an.data(),
                         bn.data(), out_i.data(), out_n.data(), kLanes);
    benchmark::DoNotOptimize(out_i.data());
  }));
  rows.push_back(Measure("arith f64/f64", [&] {
    exec::simd::ArithF64(exec::BinOp::kDiv, fa.data(), fb.data(), an.data(),
                         bn.data(), out_d.data(), out_n.data(), kLanes);
    benchmark::DoNotOptimize(out_d.data());
  }));

  // Join-build key hashing: the batched kernels against the per-Value path
  // the scalar build loop runs (materialize a Value, virtual-ish Hash, fold).
  constexpr uint64_t kSeed = 0x2545F4914F6CDD1DULL;
  exec::ColumnVector key_vec;
  key_vec.Reset(exec::ValueType::kInt);
  for (size_t i = 0; i < kLanes; i++) {
    key_vec.SetValue(i, an[i] ? exec::Value::Null() : exec::Value::Int(a[i]));
  }
  {
    KernelRow row;
    row.name = "hash join keys";
    exec::simd::SetEnabled(true);
    row.simd_ns = NsPerLane([&] {
      exec::simd::HashI64Batch(key_vec.i64(), key_vec.nulls(),
                               exec::Value::Null().Hash(), hashes.data(),
                               kLanes);
      for (size_t i = 0; i < kLanes; i++) acc[i] = kSeed;
      exec::simd::HashCombineBatch(acc.data(), hashes.data(), kLanes);
      benchmark::DoNotOptimize(acc.data());
    });
    // PR-2 build loop shape: per row, materialize the key Value and fold its
    // hash into the row hash.
    row.scalar_ns = NsPerLane([&] {
      for (size_t i = 0; i < kLanes; i++) {
        exec::Value v = key_vec.GetValue(i);
        acc[i] = HashCombine(kSeed, v.Hash());
      }
      benchmark::DoNotOptimize(acc.data());
    });
    rows.push_back(row);
  }

  // Selection intersection: dense selection consuming a boolean conjunct
  // result — the first-conjunct step of every compiled filter.
  exec::ColumnVector pred;
  pred.Reset(exec::ValueType::kBool);
  for (size_t i = 0; i < kLanes; i++) {
    pred.nulls()[i] = an[i];
    pred.i64()[i] = static_cast<int64_t>(rng() % 2);
  }
  exec::SelectionVector sel;
  rows.push_back(Measure("intersect selection", [&] {
    sel.SetAll(kLanes);
    exec::IntersectSelection(pred, &sel);
    benchmark::DoNotOptimize(&sel);
  }));

  // Batched binary-JSON path access against the per-document accessor it
  // replaces in the scan's fallback route (both on the same nested docs).
  std::vector<std::vector<uint8_t>> doc_storage;
  std::vector<const uint8_t*> docs;
  for (size_t i = 0; i < kLanes; i++) {
    std::string text = "{\"user\": {\"id\": " + std::to_string(i * 7) +
                       ", \"name\": \"u" + std::to_string(i) +
                       "\"}, \"score\": " + std::to_string(i % 100) + "}";
    doc_storage.push_back(json::JsonbFromText(text).MoveValueOrDie());
    docs.push_back(doc_storage.back().data());
  }
  std::string id_path;
  tiles::AppendKeySegment(&id_path, "user");
  tiles::AppendKeySegment(&id_path, "id");
  const std::vector<json::PathStep> steps = tiles::DecodePathSteps(id_path);
  std::vector<uint16_t> lanes(kLanes);
  for (size_t i = 0; i < kLanes; i++) lanes[i] = static_cast<uint16_t>(i);
  exec::ColumnVector jsonb_vec;
  jsonb_vec.Reset(exec::ValueType::kInt);
  {
    // Smaller doc count per batch, so scale iteration differently: reuse the
    // same ns/lane machinery — each call covers kLanes documents.
    KernelRow row;
    row.name = "jsonb path extract";
    Arena arena;
    row.simd_ns = NsPerLane([&] {
      exec::ExtractJsonbPathBatch(docs.data(), lanes.data(), kLanes,
                                  steps.data(), steps.size(),
                                  exec::ValueType::kInt, &arena, &jsonb_vec);
      benchmark::DoNotOptimize(jsonb_vec.i64());
    });
    row.scalar_ns = NsPerLane([&] {
      for (size_t i = 0; i < kLanes; i++) {
        jsonb_vec.SetValue(
            i, exec::EvalAccessOnJsonb(json::JsonbValue(docs[i]), id_path,
                                       exec::ValueType::kInt, &arena, false));
      }
      benchmark::DoNotOptimize(jsonb_vec.i64());
    });
    rows.push_back(row);
  }

  TablePrinter table("SIMD kernel tier vs scalar fallback (ns per lane)");
  table.SetHeader({"Kernel", "scalar", "simd", "speedup"});
  for (const auto& row : rows) {
    table.AddRow({row.name, Fmt(row.scalar_ns, "%.3f"), Fmt(row.simd_ns, "%.3f"),
                  Fmt(row.speedup(), "%.2f") + "x"});
  }
  table.Print();

  if (!simd_json_path.empty()) {
    std::FILE* f = std::fopen(simd_json_path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", simd_json_path.c_str());
      return 2;
    }
    std::fprintf(f,
                 "{\n"
                 "  \"bench\": \"simd_kernels\",\n"
                 "  \"compiled_in\": %s,\n"
                 "  \"active_isa\": \"%s\",\n"
                 "  \"lanes_per_batch\": %zu,\n"
                 "  \"kernels\": [\n",
                 exec::simd::CompiledIn() ? "true" : "false",
                 exec::simd::ActiveIsa(), kLanes);
    for (size_t i = 0; i < rows.size(); i++) {
      std::fprintf(f,
                   "    {\"name\": \"%s\", \"scalar_ns_per_lane\": %.4f, "
                   "\"simd_ns_per_lane\": %.4f, \"speedup\": %.4f}%s\n",
                   rows[i].name.c_str(), rows[i].scalar_ns, rows[i].simd_ns,
                   rows[i].speedup(), i + 1 < rows.size() ? "," : "");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
    std::printf("simd benchmark written to %s\n", simd_json_path.c_str());
  }
  return 0;
}
