// Reproduces paper Figure 9: geometric-mean TPC-H query time on the
// *shuffled* combined relation (no local tuple patterns at insertion time),
// demonstrating the robustness of the partition-based reordering (§6.4).

#include <benchmark/benchmark.h>

#include "bench_common.h"
#include "workload/tpch.h"
#include "workload/tpch_queries.h"

namespace {

using namespace jsontiles;         // NOLINT
using namespace jsontiles::bench;  // NOLINT

}  // namespace

int main(int argc, char** argv) {
  BenchObs obs(&argc, argv);
  benchmark::Initialize(&argc, argv);

  workload::TpchOptions options;
  options.scale_factor = TpchScaleFactor();
  options.shuffle = true;
  workload::TpchData data = workload::GenerateTpch(options);
  std::printf("Shuffled TPC-H documents: %zu\n", data.combined.size());

  tiles::TileConfig config;  // tile 2^10, partition 8 (paper's robust choice)
  storage::LoadOptions load_options;
  load_options.num_threads = BenchThreads();
  auto relations = LoadAllModes(data.combined, "tpch_shuffled", config, load_options);

  exec::ExecOptions exec_options;
  exec_options.num_threads = BenchThreads();

  TablePrinter fig("Figure 9: shuffled TPC-H geo-mean query time [s]");
  fig.SetHeader({"Mode", "geo-mean", "vs Tiles"});
  std::map<storage::StorageMode, double> geo;
  for (auto mode : AllModes()) {
    std::vector<double> times;
    for (int q = 1; q <= 22; q++) {
      times.push_back(TimeBest(
          [&] {
            exec::QueryContext ctx(exec_options);
            benchmark::DoNotOptimize(
                workload::RunTpchQuery(q, *relations.at(mode), ctx));
          },
          mode == storage::StorageMode::kJsonText ? 1 : 2));
    }
    geo[mode] = GeoMean(times);
  }
  for (auto mode : AllModes()) {
    fig.AddRow({storage::StorageModeName(mode), Fmt(geo[mode]),
                Fmt(geo[mode] / geo[storage::StorageMode::kTiles], "%.1fx")});
  }
  fig.Print();
  return 0;
}
