// Reproduces paper Figures 18-20: binary JSON format comparison (our JSONB
// vs BSON vs CBOR) on synthetic stand-ins for the SIMD-JSON corpus.
//   Fig 18 — (de)serialization slowdown relative to JSONB
//   Fig 19 — storage size relative to the JSON text
//   Fig 20 — random accesses/sec at the documents' natural nesting levels
//
// Access methods mirror the real libraries: JSONB uses O(log n) binary
// search per object level; BSON scans elements linearly per level (skipping
// values via their size prefixes); CBOR has no random access — the document
// is decoded and the DOM is walked (as with JsonCons extraction).

#include <benchmark/benchmark.h>

#include <functional>

#include "bench_common.h"
#include "json/bson.h"
#include "json/cbor.h"
#include "json/dom.h"
#include "json/jsonb.h"
#include "util/random.h"
#include "workload/simdjson_corpus.h"

namespace {

using namespace jsontiles;         // NOLINT
using namespace jsontiles::bench;  // NOLINT
using json::JsonValue;

struct PathStep {
  bool is_index;
  std::string key;
  size_t index;
};
using Path = std::vector<PathStep>;

// Sample random leaf paths from the DOM.
void SamplePaths(const JsonValue& v, Random& rng, Path* current,
                 std::vector<Path>* out, size_t limit) {
  if (out->size() >= limit) return;
  switch (v.type()) {
    case json::JsonType::kObject: {
      if (v.members().empty()) return;
      const auto& [key, child] = v.members()[rng.Uniform(v.members().size())];
      current->push_back({false, key, 0});
      SamplePaths(child, rng, current, out, limit);
      current->pop_back();
      return;
    }
    case json::JsonType::kArray: {
      if (v.elements().empty()) return;
      size_t i = rng.Uniform(v.elements().size());
      current->push_back({true, "", i});
      SamplePaths(v.elements()[i], rng, current, out, limit);
      current->pop_back();
      return;
    }
    default:
      out->push_back(*current);
  }
}

// --- access routines per format --------------------------------------------

bool AccessJsonb(const uint8_t* data, const Path& path) {
  json::JsonbValue v(data);
  for (const auto& step : path) {
    if (step.is_index) {
      if (v.type() != json::JsonType::kArray || step.index >= v.Count()) {
        return false;
      }
      v = v.ArrayElement(step.index);
    } else {
      auto next = v.FindKey(step.key);
      if (!next.has_value()) return false;
      v = *next;
    }
  }
  return true;
}

bool AccessBson(const uint8_t* data, size_t size, const Path& path) {
  const uint8_t* doc = data;
  size_t doc_size = size;
  for (const auto& step : path) {
    uint8_t type;
    const uint8_t* payload;
    size_t payload_size;
    std::string key = step.is_index ? std::to_string(step.index) : step.key;
    if (!json::bson::FindField(doc, doc_size, key, &type, &payload,
                               &payload_size)) {
      return false;
    }
    if (type == 0x03 || type == 0x04) {
      doc = payload;
      doc_size = payload_size;
    } else {
      return true;  // scalar reached
    }
  }
  return true;
}

bool AccessCbor(const uint8_t* data, size_t size, const Path& path) {
  // No random access in CBOR: decode, then walk the DOM.
  auto dom = json::cbor::Decode(data, size);
  if (!dom.ok()) return false;
  const JsonValue* v = &dom.ValueOrDie();
  for (const auto& step : path) {
    if (step.is_index) {
      if (step.index >= v->elements().size()) return false;
      v = &v->elements()[step.index];
    } else {
      v = v->Find(step.key);
      if (v == nullptr) return false;
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  BenchObs obs(&argc, argv);
  benchmark::Initialize(&argc, argv);

  auto corpus = workload::GenerateSimdJsonCorpus();
  TablePrinter fig18("Figure 18: (de)serialization slowdown vs JSONB (x)");
  fig18.SetHeader({"File", "ser BSON", "ser CBOR", "deser BSON", "deser CBOR"});
  TablePrinter fig19("Figure 19: storage size relative to JSON text");
  fig19.SetHeader({"File", "BSON", "CBOR", "JSONB"});
  TablePrinter fig20("Figure 20: random accesses/sec [log scale in paper]");
  fig20.SetHeader({"File", "BSON", "CBOR", "JSONB"});

  for (const auto& file : corpus) {
    JsonValue dom = json::ParseJson(file.json).ValueOrDie();
    // Serialize: all formats start from the JSON text (JSONB transforms in
    // two passes; BSON/CBOR parse a DOM and encode it, as the libraries do).
    json::JsonbBuilder builder;
    std::vector<uint8_t> jsonb, bson, cbor;
    double ser_jsonb = TimeBest([&] { (void)builder.Transform(file.json, &jsonb); });
    bool has_bson = json::bson::Encode(dom, &bson).ok();
    double ser_bson = has_bson ? TimeBest([&] {
      JsonValue parsed = json::ParseJson(file.json).ValueOrDie();
      (void)json::bson::Encode(parsed, &bson);
    })
                               : 0;
    double ser_cbor = TimeBest([&] {
      JsonValue parsed = json::ParseJson(file.json).ValueOrDie();
      (void)json::cbor::Encode(parsed, &cbor);
    });

    // Deserialize (back to JSON text).
    std::string text;
    double de_jsonb = TimeBest([&] {
      text.clear();
      json::JsonbValue(jsonb.data()).ToJsonText(&text);
    });
    double de_bson = has_bson ? TimeBest([&] {
      auto v = json::bson::Decode(bson.data(), bson.size());
      text = json::WriteJson(v.ValueOrDie());
    })
                              : 0;
    double de_cbor = TimeBest([&] {
      auto v = json::cbor::Decode(cbor.data(), cbor.size());
      text = json::WriteJson(v.ValueOrDie());
    });

    auto ratio = [&](double v, double base) {
      return v == 0 ? std::string("n/a") : Fmt(v / base, "%.2f");
    };
    fig18.AddRow({file.name, ratio(ser_bson, ser_jsonb), ratio(ser_cbor, ser_jsonb),
                  ratio(de_bson, de_jsonb), ratio(de_cbor, de_jsonb)});
    fig19.AddRow({file.name,
                  has_bson ? Fmt(static_cast<double>(bson.size()) /
                                     static_cast<double>(file.json.size()),
                                 "%.2f")
                           : "n/a",
                  Fmt(static_cast<double>(cbor.size()) /
                          static_cast<double>(file.json.size()),
                      "%.2f"),
                  Fmt(static_cast<double>(jsonb.size()) /
                          static_cast<double>(file.json.size()),
                      "%.2f")});

    // Random accesses.
    Random rng(42);
    std::vector<Path> paths;
    Path scratch;
    for (int i = 0; i < 64 && paths.size() < 64; i++) {
      SamplePaths(dom, rng, &scratch, &paths, 64);
    }
    if (paths.empty()) continue;
    auto accesses_per_sec = [&](const std::function<void()>& one_round) {
      double secs = TimeBest(one_round);
      return static_cast<double>(paths.size()) / secs;
    };
    double aps_jsonb = accesses_per_sec([&] {
      for (const auto& p : paths) benchmark::DoNotOptimize(AccessJsonb(jsonb.data(), p));
    });
    double aps_bson =
        has_bson ? accesses_per_sec([&] {
          for (const auto& p : paths) {
            benchmark::DoNotOptimize(AccessBson(bson.data(), bson.size(), p));
          }
        })
                 : 0;
    double aps_cbor = accesses_per_sec([&] {
      for (const auto& p : paths) {
        benchmark::DoNotOptimize(AccessCbor(cbor.data(), cbor.size(), p));
      }
    });
    fig20.AddRow({file.name, has_bson ? Fmt(aps_bson, "%.0f") : "n/a",
                  Fmt(aps_cbor, "%.0f"), Fmt(aps_jsonb, "%.0f")});
  }
  fig18.Print();
  fig19.Print();
  fig20.Print();
  return 0;
}
