// Reproduces paper Table 2: execution times of the five Yelp queries for the
// internal competitor set, plus the Yelp tile-size sensitivity point used by
// Figure 12 at the default configuration.

#include <benchmark/benchmark.h>

#include "bench_common.h"
#include "workload/yelp.h"

namespace {

using namespace jsontiles;         // NOLINT
using namespace jsontiles::bench;  // NOLINT

}  // namespace

int main(int argc, char** argv) {
  BenchObs obs(&argc, argv);
  benchmark::Initialize(&argc, argv);

  workload::YelpOptions options;
  options.num_business = YelpBusinesses();
  auto docs = workload::GenerateYelp(options);
  std::printf("Yelp combined documents: %zu\n", docs.size());

  tiles::TileConfig config;
  storage::LoadOptions load_options;
  load_options.num_threads = BenchThreads();
  auto relations = LoadAllModes(docs, "yelp", config, load_options);

  TablePrinter table("Table 2: Yelp query execution times [s]");
  table.SetHeader({"Query", "JSON", "JSONB", "Sinew", "Tiles"});
  std::map<storage::StorageMode, std::vector<double>> per_mode;
  for (int q = 1; q <= 5; q++) {
    std::vector<std::string> row = {workload::YelpQueryName(q)};
    for (auto mode : AllModes()) {
      exec::ExecOptions exec_options;
      exec_options.num_threads = BenchThreads();
      double secs = TimeBest(
          [&] {
            exec::QueryContext ctx(exec_options);
            benchmark::DoNotOptimize(
                workload::RunYelpQuery(q, *relations.at(mode), ctx));
          },
          mode == storage::StorageMode::kJsonText ? 1 : 3);
      per_mode[mode].push_back(secs);
      row.push_back(Fmt(secs));
    }
    table.AddRow(std::move(row));
  }
  std::vector<std::string> geo = {"geo-mean"};
  for (auto mode : AllModes()) geo.push_back(Fmt(GeoMean(per_mode[mode])));
  table.AddRow(std::move(geo));
  table.Print();
  return 0;
}
