// Reproduces paper Figure 14: the impact of the JSON-tiles optimizations —
// tile skipping (§4.8) and date/time extraction (§4.9) — as geometric means
// over TPC-H, shuffled TPC-H and Yelp at four optimization levels:
//   no Opt  : skipping off, date extraction off
//   no Date : skipping on,  date extraction off
//   no Skip : skipping off, date extraction on
//   Tiles   : everything on

#include <benchmark/benchmark.h>

#include "bench_common.h"
#include "workload/tpch.h"
#include "workload/tpch_queries.h"
#include "workload/yelp.h"

namespace {

using namespace jsontiles;         // NOLINT
using namespace jsontiles::bench;  // NOLINT

struct Level {
  const char* name;
  bool date_extraction;
  bool tile_skipping;
};
constexpr Level kLevels[] = {{"no Opt", false, false},
                             {"no Date", false, true},
                             {"no Skip", true, false},
                             {"Tiles", true, true}};

}  // namespace

int main(int argc, char** argv) {
  BenchObs obs(&argc, argv);
  benchmark::Initialize(&argc, argv);

  workload::TpchOptions tpch_options;
  tpch_options.scale_factor = TpchScaleFactor();
  auto tpch = workload::GenerateTpch(tpch_options);
  tpch_options.shuffle = true;
  auto shuffled = workload::GenerateTpch(tpch_options);
  workload::YelpOptions yelp_options;
  yelp_options.num_business = YelpBusinesses();
  auto yelp = workload::GenerateYelp(yelp_options);

  TablePrinter fig("Figure 14: geo-mean query time [s] per optimization level");
  fig.SetHeader({"Workload", "no Opt", "no Date", "no Skip", "Tiles"});

  auto run_workload = [&](const char* name, const std::vector<std::string>& docs,
                          bool is_yelp) {
    std::vector<std::string> row = {name};
    for (const Level& level : kLevels) {
      tiles::TileConfig config;
      config.enable_date_extraction = level.date_extraction;
      storage::LoadOptions load_options;
      load_options.num_threads = BenchThreads();
      storage::Loader loader(storage::StorageMode::kTiles, config, load_options);
      auto rel = loader.Load(docs, name).MoveValueOrDie();
      exec::ExecOptions exec_options;
      exec_options.num_threads = BenchThreads();
      exec_options.enable_tile_skipping = level.tile_skipping;
      std::vector<double> times;
      if (is_yelp) {
        for (int q = 1; q <= 5; q++) {
          times.push_back(TimeBest([&] {
            exec::QueryContext ctx(exec_options);
            benchmark::DoNotOptimize(workload::RunYelpQuery(q, *rel, ctx));
          }, 2));
        }
      } else {
        for (int q = 1; q <= 22; q++) {
          times.push_back(TimeBest([&] {
            exec::QueryContext ctx(exec_options);
            benchmark::DoNotOptimize(workload::RunTpchQuery(q, *rel, ctx));
          }, 1));
        }
      }
      row.push_back(Fmt(GeoMean(times)));
    }
    fig.AddRow(std::move(row));
  };

  run_workload("TPC-H", tpch.combined, false);
  run_workload("Shuffled", shuffled.combined, false);
  run_workload("Yelp", yelp, true);
  fig.Print();
  return 0;
}
