// Shared helpers for the paper-reproduction benchmarks.
//
// Every binary regenerates one table/figure of the paper: it loads the
// workload under the relevant storage modes, measures with google-benchmark,
// and prints a paper-style summary table at the end. Environment knobs:
//   JSONTILES_SF       TPC-H scale factor (default 0.01)
//   JSONTILES_THREADS  worker threads for loading/scans (default 1)
//   JSONTILES_TWEETS   Twitter stream size (default 20000)
//   JSONTILES_YELP     Yelp businesses (default 300)

#ifndef JSONTILES_BENCH_BENCH_COMMON_H_
#define JSONTILES_BENCH_BENCH_COMMON_H_

#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "storage/loader.h"

namespace jsontiles::bench {

inline double EnvDouble(const char* name, double fallback) {
  const char* v = std::getenv(name);
  return v == nullptr ? fallback : std::atof(v);
}
inline size_t EnvSize(const char* name, size_t fallback) {
  const char* v = std::getenv(name);
  return v == nullptr ? fallback : static_cast<size_t>(std::atoll(v));
}

inline double TpchScaleFactor() { return EnvDouble("JSONTILES_SF", 0.01); }
inline size_t BenchThreads() { return EnvSize("JSONTILES_THREADS", 1); }
inline size_t TwitterTweets() { return EnvSize("JSONTILES_TWEETS", 20000); }
inline size_t YelpBusinesses() { return EnvSize("JSONTILES_YELP", 300); }

inline const std::vector<storage::StorageMode>& AllModes() {
  static const std::vector<storage::StorageMode> kModes = {
      storage::StorageMode::kJsonText, storage::StorageMode::kJsonb,
      storage::StorageMode::kSinew, storage::StorageMode::kTiles};
  return kModes;
}

/// Load one document stream under every storage mode.
inline std::map<storage::StorageMode, std::unique_ptr<storage::Relation>>
LoadAllModes(const std::vector<std::string>& docs, const std::string& name,
             tiles::TileConfig config = {},
             storage::LoadOptions options = {}) {
  std::map<storage::StorageMode, std::unique_ptr<storage::Relation>> out;
  if (options.num_threads == 0) options.num_threads = BenchThreads();
  for (auto mode : AllModes()) {
    storage::Loader loader(mode, config, options);
    out[mode] = loader.Load(docs, name).MoveValueOrDie();
  }
  return out;
}

/// Wall-clock seconds of one invocation.
template <typename Fn>
double TimeOnce(Fn&& fn) {
  auto begin = std::chrono::steady_clock::now();
  fn();
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - begin)
      .count();
}

/// Best-of-n wall time (the paper reports per-query execution times).
template <typename Fn>
double TimeBest(Fn&& fn, int repetitions = 3) {
  double best = 1e300;
  for (int i = 0; i < repetitions; i++) {
    double t = TimeOnce(fn);
    if (t < best) best = t;
  }
  return best;
}

inline double GeoMean(const std::vector<double>& values) {
  if (values.empty()) return 0;
  double log_sum = 0;
  for (double v : values) log_sum += std::log(v);
  return std::exp(log_sum / static_cast<double>(values.size()));
}

/// Simple fixed-width table printer for the paper-style summaries.
class TablePrinter {
 public:
  explicit TablePrinter(std::string title) : title_(std::move(title)) {}

  void SetHeader(std::vector<std::string> header) { header_ = std::move(header); }
  void AddRow(std::vector<std::string> row) { rows_.push_back(std::move(row)); }

  void Print() const {
    std::printf("\n=== %s ===\n", title_.c_str());
    std::vector<size_t> widths(header_.size(), 0);
    auto measure = [&](const std::vector<std::string>& row) {
      for (size_t i = 0; i < row.size() && i < widths.size(); i++) {
        widths[i] = std::max(widths[i], row[i].size());
      }
    };
    measure(header_);
    for (const auto& row : rows_) measure(row);
    auto print_row = [&](const std::vector<std::string>& row) {
      for (size_t i = 0; i < row.size(); i++) {
        std::printf("%-*s  ", static_cast<int>(widths[i]), row[i].c_str());
      }
      std::printf("\n");
    };
    print_row(header_);
    for (const auto& row : rows_) print_row(row);
    std::fflush(stdout);
  }

 private:
  std::string title_;
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

inline std::string Fmt(double v, const char* fmt = "%.4f") {
  char buf[64];
  std::snprintf(buf, sizeof(buf), fmt, v);
  return buf;
}

}  // namespace jsontiles::bench

#endif  // JSONTILES_BENCH_BENCH_COMMON_H_
