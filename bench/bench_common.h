// Shared helpers for the paper-reproduction benchmarks.
//
// Every binary regenerates one table/figure of the paper: it loads the
// workload under the relevant storage modes, measures with google-benchmark,
// and prints a paper-style summary table at the end. Environment knobs:
//   JSONTILES_SF       TPC-H scale factor (default 0.01)
//   JSONTILES_THREADS  worker threads for loading/scans (default 1)
//   JSONTILES_TWEETS   Twitter stream size (default 20000)
//   JSONTILES_YELP     Yelp businesses (default 300)
//   JSONTILES_ONDEMAND use the on-demand parse path for loading (default 0)

#ifndef JSONTILES_BENCH_BENCH_COMMON_H_
#define JSONTILES_BENCH_BENCH_COMMON_H_

#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "exec/simd.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "storage/loader.h"

namespace jsontiles::bench {

inline double EnvDouble(const char* name, double fallback) {
  const char* v = std::getenv(name);
  return v == nullptr ? fallback : std::atof(v);
}
inline size_t EnvSize(const char* name, size_t fallback) {
  const char* v = std::getenv(name);
  return v == nullptr ? fallback : static_cast<size_t>(std::atoll(v));
}

inline double TpchScaleFactor() { return EnvDouble("JSONTILES_SF", 0.01); }
inline size_t BenchThreads() { return EnvSize("JSONTILES_THREADS", 1); }
inline size_t TwitterTweets() { return EnvSize("JSONTILES_TWEETS", 20000); }
inline size_t YelpBusinesses() { return EnvSize("JSONTILES_YELP", 300); }
/// JSONTILES_ONDEMAND=1 switches every loader-driven benchmark to the
/// on-demand (structural index + direct emission) parse path.
inline bool OndemandEnv() { return EnvSize("JSONTILES_ONDEMAND", 0) != 0; }

inline const std::vector<storage::StorageMode>& AllModes() {
  static const std::vector<storage::StorageMode> kModes = {
      storage::StorageMode::kJsonText, storage::StorageMode::kJsonb,
      storage::StorageMode::kSinew, storage::StorageMode::kTiles};
  return kModes;
}

/// Load one document stream under every storage mode.
inline std::map<storage::StorageMode, std::unique_ptr<storage::Relation>>
LoadAllModes(const std::vector<std::string>& docs, const std::string& name,
             tiles::TileConfig config = {},
             storage::LoadOptions options = {}) {
  std::map<storage::StorageMode, std::unique_ptr<storage::Relation>> out;
  if (options.num_threads == 0) options.num_threads = BenchThreads();
  if (!options.ondemand) options.ondemand = OndemandEnv();
  for (auto mode : AllModes()) {
    storage::Loader loader(mode, config, options);
    out[mode] = loader.Load(docs, name).MoveValueOrDie();
  }
  return out;
}

/// Wall-clock seconds of one invocation.
template <typename Fn>
double TimeOnce(Fn&& fn) {
  auto begin = std::chrono::steady_clock::now();
  fn();
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - begin)
      .count();
}

/// Best-of-n wall time (the paper reports per-query execution times).
template <typename Fn>
double TimeBest(Fn&& fn, int repetitions = 3) {
  double best = 1e300;
  for (int i = 0; i < repetitions; i++) {
    double t = TimeOnce(fn);
    if (t < best) best = t;
  }
  return best;
}

inline double GeoMean(const std::vector<double>& values) {
  if (values.empty()) return 0;
  double log_sum = 0;
  for (double v : values) log_sum += std::log(v);
  return std::exp(log_sum / static_cast<double>(values.size()));
}

/// Simple fixed-width table printer for the paper-style summaries.
class TablePrinter {
 public:
  explicit TablePrinter(std::string title) : title_(std::move(title)) {}

  void SetHeader(std::vector<std::string> header) { header_ = std::move(header); }
  void AddRow(std::vector<std::string> row) { rows_.push_back(std::move(row)); }

  void Print() const {
    std::printf("\n=== %s ===\n", title_.c_str());
    std::vector<size_t> widths(header_.size(), 0);
    auto measure = [&](const std::vector<std::string>& row) {
      for (size_t i = 0; i < row.size() && i < widths.size(); i++) {
        widths[i] = std::max(widths[i], row[i].size());
      }
    };
    measure(header_);
    for (const auto& row : rows_) measure(row);
    auto print_row = [&](const std::vector<std::string>& row) {
      for (size_t i = 0; i < row.size(); i++) {
        std::printf("%-*s  ", static_cast<int>(widths[i]), row[i].c_str());
      }
      std::printf("\n");
    };
    print_row(header_);
    for (const auto& row : rows_) print_row(row);
    std::fflush(stdout);
  }

 private:
  std::string title_;
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

inline std::string Fmt(double v, const char* fmt = "%.4f") {
  char buf[64];
  std::snprintf(buf, sizeof(buf), fmt, v);
  return buf;
}

/// Observability flags shared by all bench binaries. Construct before
/// benchmark::Initialize so google-benchmark never sees our flags:
///
///   --metrics-json <path>   dump the MetricsRegistry as JSON on exit
///   --trace-json <path>     record trace spans, write a chrome://tracing file
///   --simd / --no-simd      toggle the SIMD kernel tier of the vectorized
///                           engine (default on; --no-simd runs the exact
///                           scalar-fallback code paths, the honest baseline)
///   --mem-limit <bytes>     operator scratch-memory cap for query execution
///                           (ExecOptions::mem_limit_bytes); joins and
///                           aggregations spill to disk instead of exceeding
///                           it. 0 (the default) = unlimited. Also settable
///                           via JSONTILES_MEM_LIMIT.
///
/// Works under JSONTILES_OBS=OFF too (the registry is always compiled; the
/// dump is then simply empty).
class BenchObs {
 public:
  BenchObs(int* argc, char** argv) {
    mem_limit_bytes_ = EnvSize("JSONTILES_MEM_LIMIT", 0);
    int out = 1;
    for (int i = 1; i < *argc; i++) {
      std::string_view arg = argv[i];
      if (arg == "--simd" || arg == "--no-simd") {
        exec::simd::SetEnabled(arg == "--simd");
        continue;
      }
      if (arg == "--mem-limit" || arg.rfind("--mem-limit=", 0) == 0) {
        std::string value;
        size_t eq = arg.find('=');
        if (eq != std::string_view::npos) {
          value = std::string(arg.substr(eq + 1));
        } else if (i + 1 < *argc) {
          value = argv[++i];
        } else {
          std::fprintf(stderr, "missing byte count after --mem-limit\n");
          std::exit(2);
        }
        mem_limit_bytes_ = static_cast<size_t>(std::atoll(value.c_str()));
        continue;
      }
      std::string* target = nullptr;
      if (arg == "--metrics-json" || arg.rfind("--metrics-json=", 0) == 0) {
        target = &metrics_path_;
      } else if (arg == "--trace-json" || arg.rfind("--trace-json=", 0) == 0) {
        target = &trace_path_;
      }
      if (target == nullptr) {
        argv[out++] = argv[i];
        continue;
      }
      size_t eq = arg.find('=');
      if (eq != std::string_view::npos) {
        *target = std::string(arg.substr(eq + 1));
      } else if (i + 1 < *argc) {
        *target = argv[++i];
      } else {
        std::fprintf(stderr, "missing path after %s\n",
                     std::string(arg).c_str());
        std::exit(2);
      }
    }
    *argc = out;
    argv[out] = nullptr;
    // Fail before the (long) benchmark run, not in the dtor afterwards.
    for (const std::string& path : {metrics_path_, trace_path_}) {
      if (path.empty()) continue;
      std::FILE* f = std::fopen(path.c_str(), "w");
      if (f == nullptr) {
        std::fprintf(stderr, "cannot write %s\n", path.c_str());
        std::exit(2);
      }
      std::fclose(f);
    }
    if (!trace_path_.empty()) {
      obs::TraceCollector::Default().set_enabled(true);
    }
  }

  ~BenchObs() {
    if (!metrics_path_.empty()) {
      std::string json = obs::MetricsRegistry::Default().ToJson();
      std::FILE* f = std::fopen(metrics_path_.c_str(), "w");
      if (f == nullptr) {
        std::fprintf(stderr, "cannot write %s\n", metrics_path_.c_str());
      } else {
        std::fwrite(json.data(), 1, json.size(), f);
        std::fclose(f);
        std::printf("\nmetrics written to %s\n", metrics_path_.c_str());
      }
    }
    if (!trace_path_.empty()) {
      Status st = obs::TraceCollector::Default().WriteChromeTrace(trace_path_);
      if (!st.ok()) {
        std::fprintf(stderr, "cannot write %s: %s\n", trace_path_.c_str(),
                     st.ToString().c_str());
      } else {
        std::printf("trace written to %s (load in chrome://tracing)\n",
                    trace_path_.c_str());
      }
    }
  }

  BenchObs(const BenchObs&) = delete;
  BenchObs& operator=(const BenchObs&) = delete;

  /// Operator scratch cap from --mem-limit / JSONTILES_MEM_LIMIT (0 =
  /// unlimited); plug into ExecOptions::mem_limit_bytes.
  size_t mem_limit_bytes() const { return mem_limit_bytes_; }

 private:
  std::string metrics_path_;
  std::string trace_path_;
  size_t mem_limit_bytes_ = 0;
};

}  // namespace jsontiles::bench

#endif  // JSONTILES_BENCH_BENCH_COMMON_H_
