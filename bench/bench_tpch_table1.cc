// Reproduces paper Table 1 (execution times of all 22 TPC-H queries on the
// combined JSON relation for the internal competitor set JSON / JSONB /
// Sinew / Tiles) and the Figure 7 focus queries (Q1 / Q18 in queries/sec).
//
// The external systems of Table 1 (PostgreSQL, Spark, Hyper) are not
// reproduced; see DESIGN.md substitution #2.

#include <benchmark/benchmark.h>

#include "bench_common.h"
#include "workload/tpch.h"
#include "workload/tpch_queries.h"

namespace {

using namespace jsontiles;         // NOLINT
using namespace jsontiles::bench;  // NOLINT

struct State {
  std::map<storage::StorageMode, std::unique_ptr<storage::Relation>> relations;
};
State* g_state = nullptr;

void RunQuery(storage::StorageMode mode, int query) {
  exec::ExecOptions options;
  options.num_threads = BenchThreads();
  exec::QueryContext ctx(options);
  benchmark::DoNotOptimize(
      workload::RunTpchQuery(query, *g_state->relations.at(mode), ctx));
}

void BM_TpchQuery(benchmark::State& state) {
  auto mode = static_cast<storage::StorageMode>(state.range(0));
  int query = static_cast<int>(state.range(1));
  for (auto _ : state) {
    RunQuery(mode, query);
  }
}

}  // namespace

int main(int argc, char** argv) {
  State state;
  g_state = &state;

  workload::TpchOptions options;
  options.scale_factor = TpchScaleFactor();
  std::printf("TPC-H combined JSON, SF=%.3f, threads=%zu ... generating\n",
              options.scale_factor, BenchThreads());
  workload::TpchData data = workload::GenerateTpch(options);
  std::printf("documents: %zu (lineitem %zu, orders %zu)\n",
              data.combined.size(), data.num_lineitem, data.num_orders);

  tiles::TileConfig config;  // paper defaults: 2^10, partition 8, 60%
  storage::LoadOptions load_options;
  load_options.num_threads = BenchThreads();
  state.relations = LoadAllModes(data.combined, "tpch", config, load_options);

  // Table 1: all 22 queries x 4 storage modes.
  TablePrinter table("Table 1: TPC-H execution times [s] (internal competitors)");
  table.SetHeader({"Query", "JSON", "JSONB", "Sinew", "Tiles"});
  std::map<storage::StorageMode, std::vector<double>> per_mode;
  for (int q = 1; q <= 22; q++) {
    std::vector<std::string> row = {"Q" + std::to_string(q)};
    for (auto mode : AllModes()) {
      double secs = TimeBest([&] { RunQuery(mode, q); },
                             mode == storage::StorageMode::kJsonText ? 1 : 2);
      per_mode[mode].push_back(secs);
      row.push_back(Fmt(secs));
    }
    table.AddRow(std::move(row));
  }
  std::vector<std::string> geo_row = {"geo-mean"};
  for (auto mode : AllModes()) geo_row.push_back(Fmt(GeoMean(per_mode[mode])));
  table.AddRow(std::move(geo_row));
  table.Print();

  // Figure 7: Q1 / Q18 throughput.
  TablePrinter fig7("Figure 7: Q1 and Q18 throughput [queries/sec]");
  fig7.SetHeader({"Mode", "Q1", "Q18"});
  for (auto mode : AllModes()) {
    fig7.AddRow({storage::StorageModeName(mode),
                 Fmt(1.0 / per_mode[mode][0], "%.2f"),
                 Fmt(1.0 / per_mode[mode][17], "%.2f")});
  }
  fig7.Print();

  // google-benchmark micro view on the chokepoint queries.
  for (auto mode : AllModes()) {
    for (int q : {1, 6, 18}) {
      std::string name = std::string("BM_Tpch/") +
                         storage::StorageModeName(mode) + "/Q" + std::to_string(q);
      benchmark::RegisterBenchmark(name.c_str(), BM_TpchQuery)
          ->Args({static_cast<int64_t>(mode), q})
          ->Unit(benchmark::kMillisecond)
          ->MinTime(0.1);
    }
  }
  BenchObs obs(&argc, argv);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
