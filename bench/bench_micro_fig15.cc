// Reproduces paper Figure 15 and Table 5: the micro benchmark that sums the
// lineitem `l_linenumber` field — the best case for a global extractor — on
// the original lineitem table ("Only") and on combined TPC-H ("Comb."),
// plus a native relational baseline (a plain int64 column), with per-tuple
// hardware counters where the kernel permits perf_event_open.
//
// Additionally compares the scalar interpreter against the vectorized
// expression engine on a selective pushed-down filter scan. Flags (consumed
// before google-benchmark):
//   --scalar            run the fig-15 query variants with the vectorized
//                       engine disabled (interpreter only)
//   --expr-json <path>  write the scalar-vs-vectorized comparison as JSON

#include <benchmark/benchmark.h>

#include "bench_common.h"
#include "exec/operators.h"
#include "opt/query.h"
#include "tiles/keypath.h"
#include "util/perf_counters.h"
#include "workload/tpch.h"

namespace {

using namespace jsontiles;         // NOLINT
using namespace jsontiles::bench;  // NOLINT

int64_t RunSum(const storage::Relation& rel, bool vectorized) {
  exec::ExecOptions opts;
  opts.enable_vectorized = vectorized;
  exec::QueryContext ctx(opts);
  opt::QueryBlock q;
  q.AddTable(opt::TableRef::Rel(
      "l", &rel, nullptr));  // SUM ignores non-lineitem rows (null field)
  q.GroupBy({});
  q.Aggregate(exec::AggSpec::Sum(
      exec::Access("l", {"l_linenumber"}, exec::ValueType::kInt)));
  return opt::ScalarResult(q.Execute(ctx)).int_value();
}

// Selective pushed-down filter over materialized tile columns: the workload
// the batch engine targets. `l_quantity > 49` keeps ~2% of lineitem; the
// second conjunct only ever sees the survivors (short-circuit selection).
exec::RowSet RunFilterScan(const storage::Relation& rel, bool vectorized) {
  exec::ExecOptions opts;
  opts.enable_vectorized = vectorized;
  exec::QueryContext ctx(opts);
  exec::ScanSpec spec;
  spec.relation = &rel;
  spec.table_alias = "l";
  spec.accesses = {exec::Access("l", {"l_quantity"}, exec::ValueType::kInt),
                   exec::Access("l", {"l_linenumber"}, exec::ValueType::kInt)};
  spec.filter = exec::And(exec::Gt(exec::Slot(0), exec::ConstInt(49)),
                          exec::Ge(exec::Slot(1), exec::ConstInt(3)));
  return exec::ScanExec(spec, ctx);
}

}  // namespace

int main(int argc, char** argv) {
  BenchObs obs(&argc, argv);
  bool scalar_only = false;
  std::string expr_json_path;
  {
    int out = 1;
    for (int i = 1; i < argc; i++) {
      std::string_view arg = argv[i];
      if (arg == "--scalar") {
        scalar_only = true;
        continue;
      }
      if (arg == "--expr-json" || arg.rfind("--expr-json=", 0) == 0) {
        size_t eq = arg.find('=');
        if (eq != std::string_view::npos) {
          expr_json_path = std::string(arg.substr(eq + 1));
        } else if (i + 1 < argc) {
          expr_json_path = argv[++i];
        } else {
          std::fprintf(stderr, "missing path after --expr-json\n");
          return 2;
        }
        continue;
      }
      argv[out++] = argv[i];
    }
    argc = out;
    argv[argc] = nullptr;
  }
  benchmark::Initialize(&argc, argv);

  workload::TpchOptions options;
  options.scale_factor = TpchScaleFactor();
  workload::TpchData data = workload::GenerateTpch(options);
  const double tuples = static_cast<double>(data.num_lineitem);

  tiles::TileConfig config;
  storage::LoadOptions load_options;
  load_options.num_threads = BenchThreads();
  auto combined = LoadAllModes(data.combined, "comb", config, load_options);
  std::map<storage::StorageMode, std::unique_ptr<storage::Relation>> only;
  for (auto mode :
       {storage::StorageMode::kSinew, storage::StorageMode::kTiles}) {
    storage::Loader loader(mode, config, load_options);
    only[mode] = loader.Load(data.lineitem_only, "only").MoveValueOrDie();
  }

  // Native relational baseline: the extracted column as a plain vector.
  std::vector<int64_t> relational_column;
  relational_column.reserve(data.num_lineitem);
  {
    const auto& rel = *only[storage::StorageMode::kTiles];
    for (const auto& tile : rel.tiles()) {
      std::string path;
      tiles::AppendKeySegment(&path, "l_linenumber");
      const auto* col = tile.FindColumn(path);
      for (size_t r = 0; r < tile.row_count; r++) {
        relational_column.push_back(col->column.GetInt(r));
      }
    }
  }
  auto relational_sum = [&]() {
    int64_t sum = 0;
    for (int64_t v : relational_column) sum += v;
    return sum;
  };

  const bool vec = !scalar_only;
  struct Variant {
    std::string name;
    std::function<int64_t()> run;
  };
  std::vector<Variant> variants = {
      {"Relational", [&] { return relational_sum(); }},
      {"JSON Comb.",
       [&] { return RunSum(*combined[storage::StorageMode::kJsonText], vec); }},
      {"JSONB Comb.",
       [&] { return RunSum(*combined[storage::StorageMode::kJsonb], vec); }},
      {"Sinew Only",
       [&] { return RunSum(*only[storage::StorageMode::kSinew], vec); }},
      {"Sinew Comb.",
       [&] { return RunSum(*combined[storage::StorageMode::kSinew], vec); }},
      {"Tiles Only",
       [&] { return RunSum(*only[storage::StorageMode::kTiles], vec); }},
      {"Tiles Comb.",
       [&] { return RunSum(*combined[storage::StorageMode::kTiles], vec); }},
  };

  // Correctness cross-check before timing.
  int64_t expected = variants[0].run();
  for (auto& v : variants) {
    int64_t got = v.run();
    if (got != expected) {
      std::fprintf(stderr, "MISMATCH %s: %lld vs %lld\n", v.name.c_str(),
                   static_cast<long long>(got), static_cast<long long>(expected));
      return 1;
    }
  }

  TablePrinter fig("Figure 15: summation query throughput [queries/sec]");
  fig.SetHeader({"Variant", "queries/sec", "sec/query"});
  TablePrinter tbl("Table 5: per-tuple performance counters (summation query)");
  tbl.SetHeader({"System", "Cycles", "Instr.", "Branch-M", "L1-Miss", "Sec/All"});

  PerfCounters counters;
  if (!counters.available()) {
    std::printf("(perf_event_open unavailable: hardware counters reported as n/a)\n");
  }
  for (auto& v : variants) {
    int reps = v.name == "JSON Comb." ? 1 : 5;
    double secs = TimeBest([&] { benchmark::DoNotOptimize(v.run()); }, reps);
    fig.AddRow({v.name, Fmt(1.0 / secs, "%.1f"), Fmt(secs, "%.6f")});

    counters.Start();
    benchmark::DoNotOptimize(v.run());
    PerfSample sample = counters.Stop();
    if (sample.valid) {
      tbl.AddRow({v.name, Fmt(static_cast<double>(sample.cycles) / tuples, "%.2f"),
                  Fmt(static_cast<double>(sample.instructions) / tuples, "%.2f"),
                  Fmt(static_cast<double>(sample.branch_misses) / tuples, "%.3f"),
                  Fmt(static_cast<double>(sample.l1d_misses) / tuples, "%.3f"),
                  Fmt(secs, "%.6f")});
    } else {
      tbl.AddRow({v.name, "n/a", "n/a", "n/a", "n/a", Fmt(secs, "%.6f")});
    }
  }
  fig.Print();
  tbl.Print();

  // --- Scalar vs vectorized expression engine (selective filter scan). -----
  const storage::Relation& tiles_only = *only[storage::StorageMode::kTiles];
  const size_t rows_scalar = RunFilterScan(tiles_only, false).size();
  const size_t rows_vec = RunFilterScan(tiles_only, true).size();
  if (rows_scalar != rows_vec) {
    std::fprintf(stderr, "MISMATCH expr filter rows: scalar=%zu vectorized=%zu\n",
                 rows_scalar, rows_vec);
    return 1;
  }
  double secs_scalar = TimeBest(
      [&] { benchmark::DoNotOptimize(RunFilterScan(tiles_only, false)); }, 5);
  double secs_vec = TimeBest(
      [&] { benchmark::DoNotOptimize(RunFilterScan(tiles_only, true)); }, 5);
  const double ns_scalar = secs_scalar / tuples * 1e9;
  const double ns_vec = secs_vec / tuples * 1e9;
  const double speedup = ns_vec > 0 ? ns_scalar / ns_vec : 0;

  TablePrinter expr(
      "Expression engine: pushed-down filter "
      "l_quantity > 49 AND l_linenumber >= 3 (~1.4% selectivity)");
  expr.SetHeader({"Engine", "ns/tuple", "sec/query", "rows out"});
  expr.AddRow({"Scalar", Fmt(ns_scalar, "%.2f"), Fmt(secs_scalar, "%.6f"),
               std::to_string(rows_scalar)});
  expr.AddRow({"Vectorized", Fmt(ns_vec, "%.2f"), Fmt(secs_vec, "%.6f"),
               std::to_string(rows_vec)});
  expr.Print();
  std::printf("vectorized speedup: %.2fx\n", speedup);

  if (!expr_json_path.empty()) {
    std::FILE* f = std::fopen(expr_json_path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", expr_json_path.c_str());
      return 2;
    }
    std::fprintf(f,
                 "{\n"
                 "  \"bench\": \"expr_filter_scan\",\n"
                 "  \"filter\": \"l_quantity > 49 AND l_linenumber >= 3\",\n"
                 "  \"tuples\": %zu,\n"
                 "  \"rows_out\": %zu,\n"
                 "  \"scalar_ns_per_tuple\": %.4f,\n"
                 "  \"vectorized_ns_per_tuple\": %.4f,\n"
                 "  \"speedup\": %.4f\n"
                 "}\n",
                 static_cast<size_t>(tuples), rows_vec, ns_scalar, ns_vec,
                 speedup);
    std::fclose(f);
    std::printf("expression benchmark written to %s\n", expr_json_path.c_str());
  }
  return 0;
}
