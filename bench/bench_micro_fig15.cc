// Reproduces paper Figure 15 and Table 5: the micro benchmark that sums the
// lineitem `l_linenumber` field — the best case for a global extractor — on
// the original lineitem table ("Only") and on combined TPC-H ("Comb."),
// plus a native relational baseline (a plain int64 column), with per-tuple
// hardware counters where the kernel permits perf_event_open.

#include <benchmark/benchmark.h>

#include "bench_common.h"
#include "exec/operators.h"
#include "opt/query.h"
#include "tiles/keypath.h"
#include "util/perf_counters.h"
#include "workload/tpch.h"

namespace {

using namespace jsontiles;         // NOLINT
using namespace jsontiles::bench;  // NOLINT

int64_t RunSum(const storage::Relation& rel) {
  exec::QueryContext ctx;
  opt::QueryBlock q;
  q.AddTable(opt::TableRef::Rel(
      "l", &rel, nullptr));  // SUM ignores non-lineitem rows (null field)
  q.GroupBy({});
  q.Aggregate(exec::AggSpec::Sum(
      exec::Access("l", {"l_linenumber"}, exec::ValueType::kInt)));
  return opt::ScalarResult(q.Execute(ctx)).int_value();
}

}  // namespace

int main(int argc, char** argv) {
  BenchObs obs(&argc, argv);
  benchmark::Initialize(&argc, argv);

  workload::TpchOptions options;
  options.scale_factor = TpchScaleFactor();
  workload::TpchData data = workload::GenerateTpch(options);
  const double tuples = static_cast<double>(data.num_lineitem);

  tiles::TileConfig config;
  storage::LoadOptions load_options;
  load_options.num_threads = BenchThreads();
  auto combined = LoadAllModes(data.combined, "comb", config, load_options);
  std::map<storage::StorageMode, std::unique_ptr<storage::Relation>> only;
  for (auto mode :
       {storage::StorageMode::kSinew, storage::StorageMode::kTiles}) {
    storage::Loader loader(mode, config, load_options);
    only[mode] = loader.Load(data.lineitem_only, "only").MoveValueOrDie();
  }

  // Native relational baseline: the extracted column as a plain vector.
  std::vector<int64_t> relational_column;
  relational_column.reserve(data.num_lineitem);
  {
    const auto& rel = *only[storage::StorageMode::kTiles];
    for (const auto& tile : rel.tiles()) {
      std::string path;
      tiles::AppendKeySegment(&path, "l_linenumber");
      const auto* col = tile.FindColumn(path);
      for (size_t r = 0; r < tile.row_count; r++) {
        relational_column.push_back(col->column.GetInt(r));
      }
    }
  }
  auto relational_sum = [&]() {
    int64_t sum = 0;
    for (int64_t v : relational_column) sum += v;
    return sum;
  };

  struct Variant {
    std::string name;
    std::function<int64_t()> run;
  };
  std::vector<Variant> variants = {
      {"Relational", [&] { return relational_sum(); }},
      {"JSON Comb.",
       [&] { return RunSum(*combined[storage::StorageMode::kJsonText]); }},
      {"JSONB Comb.",
       [&] { return RunSum(*combined[storage::StorageMode::kJsonb]); }},
      {"Sinew Only",
       [&] { return RunSum(*only[storage::StorageMode::kSinew]); }},
      {"Sinew Comb.",
       [&] { return RunSum(*combined[storage::StorageMode::kSinew]); }},
      {"Tiles Only",
       [&] { return RunSum(*only[storage::StorageMode::kTiles]); }},
      {"Tiles Comb.",
       [&] { return RunSum(*combined[storage::StorageMode::kTiles]); }},
  };

  // Correctness cross-check before timing.
  int64_t expected = variants[0].run();
  for (auto& v : variants) {
    int64_t got = v.run();
    if (got != expected) {
      std::fprintf(stderr, "MISMATCH %s: %lld vs %lld\n", v.name.c_str(),
                   static_cast<long long>(got), static_cast<long long>(expected));
      return 1;
    }
  }

  TablePrinter fig("Figure 15: summation query throughput [queries/sec]");
  fig.SetHeader({"Variant", "queries/sec", "sec/query"});
  TablePrinter tbl("Table 5: per-tuple performance counters (summation query)");
  tbl.SetHeader({"System", "Cycles", "Instr.", "Branch-M", "L1-Miss", "Sec/All"});

  PerfCounters counters;
  if (!counters.available()) {
    std::printf("(perf_event_open unavailable: hardware counters reported as n/a)\n");
  }
  for (auto& v : variants) {
    int reps = v.name == "JSON Comb." ? 1 : 5;
    double secs = TimeBest([&] { benchmark::DoNotOptimize(v.run()); }, reps);
    fig.AddRow({v.name, Fmt(1.0 / secs, "%.1f"), Fmt(secs, "%.6f")});

    counters.Start();
    benchmark::DoNotOptimize(v.run());
    PerfSample sample = counters.Stop();
    if (sample.valid) {
      tbl.AddRow({v.name, Fmt(static_cast<double>(sample.cycles) / tuples, "%.2f"),
                  Fmt(static_cast<double>(sample.instructions) / tuples, "%.2f"),
                  Fmt(static_cast<double>(sample.branch_misses) / tuples, "%.3f"),
                  Fmt(static_cast<double>(sample.l1d_misses) / tuples, "%.3f"),
                  Fmt(secs, "%.6f")});
    } else {
      tbl.AddRow({v.name, "n/a", "n/a", "n/a", "n/a", Fmt(secs, "%.6f")});
    }
  }
  fig.Print();
  tbl.Print();
  return 0;
}
