// Ablation benchmarks beyond the paper's figures (DESIGN.md §5):
//   A. FP-Growth vs Apriori mining cost (validates the §3.3 choice)
//   B. Itemset budget sweep (Eq. 1): mining time vs extraction coverage
//   C. Reordering on Figure-3-style type-interleaved data: extraction
//      coverage and query speed before/after
//   D. JSONB O(log n) object lookup vs BSON linear scan as objects widen

#include <benchmark/benchmark.h>

#include "bench_common.h"
#include "exec/operators.h"
#include "json/bson.h"
#include "json/jsonb.h"
#include "mining/apriori.h"
#include "mining/fpgrowth.h"
#include "opt/query.h"
#include "tiles/keypath.h"
#include "tiles/tile_builder.h"
#include "util/random.h"
#include "util/rle.h"
#include "workload/hackernews.h"

namespace {

using namespace jsontiles;         // NOLINT
using namespace jsontiles::bench;  // NOLINT

std::vector<mining::Transaction> MakeTransactions(size_t n, int num_items,
                                                  uint64_t seed) {
  Random rng(seed);
  std::vector<mining::Transaction> txs;
  for (size_t i = 0; i < n; i++) {
    mining::Transaction tx;
    for (int item = 0; item < num_items; item++) {
      double p = item < num_items / 2 ? 0.8 : 0.3;
      if (rng.Chance(p)) tx.push_back(static_cast<mining::Item>(item));
    }
    txs.push_back(std::move(tx));
  }
  return txs;
}

}  // namespace

int main(int argc, char** argv) {
  BenchObs obs(&argc, argv);
  benchmark::Initialize(&argc, argv);

  // --- A: FP-Growth vs Apriori -------------------------------------------
  {
    TablePrinter t("Ablation A: miner runtime [ms], 1024 transactions");
    t.SetHeader({"Items", "FP-Growth", "Apriori", "speedup"});
    for (int items : {8, 12, 16, 20}) {
      auto txs = MakeTransactions(1024, items, 7);
      uint32_t min_support = 614;  // 60%
      mining::FpGrowthMiner fp;
      mining::MinerOptions options;
      options.min_support = min_support;
      options.budget = 1 << 20;
      double fp_secs = TimeBest([&] {
        benchmark::DoNotOptimize(fp.Mine(txs, options));
      });
      mining::AprioriMiner ap;
      double ap_secs = TimeBest([&] {
        benchmark::DoNotOptimize(ap.Mine(txs, min_support, items));
      });
      t.AddRow({std::to_string(items), Fmt(fp_secs * 1000, "%.3f"),
                Fmt(ap_secs * 1000, "%.3f"), Fmt(ap_secs / fp_secs, "%.1fx")});
    }
    t.Print();
  }

  // --- B: itemset budget sweep (Eq. 1) ------------------------------------
  {
    TablePrinter t("Ablation B: budget u vs max itemset size k and mining time");
    t.SetHeader({"Budget", "k (n=20)", "itemsets", "time [ms]"});
    auto txs = MakeTransactions(1024, 20, 9);
    for (uint64_t budget : {16ULL, 256ULL, 4096ULL, 65536ULL, 1048576ULL}) {
      mining::FpGrowthMiner fp;
      mining::MinerOptions options;
      options.min_support = 300;
      options.budget = budget;
      auto result = fp.Mine(txs, options);
      double secs = TimeBest([&] { benchmark::DoNotOptimize(fp.Mine(txs, options)); });
      t.AddRow({std::to_string(budget),
                std::to_string(mining::MaxItemsetSize(20, budget)),
                std::to_string(result.size()), Fmt(secs * 1000, "%.3f")});
    }
    t.Print();
  }

  // --- C: reordering on type-interleaved news items ------------------------
  {
    workload::HackerNewsOptions options;
    options.num_items = 32768;
    auto docs = workload::GenerateHackerNews(options);
    TablePrinter t("Ablation C: reordering on interleaved news items (Fig 3/4)");
    t.SetHeader({"Reordering", "columns extracted", "load [s]", "geo-mean query [s]"});
    for (bool reorder : {false, true}) {
      tiles::TileConfig config;
      config.enable_reordering = reorder;
      storage::LoadOptions load_options;
      load_options.num_threads = BenchThreads();
      storage::Loader loader(storage::StorageMode::kTiles, config, load_options);
      storage::LoadBreakdown b;
      auto rel = loader.Load(docs, "hn", &b).MoveValueOrDie();
      size_t columns = 0;
      for (const auto& tile : rel->tiles()) columns += tile.columns.size();
      // Queries: per-type aggregates (score by type; comment count by parent).
      exec::ExecOptions exec_options;
      exec_options.num_threads = BenchThreads();
      std::vector<double> times;
      times.push_back(TimeBest([&] {
        exec::QueryContext ctx(exec_options);
        opt::QueryBlock q;
        q.AddTable(opt::TableRef::Rel(
            "s", rel.get(),
            exec::IsNotNull(exec::Access("s", {"url"}, exec::ValueType::kString))));
        q.GroupBy({exec::Access("s", {"type"}, exec::ValueType::kString)});
        q.Aggregate(exec::AggSpec::Avg(
            exec::Access("s", {"score"}, exec::ValueType::kInt)));
        benchmark::DoNotOptimize(q.Execute(ctx));
      }, 3));
      times.push_back(TimeBest([&] {
        exec::QueryContext ctx(exec_options);
        opt::QueryBlock q;
        q.AddTable(opt::TableRef::Rel(
            "c", rel.get(),
            exec::IsNotNull(exec::Access("c", {"parent"}, exec::ValueType::kInt))));
        q.GroupBy({});
        q.Aggregate(exec::AggSpec::CountStar());
        q.Aggregate(exec::AggSpec::CountDistinct(
            exec::Access("c", {"parent"}, exec::ValueType::kInt)));
        benchmark::DoNotOptimize(q.Execute(ctx));
      }, 3));
      t.AddRow({reorder ? "on" : "off", std::to_string(columns),
                Fmt(b.total_wall_secs, "%.2f"), Fmt(GeoMean(times))});
    }
    t.Print();
  }

  // --- E: reordering improves RLE compression (§3.3) -----------------------
  {
    workload::HackerNewsOptions options;
    options.num_items = 32768;
    auto docs = workload::GenerateHackerNews(options);
    TablePrinter t("Ablation E: RLE on int columns, with/without reordering");
    t.SetHeader({"Reordering", "runs", "RLE bytes", "raw bytes"});
    for (bool reorder : {false, true}) {
      tiles::TileConfig config;
      config.enable_reordering = reorder;
      storage::Loader loader(storage::StorageMode::kTiles, config);
      auto rel = loader.Load(docs, "hn").MoveValueOrDie();
      size_t runs = 0, rle_bytes = 0, raw_bytes = 0;
      for (const auto& tile : rel->tiles()) {
        for (const auto& col : tile.columns) {
          const auto& data = col.column.i64_data();
          if (data.empty()) continue;
          runs += rle::CountRuns(data.data(), data.size());
          rle_bytes += rle::EncodedSizeInt64(data.data(), data.size());
          raw_bytes += data.size() * sizeof(int64_t);
        }
      }
      t.AddRow({reorder ? "on" : "off", std::to_string(runs),
                std::to_string(rle_bytes), std::to_string(raw_bytes)});
    }
    t.Print();
  }

  // --- D: object lookup complexity ------------------------------------------
  {
    TablePrinter t("Ablation D: member lookup [ns] vs object width");
    t.SetHeader({"Members", "JSONB O(log n)", "BSON O(n)"});
    Random rng(3);
    for (size_t width : {4, 16, 64, 256, 1024}) {
      std::string text = "{";
      std::vector<std::string> keys;
      for (size_t i = 0; i < width; i++) {
        keys.push_back("key_" + std::to_string(i) + "_" + rng.NextString(4, 8));
        if (i) text += ",";
        text += "\"" + keys.back() + "\":" + std::to_string(i);
      }
      text += "}";
      auto jsonb = json::JsonbFromText(text).MoveValueOrDie();
      json::JsonValue dom = json::ParseJson(text).ValueOrDie();
      std::vector<uint8_t> bson;
      (void)json::bson::Encode(dom, &bson);
      const int kLookups = 2000;
      double jsonb_secs = TimeBest([&] {
        json::JsonbValue v(jsonb.data());
        for (int i = 0; i < kLookups; i++) {
          benchmark::DoNotOptimize(v.FindKey(keys[static_cast<size_t>(i) % width]));
        }
      });
      double bson_secs = TimeBest([&] {
        for (int i = 0; i < kLookups; i++) {
          uint8_t type;
          const uint8_t* payload;
          size_t payload_size;
          benchmark::DoNotOptimize(
              json::bson::FindField(bson.data(), bson.size(),
                                    keys[static_cast<size_t>(i) % width], &type,
                                    &payload, &payload_size));
        }
      });
      t.AddRow({std::to_string(width), Fmt(jsonb_secs / kLookups * 1e9, "%.0f"),
                Fmt(bson_secs / kLookups * 1e9, "%.0f")});
    }
    t.Print();
  }
  return 0;
}
