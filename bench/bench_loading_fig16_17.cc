// Reproduces paper Figures 16 and 17:
//   Fig 16 — insertion time breakdown for JSON tiles (extract / mining /
//            reordering / write JSONB) per workload
//   Fig 17 — parallel bulk-loading throughput (1000 tuples/sec) for every
//            storage mode per workload

#include <benchmark/benchmark.h>

#include "bench_common.h"
#include "workload/tpch.h"
#include "workload/twitter.h"
#include "workload/yelp.h"

namespace {

using namespace jsontiles;         // NOLINT
using namespace jsontiles::bench;  // NOLINT

}  // namespace

int main(int argc, char** argv) {
  BenchObs obs(&argc, argv);
  benchmark::Initialize(&argc, argv);

  struct Workload {
    std::string name;
    std::vector<std::string> docs;
  };
  std::vector<Workload> workloads;
  {
    workload::TpchOptions options;
    options.scale_factor = TpchScaleFactor();
    workloads.push_back({"TPC-H", workload::GenerateTpch(options).combined});
    options.shuffle = true;
    workloads.push_back({"Shuffled", workload::GenerateTpch(options).combined});
  }
  {
    workload::YelpOptions options;
    options.num_business = YelpBusinesses();
    workloads.push_back({"Yelp", workload::GenerateYelp(options)});
  }
  {
    workload::TwitterOptions options;
    options.num_tweets = TwitterTweets();
    workloads.push_back({"Twitter", workload::GenerateTwitter(options)});
    options.changing_schema = true;
    workloads.push_back({"Changing", workload::GenerateTwitter(options)});
  }

  storage::LoadOptions load_options;
  load_options.num_threads = BenchThreads();
  // JSONTILES_ONDEMAND=1 loads through the on-demand parse path; with
  // --metrics-json the jsonb.ondemand.stage1/stage2 histograms then split the
  // WriteJSONB phase into SIMD scan vs. lazy walk.
  load_options.ondemand = OndemandEnv();
  if (load_options.ondemand) std::printf("parse path: ondemand\n");

  // Figure 16: phase breakdown of the Tiles insertion (percent of phase sum).
  TablePrinter fig16("Figure 16: insertion time breakdown [% of tile phases]");
  fig16.SetHeader({"Workload", "Extract", "Mining", "Reordering", "WriteJSONB"});
  for (const auto& w : workloads) {
    storage::Loader loader(storage::StorageMode::kTiles, {}, load_options);
    storage::LoadBreakdown b;
    auto rel = loader.Load(w.docs, w.name, &b).MoveValueOrDie();
    double total = b.extract_secs + b.mine_secs + b.reorder_secs + b.jsonb_secs;
    auto pct = [&](double v) { return Fmt(100.0 * v / total, "%.1f%%"); };
    fig16.AddRow({w.name, pct(b.extract_secs), pct(b.mine_secs),
                  pct(b.reorder_secs), pct(b.jsonb_secs)});
    // Absolute per-stage seconds for --metrics-json (the table prints
    // percentages; the dump keeps the raw numbers machine-readable).
    auto& registry = obs::MetricsRegistry::Default();
    const std::string prefix = "bench.load." + w.name + ".";
    registry.GetGauge(prefix + "parse_transform_secs")->Set(b.jsonb_secs);
    registry.GetGauge(prefix + "mine_secs")->Set(b.mine_secs);
    registry.GetGauge(prefix + "reorder_secs")->Set(b.reorder_secs);
    registry.GetGauge(prefix + "extract_secs")->Set(b.extract_secs);
    registry.GetGauge(prefix + "total_wall_secs")->Set(b.total_wall_secs);
  }
  fig16.Print();

  // Figure 17: loading throughput per mode (in 1000 tuples/sec).
  TablePrinter fig17("Figure 17: parallel loading [1000 tuples/sec]");
  fig17.SetHeader({"Workload", "JSON", "JSONB", "Sinew", "Tiles"});
  for (const auto& w : workloads) {
    std::vector<std::string> row = {w.name};
    for (auto mode : AllModes()) {
      storage::Loader loader(mode, {}, load_options);
      storage::LoadBreakdown b;
      auto rel = loader.Load(w.docs, w.name, &b).MoveValueOrDie();
      row.push_back(Fmt(b.TuplesPerSecond() / 1000.0, "%.0f"));
    }
    fig17.AddRow(std::move(row));
  }
  fig17.Print();
  return 0;
}
