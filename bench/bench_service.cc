// Multi-tenant service benchmark: a closed-loop multi-client driver over the
// admission-controlled QueryService, reporting per-query p50/p99 latency and
// aggregate throughput as the client count sweeps past the group's
// concurrency slots (queue waits then surface in the tail). Doubles as the
// CI perf smoke: single-client execution through the service must be
// bit-identical to direct execution and add no material latency — the binary
// exits non-zero when identity breaks or the overhead gate trips, and
// --service-json writes the summary (BENCH_service.json).
//
// Usage:
//   bench_service [--service-json PATH]
// Environment: JSONTILES_SF / JSONTILES_YELP scale the mixed TPC-H+Yelp
// workload (bench_common.h defaults).

#include <benchmark/benchmark.h>

#include <algorithm>
#include <atomic>
#include <iterator>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "service/query_service.h"
#include "workload/tpch.h"
#include "workload/tpch_queries.h"
#include "workload/yelp.h"

namespace {

using namespace jsontiles;         // NOLINT
using namespace jsontiles::bench;  // NOLINT
using exec::QueryContext;
using exec::RowSet;

struct Item {
  bool yelp;
  int query;
};

// The mixed tenant workload: scan-, join- and aggregation-heavy TPC-H plus
// the nested-JSON Yelp queries.
constexpr Item kMix[] = {{false, 1}, {false, 3},  {false, 6}, {false, 12},
                         {false, 18}, {true, 1},  {true, 3},  {true, 5}};

const storage::Relation* g_tpch = nullptr;
const storage::Relation* g_yelp = nullptr;

RowSet RunItem(const Item& item, QueryContext& ctx) {
  return item.yelp ? workload::RunYelpQuery(item.query, *g_yelp, ctx)
                   : workload::RunTpchQuery(item.query, *g_tpch, ctx);
}

std::string Canonical(const RowSet& rows) {
  std::string out;
  for (const auto& row : rows) {
    for (const auto& v : row) {
      out += v.is_null() ? "∅" : v.ToString();
      out += "|";
    }
    out += "\n";
  }
  return out;
}

double Percentile(std::vector<double> sorted, double p) {
  if (sorted.empty()) return 0;
  std::sort(sorted.begin(), sorted.end());
  const double idx = p * static_cast<double>(sorted.size() - 1);
  const size_t lo = static_cast<size_t>(idx);
  const size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = idx - static_cast<double>(lo);
  return sorted[lo] * (1 - frac) + sorted[hi] * frac;
}

struct LoadResult {
  double wall_seconds = 0;
  std::vector<double> latencies_ms;  // one entry per completed query
  size_t errors = 0;
};

/// Closed-loop drive: `clients` threads, each executing the mix `rounds`
/// times back to back through the service (think: one backend connection per
/// tenant, always one query in flight or waiting for admission).
LoadResult DriveClosedLoop(service::QueryService& service, size_t clients,
                           int rounds) {
  LoadResult result;
  std::vector<std::vector<double>> per_client(clients);
  std::atomic<size_t> errors{0};
  result.wall_seconds = TimeOnce([&] {
    std::vector<std::thread> threads;
    for (size_t c = 0; c < clients; c++) {
      threads.emplace_back([&, c] {
        for (int r = 0; r < rounds; r++) {
          for (size_t i = 0; i < std::size(kMix); i++) {
            // Stagger the starting offset per client so tenants contend on
            // different queries, not in lockstep.
            const Item& item = kMix[(i + c) % std::size(kMix)];
            const double t = TimeOnce([&] {
              Status st = service.Submit("bench", {}, [&](QueryContext& ctx) {
                benchmark::DoNotOptimize(RunItem(item, ctx));
                return Status::OK();
              });
              if (!st.ok()) errors.fetch_add(1);
            });
            per_client[c].push_back(t * 1e3);
          }
        }
      });
    }
    for (auto& t : threads) t.join();
  });
  for (auto& v : per_client) {
    result.latencies_ms.insert(result.latencies_ms.end(), v.begin(), v.end());
  }
  result.errors = errors.load();
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  BenchObs obs(&argc, argv);

  std::string json_path;
  for (int i = 1; i < argc; i++) {
    std::string_view arg = argv[i];
    if (arg == "--service-json" || arg.rfind("--service-json=", 0) == 0) {
      size_t eq = arg.find('=');
      if (eq != std::string_view::npos) {
        json_path = std::string(arg.substr(eq + 1));
      } else if (i + 1 < argc) {
        json_path = argv[++i];
      } else {
        std::fprintf(stderr, "missing path after --service-json\n");
        return 2;
      }
    }
  }
  if (!json_path.empty()) {
    std::FILE* f = std::fopen(json_path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
      return 2;
    }
    std::fclose(f);
  }

  workload::TpchOptions tpch_options;
  tpch_options.scale_factor = TpchScaleFactor();
  auto tpch_data = workload::GenerateTpch(tpch_options);
  workload::YelpOptions yelp_options;
  yelp_options.num_business = YelpBusinesses();
  auto yelp_docs = workload::GenerateYelp(yelp_options);
  storage::Loader loader(storage::StorageMode::kTiles, {});
  auto tpch = loader.Load(tpch_data.combined, "tpch").MoveValueOrDie();
  auto yelp = loader.Load(yelp_docs, "yelp").MoveValueOrDie();
  g_tpch = tpch.get();
  g_yelp = yelp.get();

  // --- Identity + overhead gate: single client, service vs direct. -------
  bool identical = true;
  double direct_total = 0, service_total = 0;
  {
    service::QueryService service;
    service::ResourceGroupConfig group;
    group.concurrency = 4;
    group.max_queue = 64;
    if (!service.CreateGroup("bench", group).ok()) return 2;
    for (const Item& item : kMix) {
      std::string direct_result, service_result;
      direct_total += TimeBest([&] {
        QueryContext ctx;
        direct_result = Canonical(RunItem(item, ctx));
      });
      service_total += TimeBest([&] {
        Status st = service.Submit("bench", {}, [&](QueryContext& ctx) {
          service_result = Canonical(RunItem(item, ctx));
          return Status::OK();
        });
        if (!st.ok()) {
          std::fprintf(stderr, "service execution failed: %s\n",
                       st.ToString().c_str());
          identical = false;
        }
      });
      if (direct_result != service_result) {
        std::fprintf(stderr, "%s %d: service result differs from direct\n",
                     item.yelp ? "Yelp" : "TPC-H", item.query);
        identical = false;
      }
    }
  }
  const double overhead = service_total / direct_total;
  // Admission is two mutex acquisitions around millisecond-scale queries; a
  // generous gate absorbs shared-runner noise while still catching a real
  // regression (e.g. admission serializing execution).
  const bool overhead_ok = overhead < 1.5;

  // --- Closed-loop client sweep across the 4 concurrency slots. ----------
  const size_t client_counts[] = {1, 2, 4, 8};
  struct SweepRow {
    size_t clients;
    double qps, p50_ms, p99_ms;
    size_t errors;
  };
  std::vector<SweepRow> sweep;
  {
    service::QueryService service;
    service::ResourceGroupConfig group;
    group.concurrency = 4;
    group.max_queue = 64;
    group.queue_timeout_ms = 600000;
    if (!service.CreateGroup("bench", group).ok()) return 2;
    for (size_t clients : client_counts) {
      LoadResult r = DriveClosedLoop(service, clients, /*rounds=*/2);
      SweepRow row;
      row.clients = clients;
      row.qps = static_cast<double>(r.latencies_ms.size()) / r.wall_seconds;
      row.p50_ms = Percentile(r.latencies_ms, 0.50);
      row.p99_ms = Percentile(r.latencies_ms, 0.99);
      row.errors = r.errors;
      sweep.push_back(row);
    }
  }

  TablePrinter table("Multi-tenant service: closed-loop client sweep");
  table.SetHeader({"Clients", "Queries", "QPS", "p50 ms", "p99 ms", "Errors"});
  std::string sweep_json;
  bool no_errors = true;
  for (const auto& row : sweep) {
    no_errors = no_errors && row.errors == 0;
    table.AddRow({std::to_string(row.clients),
                  std::to_string(2 * std::size(kMix) * row.clients),
                  Fmt(row.qps, "%.1f"), Fmt(row.p50_ms, "%.2f"),
                  Fmt(row.p99_ms, "%.2f"), std::to_string(row.errors)});
    if (!sweep_json.empty()) sweep_json += ",\n";
    sweep_json += "    {\"clients\": " + std::to_string(row.clients) +
                  ", \"qps\": " + Fmt(row.qps, "%.2f") +
                  ", \"p50_ms\": " + Fmt(row.p50_ms, "%.3f") +
                  ", \"p99_ms\": " + Fmt(row.p99_ms, "%.3f") +
                  ", \"errors\": " + std::to_string(row.errors) + "}";
  }
  table.Print();
  std::printf("single-client service/direct overhead: %.3fx (%s)\n", overhead,
              overhead_ok ? "ok" : "REGRESSION");
  std::printf("service/direct identity: %s\n", identical ? "PASS" : "FAIL");

  const bool ok = identical && overhead_ok && no_errors;
  std::string json =
      "{\n  \"overhead\": " + Fmt(overhead, "%.4f") +
      ",\n  \"overhead_ok\": " + (overhead_ok ? "true" : "false") +
      ",\n  \"identical\": " + (identical ? "true" : "false") +
      ",\n  \"sweep\": [\n" + sweep_json + "\n  ],\n  \"ok\": " +
      (ok ? "true" : "false") + "\n}\n";
  if (!json_path.empty()) {
    std::FILE* f = std::fopen(json_path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
      return 2;
    }
    std::fwrite(json.data(), 1, json.size(), f);
    std::fclose(f);
    std::printf("service summary written to %s\n", json_path.c_str());
  }
  return ok ? 0 : 1;
}
