// Loader parse-path benchmark: baseline streaming parser vs. the on-demand
// SIMD path (LoadOptions::ondemand) on single-thread bulk loads, per
// workload. Doubles as the CI perf-smoke gate: --load-json writes a summary
// (BENCH_load.json) with per-workload docs/sec and speedups, and the binary
// exits non-zero when the two paths produce different relations — so a wiring
// regression fails the job even before the assertions on the JSON run.
//
// Usage:
//   bench_load [--load-json PATH]
// Environment: JSONTILES_SF / JSONTILES_TWEETS / JSONTILES_YELP scale the
// workloads (bench_common.h defaults).

#include <benchmark/benchmark.h>

#include <string>
#include <vector>

#include "bench_common.h"
#include "json/structural_index.h"
#include "storage/loader.h"
#include "storage/serialize.h"
#include "workload/simdjson_corpus.h"
#include "workload/tpch.h"
#include "workload/twitter.h"
#include "workload/yelp.h"

namespace {

using namespace jsontiles;         // NOLINT
using namespace jsontiles::bench;  // NOLINT

struct Workload {
  std::string name;
  std::vector<std::string> docs;
};

struct Measurement {
  double baseline_wall = 0;
  double ondemand_wall = 0;
  bool identical = false;
};

// Single-thread loads, best of 3, plus byte-identity of the loaded relations
// (serialized form covers rows, every JSONB buffer and — for kTiles — the
// extracted tile columns and statistics). The kJsonb rows isolate the parse
// path itself; the kTiles rows additionally exercise direct tile ingest
// (key-path collection and column materialization off the emitter's scalar
// directories instead of per-path JSONB navigation).
Measurement MeasureLoad(const Workload& w, storage::StorageMode mode) {
  Measurement m;
  storage::LoadOptions baseline_opts;
  baseline_opts.num_threads = 1;
  storage::LoadOptions ondemand_opts = baseline_opts;
  ondemand_opts.ondemand = true;

  std::unique_ptr<storage::Relation> baseline_rel, ondemand_rel;
  m.baseline_wall = TimeBest([&] {
    baseline_rel = storage::Loader(mode, {}, baseline_opts)
                       .Load(w.docs, w.name)
                       .MoveValueOrDie();
    benchmark::DoNotOptimize(baseline_rel);
  });
  m.ondemand_wall = TimeBest([&] {
    ondemand_rel = storage::Loader(mode, {}, ondemand_opts)
                       .Load(w.docs, w.name)
                       .MoveValueOrDie();
    benchmark::DoNotOptimize(ondemand_rel);
  });

  std::vector<uint8_t> a, b;
  m.identical = storage::SerializeRelation(*baseline_rel, &a).ok() &&
                storage::SerializeRelation(*ondemand_rel, &b).ok() && a == b;
  return m;
}

}  // namespace

int main(int argc, char** argv) {
  BenchObs obs(&argc, argv);

  std::string json_path;
  for (int i = 1; i < argc; i++) {
    std::string_view arg = argv[i];
    if (arg == "--load-json" || arg.rfind("--load-json=", 0) == 0) {
      size_t eq = arg.find('=');
      if (eq != std::string_view::npos) {
        json_path = std::string(arg.substr(eq + 1));
      } else if (i + 1 < argc) {
        json_path = argv[++i];
      } else {
        std::fprintf(stderr, "missing path after --load-json\n");
        return 2;
      }
    }
  }
  // Fail before the run, not after (same contract as --metrics-json).
  if (!json_path.empty()) {
    std::FILE* f = std::fopen(json_path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
      return 2;
    }
    std::fclose(f);
  }

  std::vector<Workload> workloads;
  {
    workload::TpchOptions options;
    options.scale_factor = TpchScaleFactor();
    workloads.push_back({"TPC-H", workload::GenerateTpch(options).combined});
  }
  {
    workload::YelpOptions options;
    options.num_business = YelpBusinesses();
    workloads.push_back({"Yelp", workload::GenerateYelp(options)});
  }
  {
    workload::TwitterOptions options;
    options.num_tweets = TwitterTweets();
    workloads.push_back({"Twitter", workload::GenerateTwitter(options)});
  }
  {
    Workload corpus{"simdjson", {}};
    for (auto& file : workload::GenerateSimdJsonCorpus()) {
      corpus.docs.push_back(std::move(file.json));
    }
    workloads.push_back(std::move(corpus));
  }

  std::printf("stage-1 tier: %s\n", json::StructuralIndexIsa());

  bool ok = true;
  // One measurement pass per storage mode: kJsonb isolates the parse path,
  // kTiles adds mining/extraction fed by the direct-ingest directories.
  auto run_mode = [&](storage::StorageMode mode, const char* title,
                      std::string* out_json) -> double {
    TablePrinter table(title);
    table.SetHeader({"Workload", "Docs", "MB", "Base Kdocs/s",
                     "Ondemand Kdocs/s", "Speedup", "Identical"});
    std::vector<double> speedups;
    for (const auto& w : workloads) {
      Measurement m = MeasureLoad(w, mode);
      ok = ok && m.identical;
      size_t bytes = 0;
      for (const auto& d : w.docs) bytes += d.size();
      const double docs = static_cast<double>(w.docs.size());
      const double base_rate = docs / m.baseline_wall;
      const double od_rate = docs / m.ondemand_wall;
      const double speedup = m.baseline_wall / m.ondemand_wall;
      speedups.push_back(speedup);
      table.AddRow({w.name, std::to_string(w.docs.size()),
                    Fmt(static_cast<double>(bytes) / 1e6, "%.1f"),
                    Fmt(base_rate / 1000.0, "%.1f"),
                    Fmt(od_rate / 1000.0, "%.1f"), Fmt(speedup, "%.2fx"),
                    m.identical ? "yes" : "NO"});
      if (!out_json->empty()) *out_json += ",\n";
      *out_json +=
          "    {\"name\": \"" + w.name +
          "\", \"docs\": " + std::to_string(w.docs.size()) +
          ", \"bytes\": " + std::to_string(bytes) +
          ", \"baseline_docs_per_sec\": " + Fmt(base_rate, "%.1f") +
          ", \"ondemand_docs_per_sec\": " + Fmt(od_rate, "%.1f") +
          ", \"speedup\": " + Fmt(speedup, "%.3f") +
          ", \"identical\": " + (m.identical ? "true" : "false") + "}";
    }
    table.Print();
    return GeoMean(speedups);
  };

  std::string workloads_json;
  const double geomean =
      run_mode(storage::StorageMode::kJsonb,
               "Single-thread load: streaming parser vs on-demand",
               &workloads_json);
  std::printf("geomean speedup: %.2fx\n", geomean);

  std::string tiles_json;
  const double tiles_geomean =
      run_mode(storage::StorageMode::kTiles,
               "Single-thread Tiles load: streaming parser vs direct ingest",
               &tiles_json);
  std::printf("tiles geomean speedup: %.2fx\n", tiles_geomean);

  std::string json = "{\n  \"isa\": \"" +
                     std::string(json::StructuralIndexIsa()) +
                     "\",\n  \"workloads\": [\n" + workloads_json +
                     "\n  ],\n  \"geomean_speedup\": " + Fmt(geomean, "%.3f") +
                     ",\n  \"tiles_workloads\": [\n" + tiles_json +
                     "\n  ],\n  \"tiles_geomean_speedup\": " +
                     Fmt(tiles_geomean, "%.3f") +
                     ",\n  \"ok\": " + std::string(ok ? "true" : "false") +
                     "\n}\n";
  if (!json_path.empty()) {
    std::FILE* f = std::fopen(json_path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
      return 2;
    }
    std::fwrite(json.data(), 1, json.size(), f);
    std::fclose(f);
    std::printf("load summary written to %s\n", json_path.c_str());
  }
  std::printf("parse-path identity: %s\n", ok ? "PASS" : "FAIL");
  return ok ? 0 : 1;
}
