// Sharded storage benchmark (DESIGN.md §10):
//   1. shard-parallel loading — shard-count sweep at a fixed thread count,
//      wall seconds and tuples/sec per point, speedup of 4 shards over the
//      1-shard serial baseline (the §3.2 partition-parallelism claim applied
//      to shards instead of input chunks)
//   2. routing-key equality pruning — a hash-routed relation answers a
//      selective point query touching one shard; the other shards are pruned
//      before any tile is inspected, and the answer matches the unsharded run
//
//   --shard-json <path>   write the summary as JSON (CI uploads it)
//
// Exits non-zero when the pruned sharded answer diverges from the unsharded
// baseline or pruning fails to drop at least half the shards — the binary
// doubles as the CI shard-pruning gate. The load speedup is reported but not
// gated here (CI applies a lenient bar; shared runners are noisy).

#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdlib>
#include <string>
#include <string_view>
#include <vector>

#include "bench_common.h"
#include "sql/sql_parser.h"
#include "storage/shard.h"
#include "workload/tpch.h"

namespace {

using namespace jsontiles;         // NOLINT
using namespace jsontiles::bench;  // NOLINT

constexpr size_t kLoadThreads = 4;
constexpr size_t kPruneShards = 8;

double LoadWall(const std::vector<std::string>& docs, size_t shards,
                size_t threads) {
  storage::LoadOptions load_options;
  load_options.num_threads = threads;
  load_options.ondemand = OndemandEnv();
  storage::ShardOptions shard_options;
  shard_options.shard_count = shards;
  return TimeBest([&] {
    auto rel = storage::ShardedRelation::Load(docs, "tpch",
                                              storage::StorageMode::kTiles, {},
                                              load_options, shard_options)
                   .MoveValueOrDie();
    benchmark::DoNotOptimize(rel);
  });
}

}  // namespace

int main(int argc, char** argv) {
  BenchObs obs(&argc, argv);

  std::string json_path;
  for (int i = 1; i < argc; i++) {
    std::string_view arg = argv[i];
    if (arg == "--shard-json" || arg.rfind("--shard-json=", 0) == 0) {
      size_t eq = arg.find('=');
      if (eq != std::string_view::npos) {
        json_path = std::string(arg.substr(eq + 1));
      } else if (i + 1 < argc) {
        json_path = argv[++i];
      } else {
        std::fprintf(stderr, "missing path after --shard-json\n");
        return 2;
      }
    }
  }
  // Fail before the run, not after (same contract as --metrics-json).
  if (!json_path.empty()) {
    std::FILE* f = std::fopen(json_path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
      return 2;
    }
    std::fclose(f);
  }

  workload::TpchOptions tpch_options;
  tpch_options.scale_factor = TpchScaleFactor();
  auto docs = workload::GenerateTpch(tpch_options).combined;
  std::printf("tuples=%zu threads=%zu\n", docs.size(), kLoadThreads);

  // ---- 1. Shard-parallel loading sweep. -----------------------------------
  TablePrinter load_table("Shard-parallel loading (kTiles) [s]");
  load_table.SetHeader({"Shards", "Threads", "Wall", "Ktuples/s", "Speedup"});
  std::string load_json;
  double base_wall = 0;
  double wall_4shard = 0;
  for (size_t shards : {size_t{1}, size_t{2}, size_t{4}, size_t{8}}) {
    // One thread cannot overlap shard loads, so the 1-shard point is the
    // serial baseline no matter the pool size.
    double wall = LoadWall(docs, shards, kLoadThreads);
    if (shards == 1) base_wall = wall;
    if (shards == 4) wall_4shard = wall;
    double rate = static_cast<double>(docs.size()) / wall;
    load_table.AddRow({std::to_string(shards), std::to_string(kLoadThreads),
                       Fmt(wall), Fmt(rate / 1000.0, "%.0f"),
                       Fmt(base_wall / wall, "%.2fx")});
    if (!load_json.empty()) load_json += ",\n";
    load_json += "    {\"shards\": " + std::to_string(shards) +
                 ", \"threads\": " + std::to_string(kLoadThreads) +
                 ", \"wall_secs\": " + Fmt(wall, "%.6f") +
                 ", \"tuples_per_sec\": " + Fmt(rate, "%.0f") + "}";
  }
  load_table.Print();
  const double speedup_4shard = base_wall / wall_4shard;
  std::printf("4-shard/4-thread speedup over 1-shard: %.2fx\n", speedup_4shard);

  // ---- 2. Routing-key equality pruning. -----------------------------------
  // Hash-route on l_orderkey: every lineitem doc with one order key lives in
  // exactly one shard (docs without the path spread by position, but an
  // equality never matches them). The point query must scan one shard and
  // return the unsharded answer.
  storage::LoadOptions load_options;
  load_options.num_threads = kLoadThreads;
  load_options.ondemand = OndemandEnv();
  storage::ShardOptions shard_options;
  shard_options.shard_count = kPruneShards;
  shard_options.routing = storage::ShardRouting::kHashKey;
  shard_options.routing_keys = {"l_orderkey"};
  auto sharded = storage::ShardedRelation::Load(
                     docs, "tpch", storage::StorageMode::kTiles, {},
                     load_options, shard_options)
                     .MoveValueOrDie();
  storage::Loader loader(storage::StorageMode::kTiles, {}, load_options);
  auto plain = loader.Load(docs, "tpch").MoveValueOrDie();

  const std::string statement =
      "SELECT COUNT(*), SUM(l->>'l_quantity'::BigInt) FROM tpch l "
      "WHERE l->>'l_orderkey'::BigInt = 1";
  sql::SqlCatalog plain_catalog;
  plain_catalog.tables["tpch"] = plain.get();
  sql::SqlCatalog sharded_catalog;
  sharded_catalog.sharded_tables["tpch"] = sharded.get();
  exec::QueryContext plain_ctx;
  exec::QueryContext sharded_ctx;
  auto plain_result = sql::ExecuteSql(statement, plain_catalog, plain_ctx);
  auto sharded_result =
      sql::ExecuteSql(statement, sharded_catalog, sharded_ctx);
  if (!plain_result.ok() || !sharded_result.ok()) {
    std::fprintf(stderr, "FAIL: prune query errored\n");
    return 1;
  }
  auto render = [](const sql::SqlResult& r) {
    std::string out;
    for (const auto& row : r.rows) {
      for (const auto& v : row) out += v.ToString() + "|";
    }
    return out;
  };
  const bool identical =
      render(plain_result.ValueOrDie()) == render(sharded_result.ValueOrDie());
  const size_t scanned = sharded_ctx.shards_scanned;
  const size_t pruned = sharded_ctx.shards_pruned;

  TablePrinter prune_table("Routing-key pruning (8 shards, point query)");
  prune_table.SetHeader({"Scanned", "Pruned", "Identical"});
  prune_table.AddRow({std::to_string(scanned), std::to_string(pruned),
                      identical ? "yes" : "NO"});
  prune_table.Print();

  bool ok = true;
  if (!identical) {
    std::fprintf(stderr, "FAIL: pruned sharded answer differs from plain\n");
    ok = false;
  }
  if (pruned < kPruneShards / 2) {
    std::fprintf(stderr, "FAIL: pruned %zu of %zu shards (< half)\n", pruned,
                 kPruneShards);
    ok = false;
  }

  std::string json =
      "{\n  \"tuples\": " + std::to_string(docs.size()) +
      ",\n  \"load\": [\n" + load_json + "\n  ],\n  \"speedup_4shard\": " +
      Fmt(speedup_4shard, "%.3f") +
      ",\n  \"prune\": {\"shards_scanned\": " + std::to_string(scanned) +
      ", \"shards_pruned\": " + std::to_string(pruned) +
      ", \"identical\": " + (identical ? "true" : "false") +
      "},\n  \"ok\": " + std::string(ok ? "true" : "false") + "\n}\n";
  if (!json_path.empty()) {
    std::FILE* f = std::fopen(json_path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
      return 2;
    }
    std::fwrite(json.data(), 1, json.size(), f);
    std::fclose(f);
    std::printf("shard summary written to %s\n", json_path.c_str());
  }
  std::printf("shard pruning correctness: %s\n", ok ? "PASS" : "FAIL");
  return ok ? 0 : 1;
}
