// Distributed shard execution benchmark (DESIGN.md §13): worker-count sweep
// over the Fig-14 workloads. TPC-H and Yelp are loaded sharded (4 shards),
// saved, reopened from their manifests, and the full query set runs three
// ways: locally (no cluster) and on clusters of {1, 2, 4} worker processes.
// Every distributed answer must be bit-identical to the local one — the
// binary doubles as a correctness gate — and the summary reports wall
// seconds per worker count plus the 4-worker speedup over 1 worker.
//
//   --dist-json <path>   write the summary as JSON (CI uploads it)
//   --chaos              seeded crash pass (DESIGN.md §14): every initial
//                        worker armed with dist.worker_crash_frame at a
//                        seeded frame boundary; reports recovery counters
//                        + latency and gates on bit-identity under crashes
//
// Speedup expectations are machine-dependent: on a multi-core host the
// 4-worker point should approach the shard-parallel ideal, on a 1-core CI
// runner it measures pure exchange overhead (documented, not gated).

#include <cstdio>
#include <cstdlib>
#include <random>
#include <string>
#include <string_view>
#include <vector>

#include "bench_common.h"
#include "dist/cluster.h"
#include "storage/shard.h"
#include "util/failpoint.h"
#include "workload/tpch.h"
#include "workload/tpch_queries.h"
#include "workload/yelp.h"

#ifndef JSONTILES_WORKERD_PATH
#error "bench_dist requires the JSONTILES_WORKERD_PATH compile definition"
#endif

namespace {

using namespace jsontiles;         // NOLINT
using namespace jsontiles::bench;  // NOLINT

constexpr size_t kShards = 4;

std::string Canonical(const exec::RowSet& rows) {
  std::string out;
  for (const auto& row : rows) {
    for (const auto& v : row) {
      out += v.is_null() ? "∅" : v.ToString();
      out += "|";
    }
    out += "\n";
  }
  return out;
}

struct Workload {
  const char* name;
  std::unique_ptr<storage::ShardedRelation> sharded;
  std::string manifest_path;
  int num_queries = 0;
  std::vector<std::string> baseline;  // local answers, by query index
};

exec::RowSet RunQuery(const Workload& w, int query, exec::QueryContext& ctx) {
  if (std::string_view(w.name) == "tpch") {
    return workload::RunTpchQuery(query, *w.sharded, ctx);
  }
  return workload::RunYelpQuery(query, *w.sharded, ctx);
}

}  // namespace

int main(int argc, char** argv) {
  BenchObs obs(&argc, argv);

  std::string json_path;
  bool chaos = false;
  for (int i = 1; i < argc; i++) {
    std::string_view arg = argv[i];
    if (arg == "--chaos") {
      chaos = true;
    } else if (arg == "--dist-json" || arg.rfind("--dist-json=", 0) == 0) {
      size_t eq = arg.find('=');
      if (eq != std::string_view::npos) {
        json_path = std::string(arg.substr(eq + 1));
      } else if (i + 1 < argc) {
        json_path = argv[++i];
      } else {
        std::fprintf(stderr, "missing path after --dist-json\n");
        return 2;
      }
    }
  }
  if (!json_path.empty()) {
    std::FILE* f = std::fopen(json_path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
      return 2;
    }
    std::fclose(f);
  }

  // ---- Load, save, reopen both workloads. ---------------------------------
  const char* tmpdir_env = std::getenv("TMPDIR");
  const std::string dir =
      (tmpdir_env != nullptr && tmpdir_env[0] != '\0') ? tmpdir_env : "/tmp";
  storage::LoadOptions load_options;
  load_options.num_threads = 4;
  load_options.ondemand = OndemandEnv();
  storage::ShardOptions shard_options;
  shard_options.shard_count = kShards;

  workload::TpchOptions tpch_options;
  tpch_options.scale_factor = TpchScaleFactor();
  auto tpch_docs = workload::GenerateTpch(tpch_options).combined;
  workload::YelpOptions yelp_options;
  yelp_options.num_business = YelpBusinesses();
  auto yelp_docs = workload::GenerateYelp(yelp_options);

  Workload workloads[2];
  workloads[0].name = "tpch";
  workloads[0].num_queries = 22;
  workloads[1].name = "yelp";
  workloads[1].num_queries = 5;
  const std::vector<std::string>* docs[2] = {&tpch_docs, &yelp_docs};
  for (int w = 0; w < 2; w++) {
    auto loaded = storage::ShardedRelation::Load(
        *docs[w], workloads[w].name, storage::StorageMode::kTiles, {},
        load_options, shard_options);
    if (!loaded.ok()) {
      std::fprintf(stderr, "load %s: %s\n", workloads[w].name,
                   loaded.status().ToString().c_str());
      return 1;
    }
    auto sharded = loaded.MoveValueOrDie();
    Status st = storage::SaveSharded(*sharded, dir);
    if (!st.ok()) {
      std::fprintf(stderr, "save %s: %s\n", workloads[w].name,
                   st.ToString().c_str());
      return 1;
    }
    workloads[w].manifest_path =
        storage::ShardManifestPath(dir, workloads[w].name);
    auto reopened = storage::OpenSharded(workloads[w].manifest_path);
    if (!reopened.ok()) {
      std::fprintf(stderr, "open %s: %s\n", workloads[w].name,
                   reopened.status().ToString().c_str());
      return 1;
    }
    workloads[w].sharded = reopened.MoveValueOrDie();
  }
  std::printf("tpch tuples=%zu yelp tuples=%zu shards=%zu\n",
              tpch_docs.size(), yelp_docs.size(), kShards);

  // ---- Local baseline: answers + wall over the whole query set. -----------
  double local_wall = 0;
  for (Workload& w : workloads) {
    for (int q = 1; q <= w.num_queries; q++) {
      exec::QueryContext ctx;
      w.baseline.push_back(Canonical(RunQuery(w, q, ctx)));
    }
  }
  local_wall = TimeBest([&] {
    for (Workload& w : workloads) {
      for (int q = 1; q <= w.num_queries; q++) {
        exec::QueryContext ctx;
        auto rows = RunQuery(w, q, ctx);
        if (rows.size() > (1u << 30)) std::abort();  // keep it observable
      }
    }
  });

  // ---- Worker-count sweep. ------------------------------------------------
  TablePrinter table("Distributed Fig-14 sweep (kTiles, 4 shards) [s]");
  table.SetHeader({"Workers", "Wall", "vs local", "Identical"});
  table.AddRow({"local", Fmt(local_wall), "1.00x", "yes"});
  std::string sweep_json;
  bool all_identical = true;
  double wall_w1 = 0, wall_w4 = 0;
  for (size_t workers : {size_t{1}, size_t{2}, size_t{4}}) {
    dist::ClusterOptions cluster_options;
    cluster_options.num_workers = workers;
    cluster_options.workerd_path = JSONTILES_WORKERD_PATH;
    std::vector<std::unique_ptr<dist::Cluster>> clusters;
    bool identical = true;
    for (Workload& w : workloads) {
      auto cluster = dist::Cluster::Start(w.manifest_path, w.sharded.get(),
                                          cluster_options);
      if (!cluster.ok()) {
        std::fprintf(stderr, "cluster start (%s, %zu workers): %s\n", w.name,
                     workers, cluster.status().ToString().c_str());
        return 1;
      }
      clusters.push_back(cluster.MoveValueOrDie());
    }
    // Correctness pass: distributed answers must match the local baseline.
    for (int w = 0; w < 2; w++) {
      for (int q = 1; q <= workloads[w].num_queries; q++) {
        exec::QueryContext ctx;
        ctx.dist = clusters[w].get();
        const std::string got = Canonical(RunQuery(workloads[w], q, ctx));
        if (got != workloads[w].baseline[q - 1]) {
          std::fprintf(stderr, "FAIL: %s Q%d differs at %zu workers\n",
                       workloads[w].name, q, workers);
          identical = false;
        }
      }
    }
    double wall = TimeBest([&] {
      for (int w = 0; w < 2; w++) {
        for (int q = 1; q <= workloads[w].num_queries; q++) {
          exec::QueryContext ctx;
          ctx.dist = clusters[w].get();
          auto rows = RunQuery(workloads[w], q, ctx);
          if (rows.size() > (1u << 30)) std::abort();
        }
      }
    });
    if (workers == 1) wall_w1 = wall;
    if (workers == 4) wall_w4 = wall;
    all_identical = all_identical && identical;
    table.AddRow({std::to_string(workers), Fmt(wall),
                  Fmt(local_wall / wall, "%.2fx"), identical ? "yes" : "NO"});
    if (!sweep_json.empty()) sweep_json += ",\n";
    sweep_json += "    {\"workers\": " + std::to_string(workers) +
                  ", \"wall_secs\": " + Fmt(wall, "%.6f") +
                  ", \"speedup_vs_local\": " + Fmt(local_wall / wall, "%.3f") +
                  ", \"identical\": " + (identical ? "true" : "false") + "}";
  }
  table.Print();
  const double speedup_4w = wall_w1 / wall_w4;
  std::printf("4-worker speedup over 1 worker: %.2fx\n", speedup_4w);

  // ---- Chaos pass (--chaos): seeded worker crashes mid-stream. ------------
  // Every initial worker is armed to SIGKILL itself at a seeded result-frame
  // boundary (dist.worker_crash_frame=nth:N, N ∈ [1,5]); respawned workers
  // are healthy. The full query set must stay bit-identical to the local
  // baseline while the coordinator recovers, and the recovery cost is
  // reported: retries, respawns, and total recovery latency (wall time from
  // fault detection through respawn and re-dispatch).
  std::string chaos_json;
  bool chaos_ok = true;
  if (chaos) {
#if !JSONTILES_FAILPOINTS_AVAILABLE
    std::fprintf(stderr,
                 "--chaos requires a build with JSONTILES_FAILPOINTS=ON\n");
    return 2;
#else
    constexpr size_t kChaosWorkers = 2;
    constexpr uint32_t kChaosSeed = 42;
    std::mt19937 rng(kChaosSeed);
    std::uniform_int_distribution<int> frame(1, 5);
    dist::ClusterOptions chaos_options;
    chaos_options.num_workers = kChaosWorkers;
    chaos_options.workerd_path = JSONTILES_WORKERD_PATH;
    chaos_options.per_worker_failpoints.resize(kChaosWorkers);
    exec::ExecOptions retry_options;
    retry_options.dist_retry.respawn_backoff_ms = 1;
    retry_options.dist_retry.respawn_backoff_cap_ms = 10;

    uint64_t retried = 0, respawned = 0, stale = 0, recovery_nanos = 0;
    double chaos_wall = 0;
    for (Workload& w : workloads) {
      for (size_t i = 0; i < kChaosWorkers; i++) {
        chaos_options.per_worker_failpoints[i] = {
            "dist.worker_crash_frame=nth:" + std::to_string(frame(rng))};
      }
      auto cluster = dist::Cluster::Start(w.manifest_path, w.sharded.get(),
                                          chaos_options);
      if (!cluster.ok()) {
        std::fprintf(stderr, "chaos cluster start (%s): %s\n", w.name,
                     cluster.status().ToString().c_str());
        return 1;
      }
      auto c = cluster.MoveValueOrDie();
      // Single timed pass: the armed crashes fire once per worker lifetime,
      // so a best-of-n repeat would time the crash-free re-runs instead.
      chaos_wall += TimeOnce([&] {
        for (int q = 1; q <= w.num_queries; q++) {
          exec::QueryContext ctx(retry_options);
          ctx.dist = c.get();
          const std::string got = Canonical(RunQuery(w, q, ctx));
          if (got != w.baseline[q - 1]) {
            std::fprintf(stderr, "CHAOS FAIL: %s Q%d differs under crashes\n",
                         w.name, q);
            chaos_ok = false;
          }
        }
      });
      if (c->fragments_retried() == 0) {
        std::fprintf(stderr,
                     "CHAOS FAIL: %s saw no retried fragments (crashes did "
                     "not fire?)\n",
                     w.name);
        chaos_ok = false;
      }
      retried += c->fragments_retried();
      respawned += c->workers_respawned();
      stale += c->frames_rejected_stale();
      recovery_nanos += c->recovery_nanos();
    }
    const double recovery_secs = static_cast<double>(recovery_nanos) * 1e-9;
    std::printf(
        "chaos (%zu workers, seed %u): wall=%ss retried=%llu respawned=%llu "
        "stale_frames=%llu recovery=%ss identical=%s\n",
        kChaosWorkers, kChaosSeed, Fmt(chaos_wall).c_str(),
        static_cast<unsigned long long>(retried),
        static_cast<unsigned long long>(respawned),
        static_cast<unsigned long long>(stale), Fmt(recovery_secs).c_str(),
        chaos_ok ? "yes" : "NO");
    chaos_json =
        "{\"workers\": " + std::to_string(kChaosWorkers) +
        ", \"seed\": " + std::to_string(kChaosSeed) +
        ", \"wall_secs\": " + Fmt(chaos_wall, "%.6f") +
        ", \"fragments_retried\": " + std::to_string(retried) +
        ", \"workers_respawned\": " + std::to_string(respawned) +
        ", \"frames_rejected_stale\": " + std::to_string(stale) +
        ", \"recovery_latency_secs\": " + Fmt(recovery_secs, "%.6f") +
        ", \"identical\": " + (chaos_ok ? "true" : "false") + "}";
#endif  // JSONTILES_FAILPOINTS_AVAILABLE
  }

  // Cleanup shard files.
  for (const Workload& w : workloads) {
    for (size_t s = 0; s < kShards; s++) {
      std::remove((dir + "/" + w.name + ".shard-" + std::to_string(s) +
                   ".jtrl")
                      .c_str());
    }
    std::remove(w.manifest_path.c_str());
  }

  std::string json =
      "{\n  \"tpch_tuples\": " + std::to_string(tpch_docs.size()) +
      ",\n  \"yelp_tuples\": " + std::to_string(yelp_docs.size()) +
      ",\n  \"shards\": " + std::to_string(kShards) +
      ",\n  \"local_wall_secs\": " + Fmt(local_wall, "%.6f") +
      ",\n  \"sweep\": [\n" + sweep_json + "\n  ],\n  \"speedup_4worker\": " +
      Fmt(speedup_4w, "%.3f") +
      ",\n  \"chaos\": " + (chaos_json.empty() ? "null" : chaos_json) +
      ",\n  \"ok\": " +
      std::string(all_identical && chaos_ok ? "true" : "false") + "\n}\n";
  if (!json_path.empty()) {
    std::FILE* f = std::fopen(json_path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
      return 2;
    }
    std::fwrite(json.data(), 1, json.size(), f);
    std::fclose(f);
    std::printf("dist summary written to %s\n", json_path.c_str());
  }
  std::printf("distributed differential: %s\n",
              all_identical && chaos_ok ? "PASS" : "FAIL");
  return all_identical && chaos_ok ? 0 : 1;
}
