// Reproduces paper Table 6: storage consumption in MB for the JSON text, the
// binary JSONB, the additionally-materialized JSON tiles, and LZ4-compressed
// tiles (columnar chunks compress well because values of one key path are
// contiguous).

#include <benchmark/benchmark.h>

#include "bench_common.h"
#include "util/lz4.h"
#include "workload/tpch.h"
#include "workload/twitter.h"
#include "workload/yelp.h"

namespace {

using namespace jsontiles;         // NOLINT
using namespace jsontiles::bench;  // NOLINT

size_t CompressedTileBytes(const storage::Relation& rel) {
  size_t total = 0;
  for (const auto& tile : rel.tiles()) {
    for (const auto& col : tile.columns) {
      const auto& c = col.column;
      if (!c.i64_data().empty()) {
        const auto* p = reinterpret_cast<const uint8_t*>(c.i64_data().data());
        total += lz4::Compress(p, c.i64_data().size() * sizeof(int64_t)).size();
      }
      if (!c.f64_data().empty()) {
        const auto* p = reinterpret_cast<const uint8_t*>(c.f64_data().data());
        total += lz4::Compress(p, c.f64_data().size() * sizeof(double)).size();
      }
      if (!c.string_heap().empty()) {
        const auto* p =
            reinterpret_cast<const uint8_t*>(c.string_heap().data());
        total += lz4::Compress(p, c.string_heap().size()).size();
        total += c.size() * sizeof(uint32_t) / 2;  // offsets compress ~2x
      }
    }
  }
  return total;
}

double Mb(size_t bytes) { return static_cast<double>(bytes) / (1024.0 * 1024.0); }

}  // namespace

int main(int argc, char** argv) {
  BenchObs obs(&argc, argv);
  benchmark::Initialize(&argc, argv);

  struct Workload {
    std::string name;
    std::vector<std::string> docs;
  };
  std::vector<Workload> workloads;
  {
    workload::TpchOptions options;
    options.scale_factor = TpchScaleFactor();
    workloads.push_back({"TPC-H", workload::GenerateTpch(options).combined});
  }
  {
    workload::YelpOptions options;
    options.num_business = YelpBusinesses();
    workloads.push_back({"Yelp", workload::GenerateYelp(options)});
  }
  {
    workload::TwitterOptions options;
    options.num_tweets = TwitterTweets();
    workloads.push_back({"Twitter", workload::GenerateTwitter(options)});
  }

  TablePrinter table("Table 6: storage size in MB (tiles as % of JSONB)");
  table.SetHeader({"Workload", "JSON", "JSONB", "+Tiles", "+LZ4-Tiles"});
  storage::LoadOptions load_options;
  load_options.num_threads = BenchThreads();
  for (const auto& w : workloads) {
    size_t json_bytes = 0;
    for (const auto& d : w.docs) json_bytes += d.size();

    storage::Loader jsonb_loader(storage::StorageMode::kJsonb, {}, load_options);
    auto jsonb_rel = jsonb_loader.Load(w.docs, w.name).MoveValueOrDie();
    size_t jsonb_bytes = jsonb_rel->DocumentBytes();

    storage::Loader tiles_loader(storage::StorageMode::kTiles, {}, load_options);
    auto tiles_rel = tiles_loader.Load(w.docs, w.name).MoveValueOrDie();
    size_t tile_bytes = tiles_rel->TileBytes();
    size_t lz4_bytes = CompressedTileBytes(*tiles_rel);

    auto pct = [&](size_t b) {
      return Fmt(Mb(b), "%.1f") + " (" +
             Fmt(100.0 * static_cast<double>(b) / static_cast<double>(jsonb_bytes),
                 "%.0f%%") +
             ")";
    };
    table.AddRow({w.name, Fmt(Mb(json_bytes), "%.1f"), Fmt(Mb(jsonb_bytes), "%.1f"),
                  pct(tile_bytes), pct(lz4_bytes)});
  }
  table.Print();
  return 0;
}
