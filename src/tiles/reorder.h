// Tuple reordering across the tiles of a partition (paper §3.2, Figure 4).
//
// Documents of different types interleaved in insertion order would leave
// every tile below the extraction threshold. Reordering mines itemsets per
// tile with a reduced threshold, exchanges them within the partition, matches
// every tuple to the itemset that describes it best, and redistributes the
// tuples so each surviving itemset is clustered into as few tiles as
// possible — after which the original threshold succeeds again.

#ifndef JSONTILES_TILES_REORDER_H_
#define JSONTILES_TILES_REORDER_H_

#include <cstdint>
#include <vector>

#include "json/jsonb.h"
#include "tiles/tile_builder.h"
#include "tiles/tile_config.h"

namespace jsontiles::tiles {

struct ReorderResult {
  /// permutation[new_position] = original document index. Identity when
  /// reordering found nothing to improve.
  std::vector<uint32_t> permutation;
  /// Itemsets that survived the partition-wide exchange (step 2).
  size_t surviving_itemsets = 0;
  /// Tuples whose tile assignment changed (the swaps of step 5).
  size_t moved_tuples = 0;
};

/// Reorder the documents of one partition (`items.transactions` is parallel
/// to the partition's documents). The partition holds up to
/// `config.partition_size` tiles of `config.tile_size` tuples each.
ReorderResult ReorderPartition(const DocumentItems& items,
                               const TileConfig& config);

}  // namespace jsontiles::tiles

#endif  // JSONTILES_TILES_REORDER_H_
