// Query-optimizer statistics collected during tile construction (paper §4.6).
//
// Each tile stores the frequency of every (key path, type) item — this is the
// itemset-mining dictionary, reused as statistics — plus a HyperLogLog sketch
// per extracted column, sampled while values are materialized. Tile-local
// statistics are aggregated into relation-level statistics with a bounded
// number of slots: 256 frequency counters and 64 HLL sketches, replaced by
// (most recent tile, lowest frequency) when full, so the most frequent keys
// always survive.

#ifndef JSONTILES_TILES_STATS_H_
#define JSONTILES_TILES_STATS_H_

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "util/hyperloglog.h"

namespace jsontiles::tiles {

/// Per-tile statistics, stored in the tile header.
struct TileStats {
  /// (encoded path, type) -> number of tuples in the tile containing it.
  /// Key is the encoded path with the type byte appended (the mining
  /// dictionary key).
  std::vector<std::pair<std::string, uint32_t>> path_frequencies;

  /// Distinct-value sketches for the extracted columns, parallel to the
  /// tile's column vector.
  std::vector<HyperLogLog> column_sketches;
};

/// Relation-level aggregation of tile statistics.
class RelationStats {
 public:
  static constexpr size_t kMaxFrequencyCounters = 256;
  static constexpr size_t kMaxSketches = 64;

  /// Fold one tile's statistics in. `extracted_paths` are the dictionary
  /// keys of the tile's extracted columns (parallel to column_sketches).
  void MergeTile(uint32_t tile_number, const TileStats& stats,
                 const std::vector<std::string>& extracted_paths);

  /// §4.6: cardinality (number of tuples containing the key). When the key
  /// has no counter, the smallest retrieved counter is used as the estimate.
  uint64_t EstimateKeyCardinality(std::string_view dict_key) const;

  /// Distinct values of a key path's column; nullopt when no sketch exists.
  std::optional<double> EstimateDistinct(std::string_view dict_key) const;

  /// Like EstimateKeyCardinality, but summing over all value types of the
  /// path (the optimizer does not know the stored JSON type of an access).
  uint64_t EstimateKeyCardinalityAnyType(std::string_view encoded_path) const;

  /// Largest distinct-count sketch over any type of the path.
  std::optional<double> EstimateDistinctAnyType(
      std::string_view encoded_path) const;

  /// Total tuples folded in so far.
  uint64_t total_tuples() const { return total_tuples_; }
  void AddTuples(uint64_t n) { total_tuples_ += n; }

  size_t num_counters() const { return counters_.size(); }
  size_t num_sketches() const { return sketches_.size(); }

  struct Counter {
    std::string key;
    uint64_t count = 0;
    uint32_t last_tile = 0;
  };
  struct Sketch {
    std::string key;
    HyperLogLog hll;
    uint32_t last_tile = 0;
    uint64_t weight = 0;  // frequency of the path; used for replacement
  };

  /// Serialization support.
  const std::vector<Counter>& counters() const { return counters_; }
  const std::vector<Sketch>& sketches() const { return sketches_; }
  void Restore(std::vector<Counter> counters, std::vector<Sketch> sketches,
               uint64_t total_tuples) {
    counters_ = std::move(counters);
    sketches_ = std::move(sketches);
    total_tuples_ = total_tuples;
  }

 private:

  std::vector<Counter> counters_;
  std::vector<Sketch> sketches_;
  uint64_t total_tuples_ = 0;
};

/// Dictionary key for a (path, type) pair: encoded path + one type byte.
inline std::string MakeDictKey(std::string_view encoded_path, uint8_t type) {
  std::string key(encoded_path);
  key.push_back(static_cast<char>(type));
  return key;
}
inline std::string_view DictKeyPath(std::string_view dict_key) {
  return dict_key.substr(0, dict_key.size() - 1);
}
inline uint8_t DictKeyType(std::string_view dict_key) {
  return static_cast<uint8_t>(dict_key.back());
}

}  // namespace jsontiles::tiles

#endif  // JSONTILES_TILES_STATS_H_
