// A JSON tile: a chunk of consecutive tuples with locally-extracted
// relational columns plus a header describing what was seen and materialized
// (paper §2.2, §3.1, §4.4).

#ifndef JSONTILES_TILES_TILE_H_
#define JSONTILES_TILES_TILE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "json/jsonb.h"
#include "tiles/column.h"
#include "tiles/stats.h"
#include "tiles/tile_config.h"
#include "util/bloom_filter.h"

namespace jsontiles::tiles {

struct ExtractedColumn {
  /// Encoded key path of the extracted values.
  std::string path;
  /// The JSON value type that was extracted for this path (§3.4: the most
  /// common type; other types stay in the binary JSON).
  json::JsonType source_type;
  /// Relational storage type of `column`.
  ColumnType storage_type;
  /// §4.4: whether this path also occurs with other value types in the tile
  /// (those tuples hold null here and are answered from the binary JSON).
  bool has_type_outliers = false;
  /// §4.4: whether null entries are possible (absent keys or outliers).
  bool nullable = false;
  /// §4.9: true when the source was a string column detected as date/time
  /// and materialized as SQL Timestamp.
  bool is_timestamp = false;
  Column column{ColumnType::kInt64};

  /// Zone map (extension of §4.8 skipping): min/max of the non-null values
  /// of Int64/Float64/Timestamp columns. Range predicates against constants
  /// can skip whole tiles. Only trustworthy when the path has no type
  /// outliers (outlier values live in the binary JSON, outside the map).
  bool has_minmax = false;
  int64_t min_i = 0, max_i = 0;  // Int64 / Timestamp
  double min_d = 0, max_d = 0;   // Float64
};

/// Header + materialized columns for `row_count` tuples starting at global
/// row `row_begin`. The tile does not own the binary JSON documents; the
/// relation does.
class Tile {
 public:
  Tile() : seen_paths_(64) {}

  size_t row_begin = 0;
  size_t row_count = 0;

  std::vector<ExtractedColumn> columns;
  TileStats stats;

  /// Column lookup by encoded path; nullptr when not materialized.
  const ExtractedColumn* FindColumn(std::string_view path) const;
  ExtractedColumn* FindColumn(std::string_view path);

  /// §4.8: false means *no* tuple in this tile contains the path, so a
  /// null-rejecting expression can skip the whole tile. Uses the extracted
  /// set first, then the bloom filter over non-extracted seen paths.
  bool MayContainPath(std::string_view path) const;

  /// Register a path seen but not extracted (bloom filter, §4.4). All
  /// prefixes are inserted as well so that queries against intermediate
  /// levels (e.g. array containment on `entities.hashtags`) do not skip
  /// tiles that contain the data under longer leaf paths.
  void AddSeenPath(std::string_view path);

  void BuildColumnIndex();

  /// Serialization support for the header bloom filter.
  const BloomFilter& seen_paths() const { return seen_paths_; }
  void RestoreSeenPaths(BloomFilter filter) { seen_paths_ = std::move(filter); }

  /// §4.7: outliers (updated documents that no longer overlap the extracted
  /// schema). Recomputation is advised once the majority of tuples mismatch.
  size_t outlier_count = 0;
  bool NeedsRecompute() const { return outlier_count * 2 > row_count; }

  /// Approximate memory of all materialized columns (Table 6).
  size_t ColumnMemoryBytes() const;

 private:
  std::unordered_map<std::string, size_t> column_index_;
  BloomFilter seen_paths_;
};

/// §4.7: apply an updated document to a row of a tile. Extracted columns are
/// updated in place; keys absent from the new document become null; new key
/// paths are added to the header bloom filter so scans do not skip the tile
/// incorrectly. Returns true when the update made the row an outlier (no
/// overlap with the extracted schema).
bool UpdateTileRow(Tile* tile, size_t row_in_tile, json::JsonbValue new_doc,
                   const TileConfig& config);

}  // namespace jsontiles::tiles

#endif  // JSONTILES_TILES_TILE_H_
