#include "tiles/column.h"

namespace jsontiles::tiles {

const char* ColumnTypeName(ColumnType type) {
  switch (type) {
    case ColumnType::kBool: return "Bool";
    case ColumnType::kInt64: return "BigInt";
    case ColumnType::kFloat64: return "Float";
    case ColumnType::kString: return "Text";
    case ColumnType::kTimestamp: return "Timestamp";
    case ColumnType::kNumeric: return "Numeric";
  }
  return "?";
}

void Column::AppendNull() {
  AppendValid(false);
  switch (type_) {
    case ColumnType::kBool:
    case ColumnType::kInt64:
    case ColumnType::kTimestamp:
      i64_.push_back(0);
      break;
    case ColumnType::kFloat64:
      f64_.push_back(0);
      break;
    case ColumnType::kNumeric:
      i64_.push_back(0);
      scales_.push_back(0);
      break;
    case ColumnType::kString:
      starts_.push_back(static_cast<uint32_t>(heap_.size()));
      lens_.push_back(0);
      break;
  }
}

void Column::AppendBool(bool v) {
  JSONTILES_DCHECK(type_ == ColumnType::kBool);
  AppendValid(true);
  i64_.push_back(v ? 1 : 0);
}

void Column::AppendInt(int64_t v) {
  JSONTILES_DCHECK(type_ == ColumnType::kInt64 || type_ == ColumnType::kBool ||
                   type_ == ColumnType::kTimestamp);
  AppendValid(true);
  i64_.push_back(v);
}

void Column::AppendFloat(double v) {
  JSONTILES_DCHECK(type_ == ColumnType::kFloat64);
  AppendValid(true);
  f64_.push_back(v);
}

void Column::AppendNumeric(Numeric v) {
  JSONTILES_DCHECK(type_ == ColumnType::kNumeric);
  AppendValid(true);
  i64_.push_back(v.unscaled);
  scales_.push_back(v.scale);
}

void Column::AppendString(std::string_view v) {
  JSONTILES_DCHECK(type_ == ColumnType::kString);
  AppendValid(true);
  starts_.push_back(static_cast<uint32_t>(heap_.size()));
  lens_.push_back(static_cast<uint32_t>(v.size()));
  AppendToHeap(v);
}

void Column::SetNull(size_t row) {
  if (valid_[row]) {
    valid_[row] = false;
    null_count_++;
  }
}

namespace {
inline void MarkValid(std::vector<bool>& valid, size_t row, size_t* null_count) {
  if (!valid[row]) {
    valid[row] = true;
    (*null_count)--;
  }
}
}  // namespace

void Column::SetBool(size_t row, bool v) {
  MarkValid(valid_, row, &null_count_);
  i64_[row] = v ? 1 : 0;
}

void Column::SetInt(size_t row, int64_t v) {
  MarkValid(valid_, row, &null_count_);
  i64_[row] = v;
}

void Column::SetFloat(size_t row, double v) {
  MarkValid(valid_, row, &null_count_);
  f64_[row] = v;
}

void Column::SetNumeric(size_t row, Numeric v) {
  MarkValid(valid_, row, &null_count_);
  i64_[row] = v.unscaled;
  scales_[row] = v.scale;
}

void Column::SetString(size_t row, std::string_view v) {
  MarkValid(valid_, row, &null_count_);
  starts_[row] = static_cast<uint32_t>(heap_.size());
  lens_[row] = static_cast<uint32_t>(v.size());
  AppendToHeap(v);
}

void Column::AppendToHeap(std::string_view v) {
  // `v` may view this column's own heap (e.g. copying a value from one row
  // to another, as GetString returns a view). A plain append would read `v`
  // after a reallocation freed its storage; rebase such views to an offset
  // and copy through the grown heap instead.
  const char* begin = heap_.data();
  if (v.data() >= begin && v.data() < begin + heap_.size()) {
    const size_t src = static_cast<size_t>(v.data() - begin);
    const size_t dst = heap_.size();
    heap_.resize(dst + v.size());  // may invalidate v
    std::memmove(heap_.data() + dst, heap_.data() + src, v.size());
    return;
  }
  heap_.append(v);
}

size_t Column::MemoryBytes() const {
  size_t bytes = valid_.size() / 8 + 1;
  bytes += i64_.size() * sizeof(int64_t);
  bytes += f64_.size() * sizeof(double);
  bytes += scales_.size();
  bytes += starts_.size() * sizeof(uint32_t) * 2;
  bytes += heap_.size();
  return bytes;
}

}  // namespace jsontiles::tiles
