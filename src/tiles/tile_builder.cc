#include "tiles/tile_builder.h"

#include <algorithm>
#include <bit>
#include <cmath>

#include "obs/obs.h"
#include "util/hash.h"
#include "util/logging.h"

namespace jsontiles::tiles {

ColumnType StorageTypeFor(json::JsonType type) {
  switch (type) {
    case json::JsonType::kBool: return ColumnType::kBool;
    case json::JsonType::kInt: return ColumnType::kInt64;
    case json::JsonType::kFloat: return ColumnType::kFloat64;
    case json::JsonType::kString: return ColumnType::kString;
    case json::JsonType::kNumericString: return ColumnType::kNumeric;
    default:
      JSONTILES_CHECK(false);  // containers and nulls are never materialized
  }
}

void DocumentItems::Collect(const std::vector<json::JsonbValue>& docs,
                            const TileConfig& config) {
  dict.clear();
  ids.clear();
  transactions.clear();
  item_counts.clear();
  transactions.reserve(docs.size());
  std::string key;  // reusable dict-key buffer (hot loop: no allocation)
  for (const auto& doc : docs) {
    mining::Transaction tx;
    ForEachKeyPath(doc, config, [&](std::string_view path, json::JsonType type) {
      key.assign(path);
      key.push_back(static_cast<char>(type));
      auto it = ids.find(std::string_view(key));
      if (it == ids.end()) {
        it = ids.emplace(key, static_cast<mining::Item>(dict.size())).first;
        dict.push_back(key);
        item_counts.push_back(0);
      }
      tx.push_back(it->second);
      item_counts[it->second]++;
    });
    transactions.push_back(std::move(tx));
  }
}

void DocumentItems::CollectFromIngest(const json::OndemandIngestPool& pool) {
  dict.clear();
  ids.clear();
  transactions.clear();
  item_counts.clear();
  transactions.reserve(pool.docs.size());
  std::string key;  // reusable dict-key buffer (hot loop: no allocation)
  for (const auto& doc : pool.docs) {
    mining::Transaction tx;
    tx.reserve(doc.leaf_end - doc.leaf_begin);
    for (uint64_t i = doc.leaf_begin; i < doc.leaf_end; i++) {
      const auto& leaf = pool.leaves[i];
      key.assign(pool.paths, doc.paths_begin + leaf.path_off, leaf.path_len);
      key.push_back(static_cast<char>(leaf.type));
      auto it = ids.find(std::string_view(key));
      if (it == ids.end()) {
        it = ids.emplace(key, static_cast<mining::Item>(dict.size())).first;
        dict.push_back(key);
        item_counts.push_back(0);
      }
      tx.push_back(it->second);
      item_counts[it->second]++;
    }
    transactions.push_back(std::move(tx));
  }
}

DocumentItems DocumentItems::Project(
    const std::vector<uint32_t>& doc_indices) const {
  DocumentItems out;
  out.dict = dict;
  out.ids = ids;
  out.item_counts.assign(dict.size(), 0);
  out.transactions.reserve(doc_indices.size());
  for (uint32_t i : doc_indices) {
    out.transactions.push_back(transactions[i]);
    for (mining::Item item : transactions[i]) out.item_counts[item]++;
  }
  return out;
}

std::vector<mining::Itemset> TileBuilder::MineItemsets(
    const DocumentItems& items, uint32_t min_support) const {
  mining::FpGrowthMiner miner;
  mining::MinerOptions options;
  options.min_support = min_support;
  options.budget = config_.itemset_budget;
  return miner.Mine(items.transactions, options);
}

Tile TileBuilder::Build(const std::vector<json::JsonbValue>& docs,
                        size_t row_begin) const {
  DocumentItems items;
  items.Collect(docs, config_);
  return BuildFromItems(docs, items, row_begin);
}

namespace {

uint64_t HashJsonbScalar(const json::JsonbValue& value) {
  switch (value.type()) {
    case json::JsonType::kBool: return HashInt(value.GetBool() ? 1 : 2);
    case json::JsonType::kInt: return HashInt(static_cast<uint64_t>(value.GetInt()));
    case json::JsonType::kFloat:
      return HashInt(std::bit_cast<uint64_t>(value.GetDouble()));
    case json::JsonType::kString: return HashString(value.GetString());
    case json::JsonType::kNumericString: {
      Numeric n = value.GetNumeric();
      return HashCombine(HashInt(static_cast<uint64_t>(n.unscaled)),
                         HashInt(n.scale));
    }
    default: return 0;
  }
}

}  // namespace

Tile TileBuilder::BuildFromItems(const std::vector<json::JsonbValue>& docs,
                                 const DocumentItems& items, size_t row_begin,
                                 const std::vector<mining::Itemset>* premined,
                                 const json::OndemandLeafRun* dirs) const {
  JSONTILES_CHECK(items.transactions.size() == docs.size());
  Tile tile;
  tile.row_begin = row_begin;
  tile.row_count = docs.size();

  // Per-tile statistics: the mining dictionary with frequencies (§4.6).
  // Zero-count entries (projection artifacts) carry no information.
  tile.stats.path_frequencies.reserve(items.dict.size());
  for (size_t i = 0; i < items.dict.size(); i++) {
    if (items.item_counts[i] == 0) continue;
    tile.stats.path_frequencies.emplace_back(items.dict[i], items.item_counts[i]);
  }

  if (docs.empty()) return tile;

  // §3.1 step 2: frequent itemset mining.
  uint32_t min_support = static_cast<uint32_t>(
      std::ceil(config_.extraction_threshold * static_cast<double>(docs.size())));
  if (min_support == 0) min_support = 1;
  std::vector<mining::Itemset> itemsets =
      premined != nullptr ? *premined : MineItemsets(items, min_support);

  // §3.1 step 3: extract the union of the (maximal) itemsets. For each key
  // path, the most common frequent type wins (§3.4); the rest stay binary.
  std::vector<bool> in_union(items.dict.size(), false);
  for (const auto& set : itemsets) {
    for (mining::Item item : set.items) in_union[item] = true;
  }
  struct Choice {
    mining::Item item;
    uint32_t count;
  };
  std::unordered_map<std::string, Choice> chosen;  // path -> best item
  for (size_t i = 0; i < items.dict.size(); i++) {
    if (!in_union[i]) continue;
    auto type = static_cast<json::JsonType>(DictKeyType(items.dict[i]));
    if (type == json::JsonType::kNull) continue;  // null is never a column
    std::string path(DictKeyPath(items.dict[i]));
    auto it = chosen.find(path);
    if (it == chosen.end() || items.item_counts[i] > it->second.count) {
      chosen[path] = Choice{static_cast<mining::Item>(i), items.item_counts[i]};
    }
  }

  // Deterministic column order: by path.
  std::vector<std::pair<std::string, Choice>> ordered(chosen.begin(), chosen.end());
  std::sort(ordered.begin(), ordered.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });

  // Which paths occur with more than one type (for the outlier flag)?
  std::unordered_map<std::string, int> types_per_path;
  for (size_t i = 0; i < items.dict.size(); i++) {
    types_per_path[std::string(DictKeyPath(items.dict[i]))]++;
  }

  // With scalar directories from the direct-emission parse path, resolve
  // every (document, column) value offset in one pass over the transactions
  // instead of one LookupPath tree descent per document per column. A slot is
  // filled exactly when the document carries the column's path at the chosen
  // type — the same condition the LookupPath branches below test — so both
  // routes feed identical values to the columns, HLL sketches and zone maps.
  constexpr uint32_t kNoSlot = 0xFFFFFFFF;
  const size_t ncols = ordered.size();
  std::vector<uint32_t> slots;
  if (dirs != nullptr && ncols > 0) {
    std::vector<uint32_t> item_to_col(items.dict.size(), kNoSlot);
    for (size_t c = 0; c < ncols; c++) {
      item_to_col[ordered[c].second.item] = static_cast<uint32_t>(c);
    }
    slots.assign(docs.size() * ncols, kNoSlot);
    for (size_t d = 0; d < docs.size(); d++) {
      const mining::Transaction& tx = items.transactions[d];
      JSONTILES_CHECK(tx.size() == dirs[d].count);
      for (size_t k = 0; k < tx.size(); k++) {
        const uint32_t c = item_to_col[tx[k]];
        if (c != kNoSlot) {
          slots[d * ncols + c] = dirs[d].leaves[k].value_off;
        }
      }
    }
  }

  for (size_t ci = 0; ci < ordered.size(); ci++) {
    auto& [path, choice] = ordered[ci];
    // The document's value for this column, already filtered to the chosen
    // source type: by construction for the slot route, by an explicit type
    // check for the LookupPath route.
    const auto column_value =
        [&](size_t d) -> std::optional<json::JsonbValue> {
      if (!slots.empty()) {
        const uint32_t off = slots[d * ncols + ci];
        if (off == kNoSlot) return std::nullopt;
        return json::JsonbValue(docs[d].data() + off);
      }
      auto value = LookupPath(docs[d], path);
      auto type = static_cast<json::JsonType>(DictKeyType(items.dict[choice.item]));
      if (!value.has_value() || value->type() != type) return std::nullopt;
      return value;
    };
    auto source_type = static_cast<json::JsonType>(DictKeyType(items.dict[choice.item]));
    ExtractedColumn col;
    col.path = path;
    col.source_type = source_type;
    col.storage_type = StorageTypeFor(source_type);
    col.has_type_outliers = types_per_path[path] > 1;

    // §4.9: sample string values; extract as Timestamp when (nearly) all
    // parse as date/time.
    if (source_type == json::JsonType::kString && config_.enable_date_extraction) {
      size_t present = 0;
      size_t parsed = 0;
      Timestamp ts;
      for (size_t d = 0; d < docs.size(); d++) {
        auto value = column_value(d);
        if (!value.has_value()) continue;
        present++;
        if (ParseTimestamp(value->GetString(), &ts)) parsed++;
      }
      if (present > 0 &&
          static_cast<double>(parsed) >=
              config_.date_detection_fraction * static_cast<double>(present)) {
        col.storage_type = ColumnType::kTimestamp;
        col.is_timestamp = true;
      }
    }

    // Materialize the column; §4.6: sample values into a HLL sketch.
    col.column = Column(col.storage_type);
    HyperLogLog sketch;
    for (size_t d = 0; d < docs.size(); d++) {
      auto value = column_value(d);
      bool stored = false;
      if (value.has_value()) {
        switch (col.storage_type) {
          case ColumnType::kBool:
            col.column.AppendBool(value->GetBool());
            stored = true;
            break;
          case ColumnType::kInt64:
            col.column.AppendInt(value->GetInt());
            stored = true;
            break;
          case ColumnType::kFloat64:
            col.column.AppendFloat(value->GetDouble());
            stored = true;
            break;
          case ColumnType::kString:
            col.column.AppendString(value->GetString());
            stored = true;
            break;
          case ColumnType::kNumeric:
            col.column.AppendNumeric(value->GetNumeric());
            stored = true;
            break;
          case ColumnType::kTimestamp: {
            Timestamp ts;
            if (ParseTimestamp(value->GetString(), &ts)) {
              col.column.AppendTimestamp(ts);
              stored = true;
            }
            break;
          }
        }
      }
      if (stored) {
        sketch.Add(HashJsonbScalar(*value));
      } else {
        col.column.AppendNull();
      }
    }
    col.nullable = col.column.null_count() > 0;
    // Zone map over the materialized values (range skipping, §4.8 extension).
    if (col.storage_type == ColumnType::kInt64 ||
        col.storage_type == ColumnType::kTimestamp) {
      for (size_t r = 0; r < col.column.size(); r++) {
        if (col.column.IsNull(r)) continue;
        int64_t v = col.column.GetInt(r);
        if (!col.has_minmax) {
          col.min_i = col.max_i = v;
          col.has_minmax = true;
        } else {
          col.min_i = std::min(col.min_i, v);
          col.max_i = std::max(col.max_i, v);
        }
      }
    } else if (col.storage_type == ColumnType::kFloat64) {
      for (size_t r = 0; r < col.column.size(); r++) {
        if (col.column.IsNull(r)) continue;
        double v = col.column.GetFloat(r);
        if (!col.has_minmax) {
          col.min_d = col.max_d = v;
          col.has_minmax = true;
        } else {
          col.min_d = std::min(col.min_d, v);
          col.max_d = std::max(col.max_d, v);
        }
      }
    }
    tile.stats.column_sketches.push_back(std::move(sketch));
    tile.columns.push_back(std::move(col));
  }

  tile.BuildColumnIndex();

  // §4.4: non-extracted key paths that actually occur in this tile go into
  // the header bloom filter. (The dictionary may be a projection of a whole
  // partition and can carry zero-count entries.)
  for (size_t i = 0; i < items.dict.size(); i++) {
    if (items.item_counts[i] == 0) continue;
    std::string_view path = DictKeyPath(items.dict[i]);
    if (tile.FindColumn(path) == nullptr) tile.AddSeenPath(path);
  }

  JSONTILES_COUNTER_ADD("tiles.built", 1);
  JSONTILES_COUNTER_ADD("tiles.columns_extracted",
                        static_cast<int64_t>(tile.columns.size()));
  JSONTILES_OBS_ONLY(if (!types_per_path.empty()) {
    JSONTILES_HIST_RECORD("tiles.materialized_path_pct",
                          100.0 * static_cast<double>(tile.columns.size()) /
                              static_cast<double>(types_per_path.size()));
  });
  return tile;
}

}  // namespace jsontiles::tiles
