#include "tiles/keypath.h"

#include <algorithm>

#include "util/bit_util.h"
#include "util/logging.h"

namespace jsontiles::tiles {

void AppendKeySegment(std::string* encoded, std::string_view key) {
  encoded->push_back('k');
  uint8_t buf[10];
  int n = bit_util::EncodeVarint(buf, key.size());
  encoded->append(reinterpret_cast<char*>(buf), static_cast<size_t>(n));
  encoded->append(key);
}

void AppendIndexSegment(std::string* encoded, uint32_t index) {
  encoded->push_back('i');
  uint8_t buf[10];
  int n = bit_util::EncodeVarint(buf, index);
  encoded->append(reinterpret_cast<char*>(buf), static_cast<size_t>(n));
}

void AppendSegment(std::string* encoded, const PathSegment& segment) {
  if (segment.kind == PathSegment::Kind::kKey) {
    AppendKeySegment(encoded, segment.key);
  } else {
    AppendIndexSegment(encoded, segment.index);
  }
}

std::string EncodePath(const std::vector<PathSegment>& segments) {
  std::string encoded;
  for (const auto& s : segments) AppendSegment(&encoded, s);
  return encoded;
}

std::vector<PathSegment> DecodePath(std::string_view encoded) {
  std::vector<PathSegment> segments;
  const uint8_t* data = reinterpret_cast<const uint8_t*>(encoded.data());
  size_t pos = 0;
  while (pos < encoded.size()) {
    char kind = encoded[pos++];
    uint64_t v = bit_util::DecodeVarint(data, &pos);
    if (kind == 'k') {
      segments.push_back(PathSegment::Key(std::string(encoded.substr(pos, v))));
      pos += v;
    } else {
      JSONTILES_DCHECK(kind == 'i');
      segments.push_back(PathSegment::Index(static_cast<uint32_t>(v)));
    }
  }
  return segments;
}

std::string PathToDisplayString(std::string_view encoded) {
  std::string out;
  for (const auto& s : DecodePath(encoded)) {
    if (s.kind == PathSegment::Kind::kKey) {
      if (!out.empty()) out.push_back('.');
      out.append(s.key);
    } else {
      out.push_back('[');
      out.append(std::to_string(s.index));
      out.push_back(']');
    }
  }
  return out;
}

int PathDepth(std::string_view encoded) {
  const uint8_t* data = reinterpret_cast<const uint8_t*>(encoded.data());
  size_t pos = 0;
  int depth = 0;
  while (pos < encoded.size()) {
    char kind = encoded[pos++];
    uint64_t v = bit_util::DecodeVarint(data, &pos);
    if (kind == 'k') pos += v;
    depth++;
  }
  return depth;
}

void ForEachPathPrefix(std::string_view encoded,
                       const std::function<void(std::string_view)>& fn) {
  const uint8_t* data = reinterpret_cast<const uint8_t*>(encoded.data());
  size_t pos = 0;
  while (pos < encoded.size()) {
    char kind = encoded[pos++];
    uint64_t v = bit_util::DecodeVarint(data, &pos);
    if (kind == 'k') pos += v;
    fn(encoded.substr(0, pos));
  }
}

std::optional<json::JsonbValue> LookupPath(json::JsonbValue root,
                                           std::string_view encoded_path) {
  json::JsonbValue cur = root;
  const uint8_t* data = reinterpret_cast<const uint8_t*>(encoded_path.data());
  size_t pos = 0;
  while (pos < encoded_path.size()) {
    char kind = encoded_path[pos++];
    uint64_t v = bit_util::DecodeVarint(data, &pos);
    if (kind == 'k') {
      if (cur.type() != json::JsonType::kObject) return std::nullopt;
      auto next = cur.FindKey(encoded_path.substr(pos, v));
      pos += v;
      if (!next.has_value()) return std::nullopt;
      cur = *next;
    } else {
      if (cur.type() != json::JsonType::kArray || v >= cur.Count()) {
        return std::nullopt;
      }
      cur = cur.ArrayElement(static_cast<size_t>(v));
    }
  }
  return cur;
}

std::vector<json::PathStep> DecodePathSteps(std::string_view encoded) {
  std::vector<json::PathStep> steps;
  const uint8_t* data = reinterpret_cast<const uint8_t*>(encoded.data());
  size_t pos = 0;
  while (pos < encoded.size()) {
    char kind = encoded[pos++];
    uint64_t v = bit_util::DecodeVarint(data, &pos);
    json::PathStep step;
    if (kind == 'k') {
      step.key = encoded.substr(pos, v);
      pos += v;
    } else {
      JSONTILES_DCHECK(kind == 'i');
      step.is_index = true;
      step.index = static_cast<uint32_t>(v);
    }
    steps.push_back(step);
  }
  return steps;
}

void CollectKeyPaths(json::JsonbValue doc, const TileConfig& config,
                     std::vector<CollectedPath>* out) {
  ForEachKeyPath(doc, config, [out](std::string_view path, json::JsonType type) {
    out->push_back(CollectedPath{std::string(path), type});
  });
}

}  // namespace jsontiles::tiles
