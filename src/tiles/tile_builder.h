// Tile construction: key-path collection, frequent itemset mining, column
// extraction and statistics gathering (paper §3.1, §3.3, §3.4, §4.6, §4.9).

#ifndef JSONTILES_TILES_TILE_BUILDER_H_
#define JSONTILES_TILES_TILE_BUILDER_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "json/jsonb.h"
#include "json/ondemand.h"
#include "mining/fpgrowth.h"
#include "tiles/keypath.h"
#include "tiles/tile.h"
#include "tiles/tile_config.h"

namespace jsontiles::tiles {

/// Transparent string hashing for heterogeneous unordered_map lookup.
struct DictKeyHash {
  using is_transparent = void;
  size_t operator()(std::string_view s) const noexcept {
    return std::hash<std::string_view>{}(s);
  }
};

/// Dictionary-encoded key-path items for a chunk of documents: the database
/// that itemset mining runs on (§3.3) and the raw material of reordering
/// (§3.2). Item ids are dense and local to the chunk.
struct DocumentItems {
  std::vector<std::string> dict;  // item id -> dict key (path + type byte)
  std::unordered_map<std::string, mining::Item, DictKeyHash, std::equal_to<>> ids;
  std::vector<mining::Transaction> transactions;  // one per document
  std::vector<uint32_t> item_counts;              // item id -> frequency

  void Collect(const std::vector<json::JsonbValue>& docs,
               const TileConfig& config);

  /// Same interning as Collect, but over the pooled scalar directories from
  /// the direct-emission parse path: the key paths were already gathered (in
  /// ForEachKeyPath order) while the documents were being emitted, so no
  /// JSONB re-navigation happens here — one linear scan over the pool's leaf
  /// array. Item ids come out identical to what Collect would assign because
  /// both visit paths in the same order. The directories must have been
  /// collected under this TileConfig's max_path_depth / max_array_elements
  /// bounds.
  void CollectFromIngest(const json::OndemandIngestPool& pool);

  /// Restrict to a subset of the documents (used per tile after reordering).
  DocumentItems Project(const std::vector<uint32_t>& doc_indices) const;
};

/// Builds one tile from `tile_size` (or fewer) documents.
class TileBuilder {
 public:
  explicit TileBuilder(const TileConfig& config) : config_(config) {}

  /// Full pipeline: collect, mine, extract, materialize.
  Tile Build(const std::vector<json::JsonbValue>& docs, size_t row_begin) const;

  /// Same but with pre-collected items (avoids re-collection after
  /// reordering). `items.transactions` must be parallel to `docs`. When
  /// `premined` is non-null it is used instead of mining again (the loader
  /// times the mining phase separately, Fig 16). When `dirs` is non-null it
  /// points at docs.size() leaf runs parallel to `docs` (each run parallel to
  /// the document's transaction); column materialization then jumps straight
  /// to each value's recorded offset instead of re-navigating the document
  /// per extracted path. Borrowed runs, not owned directories: after
  /// reordering the loader hands each tile its directories in permuted order
  /// without moving (or copying) anything out of the pool.
  Tile BuildFromItems(const std::vector<json::JsonbValue>& docs,
                      const DocumentItems& items, size_t row_begin,
                      const std::vector<mining::Itemset>* premined = nullptr,
                      const json::OndemandLeafRun* dirs = nullptr) const;

  /// The set of frequent itemsets for a chunk, at an explicit support count
  /// (used by reordering with the reduced threshold).
  std::vector<mining::Itemset> MineItemsets(const DocumentItems& items,
                                            uint32_t min_support) const;

 private:
  TileConfig config_;
};

/// Map a JSON leaf type to its relational storage type.
ColumnType StorageTypeFor(json::JsonType type);

}  // namespace jsontiles::tiles

#endif  // JSONTILES_TILES_TILE_BUILDER_H_
