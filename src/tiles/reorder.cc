#include "tiles/reorder.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <numeric>

#include "mining/fpgrowth.h"
#include "obs/obs.h"

namespace jsontiles::tiles {

namespace {

// Number of common items between a sorted itemset and a sorted transaction.
size_t OverlapCount(const std::vector<mining::Item>& itemset,
                    const std::vector<mining::Item>& tx) {
  size_t i = 0, j = 0, common = 0;
  while (i < itemset.size() && j < tx.size()) {
    if (itemset[i] == tx[j]) {
      common++;
      i++;
      j++;
    } else if (itemset[i] < tx[j]) {
      i++;
    } else {
      j++;
    }
  }
  return common;
}

uint64_t ItemIdSum(const std::vector<mining::Item>& items) {
  uint64_t sum = 0;
  for (mining::Item i : items) sum += i;
  return sum;
}

}  // namespace

ReorderResult ReorderPartition(const DocumentItems& items,
                               const TileConfig& config) {
  const size_t n = items.transactions.size();
  ReorderResult result;
  result.permutation.resize(n);
  std::iota(result.permutation.begin(), result.permutation.end(), 0);
  if (n == 0 || config.partition_size <= 1) return result;

  const size_t tile_size = config.tile_size;
  const size_t num_tiles = (n + tile_size - 1) / tile_size;
  if (num_tiles <= 1) return result;
  JSONTILES_TRACE_SPAN("tiles.reorder_partition");

  // Step 1: mine each tile with the reduced threshold threshold/partition.
  const double reduced = config.extraction_threshold /
                         static_cast<double>(config.partition_size);
  mining::FpGrowthMiner miner;
  std::map<std::vector<mining::Item>, uint64_t> aggregated;
  for (size_t t = 0; t < num_tiles; t++) {
    size_t begin = t * tile_size;
    size_t end = std::min(begin + tile_size, n);
    std::vector<mining::Transaction> chunk(items.transactions.begin() + begin,
                                           items.transactions.begin() + end);
    mining::MinerOptions options;
    options.min_support = static_cast<uint32_t>(
        std::ceil(reduced * static_cast<double>(end - begin)));
    if (options.min_support == 0) options.min_support = 1;
    options.budget = config.reorder_itemset_budget;
    // Step 2 (first half): exchange the itemsets of all tiles.
    for (auto& set : miner.Mine(chunk, options)) {
      aggregated[set.items] += set.support;
    }
  }

  // Step 2 (second half): itemsets with partition-wide frequency above
  // threshold * tile_size survive.
  const double survive_limit =
      config.extraction_threshold * static_cast<double>(tile_size);
  std::vector<mining::Itemset> survivors;
  for (auto& [set_items, support] : aggregated) {
    if (static_cast<double>(support) > survive_limit) {
      survivors.push_back(
          mining::Itemset{set_items, static_cast<uint32_t>(support)});
    }
  }
  // Matching is O(tuples x survivors); keep only the most frequent (largest
  // first on ties) so reordering stays a small fraction of insertion time.
  if (survivors.size() > config.max_reorder_itemsets) {
    std::sort(survivors.begin(), survivors.end(),
              [](const mining::Itemset& a, const mining::Itemset& b) {
                if (a.support != b.support) return a.support > b.support;
                if (a.items.size() != b.items.size()) {
                  return a.items.size() > b.items.size();
                }
                return a.items < b.items;
              });
    survivors.resize(config.max_reorder_itemsets);
  }
  result.surviving_itemsets = survivors.size();
  if (survivors.empty()) return result;

  // Step 3: match every tuple to the itemset that describes it best — the
  // largest number of items in common, preferring the itemset with the
  // fewest items the tuple lacks (a tuple must not be clustered under a
  // schema whose extra columns it cannot fill); remaining ties are resolved
  // deterministically by the minimal sum of item ids so equal tuples always
  // match alike (§3.2 step 3).
  const int kUnmatched = -1;
  std::vector<int> best(n, kUnmatched);
  std::vector<mining::Transaction> sorted_txs = items.transactions;
  for (auto& tx : sorted_txs) std::sort(tx.begin(), tx.end());
  for (size_t d = 0; d < n; d++) {
    size_t best_overlap = 0;
    size_t best_size = 0;
    uint64_t best_idsum = 0;
    for (size_t s = 0; s < survivors.size(); s++) {
      size_t overlap = OverlapCount(survivors[s].items, sorted_txs[d]);
      if (overlap == 0) continue;
      uint64_t idsum = ItemIdSum(survivors[s].items);
      bool better = false;
      if (overlap > best_overlap) {
        better = true;
      } else if (overlap == best_overlap) {
        if (survivors[s].items.size() < best_size) {
          better = true;
        } else if (survivors[s].items.size() == best_size && idsum < best_idsum) {
          better = true;
        }
      }
      if (better) {
        best[d] = static_cast<int>(s);
        best_overlap = overlap;
        best_size = survivors[s].items.size();
        best_idsum = idsum;
      }
    }
  }

  // Step 4: aggregate cluster sizes and greedily map clusters to tiles so
  // each itemset's tuples land contiguously (largest clusters first).
  std::vector<std::vector<uint32_t>> clusters(survivors.size());
  std::vector<uint32_t> unmatched;
  for (size_t d = 0; d < n; d++) {
    if (best[d] == kUnmatched) {
      unmatched.push_back(static_cast<uint32_t>(d));
    } else {
      clusters[static_cast<size_t>(best[d])].push_back(static_cast<uint32_t>(d));
    }
  }
  std::vector<size_t> order(clusters.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    if (clusters[a].size() != clusters[b].size()) {
      return clusters[a].size() > clusters[b].size();
    }
    return a < b;
  });

  // Step 5: emit the new arrangement (equivalent to computing pairwise swap
  // positions; we physically reorder during bulk load).
  std::vector<uint32_t> arrangement;
  arrangement.reserve(n);
  for (size_t c : order) {
    arrangement.insert(arrangement.end(), clusters[c].begin(), clusters[c].end());
  }
  arrangement.insert(arrangement.end(), unmatched.begin(), unmatched.end());

  for (size_t pos = 0; pos < n; pos++) {
    if (arrangement[pos] / tile_size != pos / tile_size) result.moved_tuples++;
  }
  result.permutation = std::move(arrangement);
  JSONTILES_COUNTER_ADD("reorder.partitions", 1);
  JSONTILES_COUNTER_ADD("reorder.moved_tuples",
                        static_cast<int64_t>(result.moved_tuples));
  return result;
}

}  // namespace jsontiles::tiles
