// High-cardinality array extraction (paper §3.5, the "Tiles-*" variant of
// §6.3).
//
// Arrays whose element counts vary a lot (tweet hashtags, user mentions)
// materialize poorly with index paths: only leading elements frequent across
// all documents can become columns. Following Deutsch et al. [19], such
// arrays are extracted into a separate relation: each element becomes its own
// document annotated with the parent row id, and queries join the side
// relation back to the base table.

#ifndef JSONTILES_TILES_ARRAY_EXTRACT_H_
#define JSONTILES_TILES_ARRAY_EXTRACT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "json/jsonb.h"
#include "tiles/tile_config.h"

namespace jsontiles::tiles {

struct HighCardArrayInfo {
  std::string path;  // encoded key path of the array
  double avg_elements = 0;
  double presence = 0;  // fraction of documents containing the array
};

/// Scan `docs` (typically a sample) for array-valued paths whose average
/// element count reaches `min_avg_elements`. Nested arrays inside a detected
/// array are not reported separately.
std::vector<HighCardArrayInfo> DetectHighCardinalityArrays(
    const std::vector<json::JsonbValue>& docs, const TileConfig& config,
    double min_avg_elements = 2.0, double min_presence = 0.1);

/// The key under which the parent row id is stored in side-table documents.
inline constexpr const char* kParentRowIdKey = "_rowid";
/// Fallback key for non-object array elements.
inline constexpr const char* kScalarValueKey = "value";

/// Explode `array_path` of one document into side-table documents: each
/// element object gains a `_rowid` member carrying `parent_row_id`
/// (non-object elements are wrapped as {"value": element, "_rowid": ...}).
/// Appends to `out`; does nothing when the path is absent or not an array.
void ExplodeArray(json::JsonbValue doc, std::string_view encoded_array_path,
                  int64_t parent_row_id,
                  std::vector<std::vector<uint8_t>>* out);

}  // namespace jsontiles::tiles

#endif  // JSONTILES_TILES_ARRAY_EXTRACT_H_
