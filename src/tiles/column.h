// Typed column chunks: the materialized relational storage inside a tile
// (paper §2.2 "Column Extraction").
//
// Each extracted key path becomes one Column with a validity bitmap. Nulls
// mean "key absent in this document or value of an outlier type"; accesses
// fall back to the binary JSON in that case (§3.4).

#ifndef JSONTILES_TILES_COLUMN_H_
#define JSONTILES_TILES_COLUMN_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>
#include <vector>

#include "util/date.h"
#include "util/decimal.h"
#include "util/logging.h"

namespace jsontiles::tiles {

enum class ColumnType : uint8_t {
  kBool,
  kInt64,      // SQL BigInt
  kFloat64,    // SQL Float
  kString,     // SQL Text
  kTimestamp,  // SQL Timestamp (date/time extraction, §4.9)
  kNumeric,    // SQL Numeric (from numeric strings, §5.2)
};

const char* ColumnTypeName(ColumnType type);

/// A fixed-length typed vector with a validity bitmap. Value storage depends
/// on the type: ints/bools/timestamps share the i64 buffer, floats use f64,
/// numerics use i64 + per-value scale, strings use an offset/heap pair.
class Column {
 public:
  explicit Column(ColumnType type) : type_(type) {}

  ColumnType type() const { return type_; }
  size_t size() const { return valid_.size(); }

  bool IsNull(size_t row) const { return !valid_[row]; }
  size_t null_count() const { return null_count_; }

  // Appending -------------------------------------------------------------
  void AppendNull();
  void AppendBool(bool v);
  void AppendInt(int64_t v);
  void AppendFloat(double v);
  void AppendTimestamp(Timestamp v) { AppendInt(v); }
  void AppendNumeric(Numeric v);
  void AppendString(std::string_view v);

  // Access ----------------------------------------------------------------
  bool GetBool(size_t row) const { return i64_[row] != 0; }
  int64_t GetInt(size_t row) const { return i64_[row]; }
  double GetFloat(size_t row) const { return f64_[row]; }
  Timestamp GetTimestamp(size_t row) const { return i64_[row]; }
  Numeric GetNumeric(size_t row) const {
    return Numeric{i64_[row], scales_[row]};
  }
  std::string_view GetString(size_t row) const {
    return std::string_view(heap_).substr(starts_[row], lens_[row]);
  }

  // Bulk typed reads (vectorized scan): copy `count` consecutive rows
  // starting at `row` into caller buffers. Null rows carry a zero/empty
  // placeholder payload — consult `nulls` (1 = null) before using values.
  void ReadNulls(size_t row, size_t count, uint8_t* nulls) const {
    for (size_t k = 0; k < count; k++) nulls[k] = valid_[row + k] ? 0 : 1;
  }
  void ReadInts(size_t row, size_t count, int64_t* out) const {
    std::memcpy(out, i64_.data() + row, count * sizeof(int64_t));
  }
  void ReadBools(size_t row, size_t count, int64_t* out) const {
    // Normalize to 0/1 like GetBool (Value::Bool stores exactly 0/1).
    for (size_t k = 0; k < count; k++) out[k] = i64_[row + k] != 0 ? 1 : 0;
  }
  void ReadFloats(size_t row, size_t count, double* out) const {
    std::memcpy(out, f64_.data() + row, count * sizeof(double));
  }
  void ReadNumerics(size_t row, size_t count, int64_t* unscaled,
                    uint8_t* scales) const {
    std::memcpy(unscaled, i64_.data() + row, count * sizeof(int64_t));
    std::memcpy(scales, scales_.data() + row, count);
  }
  void ReadStrings(size_t row, size_t count, std::string_view* out) const {
    std::string_view heap = heap_;
    for (size_t k = 0; k < count; k++) {
      out[k] = heap.substr(starts_[row + k], lens_[row + k]);
    }
  }

  // In-place update (§4.7); strings append to the heap.
  void SetNull(size_t row);
  void SetBool(size_t row, bool v);
  void SetInt(size_t row, int64_t v);
  void SetFloat(size_t row, double v);
  void SetNumeric(size_t row, Numeric v);
  void SetString(size_t row, std::string_view v);

  /// Approximate in-memory footprint in bytes (for Table 6).
  size_t MemoryBytes() const;

  /// Raw buffers for compression experiments and serialization.
  const std::vector<int64_t>& i64_data() const { return i64_; }
  const std::vector<double>& f64_data() const { return f64_; }
  const std::string& string_heap() const { return heap_; }
  const std::vector<bool>& validity() const { return valid_; }
  const std::vector<uint8_t>& scales_data() const { return scales_; }
  const std::vector<uint32_t>& starts_data() const { return starts_; }
  const std::vector<uint32_t>& lens_data() const { return lens_; }

  /// Rebuild a column from its raw parts (deserialization).
  static Column Restore(ColumnType type, std::vector<bool> valid,
                        std::vector<int64_t> i64, std::vector<double> f64,
                        std::vector<uint8_t> scales, std::vector<uint32_t> starts,
                        std::vector<uint32_t> lens, std::string heap) {
    Column col(type);
    col.null_count_ = 0;
    for (bool v : valid) {
      if (!v) col.null_count_++;
    }
    col.valid_ = std::move(valid);
    col.i64_ = std::move(i64);
    col.f64_ = std::move(f64);
    col.scales_ = std::move(scales);
    col.starts_ = std::move(starts);
    col.lens_ = std::move(lens);
    col.heap_ = std::move(heap);
    return col;
  }

 private:
  void AppendValid(bool valid) {
    valid_.push_back(valid);
    if (!valid) null_count_++;
  }

  /// Append bytes to the string heap; safe even when `v` views the heap
  /// itself (a plain append could read freed storage on reallocation).
  void AppendToHeap(std::string_view v);

  ColumnType type_;
  std::vector<bool> valid_;
  std::vector<int64_t> i64_;
  std::vector<double> f64_;
  std::vector<uint8_t> scales_;
  // Strings: per-row (start, length) into the heap; updates append to the
  // heap and repoint the row (§4.7 in-place variable-length updates).
  std::vector<uint32_t> starts_;
  std::vector<uint32_t> lens_;
  std::string heap_;
  size_t null_count_ = 0;
};

}  // namespace jsontiles::tiles

#endif  // JSONTILES_TILES_COLUMN_H_
