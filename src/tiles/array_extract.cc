#include "tiles/array_extract.h"

#include <algorithm>
#include <unordered_map>

#include "tiles/keypath.h"

namespace jsontiles::tiles {

namespace {

struct ArrayStat {
  uint64_t docs_with = 0;
  uint64_t total_elements = 0;
};

void ScanArrays(json::JsonbValue value, const TileConfig& config,
                std::string* prefix, int depth,
                std::unordered_map<std::string, ArrayStat>* stats) {
  if (depth >= config.max_path_depth) return;
  switch (value.type()) {
    case json::JsonType::kObject: {
      size_t count = value.Count();
      for (size_t i = 0; i < count; i++) {
        size_t saved = prefix->size();
        AppendKeySegment(prefix, value.MemberKey(i));
        ScanArrays(value.MemberValue(i), config, prefix, depth + 1, stats);
        prefix->resize(saved);
      }
      return;
    }
    case json::JsonType::kArray: {
      ArrayStat& stat = (*stats)[*prefix];
      stat.docs_with++;
      stat.total_elements += value.Count();
      // Do not descend: nested arrays belong to this one's side relation.
      return;
    }
    default:
      return;
  }
}

}  // namespace

std::vector<HighCardArrayInfo> DetectHighCardinalityArrays(
    const std::vector<json::JsonbValue>& docs, const TileConfig& config,
    double min_avg_elements, double min_presence) {
  std::unordered_map<std::string, ArrayStat> stats;
  std::string prefix;
  for (const auto& doc : docs) {
    ScanArrays(doc, config, &prefix, 0, &stats);
  }
  std::vector<HighCardArrayInfo> out;
  if (docs.empty()) return out;
  for (const auto& [path, stat] : stats) {
    double presence =
        static_cast<double>(stat.docs_with) / static_cast<double>(docs.size());
    double avg = stat.docs_with == 0
                     ? 0
                     : static_cast<double>(stat.total_elements) /
                           static_cast<double>(stat.docs_with);
    if (avg >= min_avg_elements && presence >= min_presence) {
      out.push_back(HighCardArrayInfo{path, avg, presence});
    }
  }
  std::sort(out.begin(), out.end(),
            [](const HighCardArrayInfo& a, const HighCardArrayInfo& b) {
              return a.path < b.path;
            });
  return out;
}

void ExplodeArray(json::JsonbValue doc, std::string_view encoded_array_path,
                  int64_t parent_row_id,
                  std::vector<std::vector<uint8_t>>* out) {
  auto array = LookupPath(doc, encoded_array_path);
  if (!array.has_value() || array->type() != json::JsonType::kArray) return;
  std::vector<uint8_t> rowid = json::MakeJsonbInt(parent_row_id);
  size_t count = array->Count();
  for (size_t i = 0; i < count; i++) {
    json::JsonbValue element = array->ArrayElement(i);
    std::vector<json::AssembleMember> members;
    if (element.type() == json::JsonType::kObject) {
      size_t members_count = element.Count();
      bool clash = false;
      for (size_t m = 0; m < members_count; m++) {
        if (element.MemberKey(m) == kParentRowIdKey) clash = true;
        json::JsonbValue v = element.MemberValue(m);
        members.push_back(
            json::AssembleMember{element.MemberKey(m), v.data(), v.Size()});
      }
      if (clash) {
        // Extremely unlikely; keep the element intact under "value" instead.
        members.clear();
        members.push_back(json::AssembleMember{kScalarValueKey, element.data(),
                                               element.Size()});
      }
    } else {
      members.push_back(
          json::AssembleMember{kScalarValueKey, element.data(), element.Size()});
    }
    members.push_back(
        json::AssembleMember{kParentRowIdKey, rowid.data(), rowid.size()});
    out->push_back(json::AssembleObject(std::move(members)));
  }
}

}  // namespace jsontiles::tiles
