// Key paths: the path of nested objects and arrays leading to a value
// (paper §3.1 step 1, §3.5).
//
// Nesting is encoded into the path so the extraction algorithm never has to
// distinguish nested from non-nested values. A path is stored in a compact
// self-delimiting byte encoding (segments are length-prefixed, so keys may
// contain any character). An itemset item is a (path, value type) pair
// (§3.4): two paths only match when their types match as well.

#ifndef JSONTILES_TILES_KEYPATH_H_
#define JSONTILES_TILES_KEYPATH_H_

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "json/json_type.h"
#include "json/jsonb.h"
#include "tiles/tile_config.h"

namespace jsontiles::tiles {

struct PathSegment {
  enum class Kind : uint8_t { kKey, kIndex };
  Kind kind = Kind::kKey;
  std::string key;     // object key (kKey)
  uint32_t index = 0;  // array slot (kIndex)

  static PathSegment Key(std::string k) {
    PathSegment s;
    s.kind = Kind::kKey;
    s.key = std::move(k);
    return s;
  }
  static PathSegment Index(uint32_t i) {
    PathSegment s;
    s.kind = Kind::kIndex;
    s.index = i;
    return s;
  }

  friend bool operator==(const PathSegment&, const PathSegment&) = default;
};

/// Append one segment to an encoded path (in place).
void AppendSegment(std::string* encoded, const PathSegment& segment);
void AppendKeySegment(std::string* encoded, std::string_view key);
void AppendIndexSegment(std::string* encoded, uint32_t index);

/// Encode a full path.
std::string EncodePath(const std::vector<PathSegment>& segments);

/// Decode an encoded path back into segments.
std::vector<PathSegment> DecodePath(std::string_view encoded);

/// Human-readable form, e.g. `user.geo.lat` or `tags[0].text`.
std::string PathToDisplayString(std::string_view encoded);

/// Number of segments (nesting levels) in an encoded path.
int PathDepth(std::string_view encoded);

/// Invoke `fn` for every prefix of the path (first k segments, k = 1..n,
/// including the full path). Prefixes are substrings of the encoding.
void ForEachPathPrefix(std::string_view encoded,
                       const std::function<void(std::string_view)>& fn);

/// Navigate a JSONB document along a path. Returns nullopt when any step is
/// missing (PostgreSQL semantics: absent key => SQL NULL).
std::optional<json::JsonbValue> LookupPath(json::JsonbValue root,
                                           std::string_view encoded_path);

/// Decode an encoded path into navigation steps for json::LookupSteps. The
/// key views point into `encoded`, which must outlive the returned steps —
/// callers caching steps must cache them against stable path storage (e.g.
/// the Expr that owns the encoded path).
std::vector<json::PathStep> DecodePathSteps(std::string_view encoded);

/// One collected leaf: encoded path plus the leaf's JSON type.
struct CollectedPath {
  std::string path;
  json::JsonType type;

  friend bool operator==(const CollectedPath&, const CollectedPath&) = default;
};

/// Collect the key paths of all scalar leaves of `doc` (paper §3.1 step 1).
/// Arrays contribute their first `config.max_array_elements` elements with
/// index segments (§3.5); traversal stops at `config.max_path_depth`.
/// Empty objects/arrays contribute no leaves.
void CollectKeyPaths(json::JsonbValue doc, const TileConfig& config,
                     std::vector<CollectedPath>* out);

namespace internal_keypath {

/// Allocation-free walker: `fn(encoded_path_view, leaf_type)` per leaf. The
/// view points into `prefix` and is only valid during the call.
template <typename Fn>
void WalkLeaves(json::JsonbValue value, const TileConfig& config,
                std::string* prefix, int depth, const Fn& fn) {
  switch (value.type()) {
    case json::JsonType::kObject: {
      if (depth >= config.max_path_depth) return;
      size_t count = value.Count();
      for (size_t i = 0; i < count; i++) {
        size_t saved = prefix->size();
        AppendKeySegment(prefix, value.MemberKey(i));
        WalkLeaves(value.MemberValue(i), config, prefix, depth + 1, fn);
        prefix->resize(saved);
      }
      return;
    }
    case json::JsonType::kArray: {
      if (depth >= config.max_path_depth) return;
      size_t count = value.Count();
      size_t limit = count < config.max_array_elements
                         ? count
                         : static_cast<size_t>(config.max_array_elements);
      for (size_t i = 0; i < limit; i++) {
        size_t saved = prefix->size();
        AppendIndexSegment(prefix, static_cast<uint32_t>(i));
        WalkLeaves(value.ArrayElement(i), config, prefix, depth + 1, fn);
        prefix->resize(saved);
      }
      return;
    }
    default:
      fn(std::string_view(*prefix), value.type());
  }
}

}  // namespace internal_keypath

/// Callback form of CollectKeyPaths (no per-leaf allocation).
template <typename Fn>
void ForEachKeyPath(json::JsonbValue doc, const TileConfig& config, const Fn& fn) {
  std::string prefix;
  internal_keypath::WalkLeaves(doc, config, &prefix, 0, fn);
}

}  // namespace jsontiles::tiles

#endif  // JSONTILES_TILES_KEYPATH_H_
