#include "tiles/stats.h"

#include <algorithm>
#include <limits>

namespace jsontiles::tiles {

void RelationStats::MergeTile(uint32_t tile_number, const TileStats& stats,
                              const std::vector<std::string>& extracted_paths) {
  // Frequency counters.
  for (const auto& [key, count] : stats.path_frequencies) {
    Counter* slot = nullptr;
    for (auto& c : counters_) {
      if (c.key == key) {
        slot = &c;
        break;
      }
    }
    if (slot != nullptr) {
      slot->count += count;
      slot->last_tile = tile_number;
      continue;
    }
    if (counters_.size() < kMaxFrequencyCounters) {
      counters_.push_back(Counter{key, count, tile_number});
      continue;
    }
    // Replacement: evict the slot with the oldest tile number, breaking ties
    // by the lowest frequency count, so the most frequent keys survive.
    Counter* victim = &counters_[0];
    for (auto& c : counters_) {
      if (c.last_tile < victim->last_tile ||
          (c.last_tile == victim->last_tile && c.count < victim->count)) {
        victim = &c;
      }
    }
    if (victim->count < count || victim->last_tile < tile_number) {
      *victim = Counter{key, count, tile_number};
    }
  }

  // HLL sketches for extracted columns.
  for (size_t i = 0; i < extracted_paths.size() &&
                     i < stats.column_sketches.size();
       i++) {
    const std::string& key = extracted_paths[i];
    uint64_t weight = 0;
    for (const auto& [k, count] : stats.path_frequencies) {
      if (k == key) {
        weight = count;
        break;
      }
    }
    Sketch* slot = nullptr;
    for (auto& s : sketches_) {
      if (s.key == key) {
        slot = &s;
        break;
      }
    }
    if (slot != nullptr) {
      slot->hll.Merge(stats.column_sketches[i]);  // sketches combine losslessly
      slot->last_tile = tile_number;
      slot->weight += weight;
      continue;
    }
    if (sketches_.size() < kMaxSketches) {
      sketches_.push_back(Sketch{key, stats.column_sketches[i], tile_number, weight});
      continue;
    }
    Sketch* victim = &sketches_[0];
    for (auto& s : sketches_) {
      if (s.last_tile < victim->last_tile ||
          (s.last_tile == victim->last_tile && s.weight < victim->weight)) {
        victim = &s;
      }
    }
    if (victim->weight < weight || victim->last_tile < tile_number) {
      *victim = Sketch{key, stats.column_sketches[i], tile_number, weight};
    }
  }
}

uint64_t RelationStats::EstimateKeyCardinality(std::string_view dict_key) const {
  uint64_t smallest = std::numeric_limits<uint64_t>::max();
  for (const auto& c : counters_) {
    if (c.key == dict_key) return c.count;
    smallest = std::min(smallest, c.count);
  }
  // §4.6: a missing counter behaves most similarly to the key with the
  // minimal retrieved frequency — far more accurate than the table count.
  if (counters_.empty()) return total_tuples_;
  return smallest;
}

std::optional<double> RelationStats::EstimateDistinct(
    std::string_view dict_key) const {
  for (const auto& s : sketches_) {
    if (s.key == dict_key) return s.hll.Estimate();
  }
  return std::nullopt;
}

namespace {
bool KeyHasPath(std::string_view dict_key, std::string_view path) {
  return dict_key.size() == path.size() + 1 &&
         dict_key.substr(0, path.size()) == path;
}
}  // namespace

uint64_t RelationStats::EstimateKeyCardinalityAnyType(
    std::string_view encoded_path) const {
  uint64_t total = 0;
  bool found = false;
  uint64_t smallest = std::numeric_limits<uint64_t>::max();
  for (const auto& c : counters_) {
    if (KeyHasPath(c.key, encoded_path)) {
      total += c.count;
      found = true;
    }
    smallest = std::min(smallest, c.count);
  }
  if (found) return total;
  if (counters_.empty()) return total_tuples_;
  return smallest;
}

std::optional<double> RelationStats::EstimateDistinctAnyType(
    std::string_view encoded_path) const {
  std::optional<double> best;
  for (const auto& s : sketches_) {
    if (KeyHasPath(s.key, encoded_path)) {
      double est = s.hll.Estimate();
      if (!best.has_value() || est > *best) best = est;
    }
  }
  return best;
}

}  // namespace jsontiles::tiles
