#include "tiles/tile.h"

#include <algorithm>

#include "tiles/keypath.h"

namespace jsontiles::tiles {

const ExtractedColumn* Tile::FindColumn(std::string_view path) const {
  auto it = column_index_.find(std::string(path));
  if (it == column_index_.end()) return nullptr;
  return &columns[it->second];
}

ExtractedColumn* Tile::FindColumn(std::string_view path) {
  auto it = column_index_.find(std::string(path));
  if (it == column_index_.end()) return nullptr;
  return &columns[it->second];
}

bool Tile::MayContainPath(std::string_view path) const {
  if (FindColumn(path) != nullptr) return true;
  return seen_paths_.MayContainString(path);
}

void Tile::AddSeenPath(std::string_view path) {
  ForEachPathPrefix(path, [this](std::string_view prefix) {
    seen_paths_.InsertString(prefix);
  });
}

void Tile::BuildColumnIndex() {
  column_index_.clear();
  for (size_t i = 0; i < columns.size(); i++) {
    column_index_[columns[i].path] = i;
    // Prefixes of extracted paths are "seen" for skipping purposes.
    ForEachPathPrefix(columns[i].path, [this](std::string_view prefix) {
      seen_paths_.InsertString(prefix);
    });
  }
}

size_t Tile::ColumnMemoryBytes() const {
  size_t bytes = 0;
  for (const auto& col : columns) {
    bytes += col.column.MemoryBytes();
    bytes += col.path.size() + sizeof(ExtractedColumn);
  }
  return bytes;
}

namespace {

// §4.7 updates must keep zone maps conservative: widen on new values.
void WidenMinMaxInt(ExtractedColumn* col, int64_t v) {
  if (!col->has_minmax) {
    col->min_i = col->max_i = v;
    col->has_minmax = true;
  } else {
    col->min_i = std::min(col->min_i, v);
    col->max_i = std::max(col->max_i, v);
  }
}

void WidenMinMaxFloat(ExtractedColumn* col, double v) {
  if (!col->has_minmax) {
    col->min_d = col->max_d = v;
    col->has_minmax = true;
  } else {
    col->min_d = std::min(col->min_d, v);
    col->max_d = std::max(col->max_d, v);
  }
}

}  // namespace

bool UpdateTileRow(Tile* tile, size_t row_in_tile, json::JsonbValue new_doc,
                   const TileConfig& config) {
  size_t overlap = 0;
  for (auto& col : tile->columns) {
    auto value = LookupPath(new_doc, col.path);
    Column& column = col.column;
    if (!value.has_value()) {
      column.SetNull(row_in_tile);
      col.nullable = true;
      continue;
    }
    bool matched = false;
    switch (col.storage_type) {
      case ColumnType::kBool:
        if (value->type() == json::JsonType::kBool) {
          column.SetBool(row_in_tile, value->GetBool());
          matched = true;
        }
        break;
      case ColumnType::kInt64:
        if (value->type() == json::JsonType::kInt) {
          column.SetInt(row_in_tile, value->GetInt());
          WidenMinMaxInt(&col, value->GetInt());
          matched = true;
        }
        break;
      case ColumnType::kFloat64:
        if (value->type() == json::JsonType::kFloat) {
          column.SetFloat(row_in_tile, value->GetDouble());
          WidenMinMaxFloat(&col, value->GetDouble());
          matched = true;
        }
        break;
      case ColumnType::kNumeric:
        if (value->type() == json::JsonType::kNumericString) {
          column.SetNumeric(row_in_tile, value->GetNumeric());
          matched = true;
        }
        break;
      case ColumnType::kString:
        if (value->type() == json::JsonType::kString) {
          column.SetString(row_in_tile, value->GetString());
          matched = true;
        }
        break;
      case ColumnType::kTimestamp:
        if (value->type() == json::JsonType::kString) {
          Timestamp ts;
          if (ParseTimestamp(value->GetString(), &ts)) {
            column.SetInt(row_in_tile, ts);
            WidenMinMaxInt(&col, ts);
            matched = true;
          }
        }
        break;
    }
    if (matched) {
      overlap++;
    } else {
      // Value exists with a non-matching type: answered from binary JSON.
      column.SetNull(row_in_tile);
      col.nullable = true;
      col.has_type_outliers = true;
    }
  }

  // New paths must reach the bloom filter; otherwise skipping would be wrong.
  std::vector<CollectedPath> paths;
  CollectKeyPaths(new_doc, config, &paths);
  for (const auto& p : paths) {
    if (tile->FindColumn(p.path) == nullptr) tile->AddSeenPath(p.path);
  }

  bool outlier = overlap == 0 && !tile->columns.empty();
  if (outlier) tile->outlier_count++;
  return outlier;
}

}  // namespace jsontiles::tiles
