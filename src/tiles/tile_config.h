// Tuning knobs for JSON tile construction (paper §3, §6.5).
//
// The paper recommends tile size 2^10, partition size 8 and extraction
// threshold 60%; the tile-size benchmark (Figures 10-13) sweeps these.

#ifndef JSONTILES_TILES_TILE_CONFIG_H_
#define JSONTILES_TILES_TILE_CONFIG_H_

#include <cstddef>
#include <cstdint>

namespace jsontiles::tiles {

struct TileConfig {
  /// Number of tuples per tile (paper default 2^10).
  size_t tile_size = 1024;

  /// Number of neighboring tiles grouped for tuple reordering (§3.2);
  /// 1 disables reordering. Paper default 8.
  size_t partition_size = 8;

  /// Extraction threshold: a (key path, type) item is materialized when it
  /// appears in at least this fraction of a tile's tuples. Paper default 60%.
  double extraction_threshold = 0.6;

  /// Budget `u` on generated itemsets per tile (Eq. 1, §3.3).
  uint64_t itemset_budget = 4096;

  /// Key-path collection bounds: maximum nesting depth and the number of
  /// leading array elements considered for materialization (§3.5).
  int max_path_depth = 8;
  uint32_t max_array_elements = 4;

  /// §4.9: detect date/time strings and extract them as SQL Timestamp.
  bool enable_date_extraction = true;

  /// Fraction of sampled string values that must parse as timestamps for a
  /// column to be extracted as Timestamp.
  double date_detection_fraction = 0.95;

  /// Enable tuple reordering between the tiles of a partition (§3.2).
  bool enable_reordering = true;

  /// Caps that keep reordering cheap: the itemset budget of the
  /// reduced-threshold mining pass and the number of surviving itemsets
  /// considered for tuple matching (most frequent first).
  uint64_t reorder_itemset_budget = 512;
  size_t max_reorder_itemsets = 32;
};

}  // namespace jsontiles::tiles

#endif  // JSONTILES_TILES_TILE_CONFIG_H_
