#include "opt/cardinality.h"

#include <algorithm>

#include "exec/scan.h"
#include "storage/shard.h"

namespace jsontiles::opt {

using exec::ExprPtr;
using exec::Value;
using storage::Relation;
using storage::StorageMode;

ScanEstimate EstimateScanCardinality(
    const Relation& relation, const std::vector<ExprPtr>& accesses,
    const ExprPtr& filter, const std::vector<std::string>& null_rejecting_paths,
    size_t sample_size) {
  ScanEstimate est;
  const size_t n = relation.num_rows();
  if (n == 0) return est;

  // Base presence: how many tuples contain all required key paths.
  double presence_fraction = 1.0;
  if (relation.has_stats() && !null_rejecting_paths.empty()) {
    uint64_t smallest = n;
    for (const auto& path : null_rejecting_paths) {
      smallest = std::min(smallest,
                          relation.stats().EstimateKeyCardinalityAnyType(path));
    }
    presence_fraction = static_cast<double>(smallest) / static_cast<double>(n);
  }

  // §4.6: sample documents statically at plan time to estimate the filter
  // (and, for stats-less modes, the key presence too).
  size_t samples = std::min(sample_size, n);
  if (samples == 0) samples = 1;
  size_t stride = n / samples;
  if (stride == 0) stride = 1;

  Arena arena;
  json::JsonbBuilder builder;
  std::vector<uint8_t> buf;
  size_t sampled = 0;
  size_t present = 0;
  size_t passing = 0;
  std::vector<Value> slots(accesses.size());
  for (size_t row = 0; row < n && sampled < samples; row += stride, sampled++) {
    const uint8_t* doc_bytes;
    if (relation.mode() == StorageMode::kJsonText) {
      if (!builder.Transform(relation.JsonText(row), &buf).ok()) continue;
      doc_bytes = buf.data();
    } else {
      doc_bytes = relation.Jsonb(row).data();
    }
    json::JsonbValue doc(doc_bytes);
    bool all_present = true;
    for (const auto& path : null_rejecting_paths) {
      Value v = exec::EvalAccessOnJsonb(doc, path, exec::ValueType::kString,
                                        &arena, /*copy_strings=*/false);
      if (v.is_null()) {
        all_present = false;
        break;
      }
    }
    if (!all_present) continue;
    present++;
    if (filter != nullptr) {
      for (size_t i = 0; i < accesses.size(); i++) {
        slots[i] = exec::EvalScanExprOnJsonb(*accesses[i], doc,
                                             static_cast<int64_t>(row), &arena,
                                             /*copy_strings=*/false);
      }
      Value keep = exec::EvalExpr(*filter, slots.data(), &arena);
      if (!keep.is_null() && keep.bool_value()) passing++;
    } else {
      passing++;
    }
  }

  double filter_fraction =
      present == 0 ? 0.1
                   : static_cast<double>(passing) / static_cast<double>(present);
  if (filter_fraction <= 0) filter_fraction = 0.5 / static_cast<double>(samples);

  if (relation.has_stats() && !null_rejecting_paths.empty()) {
    est.cardinality =
        presence_fraction * filter_fraction * static_cast<double>(n);
  } else {
    double sample_presence =
        sampled == 0 ? 1.0
                     : static_cast<double>(present) / static_cast<double>(sampled);
    if (sample_presence <= 0) sample_presence = 0.5 / static_cast<double>(samples);
    est.cardinality =
        sample_presence * filter_fraction * static_cast<double>(n);
  }
  if (est.cardinality < 1) est.cardinality = 1;
  return est;
}

double EstimateJoinKeyDistinct(const Relation& relation,
                               const std::string& encoded_path,
                               double scan_card) {
  if (relation.has_stats()) {
    auto distinct = relation.stats().EstimateDistinctAnyType(encoded_path);
    if (distinct.has_value() && *distinct >= 1) {
      return std::min(*distinct, scan_card < 1 ? 1.0 : scan_card);
    }
  }
  // Unique-key fallback: every row has its own key value.
  return scan_card < 1 ? 1.0 : scan_card;
}

ScanEstimate EstimateShardedScanCardinality(
    const storage::ShardedRelation& sharded,
    const std::vector<ExprPtr>& accesses, const ExprPtr& filter,
    const std::vector<std::string>& null_rejecting_paths, size_t sample_size) {
  ScanEstimate est;
  const size_t total = sharded.num_rows();
  if (total == 0) return est;
  for (size_t s = 0; s < sharded.shard_count(); s++) {
    const Relation& shard = sharded.shard(s);
    if (shard.num_rows() == 0) continue;
    // Proportional sample split, at least a handful per non-empty shard.
    size_t share = sample_size * shard.num_rows() / total;
    share = std::max<size_t>(share, std::min<size_t>(sample_size, 8));
    est.cardinality += EstimateScanCardinality(shard, accesses, filter,
                                               null_rejecting_paths, share)
                           .cardinality;
  }
  if (est.cardinality < 1) est.cardinality = 1;
  return est;
}

double EstimateShardedJoinKeyDistinct(const storage::ShardedRelation& sharded,
                                      const std::string& encoded_path,
                                      double scan_card) {
  const double card = scan_card < 1 ? 1.0 : scan_card;
  const bool disjoint_keys =
      sharded.shard_options().routing == storage::ShardRouting::kHashKey &&
      sharded.routing_path() == encoded_path;
  double sum = 0;
  double max_one = 0;
  for (size_t s = 0; s < sharded.shard_count(); s++) {
    const Relation& shard = sharded.shard(s);
    if (shard.num_rows() == 0) continue;
    // Per-shard estimate, scaled by the shard's weight in the scan output.
    double shard_card =
        card * static_cast<double>(shard.num_rows()) /
        static_cast<double>(sharded.num_rows() == 0 ? 1 : sharded.num_rows());
    double d = EstimateJoinKeyDistinct(shard, encoded_path, shard_card);
    sum += d;
    max_one = std::max(max_one, d);
  }
  double distinct = disjoint_keys ? sum : std::max(max_one, 1.0);
  return std::min(std::max(distinct, 1.0), card);
}

}  // namespace jsontiles::opt
