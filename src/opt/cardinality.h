// Cardinality estimation for JSON scans and joins (paper §4.6).
//
// With JSON tiles, per-key frequency counters answer "how many tuples contain
// this key path" (the `replies is not null` example) and HyperLogLog sketches
// provide distinct counts for join-size estimation. All storage modes
// additionally sample documents statically at plan time to estimate filter
// selectivity; modes without tile statistics must fall back to the sample and
// a unique-key assumption for joins — which is precisely the information gap
// the paper's Q18 discussion attributes to Sinew.

#ifndef JSONTILES_OPT_CARDINALITY_H_
#define JSONTILES_OPT_CARDINALITY_H_

#include <string>
#include <vector>

#include "exec/expression.h"
#include "storage/relation.h"

namespace jsontiles::storage {
class ShardedRelation;
}  // namespace jsontiles::storage

namespace jsontiles::opt {

struct ScanEstimate {
  double cardinality = 0;  // rows surviving presence + filter
};

/// Estimate the output cardinality of a scan of `relation` whose expression
/// context requires `null_rejecting_paths` to be present and `filter` (over
/// the listed `accesses`, rewritten to slots in access order) to hold.
ScanEstimate EstimateScanCardinality(
    const storage::Relation& relation,
    const std::vector<exec::ExprPtr>& accesses, const exec::ExprPtr& filter,
    const std::vector<std::string>& null_rejecting_paths, size_t sample_size);

/// Distinct values of the join key `encoded_path` on `relation`, given the
/// estimated scan output `scan_card`. Uses HLL sketches when the relation
/// has tile statistics; otherwise assumes the key is unique (returns
/// scan_card), the classic fallback.
double EstimateJoinKeyDistinct(const storage::Relation& relation,
                               const std::string& encoded_path,
                               double scan_card);

/// Sharded scan estimate: sum of the per-shard estimates, with the sample
/// budget split across shards in proportion to their row counts.
ScanEstimate EstimateShardedScanCardinality(
    const storage::ShardedRelation& sharded,
    const std::vector<exec::ExprPtr>& accesses, const exec::ExprPtr& filter,
    const std::vector<std::string>& null_rejecting_paths, size_t sample_size);

/// Distinct join-key values over a sharded relation. When the relation is
/// hash-routed on exactly `encoded_path`, equal keys never straddle shards,
/// so per-shard distinct counts sum; otherwise the same value may recur in
/// every shard and the max per-shard count is the sound lower estimate.
/// Capped at `scan_card` either way.
double EstimateShardedJoinKeyDistinct(const storage::ShardedRelation& sharded,
                                      const std::string& encoded_path,
                                      double scan_card);

}  // namespace jsontiles::opt

#endif  // JSONTILES_OPT_CARDINALITY_H_
