#include "opt/join_order.h"

#include <algorithm>
#include <limits>

#include "util/logging.h"

namespace jsontiles::opt {

namespace {

// Cardinality of joining a subplan of cardinality `card` (covering `mask`)
// with table `t`: divide by the largest max(ndv, ndv) over all edges
// connecting t to the subplan; infinite when unconnected (cross product
// fallback keeps the product).
double JoinCardinality(const JoinGraph& graph, uint32_t mask, double card,
                       int t, bool* connected) {
  double result = card * graph.table_cardinalities[static_cast<size_t>(t)];
  *connected = false;
  double best_divisor = 1;
  for (const auto& e : graph.edges) {
    int other = -1;
    double ndv_t = 1, ndv_other = 1;
    if (e.left == t && (mask >> e.right & 1)) {
      other = e.right;
      ndv_t = e.left_distinct;
      ndv_other = e.right_distinct;
    } else if (e.right == t && (mask >> e.left & 1)) {
      other = e.left;
      ndv_t = e.right_distinct;
      ndv_other = e.left_distinct;
    }
    if (other < 0) continue;
    *connected = true;
    best_divisor = std::max(best_divisor, std::max(ndv_t, ndv_other));
  }
  return result / best_divisor;
}

}  // namespace

JoinOrderResult OptimizeJoinOrder(const JoinGraph& graph) {
  const int n = static_cast<int>(graph.table_cardinalities.size());
  JoinOrderResult result;
  if (n == 0) return result;
  if (n == 1) {
    result.sequence = {0};
    return result;
  }
  JSONTILES_CHECK(n <= 14);

  struct State {
    double cost = std::numeric_limits<double>::infinity();
    double card = 0;
    std::vector<int> sequence;
  };
  std::vector<State> dp(size_t{1} << n);
  for (int t = 0; t < n; t++) {
    State& s = dp[size_t{1} << t];
    s.cost = 0;  // scans are not charged; we minimize intermediate sizes
    s.card = graph.table_cardinalities[static_cast<size_t>(t)];
    s.sequence = {t};
  }

  const uint32_t full = (uint32_t{1} << n) - 1;
  // Two passes: first try connected extensions only; if a subset is
  // unreachable without cross products, a second pass allows them.
  for (int allow_cross = 0; allow_cross < 2; allow_cross++) {
    for (uint32_t mask = 1; mask <= full; mask++) {
      if (dp[mask].sequence.empty()) continue;
      for (int t = 0; t < n; t++) {
        if (mask >> t & 1) continue;
        bool connected;
        double card = JoinCardinality(graph, mask, dp[mask].card, t, &connected);
        if (!connected && allow_cross == 0) continue;
        double penalty = connected ? 0 : card;  // discourage cross products
        double cost = dp[mask].cost + card + penalty;
        uint32_t next = mask | (uint32_t{1} << t);
        if (cost < dp[next].cost) {
          dp[next].cost = cost;
          dp[next].card = card;
          dp[next].sequence = dp[mask].sequence;
          dp[next].sequence.push_back(t);
        }
      }
    }
    if (!dp[full].sequence.empty()) break;
  }

  result.sequence = dp[full].sequence;
  result.estimated_cost = dp[full].cost;
  JSONTILES_CHECK(static_cast<int>(result.sequence.size()) == n);
  return result;
}

}  // namespace jsontiles::opt
