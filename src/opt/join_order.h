// Cost-based join ordering over an inner-equi-join graph.
//
// Dynamic programming over connected subsets (bitmask DP, up to 14 tables)
// minimizing C_out — the sum of intermediate result cardinalities — with the
// standard independence model |L ⋈ R| = |L|·|R| / max(ndv_L, ndv_R) over the
// connecting edges. Emits a left-deep join sequence. Without distinct-count
// statistics the estimates degrade (unique-key assumption), which is how the
// optimizer gap between Tiles and the stat-less baselines manifests (§4.6).

#ifndef JSONTILES_OPT_JOIN_ORDER_H_
#define JSONTILES_OPT_JOIN_ORDER_H_

#include <cstdint>
#include <vector>

namespace jsontiles::opt {

struct JoinGraph {
  /// Estimated scan output cardinality per table.
  std::vector<double> table_cardinalities;

  struct Edge {
    int left = 0;
    int right = 0;
    double left_distinct = 1;
    double right_distinct = 1;
  };
  std::vector<Edge> edges;
};

struct JoinOrderResult {
  /// Left-deep sequence of table indices (first is the initial probe side).
  std::vector<int> sequence;
  double estimated_cost = 0;
};

JoinOrderResult OptimizeJoinOrder(const JoinGraph& graph);

}  // namespace jsontiles::opt

#endif  // JSONTILES_OPT_JOIN_ORDER_H_
