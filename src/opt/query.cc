#include "opt/query.h"

#include <algorithm>
#include <unordered_map>

#include "exec/exchange.h"
#include "obs/plan_profile.h"
#include "opt/cardinality.h"
#include "opt/join_order.h"
#include "tiles/keypath.h"
#include "util/logging.h"

namespace jsontiles::opt {

using exec::AggSpec;
using exec::Expr;
using exec::ExprPtr;
using exec::RowSet;
using exec::Value;

QueryBlock& QueryBlock::AddTable(TableRef table) {
  tables_.push_back(std::move(table));
  return *this;
}

QueryBlock& QueryBlock::AddJoin(ExprPtr left, ExprPtr right, ExprPtr residual) {
  joins_.push_back(JoinEdge{std::move(left), std::move(right), std::move(residual)});
  return *this;
}

QueryBlock& QueryBlock::Where(ExprPtr predicate) {
  where_ = std::move(predicate);
  return *this;
}

QueryBlock& QueryBlock::GroupBy(std::vector<ExprPtr> keys) {
  group_by_ = std::move(keys);
  return *this;
}

QueryBlock& QueryBlock::Aggregate(AggSpec agg) {
  aggs_.push_back(std::move(agg));
  return *this;
}

QueryBlock& QueryBlock::Having(ExprPtr predicate) {
  having_ = std::move(predicate);
  return *this;
}

QueryBlock& QueryBlock::Select(std::vector<ExprPtr> projections) {
  projections_ = std::move(projections);
  return *this;
}

QueryBlock& QueryBlock::OrderBy(ExprPtr key, bool descending) {
  order_by_.push_back(exec::SortKey{std::move(key), descending});
  return *this;
}

QueryBlock& QueryBlock::Limit(size_t n) {
  limit_ = n;
  has_limit_ = true;
  return *this;
}

namespace {

// The table alias an expression's accesses belong to (checked single-table).
std::string OwningTable(const ExprPtr& e) {
  std::vector<ExprPtr> accesses;
  exec::CollectAccesses(e, &accesses);
  JSONTILES_CHECK(!accesses.empty());
  for (const auto& a : accesses) {
    JSONTILES_CHECK(a->table == accesses[0]->table);
  }
  return accesses[0]->table;
}

// Pseudo-scan of a materialized row set: output = the accesses, cast to the
// requested types; filter applied.
RowSet ScanRowset(const TableRef& table, const std::vector<ExprPtr>& accesses,
                  const ExprPtr& filter, exec::QueryContext& ctx) {
  obs::OperatorProfiler prof(ctx.profile, "ScanRows", table.alias);
  prof.set_rows_in(table.rowset->size());
  Arena* arena = ctx.arena(0);
  std::vector<int> column_of(accesses.size(), -1);
  for (size_t i = 0; i < accesses.size(); i++) {
    std::string name = tiles::PathToDisplayString(accesses[i]->path);
    for (size_t c = 0; c < table.rowset_columns.size(); c++) {
      if (table.rowset_columns[c] == name) {
        column_of[i] = static_cast<int>(c);
        break;
      }
    }
    JSONTILES_CHECK(column_of[i] >= 0);
  }
  RowSet out;
  out.reserve(table.rowset->size());
  std::vector<Value> slots(accesses.size());
  for (const auto& row : *table.rowset) {
    for (size_t i = 0; i < accesses.size(); i++) {
      const Value& v = row[static_cast<size_t>(column_of[i])];
      slots[i] = v.type == accesses[i]->access_type
                     ? v
                     : exec::CastValue(v, accesses[i]->access_type, arena);
    }
    if (filter != nullptr) {
      Value keep = exec::EvalExpr(*filter, slots.data(), arena);
      if (keep.is_null() || !keep.bool_value()) continue;
    }
    out.push_back(slots);
  }
  prof.set_rows_out(out.size());
  return out;
}

}  // namespace

/// Everything the planning prefix produces; scoped to one Execute/Explain.
struct QueryBlock::PlanState {
  std::unordered_map<std::string, size_t> table_index;
  /// One slot per distinct access per table (§4.2 push-down).
  std::vector<std::vector<ExprPtr>> table_accesses;
  std::vector<std::vector<std::string>> null_rejecting;
  std::vector<std::vector<exec::RangePredicate>> range_predicates;
  /// Left-deep join sequence over table indices.
  std::vector<int> sequence;
  /// Estimated scan output cardinality per table (declaration order).
  std::vector<double> cards;
  /// C_out of the chosen sequence; 0 unless the DP search ran.
  double estimated_cost = 0;

  int LocalSlot(size_t table, const Expr& access) const {
    const auto& list = table_accesses[table];
    for (size_t i = 0; i < list.size(); i++) {
      if (exec::SameAccess(*list[i], access)) return static_cast<int>(i);
    }
    return -1;
  }
};

void QueryBlock::BuildPlan(const PlannerOptions& options, bool estimate_all,
                           PlanState* state) {
  const size_t num_tables = tables_.size();
  JSONTILES_CHECK(num_tables > 0);

  auto& table_index = state->table_index;
  for (size_t i = 0; i < num_tables; i++) table_index[tables_[i].alias] = i;

  // ---- Access push-down (§4.2): one slot per distinct access per table. ---
  auto& table_accesses = state->table_accesses;
  table_accesses.assign(num_tables, {});
  auto register_accesses = [&](const ExprPtr& e) {
    if (e == nullptr) return;
    std::vector<ExprPtr> found;
    exec::CollectAccesses(e, &found);
    for (const auto& a : found) {
      auto it = table_index.find(a->table);
      JSONTILES_CHECK(it != table_index.end());
      auto& list = table_accesses[it->second];
      bool exists = false;
      for (const auto& existing : list) {
        if (exec::SameAccess(*existing, *a)) {
          exists = true;
          break;
        }
      }
      if (!exists) list.push_back(a);
    }
  };
  for (const auto& t : tables_) register_accesses(t.filter);
  for (const auto& j : joins_) {
    register_accesses(j.left);
    register_accesses(j.right);
    register_accesses(j.residual);
  }
  register_accesses(where_);
  for (const auto& e : group_by_) register_accesses(e);
  for (const auto& a : aggs_) register_accesses(a.arg);
  for (const auto& e : projections_) register_accesses(e);

  // ---- Null-rejecting paths per table (filters + inner-join keys, §4.8)
  // ---- plus zone-map range predicates.
  auto& null_rejecting = state->null_rejecting;
  auto& range_predicates = state->range_predicates;
  null_rejecting.assign(num_tables, {});
  range_predicates.assign(num_tables, {});
  for (size_t i = 0; i < num_tables; i++) {
    exec::CollectNullRejectingPaths(tables_[i].filter, tables_[i].alias,
                                    &null_rejecting[i]);
    exec::CollectRangePredicates(tables_[i].filter, tables_[i].alias,
                                 &range_predicates[i]);
  }
  for (const auto& j : joins_) {
    for (const ExprPtr& side : {j.left, j.right}) {
      std::vector<ExprPtr> found;
      exec::CollectAccesses(side, &found);
      for (const auto& a : found) {
        // Virtual row ids exist for every row; they reject nothing.
        if (a->path == exec::kRowIdPath) continue;
        null_rejecting[table_index[a->table]].push_back(a->path);
      }
    }
  }

  // ---- Join ordering (§4.6). ----------------------------------------------
  auto& sequence = state->sequence;
  auto& cards = state->cards;
  sequence.resize(num_tables);
  for (size_t i = 0; i < num_tables; i++) sequence[i] = static_cast<int>(i);
  cards.assign(num_tables, 1);
  if (num_tables > 1 || estimate_all) {
    for (size_t i = 0; i < num_tables; i++) {
      const TableRef& t = tables_[i];
      if (t.relation != nullptr || t.sharded != nullptr) {
        ExprPtr scan_filter = t.filter == nullptr
                                  ? nullptr
                                  : exec::RewriteAccessesToSlots(
                                        t.filter, [&](const Expr& a) {
                                          return state->LocalSlot(i, a);
                                        });
        if (t.relation != nullptr) {
          cards[i] = EstimateScanCardinality(*t.relation, table_accesses[i],
                                             scan_filter, null_rejecting[i],
                                             options.sample_size)
                         .cardinality;
        } else if (t.sharded_side_path.empty()) {
          cards[i] = EstimateShardedScanCardinality(
                         *t.sharded, table_accesses[i], scan_filter,
                         null_rejecting[i], options.sample_size)
                         .cardinality;
        } else {
          // Side-relation scan: estimate each shard's side part separately.
          cards[i] = 0;
          for (const auto& part : t.sharded->SideParts(t.sharded_side_path)) {
            cards[i] += EstimateScanCardinality(
                            *part.relation, table_accesses[i], scan_filter,
                            null_rejecting[i], options.sample_size)
                            .cardinality;
          }
          if (cards[i] < 1) cards[i] = 1;
        }
      } else {
        cards[i] = static_cast<double>(t.rowset->size());
      }
    }
  }
  if (num_tables > 1 && options.optimize_join_order) {
    JoinGraph graph;
    graph.table_cardinalities = cards;
    for (const auto& j : joins_) {
      JoinGraph::Edge edge;
      size_t lt = table_index[OwningTable(j.left)];
      size_t rt = table_index[OwningTable(j.right)];
      edge.left = static_cast<int>(lt);
      edge.right = static_cast<int>(rt);
      auto key_distinct = [&](const ExprPtr& key, size_t t) -> double {
        if (key->kind != exec::ExprKind::kAccess) return cards[t];
        const TableRef& ref = tables_[t];
        if (ref.relation != nullptr) {
          return EstimateJoinKeyDistinct(*ref.relation, key->path, cards[t]);
        }
        if (ref.sharded != nullptr && ref.sharded_side_path.empty()) {
          return EstimateShardedJoinKeyDistinct(*ref.sharded, key->path,
                                                cards[t]);
        }
        return cards[t];
      };
      edge.left_distinct = key_distinct(j.left, lt);
      edge.right_distinct = key_distinct(j.right, rt);
      graph.edges.push_back(edge);
    }
    JoinOrderResult result = OptimizeJoinOrder(graph);
    sequence = std::move(result.sequence);
    state->estimated_cost = result.estimated_cost;
  }
  chosen_order_.clear();
  for (int t : sequence) chosen_order_.push_back(tables_[static_cast<size_t>(t)].alias);
}

PlanEstimate QueryBlock::Explain(const PlannerOptions& options) {
  PlanState state;
  BuildPlan(options, /*estimate_all=*/true, &state);
  PlanEstimate out;
  out.join_order.reserve(state.sequence.size());
  out.table_rows.reserve(state.sequence.size());
  for (int t : state.sequence) {
    out.join_order.push_back(tables_[static_cast<size_t>(t)].alias);
    out.table_rows.push_back(state.cards[static_cast<size_t>(t)]);
  }
  out.estimated_cost = state.estimated_cost;
  return out;
}

RowSet QueryBlock::Execute(exec::QueryContext& ctx, const PlannerOptions& options) {
  PlanState state;
  BuildPlan(options, /*estimate_all=*/false, &state);

  const size_t num_tables = tables_.size();
  auto& table_index = state.table_index;
  auto& table_accesses = state.table_accesses;
  auto& null_rejecting = state.null_rejecting;
  auto& range_predicates = state.range_predicates;
  auto& sequence = state.sequence;
  auto local_slot = [&](size_t table, const Expr& access) -> int {
    return state.LocalSlot(table, access);
  };

  // ---- Distributed partial-aggregate push-down (DESIGN.md §13). -------------
  // A single-table aggregate over a cluster-served sharded relation skips the
  // scan/aggregate pair entirely: workers scan their shards and aggregate
  // locally, the coordinator merges partials through the same accumulators.
  // With one table the global slot layout equals the scan's local layout, so
  // the rewritten expressions are valid on the worker side verbatim.
  obs::PlanProfile* profile = ctx.profile;
  if (ctx.dist != nullptr && num_tables == 1 && joins_.empty() &&
      where_ == nullptr && (!aggs_.empty() || !group_by_.empty()) &&
      tables_[0].sharded != nullptr && tables_[0].sharded_side_path.empty() &&
      ctx.dist->Serves(tables_[0].sharded)) {
    const TableRef& t = tables_[0];
    exec::ScanSpec spec;
    spec.sharded = t.sharded;
    spec.table_alias = t.alias;
    spec.accesses = table_accesses[0];
    spec.filter = t.filter == nullptr
                      ? nullptr
                      : exec::RewriteAccessesToSlots(
                            t.filter,
                            [&](const Expr& a) { return local_slot(0, a); });
    spec.null_rejecting_paths = null_rejecting[0];
    spec.range_predicates = range_predicates[0];
    std::vector<ExprPtr> keys;
    keys.reserve(group_by_.size());
    for (const auto& e : group_by_) {
      keys.push_back(exec::RewriteAccessesToSlots(
          e, [&](const Expr& a) { return local_slot(0, a); }));
    }
    std::vector<AggSpec> aggs;
    aggs.reserve(aggs_.size());
    for (const auto& a : aggs_) {
      AggSpec rewritten = a;
      if (a.arg != nullptr) {
        rewritten.arg = exec::RewriteAccessesToSlots(
            a.arg, [&](const Expr& e) { return local_slot(0, e); });
      }
      aggs.push_back(std::move(rewritten));
    }
    RowSet out = exec::ExchangeAggregateExec(spec, keys, aggs, ctx);
    if (ctx.cancelled()) return {};
    if (profile != nullptr) profile->SetRoot(profile->last_id());
    auto chain_tail = [&]() {
      if (profile != nullptr) profile->Chain(profile->last_id());
    };
    if (having_ != nullptr) {
      out = exec::FilterExec(std::move(out), having_, ctx);
      chain_tail();
    }
    if (!order_by_.empty()) {
      out = exec::SortExec(std::move(out), order_by_, ctx);
      chain_tail();
    }
    if (has_limit_) {
      out = exec::LimitExec(std::move(out), limit_, ctx);
      chain_tail();
    }
    return out;
  }

  // ---- Scans. ---------------------------------------------------------------
  // Profiled runs wire the plan tree as the operators execute: every operator
  // appends exactly one entry, so ctx.profile->last_id() after a call is that
  // operator's node.
  std::vector<int> scan_node(num_tables, -1);
  std::vector<RowSet> scanned(num_tables);
  for (size_t i = 0; i < num_tables; i++) {
    const TableRef& t = tables_[i];
    ExprPtr scan_filter =
        t.filter == nullptr
            ? nullptr
            : exec::RewriteAccessesToSlots(
                  t.filter, [&](const Expr& a) { return local_slot(i, a); });
    if (t.relation != nullptr || t.sharded != nullptr) {
      exec::ScanSpec spec;
      spec.relation = t.relation;
      spec.sharded = t.sharded;
      spec.sharded_side_path = t.sharded_side_path;
      spec.table_alias = t.alias;
      spec.accesses = table_accesses[i];
      spec.filter = scan_filter;
      spec.null_rejecting_paths = null_rejecting[i];
      spec.range_predicates = range_predicates[i];
      scanned[i] = exec::ScanExec(spec, ctx);
    } else {
      scanned[i] = ScanRowset(t, table_accesses[i], scan_filter, ctx);
    }
    if (profile != nullptr) scan_node[i] = profile->last_id();
    // A failed scan cancels the query; stop planning work immediately (the
    // SQL boundary surfaces the recorded Status).
    if (ctx.cancelled()) return {};
  }

  // ---- Left-deep joins in the chosen order. ---------------------------------
  // Global slot layout: tables in join order, each contributing its accesses.
  std::vector<int> slot_offset(num_tables, -1);
  size_t next_offset = 0;
  auto global_slot_fn = [&](const Expr& access) -> int {
    size_t t = table_index[access.table];
    JSONTILES_CHECK(slot_offset[t] >= 0);
    int local = local_slot(t, access);
    return slot_offset[t] + local;
  };

  size_t first = static_cast<size_t>(sequence[0]);
  slot_offset[first] = 0;
  next_offset = table_accesses[first].size();
  RowSet acc = std::move(scanned[first]);
  std::vector<bool> joined(joins_.size(), false);
  if (profile != nullptr) profile->SetRoot(scan_node[first]);

  for (size_t k = 1; k < sequence.size(); k++) {
    size_t t = static_cast<size_t>(sequence[k]);
    // Edges connecting t to the current set become join keys / residuals.
    std::vector<ExprPtr> probe_keys, build_keys;
    std::vector<ExprPtr> residuals;
    for (size_t j = 0; j < joins_.size(); j++) {
      if (joined[j]) continue;
      size_t lt = table_index[OwningTable(joins_[j].left)];
      size_t rt = table_index[OwningTable(joins_[j].right)];
      bool l_in = slot_offset[lt] >= 0;
      bool r_in = slot_offset[rt] >= 0;
      ExprPtr t_side, set_side;
      if (lt == t && r_in) {
        t_side = joins_[j].left;
        set_side = joins_[j].right;
      } else if (rt == t && l_in) {
        t_side = joins_[j].right;
        set_side = joins_[j].left;
      } else {
        continue;
      }
      joined[j] = true;
      build_keys.push_back(exec::RewriteAccessesToSlots(
          t_side, [&](const Expr& a) { return local_slot(t, a); }));
      probe_keys.push_back(exec::RewriteAccessesToSlots(set_side, global_slot_fn));
      if (joins_[j].residual != nullptr) residuals.push_back(joins_[j].residual);
    }
    // Combined layout after this join: [acc..., t...].
    slot_offset[t] = static_cast<int>(next_offset);
    next_offset += table_accesses[t].size();
    ExprPtr residual = nullptr;
    if (!residuals.empty()) {
      residual = exec::RewriteAccessesToSlots(exec::And(residuals), global_slot_fn);
    }
    acc = exec::HashJoinExec(scanned[t], acc, build_keys, probe_keys,
                             exec::JoinType::kInner, residual, ctx);
    scanned[t].clear();
    if (ctx.cancelled()) return {};
    if (profile != nullptr) {
      // Probe (the accumulated plan so far) first, build scan second.
      int join_id = profile->last_id();
      profile->op(join_id).children.push_back(profile->root());
      profile->op(join_id).children.push_back(scan_node[t]);
      profile->SetRoot(join_id);
    }
  }

  // ---- Post-join cross-table predicate. --------------------------------------
  auto chain_last = [&]() {
    if (profile != nullptr) profile->Chain(profile->last_id());
  };
  if (where_ != nullptr) {
    acc = exec::FilterExec(std::move(acc),
                           exec::RewriteAccessesToSlots(where_, global_slot_fn),
                           ctx);
    chain_last();
  }

  // ---- Aggregation / projection. --------------------------------------------
  RowSet out;
  if (!aggs_.empty() || !group_by_.empty()) {
    std::vector<ExprPtr> keys;
    keys.reserve(group_by_.size());
    for (const auto& e : group_by_) {
      keys.push_back(exec::RewriteAccessesToSlots(e, global_slot_fn));
    }
    std::vector<AggSpec> aggs;
    aggs.reserve(aggs_.size());
    for (const auto& a : aggs_) {
      AggSpec rewritten = a;
      if (a.arg != nullptr) {
        rewritten.arg = exec::RewriteAccessesToSlots(a.arg, global_slot_fn);
      }
      aggs.push_back(std::move(rewritten));
    }
    out = exec::AggregateExec(acc, keys, aggs, ctx);
    chain_last();
    if (ctx.cancelled()) return {};
    if (having_ != nullptr) {
      out = exec::FilterExec(std::move(out), having_, ctx);
      chain_last();
    }
  } else if (!projections_.empty()) {
    std::vector<ExprPtr> projected;
    projected.reserve(projections_.size());
    for (const auto& e : projections_) {
      projected.push_back(exec::RewriteAccessesToSlots(e, global_slot_fn));
    }
    out = exec::ProjectExec(acc, projected, ctx);
    chain_last();
  } else {
    out = std::move(acc);
  }

  if (!order_by_.empty()) {
    out = exec::SortExec(std::move(out), order_by_, ctx);
    chain_last();
  }
  if (has_limit_) {
    out = exec::LimitExec(std::move(out), limit_, ctx);
    chain_last();
  }
  return out;
}

Value ScalarResult(const RowSet& rows) {
  JSONTILES_CHECK(rows.size() == 1 && rows[0].size() >= 1);
  return rows[0][0];
}

}  // namespace jsontiles::opt
