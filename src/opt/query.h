// Query blocks: declarative select-project-join-aggregate units with
// automatic access push-down (§4.2), cast rewriting (§4.3), null-rejection
// analysis for tile skipping (§4.8) and cost-based join ordering (§4.6).
//
// A block owns a set of tables (relations or previously-materialized row
// sets), inner equi-join edges, optional grouping/aggregation, having,
// ordering and limit. Complex queries (correlated subqueries, semi/anti
// joins) compose multiple blocks plus the bare operators of exec/operators.h,
// mirroring how a decorrelating optimizer would stage them.

#ifndef JSONTILES_OPT_QUERY_H_
#define JSONTILES_OPT_QUERY_H_

#include <string>
#include <vector>

#include "exec/operators.h"
#include "exec/scan.h"
#include "storage/relation.h"
#include "storage/shard.h"

namespace jsontiles::opt {

/// A scan source that is either a plain relation or a sharded relation.
/// Implicitly constructible from both, so workload helpers taking
/// `const TableSource&` accept either storage form at the call site.
struct TableSource {
  const storage::Relation* relation = nullptr;
  const storage::ShardedRelation* sharded = nullptr;

  TableSource(const storage::Relation& rel) : relation(&rel) {}
  TableSource(const storage::ShardedRelation& sh) : sharded(&sh) {}
};

struct PlannerOptions {
  /// Run the cost-based join-order search (sampling + tile statistics).
  /// When false, tables join in declaration order.
  bool optimize_join_order = true;
  /// Documents sampled per scan at plan time (§4.6).
  size_t sample_size = 512;
};

/// Plain EXPLAIN output: the optimizer's chosen join order plus the
/// cardinality estimates that drove it, produced without executing.
struct PlanEstimate {
  /// Table aliases in the chosen (left-deep) join order.
  std::vector<std::string> join_order;
  /// Estimated scan output rows per table, aligned with join_order.
  std::vector<double> table_rows;
  /// C_out of the chosen order (sum of intermediate result cardinalities).
  /// Only set when the bitmask-DP search ran (more than one table and
  /// optimize_join_order on); 0 otherwise.
  double estimated_cost = 0;
};

struct TableRef {
  std::string alias;
  const storage::Relation* relation = nullptr;
  /// Alternative source: a sharded relation (scanned shard-by-shard with
  /// shard-level pruning; see exec::ScanSpec::sharded).
  const storage::ShardedRelation* sharded = nullptr;
  /// With `sharded`: scan its array side relations for this encoded array
  /// path instead of the base shards.
  std::string sharded_side_path;
  /// Alternative source: a materialized row set with named columns.
  const exec::RowSet* rowset = nullptr;
  std::vector<std::string> rowset_columns;
  /// Single-table predicate (over this table's accesses); pushed into the
  /// scan.
  exec::ExprPtr filter;

  static TableRef Rel(std::string alias, const storage::Relation* relation,
                      exec::ExprPtr filter = nullptr) {
    TableRef t;
    t.alias = std::move(alias);
    t.relation = relation;
    t.filter = std::move(filter);
    return t;
  }
  static TableRef Sharded(std::string alias,
                          const storage::ShardedRelation* sharded,
                          exec::ExprPtr filter = nullptr) {
    TableRef t;
    t.alias = std::move(alias);
    t.sharded = sharded;
    t.filter = std::move(filter);
    return t;
  }
  /// The array side relations (§3.5) of a sharded load, as one scan source.
  static TableRef ShardedSide(std::string alias,
                              const storage::ShardedRelation* sharded,
                              std::string array_path,
                              exec::ExprPtr filter = nullptr) {
    TableRef t;
    t.alias = std::move(alias);
    t.sharded = sharded;
    t.sharded_side_path = std::move(array_path);
    t.filter = std::move(filter);
    return t;
  }
  /// Either a plain or a sharded scan, per the source's form.
  static TableRef Src(std::string alias, const TableSource& source,
                      exec::ExprPtr filter = nullptr) {
    return source.relation != nullptr
               ? Rel(std::move(alias), source.relation, std::move(filter))
               : Sharded(std::move(alias), source.sharded, std::move(filter));
  }
  static TableRef Rows(std::string alias, const exec::RowSet* rowset,
                       std::vector<std::string> columns,
                       exec::ExprPtr filter = nullptr) {
    TableRef t;
    t.alias = std::move(alias);
    t.rowset = rowset;
    t.rowset_columns = std::move(columns);
    t.filter = std::move(filter);
    return t;
  }
};

class QueryBlock {
 public:
  QueryBlock& AddTable(TableRef table);
  /// Inner equi-join edge `left = right` (each side's accesses must belong to
  /// one table). `residual` is an extra condition evaluated on the joined row.
  QueryBlock& AddJoin(exec::ExprPtr left, exec::ExprPtr right,
                      exec::ExprPtr residual = nullptr);
  /// Cross-table predicate applied after all joins (access-bearing).
  QueryBlock& Where(exec::ExprPtr predicate);
  QueryBlock& GroupBy(std::vector<exec::ExprPtr> keys);
  QueryBlock& Aggregate(exec::AggSpec agg);
  /// Predicate over the aggregate output: slots [group keys..., aggregates...].
  QueryBlock& Having(exec::ExprPtr predicate);
  /// Output expressions for non-aggregating blocks (access-bearing).
  QueryBlock& Select(std::vector<exec::ExprPtr> projections);
  /// Over the block's output slots.
  QueryBlock& OrderBy(exec::ExprPtr key, bool descending = false);
  QueryBlock& Limit(size_t n);

  exec::RowSet Execute(exec::QueryContext& ctx,
                       const PlannerOptions& options = {});

  /// Plan without executing: access push-down, per-scan cardinality
  /// estimation and cost-based join ordering (plain EXPLAIN). Unlike
  /// Execute, estimates are produced even for single-table blocks.
  PlanEstimate Explain(const PlannerOptions& options = {});

  /// Join order chosen by the last Execute/Explain (table aliases).
  const std::vector<std::string>& chosen_join_order() const {
    return chosen_order_;
  }

 private:
  struct PlanState;
  /// Shared planning prefix: access push-down, null-rejection analysis,
  /// cardinality estimation (always when `estimate_all`, else only when a
  /// join order must be chosen) and the join-order search.
  void BuildPlan(const PlannerOptions& options, bool estimate_all,
                 PlanState* state);

  struct JoinEdge {
    exec::ExprPtr left;
    exec::ExprPtr right;
    exec::ExprPtr residual;
  };

  std::vector<TableRef> tables_;
  std::vector<JoinEdge> joins_;
  exec::ExprPtr where_;
  std::vector<exec::ExprPtr> group_by_;
  std::vector<exec::AggSpec> aggs_;
  exec::ExprPtr having_;
  std::vector<exec::ExprPtr> projections_;
  std::vector<exec::SortKey> order_by_;
  size_t limit_ = 0;
  bool has_limit_ = false;
  std::vector<std::string> chosen_order_;
};

/// The single value of a 1x1 result (e.g. a decorrelated scalar subquery).
exec::Value ScalarResult(const exec::RowSet& rows);

}  // namespace jsontiles::opt

#endif  // JSONTILES_OPT_QUERY_H_
