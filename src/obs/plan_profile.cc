#include "obs/plan_profile.h"

#include <cstdio>

namespace jsontiles::obs {

namespace {

std::string FormatMillis(uint64_t nanos) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.3f ms",
                static_cast<double>(nanos) / 1e6);
  return buf;
}

}  // namespace

std::string PlanProfile::FormatTree() const {
  std::string out;
  if (root_ < 0) return out;
  // Iterative pre-order walk; the plan tree is tiny.
  struct Frame {
    int id;
    int depth;
  };
  std::vector<Frame> stack = {{root_, 0}};
  while (!stack.empty()) {
    Frame frame = stack.back();
    stack.pop_back();
    const OperatorStats& op = ops_[static_cast<size_t>(frame.id)];
    if (frame.depth > 0) {
      out.append(static_cast<size_t>(frame.depth - 1) * 3 + 2, ' ');
      out += "-> ";
    }
    out += op.name;
    if (!op.detail.empty()) out += " " + op.detail;
    out += "  (";
    if (op.rows_in > 0 || op.children.empty() == false) {
      out += "rows in=" + std::to_string(op.rows_in) + ", ";
    }
    out += "rows out=" + std::to_string(op.rows_out) + ", " +
           FormatMillis(op.wall_nanos) + ")";
    if (!op.counters.empty()) {
      out += " [";
      for (size_t i = 0; i < op.counters.size(); i++) {
        if (i > 0) out += " ";
        out += op.counters[i].first + "=" + std::to_string(op.counters[i].second);
      }
      out += "]";
    }
    out += "\n";
    // Push children in reverse so the first child prints first.
    for (size_t i = op.children.size(); i-- > 0;) {
      stack.push_back({op.children[i], frame.depth + 1});
    }
  }
  return out;
}

uint64_t PlanProfile::TotalWallNanos() const {
  uint64_t total = 0;
  for (const auto& op : ops_) total += op.wall_nanos;
  return total;
}

}  // namespace jsontiles::obs
