// Per-query operator profiling behind EXPLAIN ANALYZE.
//
// Unlike the global MetricsRegistry this is per-query state: the SQL layer
// attaches a PlanProfile to the QueryContext, every physical operator
// (scan.cc / operators.cc) appends one OperatorStats entry via the RAII
// OperatorProfiler, and the planner (opt/query.cc, sql/sql_parser.cc) wires
// the entries into a tree as it composes the plan. With a null profile the
// whole mechanism costs one branch per operator call.

#ifndef JSONTILES_OBS_PLAN_PROFILE_H_
#define JSONTILES_OBS_PLAN_PROFILE_H_

#include <chrono>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace jsontiles::obs {

struct OperatorStats {
  std::string name;    // "Scan", "HashJoin", "Aggregate", ...
  std::string detail;  // e.g. table alias, join arity
  uint64_t rows_in = 0;
  uint64_t rows_out = 0;
  uint64_t wall_nanos = 0;
  /// Operator-specific extras, e.g. {"tiles", 6}, {"tiles_skipped", 2}.
  std::vector<std::pair<std::string, int64_t>> counters;
  std::vector<int> children;  // ids within the owning PlanProfile
};

class PlanProfile {
 public:
  /// Append an entry; returns its id. Entries arrive in execution order, so
  /// ids are also a topological order of the finished tree (children first).
  int Add(OperatorStats stats) {
    ops_.push_back(std::move(stats));
    return static_cast<int>(ops_.size()) - 1;
  }

  int last_id() const { return static_cast<int>(ops_.size()) - 1; }
  size_t size() const { return ops_.size(); }

  OperatorStats& op(int id) { return ops_[static_cast<size_t>(id)]; }
  const OperatorStats& op(int id) const { return ops_[static_cast<size_t>(id)]; }

  /// Root of the (partially wired) plan; -1 until the first operator ran.
  int root() const { return root_; }
  void SetRoot(int id) { root_ = id; }

  /// Make `id` the new root with the previous root as its child (the common
  /// "pipeline grows upward" wiring step).
  void Chain(int id) {
    if (root_ >= 0) op(id).children.push_back(root_);
    root_ = id;
  }

  /// Annotated operator tree, one operator per line, children indented:
  ///   Aggregate  (rows in=6005, out=4, 1.23 ms)
  ///     -> Scan lineitem  (rows out=6005, 5.01 ms) [tiles=6 tiles_skipped=2]
  std::string FormatTree() const;

  uint64_t TotalWallNanos() const;

 private:
  std::vector<OperatorStats> ops_;
  int root_ = -1;
};

/// RAII collection of one OperatorStats entry. Construct before the operator
/// does any work; the destructor stamps the wall time and appends the entry.
/// With a null profile every method is a no-op.
class OperatorProfiler {
 public:
  OperatorProfiler(PlanProfile* profile, std::string name,
                   std::string detail = {})
      : profile_(profile) {
    if (profile_ != nullptr) {
      stats_.name = std::move(name);
      stats_.detail = std::move(detail);
      start_ = std::chrono::steady_clock::now();
    }
  }
  ~OperatorProfiler() {
    if (profile_ != nullptr) {
      stats_.wall_nanos = static_cast<uint64_t>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(
              std::chrono::steady_clock::now() - start_)
              .count());
      profile_->Add(std::move(stats_));
    }
  }
  OperatorProfiler(const OperatorProfiler&) = delete;
  OperatorProfiler& operator=(const OperatorProfiler&) = delete;

  bool active() const { return profile_ != nullptr; }
  void set_detail(std::string detail) {
    if (profile_ != nullptr) stats_.detail = std::move(detail);
  }
  void set_rows_in(uint64_t n) {
    if (profile_ != nullptr) stats_.rows_in = n;
  }
  void set_rows_out(uint64_t n) {
    if (profile_ != nullptr) stats_.rows_out = n;
  }
  void AddCounter(std::string name, int64_t value) {
    if (profile_ != nullptr) stats_.counters.emplace_back(std::move(name), value);
  }

 private:
  PlanProfile* profile_;
  OperatorStats stats_;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace jsontiles::obs

#endif  // JSONTILES_OBS_PLAN_PROFILE_H_
