// Process-wide metrics: counters, gauges and fixed-bucket histograms.
//
// Writes are the hot path: every metric shards its state over a small
// power-of-two number of cache-line-aligned slots, and a thread writes only
// its own slot (assigned round-robin on first use). Reads aggregate all
// slots, so Value()/snapshot are O(shards) but never contend with writers.
//
// Metrics register by name in a MetricsRegistry; the default registry is a
// process singleton. Metric objects live for the registry's lifetime, so hot
// call sites cache the pointer (see the macros in obs/obs.h). Reset() zeroes
// the recorded values but keeps every registration alive — pointers held by
// call sites stay valid.
//
// Naming convention: dotted lower-case paths, subsystem first —
// "jsonb.transform.bytes_in", "mining.fptree_nodes", "scan.tiles_skipped".

#ifndef JSONTILES_OBS_METRICS_H_
#define JSONTILES_OBS_METRICS_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace jsontiles::obs {

/// Shard index of the calling thread (round-robin assignment, stable for the
/// thread's lifetime).
size_t ThreadShardIndex();

inline constexpr size_t kMetricShards = 16;  // power of two

class Counter {
 public:
  void Add(int64_t delta) {
    shards_[ThreadShardIndex() & (kMetricShards - 1)].value.fetch_add(
        delta, std::memory_order_relaxed);
  }
  void Increment() { Add(1); }

  int64_t Value() const {
    int64_t total = 0;
    for (const auto& s : shards_) total += s.value.load(std::memory_order_relaxed);
    return total;
  }

  void Reset() {
    for (auto& s : shards_) s.value.store(0, std::memory_order_relaxed);
  }

 private:
  struct alignas(64) Shard {
    std::atomic<int64_t> value{0};
  };
  std::array<Shard, kMetricShards> shards_;
};

/// Last-write-wins instantaneous value (not sharded: sets are rare).
class Gauge {
 public:
  void Set(double value) { value_.store(value, std::memory_order_relaxed); }
  double Value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { Set(0); }

 private:
  std::atomic<double> value_{0};
};

/// Fixed-bucket histogram. Bucket i counts values <= bounds[i]; one overflow
/// bucket counts the rest. Also tracks count and sum for mean derivation.
class Histogram {
 public:
  /// Default buckets: exponential 1..~1e6, suitable for microsecond latencies.
  static std::vector<double> DefaultBounds();

  explicit Histogram(std::vector<double> bounds);

  void Record(double value);

  const std::vector<double>& bounds() const { return bounds_; }

  struct Snapshot {
    std::vector<double> bounds;
    std::vector<int64_t> buckets;  // bounds.size() + 1 entries
    int64_t count = 0;
    double sum = 0;
    double Mean() const { return count == 0 ? 0 : sum / static_cast<double>(count); }
  };
  Snapshot GetSnapshot() const;

  void Reset();

 private:
  struct alignas(64) Shard {
    // buckets.size() == bounds.size() + 1; sum stored as double bits.
    std::vector<std::atomic<int64_t>> buckets;
    std::atomic<int64_t> count{0};
    std::atomic<double> sum{0};
  };
  std::vector<double> bounds_;
  std::array<Shard, kMetricShards> shards_;
};

/// Named metrics. Get* registers on first use and returns the same object
/// afterwards; a name maps to exactly one metric kind (checked).
class MetricsRegistry {
 public:
  static MetricsRegistry& Default();

  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  Counter* GetCounter(std::string_view name);
  Gauge* GetGauge(std::string_view name);
  /// Empty `bounds` means Histogram::DefaultBounds(). The bounds of the first
  /// registration win.
  Histogram* GetHistogram(std::string_view name,
                          std::vector<double> bounds = {});

  /// Zero all recorded values; registrations (and pointers) stay valid.
  void ResetAll();

  /// "name value" lines, sorted by name. Histograms dump count/sum/mean plus
  /// one line per bucket.
  std::string ToText() const;

  /// One JSON object: {"counters":{...},"gauges":{...},"histograms":{...}}.
  std::string ToJson() const;

 private:
  enum class Kind { kCounter, kGauge, kHistogram };
  struct Entry {
    Kind kind;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };

  mutable std::mutex mutex_;
  std::map<std::string, Entry, std::less<>> metrics_;
};

/// Append a JSON string literal (quotes + escapes) to `out`. Shared by the
/// metrics dump, the trace exporter and the bench --metrics-json writer.
void AppendJsonString(std::string_view s, std::string* out);

/// Per-resource-group service metrics, named "service.<group>.<name>"
/// (e.g. "service.etl.rejected", "service.etl.running"). Group names are
/// dynamic, so these cannot use the static-caching macros in obs/obs.h —
/// they take the registry mutex on every call. The admission layer only
/// touches them on cold paths (admit, reject, query completion), never per
/// row or batch. Registrations survive group teardown: counters keep their
/// totals across a drop/recreate of the same group name.
Counter* GroupCounter(std::string_view group, std::string_view name);
Gauge* GroupGauge(std::string_view group, std::string_view name);

}  // namespace jsontiles::obs

#endif  // JSONTILES_OBS_METRICS_H_
