#include "obs/metrics.h"

#include <algorithm>
#include <cstdio>

namespace jsontiles::obs {

size_t ThreadShardIndex() {
  static std::atomic<size_t> next{0};
  thread_local size_t shard = next.fetch_add(1, std::memory_order_relaxed);
  return shard;
}

std::vector<double> Histogram::DefaultBounds() {
  // 1, 2, 5 per decade across 1 .. 1e6 (microsecond latencies up to ~1 s).
  std::vector<double> bounds;
  for (double decade = 1; decade <= 1e6; decade *= 10) {
    bounds.push_back(decade);
    bounds.push_back(decade * 2);
    bounds.push_back(decade * 5);
  }
  return bounds;
}

Histogram::Histogram(std::vector<double> bounds) : bounds_(std::move(bounds)) {
  for (auto& shard : shards_) {
    shard.buckets = std::vector<std::atomic<int64_t>>(bounds_.size() + 1);
  }
}

void Histogram::Record(double value) {
  size_t bucket =
      std::lower_bound(bounds_.begin(), bounds_.end(), value) - bounds_.begin();
  Shard& shard = shards_[ThreadShardIndex() & (kMetricShards - 1)];
  shard.buckets[bucket].fetch_add(1, std::memory_order_relaxed);
  shard.count.fetch_add(1, std::memory_order_relaxed);
  // Relaxed CAS loop: atomic<double> has no fetch_add before C++20's
  // fetch_add(double) which libstdc++ only provides for integral/FP TS; keep
  // it portable.
  double sum = shard.sum.load(std::memory_order_relaxed);
  while (!shard.sum.compare_exchange_weak(sum, sum + value,
                                          std::memory_order_relaxed)) {
  }
}

Histogram::Snapshot Histogram::GetSnapshot() const {
  Snapshot snap;
  snap.bounds = bounds_;
  snap.buckets.assign(bounds_.size() + 1, 0);
  for (const auto& shard : shards_) {
    for (size_t i = 0; i < shard.buckets.size(); i++) {
      snap.buckets[i] += shard.buckets[i].load(std::memory_order_relaxed);
    }
    snap.count += shard.count.load(std::memory_order_relaxed);
    snap.sum += shard.sum.load(std::memory_order_relaxed);
  }
  return snap;
}

void Histogram::Reset() {
  for (auto& shard : shards_) {
    for (auto& b : shard.buckets) b.store(0, std::memory_order_relaxed);
    shard.count.store(0, std::memory_order_relaxed);
    shard.sum.store(0, std::memory_order_relaxed);
  }
}

MetricsRegistry& MetricsRegistry::Default() {
  static MetricsRegistry* registry = new MetricsRegistry();  // never destroyed
  return *registry;
}

Counter* MetricsRegistry::GetCounter(std::string_view name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = metrics_.find(name);
  if (it == metrics_.end()) {
    Entry entry;
    entry.kind = Kind::kCounter;
    entry.counter = std::make_unique<Counter>();
    it = metrics_.emplace(std::string(name), std::move(entry)).first;
  }
  return it->second.counter.get();
}

Gauge* MetricsRegistry::GetGauge(std::string_view name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = metrics_.find(name);
  if (it == metrics_.end()) {
    Entry entry;
    entry.kind = Kind::kGauge;
    entry.gauge = std::make_unique<Gauge>();
    it = metrics_.emplace(std::string(name), std::move(entry)).first;
  }
  return it->second.gauge.get();
}

Histogram* MetricsRegistry::GetHistogram(std::string_view name,
                                         std::vector<double> bounds) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = metrics_.find(name);
  if (it == metrics_.end()) {
    Entry entry;
    entry.kind = Kind::kHistogram;
    entry.histogram = std::make_unique<Histogram>(
        bounds.empty() ? Histogram::DefaultBounds() : std::move(bounds));
    it = metrics_.emplace(std::string(name), std::move(entry)).first;
  }
  return it->second.histogram.get();
}

void MetricsRegistry::ResetAll() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto& [name, entry] : metrics_) {
    switch (entry.kind) {
      case Kind::kCounter: entry.counter->Reset(); break;
      case Kind::kGauge: entry.gauge->Reset(); break;
      case Kind::kHistogram: entry.histogram->Reset(); break;
    }
  }
}

namespace {

std::string FormatDouble(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

}  // namespace

void AppendJsonString(std::string_view s, std::string* out) {
  out->push_back('"');
  for (char c : s) {
    switch (c) {
      case '"': *out += "\\\""; break;
      case '\\': *out += "\\\\"; break;
      case '\n': *out += "\\n"; break;
      case '\r': *out += "\\r"; break;
      case '\t': *out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          *out += buf;
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

std::string MetricsRegistry::ToText() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::string out;
  for (const auto& [name, entry] : metrics_) {
    switch (entry.kind) {
      case Kind::kCounter:
        out += name + " " + std::to_string(entry.counter->Value()) + "\n";
        break;
      case Kind::kGauge:
        out += name + " " + FormatDouble(entry.gauge->Value()) + "\n";
        break;
      case Kind::kHistogram: {
        auto snap = entry.histogram->GetSnapshot();
        out += name + ".count " + std::to_string(snap.count) + "\n";
        out += name + ".sum " + FormatDouble(snap.sum) + "\n";
        out += name + ".mean " + FormatDouble(snap.Mean()) + "\n";
        for (size_t i = 0; i < snap.buckets.size(); i++) {
          if (snap.buckets[i] == 0) continue;  // keep the dump compact
          std::string le =
              i < snap.bounds.size() ? FormatDouble(snap.bounds[i]) : "inf";
          out += name + ".le." + le + " " + std::to_string(snap.buckets[i]) + "\n";
        }
        break;
      }
    }
  }
  return out;
}

std::string MetricsRegistry::ToJson() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::string counters, gauges, histograms;
  for (const auto& [name, entry] : metrics_) {
    switch (entry.kind) {
      case Kind::kCounter:
        if (!counters.empty()) counters += ",";
        AppendJsonString(name, &counters);
        counters += ":" + std::to_string(entry.counter->Value());
        break;
      case Kind::kGauge:
        if (!gauges.empty()) gauges += ",";
        AppendJsonString(name, &gauges);
        gauges += ":" + FormatDouble(entry.gauge->Value());
        break;
      case Kind::kHistogram: {
        auto snap = entry.histogram->GetSnapshot();
        if (!histograms.empty()) histograms += ",";
        AppendJsonString(name, &histograms);
        histograms += ":{\"count\":" + std::to_string(snap.count) +
                      ",\"sum\":" + FormatDouble(snap.sum) + ",\"mean\":" +
                      FormatDouble(snap.Mean()) + ",\"buckets\":[";
        for (size_t i = 0; i < snap.buckets.size(); i++) {
          if (i > 0) histograms += ",";
          histograms += "{\"le\":";
          histograms += i < snap.bounds.size()
                            ? FormatDouble(snap.bounds[i])
                            : std::string("\"inf\"");
          histograms += ",\"n\":" + std::to_string(snap.buckets[i]) + "}";
        }
        histograms += "]}";
        break;
      }
    }
  }
  return "{\"counters\":{" + counters + "},\"gauges\":{" + gauges +
         "},\"histograms\":{" + histograms + "}}";
}

namespace {
std::string GroupMetricName(std::string_view group, std::string_view name) {
  std::string full;
  full.reserve(8 + group.size() + 1 + name.size());
  full += "service.";
  full += group;
  full += ".";
  full += name;
  return full;
}
}  // namespace

Counter* GroupCounter(std::string_view group, std::string_view name) {
  return MetricsRegistry::Default().GetCounter(GroupMetricName(group, name));
}

Gauge* GroupGauge(std::string_view group, std::string_view name) {
  return MetricsRegistry::Default().GetGauge(GroupMetricName(group, name));
}

}  // namespace jsontiles::obs
