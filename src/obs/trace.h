// Tracing: RAII spans collected into per-thread buffers, exported as a
// chrome://tracing / Perfetto-compatible JSON file ("traceEvents" with "X"
// complete events).
//
// Tracing is off by default; TraceCollector::Default().set_enabled(true)
// turns it on (the bench binaries do this behind --trace-json). A disabled
// collector makes TraceSpan construction a single relaxed atomic load.
//
// ScopedTimer is the metrics sibling: it measures the enclosing scope and
// records microseconds into a Histogram and/or a double output.

#ifndef JSONTILES_OBS_TRACE_H_
#define JSONTILES_OBS_TRACE_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "obs/metrics.h"
#include "util/status.h"

namespace jsontiles::obs {

struct TraceEvent {
  std::string name;
  uint64_t ts_micros = 0;   // start, relative to the collector epoch
  uint64_t dur_micros = 0;  // duration
  uint32_t tid = 0;         // small per-thread id, stable per thread
};

class TraceCollector {
 public:
  static TraceCollector& Default();

  TraceCollector();
  TraceCollector(const TraceCollector&) = delete;
  TraceCollector& operator=(const TraceCollector&) = delete;

  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }
  void set_enabled(bool on) { enabled_.store(on, std::memory_order_relaxed); }

  /// Microseconds since the collector epoch.
  uint64_t NowMicros() const;

  /// Append one complete event to the calling thread's buffer.
  void Record(std::string name, uint64_t ts_micros, uint64_t dur_micros);

  /// All recorded events (merged across threads, in per-thread order).
  std::vector<TraceEvent> Snapshot() const;

  /// Drop all recorded events (buffers stay registered).
  void Clear();

  /// {"traceEvents":[...],"displayTimeUnit":"ms"} — loadable by
  /// chrome://tracing and https://ui.perfetto.dev.
  std::string ToChromeTraceJson() const;
  Status WriteChromeTrace(const std::string& path) const;

 private:
  struct ThreadBuffer {
    uint32_t tid;
    std::mutex mutex;  // contended only by Snapshot/Clear
    std::vector<TraceEvent> events;
  };
  ThreadBuffer* BufferForThisThread();

  std::atomic<bool> enabled_{false};
  std::chrono::steady_clock::time_point epoch_;
  mutable std::mutex mutex_;  // guards buffers_ registration
  std::vector<std::shared_ptr<ThreadBuffer>> buffers_;
};

/// RAII span: records [construction, destruction) into the collector when
/// tracing is enabled. `name` must outlive the span (string literals).
class TraceSpan {
 public:
  explicit TraceSpan(const char* name,
                     TraceCollector& collector = TraceCollector::Default())
      : collector_(collector) {
    if (collector_.enabled()) {
      name_ = name;
      start_ = collector_.NowMicros();
    }
  }
  ~TraceSpan() {
    if (name_ != nullptr) {
      collector_.Record(name_, start_, collector_.NowMicros() - start_);
    }
  }
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

 private:
  TraceCollector& collector_;
  const char* name_ = nullptr;  // null when tracing was disabled at entry
  uint64_t start_ = 0;
};

/// Measures the enclosing scope; on destruction records elapsed microseconds
/// into the histogram (if any) and/or stores elapsed seconds into `out_secs`.
class ScopedTimer {
 public:
  explicit ScopedTimer(Histogram* histogram, double* out_secs = nullptr)
      : histogram_(histogram), out_secs_(out_secs),
        start_(std::chrono::steady_clock::now()) {}
  ~ScopedTimer() {
    double secs = std::chrono::duration<double>(
                      std::chrono::steady_clock::now() - start_)
                      .count();
    if (histogram_ != nullptr) histogram_->Record(secs * 1e6);
    if (out_secs_ != nullptr) *out_secs_ = secs;
  }
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  Histogram* histogram_;
  double* out_secs_;
  std::chrono::steady_clock::time_point start_;
};

/// Manual stopwatch for multi-phase timings (e.g. the two JSONB passes).
class Stopwatch {
 public:
  Stopwatch() : start_(std::chrono::steady_clock::now()) {}
  /// Seconds since construction or the previous Lap().
  double Lap() {
    auto now = std::chrono::steady_clock::now();
    double secs = std::chrono::duration<double>(now - start_).count();
    start_ = now;
    return secs;
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

}  // namespace jsontiles::obs

#endif  // JSONTILES_OBS_TRACE_H_
