// Observability macro seam.
//
// The CMake option JSONTILES_OBS (default ON) defines JSONTILES_OBS_ENABLED.
// When the option is OFF every macro below expands to nothing, so hot paths
// carry zero instrumentation cost — no clock reads, no registry lookups, no
// atomic traffic. The obs classes themselves (MetricsRegistry, TraceCollector,
// PlanProfile) are always compiled: they are plain library code, and per-query
// EXPLAIN ANALYZE profiling is gated at runtime by a null PlanProfile pointer
// instead of at compile time.
//
// Call sites cache the metric pointer in a function-local static, so the
// registry mutex is touched once per call site, not once per call.

#ifndef JSONTILES_OBS_OBS_H_
#define JSONTILES_OBS_OBS_H_

#ifdef JSONTILES_OBS_ENABLED
#define JSONTILES_OBS_AVAILABLE 1
#else
#define JSONTILES_OBS_AVAILABLE 0
#endif

#if JSONTILES_OBS_AVAILABLE

#include "obs/metrics.h"
#include "obs/trace.h"

/// Statements that only exist when instrumentation is compiled in (e.g.
/// stopwatch reads feeding a histogram).
#define JSONTILES_OBS_ONLY(...) __VA_ARGS__

#define JSONTILES_COUNTER_ADD(name, delta)                       \
  do {                                                           \
    static ::jsontiles::obs::Counter* jsontiles_obs_counter_ =   \
        ::jsontiles::obs::MetricsRegistry::Default().GetCounter( \
            name);                                               \
    jsontiles_obs_counter_->Add(delta);                          \
  } while (0)

#define JSONTILES_GAUGE_SET(name, value)                       \
  do {                                                         \
    static ::jsontiles::obs::Gauge* jsontiles_obs_gauge_ =     \
        ::jsontiles::obs::MetricsRegistry::Default().GetGauge( \
            name);                                             \
    jsontiles_obs_gauge_->Set(value);                          \
  } while (0)

/// Record into a histogram with the default (latency-shaped) buckets.
#define JSONTILES_HIST_RECORD(name, value)                         \
  do {                                                             \
    static ::jsontiles::obs::Histogram* jsontiles_obs_hist_ =      \
        ::jsontiles::obs::MetricsRegistry::Default().GetHistogram( \
            name);                                                 \
    jsontiles_obs_hist_->Record(value);                            \
  } while (0)

#define JSONTILES_OBS_CONCAT_INNER(a, b) a##b
#define JSONTILES_OBS_CONCAT(a, b) JSONTILES_OBS_CONCAT_INNER(a, b)

/// RAII trace span covering the rest of the enclosing scope.
#define JSONTILES_TRACE_SPAN(name)                  \
  ::jsontiles::obs::TraceSpan JSONTILES_OBS_CONCAT( \
      jsontiles_obs_span_, __LINE__)(name)

#else  // !JSONTILES_OBS_AVAILABLE

#define JSONTILES_OBS_ONLY(...)
#define JSONTILES_COUNTER_ADD(name, delta) \
  do {                                     \
  } while (0)
#define JSONTILES_GAUGE_SET(name, value) \
  do {                                   \
  } while (0)
#define JSONTILES_HIST_RECORD(name, value) \
  do {                                     \
  } while (0)
#define JSONTILES_TRACE_SPAN(name) \
  do {                             \
  } while (0)

#endif  // JSONTILES_OBS_AVAILABLE

#endif  // JSONTILES_OBS_OBS_H_
