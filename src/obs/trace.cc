#include "obs/trace.h"

#include <cstdio>

namespace jsontiles::obs {

TraceCollector& TraceCollector::Default() {
  static TraceCollector* collector = new TraceCollector();  // never destroyed
  return *collector;
}

TraceCollector::TraceCollector() : epoch_(std::chrono::steady_clock::now()) {}

uint64_t TraceCollector::NowMicros() const {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - epoch_)
          .count());
}

TraceCollector::ThreadBuffer* TraceCollector::BufferForThisThread() {
  // One buffer per (collector, thread). The thread_local caches the last
  // collector's buffer; tests with private collectors re-resolve on mismatch.
  thread_local TraceCollector* cached_owner = nullptr;
  thread_local ThreadBuffer* cached_buffer = nullptr;
  if (cached_owner == this && cached_buffer != nullptr) return cached_buffer;
  std::lock_guard<std::mutex> lock(mutex_);
  auto buffer = std::make_shared<ThreadBuffer>();
  buffer->tid = static_cast<uint32_t>(buffers_.size());
  buffers_.push_back(buffer);
  cached_owner = this;
  cached_buffer = buffer.get();  // kept alive by buffers_
  return cached_buffer;
}

void TraceCollector::Record(std::string name, uint64_t ts_micros,
                            uint64_t dur_micros) {
  ThreadBuffer* buffer = BufferForThisThread();
  TraceEvent event;
  event.name = std::move(name);
  event.ts_micros = ts_micros;
  event.dur_micros = dur_micros;
  event.tid = buffer->tid;
  std::lock_guard<std::mutex> lock(buffer->mutex);
  buffer->events.push_back(std::move(event));
}

std::vector<TraceEvent> TraceCollector::Snapshot() const {
  std::vector<std::shared_ptr<ThreadBuffer>> buffers;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    buffers = buffers_;
  }
  std::vector<TraceEvent> out;
  for (const auto& buffer : buffers) {
    std::lock_guard<std::mutex> lock(buffer->mutex);
    out.insert(out.end(), buffer->events.begin(), buffer->events.end());
  }
  return out;
}

void TraceCollector::Clear() {
  std::vector<std::shared_ptr<ThreadBuffer>> buffers;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    buffers = buffers_;
  }
  for (const auto& buffer : buffers) {
    std::lock_guard<std::mutex> lock(buffer->mutex);
    buffer->events.clear();
  }
}

std::string TraceCollector::ToChromeTraceJson() const {
  std::vector<TraceEvent> events = Snapshot();
  std::string out = "{\"traceEvents\":[";
  for (size_t i = 0; i < events.size(); i++) {
    const TraceEvent& e = events[i];
    if (i > 0) out += ",";
    out += "{\"name\":";
    AppendJsonString(e.name, &out);
    out += ",\"cat\":\"jsontiles\",\"ph\":\"X\",\"pid\":1,\"tid\":" +
           std::to_string(e.tid) + ",\"ts\":" + std::to_string(e.ts_micros) +
           ",\"dur\":" + std::to_string(e.dur_micros) + "}";
  }
  out += "],\"displayTimeUnit\":\"ms\"}";
  return out;
}

Status TraceCollector::WriteChromeTrace(const std::string& path) const {
  std::string json = ToChromeTraceJson();
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    return Status::InvalidArgument("cannot open trace file '" + path + "'");
  }
  size_t written = std::fwrite(json.data(), 1, json.size(), f);
  std::fclose(f);
  if (written != json.size()) {
    return Status::Internal("short write to trace file '" + path + "'");
  }
  return Status::OK();
}

}  // namespace jsontiles::obs
