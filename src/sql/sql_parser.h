// A SQL subset front-end over the query engine — the interface the paper's
// system exposes (§4.1/§4.2): PostgreSQL-style JSON accesses with cast
// push-down, evaluated through JSON tiles.
//
// Supported grammar (one SELECT block; compose blocks in C++ for nested
// queries):
//
//   SELECT item [, item]*
//   FROM table alias [, table alias]*
//   [WHERE expr] [GROUP BY expr [, expr]*] [HAVING expr]
//   [ORDER BY ord [, ord]*] [LIMIT n]
//
//   item  := expr [AS name]
//   expr  := accesses `alias->'k'->>'k2'::type`, literals (42, 1.5, 'text',
//            DATE '1998-12-01', TRUE, NULL), + - * / %, comparisons,
//            AND/OR/NOT, [NOT] LIKE, [NOT] IN (...), BETWEEN .. AND ..,
//            IS [NOT] NULL, CASE WHEN .. THEN .. [ELSE ..] END,
//            EXTRACT(YEAR FROM e), SUBSTRING(e FROM i FOR n),
//            CONTAINS(alias->'array', 'member', 'value'),
//            SUM/AVG/MIN/MAX(e), COUNT(*), COUNT([DISTINCT] e)
//   ord   := ordinal | alias-name | expr, each [ASC|DESC]
//   type  := BIGINT/INT/INTEGER, FLOAT/DOUBLE/DECIMAL(as float), NUMERIC,
//            TEXT/VARCHAR, TIMESTAMP/DATE, BOOL
//
// Binding performs the paper's §4.2 rewrite automatically: single-table
// WHERE conjuncts are pushed into the scans, equality conjuncts between two
// tables become join edges (ordered by the cost-based optimizer), and the
// remainder runs as a post-join predicate.

#ifndef JSONTILES_SQL_SQL_PARSER_H_
#define JSONTILES_SQL_SQL_PARSER_H_

#include <map>
#include <memory>
#include <string>
#include <string_view>

#include "exec/scan.h"
#include "obs/plan_profile.h"
#include "opt/query.h"
#include "storage/relation.h"
#include "util/status.h"

namespace jsontiles::sql {

struct SqlCatalog {
  std::map<std::string, const storage::Relation*> tables;
  /// Sharded tables, by the same namespace as `tables` (a name must not
  /// appear in both). Scans iterate shards with shard-level pruning; EXPLAIN
  /// ANALYZE reports shards scanned/pruned in the footer.
  std::map<std::string, const storage::ShardedRelation*> sharded_tables;
  /// Distributed runtime (exec/exchange.h; a dist::Cluster). Not owned.
  /// When set, it is attached to the QueryContext for each statement:
  /// sharded scans of relations the runtime serves execute on the cluster's
  /// worker processes, and eligible aggregates push partials down.
  exec::DistRuntime* dist = nullptr;
};

struct SqlResult {
  exec::RowSet rows;
  std::vector<std::string> column_names;
  /// Set for EXPLAIN ANALYZE statements: the per-operator profile of the
  /// executed plan. The rows then hold the rendered plan, one text line per
  /// row, in a single "QUERY PLAN" column (PostgreSQL-style).
  std::shared_ptr<obs::PlanProfile> profile;
};

/// Parse, bind, optimize and execute one SELECT statement. A statement may
/// be prefixed with EXPLAIN ANALYZE — the query still executes fully, but
/// the result is the annotated operator tree (see SqlResult::profile) — or
/// with plain EXPLAIN, which binds and plans only: the result holds the
/// optimizer's chosen join order and cardinality estimates, one text line
/// per row, without executing the query.
Result<SqlResult> ExecuteSql(std::string_view statement,
                             const SqlCatalog& catalog,
                             exec::QueryContext& ctx,
                             const opt::PlannerOptions& planner = {});

/// Render a result like psql (for examples/tools).
std::string FormatSqlResult(const SqlResult& result, size_t max_rows = 50);

}  // namespace jsontiles::sql

#endif  // JSONTILES_SQL_SQL_PARSER_H_
