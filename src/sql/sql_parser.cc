#include "sql/sql_parser.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <memory>

#include "exec/operators.h"
#include "sql/sql_lexer.h"
#include "tiles/keypath.h"

namespace jsontiles::sql {

namespace {

using exec::AggSpec;
using exec::Expr;
using exec::ExprKind;
using exec::ExprPtr;
using exec::RowSet;
using exec::Value;
using exec::ValueType;

// Aggregates are parsed into a side list; the expression tree holds a marker
// slot reference in their place, resolved after aggregation.
constexpr int kAggMarkerBase = 1 << 20;

struct SelectItem {
  ExprPtr expr;
  std::string alias;  // may be empty
};

struct OrderItem {
  // Exactly one of: ordinal (1-based), alias, expr.
  int ordinal = 0;
  std::string alias;
  ExprPtr expr;
  bool descending = false;
};

struct ParsedQuery {
  std::vector<SelectItem> select;
  std::vector<std::pair<std::string, std::string>> tables;  // name, alias
  ExprPtr where;
  std::vector<ExprPtr> group_by;
  ExprPtr having;
  std::vector<OrderItem> order_by;
  size_t limit = 0;
  bool has_limit = false;
  std::vector<AggSpec> aggs;
};

class Parser {
 public:
  explicit Parser(std::vector<SqlToken> tokens) : tokens_(std::move(tokens)) {}

  Status Parse(ParsedQuery* out) {
    query_ = out;
    JSONTILES_RETURN_NOT_OK(ExpectKeyword("SELECT"));
    // Select list.
    while (true) {
      SelectItem item;
      JSONTILES_RETURN_NOT_OK(ParseExpr(&item.expr));
      if (AcceptKeyword("AS")) {
        if (Peek().type != TokenType::kIdentifier) {
          return Error("alias expected after AS");
        }
        item.alias = Next().text;
      }
      query_->select.push_back(std::move(item));
      if (!Accept(TokenType::kComma)) break;
    }
    JSONTILES_RETURN_NOT_OK(ExpectKeyword("FROM"));
    while (true) {
      if (Peek().type != TokenType::kIdentifier) {
        return Error("table name expected");
      }
      std::string name = Next().text;
      std::string alias = name;
      if (Peek().type == TokenType::kIdentifier) alias = Next().text;
      query_->tables.emplace_back(std::move(name), std::move(alias));
      if (!Accept(TokenType::kComma)) break;
    }
    if (AcceptKeyword("WHERE")) {
      JSONTILES_RETURN_NOT_OK(ParseExpr(&query_->where));
    }
    if (AcceptKeyword("GROUP")) {
      JSONTILES_RETURN_NOT_OK(ExpectKeyword("BY"));
      while (true) {
        ExprPtr e;
        JSONTILES_RETURN_NOT_OK(ParseExpr(&e));
        query_->group_by.push_back(std::move(e));
        if (!Accept(TokenType::kComma)) break;
      }
    }
    if (AcceptKeyword("HAVING")) {
      JSONTILES_RETURN_NOT_OK(ParseExpr(&query_->having));
    }
    if (AcceptKeyword("ORDER")) {
      JSONTILES_RETURN_NOT_OK(ExpectKeyword("BY"));
      while (true) {
        OrderItem item;
        if (Peek().type == TokenType::kInteger) {
          item.ordinal = static_cast<int>(Next().int_value);
        } else if (Peek().type == TokenType::kIdentifier &&
                   !IsAccessChainStart()) {
          item.alias = Next().text;
        } else {
          JSONTILES_RETURN_NOT_OK(ParseExpr(&item.expr));
        }
        if (AcceptKeyword("DESC")) {
          item.descending = true;
        } else {
          AcceptKeyword("ASC");
        }
        query_->order_by.push_back(std::move(item));
        if (!Accept(TokenType::kComma)) break;
      }
    }
    if (AcceptKeyword("LIMIT")) {
      if (Peek().type != TokenType::kInteger) {
        return Error("integer expected after LIMIT");
      }
      query_->limit = static_cast<size_t>(Next().int_value);
      query_->has_limit = true;
    }
    if (Peek().type != TokenType::kEnd) return Error("trailing tokens");
    return Status::OK();
  }

 private:
  const SqlToken& Peek(size_t ahead = 0) const {
    size_t i = pos_ + ahead;
    return i < tokens_.size() ? tokens_[i] : tokens_.back();
  }
  const SqlToken& Next() { return tokens_[pos_++]; }
  bool Accept(TokenType type) {
    if (Peek().type != type) return false;
    pos_++;
    return true;
  }
  bool AcceptKeyword(std::string_view kw) {
    if (Peek().type != TokenType::kKeyword || Peek().text != kw) return false;
    pos_++;
    return true;
  }
  bool AcceptOperator(std::string_view op) {
    if (Peek().type != TokenType::kOperator || Peek().text != op) return false;
    pos_++;
    return true;
  }
  Status ExpectKeyword(std::string_view kw) {
    if (!AcceptKeyword(kw)) {
      return Error(std::string("expected ") + std::string(kw));
    }
    return Status::OK();
  }
  Status Expect(TokenType type, const char* what) {
    if (!Accept(type)) return Error(std::string("expected ") + what);
    return Status::OK();
  }
  Status Error(const std::string& message) const {
    return Status::ParseError(message + " at offset " +
                              std::to_string(Peek().offset));
  }

  // Is the current identifier the start of a JSON access chain?
  bool IsAccessChainStart() const {
    return Peek().type == TokenType::kIdentifier &&
           (Peek(1).type == TokenType::kArrow ||
            Peek(1).type == TokenType::kArrowText);
  }

  Status ParseType(ValueType* out) {
    if (Peek().type != TokenType::kIdentifier &&
        !(Peek().type == TokenType::kKeyword &&
          (Peek().text == "DATE" || Peek().text == "TIMESTAMP"))) {
      return Error("type name expected after ::");
    }
    std::string name = Next().text;
    std::transform(name.begin(), name.end(), name.begin(), ::tolower);
    if (name == "bigint" || name == "int" || name == "integer") {
      *out = ValueType::kInt;
    } else if (name == "float" || name == "double" || name == "decimal" ||
               name == "real") {
      *out = ValueType::kFloat;
    } else if (name == "numeric") {
      *out = ValueType::kNumeric;
    } else if (name == "text" || name == "varchar" || name == "string") {
      *out = ValueType::kString;
    } else if (name == "timestamp" || name == "date") {
      *out = ValueType::kTimestamp;
    } else if (name == "bool" || name == "boolean") {
      *out = ValueType::kBool;
    } else {
      return Error("unknown type '" + name + "'");
    }
    return Status::OK();
  }

  // expr := or
  Status ParseExpr(ExprPtr* out) { return ParseOr(out); }

  Status ParseOr(ExprPtr* out) {
    JSONTILES_RETURN_NOT_OK(ParseAnd(out));
    while (AcceptKeyword("OR")) {
      ExprPtr rhs;
      JSONTILES_RETURN_NOT_OK(ParseAnd(&rhs));
      *out = exec::Or(*out, rhs);
    }
    return Status::OK();
  }

  Status ParseAnd(ExprPtr* out) {
    JSONTILES_RETURN_NOT_OK(ParseNot(out));
    while (AcceptKeyword("AND")) {
      ExprPtr rhs;
      JSONTILES_RETURN_NOT_OK(ParseNot(&rhs));
      *out = exec::And(*out, rhs);
    }
    return Status::OK();
  }

  Status ParseNot(ExprPtr* out) {
    if (AcceptKeyword("NOT")) {
      ExprPtr inner;
      JSONTILES_RETURN_NOT_OK(ParseNot(&inner));
      *out = exec::Not(inner);
      return Status::OK();
    }
    return ParsePredicate(out);
  }

  Status ParsePredicate(ExprPtr* out) {
    ExprPtr lhs;
    JSONTILES_RETURN_NOT_OK(ParseAdditive(&lhs));
    // IS [NOT] NULL
    if (AcceptKeyword("IS")) {
      bool negated = AcceptKeyword("NOT");
      JSONTILES_RETURN_NOT_OK(ExpectKeyword("NULL"));
      *out = negated ? exec::IsNotNull(lhs) : exec::IsNull(lhs);
      return Status::OK();
    }
    bool negated = AcceptKeyword("NOT");
    if (AcceptKeyword("LIKE")) {
      if (Peek().type != TokenType::kString) {
        return Error("string pattern expected after LIKE");
      }
      *out = exec::Like(lhs, Next().text, negated);
      return Status::OK();
    }
    if (AcceptKeyword("BETWEEN")) {
      ExprPtr lo, hi;
      JSONTILES_RETURN_NOT_OK(ParseAdditive(&lo));
      JSONTILES_RETURN_NOT_OK(ExpectKeyword("AND"));
      JSONTILES_RETURN_NOT_OK(ParseAdditive(&hi));
      ExprPtr between = exec::Between(lhs, lo, hi);
      *out = negated ? exec::Not(between) : between;
      return Status::OK();
    }
    if (AcceptKeyword("IN")) {
      JSONTILES_RETURN_NOT_OK(Expect(TokenType::kLeftParen, "("));
      std::vector<std::string> strings;
      std::vector<int64_t> ints;
      bool is_string = false;
      while (true) {
        if (Peek().type == TokenType::kString) {
          is_string = true;
          strings.push_back(Next().text);
        } else if (Peek().type == TokenType::kInteger) {
          ints.push_back(Next().int_value);
        } else {
          return Error("literal expected in IN list");
        }
        if (!Accept(TokenType::kComma)) break;
      }
      JSONTILES_RETURN_NOT_OK(Expect(TokenType::kRightParen, ")"));
      ExprPtr in = is_string ? exec::InList(lhs, std::move(strings))
                             : exec::InListInt(lhs, std::move(ints));
      *out = negated ? exec::Not(in) : in;
      return Status::OK();
    }
    if (negated) return Error("expected LIKE / BETWEEN / IN after NOT");
    // Comparison?
    if (Peek().type == TokenType::kOperator) {
      std::string op = Peek().text;
      exec::BinOp bin_op;
      if (op == "=") {
        bin_op = exec::BinOp::kEq;
      } else if (op == "<>") {
        bin_op = exec::BinOp::kNe;
      } else if (op == "<") {
        bin_op = exec::BinOp::kLt;
      } else if (op == "<=") {
        bin_op = exec::BinOp::kLe;
      } else if (op == ">") {
        bin_op = exec::BinOp::kGt;
      } else if (op == ">=") {
        bin_op = exec::BinOp::kGe;
      } else {
        *out = lhs;
        return Status::OK();
      }
      Next();
      ExprPtr rhs;
      JSONTILES_RETURN_NOT_OK(ParseAdditive(&rhs));
      *out = exec::Binary(bin_op, lhs, rhs);
      return Status::OK();
    }
    *out = lhs;
    return Status::OK();
  }

  Status ParseAdditive(ExprPtr* out) {
    JSONTILES_RETURN_NOT_OK(ParseTerm(out));
    while (true) {
      if (AcceptOperator("+")) {
        ExprPtr rhs;
        JSONTILES_RETURN_NOT_OK(ParseTerm(&rhs));
        *out = exec::Add(*out, rhs);
      } else if (AcceptOperator("-")) {
        ExprPtr rhs;
        JSONTILES_RETURN_NOT_OK(ParseTerm(&rhs));
        *out = exec::Sub(*out, rhs);
      } else {
        return Status::OK();
      }
    }
  }

  Status ParseTerm(ExprPtr* out) {
    JSONTILES_RETURN_NOT_OK(ParseUnary(out));
    while (true) {
      if (Peek().type == TokenType::kStar) {
        Next();
        ExprPtr rhs;
        JSONTILES_RETURN_NOT_OK(ParseUnary(&rhs));
        *out = exec::Mul(*out, rhs);
      } else if (AcceptOperator("/")) {
        ExprPtr rhs;
        JSONTILES_RETURN_NOT_OK(ParseUnary(&rhs));
        *out = exec::Div(*out, rhs);
      } else if (AcceptOperator("%")) {
        ExprPtr rhs;
        JSONTILES_RETURN_NOT_OK(ParseUnary(&rhs));
        *out = exec::Mod(*out, rhs);
      } else {
        return Status::OK();
      }
    }
  }

  Status ParseUnary(ExprPtr* out) {
    if (AcceptOperator("-")) {
      ExprPtr inner;
      JSONTILES_RETURN_NOT_OK(ParseUnary(&inner));
      *out = exec::Neg(inner);
      return Status::OK();
    }
    JSONTILES_RETURN_NOT_OK(ParsePrimary(out));
    // Optional cast chains: e::type::type.
    while (Accept(TokenType::kCast)) {
      ValueType type = ValueType::kString;
      JSONTILES_RETURN_NOT_OK(ParseType(&type));
      if ((*out)->kind == ExprKind::kAccess &&
          (*out)->path != exec::kRowIdPath) {
        // §4.3 cast rewriting: fold the cast into the access.
        *out = exec::AccessPath((*out)->table, (*out)->path, type);
      } else {
        *out = exec::CastTo(*out, type);
      }
    }
    return Status::OK();
  }

  Status ParseAccessChain(ExprPtr* out) {
    std::string alias = Next().text;
    std::string path;
    while (true) {
      TokenType arrow = Peek().type;
      if (arrow != TokenType::kArrow && arrow != TokenType::kArrowText) break;
      Next();
      if (Peek().type != TokenType::kString) {
        return Error("string key expected after access operator");
      }
      tiles::AppendKeySegment(&path, Next().text);
    }
    // Default result type: Text (the ->> semantics); a following ::cast
    // replaces it via the rewrite in ParseUnary.
    *out = exec::AccessPath(std::move(alias), std::move(path), ValueType::kString);
    return Status::OK();
  }

  Status ParseAggregate(const std::string& keyword, ExprPtr* out) {
    JSONTILES_RETURN_NOT_OK(Expect(TokenType::kLeftParen, "("));
    AggSpec spec;
    if (keyword == "COUNT") {
      if (Accept(TokenType::kStar)) {
        spec = AggSpec::CountStar();
      } else if (AcceptKeyword("DISTINCT")) {
        ExprPtr arg;
        JSONTILES_RETURN_NOT_OK(ParseExpr(&arg));
        spec = AggSpec::CountDistinct(arg);
      } else {
        ExprPtr arg;
        JSONTILES_RETURN_NOT_OK(ParseExpr(&arg));
        spec = AggSpec::Count(arg);
      }
    } else {
      ExprPtr arg;
      JSONTILES_RETURN_NOT_OK(ParseExpr(&arg));
      if (keyword == "SUM") spec = AggSpec::Sum(arg);
      if (keyword == "AVG") spec = AggSpec::Avg(arg);
      if (keyword == "MIN") spec = AggSpec::Min(arg);
      if (keyword == "MAX") spec = AggSpec::Max(arg);
    }
    JSONTILES_RETURN_NOT_OK(Expect(TokenType::kRightParen, ")"));
    int marker = kAggMarkerBase + static_cast<int>(query_->aggs.size());
    query_->aggs.push_back(std::move(spec));
    *out = exec::Slot(marker);
    return Status::OK();
  }

  Status ParsePrimary(ExprPtr* out) {
    const SqlToken& token = Peek();
    switch (token.type) {
      case TokenType::kInteger:
        *out = exec::ConstInt(Next().int_value);
        return Status::OK();
      case TokenType::kFloat:
        *out = exec::ConstFloat(Next().float_value);
        return Status::OK();
      case TokenType::kString:
        *out = exec::ConstString(Next().text);
        return Status::OK();
      case TokenType::kLeftParen: {
        Next();
        JSONTILES_RETURN_NOT_OK(ParseExpr(out));
        return Expect(TokenType::kRightParen, ")");
      }
      case TokenType::kIdentifier:
        if (IsAccessChainStart()) return ParseAccessChain(out);
        return Error("unexpected identifier '" + token.text +
                     "' (accesses use alias->'key')");
      case TokenType::kKeyword: {
        const std::string kw = token.text;
        if (kw == "NULL") {
          Next();
          *out = exec::ConstNull();
          return Status::OK();
        }
        if (kw == "TRUE" || kw == "FALSE") {
          Next();
          *out = exec::ConstBool(kw == "TRUE");
          return Status::OK();
        }
        if (kw == "DATE" || kw == "TIMESTAMP") {
          Next();
          if (Peek().type != TokenType::kString) {
            return Error("string literal expected after DATE");
          }
          Timestamp ts;
          if (!ParseTimestamp(Next().text, &ts)) {
            return Error("invalid date literal");
          }
          auto e = std::make_shared<Expr>();
          e->kind = ExprKind::kConst;
          e->constant = Value::Ts(ts);
          *out = e;
          return Status::OK();
        }
        if (kw == "SUM" || kw == "AVG" || kw == "MIN" || kw == "MAX" ||
            kw == "COUNT") {
          Next();
          return ParseAggregate(kw, out);
        }
        if (kw == "CASE") {
          Next();
          std::vector<ExprPtr> operands;
          while (AcceptKeyword("WHEN")) {
            ExprPtr cond, then;
            JSONTILES_RETURN_NOT_OK(ParseExpr(&cond));
            JSONTILES_RETURN_NOT_OK(ExpectKeyword("THEN"));
            JSONTILES_RETURN_NOT_OK(ParseExpr(&then));
            operands.push_back(cond);
            operands.push_back(then);
          }
          if (operands.empty()) return Error("CASE requires WHEN");
          if (AcceptKeyword("ELSE")) {
            ExprPtr otherwise;
            JSONTILES_RETURN_NOT_OK(ParseExpr(&otherwise));
            operands.push_back(otherwise);
          }
          JSONTILES_RETURN_NOT_OK(ExpectKeyword("END"));
          *out = exec::Case(std::move(operands));
          return Status::OK();
        }
        if (kw == "EXTRACT") {
          Next();
          JSONTILES_RETURN_NOT_OK(Expect(TokenType::kLeftParen, "("));
          JSONTILES_RETURN_NOT_OK(ExpectKeyword("YEAR"));
          JSONTILES_RETURN_NOT_OK(ExpectKeyword("FROM"));
          ExprPtr arg;
          JSONTILES_RETURN_NOT_OK(ParseExpr(&arg));
          JSONTILES_RETURN_NOT_OK(Expect(TokenType::kRightParen, ")"));
          // EXTRACT over a text access means "use it as a date" (§4.9):
          // request the Timestamp directly.
          if (arg->kind == ExprKind::kAccess &&
              arg->access_type == ValueType::kString) {
            arg = exec::AccessPath(arg->table, arg->path, ValueType::kTimestamp);
          }
          *out = exec::Year(arg);
          return Status::OK();
        }
        if (kw == "SUBSTRING") {
          Next();
          JSONTILES_RETURN_NOT_OK(Expect(TokenType::kLeftParen, "("));
          ExprPtr arg;
          JSONTILES_RETURN_NOT_OK(ParseExpr(&arg));
          JSONTILES_RETURN_NOT_OK(ExpectKeyword("FROM"));
          if (Peek().type != TokenType::kInteger) {
            return Error("integer expected in SUBSTRING");
          }
          int start = static_cast<int>(Next().int_value);
          JSONTILES_RETURN_NOT_OK(ExpectKeyword("FOR"));
          if (Peek().type != TokenType::kInteger) {
            return Error("integer expected in SUBSTRING");
          }
          int len = static_cast<int>(Next().int_value);
          JSONTILES_RETURN_NOT_OK(Expect(TokenType::kRightParen, ")"));
          *out = exec::Substring(arg, start, len);
          return Status::OK();
        }
        if (kw == "CONTAINS") {
          Next();
          JSONTILES_RETURN_NOT_OK(Expect(TokenType::kLeftParen, "("));
          if (!IsAccessChainStart()) {
            return Error("CONTAINS expects an array access chain");
          }
          ExprPtr chain;
          JSONTILES_RETURN_NOT_OK(ParseAccessChain(&chain));
          JSONTILES_RETURN_NOT_OK(Expect(TokenType::kComma, ","));
          if (Peek().type != TokenType::kString) {
            return Error("member key expected in CONTAINS");
          }
          std::string member = Next().text;
          JSONTILES_RETURN_NOT_OK(Expect(TokenType::kComma, ","));
          if (Peek().type != TokenType::kString) {
            return Error("value expected in CONTAINS");
          }
          std::string value = Next().text;
          JSONTILES_RETURN_NOT_OK(Expect(TokenType::kRightParen, ")"));
          auto e = std::make_shared<Expr>();
          e->kind = ExprKind::kArrayContains;
          e->table = chain->table;
          e->path = chain->path;
          e->pattern = std::move(member);
          e->const_storage = std::move(value);
          e->constant = Value::String(e->const_storage);
          e->access_type = ValueType::kBool;
          *out = e;
          return Status::OK();
        }
        return Error("unexpected keyword " + kw);
      }
      default:
        return Error("unexpected token");
    }
  }

  std::vector<SqlToken> tokens_;
  size_t pos_ = 0;
  ParsedQuery* query_ = nullptr;
};

// ---------------------------------------------------------------------------
// Binder
// ---------------------------------------------------------------------------

// Tables referenced by an expression (aliases).
void CollectTables(const ExprPtr& e, std::vector<std::string>* tables) {
  std::vector<ExprPtr> accesses;
  exec::CollectAccesses(e, &accesses);
  for (const auto& a : accesses) {
    if (std::find(tables->begin(), tables->end(), a->table) == tables->end()) {
      tables->push_back(a->table);
    }
  }
}

bool HasAggMarker(const ExprPtr& e) {
  if (e == nullptr) return false;
  if (e->kind == ExprKind::kSlotRef && e->slot >= kAggMarkerBase) return true;
  for (const auto& arg : e->args) {
    if (HasAggMarker(arg)) return true;
  }
  return false;
}

void SplitConjuncts(const ExprPtr& e, std::vector<ExprPtr>* out) {
  if (e == nullptr) return;
  if (e->kind == ExprKind::kBinary && e->bin_op == exec::BinOp::kAnd) {
    SplitConjuncts(e->args[0], out);
    SplitConjuncts(e->args[1], out);
    return;
  }
  out->push_back(e);
}

// Rewrite a post-aggregation expression: agg markers become aggregate output
// slots, subtrees matching a GROUP BY expression become key slots.
Status RewritePostAgg(const ExprPtr& e, const std::vector<ExprPtr>& group_by,
                      ExprPtr* out) {
  if (e->kind == ExprKind::kSlotRef && e->slot >= kAggMarkerBase) {
    *out = exec::Slot(static_cast<int>(group_by.size()) + e->slot - kAggMarkerBase);
    return Status::OK();
  }
  for (size_t k = 0; k < group_by.size(); k++) {
    if (exec::ExprEquals(*e, *group_by[k])) {
      *out = exec::Slot(static_cast<int>(k));
      return Status::OK();
    }
  }
  if (e->kind == ExprKind::kAccess || e->kind == ExprKind::kArrayContains) {
    return Status::InvalidArgument(
        "column must appear in GROUP BY or inside an aggregate");
  }
  bool changed = false;
  std::vector<ExprPtr> args;
  for (const auto& arg : e->args) {
    ExprPtr rewritten;
    JSONTILES_RETURN_NOT_OK(RewritePostAgg(arg, group_by, &rewritten));
    changed |= rewritten != arg;
    args.push_back(std::move(rewritten));
  }
  if (!changed) {
    *out = e;
    return Status::OK();
  }
  auto copy = std::make_shared<Expr>(*e);
  copy->args = std::move(args);
  *out = copy;
  return Status::OK();
}

std::string DefaultColumnName(const ExprPtr& e, size_t index) {
  if (e->kind == ExprKind::kAccess) return tiles::PathToDisplayString(e->path);
  return "col" + std::to_string(index + 1);
}

}  // namespace

Result<SqlResult> ExecuteSql(std::string_view statement, const SqlCatalog& catalog,
                             exec::QueryContext& ctx,
                             const opt::PlannerOptions& planner) {
  auto tokens = TokenizeSql(statement);
  if (!tokens.ok()) return tokens.status();
  std::vector<SqlToken> token_list = tokens.MoveValueOrDie();

  // EXPLAIN ANALYZE prefix: execute the statement under a PlanProfile and
  // return the annotated operator tree instead of the query output. Plain
  // EXPLAIN binds and plans the statement — join order + cardinality
  // estimates — without executing it.
  bool explain_analyze = false;
  bool explain_plan = false;
  if (!token_list.empty() && token_list[0].type == TokenType::kKeyword &&
      token_list[0].text == "EXPLAIN") {
    if (token_list.size() >= 2 && token_list[1].type == TokenType::kKeyword &&
        token_list[1].text == "ANALYZE") {
      explain_analyze = true;
      token_list.erase(token_list.begin(), token_list.begin() + 2);
    } else {
      explain_plan = true;
      token_list.erase(token_list.begin());
    }
  }

  std::shared_ptr<obs::PlanProfile> profile;
  obs::PlanProfile* saved_profile = ctx.profile;
  if (explain_analyze) {
    profile = std::make_shared<obs::PlanProfile>();
    ctx.profile = profile.get();
  }
  // Restore the context's profile pointer on every return path below.
  struct ProfileRestore {
    exec::QueryContext& ctx;
    obs::PlanProfile* saved;
    ~ProfileRestore() { ctx.profile = saved; }
  } restore{ctx, saved_profile};
  // Attach the catalog's distributed runtime for the statement's duration
  // (same restore discipline as the profile pointer).
  exec::DistRuntime* saved_dist = ctx.dist;
  if (catalog.dist != nullptr) ctx.dist = catalog.dist;
  struct DistRestore {
    exec::QueryContext& ctx;
    exec::DistRuntime* saved;
    ~DistRestore() { ctx.dist = saved; }
  } dist_restore{ctx, saved_dist};
  const size_t tiles_scanned_before = ctx.tiles_scanned;
  const size_t tiles_skipped_before = ctx.tiles_skipped;
  const size_t shards_scanned_before = ctx.shards_scanned;
  const size_t shards_pruned_before = ctx.shards_pruned;
  auto exec_begin = std::chrono::steady_clock::now();

  ParsedQuery query;
  Parser parser(std::move(token_list));
  JSONTILES_RETURN_NOT_OK(parser.Parse(&query));

  // --- validate tables -------------------------------------------------------
  std::vector<std::string> aliases;
  for (const auto& [name, alias] : query.tables) {
    if (catalog.tables.find(name) == catalog.tables.end() &&
        catalog.sharded_tables.find(name) == catalog.sharded_tables.end()) {
      return Status::NotFound("unknown table '" + name + "'");
    }
    if (std::find(aliases.begin(), aliases.end(), alias) != aliases.end()) {
      return Status::InvalidArgument("duplicate alias '" + alias + "'");
    }
    aliases.push_back(alias);
  }
  auto known_alias = [&](const std::string& a) {
    return std::find(aliases.begin(), aliases.end(), a) != aliases.end();
  };

  // --- split WHERE: per-table filters, join edges, residual (§4.2) ----------
  std::vector<ExprPtr> conjuncts;
  SplitConjuncts(query.where, &conjuncts);
  std::map<std::string, std::vector<ExprPtr>> table_filters;
  std::vector<std::pair<ExprPtr, ExprPtr>> join_edges;
  std::vector<ExprPtr> residual;
  for (const auto& conjunct : conjuncts) {
    if (HasAggMarker(conjunct)) {
      return Status::InvalidArgument("aggregates are not allowed in WHERE");
    }
    std::vector<std::string> tables;
    CollectTables(conjunct, &tables);
    for (const auto& t : tables) {
      if (!known_alias(t)) {
        return Status::NotFound("unknown table alias '" + t + "'");
      }
    }
    if (tables.size() == 1) {
      table_filters[tables[0]].push_back(conjunct);
      continue;
    }
    if (tables.size() == 2 && conjunct->kind == ExprKind::kBinary &&
        conjunct->bin_op == exec::BinOp::kEq) {
      std::vector<std::string> left_tables, right_tables;
      CollectTables(conjunct->args[0], &left_tables);
      CollectTables(conjunct->args[1], &right_tables);
      if (left_tables.size() == 1 && right_tables.size() == 1 &&
          left_tables[0] != right_tables[0]) {
        join_edges.emplace_back(conjunct->args[0], conjunct->args[1]);
        continue;
      }
    }
    residual.push_back(conjunct);  // multi-table (or constant) predicate
  }

  opt::QueryBlock block;
  for (const auto& [name, alias] : query.tables) {
    auto it = table_filters.find(alias);
    ExprPtr filter = it == table_filters.end() ? nullptr : exec::And(it->second);
    auto plain = catalog.tables.find(name);
    if (plain != catalog.tables.end()) {
      block.AddTable(opt::TableRef::Rel(alias, plain->second, filter));
    } else {
      block.AddTable(opt::TableRef::Sharded(
          alias, catalog.sharded_tables.at(name), filter));
    }
  }
  for (auto& [left, right] : join_edges) block.AddJoin(left, right);
  if (!residual.empty()) block.Where(exec::And(residual));

  // --- validate the remaining expressions' table references -----------------
  {
    std::vector<ExprPtr> to_check;
    for (const auto& item : query.select) to_check.push_back(item.expr);
    for (const auto& e : query.group_by) to_check.push_back(e);
    if (query.having != nullptr) to_check.push_back(query.having);
    for (const auto& agg : query.aggs) {
      if (agg.arg != nullptr) to_check.push_back(agg.arg);
    }
    for (const auto& e : to_check) {
      std::vector<std::string> tables;
      CollectTables(e, &tables);
      for (const auto& t : tables) {
        if (!known_alias(t)) {
          return Status::NotFound("unknown table alias '" + t + "'");
        }
      }
    }
  }

  // --- aggregation or plain projection -------------------------------------
  const bool aggregated = !query.aggs.empty() || !query.group_by.empty();
  SqlResult result;
  RowSet rows;
  std::vector<ExprPtr> final_projection;  // over the block output
  if (aggregated) {
    block.GroupBy(query.group_by);
    for (auto& agg : query.aggs) block.Aggregate(agg);
    if (query.having != nullptr) {
      ExprPtr having;
      JSONTILES_RETURN_NOT_OK(
          RewritePostAgg(query.having, query.group_by, &having));
      block.Having(having);
    }
    for (size_t i = 0; i < query.select.size(); i++) {
      ExprPtr rewritten;
      JSONTILES_RETURN_NOT_OK(
          RewritePostAgg(query.select[i].expr, query.group_by, &rewritten));
      final_projection.push_back(std::move(rewritten));
    }
  } else {
    std::vector<ExprPtr> projections;
    for (const auto& item : query.select) projections.push_back(item.expr);
    block.Select(projections);
  }

  // --- plain EXPLAIN: plan only, no execution -------------------------------
  if (explain_plan) {
    opt::PlanEstimate est = block.Explain(planner);
    std::vector<std::string> lines;
    std::string order = "Join order: ";
    for (size_t i = 0; i < est.join_order.size(); i++) {
      if (i > 0) order += " -> ";
      order += est.join_order[i];
    }
    lines.push_back(std::move(order));
    char buf[160];
    for (size_t i = 0; i < est.join_order.size(); i++) {
      std::snprintf(buf, sizeof(buf), "  scan %s  (estimated rows=%.0f)",
                    est.join_order[i].c_str(), est.table_rows[i]);
      lines.emplace_back(buf);
    }
    if (est.estimated_cost > 0) {
      std::snprintf(buf, sizeof(buf), "Estimated cost (C_out): %.0f",
                    est.estimated_cost);
      lines.emplace_back(buf);
    }
    SqlResult plan;
    plan.column_names.push_back("QUERY PLAN");
    auto* arena = ctx.arena(0);
    for (const std::string& line : lines) {
      const uint8_t* copy = arena->AllocateCopy(line.data(), line.size());
      plan.rows.push_back({exec::Value::String(
          {reinterpret_cast<const char*>(copy), line.size()})});
    }
    return plan;
  }

  rows = block.Execute(ctx, planner);
  // A worker failure anywhere in the plan (scan morsel, join/aggregate
  // worker, spill I/O) cancels the query; surface that Status here, at the
  // API boundary, instead of a silently empty result.
  JSONTILES_RETURN_NOT_OK(ctx.ConsumeStatus());
  if (aggregated) {
    rows = exec::ProjectExec(rows, final_projection, ctx);
    if (ctx.profile != nullptr) ctx.profile->Chain(ctx.profile->last_id());
  }

  // --- ORDER BY / LIMIT over the select output ------------------------------
  if (!query.order_by.empty()) {
    std::vector<exec::SortKey> keys;
    for (const auto& item : query.order_by) {
      int slot = -1;
      if (item.ordinal > 0) {
        if (static_cast<size_t>(item.ordinal) > query.select.size()) {
          return Status::InvalidArgument("ORDER BY ordinal out of range");
        }
        slot = item.ordinal - 1;
      } else if (!item.alias.empty()) {
        for (size_t i = 0; i < query.select.size(); i++) {
          if (query.select[i].alias == item.alias) slot = static_cast<int>(i);
        }
        if (slot < 0) {
          return Status::NotFound("ORDER BY alias '" + item.alias + "' not found");
        }
      } else {
        for (size_t i = 0; i < query.select.size(); i++) {
          if (exec::ExprEquals(*item.expr, *query.select[i].expr)) {
            slot = static_cast<int>(i);
          }
        }
        if (slot < 0) {
          return Status::InvalidArgument(
              "ORDER BY expression must appear in the select list");
        }
      }
      keys.push_back(exec::SortKey{exec::Slot(slot), item.descending});
    }
    rows = exec::SortExec(std::move(rows), keys, ctx);
    if (ctx.profile != nullptr) ctx.profile->Chain(ctx.profile->last_id());
  }
  if (query.has_limit) {
    rows = exec::LimitExec(std::move(rows), query.limit, ctx);
    if (ctx.profile != nullptr) ctx.profile->Chain(ctx.profile->last_id());
  }

  if (explain_analyze) {
    double exec_ms = std::chrono::duration<double, std::milli>(
                         std::chrono::steady_clock::now() - exec_begin)
                         .count();
    std::string text = profile->FormatTree();
    char footer[200];
    std::snprintf(footer, sizeof(footer),
                  "Execution time: %.3f ms\nTiles scanned: %zu, skipped: %zu",
                  exec_ms, ctx.tiles_scanned - tiles_scanned_before,
                  ctx.tiles_skipped - tiles_skipped_before);
    text += footer;
    const size_t shards_scanned = ctx.shards_scanned - shards_scanned_before;
    const size_t shards_pruned = ctx.shards_pruned - shards_pruned_before;
    if (shards_scanned > 0 || shards_pruned > 0) {
      std::snprintf(footer, sizeof(footer),
                    "\nShards scanned: %zu, pruned: %zu", shards_scanned,
                    shards_pruned);
      text += footer;
    }
    if (!ctx.resource_group.empty()) {
      std::snprintf(footer, sizeof(footer),
                    "\nResource group: %s, queue wait: %.3f ms",
                    ctx.resource_group.c_str(),
                    static_cast<double>(ctx.queue_wait_nanos) / 1e6);
      text += footer;
    }

    SqlResult plan;
    plan.column_names.push_back("QUERY PLAN");
    plan.profile = profile;
    auto* arena = ctx.arena(0);
    size_t begin = 0;
    while (begin <= text.size()) {
      size_t end = text.find('\n', begin);
      if (end == std::string::npos) end = text.size();
      std::string_view line(text.data() + begin, end - begin);
      if (!line.empty()) {
        const uint8_t* copy = arena->AllocateCopy(line.data(), line.size());
        plan.rows.push_back({exec::Value::String(
            {reinterpret_cast<const char*>(copy), line.size()})});
      }
      begin = end + 1;
    }
    return plan;
  }

  result.rows = std::move(rows);
  for (size_t i = 0; i < query.select.size(); i++) {
    result.column_names.push_back(query.select[i].alias.empty()
                                      ? DefaultColumnName(query.select[i].expr, i)
                                      : query.select[i].alias);
  }
  return result;
}

std::string FormatSqlResult(const SqlResult& result, size_t max_rows) {
  std::string out;
  std::vector<size_t> widths;
  std::vector<std::vector<std::string>> cells;
  for (const auto& name : result.column_names) widths.push_back(name.size());
  size_t shown = std::min(result.rows.size(), max_rows);
  for (size_t r = 0; r < shown; r++) {
    std::vector<std::string> row;
    for (size_t c = 0; c < result.rows[r].size(); c++) {
      row.push_back(result.rows[r][c].ToString());
      if (c < widths.size()) widths[c] = std::max(widths[c], row.back().size());
    }
    cells.push_back(std::move(row));
  }
  auto append_row = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < row.size(); c++) {
      out += row[c];
      if (c < widths.size()) out.append(widths[c] - row[c].size() + 2, ' ');
    }
    out += "\n";
  };
  append_row(result.column_names);
  for (const auto& row : cells) append_row(row);
  if (result.rows.size() > shown) {
    out += "... (" + std::to_string(result.rows.size() - shown) + " more)\n";
  }
  return out;
}

}  // namespace jsontiles::sql
