// A SQL session over the multi-tenant query service.
//
// SqlSession is what one connected client holds: it remembers the client's
// resource group (`SET RESOURCE GROUP <name>`), routes every statement
// through QueryService admission — blocking in the group's queue when its
// concurrency slots are taken — and keeps the last statement's QueryContext
// alive so result rows (which reference the context's arenas) stay valid
// until the next Execute. Session statements:
//
//   SET RESOURCE GROUP <name>   switch the session's group (must exist)
//   SHOW RESOURCE GROUPS        one row per group: admission state + totals
//
// Everything else goes to sql::ExecuteSql under the current group's
// admission, including EXPLAIN [ANALYZE] — the EXPLAIN ANALYZE footer then
// carries the group name and queue wait. A session without a service (null)
// executes directly, ungoverned — the single-tenant embedding.

#ifndef JSONTILES_SQL_SQL_SESSION_H_
#define JSONTILES_SQL_SQL_SESSION_H_

#include <memory>
#include <string>
#include <string_view>

#include "service/query_service.h"
#include "sql/sql_parser.h"

namespace jsontiles::sql {

class SqlSession {
 public:
  /// `catalog` and `service` are borrowed and must outlive the session.
  /// `service` may be null: statements then run directly with
  /// `base_options`, and SET RESOURCE GROUP is rejected.
  SqlSession(const SqlCatalog* catalog, service::QueryService* service,
             exec::ExecOptions base_options = {},
             opt::PlannerOptions planner = {});

  /// Execute one statement. Result rows stay valid until the next Execute
  /// (they reference the session-held query context). Admission failures
  /// (queue full, timeout) and runaway cancellations surface as the clean
  /// ResourceExhausted / Cancelled statuses of the service layer.
  Result<SqlResult> Execute(std::string_view statement);

  /// Group used for the next governed statement.
  const std::string& resource_group() const { return group_; }
  void set_resource_group(std::string group) { group_ = std::move(group); }

 private:
  Result<SqlResult> ShowResourceGroups();

  const SqlCatalog* catalog_;
  service::QueryService* service_;
  exec::ExecOptions base_options_;
  opt::PlannerOptions planner_;
  std::string group_;

  /// Context of the last statement; owns the arenas its result references.
  /// The admission slot is returned before Execute returns — only the
  /// context (memory) lingers, never the concurrency slot.
  std::unique_ptr<exec::QueryContext> ctx_;
};

}  // namespace jsontiles::sql

#endif  // JSONTILES_SQL_SQL_SESSION_H_
