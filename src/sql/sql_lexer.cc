#include "sql/sql_lexer.h"

#include <algorithm>
#include <cctype>
#include <charconv>
#include <unordered_set>

namespace jsontiles::sql {

bool IsSqlKeyword(std::string_view upper) {
  static const std::unordered_set<std::string_view> kKeywords = {
      "SELECT",  "FROM",   "WHERE",   "GROUP",    "BY",     "HAVING",
      "ORDER",   "LIMIT",  "AS",      "AND",      "OR",     "NOT",
      "IN",      "LIKE",   "BETWEEN", "IS",       "NULL",   "ASC",
      "DESC",    "SUM",    "COUNT",   "AVG",      "MIN",    "MAX",
      "DISTINCT", "CASE",  "WHEN",    "THEN",     "ELSE",   "END",
      "EXTRACT", "YEAR",   "SUBSTRING", "FOR",    "DATE",   "TIMESTAMP",
      "TRUE",    "FALSE",  "CONTAINS", "EXPLAIN", "ANALYZE"};
  return kKeywords.count(upper) > 0;
}

namespace {

bool IsIdentStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}
bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

}  // namespace

Result<std::vector<SqlToken>> TokenizeSql(std::string_view input) {
  std::vector<SqlToken> tokens;
  size_t pos = 0;
  auto error = [&](const std::string& message) {
    return Status::ParseError(message + " at offset " + std::to_string(pos));
  };
  while (pos < input.size()) {
    char c = input[pos];
    if (std::isspace(static_cast<unsigned char>(c))) {
      pos++;
      continue;
    }
    SqlToken token;
    token.offset = pos;
    if (IsIdentStart(c)) {
      size_t begin = pos;
      while (pos < input.size() && IsIdentChar(input[pos])) pos++;
      std::string word(input.substr(begin, pos - begin));
      std::string upper = word;
      std::transform(upper.begin(), upper.end(), upper.begin(), ::toupper);
      if (IsSqlKeyword(upper)) {
        token.type = TokenType::kKeyword;
        token.text = upper;
      } else {
        token.type = TokenType::kIdentifier;
        std::transform(word.begin(), word.end(), word.begin(), ::tolower);
        token.text = word;
      }
    } else if (c == '"') {
      // Quoted identifier (exact case).
      size_t begin = ++pos;
      while (pos < input.size() && input[pos] != '"') pos++;
      if (pos >= input.size()) return error("unterminated quoted identifier");
      token.type = TokenType::kIdentifier;
      token.text = std::string(input.substr(begin, pos - begin));
      pos++;
    } else if (c == '\'') {
      pos++;
      std::string value;
      while (pos < input.size()) {
        if (input[pos] == '\'') {
          if (pos + 1 < input.size() && input[pos + 1] == '\'') {
            value.push_back('\'');
            pos += 2;
            continue;
          }
          break;
        }
        value.push_back(input[pos++]);
      }
      if (pos >= input.size()) return error("unterminated string literal");
      pos++;
      token.type = TokenType::kString;
      token.text = std::move(value);
    } else if (std::isdigit(static_cast<unsigned char>(c)) ||
               (c == '.' && pos + 1 < input.size() &&
                std::isdigit(static_cast<unsigned char>(input[pos + 1])))) {
      size_t begin = pos;
      bool is_float = false;
      while (pos < input.size() &&
             (std::isdigit(static_cast<unsigned char>(input[pos])) ||
              input[pos] == '.')) {
        if (input[pos] == '.') is_float = true;
        pos++;
      }
      std::string_view lexeme = input.substr(begin, pos - begin);
      if (is_float) {
        token.type = TokenType::kFloat;
        auto [p, ec] =
            std::from_chars(lexeme.data(), lexeme.data() + lexeme.size(),
                            token.float_value);
        if (ec != std::errc()) return error("bad float literal");
      } else {
        token.type = TokenType::kInteger;
        auto [p, ec] = std::from_chars(lexeme.data(),
                                       lexeme.data() + lexeme.size(),
                                       token.int_value);
        if (ec != std::errc()) return error("bad integer literal");
      }
      token.text = std::string(lexeme);
    } else if (c == '-' && input.substr(pos, 3) == "->>") {
      token.type = TokenType::kArrowText;
      pos += 3;
    } else if (c == '-' && input.substr(pos, 2) == "->") {
      token.type = TokenType::kArrow;
      pos += 2;
    } else if (c == ':' && input.substr(pos, 2) == "::") {
      token.type = TokenType::kCast;
      pos += 2;
    } else if (c == '(') {
      token.type = TokenType::kLeftParen;
      pos++;
    } else if (c == ')') {
      token.type = TokenType::kRightParen;
      pos++;
    } else if (c == ',') {
      token.type = TokenType::kComma;
      pos++;
    } else if (c == '*') {
      token.type = TokenType::kStar;
      token.text = "*";
      pos++;
    } else if (c == '<' || c == '>' || c == '=' || c == '!') {
      size_t len = 1;
      if (pos + 1 < input.size() &&
          (input.substr(pos, 2) == "<=" || input.substr(pos, 2) == ">=" ||
           input.substr(pos, 2) == "<>" || input.substr(pos, 2) == "!=")) {
        len = 2;
      }
      if (c == '!' && len == 1) return error("unexpected '!'");
      token.type = TokenType::kOperator;
      token.text = std::string(input.substr(pos, len));
      if (token.text == "!=") token.text = "<>";
      pos += len;
    } else if (c == '+' || c == '-' || c == '/' || c == '%') {
      token.type = TokenType::kOperator;
      token.text = std::string(1, c);
      pos++;
    } else {
      return error(std::string("unexpected character '") + c + "'");
    }
    tokens.push_back(std::move(token));
  }
  SqlToken end;
  end.offset = input.size();
  tokens.push_back(end);
  return tokens;
}

}  // namespace jsontiles::sql
