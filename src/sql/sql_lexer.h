// Tokenizer for the SQL subset (src/sql/sql_parser.h).
//
// PostgreSQL-flavored: identifiers, keywords (case-insensitive), integer /
// float / string literals, the JSON access operators -> and ->>, the cast
// operator ::, comparison operators, parentheses and commas.

#ifndef JSONTILES_SQL_SQL_LEXER_H_
#define JSONTILES_SQL_SQL_LEXER_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "util/status.h"

namespace jsontiles::sql {

enum class TokenType : uint8_t {
  kIdentifier,  // foo (lower-cased) or "Foo" (exact)
  kKeyword,     // SELECT, FROM, ... (upper-cased in `text`)
  kInteger,
  kFloat,
  kString,      // 'text' (quotes stripped, '' unescaped)
  kArrow,       // ->
  kArrowText,   // ->>
  kCast,        // ::
  kOperator,    // = <> != < <= > >= + - * / %
  kLeftParen,
  kRightParen,
  kComma,
  kStar,        // * (SELECT COUNT(*))
  kEnd,
};

struct SqlToken {
  TokenType type = TokenType::kEnd;
  std::string text;     // normalized payload
  int64_t int_value = 0;
  double float_value = 0;
  size_t offset = 0;    // position in the input, for error messages
};

/// Tokenize a statement; returns the token stream ending with kEnd.
Result<std::vector<SqlToken>> TokenizeSql(std::string_view input);

/// True if `word` (upper-case) is a reserved keyword of the subset.
bool IsSqlKeyword(std::string_view upper);

}  // namespace jsontiles::sql

#endif  // JSONTILES_SQL_SQL_LEXER_H_
