#include "sql/sql_session.h"

#include <cctype>

namespace jsontiles::sql {

namespace {

/// Case-insensitive keyword consumption over a whitespace-tolerant cursor.
void SkipSpace(std::string_view& s) {
  while (!s.empty() &&
         std::isspace(static_cast<unsigned char>(s.front())) != 0) {
    s.remove_prefix(1);
  }
}

bool ConsumeKeyword(std::string_view& s, std::string_view keyword) {
  SkipSpace(s);
  if (s.size() < keyword.size()) return false;
  for (size_t i = 0; i < keyword.size(); i++) {
    if (std::toupper(static_cast<unsigned char>(s[i])) != keyword[i]) {
      return false;
    }
  }
  // Keyword boundary: next char must not extend the identifier.
  if (s.size() > keyword.size() &&
      (std::isalnum(static_cast<unsigned char>(s[keyword.size()])) != 0 ||
       s[keyword.size()] == '_')) {
    return false;
  }
  s.remove_prefix(keyword.size());
  return true;
}

/// Bare or single-quoted group name; empty on parse failure.
std::string ConsumeName(std::string_view& s) {
  SkipSpace(s);
  std::string name;
  if (!s.empty() && s.front() == '\'') {
    size_t end = s.find('\'', 1);
    if (end == std::string_view::npos) return name;
    name.assign(s.substr(1, end - 1));
    s.remove_prefix(end + 1);
    return name;
  }
  while (!s.empty() &&
         (std::isalnum(static_cast<unsigned char>(s.front())) != 0 ||
          s.front() == '_' || s.front() == '-')) {
    name.push_back(s.front());
    s.remove_prefix(1);
  }
  return name;
}

bool AtEnd(std::string_view s) {
  SkipSpace(s);
  return s.empty() || s == ";";
}

}  // namespace

SqlSession::SqlSession(const SqlCatalog* catalog,
                       service::QueryService* service,
                       exec::ExecOptions base_options,
                       opt::PlannerOptions planner)
    : catalog_(catalog), service_(service),
      base_options_(std::move(base_options)), planner_(planner) {
  if (service_ != nullptr) {
    auto names = service_->GroupNames();
    if (!names.empty()) group_ = names.front();
  }
}

Result<SqlResult> SqlSession::Execute(std::string_view statement) {
  std::string_view cursor = statement;
  if (ConsumeKeyword(cursor, "SET")) {
    if (ConsumeKeyword(cursor, "RESOURCE") && ConsumeKeyword(cursor, "GROUP")) {
      std::string name = ConsumeName(cursor);
      if (name.empty() || !AtEnd(cursor)) {
        return Status::InvalidArgument(
            "expected SET RESOURCE GROUP <name>, got: " +
            std::string(statement));
      }
      if (service_ == nullptr) {
        return Status::Unsupported(
            "SET RESOURCE GROUP requires a query service (session is "
            "ungoverned)");
      }
      if (!service_->HasGroup(name)) {
        return Status::NotFound("resource group '" + name +
                                "' does not exist");
      }
      group_ = name;
      SqlResult result;
      result.column_names.push_back("SET");
      return result;
    }
    return Status::Unsupported("only SET RESOURCE GROUP is supported");
  }
  cursor = statement;
  if (ConsumeKeyword(cursor, "SHOW")) {
    if (ConsumeKeyword(cursor, "RESOURCE") &&
        ConsumeKeyword(cursor, "GROUPS") && AtEnd(cursor)) {
      return ShowResourceGroups();
    }
    return Status::Unsupported("only SHOW RESOURCE GROUPS is supported");
  }

  if (service_ == nullptr) {
    // Ungoverned single-tenant path: one context per statement, kept alive
    // for the result's lifetime.
    ctx_ = std::make_unique<exec::QueryContext>(base_options_);
    return ExecuteSql(statement, *catalog_, *ctx_, planner_);
  }

  if (group_.empty()) {
    return Status::InvalidArgument(
        "no resource group selected (SET RESOURCE GROUP <name>)");
  }
  auto admitted = service_->Admit(group_, base_options_);
  JSONTILES_RETURN_NOT_OK(admitted.status());
  service::Admission admission = admitted.MoveValueOrDie();
  // Drop the previous statement's context only after admission: its rows
  // remain valid while we wait in the queue.
  ctx_ = std::make_unique<exec::QueryContext>(admission.options());
  admission.Attach(ctx_.get());
  auto result = ExecuteSql(statement, *catalog_, *ctx_, planner_);
  Status cancel_st = ctx_->ConsumeStatus();
  admission.Release();  // slot + reserve returned; ctx_ (arenas) lives on
  // The released context outlives the admission, but its budget parent
  // points into the group, which may be dropped before the next statement —
  // sever the link so a late budget access cannot chase freed memory.
  ctx_->DetachBudgetParent();
  if (result.ok() && !cancel_st.ok()) return cancel_st;
  return result;
}

Result<SqlResult> SqlSession::ShowResourceGroups() {
  if (service_ == nullptr) {
    return Status::Unsupported(
        "SHOW RESOURCE GROUPS requires a query service");
  }
  // A plain context supplies the arena backing the result's strings.
  ctx_ = std::make_unique<exec::QueryContext>(exec::ExecOptions{});
  Arena* arena = ctx_->arena(0);
  SqlResult result;
  result.column_names = {"group",    "running",  "queued",   "concurrency",
                         "quota",    "mem_used", "admitted", "rejected",
                         "timed_out", "cancelled"};
  for (const std::string& name : service_->GroupNames()) {
    auto snap = service_->Snapshot(name);
    if (!snap.ok()) continue;  // dropped between listing and snapshot
    const service::GroupSnapshot& g = snap.ValueOrDie();
    const uint8_t* copy = arena->AllocateCopy(name.data(), name.size());
    exec::Row row;
    row.push_back(exec::Value::String(
        {reinterpret_cast<const char*>(copy), name.size()}));
    row.push_back(exec::Value::Int(static_cast<int64_t>(g.running)));
    row.push_back(exec::Value::Int(static_cast<int64_t>(g.queued)));
    row.push_back(exec::Value::Int(static_cast<int64_t>(g.concurrency)));
    row.push_back(exec::Value::Int(static_cast<int64_t>(g.mem_quota_bytes)));
    row.push_back(exec::Value::Int(static_cast<int64_t>(g.mem_used_bytes)));
    row.push_back(exec::Value::Int(static_cast<int64_t>(g.admitted)));
    row.push_back(exec::Value::Int(static_cast<int64_t>(g.rejected)));
    row.push_back(exec::Value::Int(static_cast<int64_t>(g.timed_out)));
    row.push_back(exec::Value::Int(static_cast<int64_t>(g.cancelled)));
    result.rows.push_back(std::move(row));
  }
  return result;
}

}  // namespace jsontiles::sql
