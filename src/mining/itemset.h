// Frequent itemsets over dictionary-encoded items (paper §3.3).
//
// For JSON tiles, an "item" is a (key path, value type) pair encoded as a
// dense dictionary id local to one tile; a "transaction" is the set of items
// of one document. The miner finds itemsets whose support (number of
// transactions containing all items of the set) reaches a threshold.

#ifndef JSONTILES_MINING_ITEMSET_H_
#define JSONTILES_MINING_ITEMSET_H_

#include <cstdint>
#include <vector>

namespace jsontiles::mining {

using Item = uint32_t;
using Transaction = std::vector<Item>;  // distinct items, any order

struct Itemset {
  std::vector<Item> items;  // sorted ascending
  uint32_t support = 0;

  friend bool operator==(const Itemset&, const Itemset&) = default;
};

}  // namespace jsontiles::mining

#endif  // JSONTILES_MINING_ITEMSET_H_
