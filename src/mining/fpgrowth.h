// FP-Growth frequent itemset mining (Han et al. [29]), the miner used for
// JSON tile construction (paper §3.3).
//
// Unlike Apriori, FP-Growth generates no candidate sets: it builds a prefix
// tree of frequency-ordered transactions and recursively mines conditional
// pattern trees. Because the number of frequent itemsets is exponential in
// the worst case, mining is budgeted (Eq. 1): given a budget `u` on the
// number of generated itemsets and `n` frequent items, the largest itemset
// size `k` is chosen such that sum_{i=1..k} C(n, i) <= u' <= u, and the
// recursion depth is bounded by `k`. Smaller itemsets are produced first, so
// precision degrades gracefully when the budget is hit.

#ifndef JSONTILES_MINING_FPGROWTH_H_
#define JSONTILES_MINING_FPGROWTH_H_

#include <cstdint>
#include <vector>

#include "mining/itemset.h"

namespace jsontiles::mining {

struct MinerOptions {
  /// Absolute support threshold (count of transactions).
  uint32_t min_support = 1;
  /// Upper bound `u` on the number of generated itemsets (Eq. 1).
  uint64_t budget = 4096;
};

/// Largest itemset size `k` such that sum_{i=1..k} C(n, i) <= budget
/// (Eq. 1 of the paper). Always at least 1 when n > 0.
int MaxItemsetSize(uint64_t n, uint64_t budget);

class FpGrowthMiner {
 public:
  /// Mine all frequent itemsets (up to the budget) from `transactions`.
  /// Items within a transaction must be distinct. The result is in
  /// ascending-size order per recursion branch; each itemset's `items` are
  /// sorted ascending.
  std::vector<Itemset> Mine(const std::vector<Transaction>& transactions,
                            const MinerOptions& options);

};

}  // namespace jsontiles::mining

#endif  // JSONTILES_MINING_FPGROWTH_H_
