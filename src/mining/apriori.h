// Classic Apriori frequent itemset mining (Agrawal & Srikant [1]).
//
// Baseline for the mining-cost ablation: the paper chooses FP-Growth because
// Apriori must generate and count candidate sets level by level. Results are
// identical (modulo order) for the same support threshold and size bound,
// which the tests verify.

#ifndef JSONTILES_MINING_APRIORI_H_
#define JSONTILES_MINING_APRIORI_H_

#include <vector>

#include "mining/itemset.h"

namespace jsontiles::mining {

class AprioriMiner {
 public:
  /// Mine all frequent itemsets with support >= min_support and at most
  /// max_size items.
  std::vector<Itemset> Mine(const std::vector<Transaction>& transactions,
                            uint32_t min_support, int max_size);
};

}  // namespace jsontiles::mining

#endif  // JSONTILES_MINING_APRIORI_H_
