#include "mining/fpgrowth.h"

#include <algorithm>
#include <unordered_map>

#include "obs/obs.h"
#include "util/logging.h"

namespace jsontiles::mining {

int MaxItemsetSize(uint64_t n, uint64_t budget) {
  if (n == 0) return 0;
  // Accumulate sum_{i=1..k} C(n, i) while it stays within the budget. The
  // result is at least 1 so single items are always considered.
  uint64_t total = 0;
  uint64_t binom = 1;  // C(n, 0)
  int k = 0;
  for (uint64_t i = 1; i <= n; i++) {
    // binom = C(n, i) = C(n, i-1) * (n - i + 1) / i. Since we stop as soon
    // as the sum exceeds the (modest) budget, the product cannot overflow.
    binom = binom * (n - i + 1) / i;
    if (binom > budget || total + binom > budget) break;
    total += binom;
    k = static_cast<int>(i);
  }
  return k < 1 ? 1 : k;
}

namespace {

constexpr uint32_t kNone = 0xFFFFFFFF;

// A weighted transaction: items ordered by global frequency rank.
struct WeightedTx {
  std::vector<Item> items;
  uint32_t count;
};

// One FP-tree: prefix tree of frequency-ordered transactions with per-item
// header chains.
class FpTree {
 public:
  struct Node {
    Item item;
    uint32_t count;
    uint32_t parent;
    uint32_t node_link;
    uint32_t first_child;
    uint32_t next_sibling;
  };

  // `item_support` maps item -> support within this projection; only items
  // with support >= min_support participate.
  FpTree(const std::vector<WeightedTx>& transactions,
         const std::unordered_map<Item, uint32_t>& item_support,
         uint32_t min_support) {
    // Frequency-descending order (ties: ascending id for determinism).
    for (const auto& [item, support] : item_support) {
      if (support >= min_support) frequent_.push_back(item);
    }
    std::sort(frequent_.begin(), frequent_.end(), [&](Item a, Item b) {
      uint32_t sa = item_support.at(a);
      uint32_t sb = item_support.at(b);
      if (sa != sb) return sa > sb;
      return a < b;
    });
    for (size_t i = 0; i < frequent_.size(); i++) {
      rank_[frequent_[i]] = static_cast<uint32_t>(i);
    }
    nodes_.push_back(Node{kNone, 0, kNone, kNone, kNone, kNone});  // root
    header_.assign(frequent_.size(), kNone);
    support_.assign(frequent_.size(), 0);

    std::vector<Item> filtered;
    for (const auto& tx : transactions) {
      filtered.clear();
      for (Item item : tx.items) {
        auto it = rank_.find(item);
        if (it != rank_.end()) filtered.push_back(it->second);
      }
      std::sort(filtered.begin(), filtered.end());
      Insert(filtered, tx.count);
    }
  }

  size_t num_frequent() const { return frequent_.size(); }
  size_t num_nodes() const { return nodes_.size(); }
  Item frequent_item(size_t rank) const { return frequent_[rank]; }
  uint32_t support(size_t rank) const { return support_[rank]; }

  // Conditional pattern base of the item at `rank`: prefix paths with counts,
  // expressed in original item ids, plus the per-item support of the base.
  void PatternBase(size_t rank, std::vector<WeightedTx>* base,
                   std::unordered_map<Item, uint32_t>* item_support) const {
    base->clear();
    item_support->clear();
    for (uint32_t node = header_[rank]; node != kNone;
         node = nodes_[node].node_link) {
      uint32_t count = nodes_[node].count;
      WeightedTx tx;
      tx.count = count;
      for (uint32_t cur = nodes_[node].parent; cur != 0 && cur != kNone;
           cur = nodes_[cur].parent) {
        Item original = frequent_[nodes_[cur].item];
        tx.items.push_back(original);
        (*item_support)[original] += count;
      }
      if (!tx.items.empty()) base->push_back(std::move(tx));
    }
  }

 private:
  void Insert(const std::vector<Item>& ranked_items, uint32_t count) {
    uint32_t cur = 0;  // root
    for (Item rank : ranked_items) {
      support_[rank] += count;
      uint32_t child = nodes_[cur].first_child;
      while (child != kNone && nodes_[child].item != rank) {
        child = nodes_[child].next_sibling;
      }
      if (child == kNone) {
        child = static_cast<uint32_t>(nodes_.size());
        nodes_.push_back(Node{rank, 0, cur, header_[rank],
                              kNone, nodes_[cur].first_child});
        nodes_[cur].first_child = child;
        header_[rank] = child;
      }
      nodes_[child].count += count;
      cur = child;
    }
  }

  std::vector<Node> nodes_;
  std::vector<Item> frequent_;                 // rank -> original item id
  std::unordered_map<Item, uint32_t> rank_;    // original item id -> rank
  std::vector<uint32_t> header_;               // rank -> first node
  std::vector<uint32_t> support_;              // rank -> support
};

// Recursive FP-Growth over conditional trees; respects max_size and budget.
void MineTree(const FpTree& tree, std::vector<Item>* suffix,
              const MinerOptions& options, int max_size, uint64_t* emitted,
              std::vector<Itemset>* out) {
  // Least-frequent first (classic order: bottom of the header table).
  for (size_t i = tree.num_frequent(); i-- > 0;) {
    if (*emitted >= options.budget) {
      JSONTILES_COUNTER_ADD("fpgrowth.budget_prunes", 1);
      return;
    }
    Item item = tree.frequent_item(i);
    Itemset set;
    set.items.reserve(suffix->size() + 1);
    set.items = *suffix;
    set.items.push_back(item);
    std::sort(set.items.begin(), set.items.end());
    set.support = tree.support(i);
    out->push_back(std::move(set));
    (*emitted)++;
    if (static_cast<int>(suffix->size()) + 1 >= max_size) continue;
    std::vector<WeightedTx> base;
    std::unordered_map<Item, uint32_t> item_support;
    tree.PatternBase(i, &base, &item_support);
    bool any_frequent = false;
    for (const auto& [it, support] : item_support) {
      (void)it;
      if (support >= options.min_support) {
        any_frequent = true;
        break;
      }
    }
    if (!any_frequent) {
      JSONTILES_COUNTER_ADD("fpgrowth.infrequent_prunes", 1);
      continue;
    }
    FpTree conditional(base, item_support, options.min_support);
    JSONTILES_COUNTER_ADD("fpgrowth.conditional_trees", 1);
    suffix->push_back(item);
    MineTree(conditional, suffix, options, max_size, emitted, out);
    suffix->pop_back();
  }
}

}  // namespace

std::vector<Itemset> FpGrowthMiner::Mine(
    const std::vector<Transaction>& transactions, const MinerOptions& options) {
  std::vector<Itemset> out;
  if (transactions.empty() || options.min_support == 0) return out;
  JSONTILES_TRACE_SPAN("mining.fpgrowth");
  JSONTILES_COUNTER_ADD("fpgrowth.runs", 1);
  JSONTILES_COUNTER_ADD("fpgrowth.transactions_mined",
                        static_cast<int64_t>(transactions.size()));

  std::unordered_map<Item, uint32_t> item_support;
  std::vector<WeightedTx> weighted;
  weighted.reserve(transactions.size());
  for (const auto& tx : transactions) {
    for (Item item : tx) item_support[item]++;
    weighted.push_back(WeightedTx{tx, 1});
  }
  uint64_t n = 0;
  for (const auto& [item, support] : item_support) {
    (void)item;
    if (support >= options.min_support) n++;
  }
  if (n == 0) return out;
  int max_size = MaxItemsetSize(n, options.budget);
  if (max_size < 1) max_size = 1;

  FpTree tree(weighted, item_support, options.min_support);
  JSONTILES_COUNTER_ADD("fpgrowth.tree_nodes",
                        static_cast<int64_t>(tree.num_nodes()));
  std::vector<Item> suffix;
  uint64_t emitted = 0;
  MineTree(tree, &suffix, options, max_size, &emitted, &out);
  JSONTILES_COUNTER_ADD("fpgrowth.itemsets_emitted",
                        static_cast<int64_t>(emitted));
  return out;
}

}  // namespace jsontiles::mining
