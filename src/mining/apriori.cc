#include "mining/apriori.h"

#include <algorithm>
#include <map>
#include <set>
#include <unordered_map>

namespace jsontiles::mining {

namespace {

// Does `tx` (sorted) contain all of `set` (sorted)?
bool Contains(const std::vector<Item>& tx, const std::vector<Item>& set) {
  return std::includes(tx.begin(), tx.end(), set.begin(), set.end());
}

}  // namespace

std::vector<Itemset> AprioriMiner::Mine(
    const std::vector<Transaction>& transactions, uint32_t min_support,
    int max_size) {
  std::vector<Itemset> out;
  if (transactions.empty() || min_support == 0 || max_size < 1) return out;

  std::vector<Transaction> sorted_txs = transactions;
  for (auto& tx : sorted_txs) std::sort(tx.begin(), tx.end());

  // Level 1: frequent single items.
  std::unordered_map<Item, uint32_t> counts;
  for (const auto& tx : sorted_txs) {
    for (Item item : tx) counts[item]++;
  }
  std::vector<Itemset> level;
  for (const auto& [item, support] : counts) {
    if (support >= min_support) {
      level.push_back(Itemset{{item}, support});
    }
  }
  std::sort(level.begin(), level.end(),
            [](const Itemset& a, const Itemset& b) { return a.items < b.items; });

  while (!level.empty()) {
    out.insert(out.end(), level.begin(), level.end());
    if (static_cast<int>(level.front().items.size()) >= max_size) break;

    // Candidate generation: join sets sharing a (k-1)-prefix.
    std::vector<std::vector<Item>> candidates;
    for (size_t i = 0; i < level.size(); i++) {
      for (size_t j = i + 1; j < level.size(); j++) {
        const auto& a = level[i].items;
        const auto& b = level[j].items;
        if (!std::equal(a.begin(), a.end() - 1, b.begin())) break;
        std::vector<Item> candidate = a;
        candidate.push_back(b.back());
        // Prune: all (k-1)-subsets must be frequent.
        bool all_frequent = true;
        for (size_t skip = 0; skip + 2 < candidate.size() && all_frequent; skip++) {
          std::vector<Item> subset;
          for (size_t s = 0; s < candidate.size(); s++) {
            if (s != skip) subset.push_back(candidate[s]);
          }
          all_frequent = std::binary_search(
              level.begin(), level.end(), Itemset{subset, 0},
              [](const Itemset& x, const Itemset& y) { return x.items < y.items; });
        }
        if (all_frequent) candidates.push_back(std::move(candidate));
      }
    }

    // Count candidate support.
    std::vector<Itemset> next;
    for (auto& candidate : candidates) {
      uint32_t support = 0;
      for (const auto& tx : sorted_txs) {
        if (Contains(tx, candidate)) support++;
      }
      if (support >= min_support) next.push_back(Itemset{std::move(candidate), support});
    }
    std::sort(next.begin(), next.end(),
              [](const Itemset& a, const Itemset& b) { return a.items < b.items; });
    level = std::move(next);
  }
  return out;
}

}  // namespace jsontiles::mining
