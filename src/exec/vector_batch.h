// Batch representation of the vectorized expression engine.
//
// A batch is up to kVectorSize rows; each expression input/output is a
// ColumnVector: a fixed-capacity typed vector with a null bitmap. Predicates
// communicate through a SelectionVector — the indices of rows still alive —
// so later conjuncts and kernels only touch surviving rows, and payload
// lanes outside the selection are undefined. The scalar interpreter's Value
// remains the interchange format at batch boundaries (GetValue/SetValue).

#ifndef JSONTILES_EXEC_VECTOR_BATCH_H_
#define JSONTILES_EXEC_VECTOR_BATCH_H_

#include <algorithm>
#include <cstdint>
#include <string_view>
#include <vector>

#include "exec/value.h"
#include "util/logging.h"

namespace jsontiles::exec {

inline constexpr size_t kVectorSize = 1024;

/// Indices of the rows of a batch that are still alive, in ascending order.
struct SelectionVector {
  uint16_t idx[kVectorSize];
  size_t count = 0;

  void SetAll(size_t n) {
    JSONTILES_DCHECK(n <= kVectorSize);
    for (size_t k = 0; k < n; k++) idx[k] = static_cast<uint16_t>(k);
    count = n;
  }
  bool empty() const { return count == 0; }

  /// True when the selection covers lanes 0..count-1 contiguously (indices
  /// are ascending and unique, so checking the last suffices). Fresh SetAll
  /// selections stay dense until a conjunct drops rows; the SIMD kernel
  /// paths require density, sparse selections keep the scalar gather loops.
  bool IsDense() const { return count == 0 || idx[count - 1] == count - 1; }
};

/// One expression input/output across a batch. Only the payload buffer of
/// the active type (plus the null bitmap) is valid; null rows carry
/// unspecified payload. Buffers are allocated once and reused across
/// batches.
class ColumnVector {
 public:
  ValueType type() const { return type_; }

  /// Re-type the vector for a new batch; payload lanes become undefined.
  void Reset(ValueType t) {
    type_ = t;
    null_.resize(kVectorSize);
    switch (t) {
      case ValueType::kNull:
        break;
      case ValueType::kBool:
      case ValueType::kInt:
      case ValueType::kTimestamp:
        i64_.resize(kVectorSize);
        break;
      case ValueType::kFloat:
        f64_.resize(kVectorSize);
        break;
      case ValueType::kString:
        str_.resize(kVectorSize);
        break;
      case ValueType::kNumeric:
        i64_.resize(kVectorSize);
        scale_.resize(kVectorSize);
        break;
    }
  }

  /// Mark every lane of the batch null (used for statically-null results).
  void ResetAllNull(size_t n) {
    Reset(ValueType::kNull);
    std::fill(null_.begin(), null_.begin() + n, uint8_t{1});
  }

  // Raw buffers for the kernels. Valid only for the active type.
  uint8_t* nulls() { return null_.data(); }
  const uint8_t* nulls() const { return null_.data(); }
  int64_t* i64() { return i64_.data(); }
  const int64_t* i64() const { return i64_.data(); }
  double* f64() { return f64_.data(); }
  const double* f64() const { return f64_.data(); }
  std::string_view* str() { return str_.data(); }
  const std::string_view* str() const { return str_.data(); }
  uint8_t* scale() { return scale_.data(); }
  const uint8_t* scale() const { return scale_.data(); }

  bool IsNull(size_t row) const { return null_[row] != 0; }

  /// Read one lane back as a scalar Value (bit-identical to what the
  /// interpreter would produce for the same content).
  Value GetValue(size_t row) const {
    if (null_[row]) return Value::Null();
    switch (type_) {
      case ValueType::kNull: return Value::Null();
      case ValueType::kBool: return Value::Bool(i64_[row] != 0);
      case ValueType::kInt: return Value::Int(i64_[row]);
      case ValueType::kFloat: return Value::Float(f64_[row]);
      case ValueType::kString: return Value::String(str_[row]);
      case ValueType::kTimestamp: return Value::Ts(i64_[row]);
      case ValueType::kNumeric: return Value::Num(Numeric{i64_[row], scale_[row]});
    }
    return Value::Null();
  }

  /// Store a scalar into one lane. `v` must be null or of the vector's type.
  void SetValue(size_t row, const Value& v) {
    if (v.is_null()) {
      null_[row] = 1;
      return;
    }
    JSONTILES_DCHECK(v.type == type_);
    null_[row] = 0;
    switch (type_) {
      case ValueType::kNull:
        null_[row] = 1;  // a typeless vector can only hold nulls
        break;
      case ValueType::kBool:
      case ValueType::kInt:
      case ValueType::kTimestamp:
        i64_[row] = v.i;
        break;
      case ValueType::kFloat:
        f64_[row] = v.d;
        break;
      case ValueType::kString:
        str_[row] = v.s;
        break;
      case ValueType::kNumeric:
        i64_[row] = v.i;
        scale_[row] = v.scale;
        break;
    }
  }

 private:
  ValueType type_ = ValueType::kNull;
  std::vector<uint8_t> null_;  // 1 = null
  std::vector<int64_t> i64_;   // bool / int / timestamp / numeric unscaled
  std::vector<double> f64_;
  std::vector<std::string_view> str_;
  std::vector<uint8_t> scale_;  // numeric scales
};

/// Shrink `sel` to the rows where `pred` (a kBool/kNull vector) is true —
/// the AND-conjunct consumption step (null counts as false, like a
/// top-level filter).
void IntersectSelection(const ColumnVector& pred, SelectionVector* sel);

}  // namespace jsontiles::exec

#endif  // JSONTILES_EXEC_VECTOR_BATCH_H_
