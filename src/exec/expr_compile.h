// One-time compilation of Expr trees into type-resolved post-order programs
// for batch-at-a-time evaluation.
//
// Compilation resolves every operator's input/output types statically from
// the slot types (the scan knows them: each pushed-down access produces its
// requested cast type or null) and picks a typed kernel per instruction.
// Anything the compiler cannot type — e.g. logic over non-boolean inputs,
// arithmetic over strings, CASE with mixed arm types — fails compilation and
// the caller falls back to the scalar interpreter, which stays the reference
// implementation. Kernels are written to be bit-identical to EvalExpr (the
// differential fuzz test enforces this).

#ifndef JSONTILES_EXEC_EXPR_COMPILE_H_
#define JSONTILES_EXEC_EXPR_COMPILE_H_

#include <memory>
#include <unordered_map>
#include <vector>

#include "exec/expression.h"
#include "exec/vector_batch.h"

namespace jsontiles::exec {

namespace vec {

enum class VecOp : uint8_t {
  kConst,    // broadcast a constant into the output register
  kSlot,     // alias an input slot vector
  kAllNull,  // statically-null result (e.g. comparison of incomparable types)
  kArith,    // +,-,*,/,% with typed operands
  kCompare,  // =,<>,<,<=,>,>= with typed operands
  kAnd,      // 3-valued AND over boolean registers
  kOr,       // 3-valued OR over boolean registers
  kNot,
  kIsNull,
  kIsNotNull,
  kNeg,
  kLike,
  kIn,    // hash-set membership probe
  kCase,  // [cond1, val1, ..., else] registers, all same-typed arms
  kSubstring,
  kExtractYear,
  kCast,
};

/// Precomputed hash set of an IN list; values point into the Expr's
/// in_list (the compiled program borrows the expression tree).
struct InSet {
  std::unordered_multimap<uint64_t, const Value*> by_hash;
};

struct Instr {
  VecOp op = VecOp::kAllNull;
  BinOp bin_op = BinOp::kAdd;
  ValueType out_type = ValueType::kNull;
  ValueType a_type = ValueType::kNull;
  ValueType b_type = ValueType::kNull;
  int out = -1;           // output register (== instruction index)
  int a = -1;             // input register, or slot index for kSlot
  int b = -1;
  std::vector<int> case_regs;  // kCase inputs
  const Expr* node = nullptr;  // source node (constants, LIKE, casts, IN)
  std::shared_ptr<const InSet> in_set;
};

/// Execute one instruction over the selected rows. `regs[i]` is the vector
/// of register i (slot registers alias the caller's slot vectors). Defined
/// in expr_kernels.cc.
void RunInstr(const Instr& instr, const ColumnVector* const* regs,
              ColumnVector* out, const SelectionVector& sel, Arena* arena);

}  // namespace vec

/// Append every slot index referenced by `e` (deduplicated, ascending).
void CollectSlotRefs(const Expr& e, std::vector<int>* slots);

/// A compiled expression program. Copyable; per-worker copies make Run
/// reentrant across threads (register storage is per-instance). The source
/// Expr tree and the slot vectors passed to Run must outlive the program.
class CompiledExpr {
 public:
  /// Flatten `e` into a program given the static slot types. Returns false
  /// (leaving *out unusable) when some node cannot be typed; callers then
  /// use the interpreter.
  static bool Compile(const Expr& e, const std::vector<ValueType>& slot_types,
                      CompiledExpr* out);

  ValueType out_type() const { return out_type_; }
  const std::vector<int>& slots_used() const { return slots_used_; }
  size_t num_instrs() const { return instrs_.size(); }

  /// Evaluate over the selected rows of a batch; `slots[i]` must be
  /// materialized for every i in slots_used(). The returned vector is owned
  /// by this program and valid until the next Run.
  const ColumnVector& Run(const ColumnVector* slots,
                          const SelectionVector& sel, Arena* arena);

 private:
  std::vector<vec::Instr> instrs_;
  std::vector<int> slots_used_;
  ValueType out_type_ = ValueType::kNull;
  int result_reg_ = -1;
  // Run-time state, lazily sized on first Run. Copying a program resets
  // nothing — copies stay independently runnable.
  std::vector<ColumnVector> regs_;
  std::vector<const ColumnVector*> reg_ptrs_;
  std::vector<uint8_t> filled_;  // constants/all-null registers filled once
};

/// A pushed-down filter compiled conjunct-by-conjunct. Top-level AND is
/// evaluated by selection-vector intersection: each compiled conjunct
/// shrinks the selection before the next one runs (short-circuit across the
/// batch). Conjuncts that fail to compile are kept as interpreter residuals,
/// to be evaluated per surviving row by the caller.
class CompiledPredicate {
 public:
  struct Conjunct {
    CompiledExpr program;
    std::vector<int> slots;  // slots this conjunct reads
  };

  static CompiledPredicate Compile(const ExprPtr& filter,
                                   const std::vector<ValueType>& slot_types);

  std::vector<Conjunct>& conjuncts() { return conjuncts_; }
  const std::vector<Conjunct>& conjuncts() const { return conjuncts_; }
  const std::vector<ExprPtr>& residuals() const { return residuals_; }
  bool any_compiled() const { return !conjuncts_.empty(); }

 private:
  std::vector<Conjunct> conjuncts_;
  std::vector<ExprPtr> residuals_;
};

}  // namespace jsontiles::exec

#endif  // JSONTILES_EXEC_EXPR_COMPILE_H_
