#include "exec/agg_state.h"

#include <cstring>

#include "exec/expression.h"
#include "util/hash.h"

namespace jsontiles::exec {

namespace {

// A total order over values of the same comparison class: type tag first,
// then exact bit pattern for floats (distinguishing -0.0 from 0.0 and NaN
// payloads), then numeric scale.
int DeterministicValueOrder(const Value& a, const Value& b) {
  if (a.type != b.type) return a.type < b.type ? -1 : 1;
  switch (a.type) {
    case ValueType::kNull:
      return 0;
    case ValueType::kFloat: {
      uint64_t ba, bb;
      std::memcpy(&ba, &a.d, 8);
      std::memcpy(&bb, &b.d, 8);
      return ba < bb ? -1 : ba > bb ? 1 : 0;
    }
    case ValueType::kString: {
      int c = a.s.compare(b.s);
      return c < 0 ? -1 : c > 0 ? 1 : 0;
    }
    case ValueType::kNumeric:
      if (a.scale != b.scale) return a.scale < b.scale ? -1 : 1;
      [[fallthrough]];
    default:
      return a.i < b.i ? -1 : a.i > b.i ? 1 : 0;
  }
}

}  // namespace

int TotalValueOrder(const Value& a, const Value& b) {
  if (a.is_null() || b.is_null()) {
    if (a.is_null() && b.is_null()) return 0;
    return a.is_null() ? 1 : -1;
  }
  int cmp = a.Compare(b);
  if (cmp != 0) return cmp;
  return DeterministicValueOrder(a, b);
}

void Accumulator::AddValue(AggSpec::Kind kind, const Value& v) {
  switch (kind) {
    case AggSpec::Kind::kCountStar:
      count++;
      return;
    case AggSpec::Kind::kCount:
      if (!v.is_null()) count++;
      return;
    case AggSpec::Kind::kSum:
    case AggSpec::Kind::kAvg:
      if (v.is_null()) return;
      count++;
      sum_seen = true;
      if (v.type == ValueType::kInt) {
        sum_i += v.i;
      } else {
        sum_is_float = true;
        sum_f.Add(v.AsDouble());
      }
      return;
    case AggSpec::Kind::kMin:
      if (v.is_null()) return;
      if (min.is_null() || TotalValueOrder(v, min) < 0) min = v;
      return;
    case AggSpec::Kind::kMax:
      if (v.is_null()) return;
      if (max.is_null() || TotalValueOrder(v, max) > 0) max = v;
      return;
    case AggSpec::Kind::kCountDistinct:
      if (!v.is_null()) distinct.insert(v.Hash());
      return;
  }
}

void Accumulator::Merge(AggSpec::Kind kind, const Accumulator& other) {
  switch (kind) {
    case AggSpec::Kind::kCountStar:
    case AggSpec::Kind::kCount:
      count += other.count;
      return;
    case AggSpec::Kind::kSum:
    case AggSpec::Kind::kAvg:
      count += other.count;
      sum_seen |= other.sum_seen;
      sum_is_float |= other.sum_is_float;
      sum_i += other.sum_i;
      sum_f.Merge(other.sum_f);
      return;
    case AggSpec::Kind::kMin:
      if (!other.min.is_null() &&
          (min.is_null() || TotalValueOrder(other.min, min) < 0)) {
        min = other.min;
      }
      return;
    case AggSpec::Kind::kMax:
      if (!other.max.is_null() &&
          (max.is_null() || TotalValueOrder(other.max, max) > 0)) {
        max = other.max;
      }
      return;
    case AggSpec::Kind::kCountDistinct:
      distinct.insert(other.distinct.begin(), other.distinct.end());
      return;
  }
}

double Accumulator::FloatTotal() const {
  ExactFloatSum total = sum_f;
  int64_t hi_part = (sum_i >> 32) << 32;
  int64_t lo_part = sum_i - hi_part;
  total.Add(static_cast<double>(hi_part));
  total.Add(static_cast<double>(lo_part));
  return total.Round();
}

Value Accumulator::Finalize(AggSpec::Kind kind) const {
  switch (kind) {
    case AggSpec::Kind::kCountStar:
    case AggSpec::Kind::kCount:
      return Value::Int(count);
    case AggSpec::Kind::kSum:
      if (!sum_seen) return Value::Null();
      return sum_is_float ? Value::Float(FloatTotal()) : Value::Int(sum_i);
    case AggSpec::Kind::kAvg: {
      if (count == 0) return Value::Null();
      return Value::Float(FloatTotal() / static_cast<double>(count));
    }
    case AggSpec::Kind::kMin: return min;
    case AggSpec::Kind::kMax: return max;
    case AggSpec::Kind::kCountDistinct:
      return Value::Int(static_cast<int64_t>(distinct.size()));
  }
  return Value::Null();
}

void AccumulateRows(const RowSet& in, const std::vector<ExprPtr>& group_by,
                    const std::vector<AggSpec>& aggs, Arena* arena,
                    AggGroupMap* groups) {
  std::vector<Value> keys;
  for (const Row& row : in) {
    uint64_t h = kKeyHashSeed;
    keys.clear();
    keys.reserve(group_by.size());
    for (const auto& g : group_by) {
      Value v = EvalExpr(*g, row.data(), arena);
      h = HashCombine(h, v.Hash());
      keys.push_back(v);
    }
    auto& bucket = (*groups)[h];
    AggGroup* group = nullptr;
    for (auto& g : bucket) {
      bool equal = true;
      for (size_t i = 0; i < keys.size() && equal; i++) {
        equal = g.keys[i].EqualsForGrouping(keys[i]);
      }
      if (equal) {
        group = &g;
        break;
      }
    }
    if (group == nullptr) {
      bucket.push_back(
          AggGroup{keys, std::vector<Accumulator>(aggs.size())});
      group = &bucket.back();
    }
    for (size_t a = 0; a < aggs.size(); a++) {
      Value v = Value::Null();
      if (aggs[a].arg != nullptr) {
        v = EvalExpr(*aggs[a].arg, row.data(), arena);
      }
      group->accs[a].AddValue(aggs[a].kind, v);
    }
  }
}

void MergeGroup(AggGroupMap* dst, uint64_t hash, AggGroup&& group,
                const std::vector<AggSpec>& aggs) {
  auto& bucket = (*dst)[hash];
  for (auto& existing : bucket) {
    bool equal = true;
    for (size_t i = 0; i < group.keys.size() && equal; i++) {
      equal = existing.keys[i].EqualsForGrouping(group.keys[i]);
    }
    if (equal) {
      for (size_t a = 0; a < aggs.size(); a++) {
        existing.accs[a].Merge(aggs[a].kind, group.accs[a]);
      }
      return;
    }
  }
  bucket.push_back(std::move(group));
}

void FinalizeGroups(const AggGroupMap& groups,
                    const std::vector<AggSpec>& aggs, RowSet* out) {
  for (const auto& [h, bucket] : groups) {
    (void)h;
    for (const auto& g : bucket) {
      Row row;
      row.reserve(g.keys.size() + aggs.size());
      for (const auto& k : g.keys) row.push_back(k);
      for (size_t a = 0; a < aggs.size(); a++) {
        row.push_back(g.accs[a].Finalize(aggs[a].kind));
      }
      out->push_back(std::move(row));
    }
  }
}

Row EmptyGlobalAggRow(const std::vector<AggSpec>& aggs) {
  Row row;
  std::vector<Accumulator> accs(aggs.size());
  for (size_t a = 0; a < aggs.size(); a++) {
    row.push_back(accs[a].Finalize(aggs[a].kind));
  }
  return row;
}

}  // namespace jsontiles::exec
