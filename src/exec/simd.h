// Explicit SIMD layer under the vectorized expression engine.
//
// The kernels in expr_kernels.cc / vector_batch.cc / operators.cc call these
// entry points for *dense* batches (lanes 0..n-1 contiguous). Every function
// has documented scalar reference semantics that are bit-identical to the
// tuple-at-a-time interpreter (expression.cc); the differential fuzz tests
// lock this in for the SIMD, generic-vector and scalar builds alike.
//
// Implementation tiers (simd.cc), chosen per-process at first use:
//   avx2    x86-64 with AVX2 at runtime (function multi-versioning via
//           __attribute__((target("avx2"))); no special compile flags needed)
//   vec128  the same kernels compiled against the baseline ISA using GNU
//           vector extensions - SSE2 on x86-64, NEON on aarch64
//   scalar  plain loops; also the reference the tests compare against
//
// The CMake option JSONTILES_SIMD (default ON) gates the vector tiers at
// compile time; OFF builds dispatch to scalar only. SetEnabled(false) forces
// the scalar tier at runtime (bench --no-simd / differential testing).

#ifndef JSONTILES_EXEC_SIMD_H_
#define JSONTILES_EXEC_SIMD_H_

#include <cstddef>
#include <cstdint>

#include "exec/expression.h"

namespace jsontiles::exec::simd {

/// Name of the tier answering calls right now: "avx2", "vec128" or "scalar".
const char* ActiveIsa();

/// Runtime kill switch (default on). Off routes every call below to the
/// scalar reference implementation; benches expose it as --no-simd and the
/// differential tests flip it to prove bit-identity. Not thread-safe with
/// concurrent kernel execution - flip it only between queries.
void SetEnabled(bool on);
bool Enabled();

/// True when a vector tier was compiled in (JSONTILES_SIMD=ON and a known
/// architecture); false means ActiveIsa() is "scalar" regardless of Enabled().
bool CompiledIn();

/// Dense-batch gate used by the kernels: a vector tier is compiled in and the
/// runtime switch is on. When false the kernels keep their original scalar
/// gather loops (the PR-2 baseline the benches compare against).
inline bool UseSimd() { return CompiledIn() && Enabled(); }

// ---------------------------------------------------------------------------
// Null bytemaps (1 = null)
// ---------------------------------------------------------------------------

/// out[k] = a[k] | b[k]  - the null fold of every binary kernel.
void OrBytes(const uint8_t* a, const uint8_t* b, uint8_t* out, size_t n);

// ---------------------------------------------------------------------------
// Comparisons into selection bitmaps (kBool vectors: int64 0/1 + null bytes)
// ---------------------------------------------------------------------------
// All comparisons reproduce ApplyCmp(op, x < y ? -1 : x > y ? 1 : 0) exactly,
// including the NaN quirk (NaN compares "equal" to everything because both
// orderings are false). Null lanes fold an|bn into onull; their payload is
// unspecified, like everywhere else in the batch engine.

/// Both operands int64, compared through double (interpreter semantics for
/// number comparisons - int vs int also goes through AsDouble).
void CompareI64ViaDouble(BinOp op, const int64_t* a, const int64_t* b,
                         const uint8_t* an, const uint8_t* bn, int64_t* out,
                         uint8_t* onull, size_t n);

/// Both operands double.
void CompareF64(BinOp op, const double* a, const double* b, const uint8_t* an,
                const uint8_t* bn, int64_t* out, uint8_t* onull, size_t n);

/// Mixed int64/double: the int side is converted to double first (exact,
/// round-to-nearest - identical to static_cast<double>).
void CompareI64F64(BinOp op, const int64_t* a, const double* b,
                   const uint8_t* an, const uint8_t* bn, int64_t* out,
                   uint8_t* onull, size_t n);
void CompareF64I64(BinOp op, const double* a, const int64_t* b,
                   const uint8_t* an, const uint8_t* bn, int64_t* out,
                   uint8_t* onull, size_t n);

/// Raw int64 lane comparison (bool / timestamp operands - no double detour).
void CompareI64Raw(BinOp op, const int64_t* a, const int64_t* b,
                   const uint8_t* an, const uint8_t* bn, int64_t* out,
                   uint8_t* onull, size_t n);

// ---------------------------------------------------------------------------
// Arithmetic
// ---------------------------------------------------------------------------

/// Int64 +,-,* (two's-complement wraparound). op must be kAdd/kSub/kMul.
void ArithI64(BinOp op, const int64_t* a, const int64_t* b, const uint8_t* an,
              const uint8_t* bn, int64_t* out, uint8_t* onull, size_t n);

/// Double +,-,*,/; division by zero yields null (interpreter semantics).
void ArithF64(BinOp op, const double* a, const double* b, const uint8_t* an,
              const uint8_t* bn, double* out, uint8_t* onull, size_t n);

/// Exact int64 -> double conversion (round-to-nearest, bit-identical to
/// static_cast<double> for the full int64 range). Feeds mixed-type arith.
void I64ToF64(const int64_t* in, double* out, size_t n);

// ---------------------------------------------------------------------------
// Three-valued logic over boolean vectors (null-bytemap folding)
// ---------------------------------------------------------------------------
// Inputs are kBool vectors: payload int64 (any nonzero = true) + null bytes.
// AND: false dominates null; OR: true dominates null - like KernelLogic.

void And3VL(const int64_t* a, const int64_t* b, const uint8_t* an,
            const uint8_t* bn, int64_t* out, uint8_t* onull, size_t n);
void Or3VL(const int64_t* a, const int64_t* b, const uint8_t* an,
           const uint8_t* bn, int64_t* out, uint8_t* onull, size_t n);

// ---------------------------------------------------------------------------
// Selection vectors
// ---------------------------------------------------------------------------

/// pass[k] = 1 when lane k is non-null true (nulls[k] == 0 && vals[k] != 0),
/// else 0 - the predicate-consumption bitmap of IntersectSelection.
void BoolPassBytes(const int64_t* vals, const uint8_t* nulls, uint8_t* pass,
                   size_t n);

/// Compact the set lanes of `pass` into ascending indices; returns the count.
/// (Word-at-a-time scan: zero words of a selective predicate cost one load.)
size_t CompactPassIndices(const uint8_t* pass, size_t n, uint16_t* idx);

// ---------------------------------------------------------------------------
// Batched 64-bit hash mixing (join build / aggregation keys)
// ---------------------------------------------------------------------------

/// out[k] = HashInt(static_cast<uint64_t>(v[k])) - the murmur3 finalizer,
/// bit-identical to Value::Hash() for Int/Bool/Timestamp values. Lanes whose
/// null byte is set get `null_hash` (pass Value::Null().Hash()).
void HashI64Batch(const int64_t* v, const uint8_t* nulls, uint64_t null_hash,
                  uint64_t* out, size_t n);

/// acc[k] = HashCombine(acc[k], h[k]) - the boost-style combine used by
/// multi-column join/group keys.
void HashCombineBatch(uint64_t* acc, const uint64_t* h, size_t n);

}  // namespace jsontiles::exec::simd

#endif  // JSONTILES_EXEC_SIMD_H_
