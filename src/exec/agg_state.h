// Shared aggregation state: the accumulator, group table and merge/finalize
// helpers behind AggregateExec — exported so the distributed exchange can
// build *partial* aggregates in worker processes and merge them in the
// coordinator through exactly the same code path. The accumulator is
// order-independent by construction (exact int64 sums, Shewchuk float sums,
// total-order MIN/MAX ties, hash-set distinct), so partials merge to
// bit-identical results no matter how rows were split across threads, shards,
// spill runs or worker processes (DESIGN.md §10, §13).

#ifndef JSONTILES_EXEC_AGG_STATE_H_
#define JSONTILES_EXEC_AGG_STATE_H_

#include <cstdint>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "exec/float_sum.h"
#include "exec/operators.h"

namespace jsontiles::exec {

/// Seed of the group/join key hash chain (group hash = kKeyHashSeed combined
/// with each key Value's hash). Workers and coordinator must agree on it so a
/// group's hash is stable across processes.
inline constexpr uint64_t kKeyHashSeed = 0x2545F4914F6CDD1DULL;

/// Estimated hash-table cost per row beyond its Values: bucket entry, per-row
/// key vector header, map node slack. Used for memory-budget charges.
inline constexpr size_t kPerRowTableOverhead = 64;

/// A total order refining Value::Compare for values that compare equal:
/// type tag first, then exact bit pattern for floats (distinguishing -0.0
/// from 0.0 and NaN payloads), then numeric scale. Content-only, so it is
/// identical no matter what order rows arrived in. Nulls order last (the
/// sort operator's convention).
int TotalValueOrder(const Value& a, const Value& b);

/// Per-(group, aggregate) running state. Every operation commutes, so
/// AddValue/Merge in any interleaving finalizes to the same bits.
struct Accumulator {
  // Sum: integers accumulate exactly in sum_i; everything else goes through
  // the exact float summer. Both are order-independent, so SUM/AVG results
  // do not depend on how rows were partitioned across threads, shards or
  // spill runs (DESIGN.md §10).
  int64_t sum_i = 0;
  ExactFloatSum sum_f;
  bool sum_is_float = false;
  bool sum_seen = false;
  int64_t count = 0;  // non-null args (kCount) or rows (kCountStar)
  Value min, max;
  std::unordered_set<uint64_t> distinct;  // hash-based distinct

  void AddValue(AggSpec::Kind kind, const Value& v);
  void Merge(AggSpec::Kind kind, const Accumulator& other);

  /// The exact integer part folded into the float summer: split into two
  /// halves that are each exactly representable as doubles, so the combined
  /// sum stays exact.
  double FloatTotal() const;

  Value Finalize(AggSpec::Kind kind) const;
};

struct AggGroup {
  std::vector<Value> keys;
  std::vector<Accumulator> accs;
};

/// Group table keyed by the kKeyHashSeed-chained key hash; equal-hash groups
/// chain in the bucket vector and are distinguished by EqualsForGrouping.
using AggGroupMap = std::unordered_map<uint64_t, std::vector<AggGroup>>;

/// Scalar partial aggregation: fold every row of `in` into `groups`
/// (interpreted expression evaluation; arena backs derived strings). This is
/// the worker-side path of the distributed partial-aggregate push-down —
/// bit-identical to AggregateExec's accumulation because both feed the same
/// Accumulator (vectorized evaluation is bit-identical to the interpreter by
/// the repo-wide differential contract).
void AccumulateRows(const RowSet& in, const std::vector<ExprPtr>& group_by,
                    const std::vector<AggSpec>& aggs, Arena* arena,
                    AggGroupMap* groups);

/// Merge one group (with its precomputed hash) into `dst`: accumulate into
/// the matching group or insert. Used by the in-memory partial merge and the
/// coordinator-side exchange merge.
void MergeGroup(AggGroupMap* dst, uint64_t hash, AggGroup&& group,
                const std::vector<AggSpec>& aggs);

/// Emit one output row per group: [keys..., finalized aggregates...], in the
/// map's iteration order (callers that need a deterministic order sort the
/// result; every differential-tested query does).
void FinalizeGroups(const AggGroupMap& groups,
                    const std::vector<AggSpec>& aggs, RowSet* out);

/// SQL semantics for a global aggregate of empty input: one row of
/// default-accumulator finalizations (COUNT = 0, SUM = null, ...).
Row EmptyGlobalAggRow(const std::vector<AggSpec>& aggs);

}  // namespace jsontiles::exec

#endif  // JSONTILES_EXEC_AGG_STATE_H_
