// Table scan with access-expression push-down (paper §4.2, §4.5, §4.8).
//
// The scan receives the typed JSON accesses of the query (placeholders). Per
// tile it resolves each access once — materialized column (direct or with a
// cheap cast, §4.3/§4.5), or binary-JSON fallback — caches the resolution for
// all tuples of the tile, skips tiles that cannot contain a null-rejecting
// path (§4.8), evaluates the pushed-down filter, and emits rows of slot
// values. JSONB/JSON-text relations scan documents directly (the JSON-text
// mode re-parses every document, which is exactly its cost).

#ifndef JSONTILES_EXEC_SCAN_H_
#define JSONTILES_EXEC_SCAN_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "exec/expression.h"
#include "exec/vector_batch.h"
#include "obs/plan_profile.h"
#include "storage/relation.h"
#include "util/arena.h"
#include "util/resource_governor.h"
#include "util/status.h"
#include "util/thread_pool.h"

namespace jsontiles::storage {
class ShardedRelation;
}  // namespace jsontiles::storage

namespace jsontiles::exec {

class DistRuntime;  // exec/exchange.h

using Row = std::vector<Value>;
using RowSet = std::vector<Row>;

/// Fault-tolerance budget of a distributed query (DESIGN.md §14). A worker
/// that dies or hangs mid-fragment is killed, respawned with capped
/// exponential backoff, and its fragments re-dispatched (new epoch) to a
/// surviving worker; fragments are deterministic and results commit only on
/// FragmentDone, so a re-execution is safe and bit-identical. Zeroed budgets
/// restore the PR-8 behavior: the first worker death fails the query.
struct DistRetryPolicy {
  /// Re-dispatches allowed per fragment before the query fails cleanly.
  uint32_t max_fragment_retries = 2;
  /// Respawns allowed per worker slot over the cluster's lifetime; a slot
  /// that exhausts it is permanently dead and its shards migrate to
  /// survivors.
  uint32_t max_worker_respawns = 2;
  /// First respawn backoff; doubles per consecutive attempt, capped below.
  uint32_t respawn_backoff_ms = 25;
  uint32_t respawn_backoff_cap_ms = 1000;
};

struct ExecOptions {
  size_t num_threads = 1;
  /// §4.8: skip tiles that cannot contain a null-rejecting key path.
  bool enable_tile_skipping = true;
  /// Evaluate pushed-down filters and operator expressions batch-at-a-time
  /// with compiled programs (expr_compile.h). Off = scalar interpreter only.
  bool enable_vectorized = true;
  /// Hard cap on operator scratch memory (join/aggregation hash tables,
  /// spill-partition read-back); 0 = unlimited. Operators spill to disk
  /// (exec/spill.h) instead of exceeding it — results are identical.
  size_t mem_limit_bytes = 0;
  /// Directory for spill temp files; empty = $TMPDIR (else /tmp).
  std::string spill_dir;
  /// Parent of the query's memory budget (not owned; must outlive every
  /// budget operation of the query). The multi-tenant service
  /// (service/query_service.h) points this at the query's resource-group
  /// quota, making the per-query budget a grandchild of the global budget:
  /// group exhaustion then refuses operator charges — triggering spill —
  /// instead of over-committing memory. Null = standalone query budget.
  MemoryBudget* budget_parent = nullptr;
  /// Shared spill-disk governor (not owned; null = uncapped). When set,
  /// every SpillFile block reserves against it before reaching disk, capping
  /// the aggregate temp-disk of all concurrently spilling queries; a refused
  /// reserve fails only this query, with a clean ResourceExhausted.
  DiskBudget* spill_disk = nullptr;
  /// Worker-failure recovery budgets for distributed execution (ignored by
  /// local queries).
  DistRetryPolicy dist_retry;
};

/// Per-query state: worker arenas for derived strings (rows reference them,
/// so the context must outlive all row sets) and an optional thread pool.
class QueryContext {
 public:
  explicit QueryContext(ExecOptions options = {});

  const ExecOptions& options() const { return options_; }
  size_t num_workers() const { return arenas_.size(); }
  Arena* arena(size_t worker) { return arenas_[worker].get(); }
  ThreadPool* pool() { return pool_.get(); }

  /// Query-level memory budget (limit = options().mem_limit_bytes; 0 =
  /// unlimited). Operators reserve scratch memory against it and spill when
  /// refused.
  MemoryBudget* budget() { return &budget_; }

  /// Sever the budget's link to options().budget_parent. A governed session
  /// keeps the context (its arenas back the result rows) after releasing
  /// its admission, at which point the parent — the resource-group quota —
  /// may be dropped at any time; detaching makes any later budget access
  /// stop at the query level instead of chasing a dangling pointer. Call
  /// only once every charge taken through the parent has been released
  /// (Release() guarantees this for admissions).
  void DetachBudgetParent() { budget_.DetachParent(); }

  /// Record a failure and request cancellation; the first status wins.
  /// Thread-safe — workers call this when a morsel fails mid-query.
  void Cancel(Status status);
  /// True once any part of the query has failed; operators and scan morsels
  /// check this to stop doing work (cooperative unwinding).
  bool cancelled() const {
    return cancelled_.load(std::memory_order_relaxed);
  }
  /// Take the recorded failure (OK when none) and reset the cancelled flag.
  /// The SQL boundary calls this once after execution to surface the error.
  Status ConsumeStatus();

  /// Bytes allocated across all worker arenas so far. Arenas only grow for
  /// the lifetime of the query, so this is also the peak, and the delta
  /// across an operator is that operator's allocation — EXPLAIN ANALYZE
  /// reports it per operator. Only call between operators (workers allocate
  /// concurrently inside one).
  size_t arena_bytes() const {
    size_t total = 0;
    for (const auto& a : arenas_) total += a->bytes_allocated();
    return total;
  }

  /// Tiles skipped by §4.8 across all scans of this query (observability).
  size_t tiles_skipped = 0;
  size_t tiles_scanned = 0;
  /// Shard-level pruning across all sharded scans of this query: shards
  /// skipped entirely (routing key, shard bloom, shard zone maps) vs shards
  /// whose tiles were considered. Unsharded scans touch neither.
  size_t shards_pruned = 0;
  size_t shards_scanned = 0;
  /// Bytes this query spilled to temp disk across all operators (framed,
  /// post-compression). Accumulated by the operator that owned the spill, on
  /// its calling thread — read it only between operators.
  uint64_t spilled_bytes = 0;

  /// Stamped by the admission layer (service/query_service.h): the resource
  /// group that admitted this query and how long it waited in the group's
  /// queue. EXPLAIN ANALYZE appends them as a footer row when set.
  std::string resource_group;
  uint64_t queue_wait_nanos = 0;

  /// Per-operator profiling sink (EXPLAIN ANALYZE). Null means off: each
  /// operator then pays a single branch. Not owned; the SQL layer attaches
  /// one for the duration of a profiled statement.
  obs::PlanProfile* profile = nullptr;

  /// Distributed runtime (exec/exchange.h). Null means local execution.
  /// When set, sharded scans of relations the runtime serves are dispatched
  /// to worker processes instead of running in this process. Not owned; the
  /// SQL layer (or a test/bench driver) attaches one per statement.
  DistRuntime* dist = nullptr;

 private:
  ExecOptions options_;
  MemoryBudget budget_;
  std::vector<std::unique_ptr<Arena>> arenas_;
  std::unique_ptr<ThreadPool> pool_;
  std::atomic<bool> cancelled_{false};
  std::mutex cancel_mutex_;
  Status cancel_status_;
};

struct ScanSpec {
  const storage::Relation* relation = nullptr;
  /// Sharded scan source (exactly one of relation/sharded is set). The scan
  /// iterates the shards, pruning whole shards with shard-level statistics
  /// (routing key → bloom → zone maps) before any tile-level work, and
  /// offsets row ids by each shard's RowIdBase so they are globally unique.
  const storage::ShardedRelation* sharded = nullptr;
  /// With `sharded`: scan the array side relations (§3.5) for this encoded
  /// array path instead of the base shards — one part per shard that has
  /// one. Shard-level pruning does not apply (the statistics describe the
  /// base documents); tile-level pruning still does.
  std::string sharded_side_path;
  std::string table_alias;
  /// Pushed-down accesses; output slot i = accesses[i].
  std::vector<ExprPtr> accesses;
  /// Pushed-down predicate over the output slots (may be null).
  ExprPtr filter;
  /// Encoded paths enabling tile skipping for this scan.
  std::vector<std::string> null_rejecting_paths;
  /// Range predicates enabling zone-map tile skipping (§4.8 extension).
  std::vector<RangePredicate> range_predicates;
  /// With `relation`: row-id offset added to every row's virtual row id.
  /// Worker processes scan a single shard as a plain relation and pass
  /// RowIdBase(shard) here so rowids match the sharded scan's exactly.
  int64_t rowid_base = 0;
};

/// Execute the scan; rows contain one value per access, in order.
RowSet ScanExec(const ScanSpec& spec, QueryContext& ctx);

/// Shard indices of `spec.sharded` that survive shard-level pruning (routing
/// key → shard bloom → shard zone maps), ascending. With `enable_pruning`
/// false, every shard survives. This is the exact shard set a local sharded
/// scan would visit — the distributed coordinator plans fragments from it so
/// pruning behaves identically in both modes. Base scans only (side-relation
/// parts are enumerated via ShardedRelation::SideParts).
std::vector<size_t> SurvivingShards(const ScanSpec& spec, bool enable_pruning);

/// Evaluate one access against a binary JSON document (the fallback route
/// and the JSONB storage route). When `copy_strings` is set, string results
/// are copied into the arena (needed when `doc` is a transient buffer).
Value EvalAccessOnJsonb(json::JsonbValue doc, const std::string& path,
                        ValueType requested, Arena* arena, bool copy_strings);

/// Evaluate a scan-level access expression (kAccess, kArrayContains) against
/// a document. Virtual row-id accesses yield `row_id`.
Value EvalScanExprOnJsonb(const Expr& access, json::JsonbValue doc,
                          int64_t row_id, Arena* arena, bool copy_strings);

/// Batched binary-JSON fallback accessor: extract one pre-decoded key path
/// from many documents into ColumnVector lanes in a single pass. For every
/// lane r in `lanes`, navigates docs[r] (which must be non-null there) along
/// `steps` and stores the scalar converted to `requested` into `vec` —
/// bit-identical per lane to EvalAccessOnJsonb with copy_strings=false
/// (missing path => null lane; string lanes view the document bytes, which
/// must outlive the batch). `vec` must already be Reset to `requested`.
void ExtractJsonbPathBatch(const uint8_t* const* docs, const uint16_t* lanes,
                           size_t num_lanes, const json::PathStep* steps,
                           size_t num_steps, ValueType requested, Arena* arena,
                           ColumnVector* vec);

}  // namespace jsontiles::exec

#endif  // JSONTILES_EXEC_SCAN_H_
