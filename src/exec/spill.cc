#include "exec/spill.h"

#include <cstring>

#include "util/failpoint.h"
#include "util/logging.h"
#include "util/lz4.h"

namespace jsontiles::exec {

namespace {

// Blocks are sized so a fanout of 8 partitions per side keeps roughly one
// megabyte of write buffers alive, bounded regardless of input size.
constexpr size_t kSpillBlockSize = 64 * 1024;

void PutBytes(std::vector<uint8_t>& buf, const void* src, size_t n) {
  const uint8_t* p = static_cast<const uint8_t*>(src);
  buf.insert(buf.end(), p, p + n);
}

template <typename T>
void PutScalar(std::vector<uint8_t>& buf, T v) {
  PutBytes(buf, &v, sizeof(T));
}

template <typename T>
T GetScalar(const uint8_t* p) {
  T v;
  std::memcpy(&v, p, sizeof(T));
  return v;
}

}  // namespace

size_t ApproxRowBytes(const Row& row) {
  size_t bytes = sizeof(Row) + row.capacity() * sizeof(Value);
  for (const Value& v : row) {
    if (v.type == ValueType::kString) bytes += v.s.size();
  }
  return bytes;
}

Status SpillFile::Add(uint64_t hash, const Row& row) {
  JSONTILES_DCHECK(!finished_);
  const size_t before = buf_.size();
  PutScalar<uint64_t>(buf_, hash);
  PutScalar<uint16_t>(buf_, static_cast<uint16_t>(row.size()));
  for (const Value& v : row) {
    buf_.push_back(static_cast<uint8_t>(v.type));
    buf_.push_back(v.scale);
    switch (v.type) {
      case ValueType::kNull:
        break;
      case ValueType::kString:
        PutScalar<uint32_t>(buf_, static_cast<uint32_t>(v.s.size()));
        PutBytes(buf_, v.s.data(), v.s.size());
        break;
      default:
        // All other types carry their payload in the 8-byte union.
        PutScalar<int64_t>(buf_, v.i);
        break;
    }
  }
  rows_++;
  raw_bytes_ += buf_.size() - before;
  if (buf_.size() >= kSpillBlockSize) return WriteBlock();
  return Status::OK();
}

Status SpillFile::Finish() {
  if (finished_) return Status::OK();
  finished_ = true;
  if (!buf_.empty()) return WriteBlock();
  return Status::OK();
}

Status SpillFile::WriteBlock() {
  JSONTILES_FAILPOINT_RETURN("spill.write");
  if (!file_.valid()) {
    auto file = TempFile::Create(dir_);
    if (!file.ok()) return file.status();
    file_ = file.MoveValueOrDie();
    if (stats_ != nullptr) stats_->partitions++;
  }
  std::vector<uint8_t> comp = lz4::Compress(buf_.data(), buf_.size());
  const bool store_raw = comp.size() >= buf_.size();
  uint8_t header[8];
  const uint32_t raw_size = static_cast<uint32_t>(buf_.size());
  const uint32_t comp_size =
      store_raw ? 0 : static_cast<uint32_t>(comp.size());
  std::memcpy(header, &raw_size, 4);
  std::memcpy(header + 4, &comp_size, 4);
  const std::vector<uint8_t>& payload = store_raw ? buf_ : comp;
  const uint64_t framed = sizeof(header) + payload.size();
  if (disk_ != nullptr) {
    if (!disk_->TryReserve(framed)) {
      return Status::ResourceExhausted(
          "spill-disk budget exhausted (shared temp-disk governor)");
    }
    disk_held_ += framed;
  }
  JSONTILES_RETURN_NOT_OK(file_.Append(header, sizeof(header)));
  JSONTILES_RETURN_NOT_OK(file_.Append(payload.data(), payload.size()));
  if (stats_ != nullptr) stats_->spilled_bytes += framed;
  buf_.clear();
  return Status::OK();
}

Status SpillFile::ForEach(
    Arena* arena, const std::function<Status(uint64_t, Row&&)>& cb) {
  JSONTILES_RETURN_NOT_OK(Finish());
  std::vector<uint8_t> comp;
  std::vector<uint8_t> raw;
  uint64_t off = 0;
  while (off < file_.size()) {
    JSONTILES_FAILPOINT_RETURN("spill.read");
    uint8_t header[8];
    JSONTILES_RETURN_NOT_OK(file_.ReadAt(off, header, sizeof(header)));
    off += sizeof(header);
    const uint32_t raw_size = GetScalar<uint32_t>(header);
    const uint32_t comp_size = GetScalar<uint32_t>(header + 4);
    raw.resize(raw_size);
    if (comp_size == 0) {
      JSONTILES_RETURN_NOT_OK(file_.ReadAt(off, raw.data(), raw_size));
      off += raw_size;
    } else {
      comp.resize(comp_size);
      JSONTILES_RETURN_NOT_OK(file_.ReadAt(off, comp.data(), comp_size));
      off += comp_size;
      if (!lz4::Decompress(comp.data(), comp.size(), raw.data(), raw_size)) {
        return Status::Internal("corrupt spill block (LZ4 decode failed)");
      }
    }
    size_t pos = 0;
    while (pos < raw.size()) {
      const uint64_t hash = GetScalar<uint64_t>(raw.data() + pos);
      pos += 8;
      const uint16_t num_values = GetScalar<uint16_t>(raw.data() + pos);
      pos += 2;
      Row row;
      row.reserve(num_values);
      for (uint16_t i = 0; i < num_values; i++) {
        Value v;
        v.type = static_cast<ValueType>(raw[pos]);
        v.scale = raw[pos + 1];
        pos += 2;
        switch (v.type) {
          case ValueType::kNull:
            break;
          case ValueType::kString: {
            const uint32_t len = GetScalar<uint32_t>(raw.data() + pos);
            pos += 4;
            const char* src = reinterpret_cast<const char*>(raw.data() + pos);
            if (len == 0) {
              v.s = {};
            } else if (arena != nullptr) {
              uint8_t* copy = arena->AllocateCopy(src, len);
              v.s = std::string_view(reinterpret_cast<const char*>(copy), len);
            } else {
              v.s = std::string_view(src, len);  // valid during cb only
            }
            pos += len;
            break;
          }
          default:
            v.i = GetScalar<int64_t>(raw.data() + pos);
            pos += 8;
            break;
        }
        row.push_back(v);
      }
      JSONTILES_RETURN_NOT_OK(cb(hash, std::move(row)));
    }
  }
  return Status::OK();
}

Status SpillFile::ReadAll(Arena* arena, RowSet* out) {
  out->reserve(out->size() + static_cast<size_t>(rows_));
  return ForEach(arena, [out](uint64_t, Row&& row) {
    out->push_back(std::move(row));
    return Status::OK();
  });
}

}  // namespace jsontiles::exec
