#include "exec/scan.h"

#include <algorithm>
#include <atomic>
#include <cmath>

#include "exec/exchange.h"
#include "exec/expr_compile.h"
#include "exec/vector_batch.h"
#include "obs/obs.h"
#include "storage/shard.h"
#include "tiles/keypath.h"
#include "tiles/tile.h"
#include "util/failpoint.h"

namespace jsontiles::exec {

QueryContext::QueryContext(ExecOptions options)
    : options_(std::move(options)),
      budget_(options_.mem_limit_bytes, options_.budget_parent) {
  size_t workers = std::max<size_t>(1, options_.num_threads);
  for (size_t i = 0; i < workers; i++) {
    arenas_.push_back(std::make_unique<Arena>());
  }
  if (workers > 1) pool_ = std::make_unique<ThreadPool>(workers - 1);
}

void QueryContext::Cancel(Status status) {
  JSONTILES_DCHECK(!status.ok());
  {
    std::lock_guard<std::mutex> lock(cancel_mutex_);
    if (cancel_status_.ok()) cancel_status_ = std::move(status);
  }
  cancelled_.store(true, std::memory_order_relaxed);
}

Status QueryContext::ConsumeStatus() {
  std::lock_guard<std::mutex> lock(cancel_mutex_);
  Status s = std::move(cancel_status_);
  cancel_status_ = Status::OK();
  cancelled_.store(false, std::memory_order_relaxed);
  return s;
}

namespace {

using storage::Relation;
using storage::StorageMode;
using tiles::ColumnType;
using tiles::ExtractedColumn;
using tiles::Tile;

std::string_view ArenaCopy(std::string_view s, Arena* arena) {
  if (s.empty()) return {};
  uint8_t* p = arena->AllocateCopy(s.data(), s.size());
  return {reinterpret_cast<const char*>(p), s.size()};
}

// Convert a JSONB scalar into an engine value of the requested type.
Value JsonbScalarToValue(const json::JsonbValue& v, ValueType requested,
                         Arena* arena, bool copy_strings) {
  Value raw;
  switch (v.type()) {
    case json::JsonType::kNull:
      return Value::Null();
    case json::JsonType::kBool:
      raw = Value::Bool(v.GetBool());
      break;
    case json::JsonType::kInt:
      raw = Value::Int(v.GetInt());
      break;
    case json::JsonType::kFloat:
      raw = Value::Float(v.GetDouble());
      break;
    case json::JsonType::kString: {
      std::string_view s = v.GetString();
      raw = Value::String(copy_strings ? ArenaCopy(s, arena) : s);
      break;
    }
    case json::JsonType::kNumericString:
      raw = Value::Num(v.GetNumeric());
      break;
    case json::JsonType::kObject:
    case json::JsonType::kArray: {
      // ->> of a container returns its JSON text; other casts yield null.
      if (requested != ValueType::kString) return Value::Null();
      std::string text = v.ToJsonText();
      return Value::String(ArenaCopy(text, arena));
    }
  }
  if (raw.type == requested) return raw;
  return CastValue(raw, requested, arena);
}

}  // namespace

Value EvalAccessOnJsonb(json::JsonbValue doc, const std::string& path,
                        ValueType requested, Arena* arena, bool copy_strings) {
  auto found = tiles::LookupPath(doc, path);
  if (!found.has_value()) return Value::Null();
  return JsonbScalarToValue(*found, requested, arena, copy_strings);
}

void ExtractJsonbPathBatch(const uint8_t* const* docs, const uint16_t* lanes,
                           size_t num_lanes, const json::PathStep* steps,
                           size_t num_steps, ValueType requested, Arena* arena,
                           ColumnVector* vec) {
  uint8_t* nulls = vec->nulls();
  for (size_t k = 0; k < num_lanes; k++) {
    const size_t r = lanes[k];
    auto found =
        json::LookupSteps(json::JsonbValue(docs[r]), steps, num_steps);
    if (!found.has_value()) {
      nulls[r] = 1;
      continue;
    }
    const json::JsonbValue& v = *found;
    // Exact type matches write the lane directly; everything else (casts,
    // numerics, containers, JSON nulls) goes through the same conversion as
    // the per-row evaluator, so results stay bit-identical.
    switch (v.type()) {
      case json::JsonType::kInt:
        if (requested == ValueType::kInt) {
          nulls[r] = 0;
          vec->i64()[r] = v.GetInt();
          continue;
        }
        break;
      case json::JsonType::kFloat:
        if (requested == ValueType::kFloat) {
          nulls[r] = 0;
          vec->f64()[r] = v.GetDouble();
          continue;
        }
        break;
      case json::JsonType::kBool:
        if (requested == ValueType::kBool) {
          nulls[r] = 0;
          vec->i64()[r] = v.GetBool() ? 1 : 0;
          continue;
        }
        break;
      case json::JsonType::kString:
        if (requested == ValueType::kString) {
          nulls[r] = 0;
          vec->str()[r] = v.GetString();
          continue;
        }
        break;
      default:
        break;
    }
    vec->SetValue(r, JsonbScalarToValue(v, requested, arena,
                                        /*copy_strings=*/false));
  }
}

Value EvalScanExprOnJsonb(const Expr& access, json::JsonbValue doc,
                          int64_t row_id, Arena* arena, bool copy_strings) {
  if (access.kind == ExprKind::kArrayContains) {
    auto array = tiles::LookupPath(doc, access.path);
    if (!array.has_value() || array->type() != json::JsonType::kArray) {
      return Value::Bool(false);
    }
    size_t count = array->Count();
    std::string_view needle = access.const_storage;
    for (size_t i = 0; i < count; i++) {
      json::JsonbValue element = array->ArrayElement(i);
      if (access.pattern.empty()) {
        if (element.type() == json::JsonType::kString &&
            element.GetString() == needle) {
          return Value::Bool(true);
        }
        continue;
      }
      if (element.type() != json::JsonType::kObject) continue;
      auto member = element.FindKey(access.pattern);
      if (member.has_value() && member->type() == json::JsonType::kString &&
          member->GetString() == needle) {
        return Value::Bool(true);
      }
    }
    return Value::Bool(false);
  }
  if (access.path == kRowIdPath) return Value::Int(row_id);
  return EvalAccessOnJsonb(doc, access.path, access.access_type, arena,
                           copy_strings);
}

namespace {

// Per-tile resolution of one access (§4.5), cached for all tuples.
struct ResolvedAccess {
  enum class Route : uint8_t { kColumn, kColumnCast, kFallback };
  Route route = Route::kFallback;
  const ExtractedColumn* column = nullptr;
  bool fallback_on_null = false;  // §3.4: outliers live in the binary JSON
  ValueType requested;
};

ValueType ColumnValueType(ColumnType type) {
  switch (type) {
    case ColumnType::kBool: return ValueType::kBool;
    case ColumnType::kInt64: return ValueType::kInt;
    case ColumnType::kFloat64: return ValueType::kFloat;
    case ColumnType::kString: return ValueType::kString;
    case ColumnType::kTimestamp: return ValueType::kTimestamp;
    case ColumnType::kNumeric: return ValueType::kNumeric;
  }
  return ValueType::kNull;
}

ResolvedAccess ResolveAccess(const Tile& tile, const Expr& access) {
  ResolvedAccess resolved;
  resolved.requested = access.access_type;
  // Array containment and row ids never come from materialized columns.
  if (access.kind != ExprKind::kAccess || access.path == kRowIdPath) {
    return resolved;
  }
  const ExtractedColumn* col = tile.FindColumn(access.path);
  if (col == nullptr) return resolved;  // fallback
  // §4.9: a Timestamp extract must not serve a Text request — the exact
  // string representation lives only in the binary JSON.
  if (col->is_timestamp && access.access_type == ValueType::kString) {
    return resolved;
  }
  resolved.column = col;
  resolved.fallback_on_null =
      col->has_type_outliers || (col->is_timestamp && col->nullable);
  resolved.route = ColumnValueType(col->storage_type) == access.access_type
                       ? ResolvedAccess::Route::kColumn
                       : ResolvedAccess::Route::kColumnCast;
  return resolved;
}

Value ReadColumnValue(const ExtractedColumn& col, size_t row) {
  switch (col.storage_type) {
    case ColumnType::kBool: return Value::Bool(col.column.GetBool(row));
    case ColumnType::kInt64: return Value::Int(col.column.GetInt(row));
    case ColumnType::kFloat64: return Value::Float(col.column.GetFloat(row));
    case ColumnType::kString: return Value::String(col.column.GetString(row));
    case ColumnType::kTimestamp: return Value::Ts(col.column.GetTimestamp(row));
    case ColumnType::kNumeric: return Value::Num(col.column.GetNumeric(row));
  }
  return Value::Null();
}

// Zone-map skip decision shared by tile-level and shard-level pruning: can a
// range [min, max] of `storage_type` values be proven to contain no value
// satisfying `access OP constant`? Rows where the access is null are
// rejected by the comparison anyway, so the non-null range is decisive.
bool ZoneMapCanSkip(ColumnType storage_type, int64_t min_i, int64_t max_i,
                    double min_d, double max_d, const RangePredicate& rp) {
  // The cast from the stored type to the requested type must preserve order
  // exactly; float->int truncation does not (negatives round toward zero).
  switch (storage_type) {
    case ColumnType::kInt64:
      if (rp.access_type != ValueType::kInt && rp.access_type != ValueType::kFloat) {
        return false;
      }
      break;
    case ColumnType::kFloat64:
      if (rp.access_type != ValueType::kFloat) return false;
      break;
    case ColumnType::kTimestamp:
      if (rp.access_type != ValueType::kTimestamp) return false;
      break;
    default:
      return false;
  }
  double lo, hi;
  if (storage_type == ColumnType::kFloat64) {
    lo = min_d;
    hi = max_d;
  } else {
    lo = static_cast<double>(min_i);
    hi = static_cast<double>(max_i);
  }
  // Guard against double rounding at the extremes of huge int64 domains.
  if (storage_type != ColumnType::kFloat64 &&
      (std::abs(lo) > 9e15 || std::abs(hi) > 9e15)) {
    return false;
  }
  double c = rp.constant.AsDouble();
  switch (rp.op) {
    case BinOp::kLt: return lo >= c;
    case BinOp::kLe: return lo > c;
    case BinOp::kGt: return hi <= c;
    case BinOp::kGe: return hi < c;
    case BinOp::kEq: return c < lo || c > hi;
    default: return false;
  }
}

// Tile zone-map skipping: only when the column is extracted, carries a
// min/max and has no type outliers (outlier values live in the binary JSON,
// outside the map).
bool CanSkipByZoneMap(const Tile& tile, const RangePredicate& rp) {
  const ExtractedColumn* col = tile.FindColumn(rp.path);
  if (col == nullptr || !col->has_minmax || col->has_type_outliers) return false;
  return ZoneMapCanSkip(col->storage_type, col->min_i, col->max_i, col->min_d,
                        col->max_d, rp);
}

// One contiguous piece of one scan source relation. Sharded scans have one
// part per surviving shard (plus per-shard side relations); `rowid_base` is
// added to part-local row indices wherever a row id becomes visible, so ids
// stay globally unique and shard-count independent.
struct ScanPart {
  const Relation* rel;
  int64_t rowid_base;
};

// Chunk boundaries shared by the scalar and the vectorized path: tiles for
// tiled modes, fixed chunks otherwise. `row_begin` is local to `rel`.
struct Chunk {
  const Relation* rel;
  int64_t rowid_base;
  size_t row_begin;
  size_t row_count;
  const Tile* tile;  // null for non-tiled modes
};

// Batch-at-a-time scan of one chunk: pushed-down conjuncts run as compiled
// programs over column vectors read in bulk from the tile. Slot vectors
// materialize lazily, so later conjuncts and binary-JSON fallback accesses
// only touch rows surviving the earlier selection. One instance per worker;
// buffers are reused across chunks. JSON-text relations stay on the scalar
// path (each document re-parse invalidates the shared parse buffer, so
// there is nothing to batch).
class VectorizedChunkScan {
 public:
  VectorizedChunkScan(const ScanSpec& spec, CompiledPredicate& pred,
                      Arena* arena)
      : spec_(spec),
        pred_(pred),
        arena_(arena),
        num_slots_(spec.accesses.size()),
        slot_vecs_(num_slots_),
        ready_(num_slots_, 0),
        steps_(num_slots_),
        steps_ready_(num_slots_, 0) {}

  void Run(const Chunk& chunk, const std::vector<ResolvedAccess>& resolved,
           RowSet* out) {
    rel_ = chunk.rel;
    rowid_base_ = chunk.rowid_base;
    for (size_t b = 0; b < chunk.row_count; b += kVectorSize) {
      ScanBatch(chunk, resolved, b, std::min(kVectorSize, chunk.row_count - b),
                out);
    }
  }

  size_t batches() const { return batches_; }
  size_t rows() const { return rows_; }

 private:
  void ScanBatch(const Chunk& chunk, const std::vector<ResolvedAccess>& resolved,
                 size_t batch_begin, size_t n, RowSet* out) {
    batches_++;
    rows_ += n;
    sel_.SetAll(n);
    std::fill(ready_.begin(), ready_.end(), 0);
    for (auto& conjunct : pred_.conjuncts()) {
      for (int s : conjunct.slots) {
        MaterializeSlot(static_cast<size_t>(s), chunk, resolved, batch_begin, n);
      }
      IntersectSelection(conjunct.program.Run(slot_vecs_.data(), sel_, arena_),
                         &sel_);
      if (sel_.empty()) return;
    }
    for (size_t i = 0; i < num_slots_; i++) {
      MaterializeSlot(i, chunk, resolved, batch_begin, n);
    }
    Row row(num_slots_);
    for (size_t k = 0; k < sel_.count; k++) {
      const size_t r = sel_.idx[k];
      for (size_t i = 0; i < num_slots_; i++) {
        row[i] = slot_vecs_[i].GetValue(r);
      }
      bool keep = true;
      for (const ExprPtr& residual : pred_.residuals()) {
        Value v = EvalExpr(*residual, row.data(), arena_);
        if (v.is_null() || !v.bool_value()) {
          keep = false;
          break;
        }
      }
      if (keep) out->push_back(row);
    }
  }

  void FillFromDoc(ColumnVector& vec, const Expr& access, size_t r,
                   size_t rel_row) {
    json::JsonbValue doc(rel_->Jsonb(rel_row).data());
    vec.SetValue(r, EvalScanExprOnJsonb(
                        access, doc,
                        rowid_base_ + static_cast<int64_t>(rel_row), arena_,
                        /*copy_strings=*/false));
  }

  // Decode the access path once per query (the views point into the Expr's
  // own path storage, which outlives the scan).
  const std::vector<json::PathStep>& StepsFor(size_t i, const Expr& access) {
    if (!steps_ready_[i]) {
      steps_ready_[i] = 1;
      steps_[i] = tiles::DecodePathSteps(access.path);
    }
    return steps_[i];
  }

  // Binary-JSON fallback over a set of lanes: one shared pre-decoded path
  // lookup across all documents of the batch. Array containment keeps the
  // per-row evaluator (it scans elements, not a single path).
  void FillFromDocBatch(ColumnVector& vec, size_t i, const Expr& access,
                        const uint16_t* lanes, size_t num_lanes,
                        size_t rel_row0) {
    if (access.kind != ExprKind::kAccess) {
      for (size_t k = 0; k < num_lanes; k++) {
        const size_t r = lanes[k];
        FillFromDoc(vec, access, r, rel_row0 + r);
      }
      return;
    }
    for (size_t k = 0; k < num_lanes; k++) {
      const size_t r = lanes[k];
      doc_ptrs_[r] = rel_->Jsonb(rel_row0 + r).data();
    }
    const auto& steps = StepsFor(i, access);
    ExtractJsonbPathBatch(doc_ptrs_, lanes, num_lanes, steps.data(),
                          steps.size(), access.access_type, arena_, &vec);
  }

  // Materialize slot i for the current batch, honoring the current
  // selection: column routes bulk-read the whole batch (cheap, branchless);
  // per-row work (casts, binary-JSON fallback) runs on selected rows only.
  void MaterializeSlot(size_t i, const Chunk& chunk,
                       const std::vector<ResolvedAccess>& resolved,
                       size_t batch_begin, size_t n) {
    if (ready_[i]) return;
    ready_[i] = 1;
    const ResolvedAccess& ra = resolved[i];
    const Expr& access = *spec_.accesses[i];
    ColumnVector& vec = slot_vecs_[i];
    vec.Reset(ra.requested);
    const size_t col_row0 = batch_begin;  // row offset inside the tile
    const size_t rel_row0 = chunk.row_begin + batch_begin;

    if (access.kind == ExprKind::kAccess && access.path == kRowIdPath) {
      uint8_t* nulls = vec.nulls();
      int64_t* out = vec.i64();
      for (size_t k = 0; k < n; k++) {
        nulls[k] = 0;
        out[k] = rowid_base_ + static_cast<int64_t>(rel_row0 + k);
      }
      return;
    }
    if (ra.route == ResolvedAccess::Route::kColumn) {
      const tiles::Column& col = ra.column->column;
      col.ReadNulls(col_row0, n, vec.nulls());
      switch (ra.column->storage_type) {
        case ColumnType::kBool:
          col.ReadBools(col_row0, n, vec.i64());
          break;
        case ColumnType::kInt64:
        case ColumnType::kTimestamp:
          col.ReadInts(col_row0, n, vec.i64());
          break;
        case ColumnType::kFloat64:
          col.ReadFloats(col_row0, n, vec.f64());
          break;
        case ColumnType::kString:
          col.ReadStrings(col_row0, n, vec.str());
          break;
        case ColumnType::kNumeric:
          col.ReadNumerics(col_row0, n, vec.i64(), vec.scale());
          break;
      }
      if (ra.fallback_on_null && col.null_count() > 0) {
        // §3.4: a null lane may hide a type outlier in the binary JSON.
        size_t cnt = 0;
        for (size_t k = 0; k < sel_.count; k++) {
          const size_t r = sel_.idx[k];
          if (vec.IsNull(r)) lane_buf_[cnt++] = static_cast<uint16_t>(r);
        }
        if (cnt > 0) FillFromDocBatch(vec, i, access, lane_buf_, cnt, rel_row0);
      }
      return;
    }
    if (ra.route == ResolvedAccess::Route::kColumnCast) {
      const tiles::Column& col = ra.column->column;
      for (size_t k = 0; k < sel_.count; k++) {
        const size_t r = sel_.idx[k];
        if (col.IsNull(col_row0 + r)) {
          if (ra.fallback_on_null) {
            FillFromDoc(vec, access, r, rel_row0 + r);
          } else {
            vec.nulls()[r] = 1;
          }
          continue;
        }
        vec.SetValue(r, CastValue(ReadColumnValue(*ra.column, col_row0 + r),
                                  ra.requested, arena_));
      }
      return;
    }
    // Binary-JSON fallback: batched over the surviving selection.
    FillFromDocBatch(vec, i, access, sel_.idx, sel_.count, rel_row0);
  }

  const ScanSpec& spec_;
  // Current chunk's source relation + row-id offset (set per Run; sharded
  // scans feed chunks of different shards through one scanner instance).
  const Relation* rel_ = nullptr;
  int64_t rowid_base_ = 0;
  CompiledPredicate& pred_;
  Arena* arena_;
  const size_t num_slots_;
  std::vector<ColumnVector> slot_vecs_;
  std::vector<uint8_t> ready_;
  SelectionVector sel_;
  // Batched fallback state: per-access pre-decoded paths plus per-batch
  // document pointers / lane scratch (indexed by lane).
  std::vector<std::vector<json::PathStep>> steps_;
  std::vector<uint8_t> steps_ready_;
  const uint8_t* doc_ptrs_[kVectorSize];
  uint16_t lane_buf_[kVectorSize];
  size_t batches_ = 0;
  size_t rows_ = 0;
};

// Routing-key equality pruning: when the sharded relation was hash-routed
// on `path` and every routed value hashed as one kind (int or string), an
// equality predicate on that path can only match rows in the shard its
// constant hashes to. Returns the target shard, or -1 when no predicate
// pins one. Null/missing routing values were position-routed, but a SQL
// equality never matches NULL, so skipping their shards stays sound.
int64_t RoutingEqTarget(const storage::ShardedRelation& sharded,
                        const std::vector<RangePredicate>& range_predicates) {
  using storage::RoutingValueKind;
  const RoutingValueKind kind = sharded.routing_kind();
  if (kind != RoutingValueKind::kIntOnly &&
      kind != RoutingValueKind::kStringOnly) {
    return -1;
  }
  for (const RangePredicate& rp : range_predicates) {
    if (rp.op != BinOp::kEq || rp.path != sharded.routing_path()) continue;
    uint64_t hash;
    if (kind == RoutingValueKind::kIntOnly) {
      if (rp.constant.type == ValueType::kInt) {
        hash = storage::ShardKeyHashInt(rp.constant.i);
      } else if (rp.constant.type == ValueType::kFloat &&
                 std::floor(rp.constant.d) == rp.constant.d &&
                 rp.constant.d >= -9223372036854775808.0 &&
                 rp.constant.d < 9223372036854775808.0) {
        hash = storage::ShardKeyHashInt(static_cast<int64_t>(rp.constant.d));
      } else {
        continue;
      }
    } else {
      if (rp.constant.type != ValueType::kString) continue;
      hash = storage::ShardKeyHashString(rp.constant.s);
    }
    return static_cast<int64_t>(hash % sharded.shard_count());
  }
  return -1;
}

// Shard-level pruning (before any tile of the shard is considered): routing
// key (handled by the caller), shard bloom over null-rejecting paths, shard
// zone maps over range predicates.
bool ShardCanBeSkipped(const storage::ShardStats& stats, const ScanSpec& spec) {
  for (const std::string& path : spec.null_rejecting_paths) {
    if (path == kRowIdPath) continue;  // present in every row
    if (!stats.MayContainPath(path)) return true;
  }
  for (const RangePredicate& rp : spec.range_predicates) {
    const storage::ShardZoneEntry* zone = stats.FindZone(rp.path);
    if (zone == nullptr) continue;
    if (ZoneMapCanSkip(zone->storage_type, zone->min_i, zone->max_i,
                       zone->min_d, zone->max_d, rp)) {
      return true;
    }
  }
  return false;
}

}  // namespace

std::vector<size_t> SurvivingShards(const ScanSpec& spec,
                                    bool enable_pruning) {
  const storage::ShardedRelation& sharded = *spec.sharded;
  std::vector<size_t> out;
  out.reserve(sharded.shard_count());
  const int64_t eq_target =
      enable_pruning ? RoutingEqTarget(sharded, spec.range_predicates) : -1;
  for (size_t s = 0; s < sharded.shard_count(); s++) {
    if (enable_pruning &&
        ((eq_target >= 0 && static_cast<int64_t>(s) != eq_target) ||
         ShardCanBeSkipped(sharded.shard_stats(s), spec))) {
      continue;
    }
    out.push_back(s);
  }
  return out;
}

RowSet ScanExec(const ScanSpec& spec, QueryContext& ctx) {
  JSONTILES_TRACE_SPAN("exec.scan");
  // Distributed execution: when a runtime serves this sharded relation, the
  // scan becomes per-shard fragments on worker processes (base and side
  // scans alike). Workers run with ctx.dist unset, so their single-shard
  // scans take the local path below.
  if (ctx.dist != nullptr && spec.sharded != nullptr &&
      ctx.dist->Serves(spec.sharded)) {
    return ExchangeExec(spec, ctx);
  }
  const storage::ShardedRelation* sharded = spec.sharded;
  const bool sharded_base = sharded != nullptr && spec.sharded_side_path.empty();

  // Resolve the scan source into parts: the single relation, the surviving
  // shards, or a sharded table's per-shard side relations.
  std::vector<ScanPart> parts;
  size_t total_rows = 0;
  size_t pruned_shards = 0;
  StorageMode mode = StorageMode::kTiles;
  std::string source_name;
  if (sharded == nullptr) {
    const Relation& rel = *spec.relation;
    parts.push_back(ScanPart{&rel, spec.rowid_base});
    total_rows = rel.num_rows();
    mode = rel.mode();
    source_name = rel.name();
  } else if (!spec.sharded_side_path.empty()) {
    for (const auto& side : sharded->SideParts(spec.sharded_side_path)) {
      parts.push_back(ScanPart{side.relation, side.rowid_base});
      total_rows += side.relation->num_rows();
      mode = side.relation->mode();
    }
    source_name = sharded->name() + "$" +
                  tiles::PathToDisplayString(spec.sharded_side_path);
  } else {
    mode = sharded->mode();
    source_name = sharded->name();
    total_rows = sharded->num_rows();
    const std::vector<size_t> survivors =
        SurvivingShards(spec, ctx.options().enable_tile_skipping);
    pruned_shards = sharded->shard_count() - survivors.size();
    for (size_t s : survivors) {
      JSONTILES_TRACE_SPAN("exec.scan.shard");
      parts.push_back(ScanPart{&sharded->shard(s),
                               storage::ShardedRelation::RowIdBase(s)});
    }
  }

  obs::OperatorProfiler prof(ctx.profile, "Scan",
                             spec.table_alias.empty() ? source_name
                                                      : spec.table_alias);
  prof.set_rows_in(total_rows);
  const size_t arena_before = prof.active() ? ctx.arena_bytes() : 0;
  const size_t num_slots = spec.accesses.size();
  const bool tiled =
      mode == StorageMode::kTiles || mode == StorageMode::kSinew;

  std::vector<Chunk> chunks;
  for (const ScanPart& part : parts) {
    if (tiled) {
      for (const Tile& tile : part.rel->tiles()) {
        chunks.push_back(Chunk{part.rel, part.rowid_base, tile.row_begin,
                               tile.row_count, &tile});
      }
    } else {
      constexpr size_t kChunkRows = 4096;
      for (size_t begin = 0; begin < part.rel->num_rows();
           begin += kChunkRows) {
        chunks.push_back(
            Chunk{part.rel, part.rowid_base, begin,
                  std::min(kChunkRows, part.rel->num_rows() - begin), nullptr});
      }
    }
  }

  // Compile the pushed-down filter once per scan; per-worker copies of the
  // programs keep Run reentrant across threads. JSON-text mode stays scalar
  // (see VectorizedChunkScan). A filter none of whose conjuncts compiled
  // would gain nothing from batching, so it stays scalar too.
  const bool want_vectorized = ctx.options().enable_vectorized &&
                               mode != StorageMode::kJsonText;
  std::vector<CompiledPredicate> worker_preds;
  std::vector<std::unique_ptr<VectorizedChunkScan>> scanners(ctx.num_workers());
  bool vectorized = false;
  if (want_vectorized) {
    std::vector<ValueType> slot_types(num_slots);
    for (size_t i = 0; i < num_slots; i++) {
      slot_types[i] = spec.accesses[i]->access_type;
    }
    CompiledPredicate pred = CompiledPredicate::Compile(spec.filter, slot_types);
    vectorized = spec.filter == nullptr || pred.any_compiled();
    if (vectorized) worker_preds.assign(ctx.num_workers(), pred);
  }

  std::vector<RowSet> partials(chunks.size());
  std::atomic<size_t> skipped{0};

  auto scan_chunk = [&](size_t c, size_t worker) {
    JSONTILES_TRACE_SPAN("exec.scan.chunk");
    const Chunk& chunk = chunks[c];
    Arena* arena = ctx.arena(worker);
    RowSet& out = partials[c];

    // §4.8 tile skipping: path existence, then zone maps.
    if (chunk.tile != nullptr && ctx.options().enable_tile_skipping) {
      for (const std::string& path : spec.null_rejecting_paths) {
        if (path == kRowIdPath) continue;  // present in every row
        if (!chunk.tile->MayContainPath(path)) {
          skipped.fetch_add(1);
          return;
        }
      }
      for (const RangePredicate& rp : spec.range_predicates) {
        if (CanSkipByZoneMap(*chunk.tile, rp)) {
          skipped.fetch_add(1);
          return;
        }
      }
    }

    // §4.5: resolve each access once per tile.
    std::vector<ResolvedAccess> resolved(num_slots);
    if (chunk.tile != nullptr) {
      for (size_t i = 0; i < num_slots; i++) {
        resolved[i] = ResolveAccess(*chunk.tile, *spec.accesses[i]);
      }
    } else {
      for (size_t i = 0; i < num_slots; i++) {
        resolved[i].requested = spec.accesses[i]->access_type;
      }
    }

    if (vectorized) {
      auto& scanner = scanners[worker];
      if (scanner == nullptr) {
        scanner = std::make_unique<VectorizedChunkScan>(
            spec, worker_preds[worker], ctx.arena(worker));
      }
      scanner->Run(chunk, resolved, &out);
      return;
    }

    const Relation& rel = *chunk.rel;
    json::JsonbBuilder text_builder;  // JSON-text mode: re-parse per document
    std::vector<uint8_t> text_buf;
    std::vector<Value> slots(num_slots);

    for (size_t r = 0; r < chunk.row_count; r++) {
      const size_t row = chunk.row_begin + r;  // local to the part relation
      const int64_t row_id = chunk.rowid_base + static_cast<int64_t>(row);
      // Lazily materialized document for fallback routes.
      const uint8_t* doc_bytes = nullptr;
      bool doc_failed = false;
      auto get_doc = [&]() -> const uint8_t* {
        if (doc_bytes != nullptr || doc_failed) return doc_bytes;
        if (rel.mode() == StorageMode::kJsonText) {
          if (!text_builder.Transform(rel.JsonText(row), &text_buf).ok()) {
            doc_failed = true;
            return nullptr;
          }
          doc_bytes = text_buf.data();
        } else {
          doc_bytes = rel.Jsonb(row).data();
        }
        return doc_bytes;
      };
      const bool copy_strings = rel.mode() == StorageMode::kJsonText;

      for (size_t i = 0; i < num_slots; i++) {
        const ResolvedAccess& ra = resolved[i];
        const Expr& access = *spec.accesses[i];
        if (access.kind == ExprKind::kAccess && access.path == kRowIdPath) {
          slots[i] = Value::Int(row_id);
          continue;
        }
        if (ra.route == ResolvedAccess::Route::kFallback) {
          const uint8_t* doc = get_doc();
          slots[i] = doc == nullptr
                         ? Value::Null()
                         : EvalScanExprOnJsonb(access, json::JsonbValue(doc),
                                               row_id, arena, copy_strings);
          continue;
        }
        const ExtractedColumn& col = *ra.column;
        if (col.column.IsNull(r)) {
          if (ra.fallback_on_null) {
            const uint8_t* doc = get_doc();
            slots[i] = doc == nullptr
                           ? Value::Null()
                           : EvalScanExprOnJsonb(access, json::JsonbValue(doc),
                                                 row_id, arena, copy_strings);
          } else {
            slots[i] = Value::Null();
          }
          continue;
        }
        Value v = ReadColumnValue(col, r);
        slots[i] = ra.route == ResolvedAccess::Route::kColumn
                       ? v
                       : CastValue(v, ra.requested, arena);
      }

      if (spec.filter != nullptr) {
        Value keep = EvalExpr(*spec.filter, slots.data(), arena);
        if (keep.is_null() || !keep.bool_value()) continue;
      }
      out.push_back(slots);
    }
  };

  // Morsels are fallible (fault injection; future I/O): a failing chunk's
  // Status cancels the query, the other workers stop claiming morsels, and
  // the scan returns empty — the SQL boundary surfaces the recorded error.
  auto scan_morsel = [&](size_t c, size_t w) -> Status {
    JSONTILES_FAILPOINT_RETURN("exec.scan.chunk");
    if (ctx.cancelled()) return Status::OK();
    scan_chunk(c, w);
    return Status::OK();
  };
  Status scan_status;
  if (ctx.pool() != nullptr && chunks.size() > 1) {
    scan_status = ctx.pool()->ParallelForStatus(chunks.size(), scan_morsel);
  } else {
    for (size_t c = 0; c < chunks.size() && scan_status.ok(); c++) {
      scan_status = scan_morsel(c, 0);
    }
  }
  if (!scan_status.ok()) {
    ctx.Cancel(std::move(scan_status));
    return {};
  }

  ctx.tiles_skipped += skipped.load();
  ctx.tiles_scanned += chunks.size();
  JSONTILES_COUNTER_ADD("scan.tiles_scanned",
                        static_cast<int64_t>(chunks.size()));
  JSONTILES_COUNTER_ADD("scan.tiles_skipped",
                        static_cast<int64_t>(skipped.load()));
  if (sharded_base) {
    ctx.shards_scanned += parts.size();
    ctx.shards_pruned += pruned_shards;
    JSONTILES_COUNTER_ADD("scan.shards_scanned",
                          static_cast<int64_t>(parts.size()));
    JSONTILES_COUNTER_ADD("scan.shards_pruned",
                          static_cast<int64_t>(pruned_shards));
  }

  // Merge in chunk order (deterministic results).
  size_t total = 0;
  for (const auto& p : partials) total += p.size();
  RowSet out;
  out.reserve(total);
  for (auto& p : partials) {
    for (auto& row : p) out.push_back(std::move(row));
  }
  prof.set_rows_out(out.size());
  if (prof.active()) {
    prof.AddCounter("arena_bytes",
                    static_cast<int64_t>(ctx.arena_bytes() - arena_before));
  }
  prof.AddCounter("tiles", static_cast<int64_t>(chunks.size()));
  prof.AddCounter("tiles_skipped", static_cast<int64_t>(skipped.load()));
  if (sharded_base) {
    prof.AddCounter("shards", static_cast<int64_t>(parts.size()));
    prof.AddCounter("shards_pruned", static_cast<int64_t>(pruned_shards));
  }
  if (vectorized) {
    size_t batches = 0, batch_rows = 0;
    for (const auto& s : scanners) {
      if (s == nullptr) continue;
      batches += s->batches();
      batch_rows += s->rows();
    }
    prof.AddCounter("vec_batches", static_cast<int64_t>(batches));
    prof.AddCounter("vec_rows", static_cast<int64_t>(batch_rows));
    JSONTILES_COUNTER_ADD("exec.vec.batches", static_cast<int64_t>(batches));
    JSONTILES_COUNTER_ADD("exec.vec.rows", static_cast<int64_t>(batch_rows));
  }
  return out;
}

}  // namespace jsontiles::exec
