// Expression trees of the query engine.
//
// JSON accesses follow PostgreSQL semantics (§4.1): `data->>'key'::T` is
// modeled as an Access node carrying the key path and the requested SQL type.
// The planner pushes Access nodes down into the table scan (§4.2) and the
// requested type replaces the naive text detour (§4.3 cast rewriting): the
// scan either reads a materialized tile column of a compatible type or falls
// back to the binary JSON document. Above the scan, expressions reference
// scan outputs through slot indices (the paper's placeholders).

#ifndef JSONTILES_EXEC_EXPRESSION_H_
#define JSONTILES_EXEC_EXPRESSION_H_

#include <functional>
#include <initializer_list>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "exec/value.h"
#include "util/arena.h"

namespace jsontiles::exec {

enum class ExprKind : uint8_t {
  kConst,
  kSlotRef,        // output slot of the child operator
  kAccess,         // typed JSON access (scan level only)
  kArrayContains,  // scan-level: does an array at `path` contain a value?
  kBinary,
  kUnary,
  kLike,
  kIn,
  kCase,         // args: [cond1, val1, cond2, val2, ..., else]
  kSubstring,    // args: [str]; 1-based start/len payload
  kExtractYear,  // args: [timestamp]
  kCastTo,       // args: [value]; runtime cast to access_type
};

enum class BinOp : uint8_t {
  kAdd, kSub, kMul, kDiv, kMod,
  kEq, kNe, kLt, kLe, kGt, kGe,
  kAnd, kOr,
};

enum class UnOp : uint8_t { kNot, kNeg, kIsNull, kIsNotNull };

struct Expr;
using ExprPtr = std::shared_ptr<const Expr>;

/// A LIKE pattern compiled once per query instead of being re-scanned per
/// row: exact / prefix / suffix / contains patterns get dedicated fast paths,
/// everything else falls back to the generic %/_ matcher. Shared by the
/// tuple-at-a-time interpreter and the vectorized kernels.
class CompiledLike {
 public:
  explicit CompiledLike(std::string pattern);
  bool Match(std::string_view s) const;
  const std::string& pattern() const { return pattern_; }

 private:
  enum class Kind : uint8_t {
    kExact,     // no wildcards
    kPrefix,    // abc%
    kSuffix,    // %abc
    kContains,  // %abc%
    kMatchAll,  // %, %%, ...
    kGeneric,   // anything with '_' or interior '%'
  };
  std::string_view needle() const {
    return std::string_view(pattern_).substr(needle_pos_, needle_len_);
  }

  std::string pattern_;
  Kind kind_ = Kind::kGeneric;
  size_t needle_pos_ = 0;
  size_t needle_len_ = 0;
};

struct Expr {
  ExprKind kind = ExprKind::kConst;
  BinOp bin_op = BinOp::kAdd;
  UnOp un_op = UnOp::kNot;

  // kConst
  Value constant;
  std::string const_storage;  // backing for string constants

  // kAccess
  std::string table;        // logical table alias the access binds to
  std::string path;         // encoded key path
  ValueType access_type = ValueType::kString;  // requested cast type

  // kSlotRef
  int slot = -1;

  // kLike
  std::string pattern;
  bool negated = false;
  std::shared_ptr<const CompiledLike> like;  // set by the Like() factory

  // kIn
  std::vector<Value> in_list;
  std::vector<std::string> in_storage;

  // kSubstring
  int substr_start = 1;  // 1-based
  int substr_len = 0;

  std::vector<ExprPtr> args;
};

// --- factory helpers (the query-building DSL) ------------------------------

ExprPtr ConstInt(int64_t v);
ExprPtr ConstFloat(double v);
ExprPtr ConstBool(bool v);
ExprPtr ConstString(std::string v);
/// Date/timestamp literal from "YYYY-MM-DD[...]" text.
ExprPtr ConstDate(std::string_view text);
ExprPtr ConstNull();

/// Typed JSON access `table.data->>path::type`. `keys` are object keys of
/// the path (no array steps; use AccessPath for those).
ExprPtr Access(std::string table, std::initializer_list<std::string_view> keys,
               ValueType type);
/// Access with a pre-encoded key path.
ExprPtr AccessPath(std::string table, std::string encoded_path, ValueType type);

/// Scan-level predicate: true when the array at `keys` contains an element
/// whose member `element_key` equals `value` (or, with an empty element_key,
/// an element equal to `value`). Arrays of varying cardinality are not fully
/// materialized by tiles (§3.5), so this always evaluates against the binary
/// JSON — unless the query is rewritten to join an extracted array side
/// relation (Tiles-*).
ExprPtr ArrayContains(std::string table,
                      std::initializer_list<std::string_view> keys,
                      std::string element_key, std::string value);

/// Virtual access to the row id of a base-table scan (used to join array
/// side relations back to their parent documents).
ExprPtr RowId(std::string table);
/// The sentinel path RowId uses.
inline constexpr std::string_view kRowIdPath = "\x01#rowid";

ExprPtr Slot(int index);

ExprPtr Binary(BinOp op, ExprPtr l, ExprPtr r);
inline ExprPtr Add(ExprPtr l, ExprPtr r) { return Binary(BinOp::kAdd, l, r); }
inline ExprPtr Sub(ExprPtr l, ExprPtr r) { return Binary(BinOp::kSub, l, r); }
inline ExprPtr Mul(ExprPtr l, ExprPtr r) { return Binary(BinOp::kMul, l, r); }
inline ExprPtr Div(ExprPtr l, ExprPtr r) { return Binary(BinOp::kDiv, l, r); }
inline ExprPtr Mod(ExprPtr l, ExprPtr r) { return Binary(BinOp::kMod, l, r); }
inline ExprPtr Eq(ExprPtr l, ExprPtr r) { return Binary(BinOp::kEq, l, r); }
inline ExprPtr Ne(ExprPtr l, ExprPtr r) { return Binary(BinOp::kNe, l, r); }
inline ExprPtr Lt(ExprPtr l, ExprPtr r) { return Binary(BinOp::kLt, l, r); }
inline ExprPtr Le(ExprPtr l, ExprPtr r) { return Binary(BinOp::kLe, l, r); }
inline ExprPtr Gt(ExprPtr l, ExprPtr r) { return Binary(BinOp::kGt, l, r); }
inline ExprPtr Ge(ExprPtr l, ExprPtr r) { return Binary(BinOp::kGe, l, r); }
ExprPtr And(ExprPtr l, ExprPtr r);
ExprPtr And(std::vector<ExprPtr> conjuncts);
inline ExprPtr Or(ExprPtr l, ExprPtr r) { return Binary(BinOp::kOr, l, r); }

ExprPtr Unary(UnOp op, ExprPtr arg);
inline ExprPtr Not(ExprPtr e) { return Unary(UnOp::kNot, e); }
inline ExprPtr Neg(ExprPtr e) { return Unary(UnOp::kNeg, e); }
inline ExprPtr IsNull(ExprPtr e) { return Unary(UnOp::kIsNull, e); }
inline ExprPtr IsNotNull(ExprPtr e) { return Unary(UnOp::kIsNotNull, e); }

ExprPtr Like(ExprPtr str, std::string pattern, bool negated = false);
ExprPtr InList(ExprPtr e, std::vector<std::string> strings);
ExprPtr InListInt(ExprPtr e, std::vector<int64_t> ints);
ExprPtr Between(ExprPtr e, ExprPtr lo, ExprPtr hi);  // inclusive
ExprPtr Case(std::vector<ExprPtr> operands);
ExprPtr Substring(ExprPtr str, int start_1based, int len);
ExprPtr Year(ExprPtr ts);
/// Runtime cast (SQL semantics; Access nodes carry their cast natively —
/// this is for casting computed values, e.g. `(a + b)::text`).
ExprPtr CastTo(ExprPtr e, ValueType type);

// --- evaluation -------------------------------------------------------------

/// Evaluate an expression over an intermediate row. kAccess nodes must have
/// been rewritten to slots by the planner. `arena` backs derived strings.
Value EvalExpr(const Expr& e, const Value* slots, Arena* arena);

/// Cast a value to a requested type (SQL semantics: unparsable -> null).
Value CastValue(const Value& v, ValueType to, Arena* arena);

/// SQL LIKE with % and _.
bool LikeMatch(std::string_view s, std::string_view pattern);

// --- planner helpers ---------------------------------------------------------

/// True when two scan-level access nodes denote the same computation.
bool SameAccess(const Expr& a, const Expr& b);

/// Deep structural equality of expression trees (used by the SQL binder to
/// match select items against GROUP BY expressions).
bool ExprEquals(const Expr& a, const Expr& b);

/// Walk `e` and append every distinct access-like node (kAccess /
/// kArrayContains).
void CollectAccesses(const ExprPtr& e, std::vector<ExprPtr>* accesses);

/// Rewrite Access nodes to slot references; `slot_of(access)` returns the
/// assigned slot. Returns a new tree (shared subtrees without accesses are
/// reused).
ExprPtr RewriteAccessesToSlots(
    const ExprPtr& e,
    const std::function<int(const Expr& access)>& slot_of);

/// Paths of `table` whose null would make the (filter) expression reject the
/// row — usable for tile skipping (§4.8). Conservative: only paths under
/// comparisons / LIKE / IN / IS NOT NULL in a top-level conjunction.
void CollectNullRejectingPaths(const ExprPtr& filter, const std::string& table,
                               std::vector<std::string>* paths);

/// A top-level conjunct of the form `access OP constant` over a numeric or
/// timestamp access — the inputs of zone-map tile skipping.
struct RangePredicate {
  std::string path;
  ValueType access_type;  // requested cast of the access
  BinOp op;               // kLt/kLe/kGt/kGe/kEq with the access on the left
  Value constant;
};

/// Extract range predicates of `table` from a top-level conjunction.
void CollectRangePredicates(const ExprPtr& filter, const std::string& table,
                            std::vector<RangePredicate>* out);

}  // namespace jsontiles::exec

#endif  // JSONTILES_EXEC_EXPRESSION_H_
