// Tier selection and dispatch for the SIMD layer (see simd.h).
//
// Three tiers share one source of truth: the scalar reference below defines
// the semantics, simd_kernels.inl provides the vector implementation (included
// once per tier), and a per-process function table picks the widest tier the
// CPU supports. The AVX2 tier uses function multi-versioning
// (__attribute__((target("avx2")))) so no special compile flags are needed
// and the binary stays runnable on pre-AVX2 machines.

#include "exec/simd.h"

#include <atomic>
#include <cstring>

#include "util/hash.h"

#if defined(JSONTILES_SIMD_ENABLED) && \
    (defined(__x86_64__) || defined(__aarch64__)) && \
    (defined(__GNUC__) || defined(__clang__))
#define JT_SIMD_HAVE_VEC 1
#else
#define JT_SIMD_HAVE_VEC 0
#endif

namespace jsontiles::exec::simd {

namespace {

// --------------------------------------------------------------------------
// Scalar reference tier - defines the exact semantics of every entry point.
// The vector tiers' scalar tails call these helpers so tails match by
// construction.
// --------------------------------------------------------------------------

inline int64_t ApplyCmpOrder(BinOp op, int cmp) {
  switch (op) {
    case BinOp::kEq: return cmp == 0;
    case BinOp::kNe: return cmp != 0;
    case BinOp::kLt: return cmp < 0;
    case BinOp::kLe: return cmp <= 0;
    case BinOp::kGt: return cmp > 0;
    default: return cmp >= 0;  // kGe
  }
}

inline int64_t CmpScalarF(BinOp op, double x, double y) {
  return ApplyCmpOrder(op, x < y ? -1 : x > y ? 1 : 0);
}

inline int64_t CmpScalarI(BinOp op, int64_t x, int64_t y) {
  return ApplyCmpOrder(op, x < y ? -1 : x > y ? 1 : 0);
}

namespace scalar {

void OrBytesImpl(const uint8_t* a, const uint8_t* b, uint8_t* out, size_t n) {
  for (size_t k = 0; k < n; ++k) out[k] = a[k] | b[k];
}

void CompareI64ViaDoubleImpl(BinOp op, const int64_t* a, const int64_t* b,
                             const uint8_t* an, const uint8_t* bn,
                             int64_t* out, uint8_t* onull, size_t n) {
  for (size_t k = 0; k < n; ++k) {
    onull[k] = an[k] | bn[k];
    out[k] = CmpScalarF(op, static_cast<double>(a[k]),
                        static_cast<double>(b[k]));
  }
}

void CompareF64Impl(BinOp op, const double* a, const double* b,
                    const uint8_t* an, const uint8_t* bn, int64_t* out,
                    uint8_t* onull, size_t n) {
  for (size_t k = 0; k < n; ++k) {
    onull[k] = an[k] | bn[k];
    out[k] = CmpScalarF(op, a[k], b[k]);
  }
}

void CompareI64F64Impl(BinOp op, const int64_t* a, const double* b,
                       const uint8_t* an, const uint8_t* bn, int64_t* out,
                       uint8_t* onull, size_t n) {
  for (size_t k = 0; k < n; ++k) {
    onull[k] = an[k] | bn[k];
    out[k] = CmpScalarF(op, static_cast<double>(a[k]), b[k]);
  }
}

void CompareF64I64Impl(BinOp op, const double* a, const int64_t* b,
                       const uint8_t* an, const uint8_t* bn, int64_t* out,
                       uint8_t* onull, size_t n) {
  for (size_t k = 0; k < n; ++k) {
    onull[k] = an[k] | bn[k];
    out[k] = CmpScalarF(op, a[k], static_cast<double>(b[k]));
  }
}

void CompareI64RawImpl(BinOp op, const int64_t* a, const int64_t* b,
                       const uint8_t* an, const uint8_t* bn, int64_t* out,
                       uint8_t* onull, size_t n) {
  for (size_t k = 0; k < n; ++k) {
    onull[k] = an[k] | bn[k];
    out[k] = CmpScalarI(op, a[k], b[k]);
  }
}

void ArithI64Impl(BinOp op, const int64_t* a, const int64_t* b,
                  const uint8_t* an, const uint8_t* bn, int64_t* out,
                  uint8_t* onull, size_t n) {
  for (size_t k = 0; k < n; ++k) {
    onull[k] = an[k] | bn[k];
    out[k] = op == BinOp::kAdd   ? a[k] + b[k]
             : op == BinOp::kSub ? a[k] - b[k]
                                 : a[k] * b[k];
  }
}

void ArithF64Impl(BinOp op, const double* a, const double* b,
                  const uint8_t* an, const uint8_t* bn, double* out,
                  uint8_t* onull, size_t n) {
  for (size_t k = 0; k < n; ++k) {
    onull[k] = an[k] | bn[k];
    if (op == BinOp::kDiv && b[k] == 0.0) {
      onull[k] = 1;
      continue;
    }
    out[k] = op == BinOp::kAdd   ? a[k] + b[k]
             : op == BinOp::kSub ? a[k] - b[k]
             : op == BinOp::kMul ? a[k] * b[k]
                                 : a[k] / b[k];
  }
}

void I64ToF64Impl(const int64_t* in, double* out, size_t n) {
  for (size_t k = 0; k < n; ++k) out[k] = static_cast<double>(in[k]);
}

void And3VLImpl(const int64_t* a, const int64_t* b, const uint8_t* an,
                const uint8_t* bn, int64_t* out, uint8_t* onull, size_t n) {
  for (size_t k = 0; k < n; ++k) {
    int x = an[k] ? 2 : (a[k] != 0 ? 1 : 0);
    int y = bn[k] ? 2 : (b[k] != 0 ? 1 : 0);
    if (x == 0 || y == 0) {
      onull[k] = 0;
      out[k] = 0;
    } else if (x == 2 || y == 2) {
      onull[k] = 1;
    } else {
      onull[k] = 0;
      out[k] = 1;
    }
  }
}

void Or3VLImpl(const int64_t* a, const int64_t* b, const uint8_t* an,
               const uint8_t* bn, int64_t* out, uint8_t* onull, size_t n) {
  for (size_t k = 0; k < n; ++k) {
    int x = an[k] ? 2 : (a[k] != 0 ? 1 : 0);
    int y = bn[k] ? 2 : (b[k] != 0 ? 1 : 0);
    if (x == 1 || y == 1) {
      onull[k] = 0;
      out[k] = 1;
    } else if (x == 2 || y == 2) {
      onull[k] = 1;
    } else {
      onull[k] = 0;
      out[k] = 0;
    }
  }
}

void BoolPassBytesImpl(const int64_t* vals, const uint8_t* nulls,
                       uint8_t* pass, size_t n) {
  for (size_t k = 0; k < n; ++k) {
    pass[k] = static_cast<uint8_t>(nulls[k] == 0 && vals[k] != 0);
  }
}

void HashI64Impl(const int64_t* v, const uint8_t* nulls, uint64_t null_hash,
                 uint64_t* out, size_t n) {
  for (size_t k = 0; k < n; ++k) {
    out[k] = nulls[k] ? null_hash : HashInt(static_cast<uint64_t>(v[k]));
  }
}

void HashCombineImpl(uint64_t* acc, const uint64_t* h, size_t n) {
  for (size_t k = 0; k < n; ++k) acc[k] = HashCombine(acc[k], h[k]);
}

}  // namespace scalar

// --------------------------------------------------------------------------
// Vector tiers
// --------------------------------------------------------------------------

#if JT_SIMD_HAVE_VEC

namespace v128 {
#define JT_SIMD_ATTR
#define JT_SIMD_WIDTH 16
#include "exec/simd_kernels.inl"
#undef JT_SIMD_ATTR
#undef JT_SIMD_WIDTH
}  // namespace v128

#if defined(__x86_64__)
namespace v256 {
#define JT_SIMD_ATTR __attribute__((target("avx2")))
#define JT_SIMD_WIDTH 32
#include "exec/simd_kernels.inl"
#undef JT_SIMD_ATTR
#undef JT_SIMD_WIDTH
}  // namespace v256
#endif  // __x86_64__

#endif  // JT_SIMD_HAVE_VEC

// --------------------------------------------------------------------------
// Dispatch
// --------------------------------------------------------------------------

struct Ops {
  const char* isa;
  void (*or_bytes)(const uint8_t*, const uint8_t*, uint8_t*, size_t);
  void (*cmp_i64_dbl)(BinOp, const int64_t*, const int64_t*, const uint8_t*,
                      const uint8_t*, int64_t*, uint8_t*, size_t);
  void (*cmp_f64)(BinOp, const double*, const double*, const uint8_t*,
                  const uint8_t*, int64_t*, uint8_t*, size_t);
  void (*cmp_i64_f64)(BinOp, const int64_t*, const double*, const uint8_t*,
                      const uint8_t*, int64_t*, uint8_t*, size_t);
  void (*cmp_f64_i64)(BinOp, const double*, const int64_t*, const uint8_t*,
                      const uint8_t*, int64_t*, uint8_t*, size_t);
  void (*cmp_i64_raw)(BinOp, const int64_t*, const int64_t*, const uint8_t*,
                      const uint8_t*, int64_t*, uint8_t*, size_t);
  void (*arith_i64)(BinOp, const int64_t*, const int64_t*, const uint8_t*,
                    const uint8_t*, int64_t*, uint8_t*, size_t);
  void (*arith_f64)(BinOp, const double*, const double*, const uint8_t*,
                    const uint8_t*, double*, uint8_t*, size_t);
  void (*i64_to_f64)(const int64_t*, double*, size_t);
  void (*and_3vl)(const int64_t*, const int64_t*, const uint8_t*,
                  const uint8_t*, int64_t*, uint8_t*, size_t);
  void (*or_3vl)(const int64_t*, const int64_t*, const uint8_t*,
                 const uint8_t*, int64_t*, uint8_t*, size_t);
  void (*bool_pass)(const int64_t*, const uint8_t*, uint8_t*, size_t);
  void (*hash_i64)(const int64_t*, const uint8_t*, uint64_t, uint64_t*,
                   size_t);
  void (*hash_combine)(uint64_t*, const uint64_t*, size_t);
};

#define JT_SIMD_OPS(ns, name)                                               \
  {                                                                         \
    name, &ns::OrBytesImpl, &ns::CompareI64ViaDoubleImpl,                   \
        &ns::CompareF64Impl, &ns::CompareI64F64Impl, &ns::CompareF64I64Impl,\
        &ns::CompareI64RawImpl, &ns::ArithI64Impl, &ns::ArithF64Impl,       \
        &ns::I64ToF64Impl, &ns::And3VLImpl, &ns::Or3VLImpl,                 \
        &ns::BoolPassBytesImpl, &ns::HashI64Impl, &ns::HashCombineImpl      \
  }

const Ops kScalarOps = JT_SIMD_OPS(scalar, "scalar");
#if JT_SIMD_HAVE_VEC
const Ops kV128Ops = JT_SIMD_OPS(v128, "vec128");
#if defined(__x86_64__)
const Ops kV256Ops = JT_SIMD_OPS(v256, "avx2");
#endif
#endif
#undef JT_SIMD_OPS

const Ops* PickVectorOps() {
#if JT_SIMD_HAVE_VEC
#if defined(__x86_64__)
  if (__builtin_cpu_supports("avx2")) return &kV256Ops;
#endif
  return &kV128Ops;
#else
  return &kScalarOps;
#endif
}

const Ops& VecOps() {
  static const Ops* ops = PickVectorOps();
  return *ops;
}

std::atomic<bool> g_enabled{true};

inline const Ops& Active() {
  return g_enabled.load(std::memory_order_relaxed) ? VecOps() : kScalarOps;
}

}  // namespace

const char* ActiveIsa() { return Active().isa; }

void SetEnabled(bool on) {
  g_enabled.store(on, std::memory_order_relaxed);
}

bool Enabled() { return g_enabled.load(std::memory_order_relaxed); }

bool CompiledIn() { return JT_SIMD_HAVE_VEC != 0; }

void OrBytes(const uint8_t* a, const uint8_t* b, uint8_t* out, size_t n) {
  Active().or_bytes(a, b, out, n);
}

void CompareI64ViaDouble(BinOp op, const int64_t* a, const int64_t* b,
                         const uint8_t* an, const uint8_t* bn, int64_t* out,
                         uint8_t* onull, size_t n) {
  Active().cmp_i64_dbl(op, a, b, an, bn, out, onull, n);
}

void CompareF64(BinOp op, const double* a, const double* b, const uint8_t* an,
                const uint8_t* bn, int64_t* out, uint8_t* onull, size_t n) {
  Active().cmp_f64(op, a, b, an, bn, out, onull, n);
}

void CompareI64F64(BinOp op, const int64_t* a, const double* b,
                   const uint8_t* an, const uint8_t* bn, int64_t* out,
                   uint8_t* onull, size_t n) {
  Active().cmp_i64_f64(op, a, b, an, bn, out, onull, n);
}

void CompareF64I64(BinOp op, const double* a, const int64_t* b,
                   const uint8_t* an, const uint8_t* bn, int64_t* out,
                   uint8_t* onull, size_t n) {
  Active().cmp_f64_i64(op, a, b, an, bn, out, onull, n);
}

void CompareI64Raw(BinOp op, const int64_t* a, const int64_t* b,
                   const uint8_t* an, const uint8_t* bn, int64_t* out,
                   uint8_t* onull, size_t n) {
  Active().cmp_i64_raw(op, a, b, an, bn, out, onull, n);
}

void ArithI64(BinOp op, const int64_t* a, const int64_t* b, const uint8_t* an,
              const uint8_t* bn, int64_t* out, uint8_t* onull, size_t n) {
  Active().arith_i64(op, a, b, an, bn, out, onull, n);
}

void ArithF64(BinOp op, const double* a, const double* b, const uint8_t* an,
              const uint8_t* bn, double* out, uint8_t* onull, size_t n) {
  Active().arith_f64(op, a, b, an, bn, out, onull, n);
}

void I64ToF64(const int64_t* in, double* out, size_t n) {
  Active().i64_to_f64(in, out, n);
}

void And3VL(const int64_t* a, const int64_t* b, const uint8_t* an,
            const uint8_t* bn, int64_t* out, uint8_t* onull, size_t n) {
  Active().and_3vl(a, b, an, bn, out, onull, n);
}

void Or3VL(const int64_t* a, const int64_t* b, const uint8_t* an,
           const uint8_t* bn, int64_t* out, uint8_t* onull, size_t n) {
  Active().or_3vl(a, b, an, bn, out, onull, n);
}

void BoolPassBytes(const int64_t* vals, const uint8_t* nulls, uint8_t* pass,
                   size_t n) {
  Active().bool_pass(vals, nulls, pass, n);
}

size_t CompactPassIndices(const uint8_t* pass, size_t n, uint16_t* idx) {
  // Word-at-a-time on the 0/1 bytes: a zero word (8 lanes rejected) costs a
  // single load+test, and each survivor is recovered with ctz. Shared by all
  // tiers - the work is control flow, not data parallelism.
  size_t cnt = 0;
  size_t k = 0;
  for (; k + 8 <= n; k += 8) {
    uint64_t w;
    std::memcpy(&w, pass + k, sizeof w);
    while (w != 0) {
      const int bit = __builtin_ctzll(w);
      idx[cnt++] = static_cast<uint16_t>(k + (bit >> 3));
      w &= w - 1;
    }
  }
  for (; k < n; ++k) {
    if (pass[k]) idx[cnt++] = static_cast<uint16_t>(k);
  }
  return cnt;
}

void HashI64Batch(const int64_t* v, const uint8_t* nulls, uint64_t null_hash,
                  uint64_t* out, size_t n) {
  Active().hash_i64(v, nulls, null_hash, out, n);
}

void HashCombineBatch(uint64_t* acc, const uint64_t* h, size_t n) {
  Active().hash_combine(acc, h, n);
}

}  // namespace jsontiles::exec::simd
