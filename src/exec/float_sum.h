// Exact order-independent floating-point summation (Shewchuk's growing
// partials, with the same final rounding as CPython's math.fsum).
//
// SUM/AVG accumulate rows in whatever order the scan's chunk merge and the
// aggregation's partial merge deliver them. Unsharded, sharded, spilled and
// multi-threaded plans all deliver different orders — plain `double +=`
// rounds differently for each, breaking the bit-identity guarantee
// (DESIGN.md §10). The partials hold the *exact* running sum, so the final
// correctly-rounded double depends only on the multiset of inputs.
//
// Non-finite inputs accumulate in a separate commutative bucket (inf + -inf
// = NaN in any order). One caveat: when the exact sum of finite inputs
// transiently exceeds the double range, the overflow point — and thus the
// result — is order-dependent; plain summation has the same flaw, and no
// finite-state scheme avoids it.

#ifndef JSONTILES_EXEC_FLOAT_SUM_H_
#define JSONTILES_EXEC_FLOAT_SUM_H_

#include <cmath>
#include <cstdlib>
#include <vector>

namespace jsontiles::exec {

class ExactFloatSum {
 public:
  void Add(double x) {
    if (!std::isfinite(x)) {
      special_ += x;
      has_special_ = true;
      return;
    }
    // Fold x through the partials, keeping each round-off error exactly:
    // afterwards the partials are non-overlapping and sum to the old value
    // plus x, with partials_[i] strictly smaller in magnitude than
    // partials_[i+1]'s ulp.
    size_t kept = 0;
    for (size_t j = 0; j < partials_.size(); j++) {
      double y = partials_[j];
      if (std::abs(x) < std::abs(y)) std::swap(x, y);
      double hi = x + y;
      double lo = y - (hi - x);
      if (lo != 0.0) partials_[kept++] = lo;
      x = hi;
    }
    partials_.resize(kept);
    if (x != 0.0) {
      if (!std::isfinite(x)) {
        // The exact sum left the double range; degrade to the sticky bucket
        // (see the header comment for the order-dependence caveat).
        special_ += x;
        has_special_ = true;
        partials_.clear();
      } else {
        partials_.push_back(x);
      }
    }
  }

  void Merge(const ExactFloatSum& other) {
    if (other.has_special_) {
      special_ += other.special_;
      has_special_ = true;
    }
    for (double p : other.partials_) Add(p);
  }

  /// The correctly-rounded value of the exact sum (math.fsum rounding: the
  /// top partial, adjusted by half an ulp when the tail says the rounding
  /// went the wrong way).
  double Round() const {
    if (has_special_) return special_;
    if (partials_.empty()) return 0.0;
    size_t n = partials_.size();
    double hi = partials_[--n];
    double lo = 0.0;
    while (n > 0) {
      double x = hi;
      double y = partials_[--n];
      hi = x + y;
      lo = y - (hi - x);
      if (lo != 0.0) break;
    }
    if (n > 0 && ((lo < 0.0 && partials_[n - 1] < 0.0) ||
                  (lo > 0.0 && partials_[n - 1] > 0.0))) {
      double y = lo * 2.0;
      double x = hi + y;
      if (y == x - hi) hi = x;
    }
    return hi;
  }

  bool empty() const { return partials_.empty() && !has_special_; }

  /// Wire access (exec/agg_state.h serializes accumulators for the
  /// distributed partial-aggregate push-down): the exact internal state, so a
  /// restored sum merges bit-identically to the original.
  const std::vector<double>& partials() const { return partials_; }
  double special() const { return special_; }
  bool has_special() const { return has_special_; }

  /// Rebuild from serialized state. The partials are installed verbatim (not
  /// re-folded): Merge/Add re-establish the non-overlapping invariant
  /// incrementally, and Round only needs the multiset to be exact.
  static ExactFloatSum Restore(std::vector<double> partials, double special,
                               bool has_special) {
    ExactFloatSum s;
    s.partials_ = std::move(partials);
    s.special_ = special;
    s.has_special_ = has_special;
    return s;
  }

 private:
  std::vector<double> partials_;
  double special_ = 0.0;  // sum of non-finite inputs (commutative)
  bool has_special_ = false;
};

}  // namespace jsontiles::exec

#endif  // JSONTILES_EXEC_FLOAT_SUM_H_
