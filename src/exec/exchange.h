// The exchange ("motion") seam between local execution and distributed shard
// execution. exec/ defines only the abstract runtime interface; the concrete
// coordinator/worker implementation lives in src/dist/ (which depends on
// exec/, never the reverse). A QueryContext carrying a DistRuntime routes
// sharded scans — and eligible aggregations — through it: per-shard plan
// fragments run in worker processes and their streamed results are merged
// here, bit-identical to local execution (DESIGN.md §13).

#ifndef JSONTILES_EXEC_EXCHANGE_H_
#define JSONTILES_EXEC_EXCHANGE_H_

#include <cstdint>
#include <vector>

#include "exec/operators.h"
#include "exec/scan.h"

namespace jsontiles::exec {

/// Per-worker transfer accounting for one exchange, surfaced as EXPLAIN
/// ANALYZE counters and dist.* metrics.
struct ExchangeWorkerStats {
  uint64_t rows = 0;        // data rows received from this worker
  uint64_t bytes = 0;       // wire bytes received (frames, compressed)
  uint64_t frames = 0;      // frames received
  uint64_t batches = 0;     // row/agg-result batches received
  uint64_t wall_nanos = 0;  // worker-reported fragment execution time
  uint64_t respawns = 0;    // times this worker slot was respawned here
};

struct ExchangeStats {
  std::vector<ExchangeWorkerStats> workers;
  uint64_t shards_scanned = 0;
  uint64_t shards_pruned = 0;
  uint64_t tiles_scanned = 0;
  uint64_t tiles_skipped = 0;
  // Fault-tolerance accounting (DESIGN.md §14), per exchange.
  uint64_t fragments_retried = 0;      // fragment re-dispatches
  uint64_t workers_respawned = 0;      // worker processes respawned
  uint64_t frames_rejected_stale = 0;  // epoch-stale frames discarded
  uint64_t recovery_nanos = 0;         // wall time spent in recovery
};

/// What a distributed runtime must provide. Implemented by dist::Cluster.
class DistRuntime {
 public:
  virtual ~DistRuntime() = default;

  /// True when this runtime's workers hold the shards of `rel` (i.e. it was
  /// started from the same manifest). Scans of other relations stay local.
  virtual bool Serves(const storage::ShardedRelation* rel) const = 0;

  virtual size_t num_workers() const = 0;

  /// Execute `spec` as per-shard fragments on the workers; rows arrive in
  /// ascending shard order (the same order the local scan's chunk merge
  /// produces). Decoded strings must outlive the query: they are copied into
  /// ctx.arena(0).
  virtual Status Scan(const ScanSpec& spec, QueryContext& ctx, RowSet* out,
                      ExchangeStats* stats) = 0;

  /// Scan + partial aggregation on the workers, exact-accumulator merge and
  /// finalization in the coordinator. Output rows are [keys..., aggs...] in
  /// group-table iteration order (same contract as AggregateExec).
  virtual Status Aggregate(const ScanSpec& spec,
                           const std::vector<ExprPtr>& group_by,
                           const std::vector<AggSpec>& aggs, QueryContext& ctx,
                           RowSet* out, ExchangeStats* stats) = 0;
};

/// Distributed scan operator: profiles + meters a DistRuntime::Scan. Called
/// by ScanExec when ctx.dist serves the scanned relation.
RowSet ExchangeExec(const ScanSpec& spec, QueryContext& ctx);

/// Distributed scan + partial-aggregate push-down. Replaces the
/// ScanExec→AggregateExec pair for eligible single-table blocks (see
/// opt/query.cc); group_by/agg argument expressions are slot-rewritten
/// against the scan's access list, exactly as AggregateExec would see them.
RowSet ExchangeAggregateExec(const ScanSpec& spec,
                             const std::vector<ExprPtr>& group_by,
                             const std::vector<AggSpec>& aggs,
                             QueryContext& ctx);

}  // namespace jsontiles::exec

#endif  // JSONTILES_EXEC_EXCHANGE_H_
