// Physical operators above the scan: filter, project, hash join, hash
// aggregation, sort, limit. Row sets are fully materialized between
// operators; joins and aggregations parallelize over input chunks.

#ifndef JSONTILES_EXEC_OPERATORS_H_
#define JSONTILES_EXEC_OPERATORS_H_

#include <vector>

#include "exec/expression.h"
#include "exec/scan.h"

namespace jsontiles::exec {

RowSet FilterExec(RowSet in, const ExprPtr& predicate, QueryContext& ctx);

RowSet ProjectExec(const RowSet& in, const std::vector<ExprPtr>& exprs,
                   QueryContext& ctx);

struct AggSpec {
  enum class Kind : uint8_t {
    kCountStar,
    kCount,   // non-null arguments
    kSum,
    kAvg,
    kMin,
    kMax,
    kCountDistinct,
  };
  Kind kind = Kind::kCountStar;
  ExprPtr arg;  // null for kCountStar

  static AggSpec CountStar() { return AggSpec{Kind::kCountStar, nullptr}; }
  static AggSpec Count(ExprPtr e) { return AggSpec{Kind::kCount, std::move(e)}; }
  static AggSpec Sum(ExprPtr e) { return AggSpec{Kind::kSum, std::move(e)}; }
  static AggSpec Avg(ExprPtr e) { return AggSpec{Kind::kAvg, std::move(e)}; }
  static AggSpec Min(ExprPtr e) { return AggSpec{Kind::kMin, std::move(e)}; }
  static AggSpec Max(ExprPtr e) { return AggSpec{Kind::kMax, std::move(e)}; }
  static AggSpec CountDistinct(ExprPtr e) {
    return AggSpec{Kind::kCountDistinct, std::move(e)};
  }
};

/// Hash group-by. Output rows are [group keys..., aggregate values...].
/// With an empty `group_by`, emits exactly one (global) row even for empty
/// input (SQL semantics: COUNT(*) of nothing is 0, SUM is null).
RowSet AggregateExec(const RowSet& in, const std::vector<ExprPtr>& group_by,
                     const std::vector<AggSpec>& aggs, QueryContext& ctx);

enum class JoinType : uint8_t { kInner, kLeft, kSemi, kAnti };

/// Hash join. Output rows are [probe row..., build row...] for inner/left
/// (build columns null for unmatched left rows); semi/anti emit the probe
/// row only. `residual` (may be null) is evaluated on the combined row; for
/// semi/anti it decides whether a key match counts.
RowSet HashJoinExec(const RowSet& build, const RowSet& probe,
                    const std::vector<ExprPtr>& build_keys,
                    const std::vector<ExprPtr>& probe_keys, JoinType type,
                    const ExprPtr& residual, QueryContext& ctx);

struct SortKey {
  ExprPtr expr;
  bool descending = false;
};

RowSet SortExec(RowSet in, const std::vector<SortKey>& keys, QueryContext& ctx);

RowSet LimitExec(RowSet in, size_t limit);

/// Profiling-aware variant: records rows in/out into ctx.profile (if set).
RowSet LimitExec(RowSet in, size_t limit, QueryContext& ctx);

}  // namespace jsontiles::exec

#endif  // JSONTILES_EXEC_OPERATORS_H_
