#include "exec/expression.h"

#include <charconv>
#include <cmath>
#include <cstring>

#include "json/dom.h"
#include "tiles/keypath.h"
#include "util/logging.h"

namespace jsontiles::exec {

namespace {

std::shared_ptr<Expr> NewExpr(ExprKind kind) {
  auto e = std::make_shared<Expr>();
  e->kind = kind;
  return e;
}

// Copy a string into the arena and return a stable view.
std::string_view ArenaString(std::string_view s, Arena* arena) {
  if (s.empty()) return {};
  uint8_t* p = arena->AllocateCopy(s.data(), s.size());
  return {reinterpret_cast<const char*>(p), s.size()};
}

}  // namespace

ExprPtr ConstInt(int64_t v) {
  auto e = NewExpr(ExprKind::kConst);
  e->constant = Value::Int(v);
  return e;
}

ExprPtr ConstFloat(double v) {
  auto e = NewExpr(ExprKind::kConst);
  e->constant = Value::Float(v);
  return e;
}

ExprPtr ConstBool(bool v) {
  auto e = NewExpr(ExprKind::kConst);
  e->constant = Value::Bool(v);
  return e;
}

ExprPtr ConstString(std::string v) {
  auto e = NewExpr(ExprKind::kConst);
  e->const_storage = std::move(v);
  e->constant = Value::String(e->const_storage);
  return e;
}

ExprPtr ConstDate(std::string_view text) {
  Timestamp ts = 0;
  JSONTILES_CHECK(ParseTimestamp(text, &ts));
  auto e = NewExpr(ExprKind::kConst);
  e->constant = Value::Ts(ts);
  return e;
}

ExprPtr ConstNull() { return NewExpr(ExprKind::kConst); }

ExprPtr Access(std::string table, std::initializer_list<std::string_view> keys,
               ValueType type) {
  std::string encoded;
  for (std::string_view k : keys) tiles::AppendKeySegment(&encoded, k);
  return AccessPath(std::move(table), std::move(encoded), type);
}

ExprPtr AccessPath(std::string table, std::string encoded_path, ValueType type) {
  auto e = NewExpr(ExprKind::kAccess);
  e->table = std::move(table);
  e->path = std::move(encoded_path);
  e->access_type = type;
  return e;
}

ExprPtr ArrayContains(std::string table,
                      std::initializer_list<std::string_view> keys,
                      std::string element_key, std::string value) {
  auto e = NewExpr(ExprKind::kArrayContains);
  e->table = std::move(table);
  for (std::string_view k : keys) tiles::AppendKeySegment(&e->path, k);
  e->pattern = std::move(element_key);
  e->const_storage = std::move(value);
  e->constant = Value::String(e->const_storage);
  e->access_type = ValueType::kBool;
  return e;
}

ExprPtr RowId(std::string table) {
  auto e = NewExpr(ExprKind::kAccess);
  e->table = std::move(table);
  e->path = std::string(kRowIdPath);
  e->access_type = ValueType::kInt;
  return e;
}

ExprPtr Slot(int index) {
  auto e = NewExpr(ExprKind::kSlotRef);
  e->slot = index;
  return e;
}

ExprPtr Binary(BinOp op, ExprPtr l, ExprPtr r) {
  auto e = NewExpr(ExprKind::kBinary);
  e->bin_op = op;
  e->args = {std::move(l), std::move(r)};
  return e;
}

ExprPtr And(ExprPtr l, ExprPtr r) { return Binary(BinOp::kAnd, l, r); }

ExprPtr And(std::vector<ExprPtr> conjuncts) {
  JSONTILES_CHECK(!conjuncts.empty());
  ExprPtr acc = conjuncts[0];
  for (size_t i = 1; i < conjuncts.size(); i++) acc = And(acc, conjuncts[i]);
  return acc;
}

ExprPtr Unary(UnOp op, ExprPtr arg) {
  auto e = NewExpr(ExprKind::kUnary);
  e->un_op = op;
  e->args = {std::move(arg)};
  return e;
}

ExprPtr Like(ExprPtr str, std::string pattern, bool negated) {
  auto e = NewExpr(ExprKind::kLike);
  e->pattern = std::move(pattern);
  e->negated = negated;
  e->like = std::make_shared<CompiledLike>(e->pattern);
  e->args = {std::move(str)};
  return e;
}

ExprPtr InList(ExprPtr expr, std::vector<std::string> strings) {
  auto e = NewExpr(ExprKind::kIn);
  e->in_storage = std::move(strings);
  for (const auto& s : e->in_storage) e->in_list.push_back(Value::String(s));
  e->args = {std::move(expr)};
  return e;
}

ExprPtr InListInt(ExprPtr expr, std::vector<int64_t> ints) {
  auto e = NewExpr(ExprKind::kIn);
  for (int64_t v : ints) e->in_list.push_back(Value::Int(v));
  e->args = {std::move(expr)};
  return e;
}

ExprPtr Between(ExprPtr e, ExprPtr lo, ExprPtr hi) {
  return And(Ge(e, lo), Le(e, hi));
}

ExprPtr Case(std::vector<ExprPtr> operands) {
  auto e = NewExpr(ExprKind::kCase);
  e->args = std::move(operands);
  return e;
}

ExprPtr Substring(ExprPtr str, int start_1based, int len) {
  auto e = NewExpr(ExprKind::kSubstring);
  e->substr_start = start_1based;
  e->substr_len = len;
  e->args = {std::move(str)};
  return e;
}

ExprPtr Year(ExprPtr ts) {
  auto e = NewExpr(ExprKind::kExtractYear);
  e->args = {std::move(ts)};
  return e;
}

ExprPtr CastTo(ExprPtr expr, ValueType type) {
  auto e = NewExpr(ExprKind::kCastTo);
  e->access_type = type;
  e->args = {std::move(expr)};
  return e;
}

// ---------------------------------------------------------------------------
// Evaluation
// ---------------------------------------------------------------------------

CompiledLike::CompiledLike(std::string pattern) : pattern_(std::move(pattern)) {
  std::string_view p = pattern_;
  if (p.find('_') != std::string_view::npos) return;  // kGeneric
  size_t first = p.find('%');
  if (first == std::string_view::npos) {
    kind_ = Kind::kExact;
    needle_len_ = p.size();
    return;
  }
  if (p.find_first_not_of('%') == std::string_view::npos) {
    kind_ = Kind::kMatchAll;
    return;
  }
  size_t last = p.rfind('%');
  if (first == 0 && last == p.size() - 1 && p.find('%', 1) == last) {
    kind_ = Kind::kContains;  // %abc%
    needle_pos_ = 1;
    needle_len_ = p.size() - 2;
    return;
  }
  if (first == 0 && last == 0) {
    kind_ = Kind::kSuffix;  // %abc
    needle_pos_ = 1;
    needle_len_ = p.size() - 1;
    return;
  }
  if (first == p.size() - 1 && last == first) {
    kind_ = Kind::kPrefix;  // abc%
    needle_len_ = p.size() - 1;
    return;
  }
  kind_ = Kind::kGeneric;  // interior '%', e.g. a%b
}

bool CompiledLike::Match(std::string_view s) const {
  std::string_view n = needle();
  switch (kind_) {
    case Kind::kExact:
      return s == n;
    case Kind::kPrefix:
      return s.size() >= n.size() && s.compare(0, n.size(), n) == 0;
    case Kind::kSuffix:
      return s.size() >= n.size() &&
             s.compare(s.size() - n.size(), n.size(), n) == 0;
    case Kind::kContains:
      return s.find(n) != std::string_view::npos;
    case Kind::kMatchAll:
      return true;
    case Kind::kGeneric:
      return LikeMatch(s, pattern_);
  }
  return false;
}

bool LikeMatch(std::string_view s, std::string_view pattern) {
  // Iterative matcher with backtracking on the last '%'.
  size_t si = 0, pi = 0;
  size_t star_p = std::string_view::npos, star_s = 0;
  while (si < s.size()) {
    if (pi < pattern.size() &&
        (pattern[pi] == '_' || pattern[pi] == s[si])) {
      si++;
      pi++;
    } else if (pi < pattern.size() && pattern[pi] == '%') {
      star_p = pi++;
      star_s = si;
    } else if (star_p != std::string_view::npos) {
      pi = star_p + 1;
      si = ++star_s;
    } else {
      return false;
    }
  }
  while (pi < pattern.size() && pattern[pi] == '%') pi++;
  return pi == pattern.size();
}

Value CastValue(const Value& v, ValueType to, Arena* arena) {
  if (v.is_null() || v.type == to) return v;
  switch (to) {
    case ValueType::kInt:
      switch (v.type) {
        case ValueType::kBool: return Value::Int(v.i);
        case ValueType::kFloat: return Value::Int(static_cast<int64_t>(v.d));
        case ValueType::kNumeric: return Value::Int(v.numeric_value().ToInt64());
        case ValueType::kString: {
          int64_t out = 0;
          auto [p, ec] = std::from_chars(v.s.data(), v.s.data() + v.s.size(), out);
          if (ec != std::errc() || p != v.s.data() + v.s.size()) return Value::Null();
          return Value::Int(out);
        }
        case ValueType::kTimestamp: return Value::Int(v.i);
        default: return Value::Null();
      }
    case ValueType::kFloat:
      switch (v.type) {
        case ValueType::kBool:
        case ValueType::kInt: return Value::Float(static_cast<double>(v.i));
        case ValueType::kNumeric: return Value::Float(v.numeric_value().ToDouble());
        case ValueType::kString: {
          double out = 0;
          auto [p, ec] = std::from_chars(v.s.data(), v.s.data() + v.s.size(), out);
          if (ec != std::errc() || p != v.s.data() + v.s.size()) return Value::Null();
          return Value::Float(out);
        }
        default: return Value::Null();
      }
    case ValueType::kNumeric:
      switch (v.type) {
        case ValueType::kInt: return Value::Num(Numeric{v.i, 0});
        case ValueType::kString: {
          Numeric n;
          if (!ParseNumeric(v.s, &n)) return Value::Null();
          return Value::Num(n);
        }
        case ValueType::kFloat: {
          // Round to 4 decimal places (enough for our workloads).
          double scaled = std::round(v.d * 10000.0);
          if (std::abs(scaled) > 9e17) return Value::Null();
          return Value::Num(Numeric{static_cast<int64_t>(scaled), 4});
        }
        default: return Value::Null();
      }
    case ValueType::kTimestamp:
      switch (v.type) {
        case ValueType::kString: {
          Timestamp ts;
          if (!ParseTimestamp(v.s, &ts)) return Value::Null();
          return Value::Ts(ts);
        }
        case ValueType::kInt: return Value::Ts(v.i);
        default: return Value::Null();
      }
    case ValueType::kString: {
      std::string text = v.ToString();
      return Value::String(ArenaString(text, arena));
    }
    case ValueType::kBool:
      switch (v.type) {
        case ValueType::kInt: return Value::Bool(v.i != 0);
        case ValueType::kString:
          if (v.s == "true" || v.s == "t") return Value::Bool(true);
          if (v.s == "false" || v.s == "f") return Value::Bool(false);
          return Value::Null();
        default: return Value::Null();
      }
    default:
      return Value::Null();
  }
}

namespace {

bool BothNumbers(const Value& a, const Value& b) {
  auto is_num = [](ValueType t) {
    return t == ValueType::kInt || t == ValueType::kFloat ||
           t == ValueType::kNumeric;
  };
  return is_num(a.type) && is_num(b.type);
}

Value EvalArithmetic(BinOp op, const Value& l, const Value& r) {
  if (l.is_null() || r.is_null()) return Value::Null();
  if (op == BinOp::kMod) {
    int64_t a = l.type == ValueType::kFloat ? static_cast<int64_t>(l.d) : l.i;
    int64_t b = r.type == ValueType::kFloat ? static_cast<int64_t>(r.d) : r.i;
    if (b == 0) return Value::Null();
    return Value::Int(a % b);
  }
  // Pure integer add/sub/mul stays integer; everything else in double.
  if (l.type == ValueType::kInt && r.type == ValueType::kInt &&
      op != BinOp::kDiv) {
    switch (op) {
      case BinOp::kAdd: return Value::Int(l.i + r.i);
      case BinOp::kSub: return Value::Int(l.i - r.i);
      case BinOp::kMul: return Value::Int(l.i * r.i);
      default: break;
    }
  }
  double a = l.AsDouble();
  double b = r.AsDouble();
  switch (op) {
    case BinOp::kAdd: return Value::Float(a + b);
    case BinOp::kSub: return Value::Float(a - b);
    case BinOp::kMul: return Value::Float(a * b);
    case BinOp::kDiv: return b == 0 ? Value::Null() : Value::Float(a / b);
    default: break;
  }
  return Value::Null();
}

Value EvalComparison(BinOp op, const Value& l, const Value& r) {
  if (l.is_null() || r.is_null()) return Value::Null();
  int cmp;
  if (BothNumbers(l, r)) {
    double a = l.AsDouble();
    double b = r.AsDouble();
    cmp = a < b ? -1 : a > b ? 1 : 0;
  } else if (l.type == ValueType::kString && r.type == ValueType::kString) {
    int c = l.s.compare(r.s);
    cmp = c < 0 ? -1 : c > 0 ? 1 : 0;
  } else if (l.type == r.type) {
    cmp = l.i < r.i ? -1 : l.i > r.i ? 1 : 0;
  } else {
    return Value::Null();  // incomparable types
  }
  switch (op) {
    case BinOp::kEq: return Value::Bool(cmp == 0);
    case BinOp::kNe: return Value::Bool(cmp != 0);
    case BinOp::kLt: return Value::Bool(cmp < 0);
    case BinOp::kLe: return Value::Bool(cmp <= 0);
    case BinOp::kGt: return Value::Bool(cmp > 0);
    case BinOp::kGe: return Value::Bool(cmp >= 0);
    default: break;
  }
  return Value::Null();
}

}  // namespace

Value EvalExpr(const Expr& e, const Value* slots, Arena* arena) {
  switch (e.kind) {
    case ExprKind::kConst:
      return e.constant;
    case ExprKind::kSlotRef:
      return slots[e.slot];
    case ExprKind::kAccess:
    case ExprKind::kArrayContains:
      JSONTILES_CHECK(false);  // must be rewritten to a slot by the planner
    case ExprKind::kBinary: {
      switch (e.bin_op) {
        case BinOp::kAnd: {
          Value l = EvalExpr(*e.args[0], slots, arena);
          if (!l.is_null() && !l.bool_value()) return Value::Bool(false);
          Value r = EvalExpr(*e.args[1], slots, arena);
          if (!r.is_null() && !r.bool_value()) return Value::Bool(false);
          if (l.is_null() || r.is_null()) return Value::Null();
          return Value::Bool(true);
        }
        case BinOp::kOr: {
          Value l = EvalExpr(*e.args[0], slots, arena);
          if (!l.is_null() && l.bool_value()) return Value::Bool(true);
          Value r = EvalExpr(*e.args[1], slots, arena);
          if (!r.is_null() && r.bool_value()) return Value::Bool(true);
          if (l.is_null() || r.is_null()) return Value::Null();
          return Value::Bool(false);
        }
        case BinOp::kAdd:
        case BinOp::kSub:
        case BinOp::kMul:
        case BinOp::kDiv:
        case BinOp::kMod:
          return EvalArithmetic(e.bin_op, EvalExpr(*e.args[0], slots, arena),
                                EvalExpr(*e.args[1], slots, arena));
        default:
          return EvalComparison(e.bin_op, EvalExpr(*e.args[0], slots, arena),
                                EvalExpr(*e.args[1], slots, arena));
      }
    }
    case ExprKind::kUnary: {
      Value v = EvalExpr(*e.args[0], slots, arena);
      switch (e.un_op) {
        case UnOp::kNot:
          if (v.is_null()) return Value::Null();
          return Value::Bool(!v.bool_value());
        case UnOp::kNeg:
          if (v.is_null()) return Value::Null();
          if (v.type == ValueType::kFloat) return Value::Float(-v.d);
          if (v.type == ValueType::kNumeric) {
            return Value::Num(Numeric{-v.i, v.scale});
          }
          return Value::Int(-v.i);
        case UnOp::kIsNull: return Value::Bool(v.is_null());
        case UnOp::kIsNotNull: return Value::Bool(!v.is_null());
      }
      return Value::Null();
    }
    case ExprKind::kLike: {
      Value v = EvalExpr(*e.args[0], slots, arena);
      if (v.is_null()) return Value::Null();
      if (v.type != ValueType::kString) return Value::Null();
      // Hand-built Expr trees may bypass the Like() factory; fall back to the
      // generic matcher then.
      bool match =
          e.like != nullptr ? e.like->Match(v.s) : LikeMatch(v.s, e.pattern);
      return Value::Bool(e.negated ? !match : match);
    }
    case ExprKind::kIn: {
      Value v = EvalExpr(*e.args[0], slots, arena);
      if (v.is_null()) return Value::Null();
      for (const Value& candidate : e.in_list) {
        if (v.EqualsForGrouping(candidate)) return Value::Bool(true);
      }
      return Value::Bool(false);
    }
    case ExprKind::kCase: {
      size_t i = 0;
      for (; i + 1 < e.args.size(); i += 2) {
        Value cond = EvalExpr(*e.args[i], slots, arena);
        if (!cond.is_null() && cond.bool_value()) {
          return EvalExpr(*e.args[i + 1], slots, arena);
        }
      }
      if (i < e.args.size()) return EvalExpr(*e.args[i], slots, arena);
      return Value::Null();
    }
    case ExprKind::kSubstring: {
      Value v = EvalExpr(*e.args[0], slots, arena);
      if (v.is_null() || v.type != ValueType::kString) return Value::Null();
      size_t start = e.substr_start > 0 ? static_cast<size_t>(e.substr_start - 1) : 0;
      if (start >= v.s.size()) return Value::String({});
      size_t len = std::min(static_cast<size_t>(e.substr_len), v.s.size() - start);
      return Value::String(v.s.substr(start, len));
    }
    case ExprKind::kExtractYear: {
      Value v = EvalExpr(*e.args[0], slots, arena);
      if (v.is_null()) return Value::Null();
      if (v.type == ValueType::kString) v = CastValue(v, ValueType::kTimestamp, arena);
      if (v.is_null() || v.type != ValueType::kTimestamp) return Value::Null();
      return Value::Int(TimestampYear(v.i));
    }
    case ExprKind::kCastTo:
      return CastValue(EvalExpr(*e.args[0], slots, arena), e.access_type, arena);
  }
  return Value::Null();
}

// ---------------------------------------------------------------------------
// Planner helpers
// ---------------------------------------------------------------------------

bool SameAccess(const Expr& a, const Expr& b) {
  return a.kind == b.kind && a.table == b.table && a.path == b.path &&
         a.access_type == b.access_type && a.pattern == b.pattern &&
         a.const_storage == b.const_storage;
}

bool ExprEquals(const Expr& a, const Expr& b) {
  if (a.kind != b.kind) return false;
  switch (a.kind) {
    case ExprKind::kConst:
      if (a.constant.type != b.constant.type) return false;
      if (a.constant.is_null()) return true;
      if (a.constant.type == ValueType::kString) {
        return a.constant.s == b.constant.s;
      }
      if (a.constant.type == ValueType::kFloat) {
        return a.constant.d == b.constant.d;
      }
      return a.constant.i == b.constant.i && a.constant.scale == b.constant.scale;
    case ExprKind::kSlotRef:
      return a.slot == b.slot;
    case ExprKind::kAccess:
    case ExprKind::kArrayContains:
      return SameAccess(a, b);
    case ExprKind::kBinary:
      if (a.bin_op != b.bin_op) return false;
      break;
    case ExprKind::kUnary:
      if (a.un_op != b.un_op) return false;
      break;
    case ExprKind::kLike:
      if (a.pattern != b.pattern || a.negated != b.negated) return false;
      break;
    case ExprKind::kIn: {
      if (a.in_list.size() != b.in_list.size() || a.negated != b.negated) {
        return false;
      }
      for (size_t i = 0; i < a.in_list.size(); i++) {
        if (!a.in_list[i].EqualsForGrouping(b.in_list[i])) return false;
      }
      break;
    }
    case ExprKind::kSubstring:
      if (a.substr_start != b.substr_start || a.substr_len != b.substr_len) {
        return false;
      }
      break;
    case ExprKind::kCastTo:
      if (a.access_type != b.access_type) return false;
      break;
    case ExprKind::kCase:
    case ExprKind::kExtractYear:
      break;
  }
  if (a.args.size() != b.args.size()) return false;
  for (size_t i = 0; i < a.args.size(); i++) {
    if (!ExprEquals(*a.args[i], *b.args[i])) return false;
  }
  return true;
}

void CollectAccesses(const ExprPtr& e, std::vector<ExprPtr>* accesses) {
  if (e == nullptr) return;
  if (e->kind == ExprKind::kAccess || e->kind == ExprKind::kArrayContains) {
    for (const auto& existing : *accesses) {
      if (SameAccess(*existing, *e)) return;
    }
    accesses->push_back(e);
    return;
  }
  for (const auto& arg : e->args) CollectAccesses(arg, accesses);
}

ExprPtr RewriteAccessesToSlots(
    const ExprPtr& e, const std::function<int(const Expr& access)>& slot_of) {
  if (e == nullptr) return nullptr;
  if (e->kind == ExprKind::kAccess || e->kind == ExprKind::kArrayContains) {
    int slot = slot_of(*e);
    JSONTILES_CHECK(slot >= 0);
    return Slot(slot);
  }
  bool changed = false;
  std::vector<ExprPtr> new_args;
  new_args.reserve(e->args.size());
  for (const auto& arg : e->args) {
    ExprPtr rewritten = RewriteAccessesToSlots(arg, slot_of);
    changed |= rewritten != arg;
    new_args.push_back(std::move(rewritten));
  }
  if (!changed) return e;
  auto copy = std::make_shared<Expr>(*e);
  copy->args = std::move(new_args);
  return copy;
}

void CollectNullRejectingPaths(const ExprPtr& filter, const std::string& table,
                               std::vector<std::string>* paths) {
  if (filter == nullptr) return;
  switch (filter->kind) {
    case ExprKind::kBinary:
      if (filter->bin_op == BinOp::kAnd) {
        CollectNullRejectingPaths(filter->args[0], table, paths);
        CollectNullRejectingPaths(filter->args[1], table, paths);
        return;
      }
      if (filter->bin_op == BinOp::kOr) return;  // not null-rejecting per side
      // Comparisons reject null operands.
      for (const auto& arg : filter->args) {
        if (arg->kind == ExprKind::kAccess && arg->table == table) {
          paths->push_back(arg->path);
        }
      }
      return;
    case ExprKind::kLike:
    case ExprKind::kIn:
      if (!filter->negated && filter->args[0]->kind == ExprKind::kAccess &&
          filter->args[0]->table == table) {
        paths->push_back(filter->args[0]->path);
      }
      return;
    case ExprKind::kUnary:
      if (filter->un_op == UnOp::kIsNotNull &&
          filter->args[0]->kind == ExprKind::kAccess &&
          filter->args[0]->table == table) {
        paths->push_back(filter->args[0]->path);
      }
      return;
    case ExprKind::kArrayContains:
      // A missing array can never contain the value: null-rejecting.
      if (filter->table == table) paths->push_back(filter->path);
      return;
    default:
      return;
  }
}

namespace {

BinOp FlipComparison(BinOp op) {
  switch (op) {
    case BinOp::kLt: return BinOp::kGt;
    case BinOp::kLe: return BinOp::kGe;
    case BinOp::kGt: return BinOp::kLt;
    case BinOp::kGe: return BinOp::kLe;
    default: return op;  // kEq is symmetric
  }
}

bool IsRangeType(ValueType t) {
  return t == ValueType::kInt || t == ValueType::kFloat ||
         t == ValueType::kTimestamp;
}

}  // namespace

void CollectRangePredicates(const ExprPtr& filter, const std::string& table,
                            std::vector<RangePredicate>* out) {
  if (filter == nullptr || filter->kind != ExprKind::kBinary) return;
  if (filter->bin_op == BinOp::kAnd) {
    CollectRangePredicates(filter->args[0], table, out);
    CollectRangePredicates(filter->args[1], table, out);
    return;
  }
  bool is_cmp = filter->bin_op == BinOp::kLt || filter->bin_op == BinOp::kLe ||
                filter->bin_op == BinOp::kGt || filter->bin_op == BinOp::kGe ||
                filter->bin_op == BinOp::kEq;
  if (!is_cmp) return;
  const ExprPtr& l = filter->args[0];
  const ExprPtr& r = filter->args[1];
  const Expr* access = nullptr;
  const Expr* constant = nullptr;
  BinOp op = filter->bin_op;
  if (l->kind == ExprKind::kAccess && r->kind == ExprKind::kConst) {
    access = l.get();
    constant = r.get();
  } else if (r->kind == ExprKind::kAccess && l->kind == ExprKind::kConst) {
    access = r.get();
    constant = l.get();
    op = FlipComparison(op);
  } else {
    return;
  }
  if (access->table != table || access->path == kRowIdPath) return;
  // String predicates carry no range, but an equality still identifies the
  // target shard when the relation is hash-routed on this path; the zone-map
  // consumers type-check and ignore them.
  const bool string_eq = op == BinOp::kEq &&
                         access->access_type == ValueType::kString &&
                         constant->constant.type == ValueType::kString;
  if (!string_eq && (!IsRangeType(access->access_type) ||
                     !IsRangeType(constant->constant.type))) {
    return;
  }
  out->push_back(
      RangePredicate{access->path, access->access_type, op, constant->constant});
}

}  // namespace jsontiles::exec
