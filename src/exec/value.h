// Runtime scalar values of the query engine.
//
// Values are small (no heap allocation of their own): strings are views into
// relation storage or into a per-query arena for derived strings, which keeps
// intermediate rows cheap to copy and hash.

#ifndef JSONTILES_EXEC_VALUE_H_
#define JSONTILES_EXEC_VALUE_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "util/date.h"
#include "util/decimal.h"
#include "util/hash.h"

namespace jsontiles::exec {

enum class ValueType : uint8_t {
  kNull = 0,
  kBool,
  kInt,        // SQL BigInt
  kFloat,      // SQL Float (double)
  kString,     // SQL Text
  kTimestamp,  // SQL Timestamp
  kNumeric,    // SQL Numeric
};

const char* ValueTypeName(ValueType type);

struct Value {
  ValueType type = ValueType::kNull;
  uint8_t scale = 0;  // numeric scale
  union {
    int64_t i;
    double d;
  };
  std::string_view s;

  Value() : i(0) {}

  static Value Null() { return Value(); }
  static Value Bool(bool v) {
    Value x;
    x.type = ValueType::kBool;
    x.i = v ? 1 : 0;
    return x;
  }
  static Value Int(int64_t v) {
    Value x;
    x.type = ValueType::kInt;
    x.i = v;
    return x;
  }
  static Value Float(double v) {
    Value x;
    x.type = ValueType::kFloat;
    x.d = v;
    return x;
  }
  static Value String(std::string_view v) {
    Value x;
    x.type = ValueType::kString;
    x.s = v;
    return x;
  }
  static Value Ts(Timestamp v) {
    Value x;
    x.type = ValueType::kTimestamp;
    x.i = v;
    return x;
  }
  static Value Num(Numeric v) {
    Value x;
    x.type = ValueType::kNumeric;
    x.i = v.unscaled;
    x.scale = v.scale;
    return x;
  }

  bool is_null() const { return type == ValueType::kNull; }
  bool bool_value() const { return i != 0; }
  int64_t int_value() const { return i; }
  double float_value() const { return d; }
  Timestamp ts_value() const { return i; }
  Numeric numeric_value() const { return Numeric{i, scale}; }
  std::string_view string_value() const { return s; }

  /// Numeric view of any number-ish value (int/float/numeric/timestamp/bool).
  double AsDouble() const;

  /// Hash for join/group keys (nulls hash to a fixed value; callers decide
  /// null semantics).
  uint64_t Hash() const;

  /// SQL equality (assumes non-null operands; numbers compare numerically
  /// across int/float/numeric).
  bool EqualsForGrouping(const Value& other) const;

  /// Three-way comparison for sorting (null first); -1/0/1.
  int Compare(const Value& other) const;

  /// Debug / output formatting.
  std::string ToString() const;
};

}  // namespace jsontiles::exec

#endif  // JSONTILES_EXEC_VALUE_H_
