#include "exec/value.h"

#include <bit>
#include <cmath>

#include "json/dom.h"
#include "util/logging.h"

namespace jsontiles::exec {

const char* ValueTypeName(ValueType type) {
  switch (type) {
    case ValueType::kNull: return "Null";
    case ValueType::kBool: return "Bool";
    case ValueType::kInt: return "BigInt";
    case ValueType::kFloat: return "Float";
    case ValueType::kString: return "Text";
    case ValueType::kTimestamp: return "Timestamp";
    case ValueType::kNumeric: return "Numeric";
  }
  return "?";
}

double Value::AsDouble() const {
  switch (type) {
    case ValueType::kFloat: return d;
    case ValueType::kNumeric: return numeric_value().ToDouble();
    case ValueType::kNull: return 0;
    default: return static_cast<double>(i);
  }
}

uint64_t Value::Hash() const {
  switch (type) {
    case ValueType::kNull: return 0x9E3779B97F4A7C15ULL;
    case ValueType::kString: return HashString(s);
    case ValueType::kFloat: {
      // Hash integral floats like their integer counterparts so grouping by
      // mixed numeric types is consistent with EqualsForGrouping.
      if (d == std::floor(d) && std::abs(d) < 9.2e18) {
        return HashInt(static_cast<uint64_t>(static_cast<int64_t>(d)));
      }
      return HashInt(std::bit_cast<uint64_t>(d));
    }
    case ValueType::kNumeric: {
      Numeric n = numeric_value();
      if (n.scale == 0) return HashInt(static_cast<uint64_t>(n.unscaled));
      // Normalize trailing zeros so 1.50 and 1.5 hash alike.
      int64_t unscaled = n.unscaled;
      int scale_left = n.scale;
      while (scale_left > 0 && unscaled % 10 == 0) {
        unscaled /= 10;
        scale_left--;
      }
      if (scale_left == 0) return HashInt(static_cast<uint64_t>(unscaled));
      return HashCombine(HashInt(static_cast<uint64_t>(unscaled)),
                         HashInt(static_cast<uint64_t>(scale_left)));
    }
    default:
      return HashInt(static_cast<uint64_t>(i));
  }
}

namespace {

// Compare two numbers of possibly different numeric types.
int CompareNumbers(const Value& a, const Value& b) {
  if (a.type == ValueType::kInt && b.type == ValueType::kInt) {
    return a.i < b.i ? -1 : a.i > b.i ? 1 : 0;
  }
  double x = a.AsDouble();
  double y = b.AsDouble();
  return x < y ? -1 : x > y ? 1 : 0;
}

bool IsNumber(ValueType t) {
  return t == ValueType::kInt || t == ValueType::kFloat ||
         t == ValueType::kNumeric;
}

}  // namespace

bool Value::EqualsForGrouping(const Value& other) const {
  if (type == ValueType::kNull || other.type == ValueType::kNull) {
    return type == other.type;  // grouping treats nulls as equal
  }
  if (IsNumber(type) && IsNumber(other.type)) {
    return CompareNumbers(*this, other) == 0;
  }
  if (type != other.type) return false;
  switch (type) {
    case ValueType::kString: return s == other.s;
    default: return i == other.i;
  }
}

int Value::Compare(const Value& other) const {
  if (is_null() || other.is_null()) {
    if (is_null() && other.is_null()) return 0;
    return is_null() ? -1 : 1;
  }
  if (IsNumber(type) && IsNumber(other.type)) return CompareNumbers(*this, other);
  switch (type) {
    case ValueType::kString: {
      int c = s.compare(other.s);
      return c < 0 ? -1 : c > 0 ? 1 : 0;
    }
    default:
      return i < other.i ? -1 : i > other.i ? 1 : 0;
  }
}

std::string Value::ToString() const {
  switch (type) {
    case ValueType::kNull: return "null";
    case ValueType::kBool: return i ? "true" : "false";
    case ValueType::kInt: return std::to_string(i);
    case ValueType::kFloat: {
      std::string out;
      json::FormatDouble(d, &out);
      return out;
    }
    case ValueType::kString: return std::string(s);
    case ValueType::kTimestamp: return FormatTimestamp(i);
    case ValueType::kNumeric: return numeric_value().ToString();
  }
  return "?";
}

}  // namespace jsontiles::exec
