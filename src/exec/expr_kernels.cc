// Per-opcode kernels of the vectorized expression engine.
//
// Every kernel is written to be bit-identical to the scalar interpreter in
// expression.cc (EvalExpr / EvalArithmetic / EvalComparison / CastValue) —
// including the quirks: comparisons of two numbers always go through
// AsDouble (even int vs int), pure-int add/sub/mul stays int, MOD truncates
// float operands, division by zero yields null. The differential fuzz test
// locks this in.

#include "exec/expr_compile.h"
#include "exec/simd.h"

namespace jsontiles::exec::vec {

namespace {

// Dense selections (the first conjunct after SetAll, projections, join and
// aggregate key batches) take the SIMD entry points; sparse selections keep
// the scalar gather loops below, which remain the semantic reference.
inline bool UseSimdDense(const SelectionVector& sel) {
  return sel.IsDense() && simd::UseSimd();
}

// AsDouble of a non-null lane (string operands are rejected at compile).
inline double LaneAsDouble(const ColumnVector& v, size_t r) {
  switch (v.type()) {
    case ValueType::kFloat: return v.f64()[r];
    case ValueType::kNumeric: return Numeric{v.i64()[r], v.scale()[r]}.ToDouble();
    default: return static_cast<double>(v.i64()[r]);
  }
}

// MOD operand: floats truncate toward zero, everything else uses the raw
// int lane (numerics contribute their unscaled digits, like the interpreter).
inline int64_t LaneAsModInt(const ColumnVector& v, size_t r) {
  if (v.type() == ValueType::kFloat) {
    return static_cast<int64_t>(v.f64()[r]);
  }
  return v.i64()[r];
}

// A three-valued boolean lane: 0 = false, 1 = true, 2 = null.
inline uint8_t BoolLane(const ColumnVector& v, size_t r) {
  if (v.type() == ValueType::kNull || v.IsNull(r)) return 2;
  return v.i64()[r] != 0 ? 1 : 0;
}

void KernelArith(const Instr& in, const ColumnVector& a, const ColumnVector& b,
                 ColumnVector* out, const SelectionVector& sel) {
  out->Reset(in.out_type);
  uint8_t* onull = out->nulls();
  if (in.bin_op == BinOp::kMod) {
    int64_t* oi = out->i64();
    for (size_t k = 0; k < sel.count; k++) {
      const size_t r = sel.idx[k];
      if (a.IsNull(r) || b.IsNull(r)) {
        onull[r] = 1;
        continue;
      }
      int64_t y = LaneAsModInt(b, r);
      if (y == 0) {
        onull[r] = 1;
        continue;
      }
      onull[r] = 0;
      oi[r] = LaneAsModInt(a, r) % y;
    }
    return;
  }
  if (in.out_type == ValueType::kInt) {  // int (+,-,*) int
    const int64_t* ai = a.i64();
    const int64_t* bi = b.i64();
    const uint8_t* an = a.nulls();
    const uint8_t* bn = b.nulls();
    int64_t* oi = out->i64();
    if (UseSimdDense(sel)) {
      simd::ArithI64(in.bin_op, ai, bi, an, bn, oi, onull, sel.count);
      return;
    }
    switch (in.bin_op) {
      case BinOp::kAdd:
        for (size_t k = 0; k < sel.count; k++) {
          const size_t r = sel.idx[k];
          onull[r] = an[r] | bn[r];
          oi[r] = ai[r] + bi[r];
        }
        return;
      case BinOp::kSub:
        for (size_t k = 0; k < sel.count; k++) {
          const size_t r = sel.idx[k];
          onull[r] = an[r] | bn[r];
          oi[r] = ai[r] - bi[r];
        }
        return;
      default:  // kMul
        for (size_t k = 0; k < sel.count; k++) {
          const size_t r = sel.idx[k];
          onull[r] = an[r] | bn[r];
          oi[r] = ai[r] * bi[r];
        }
        return;
    }
  }
  double* of = out->f64();
  const bool ab_int_or_float =
      (in.a_type == ValueType::kInt || in.a_type == ValueType::kFloat) &&
      (in.b_type == ValueType::kInt || in.b_type == ValueType::kFloat);
  if (ab_int_or_float && UseSimdDense(sel)) {
    // Int operands are widened once into scratch lanes (exact, identical to
    // the static_cast in LaneAsDouble); numeric operands keep the scalar
    // loop because of the per-lane scale.
    double atmp[kVectorSize], btmp[kVectorSize];
    const double* pa;
    if (in.a_type == ValueType::kInt) {
      simd::I64ToF64(a.i64(), atmp, sel.count);
      pa = atmp;
    } else {
      pa = a.f64();
    }
    const double* pb;
    if (in.b_type == ValueType::kInt) {
      simd::I64ToF64(b.i64(), btmp, sel.count);
      pb = btmp;
    } else {
      pb = b.f64();
    }
    simd::ArithF64(in.bin_op, pa, pb, a.nulls(), b.nulls(), of, onull,
                   sel.count);
    return;
  }
  for (size_t k = 0; k < sel.count; k++) {
    const size_t r = sel.idx[k];
    if (a.IsNull(r) || b.IsNull(r)) {
      onull[r] = 1;
      continue;
    }
    double x = LaneAsDouble(a, r);
    double y = LaneAsDouble(b, r);
    switch (in.bin_op) {
      case BinOp::kAdd: onull[r] = 0; of[r] = x + y; break;
      case BinOp::kSub: onull[r] = 0; of[r] = x - y; break;
      case BinOp::kMul: onull[r] = 0; of[r] = x * y; break;
      default:  // kDiv
        if (y == 0) {
          onull[r] = 1;
        } else {
          onull[r] = 0;
          of[r] = x / y;
        }
        break;
    }
  }
}

inline int64_t ApplyCmp(BinOp op, int cmp) {
  switch (op) {
    case BinOp::kEq: return cmp == 0;
    case BinOp::kNe: return cmp != 0;
    case BinOp::kLt: return cmp < 0;
    case BinOp::kLe: return cmp <= 0;
    case BinOp::kGt: return cmp > 0;
    default: return cmp >= 0;  // kGe
  }
}

bool IsNumberType(ValueType t) {
  return t == ValueType::kInt || t == ValueType::kFloat ||
         t == ValueType::kNumeric;
}

void KernelCompare(const Instr& in, const ColumnVector& a,
                   const ColumnVector& b, ColumnVector* out,
                   const SelectionVector& sel) {
  out->Reset(ValueType::kBool);
  uint8_t* onull = out->nulls();
  int64_t* oi = out->i64();
  if (IsNumberType(in.a_type) && IsNumberType(in.b_type)) {
    // Like EvalComparison: both numbers compare through AsDouble, even when
    // both are ints. Specialize the common all-int / all-float cases so the
    // loop body carries no type switch.
    if (in.a_type == ValueType::kInt && in.b_type == ValueType::kInt) {
      const int64_t* ai = a.i64();
      const int64_t* bi = b.i64();
      if (UseSimdDense(sel)) {
        simd::CompareI64ViaDouble(in.bin_op, ai, bi, a.nulls(), b.nulls(), oi,
                                  onull, sel.count);
        return;
      }
      for (size_t k = 0; k < sel.count; k++) {
        const size_t r = sel.idx[k];
        if (a.IsNull(r) || b.IsNull(r)) {
          onull[r] = 1;
          continue;
        }
        double x = static_cast<double>(ai[r]);
        double y = static_cast<double>(bi[r]);
        onull[r] = 0;
        oi[r] = ApplyCmp(in.bin_op, x < y ? -1 : x > y ? 1 : 0);
      }
      return;
    }
    if (UseSimdDense(sel)) {  // float/float and int<->float mixes
      if (in.a_type == ValueType::kFloat && in.b_type == ValueType::kFloat) {
        simd::CompareF64(in.bin_op, a.f64(), b.f64(), a.nulls(), b.nulls(),
                         oi, onull, sel.count);
        return;
      }
      if (in.a_type == ValueType::kInt && in.b_type == ValueType::kFloat) {
        simd::CompareI64F64(in.bin_op, a.i64(), b.f64(), a.nulls(), b.nulls(),
                            oi, onull, sel.count);
        return;
      }
      if (in.a_type == ValueType::kFloat && in.b_type == ValueType::kInt) {
        simd::CompareF64I64(in.bin_op, a.f64(), b.i64(), a.nulls(), b.nulls(),
                            oi, onull, sel.count);
        return;
      }
      // numeric operands fall through to the scalar loop (per-lane scale)
    }
    for (size_t k = 0; k < sel.count; k++) {
      const size_t r = sel.idx[k];
      if (a.IsNull(r) || b.IsNull(r)) {
        onull[r] = 1;
        continue;
      }
      double x = LaneAsDouble(a, r);
      double y = LaneAsDouble(b, r);
      onull[r] = 0;
      oi[r] = ApplyCmp(in.bin_op, x < y ? -1 : x > y ? 1 : 0);
    }
    return;
  }
  if (in.a_type == ValueType::kString) {  // string vs string
    const std::string_view* as = a.str();
    const std::string_view* bs = b.str();
    for (size_t k = 0; k < sel.count; k++) {
      const size_t r = sel.idx[k];
      if (a.IsNull(r) || b.IsNull(r)) {
        onull[r] = 1;
        continue;
      }
      int c = as[r].compare(bs[r]);
      onull[r] = 0;
      oi[r] = ApplyCmp(in.bin_op, c < 0 ? -1 : c > 0 ? 1 : 0);
    }
    return;
  }
  // Same non-number type (bool/timestamp): raw int lanes.
  const int64_t* ai = a.i64();
  const int64_t* bi = b.i64();
  if (UseSimdDense(sel)) {
    simd::CompareI64Raw(in.bin_op, ai, bi, a.nulls(), b.nulls(), oi, onull,
                        sel.count);
    return;
  }
  for (size_t k = 0; k < sel.count; k++) {
    const size_t r = sel.idx[k];
    if (a.IsNull(r) || b.IsNull(r)) {
      onull[r] = 1;
      continue;
    }
    onull[r] = 0;
    oi[r] = ApplyCmp(in.bin_op, ai[r] < bi[r] ? -1 : ai[r] > bi[r] ? 1 : 0);
  }
}

void KernelLogic(const Instr& in, const ColumnVector& a, const ColumnVector& b,
                 ColumnVector* out, const SelectionVector& sel) {
  out->Reset(ValueType::kBool);
  uint8_t* onull = out->nulls();
  int64_t* oi = out->i64();
  const bool is_and = in.op == VecOp::kAnd;
  if (a.type() == ValueType::kBool && b.type() == ValueType::kBool &&
      UseSimdDense(sel)) {
    // kNull-typed operands (statically-null conjuncts) have no payload
    // lanes, so they stay on the BoolLane loop below.
    if (is_and) {
      simd::And3VL(a.i64(), b.i64(), a.nulls(), b.nulls(), oi, onull,
                   sel.count);
    } else {
      simd::Or3VL(a.i64(), b.i64(), a.nulls(), b.nulls(), oi, onull,
                  sel.count);
    }
    return;
  }
  for (size_t k = 0; k < sel.count; k++) {
    const size_t r = sel.idx[k];
    uint8_t x = BoolLane(a, r);
    uint8_t y = BoolLane(b, r);
    if (is_and) {
      if (x == 0 || y == 0) {
        onull[r] = 0;
        oi[r] = 0;
      } else if (x == 2 || y == 2) {
        onull[r] = 1;
      } else {
        onull[r] = 0;
        oi[r] = 1;
      }
    } else {
      if (x == 1 || y == 1) {
        onull[r] = 0;
        oi[r] = 1;
      } else if (x == 2 || y == 2) {
        onull[r] = 1;
      } else {
        onull[r] = 0;
        oi[r] = 0;
      }
    }
  }
}

void KernelLike(const Instr& in, const ColumnVector& a, ColumnVector* out,
                const SelectionVector& sel) {
  out->Reset(ValueType::kBool);
  uint8_t* onull = out->nulls();
  int64_t* oi = out->i64();
  const std::string_view* as = a.str();
  const Expr& e = *in.node;
  const CompiledLike* like = e.like.get();
  for (size_t k = 0; k < sel.count; k++) {
    const size_t r = sel.idx[k];
    if (a.IsNull(r)) {
      onull[r] = 1;
      continue;
    }
    bool match = like != nullptr ? like->Match(as[r]) : LikeMatch(as[r], e.pattern);
    onull[r] = 0;
    oi[r] = (e.negated ? !match : match) ? 1 : 0;
  }
}

void KernelIn(const Instr& in, const ColumnVector& a, ColumnVector* out,
              const SelectionVector& sel) {
  out->Reset(ValueType::kBool);
  uint8_t* onull = out->nulls();
  int64_t* oi = out->i64();
  const InSet& set = *in.in_set;
  for (size_t k = 0; k < sel.count; k++) {
    const size_t r = sel.idx[k];
    if (a.IsNull(r)) {
      onull[r] = 1;
      continue;
    }
    Value v = a.GetValue(r);
    bool found = false;
    auto [it, end] = set.by_hash.equal_range(v.Hash());
    for (; it != end; ++it) {
      if (v.EqualsForGrouping(*it->second)) {
        found = true;
        break;
      }
    }
    onull[r] = 0;
    oi[r] = found ? 1 : 0;
  }
}

void KernelCase(const Instr& in, const ColumnVector* const* regs,
                ColumnVector* out, const SelectionVector& sel) {
  out->Reset(in.out_type);
  uint8_t* onull = out->nulls();
  const auto& arms = in.case_regs;
  for (size_t k = 0; k < sel.count; k++) {
    const size_t r = sel.idx[k];
    bool taken = false;
    size_t i = 0;
    for (; i + 1 < arms.size(); i += 2) {
      if (BoolLane(*regs[arms[i]], r) == 1) {
        out->SetValue(r, regs[arms[i + 1]]->GetValue(r));
        taken = true;
        break;
      }
    }
    if (taken) continue;
    if (i < arms.size()) {
      out->SetValue(r, regs[arms[i]]->GetValue(r));  // else arm
    } else {
      onull[r] = 1;
    }
  }
}

void KernelNeg(const Instr& in, const ColumnVector& a, ColumnVector* out,
               const SelectionVector& sel) {
  out->Reset(in.out_type);
  uint8_t* onull = out->nulls();
  if (in.out_type == ValueType::kFloat) {
    const double* af = a.f64();
    double* of = out->f64();
    for (size_t k = 0; k < sel.count; k++) {
      const size_t r = sel.idx[k];
      onull[r] = a.IsNull(r);
      if (!onull[r]) of[r] = -af[r];
    }
    return;
  }
  const int64_t* ai = a.i64();
  int64_t* oi = out->i64();
  uint8_t* oscale = in.out_type == ValueType::kNumeric ? out->scale() : nullptr;
  for (size_t k = 0; k < sel.count; k++) {
    const size_t r = sel.idx[k];
    onull[r] = a.IsNull(r);
    if (onull[r]) continue;
    oi[r] = -ai[r];
    if (oscale != nullptr) oscale[r] = a.scale()[r];
  }
}

void KernelSubstring(const Instr& in, const ColumnVector& a, ColumnVector* out,
                     const SelectionVector& sel) {
  out->Reset(ValueType::kString);
  uint8_t* onull = out->nulls();
  std::string_view* os = out->str();
  const std::string_view* as = a.str();
  const Expr& e = *in.node;
  for (size_t k = 0; k < sel.count; k++) {
    const size_t r = sel.idx[k];
    if (a.IsNull(r)) {
      onull[r] = 1;
      continue;
    }
    std::string_view s = as[r];
    size_t start =
        e.substr_start > 0 ? static_cast<size_t>(e.substr_start - 1) : 0;
    onull[r] = 0;
    if (start >= s.size()) {
      os[r] = {};
      continue;
    }
    size_t len = std::min(static_cast<size_t>(e.substr_len), s.size() - start);
    os[r] = s.substr(start, len);
  }
}

void KernelExtractYear(const Instr& in, const ColumnVector& a,
                       ColumnVector* out, const SelectionVector& sel) {
  out->Reset(ValueType::kInt);
  uint8_t* onull = out->nulls();
  int64_t* oi = out->i64();
  if (in.a_type == ValueType::kTimestamp) {
    const int64_t* ai = a.i64();
    for (size_t k = 0; k < sel.count; k++) {
      const size_t r = sel.idx[k];
      onull[r] = a.IsNull(r);
      if (!onull[r]) oi[r] = TimestampYear(ai[r]);
    }
    return;
  }
  const std::string_view* as = a.str();
  for (size_t k = 0; k < sel.count; k++) {
    const size_t r = sel.idx[k];
    Timestamp ts = 0;
    if (a.IsNull(r) || !ParseTimestamp(as[r], &ts)) {
      onull[r] = 1;
      continue;
    }
    onull[r] = 0;
    oi[r] = TimestampYear(ts);
  }
}

void KernelCast(const Instr& in, const ColumnVector& a, ColumnVector* out,
                const SelectionVector& sel, Arena* arena) {
  out->Reset(in.out_type);
  for (size_t k = 0; k < sel.count; k++) {
    const size_t r = sel.idx[k];
    out->SetValue(r, CastValue(a.GetValue(r), in.out_type, arena));
  }
}

}  // namespace

void RunInstr(const Instr& in, const ColumnVector* const* regs,
              ColumnVector* out, const SelectionVector& sel, Arena* arena) {
  switch (in.op) {
    case VecOp::kArith:
      KernelArith(in, *regs[in.a], *regs[in.b], out, sel);
      return;
    case VecOp::kCompare:
      KernelCompare(in, *regs[in.a], *regs[in.b], out, sel);
      return;
    case VecOp::kAnd:
    case VecOp::kOr:
      KernelLogic(in, *regs[in.a], *regs[in.b], out, sel);
      return;
    case VecOp::kNot: {
      const ColumnVector& a = *regs[in.a];
      out->Reset(ValueType::kBool);
      uint8_t* onull = out->nulls();
      int64_t* oi = out->i64();
      const int64_t* ai = a.i64();
      for (size_t k = 0; k < sel.count; k++) {
        const size_t r = sel.idx[k];
        onull[r] = a.IsNull(r);
        if (!onull[r]) oi[r] = ai[r] != 0 ? 0 : 1;
      }
      return;
    }
    case VecOp::kIsNull:
    case VecOp::kIsNotNull: {
      const ColumnVector& a = *regs[in.a];
      const bool want_null = in.op == VecOp::kIsNull;
      out->Reset(ValueType::kBool);
      uint8_t* onull = out->nulls();
      int64_t* oi = out->i64();
      for (size_t k = 0; k < sel.count; k++) {
        const size_t r = sel.idx[k];
        bool is_null = a.type() == ValueType::kNull || a.IsNull(r);
        onull[r] = 0;
        oi[r] = (is_null == want_null) ? 1 : 0;
      }
      return;
    }
    case VecOp::kNeg:
      KernelNeg(in, *regs[in.a], out, sel);
      return;
    case VecOp::kLike:
      KernelLike(in, *regs[in.a], out, sel);
      return;
    case VecOp::kIn:
      KernelIn(in, *regs[in.a], out, sel);
      return;
    case VecOp::kCase:
      KernelCase(in, regs, out, sel);
      return;
    case VecOp::kSubstring:
      KernelSubstring(in, *regs[in.a], out, sel);
      return;
    case VecOp::kExtractYear:
      KernelExtractYear(in, *regs[in.a], out, sel);
      return;
    case VecOp::kCast:
      KernelCast(in, *regs[in.a], out, sel, arena);
      return;
    case VecOp::kConst:
    case VecOp::kSlot:
    case VecOp::kAllNull:
      JSONTILES_CHECK(false);  // handled by CompiledExpr::Run
  }
}

}  // namespace jsontiles::exec::vec
